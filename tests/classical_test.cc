#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "classical/executor.h"
#include "classical/plans.h"
#include "workload/dblp.h"

namespace rox {
namespace {

TEST(PlanEnumerationTest, EighteenOrders) {
  auto orders = EnumerateJoinOrders4();
  ASSERT_EQ(orders.size(), 18u);
  std::set<std::string> labels;
  for (const JoinOrder& o : orders) labels.insert(o.Label());
  EXPECT_EQ(labels.size(), 18u);  // all distinct
  // 6 bushy, 12 linear.
  int bushy = 0;
  for (const JoinOrder& o : orders) bushy += o.bushy;
  EXPECT_EQ(bushy, 6);
}

TEST(PlanEnumerationTest, Labels) {
  JoinOrder linear{1, 0, false, 2, 3};
  EXPECT_EQ(linear.Label(), "(2-1)-3-4");
  JoinOrder bushy{2, 3, true, 1, 0};
  EXPECT_EQ(bushy.Label(), "(3-4)-(2-1)");
}

TEST(PlanEnumerationTest, PlacementNames) {
  EXPECT_STREQ(StepPlacementName(StepPlacement::kSJ), "SJ");
  EXPECT_STREQ(StepPlacementName(StepPlacement::kJS), "JS");
  EXPECT_STREQ(StepPlacementName(StepPlacement::kS_J), "S_J");
}

class ExecutorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DblpGenOptions opt;
    opt.tag_scale = 0.04;
    // ADBIS, SIGMOD, ICDE, VLDB — all DB, lots of overlap.
    auto r = GenerateDblpCorpus(opt, {18, 20, 21, 22});
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    corpus_ = new Corpus(std::move(*r));
  }
  static void TearDownTestSuite() {
    delete corpus_;
    corpus_ = nullptr;
  }

  static std::vector<DocId> Docs() { return {0, 1, 2, 3}; }
  static Corpus* corpus_;
};

Corpus* ExecutorTest::corpus_ = nullptr;

TEST_F(ExecutorTest, AllPlansAgreeOnResultSize) {
  CanonicalPlanExecutor exec(*corpus_, Docs());
  std::set<uint64_t> sizes;
  for (const JoinOrder& order : EnumerateJoinOrders4()) {
    for (StepPlacement p : kAllPlacements) {
      auto r = exec.Run(order, p);
      ASSERT_TRUE(r.ok()) << order.Label() << " "
                          << StepPlacementName(p) << ": "
                          << r.status().ToString();
      sizes.insert(r->result_rows);
      EXPECT_EQ(r->join_result_sizes.size(), 3u);
    }
  }
  // Every plan computes the same query.
  EXPECT_EQ(sizes.size(), 1u);
  EXPECT_GT(*sizes.begin(), 0u);
}

TEST_F(ExecutorTest, SjJoinSizesMatchHistogramPrediction) {
  CanonicalPlanExecutor exec(*corpus_, Docs());
  auto cards = ComputeOrderCardinalities(*corpus_, Docs());
  ASSERT_EQ(cards.size(), 18u);
  for (const OrderCardinality& oc : cards) {
    auto r = exec.Run(oc.order, StepPlacement::kSJ);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->join_result_sizes, oc.join_sizes) << oc.order.Label();
    EXPECT_EQ(r->cumulative_join_rows, oc.cumulative);
  }
}

TEST_F(ExecutorTest, ClassicalOrderIsSmallestFirst) {
  JoinOrder o = ClassicalJoinOrder(*corpus_, Docs());
  EXPECT_FALSE(o.bushy);
  StringId author = corpus_->Find("author");
  auto count = [&](int i) {
    return corpus_->element_index(Docs()[i]).Count(author);
  };
  EXPECT_LE(count(o.a), count(o.b));
  EXPECT_LE(count(o.b), count(o.c));
  EXPECT_LE(count(o.c), count(o.d));
}

TEST_F(ExecutorTest, BestPlacementNoSlowerThanEach) {
  CanonicalPlanExecutor exec(*corpus_, Docs());
  JoinOrder order = EnumerateJoinOrders4()[0];
  auto best = exec.RunBestPlacement(order);
  auto worst = exec.RunWorstPlacement(order);
  ASSERT_TRUE(best.ok() && worst.ok());
  EXPECT_LE(best->elapsed_ms, worst->elapsed_ms);
  EXPECT_EQ(best->result_rows, worst->result_rows);
}

TEST_F(ExecutorTest, JsDefersStepsButMatches) {
  CanonicalPlanExecutor exec(*corpus_, Docs());
  JoinOrder order{0, 1, false, 2, 3};
  auto sj = exec.Run(order, StepPlacement::kSJ);
  auto js = exec.Run(order, StepPlacement::kJS);
  auto s_j = exec.Run(order, StepPlacement::kS_J);
  ASSERT_TRUE(sj.ok() && js.ok() && s_j.ok());
  EXPECT_EQ(sj->result_rows, js->result_rows);
  EXPECT_EQ(sj->result_rows, s_j->result_rows);
  // JS joins see un-stepped (unfiltered) text on the probe side, so its
  // intermediate join results can only be at least as large.
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_GE(js->join_result_sizes[i], sj->join_result_sizes[i]);
  }
}

TEST(OrderCardinalityTest, TinyHandComputed) {
  Corpus corpus;
  ASSERT_TRUE(corpus
                  .AddXml("<v><article><author>x</author></article>"
                          "<article><author>y</author></article></v>",
                          "d0")
                  .ok());
  ASSERT_TRUE(corpus
                  .AddXml("<v><article><author>x</author></article>"
                          "<article><author>x</author></article></v>",
                          "d1")
                  .ok());
  ASSERT_TRUE(
      corpus.AddXml("<v><article><author>x</author></article></v>", "d2")
          .ok());
  ASSERT_TRUE(
      corpus.AddXml("<v><article><author>x</author></article></v>", "d3")
          .ok());
  auto cards = ComputeOrderCardinalities(corpus, {0, 1, 2, 3});
  // Find ((0-1)-2)-3: joins x:1*2=2, then 2*1, then 2*1 -> cumulative 6.
  for (const OrderCardinality& oc : cards) {
    if (oc.order.Label() == "(1-2)-3-4") {
      EXPECT_EQ(oc.join_sizes, (std::vector<uint64_t>{2, 2, 2}));
      EXPECT_EQ(oc.cumulative, 6u);
    }
  }
}

}  // namespace
}  // namespace rox
