// Kernel-level truncation-invariant suite (DESIGN.md §14): every
// pair-producing join kernel is driven through {clean finish, limit
// trip, cancellation trip} on both the vectorized and the row-at-a-time
// fallback path, asserting the cut-off protocol invariants:
//
//  * truncated and outer_consumed are mutually consistent
//    (!truncated => outer_consumed == outer.size());
//  * outer_consumed <= outer.size();
//  * every emitted pair references a row < outer_consumed, and
//    left_rows stay grouped (non-decreasing);
//  * a limit trip (the sentinel) leaves exactly `limit` pairs;
//  * vectorized and fallback are byte-identical for any limit and an
//    un-tripped token (cancellation stop *points* may differ — only
//    the invariants are compared there).
//
// Plus regression cases for the pre-§14 accounting bugs: limit trips
// under-reported outer_consumed when match-less rows preceded the
// tripping row, and MergeValueJoinPairs left outer_consumed stale on
// two of its exit paths.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/check.h"
#include "engine/governor.h"
#include "exec/join_result.h"
#include "exec/kernel_batch.h"
#include "exec/structural_join.h"
#include "exec/value_join.h"
#include "index/corpus.h"

namespace rox {
namespace {

// Outer inputs larger than kCancelCheckRows (and fan-outs producing
// > kCancelCheckRows pairs), so a pre-tripped token is guaranteed to
// stop every kernel mid-run through at least one poll.
constexpr size_t kRows = 5000;
constexpr size_t kMod = 8;   // distinct join values
constexpr size_t kDup = 3;   // inner text nodes per value

std::vector<Pre> TextNodes(const Document& doc) {
  std::vector<Pre> out;
  for (Pre p = 0; p < doc.NodeCount(); ++p) {
    if (doc.Kind(p) == NodeKind::kText) out.push_back(p);
  }
  return out;
}

// Left document: kRows <k>i%kMod</k>. Right document: per value, kDup
// <e>v</e> text nodes and one <a v="v"/> attribute — so every outer
// row equi-matches exactly kDup text nodes and exactly 1 attribute.
struct ValueFixture {
  Corpus corpus;
  DocId left = 0, right = 0;
  std::vector<Pre> outer;        // left text nodes, one per row
  std::vector<Pre> inner_texts;  // right text nodes
};

const ValueFixture& VF() {
  static const ValueFixture* f = [] {
    auto* v = new ValueFixture;
    std::string lxml = "<l>";
    for (size_t i = 0; i < kRows; ++i) {
      lxml += "<k>" + std::to_string(i % kMod) + "</k>";
    }
    lxml += "</l>";
    std::string rxml = "<r>";
    for (size_t j = 0; j < kMod; ++j) {
      for (size_t d = 0; d < kDup; ++d) {
        rxml += "<e>" + std::to_string(j) + "</e>";
      }
      rxml += "<a v=\"" + std::to_string(j) + "\"/>";
    }
    rxml += "</r>";
    auto l = v->corpus.AddXml(lxml, "left");
    auto r = v->corpus.AddXml(rxml, "right");
    ROX_CHECK(l.ok() && r.ok());
    v->left = *l;
    v->right = *r;
    v->outer = TextNodes(v->corpus.doc(v->left));
    v->inner_texts = TextNodes(v->corpus.doc(v->right));
    ROX_CHECK(v->outer.size() == kRows);
    return v;
  }();
  return *f;
}

// kRows <p><x/><x/></p> rows: descendant::x / child::x emit exactly 2
// pairs per context row.
struct StructFixture {
  Corpus corpus;
  DocId id = 0;
  std::vector<Pre> context;  // the <p> elements
};

const StructFixture& SF() {
  static const StructFixture* f = [] {
    auto* v = new StructFixture;
    std::string xml = "<s>";
    for (size_t i = 0; i < kRows; ++i) xml += "<p><x/><x/></p>";
    xml += "</s>";
    auto id = v->corpus.AddXml(xml, "struct");
    ROX_CHECK(id.ok());
    v->id = *id;
    auto span = v->corpus.element_index(v->id).Lookup(v->corpus.Find("p"));
    v->context.assign(span.begin(), span.end());
    ROX_CHECK(v->context.size() == kRows);
    return v;
  }();
  return *f;
}

void CheckInvariants(const JoinPairs& p, size_t outer_n) {
  ASSERT_EQ(p.left_rows.size(), p.right_nodes.size());
  EXPECT_LE(p.outer_consumed, outer_n);
  if (!p.truncated) {
    EXPECT_EQ(p.outer_consumed, outer_n);
  }
  for (size_t k = 0; k < p.left_rows.size(); ++k) {
    ASSERT_LT(p.left_rows[k], p.outer_consumed) << "pair " << k;
    if (k > 0) {
      ASSERT_LE(p.left_rows[k - 1], p.left_rows[k]) << "pair " << k;
    }
  }
}

void ExpectIdentical(const JoinPairs& a, const JoinPairs& b,
                     const char* what) {
  EXPECT_EQ(a.left_rows, b.left_rows) << what;
  EXPECT_EQ(a.right_nodes, b.right_nodes) << what;
  EXPECT_EQ(a.truncated, b.truncated) << what;
  EXPECT_EQ(a.outer_consumed, b.outer_consumed) << what;
}

using Kernel =
    std::function<JoinPairs(uint64_t limit, const CancellationToken*, bool)>;

// The full case matrix for one kernel. `pairs_per_row` > 0 asserts the
// sharp cancellation identity size == outer_consumed * pairs_per_row
// for uniform-fanout inputs — which fails if a tripped run keeps a
// partially-emitted row or counts it as consumed. `has_limit` is false
// for the full-execution kernels that take no cut-off (hash, merge).
void RunKernelMatrix(const Kernel& run, size_t outer_n, size_t pairs_per_row,
                     bool has_limit, const char* what) {
  SCOPED_TRACE(what);
  // Clean finish, both paths, byte-identical.
  JoinPairs scalar = run(kNoLimit, nullptr, false);
  JoinPairs vec = run(kNoLimit, nullptr, true);
  CheckInvariants(scalar, outer_n);
  CheckInvariants(vec, outer_n);
  EXPECT_FALSE(scalar.truncated);
  ExpectIdentical(scalar, vec, "clean");
  const uint64_t total = scalar.size();
  if (pairs_per_row > 0) {
    EXPECT_EQ(total, outer_n * pairs_per_row);
  }

  if (has_limit) {
    // Limit trips (and limits the result fits under).
    for (uint64_t limit : {uint64_t{1}, uint64_t{7}, uint64_t{64},
                           uint64_t{1000}, total, total + 10}) {
      SCOPED_TRACE("limit=" + std::to_string(limit));
      JoinPairs s = run(limit, nullptr, false);
      JoinPairs v = run(limit, nullptr, true);
      CheckInvariants(s, outer_n);
      CheckInvariants(v, outer_n);
      EXPECT_EQ(s.truncated, limit < total);
      if (s.truncated) {
        EXPECT_EQ(s.size(), limit);
      }
      ExpectIdentical(s, v, "limit");
    }
  }

  // Cancellation trips: a pre-tripped token stops through the same
  // truncation protocol. Stop points may legitimately differ between
  // the two paths, so each is checked against the invariants alone.
  for (bool vectorized : {false, true}) {
    SCOPED_TRACE(vectorized ? "cancel/vectorized" : "cancel/fallback");
    CancellationToken tok;
    tok.Cancel();
    JoinPairs c = run(kNoLimit, &tok, vectorized);
    CheckInvariants(c, outer_n);
    if (total > kCancelCheckRows) {
      EXPECT_TRUE(c.truncated);
    }
    if (c.truncated && pairs_per_row > 0) {
      EXPECT_EQ(c.size(), c.outer_consumed * pairs_per_row);
    }
  }
}

// --- the kernel matrix ------------------------------------------------------

TEST(KernelInvariantTest, StructuralDescendantIndexed) {
  const StructFixture& sf = SF();
  const Document& doc = sf.corpus.doc(sf.id);
  const ElementIndex* idx = &sf.corpus.element_index(sf.id);
  StepSpec step = StepSpec::Descendant(sf.corpus.Find("x"));
  RunKernelMatrix(
      [&](uint64_t limit, const CancellationToken* c, bool v) {
        return StructuralJoinPairs(doc, sf.context, step, limit, idx, c, v);
      },
      sf.context.size(), 2, true, "descendant::x (bulk index range)");
}

TEST(KernelInvariantTest, StructuralChildSink) {
  const StructFixture& sf = SF();
  const Document& doc = sf.corpus.doc(sf.id);
  const ElementIndex* idx = &sf.corpus.element_index(sf.id);
  StepSpec step = StepSpec::Child(sf.corpus.Find("x"));
  RunKernelMatrix(
      [&](uint64_t limit, const CancellationToken* c, bool v) {
        return StructuralJoinPairs(doc, sf.context, step, limit, idx, c, v);
      },
      sf.context.size(), 2, true, "child::x (per-match sink)");
}

TEST(KernelInvariantTest, StructuralDescendantOrSelfEmitsSelf) {
  const StructFixture& sf = SF();
  const Document& doc = sf.corpus.doc(sf.id);
  const ElementIndex* idx = &sf.corpus.element_index(sf.id);
  // Context nodes match the name test themselves and contain no other
  // <p>: exactly the self pair per row, through the bulk path's
  // self-emission.
  StepSpec step{Axis::kDescendantOrSelf, KindTest::kElem,
                sf.corpus.Find("p")};
  RunKernelMatrix(
      [&](uint64_t limit, const CancellationToken* c, bool v) {
        return StructuralJoinPairs(doc, sf.context, step, limit, idx, c, v);
      },
      sf.context.size(), 1, true, "descendant-or-self::p (self pairs)");
}

TEST(KernelInvariantTest, StructuralFollowingLimitAndCancel) {
  // following::x explodes quadratically (~2 * kRows pairs from row 0
  // alone), so the bulk suffix-range path is exercised under limits and
  // cancellation only — never to completion.
  const StructFixture& sf = SF();
  const Document& doc = sf.corpus.doc(sf.id);
  const ElementIndex* idx = &sf.corpus.element_index(sf.id);
  StepSpec step{Axis::kFollowing, KindTest::kElem, sf.corpus.Find("x")};
  for (uint64_t limit : {uint64_t{1}, uint64_t{1000}}) {
    JoinPairs s = StructuralJoinPairs(doc, sf.context, step, limit, idx,
                                      nullptr, false);
    JoinPairs v = StructuralJoinPairs(doc, sf.context, step, limit, idx,
                                      nullptr, true);
    CheckInvariants(s, sf.context.size());
    EXPECT_TRUE(s.truncated);
    EXPECT_EQ(s.size(), limit);
    ExpectIdentical(s, v, "following limit");
  }
  for (bool vectorized : {false, true}) {
    CancellationToken tok;
    tok.Cancel();
    JoinPairs c = StructuralJoinPairs(doc, sf.context, step, kNoLimit, idx,
                                      &tok, vectorized);
    CheckInvariants(c, sf.context.size());
    EXPECT_TRUE(c.truncated);
  }
}

TEST(KernelInvariantTest, ValueIndexEquiText) {
  const ValueFixture& vf = VF();
  const Document& ldoc = vf.corpus.doc(vf.left);
  const Document& rdoc = vf.corpus.doc(vf.right);
  const ValueIndex& vidx = vf.corpus.value_index(vf.right);
  RunKernelMatrix(
      [&](uint64_t limit, const CancellationToken* c, bool v) {
        JoinPairs out;
        ValueIndexJoinPairsInto(ldoc, std::span<const Pre>(vf.outer), rdoc,
                                vidx, ValueProbeSpec::Text(), limit, out, c,
                                v);
        return out;
      },
      kRows, kDup, true, "index-nl equi, text spec");
}

TEST(KernelInvariantTest, ValueIndexEquiAttr) {
  const ValueFixture& vf = VF();
  const Document& ldoc = vf.corpus.doc(vf.left);
  const Document& rdoc = vf.corpus.doc(vf.right);
  const ValueIndex& vidx = vf.corpus.value_index(vf.right);
  ValueProbeSpec spec = ValueProbeSpec::Attr(vf.corpus.Find("v"));
  RunKernelMatrix(
      [&](uint64_t limit, const CancellationToken* c, bool v) {
        JoinPairs out;
        ValueIndexJoinPairsInto(ldoc, std::span<const Pre>(vf.outer), rdoc,
                                vidx, spec, limit, out, c, v);
        return out;
      },
      kRows, 1, true, "index-nl equi, attr spec");
}

TEST(KernelInvariantTest, ValueIndexTheta) {
  const ValueFixture& vf = VF();
  const Document& ldoc = vf.corpus.doc(vf.left);
  const Document& rdoc = vf.corpus.doc(vf.right);
  const ValueIndex& vidx = vf.corpus.value_index(vf.right);
  for (CmpOp op :
       {CmpOp::kLt, CmpOp::kLe, CmpOp::kGt, CmpOp::kGe, CmpOp::kNe}) {
    RunKernelMatrix(
        [&](uint64_t limit, const CancellationToken* c, bool v) {
          return ValueIndexThetaJoinPairs(ldoc, vf.outer, rdoc, vidx,
                                          ValueProbeSpec::Text(), op, limit,
                                          c, v);
        },
        kRows, 0, true,
        ("index theta op=" + std::to_string(static_cast<int>(op))).c_str());
  }
}

TEST(KernelInvariantTest, SortTheta) {
  const ValueFixture& vf = VF();
  const Document& ldoc = vf.corpus.doc(vf.left);
  const Document& rdoc = vf.corpus.doc(vf.right);
  for (CmpOp op :
       {CmpOp::kLt, CmpOp::kLe, CmpOp::kGt, CmpOp::kGe, CmpOp::kNe}) {
    RunKernelMatrix(
        [&](uint64_t limit, const CancellationToken* c, bool v) {
          return SortThetaJoinPairs(ldoc, vf.outer, rdoc, vf.inner_texts, op,
                                    limit, c, v);
        },
        kRows, 0, true,
        ("sort theta op=" + std::to_string(static_cast<int>(op))).c_str());
  }
}

TEST(KernelInvariantTest, HashProbe) {
  const ValueFixture& vf = VF();
  const Document& ldoc = vf.corpus.doc(vf.left);
  const Document& rdoc = vf.corpus.doc(vf.right);
  RunKernelMatrix(
      [&](uint64_t, const CancellationToken* c, bool v) {
        return HashValueJoinPairs(ldoc, vf.outer, rdoc, vf.inner_texts, c, v);
      },
      kRows, kDup, /*has_limit=*/false, "hash equi probe");
}

TEST(KernelInvariantTest, Merge) {
  const ValueFixture& vf = VF();
  const Document& ldoc = vf.corpus.doc(vf.left);
  const Document& rdoc = vf.corpus.doc(vf.right);
  std::vector<Pre> os = SortByValueId(ldoc, vf.outer);
  std::vector<Pre> is = SortByValueId(rdoc, vf.inner_texts);
  RunKernelMatrix(
      [&](uint64_t, const CancellationToken* c, bool v) {
        return MergeValueJoinPairs(ldoc, os, rdoc, is, c, v);
      },
      kRows, kDup, /*has_limit=*/false, "merge equi join");
}

// --- regression cases for the pre-fix accounting ----------------------------

// A limit trip must count every row up to and including the tripping
// one, even when rows before it matched nothing and none of the
// tripping row's pairs survive the sentinel pop. The former accounting
// derived outer_consumed from left_rows.back() and reported 1 here,
// skewing the reduction factor (and the |r|/f extrapolation) by 6x.
TEST(KernelInvariantTest, EquiLimitCountsMatchlessPrefix) {
  Corpus c;
  auto l = c.AddXml(
      "<l><k>a</k><k>z0</k><k>z1</k><k>z2</k><k>z3</k><k>a</k></l>", "l");
  auto r = c.AddXml("<r><e>a</e><e>a</e><e>a</e></r>", "r");
  ASSERT_TRUE(l.ok() && r.ok());
  const Document& ldoc = c.doc(*l);
  std::vector<Pre> outer = TextNodes(ldoc);
  ASSERT_EQ(outer.size(), 6u);
  for (bool vectorized : {false, true}) {
    JoinPairs out;
    ValueIndexJoinPairsInto(ldoc, std::span<const Pre>(outer), c.doc(*r),
                            c.value_index(*r), ValueProbeSpec::Text(),
                            /*limit=*/3, out, nullptr, vectorized);
    EXPECT_TRUE(out.truncated);
    EXPECT_EQ(out.size(), 3u);  // all from row 0; row 5's pair was the sentinel
    EXPECT_EQ(out.outer_consumed, 6u);
    CheckInvariants(out, outer.size());
  }
}

// Same shape through the theta probe loop: non-numeric rows between the
// emitting row and the tripping row must still count as consumed.
TEST(KernelInvariantTest, ThetaLimitCountsMatchlessPrefix) {
  Corpus c;
  auto l = c.AddXml("<l><k>5</k><k>x</k><k>x</k><k>x</k><k>x</k><k>5</k></l>",
                    "l");
  auto r = c.AddXml("<r><e>10</e><e>20</e><e>30</e></r>", "r");
  ASSERT_TRUE(l.ok() && r.ok());
  const Document& ldoc = c.doc(*l);
  const Document& rdoc = c.doc(*r);
  std::vector<Pre> outer = TextNodes(ldoc);
  std::vector<Pre> inner = TextNodes(rdoc);
  ASSERT_EQ(outer.size(), 6u);
  for (bool vectorized : {false, true}) {
    JoinPairs idx = ValueIndexThetaJoinPairs(
        ldoc, outer, rdoc, c.value_index(*r), ValueProbeSpec::Text(),
        CmpOp::kLt, /*limit=*/3, nullptr, vectorized);
    EXPECT_TRUE(idx.truncated);
    EXPECT_EQ(idx.size(), 3u);
    EXPECT_EQ(idx.outer_consumed, 6u);
    CheckInvariants(idx, outer.size());

    JoinPairs sorted = SortThetaJoinPairs(ldoc, outer, rdoc, inner,
                                          CmpOp::kLt, /*limit=*/3, nullptr,
                                          vectorized);
    ExpectIdentical(idx, sorted, "index vs sort theta");
  }
}

// MergeValueJoinPairs formerly returned from its group cross-product
// loop without setting outer_consumed (leaving 0 with thousands of
// pairs emitted), and stamped truncated without adjusting
// outer_consumed on the loop-head trip.
TEST(KernelInvariantTest, MergeCancellationKeepsPairsWithinConsumedPrefix) {
  const ValueFixture& vf = VF();
  const Document& ldoc = vf.corpus.doc(vf.left);
  const Document& rdoc = vf.corpus.doc(vf.right);
  std::vector<Pre> os = SortByValueId(ldoc, vf.outer);
  std::vector<Pre> is = SortByValueId(rdoc, vf.inner_texts);
  for (bool vectorized : {false, true}) {
    CancellationToken tok;
    tok.Cancel();
    JoinPairs p = MergeValueJoinPairs(ldoc, os, rdoc, is, &tok, vectorized);
    EXPECT_TRUE(p.truncated);
    EXPECT_GT(p.outer_consumed, 0u);
    EXPECT_LT(p.outer_consumed, os.size());
    // Every sorted row matches exactly kDup inner nodes, so a correct
    // stop leaves exactly the consumed prefix's pairs.
    EXPECT_EQ(p.size(), p.outer_consumed * kDup);
    CheckInvariants(p, os.size());
  }
}

// The merge's value-less-tail early exit is a clean finish: value-less
// rows never join, so every outer row counts as consumed.
TEST(KernelInvariantTest, MergeValuelessTailCountsAsConsumed) {
  Corpus c;
  auto l = c.AddXml("<l><k>a</k><k>a</k><k/><k/></l>", "l");
  auto r = c.AddXml("<r><e>a</e></r>", "r");
  ASSERT_TRUE(l.ok() && r.ok());
  const Document& ldoc = c.doc(*l);
  const Document& rdoc = c.doc(*r);
  auto kspan = c.element_index(*l).Lookup(c.Find("k"));
  std::vector<Pre> outer(kspan.begin(), kspan.end());
  ASSERT_EQ(outer.size(), 4u);
  std::vector<Pre> os = SortByValueId(ldoc, outer);
  std::vector<Pre> is = SortByValueId(rdoc, TextNodes(rdoc));
  JoinPairs scalar = MergeValueJoinPairs(ldoc, os, rdoc, is, nullptr, false);
  JoinPairs vec = MergeValueJoinPairs(ldoc, os, rdoc, is, nullptr, true);
  EXPECT_EQ(scalar.size(), 2u);
  EXPECT_FALSE(scalar.truncated);
  EXPECT_EQ(scalar.outer_consumed, 4u);
  ExpectIdentical(scalar, vec, "value-less tail");
}

// --- selection-vector entry points ------------------------------------------

// A PreColumn with a selection vector must produce exactly what the
// gathered copy of the same rows produces, on both kernel paths.
TEST(KernelInvariantTest, PreColumnSelectionMatchesGather) {
  const ValueFixture& vf = VF();
  const Document& ldoc = vf.corpus.doc(vf.left);
  const Document& rdoc = vf.corpus.doc(vf.right);
  const ValueIndex& vidx = vf.corpus.value_index(vf.right);
  std::vector<uint32_t> sel;
  for (uint32_t i = 0; i < kRows; i += 3) sel.push_back(i);
  PreColumn col{vf.outer.data(), sel.data(), sel.size()};
  std::vector<Pre> gathered;
  gathered.reserve(sel.size());
  for (uint32_t s : sel) gathered.push_back(vf.outer[s]);

  ValueHashTable table(rdoc, vf.inner_texts);
  for (bool vectorized : {false, true}) {
    for (uint64_t limit : {kNoLimit, uint64_t{100}}) {
      JoinPairs a, b;
      ValueIndexJoinPairsInto(ldoc, col, rdoc, vidx, ValueProbeSpec::Text(),
                              limit, a, nullptr, vectorized);
      ValueIndexJoinPairsInto(ldoc, std::span<const Pre>(gathered), rdoc,
                              vidx, ValueProbeSpec::Text(), limit, b, nullptr,
                              vectorized);
      ExpectIdentical(a, b, "equi precolumn");
      CheckInvariants(a, sel.size());
    }
    JoinPairs a, b;
    table.ProbeInto(ldoc, col, a, nullptr, vectorized);
    table.ProbeInto(ldoc, std::span<const Pre>(gathered), b, nullptr,
                    vectorized);
    ExpectIdentical(a, b, "hash precolumn");
  }
}

TEST(KernelInvariantTest, StructuralPreColumnMatchesGather) {
  const StructFixture& sf = SF();
  const Document& doc = sf.corpus.doc(sf.id);
  const ElementIndex* idx = &sf.corpus.element_index(sf.id);
  StepSpec step = StepSpec::Descendant(sf.corpus.Find("x"));
  std::vector<uint32_t> sel;
  for (uint32_t i = 0; i < kRows; i += 7) sel.push_back(i);
  PreColumn col{sf.context.data(), sel.data(), sel.size()};
  std::vector<Pre> gathered;
  for (uint32_t s : sel) gathered.push_back(sf.context[s]);
  for (bool vectorized : {false, true}) {
    for (uint64_t limit : {kNoLimit, uint64_t{33}}) {
      JoinPairs a, b;
      StructuralJoinPairsInto(doc, col, step, limit, idx, a, nullptr,
                              vectorized);
      StructuralJoinPairsInto(doc, std::span<const Pre>(gathered), step,
                              limit, idx, b, nullptr, vectorized);
      ExpectIdentical(a, b, "structural precolumn");
      CheckInvariants(a, sel.size());
    }
  }
}

// The *Into variants clear a reused (dirty, previously truncated)
// buffer completely — stale pairs or flags must not leak into the next
// probe.
TEST(KernelInvariantTest, IntoVariantsClearReusedBuffers) {
  const ValueFixture& vf = VF();
  const Document& ldoc = vf.corpus.doc(vf.left);
  const Document& rdoc = vf.corpus.doc(vf.right);
  const ValueIndex& vidx = vf.corpus.value_index(vf.right);
  for (bool vectorized : {false, true}) {
    JoinPairs reused, fresh;
    ValueIndexJoinPairsInto(ldoc, std::span<const Pre>(vf.outer), rdoc, vidx,
                            ValueProbeSpec::Text(), /*limit=*/5, reused,
                            nullptr, vectorized);
    EXPECT_TRUE(reused.truncated);
    ValueIndexJoinPairsInto(ldoc, std::span<const Pre>(vf.outer), rdoc, vidx,
                            ValueProbeSpec::Text(), kNoLimit, reused, nullptr,
                            vectorized);
    ValueIndexJoinPairsInto(ldoc, std::span<const Pre>(vf.outer), rdoc, vidx,
                            ValueProbeSpec::Text(), kNoLimit, fresh, nullptr,
                            vectorized);
    ExpectIdentical(reused, fresh, "buffer reuse");
  }
}

}  // namespace
}  // namespace rox
