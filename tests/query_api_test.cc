// The unified QueryRequest/QueryResponse API (DESIGN.md §15):
// golden-file pinning of the stable response JSON (the wire format
// roxd serves and xq_shell --json prints), and differential tests
// proving the legacy Run/Submit/Explain/Profile entry points are
// exactly Execute(QueryRequest) shims.
//
// Regenerate the golden after an intentional format extension with:
//   ROX_UPDATE_GOLDEN=1 ./rox_tests --gtest_filter='QueryApi*'

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "index/corpus.h"

namespace rox {
namespace {

// A tiny hand-written corpus: deterministic content, deterministic
// row serializations, deterministic golden bytes.
Corpus SmallCorpus() {
  Corpus corpus;
  auto id = corpus.AddXml(
      "<library>"
      "<book><title>A \"quoted\" title</title><year>2001</year></book>"
      "<book><title>Plain</title><year>2003</year></book>"
      "<book><title>Third &amp; last</title><year>2005</year></book>"
      "</library>",
      "lib.xml");
  EXPECT_TRUE(id.ok());
  return corpus;
}

std::string BooksQuery() {
  return R"(for $t in doc("lib.xml")//title return $t)";
}

std::string GoldenPath() {
  std::string self = __FILE__;
  return self.substr(0, self.find_last_of('/')) +
         "/golden/query_response.json";
}

TEST(QueryApiTest, ResponseJsonMatchesGoldenFile) {
  engine::Engine eng(SmallCorpus(), {});
  engine::QueryRequest req;
  req.text = BooksQuery();
  req.client_tag = "golden";
  engine::QueryResponse resp = eng.Execute(req);
  ASSERT_TRUE(resp.ok()) << resp.status.ToString();

  // Timings are nondeterministic; everything else in the wire format
  // must be byte-stable.
  engine::ResponseJsonOptions opts;
  opts.include_timings = false;
  std::string got = resp.ToJson(opts);

  const char* update = std::getenv("ROX_UPDATE_GOLDEN");
  if (update != nullptr && update[0] == '1') {
    std::ofstream out(GoldenPath(), std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << GoldenPath();
    out << got;
    GTEST_SKIP() << "golden file updated";
  }

  std::ifstream in(GoldenPath());
  ASSERT_TRUE(in.good())
      << "missing " << GoldenPath()
      << " (run with ROX_UPDATE_GOLDEN=1 to create it)";
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(got, buf.str())
      << "QueryResponse::ToJson drifted from the golden wire format; "
         "if the change is an intentional *addition*, regenerate with "
         "ROX_UPDATE_GOLDEN=1";
}

TEST(QueryApiTest, JsonRowTruncationIsExplicit) {
  engine::Engine eng(SmallCorpus(), {});
  engine::QueryRequest req;
  req.text = BooksQuery();
  engine::QueryResponse resp = eng.Execute(req);
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp.result.items->size(), 3u);

  engine::ResponseJsonOptions opts;
  opts.max_rows = 2;
  std::string json = resp.ToJson(opts);
  EXPECT_NE(json.find("\"rows_truncated\": true"), std::string::npos);
  EXPECT_NE(json.find("\"row_count\": 3"), std::string::npos);
  // Untruncated serialization has no marker at all.
  EXPECT_EQ(resp.ToJson().find("rows_truncated"), std::string::npos);

  // SerializeResultRows is the same rows the JSON embeds.
  std::vector<std::string> rows =
      engine::SerializeResultRows(resp.result);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[1], "<title>Plain</title>");
}

TEST(QueryApiTest, ParseQueryModeRoundtrips) {
  engine::QueryMode mode;
  EXPECT_TRUE(engine::ParseQueryMode("execute", &mode));
  EXPECT_EQ(mode, engine::QueryMode::kExecute);
  EXPECT_TRUE(engine::ParseQueryMode("EXPLAIN", &mode));
  EXPECT_EQ(mode, engine::QueryMode::kExplain);
  EXPECT_TRUE(engine::ParseQueryMode("Profile", &mode));
  EXPECT_EQ(mode, engine::QueryMode::kProfile);
  EXPECT_FALSE(engine::ParseQueryMode("banana", &mode));
  EXPECT_STREQ(engine::QueryModeName(engine::QueryMode::kProfile),
               "profile");
}

// --- differential: legacy entry points vs Execute -------------------------

TEST(QueryApiDifferentialTest, RunEqualsExecute) {
  engine::EngineOptions opts;
  opts.enable_cache = false;  // no replay: both paths really execute
  engine::Engine eng(SmallCorpus(), opts);

  engine::QueryResult legacy = eng.Run(BooksQuery());
  engine::QueryRequest req;
  req.text = BooksQuery();
  engine::QueryResponse unified = eng.Execute(req);

  ASSERT_TRUE(legacy.ok());
  ASSERT_TRUE(unified.ok());
  EXPECT_EQ(legacy.epoch, unified.result.epoch);
  EXPECT_EQ(engine::SerializeResultRows(legacy),
            engine::SerializeResultRows(unified.result));
}

TEST(QueryApiDifferentialTest, RunWithLimitsEqualsExecuteWithLimits) {
  engine::Engine eng(SmallCorpus(), {});
  QueryLimits limits;
  limits.max_result_rows = 1;  // trips on the 3-row result

  engine::QueryResult legacy = eng.Run(BooksQuery(), limits);
  engine::QueryRequest req;
  req.text = BooksQuery();
  req.limits = limits;
  engine::QueryResponse unified = eng.Execute(req);

  ASSERT_FALSE(legacy.ok());
  ASSERT_FALSE(unified.ok());
  EXPECT_EQ(legacy.status.code(), unified.status.code());
  EXPECT_EQ(legacy.status.code(), StatusCode::kResourceExhausted);
}

TEST(QueryApiDifferentialTest, SubmitEqualsExecuteAsync) {
  engine::Engine eng(SmallCorpus(), {});
  engine::QueryResult legacy = eng.Submit(BooksQuery()).get();
  engine::QueryRequest req;
  req.text = BooksQuery();
  engine::QueryResponse unified = eng.ExecuteAsync(std::move(req)).get();
  ASSERT_TRUE(legacy.ok());
  ASSERT_TRUE(unified.ok());
  EXPECT_EQ(engine::SerializeResultRows(legacy),
            engine::SerializeResultRows(unified.result));
}

TEST(QueryApiDifferentialTest, ExplainEqualsExecuteExplainMode) {
  engine::Engine eng(SmallCorpus(), {});
  auto legacy = eng.Explain(BooksQuery());
  engine::QueryRequest req;
  req.text = BooksQuery();
  req.mode = engine::QueryMode::kExplain;
  engine::QueryResponse unified = eng.Execute(req);
  ASSERT_TRUE(legacy.ok());
  ASSERT_TRUE(unified.ok());
  EXPECT_EQ(*legacy, unified.explain_text);
  EXPECT_FALSE(unified.explain_text.empty());
  // Explain executes nothing.
  EXPECT_EQ(unified.result.items, nullptr);
}

TEST(QueryApiDifferentialTest, ProfileEqualsExecuteProfileMode) {
  engine::Engine eng(SmallCorpus(), {});
  engine::QueryResult legacy = eng.Profile(BooksQuery());
  engine::QueryRequest req;
  req.text = BooksQuery();
  req.mode = engine::QueryMode::kProfile;
  engine::QueryResponse unified = eng.Execute(req);
  ASSERT_TRUE(legacy.ok());
  ASSERT_TRUE(unified.ok());
  // Both carry a full trace and actually executed (no replay).
  ASSERT_NE(legacy.trace, nullptr);
  ASSERT_NE(unified.result.trace, nullptr);
  EXPECT_FALSE(legacy.result_cache_hit);
  EXPECT_FALSE(unified.result.result_cache_hit);
  EXPECT_EQ(engine::SerializeResultRows(legacy),
            engine::SerializeResultRows(unified.result));
}

TEST(QueryApiDifferentialTest, ExecuteAsyncCallbackDeliversOffThread) {
  engine::Engine eng(SmallCorpus(), {});
  engine::QueryRequest req;
  req.text = BooksQuery();
  uint64_t seq = eng.ReserveSequence();
  std::promise<engine::QueryResponse> delivered;
  eng.ExecuteAsync(std::move(req), seq,
                   [&](engine::QueryResponse resp) {
                     delivered.set_value(std::move(resp));
                   });
  engine::QueryResponse resp = delivered.get_future().get();
  ASSERT_TRUE(resp.ok()) << resp.status.ToString();
  EXPECT_EQ(resp.sequence(), seq);
  EXPECT_EQ(engine::SerializeResultRows(resp.result).size(), 3u);
}

}  // namespace
}  // namespace rox
