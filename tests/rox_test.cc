// End-to-end tests of the ROX run-time optimizer against independent
// brute-force oracles.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "classical/rox_order.h"
#include "rox/optimizer.h"
#include "workload/dblp.h"
#include "workload/xmark.h"

namespace rox {
namespace {

// Builds a small corpus of "author list" documents with known values.
Corpus TinyCorpus() {
  Corpus corpus;
  auto add = [&](const char* name, std::vector<const char*> authors) {
    std::string xml = "<venue>";
    for (const char* a : authors) {
      xml += "<article><author>";
      xml += a;
      xml += "</author></article>";
    }
    xml += "</venue>";
    auto r = corpus.AddXml(xml, name);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  };
  add("d0", {"ann", "bob", "cid", "ann"});
  add("d1", {"ann", "bob", "dee"});
  add("d2", {"bob", "ann", "ann", "eve"});
  add("d3", {"ann", "fay", "bob", "bob"});
  return corpus;
}

// Oracle: Σ_v Π_i f_i(v) over author text values.
uint64_t OracleJoinCount(const Corpus& corpus, const std::vector<DocId>& docs) {
  std::map<StringId, std::vector<uint64_t>> freq;
  for (size_t i = 0; i < docs.size(); ++i) {
    for (auto [v, n] : AuthorValueHistogram(corpus, docs[i])) {
      auto& f = freq[v];
      f.resize(docs.size(), 0);
      f[i] = n;
    }
  }
  uint64_t total = 0;
  for (auto& [v, f] : freq) {
    f.resize(docs.size(), 0);
    uint64_t prod = 1;
    for (uint64_t n : f) prod *= n;
    total += prod;
  }
  return total;
}

TEST(RoxOptimizerTest, DblpGraphMatchesOracle) {
  Corpus corpus = TinyCorpus();
  std::vector<DocId> docs = {0, 1, 2, 3};
  DblpQueryGraph q = BuildDblpJoinGraph(corpus, docs);
  RoxOptions opt;
  opt.tau = 4;
  RoxOptimizer rox(corpus, q.graph, opt);
  auto result = rox.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // ann: 2*1*2*1=4, bob: 1*1*1*2=2 -> 6 rows.
  EXPECT_EQ(OracleJoinCount(corpus, docs), 6u);
  EXPECT_EQ(result->table.NumRows(), 6u);
}

TEST(RoxOptimizerTest, MatchesOracleWithoutClosure) {
  Corpus corpus = TinyCorpus();
  std::vector<DocId> docs = {0, 1, 2, 3};
  DblpQueryGraph q = BuildDblpJoinGraph(corpus, docs,
                                        /*add_equivalence_closure=*/false);
  RoxOptimizer rox(corpus, q.graph, {.tau = 4});
  auto result = rox.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->table.NumRows(), 6u);
}

TEST(RoxOptimizerTest, TwoDocJoin) {
  Corpus corpus = TinyCorpus();
  std::vector<DocId> docs = {0, 2};
  DblpQueryGraph q = BuildDblpJoinGraph(corpus, docs);
  RoxOptimizer rox(corpus, q.graph, {.tau = 2});
  auto result = rox.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // ann 2*2 + bob 1*1 = 5.
  EXPECT_EQ(result->table.NumRows(), 5u);
}

TEST(RoxOptimizerTest, EmptyResult) {
  Corpus corpus;
  ASSERT_TRUE(corpus.AddXml("<v><article><author>aa</author></article></v>",
                            "d0")
                  .ok());
  ASSERT_TRUE(corpus.AddXml("<v><article><author>zz</author></article></v>",
                            "d1")
                  .ok());
  DblpQueryGraph q = BuildDblpJoinGraph(corpus, {0, 1});
  RoxOptimizer rox(corpus, q.graph, {.tau = 8});
  auto result = rox.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->table.NumRows(), 0u);
}

TEST(RoxOptimizerTest, DeterministicWithSeed) {
  Corpus corpus = TinyCorpus();
  DblpQueryGraph q = BuildDblpJoinGraph(corpus, {0, 1, 2, 3});
  RoxOptions opt;
  opt.tau = 3;
  opt.seed = 99;
  auto r1 = RoxOptimizer(corpus, q.graph, opt).Run();
  auto r2 = RoxOptimizer(corpus, q.graph, opt).Run();
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1->stats.execution_order, r2->stats.execution_order);
  EXPECT_EQ(r1->table.NumRows(), r2->table.NumRows());
}

struct AblationCase {
  const char* name;
  RoxOptions options;
};

class RoxAblationTest : public ::testing::TestWithParam<AblationCase> {};

TEST_P(RoxAblationTest, ResultInvariantUnderAblations) {
  // All ablations change *how fast* a plan is found, never the result.
  Corpus corpus = TinyCorpus();
  DblpQueryGraph q = BuildDblpJoinGraph(corpus, {0, 1, 2, 3});
  RoxOptions opt = GetParam().options;
  opt.tau = 3;
  RoxOptimizer rox(corpus, q.graph, opt);
  auto result = rox.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->table.NumRows(), 6u);
}

INSTANTIATE_TEST_SUITE_P(
    Ablations, RoxAblationTest,
    ::testing::Values(
        AblationCase{"baseline", {}},
        AblationCase{"no_chain", {.enable_chain_sampling = false}},
        AblationCase{"no_resample", {.resample_after_execute = false}},
        AblationCase{"no_grow", {.grow_cutoff = false}},
        AblationCase{"no_index", {.use_index_acceleration = false}},
        AblationCase{"all_off",
                     {.enable_chain_sampling = false,
                      .resample_after_execute = false,
                      .grow_cutoff = false,
                      .use_index_acceleration = false}}),
    [](const ::testing::TestParamInfo<AblationCase>& info) {
      return info.param.name;
    });

class RoxTauTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RoxTauTest, ResultInvariantUnderSampleSize) {
  Corpus corpus = TinyCorpus();
  DblpQueryGraph q = BuildDblpJoinGraph(corpus, {0, 1, 2, 3});
  RoxOptions opt;
  opt.tau = GetParam();
  auto result = RoxOptimizer(corpus, q.graph, opt).Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->table.NumRows(), 6u);
}

INSTANTIATE_TEST_SUITE_P(Taus, RoxTauTest,
                         ::testing::Values(1, 2, 5, 25, 100, 400));

TEST(RoxOptimizerTest, StatsPopulated) {
  Corpus corpus = TinyCorpus();
  DblpQueryGraph q = BuildDblpJoinGraph(corpus, {0, 1, 2, 3});
  RoxOptimizer rox(corpus, q.graph, {.tau = 4});
  auto result = rox.Run();
  ASSERT_TRUE(result.ok());
  const RoxStats& s = result->stats;
  EXPECT_EQ(s.edges_executed, q.graph.EdgeCount());
  EXPECT_EQ(s.execution_order.size(), q.graph.EdgeCount());
  EXPECT_GT(s.cumulative_intermediate_rows, 0u);
  EXPECT_GE(s.peak_intermediate_rows, 6u);
  EXPECT_GE(s.sampling_time.TotalNanos(), 0);
  EXPECT_GT(s.execution_time.TotalNanos(), 0);
}

TEST(RoxResultTest, ColumnOfUsesSortedIndex) {
  // Regression: ColumnOf was a linear scan; it is now backed by a
  // sorted (vertex, column) index built by IndexColumns(). Vertex ids
  // are deliberately unsorted and non-dense.
  RoxResult result;
  result.columns = {42, 7, 99, 0, 13};
  // Without IndexColumns() the linear fallback must still be correct.
  EXPECT_EQ(result.ColumnOf(99), 2u);
  result.IndexColumns();
  EXPECT_EQ(result.ColumnOf(42), 0u);
  EXPECT_EQ(result.ColumnOf(7), 1u);
  EXPECT_EQ(result.ColumnOf(99), 2u);
  EXPECT_EQ(result.ColumnOf(0), 3u);
  EXPECT_EQ(result.ColumnOf(13), 4u);
  EXPECT_EQ(result.ColumnOf(1), RoxResult::npos);
  EXPECT_EQ(result.ColumnOf(100), RoxResult::npos);
  // Mutating columns and re-indexing keeps lookups in sync.
  result.columns.push_back(55);
  result.IndexColumns();
  EXPECT_EQ(result.ColumnOf(55), 5u);
  // Same-size in-place mutation without re-indexing must still be
  // correct (the stale index entry fails its mapped-back check and the
  // lookup falls through to the scan).
  result.columns[2] = 77;
  EXPECT_EQ(result.ColumnOf(77), 2u);
  EXPECT_EQ(result.ColumnOf(99), RoxResult::npos);
}

TEST(RoxOptimizerTest, FinalEdgeWeightsWarmStartSecondRun) {
  Corpus corpus = TinyCorpus();
  DblpQueryGraph q = BuildDblpJoinGraph(corpus, {0, 1, 2, 3});
  auto cold = RoxOptimizer(corpus, q.graph, {.tau = 4}).Run();
  ASSERT_TRUE(cold.ok());
  ASSERT_EQ(cold->final_edge_weights.size(), q.graph.EdgeCount());
  EXPECT_EQ(cold->stats.warm_started_weights, 0u);

  RoxOptions warm_options{.tau = 4};
  warm_options.warm_edge_weights = &cold->final_edge_weights;
  auto warm = RoxOptimizer(corpus, q.graph, warm_options).Run();
  ASSERT_TRUE(warm.ok());
  EXPECT_GT(warm->stats.warm_started_weights, 0u);
  // Warm starting changes only the sampling work, never the result.
  EXPECT_EQ(warm->table.NumRows(), cold->table.NumRows());

  // The ablation flag restores cold behavior.
  warm_options.use_warm_start = false;
  auto ablated = RoxOptimizer(corpus, q.graph, warm_options).Run();
  ASSERT_TRUE(ablated.ok());
  EXPECT_EQ(ablated->stats.warm_started_weights, 0u);
}

TEST(RoxOptimizerTest, WarmStartIgnoresInteriorEdgeWeights) {
  // Regression: the learned weight of an *interior* edge (neither
  // endpoint index-selectable — here the text()=text() equi-joins) is a
  // post-reduction cardinality. Adopting it would make MinWeightEdge
  // schedule that edge before either endpoint can be materialized
  // ("neither endpoint is materializable"). Warm weights of zero on
  // every edge are the adversarial case: interior edges tie for the
  // minimum.
  Corpus corpus = TinyCorpus();
  DblpQueryGraph q = BuildDblpJoinGraph(corpus, {0, 1, 2, 3});
  auto cold = RoxOptimizer(corpus, q.graph, {.tau = 4}).Run();
  ASSERT_TRUE(cold.ok());

  std::vector<double> adversarial(q.graph.EdgeCount(), 0.0);
  RoxOptions warm_options{.tau = 4};
  warm_options.warm_edge_weights = &adversarial;
  auto warm = RoxOptimizer(corpus, q.graph, warm_options).Run();
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_EQ(warm->table.NumRows(), cold->table.NumRows());
}

TEST(RoxOptimizerTest, ColumnsCoverJoinedVertices) {
  Corpus corpus = TinyCorpus();
  DblpQueryGraph q = BuildDblpJoinGraph(corpus, {0, 1, 2, 3});
  auto result = RoxOptimizer(corpus, q.graph, {.tau = 4}).Run();
  ASSERT_TRUE(result.ok());
  // 4 author + 4 text vertices joined (roots pruned away).
  EXPECT_EQ(result->columns.size(), 8u);
  for (VertexId v : q.authors) {
    EXPECT_NE(result->ColumnOf(v), RoxResult::npos);
  }
  // Every row's text values must all be equal.
  const ResultTable& t = result->table;
  std::vector<size_t> text_cols;
  for (VertexId v : q.texts) text_cols.push_back(result->ColumnOf(v));
  for (uint64_t r = 0; r < t.NumRows(); ++r) {
    StringId v0 = corpus.doc(0).Value(t.Col(text_cols[0])[r]);
    for (size_t i = 1; i < text_cols.size(); ++i) {
      EXPECT_EQ(corpus.doc(static_cast<DocId>(i))
                    .Value(t.Col(text_cols[i])[r]),
                v0);
    }
  }
}

TEST(RoxOptimizerTest, DisconnectedGraphRejected) {
  Corpus corpus = TinyCorpus();
  JoinGraph g;
  StringId author = corpus.Find("author");
  VertexId a = g.AddElement(0, author, "a");
  VertexId t = g.AddText(0);
  VertexId b = g.AddElement(1, author, "b");
  VertexId u = g.AddText(1);
  g.AddStep(a, Axis::kChild, t);
  g.AddStep(b, Axis::kChild, u);
  auto result = RoxOptimizer(corpus, g).Run();
  EXPECT_FALSE(result.ok());
}

// --- XMark Q1 oracle ----------------------------------------------------------

// Brute-force row count of the Q1 join graph over the generated
// document, computed by direct tree walks (independent of the engine's
// join machinery).
uint64_t OracleXmarkQ1Rows(const Corpus& corpus, DocId doc_id,
                           double threshold, bool less_than) {
  const Document& doc = corpus.doc(doc_id);
  const StringPool& pool = corpus.string_pool();
  StringId s_oa = pool.Find("open_auction");
  StringId s_current = pool.Find("current");
  StringId s_bidder = pool.Find("bidder");
  StringId s_personref = pool.Find("personref");
  StringId s_person_attr = pool.Find("person");
  StringId s_itemref = pool.Find("itemref");
  StringId s_item_attr = pool.Find("item");
  StringId s_person = pool.Find("person");
  StringId s_province = pool.Find("province");
  StringId s_id = pool.Find("id");
  StringId s_item = pool.Find("item");
  StringId s_quantity = pool.Find("quantity");
  StringId s_one = pool.Find("1");

  // person @id value -> Σ over persons with that id of (#province × #id-attr).
  std::map<StringId, uint64_t> person_weight;
  std::map<StringId, uint64_t> item_weight;
  auto desc_count = [&](Pre e, StringId name) {
    uint64_t n = 0;
    for (Pre q = e + 1; q <= e + doc.Size(e); ++q) {
      if (doc.Kind(q) == NodeKind::kElem && doc.Name(q) == name) ++n;
    }
    return n;
  };
  for (Pre p = 0; p < doc.NodeCount(); ++p) {
    if (doc.Kind(p) != NodeKind::kElem) continue;
    if (doc.Name(p) == s_person) {
      StringId id = doc.AttributeValue(p, s_id);
      if (id == kInvalidStringId) continue;
      person_weight[id] += desc_count(p, s_province);
    } else if (doc.Name(p) == s_item) {
      StringId id = doc.AttributeValue(p, s_id);
      if (id == kInvalidStringId) continue;
      // quantity child with single text child "1" (three vertices:
      // quantity, its text, the item @id — one row per such chain).
      uint64_t q1 = 0;
      for (Pre q = p + 1; q <= p + doc.Size(p); ++q) {
        if (doc.Kind(q) == NodeKind::kElem && doc.Name(q) == s_quantity &&
            doc.Parent(q) == p && doc.SingleTextChildValue(q) == s_one) {
          ++q1;
        }
      }
      item_weight[id] += q1;
    }
  }

  uint64_t rows = 0;
  for (Pre oa = 0; oa < doc.NodeCount(); ++oa) {
    if (doc.Kind(oa) != NodeKind::kElem || doc.Name(oa) != s_oa) continue;
    Pre end = oa + doc.Size(oa);
    // (current, text) pairs passing the predicate.
    uint64_t a = 0;
    // bidder branch weight.
    uint64_t b = 0;
    // itemref branch weight.
    uint64_t c = 0;
    for (Pre q = oa + 1; q <= end; ++q) {
      if (doc.Kind(q) != NodeKind::kElem) continue;
      if (doc.Name(q) == s_current) {
        for (Pre t = q + 1; t <= q + doc.Size(q); ++t) {
          if (doc.Kind(t) == NodeKind::kText && doc.Parent(t) == q) {
            auto num = pool.NumericValue(doc.Value(t));
            if (!num) continue;
            if ((less_than && *num < threshold) ||
                (!less_than && *num > threshold)) {
              ++a;
            }
          }
        }
      } else if (doc.Name(q) == s_bidder) {
        for (Pre pr = q + 1; pr <= q + doc.Size(q); ++pr) {
          if (doc.Kind(pr) == NodeKind::kElem && doc.Name(pr) == s_personref) {
            StringId pv = doc.AttributeValue(pr, s_person_attr);
            if (pv == kInvalidStringId) continue;
            auto it = person_weight.find(pv);
            if (it != person_weight.end()) b += it->second;
          }
        }
      } else if (doc.Name(q) == s_itemref) {
        StringId iv = doc.AttributeValue(q, s_item_attr);
        if (iv == kInvalidStringId) continue;
        auto it = item_weight.find(iv);
        if (it != item_weight.end()) c += it->second;
      }
    }
    rows += a * b * c;
  }
  return rows;
}

TEST(RoxOptimizerTest, XmarkQ1MatchesOracle) {
  Corpus corpus;
  XmarkGenOptions gen;
  gen.items = 60;
  gen.persons = 80;
  gen.open_auctions = 70;
  auto doc = GenerateXmarkDocument(corpus, gen);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  for (bool less_than : {true, false}) {
    XmarkQ1Graph q = BuildXmarkQ1Graph(corpus, *doc, 145.0, less_than);
    ASSERT_TRUE(q.graph.Validate().ok());
    RoxOptions opt;
    opt.tau = 20;
    auto result = RoxOptimizer(corpus, q.graph, opt).Run();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    uint64_t expect = OracleXmarkQ1Rows(corpus, *doc, 145.0, less_than);
    EXPECT_EQ(result->table.NumRows(), expect)
        << (less_than ? "Q1" : "Qm1");
    EXPECT_GT(expect, 0u);
  }
}


// Property sweep: ROX must compute the exact Q1/Qm1 result for every
// threshold and predicate direction.
struct ThresholdCase {
  double threshold;
  bool less_than;
};

class RoxThresholdSweep : public ::testing::TestWithParam<ThresholdCase> {};

TEST_P(RoxThresholdSweep, MatchesOracle) {
  Corpus corpus;
  XmarkGenOptions gen;
  gen.items = 80;
  gen.persons = 90;
  gen.open_auctions = 80;
  auto doc = GenerateXmarkDocument(corpus, gen);
  ASSERT_TRUE(doc.ok());
  ThresholdCase c = GetParam();
  XmarkQ1Graph q = BuildXmarkQ1Graph(corpus, *doc, c.threshold, c.less_than);
  RoxOptions opt;
  opt.tau = 15;
  auto result = RoxOptimizer(corpus, q.graph, opt).Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->table.NumRows(),
            OracleXmarkQ1Rows(corpus, *doc, c.threshold, c.less_than));
}

INSTANTIATE_TEST_SUITE_P(
    Thresholds, RoxThresholdSweep,
    ::testing::Values(ThresholdCase{30, true}, ThresholdCase{30, false},
                      ThresholdCase{100, true}, ThresholdCase{100, false},
                      ThresholdCase{145, true}, ThresholdCase{145, false},
                      ThresholdCase{220, true}, ThresholdCase{220, false},
                      ThresholdCase{400, true},   // everything / nothing
                      ThresholdCase{-1, false}),
    [](const ::testing::TestParamInfo<ThresholdCase>& info) {
      std::string n = info.param.less_than ? "lt_" : "gt_";
      double t = info.param.threshold;
      n += t < 0 ? "neg1" : std::to_string(static_cast<int>(t));
      return n;
    });

TEST(RoxOptimizerTest, RoxJoinOrderExtraction) {
  Corpus corpus = TinyCorpus();
  std::vector<DocId> docs = {0, 1, 2, 3};
  DblpQueryGraph q = BuildDblpJoinGraph(corpus, docs);
  auto result = RoxOptimizer(corpus, q.graph, {.tau = 4}).Run();
  ASSERT_TRUE(result.ok());
  auto order = RoxJoinOrderFromRun(q, *result);
  ASSERT_TRUE(order.ok()) << order.status().ToString();
  // Sanity: the order covers all four documents exactly once.
  std::vector<int> seq = order->DocSequence();
  std::sort(seq.begin(), seq.end());
  EXPECT_EQ(seq, (std::vector<int>{0, 1, 2, 3}));
}

}  // namespace
}  // namespace rox
