#include <gtest/gtest.h>

#include "bench/bench_util.h"

namespace rox::bench {
namespace {

TEST(FlagsTest, ParsesTypedFlags) {
  const char* argv[] = {"prog", "--alpha=2.5", "--count=7", "--on",
                        "--off=false"};
  Flags flags(5, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetDouble("alpha", 0), 2.5);
  EXPECT_EQ(flags.GetInt("count", 0), 7);
  EXPECT_TRUE(flags.GetBool("on", false));
  EXPECT_FALSE(flags.GetBool("off", true));
  EXPECT_EQ(flags.GetInt("missing", 42), 42);
}

TEST(SampleCombosTest, GroupsAndCaps) {
  std::vector<Combo> combos = SampleCombos(5, 123);
  int g22 = 0, g31 = 0, g40 = 0;
  for (const Combo& c : combos) {
    if (c.group == "2:2") ++g22;
    if (c.group == "3:1") ++g31;
    if (c.group == "4:0") ++g40;
    // Indices strictly increasing and in range.
    for (int i = 0; i < 4; ++i) {
      EXPECT_GE(c.spec_indices[i], 0);
      EXPECT_LT(c.spec_indices[i], 23);
      if (i > 0) {
        EXPECT_LT(c.spec_indices[i - 1], c.spec_indices[i]);
      }
    }
  }
  EXPECT_EQ(g22 + g31 + g40, static_cast<int>(combos.size()));
  EXPECT_LE(g22, 5);
  EXPECT_LE(g31, 5);
  EXPECT_LE(g40, 5);
  EXPECT_GT(g40, 0);
}

TEST(SampleCombosTest, UnlimitedKeepsAllGroups) {
  std::vector<Combo> all = SampleCombos(0, 1);
  // 23 choose 4 = 8855 combinations total; only the three paper groups
  // are kept. 4:0 alone has C(4,4)+C(5,4)+C(6,4)+C(6,4) = 36.
  int g40 = 0;
  for (const Combo& c : all) g40 += c.group == "4:0";
  EXPECT_EQ(g40, 36);
  EXPECT_GT(all.size(), 1000u);   // plenty of 2:2/3:1
  EXPECT_LT(all.size(), 8855u);   // but not everything
}

TEST(SampleCombosTest, DeterministicPerSeed) {
  auto a = SampleCombos(7, 99);
  auto b = SampleCombos(7, 99);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].spec_indices, b[i].spec_indices);
  }
}

TEST(MeasureComboTest, EndToEndOnOneCombo) {
  // An all-DB combination with guaranteed overlap.
  Combo combo;
  combo.spec_indices = {19, 20, 21, 22};
  combo.group = "4:0";
  DblpGenOptions gen;
  gen.tag_scale = 0.15;
  auto corpus = ComboCorpus(combo, gen);
  ASSERT_TRUE(corpus.ok());
  RoxOptions opt;
  auto m = MeasureCombo(*corpus, combo, opt);
  ASSERT_TRUE(m.has_value());
  EXPECT_GT(m->result_rows, 0u);
  EXPECT_GT(m->rox_full_ms, 0.0);
  EXPECT_GE(m->rox_full_ms, m->rox_pure_ms);
  EXPECT_GT(m->smallest_ms, 0.0);
  EXPECT_GT(m->classical_ms, 0.0);
  EXPECT_GT(m->largest_ms, 0.0);
  EXPECT_GT(m->optimal_ms, 0.0);
  EXPECT_LE(m->optimal_ms, m->classical_ms);
  EXPECT_LE(m->optimal_ms, m->smallest_ms);
  EXPECT_GT(m->combo.correlation, 0.0);
  EXPECT_FALSE(m->rox_order_label.empty());
}

TEST(GeoMeanTest, Basics) {
  EXPECT_DOUBLE_EQ(GeoMean({4.0, 1.0}), 2.0);
  EXPECT_EQ(GeoMean({}), 0.0);
}

}  // namespace
}  // namespace rox::bench
