#include "obs/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "index/value_index.h"
#include "workload/xmark.h"

namespace rox::obs {
namespace {

// --- TraceLevel --------------------------------------------------------------

TEST(TraceLevelTest, NamesRoundTrip) {
  for (TraceLevel level :
       {TraceLevel::kOff, TraceLevel::kSpans, TraceLevel::kFull}) {
    TraceLevel parsed;
    ASSERT_TRUE(ParseTraceLevel(TraceLevelName(level), &parsed));
    EXPECT_EQ(parsed, level);
  }
  TraceLevel ignored;
  EXPECT_FALSE(ParseTraceLevel("verbose", &ignored));
  EXPECT_FALSE(ParseTraceLevel("", &ignored));
}

// --- QueryTrace spans --------------------------------------------------------

TEST(QueryTraceTest, SpanNestingRecordsParents) {
  QueryTrace t(TraceLevel::kSpans);
  uint32_t root = t.BeginSpan("query");
  uint32_t child = t.BeginSpan("execute");
  uint32_t grandchild = t.BeginSpan("rox", "component 0");
  EXPECT_EQ(t.spans()[grandchild].duration_ns, -1);  // still open
  t.EndSpan(grandchild);
  t.EndSpan(child);
  t.EndSpan(root);

  ASSERT_EQ(t.spans().size(), 3u);
  EXPECT_EQ(t.spans()[root].parent, -1);
  EXPECT_EQ(t.spans()[child].parent, static_cast<int32_t>(root));
  EXPECT_EQ(t.spans()[grandchild].parent, static_cast<int32_t>(child));
  EXPECT_EQ(t.spans()[grandchild].detail, "component 0");
  for (const TraceSpan& s : t.spans()) EXPECT_GE(s.duration_ns, 0);
  // Children start no earlier than their parents.
  EXPECT_GE(t.spans()[child].start_ns, t.spans()[root].start_ns);
}

TEST(QueryTraceTest, AttrsAndEvents) {
  QueryTrace t(TraceLevel::kFull);
  uint32_t root = t.BeginSpan("query");
  t.AttrNum(root, "seq", 7);
  t.AttrStr(root, "status", "ok");
  t.Event("resample", "w 3.0 -> 5.0");
  t.EndSpan(root);

  ASSERT_EQ(t.spans().size(), 2u);
  const TraceSpan& ev = t.spans()[1];
  EXPECT_STREQ(ev.name, "resample");
  EXPECT_EQ(ev.parent, static_cast<int32_t>(root));
  EXPECT_EQ(ev.duration_ns, 0);  // events are zero-duration spans

  ASSERT_EQ(t.spans()[root].attrs.size(), 2u);
  EXPECT_STREQ(t.spans()[root].attrs[0].key, "seq");
  EXPECT_TRUE(t.spans()[root].attrs[0].is_num);
  EXPECT_EQ(t.spans()[root].attrs[0].num, 7.0);
  EXPECT_FALSE(t.spans()[root].attrs[1].is_num);
  EXPECT_EQ(t.spans()[root].attrs[1].str, "ok");
}

TEST(QueryTraceTest, EdgePayloadsAndSampleCounting) {
  QueryTrace t(TraceLevel::kFull);
  uint32_t root = t.BeginSpan("query");

  t.CountSampleCall(3);  // pre-execution sampling: no open edge
  EXPECT_EQ(t.open_edge(), nullptr);

  EdgeTrace* et = t.BeginEdge(3, "v0 -- v1");
  ASSERT_NE(et, nullptr);
  EXPECT_EQ(t.open_edge(), et);
  et->kernel = "hash";
  et->estimated = 12.5;
  et->observed = 40;
  t.CountSampleCall(3);  // counts toward the open edge
  t.CountSampleCall(9);  // a different edge: per-query total only
  t.EndEdge();
  EXPECT_EQ(t.open_edge(), nullptr);
  t.EndSpan(root);

  ASSERT_EQ(t.edges().size(), 1u);
  const EdgeTrace& e = t.edges()[0];
  EXPECT_EQ(e.edge_id, 3);
  EXPECT_EQ(e.label, "v0 -- v1");
  EXPECT_STREQ(e.kernel, "hash");
  EXPECT_EQ(e.sample_calls, 1u);
  EXPECT_EQ(t.total_sample_calls(), 3u);
  // The edge's span is a closed child of root, named by the taxonomy.
  EXPECT_STREQ(t.spans()[e.span].name, "edge");
  EXPECT_EQ(t.spans()[e.span].detail, "v0 -- v1");
  EXPECT_GE(t.spans()[e.span].duration_ns, 0);
}

TEST(QueryTraceTest, SerializationsCarryTheTree) {
  QueryTrace t(TraceLevel::kSpans);
  uint32_t root = t.BeginSpan("query");
  t.AttrStr(root, "text", "doc(\"a\")//b");  // needs JSON escaping
  EdgeTrace* et = t.BeginEdge(0, "person -- personref");
  et->kernel = "structural";
  et->estimated = 5;
  et->observed = 6;
  t.EndEdge();
  t.EndSpan(root);

  std::string json = t.ToJson();
  EXPECT_NE(json.find("\"spans\""), std::string::npos);
  EXPECT_NE(json.find("\"edges\""), std::string::npos);
  EXPECT_NE(json.find("person -- personref"), std::string::npos);
  EXPECT_NE(json.find("doc(\\\"a\\\")"), std::string::npos)
      << "attr strings must be JSON-escaped: " << json;

  std::string tree = t.ToTree();
  EXPECT_NE(tree.find("query"), std::string::npos);
  EXPECT_NE(tree.find("person -- personref"), std::string::npos);
  EXPECT_NE(tree.find("structural"), std::string::npos);
}

TEST(ScopedSpanTest, NullAndOffTracesAreInert) {
  {
    ScopedSpan s(nullptr, "query");
    EXPECT_FALSE(s.armed());
    s.AttrNum("k", 1);  // must not crash
  }
  QueryTrace off(TraceLevel::kOff);
  {
    ScopedSpan s(&off, "query");
    EXPECT_FALSE(s.armed());
  }
  EXPECT_TRUE(off.spans().empty());

  QueryTrace on(TraceLevel::kSpans);
  {
    ScopedSpan s(&on, "query");
    EXPECT_TRUE(s.armed());
    s.AttrNum("k", 1);
  }
  ASSERT_EQ(on.spans().size(), 1u);
  EXPECT_GE(on.spans()[0].duration_ns, 0);
}

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  std::string out;
  AppendJsonEscaped(&out, "a\"b\\c\nd");
  EXPECT_EQ(out, "a\\\"b\\\\c\\nd");
}

}  // namespace
}  // namespace rox::obs

// --- engine integration ------------------------------------------------------

namespace rox::engine {
namespace {

constexpr const char* kJoinQuery =
    "for $b in doc(\"xmark.xml\")//bidder//personref, "
    "$p in doc(\"xmark.xml\")//person "
    "where $b/@person = $p/@id return $p";

Corpus MakeCorpus() {
  Corpus corpus;
  XmarkGenOptions gen;
  gen.items = 200;
  gen.persons = 300;
  gen.open_auctions = 150;
  auto id = GenerateXmarkDocument(corpus, gen);
  EXPECT_TRUE(id.ok());
  return corpus;
}

TEST(TraceEngineTest, OffByDefaultRecordsNothing) {
  Engine eng(MakeCorpus());
  QueryResult r = eng.Run(kJoinQuery);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.trace, nullptr);
  EXPECT_EQ(r.trace_json(), "{}");
}

TEST(TraceEngineTest, SpansLevelAttachesTraceToEveryQuery) {
  EngineOptions opts;
  opts.trace_level = obs::TraceLevel::kSpans;
  Engine eng(MakeCorpus(), opts);
  QueryResult r = eng.Run(kJoinQuery);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  ASSERT_NE(r.trace, nullptr);
  EXPECT_EQ(r.trace->level(), obs::TraceLevel::kSpans);
  ASSERT_FALSE(r.trace->spans().empty());
  EXPECT_STREQ(r.trace->spans()[0].name, "query");
  // A cached re-run still gets a trace (provenance says it was replayed).
  QueryResult again = eng.Run(kJoinQuery);
  ASSERT_TRUE(again.status.ok());
  ASSERT_NE(again.trace, nullptr);
}

TEST(TraceEngineTest, ProfileRecordsFullSpanTreeAndEdges) {
  Engine eng(MakeCorpus());  // trace off by default: \profile overrides
  QueryResult r = eng.Profile(kJoinQuery);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  ASSERT_NE(r.trace, nullptr);
  EXPECT_EQ(r.trace->level(), obs::TraceLevel::kFull);

  std::vector<std::string> names;
  for (const obs::TraceSpan& s : r.trace->spans()) names.push_back(s.name);
  for (const char* expected : {"query", "parse", "compile", "execute", "rox",
                               "phase1", "edge", "assembly"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing span " << expected << " in\n"
        << r.trace->ToTree();
  }

  ASSERT_FALSE(r.trace->edges().empty());
  for (const obs::EdgeTrace& e : r.trace->edges()) {
    EXPECT_FALSE(e.label.empty());
    EXPECT_GT(std::strlen(e.kernel), 0u) << e.label;
    EXPECT_GE(e.observed, 0) << e.label;
  }
  // Phase 1 sampled something, and full level counted it.
  EXPECT_GT(r.trace->total_sample_calls(), 0u);

  // Profile bypasses result replay: a second profile re-executes and
  // records fresh edges rather than a replay note.
  QueryResult r2 = eng.Profile(kJoinQuery);
  ASSERT_TRUE(r2.status.ok());
  ASSERT_NE(r2.trace, nullptr);
  EXPECT_FALSE(r2.trace->edges().empty());
  ASSERT_NE(r2.items, nullptr);
  ASSERT_NE(r.items, nullptr);
  EXPECT_EQ(*r2.items, *r.items);
}

TEST(TraceEngineTest, ProfileThetaJoinShowsEstimatesAndThetaKernel) {
  Engine eng(MakeCorpus());
  QueryResult r =
      eng.Profile(XmarkQuantityIncreaseQuery(CmpOp::kGt, /*quantity_guard=*/5));
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  ASSERT_NE(r.trace, nullptr);
  ASSERT_FALSE(r.trace->edges().empty());
  bool saw_theta = false;
  bool saw_estimate = false;
  for (const obs::EdgeTrace& e : r.trace->edges()) {
    if (std::strncmp(e.kernel, "theta", 5) == 0) saw_theta = true;
    if (e.estimated >= 0) saw_estimate = true;
  }
  EXPECT_TRUE(saw_theta) << r.trace->ToTree();
  EXPECT_TRUE(saw_estimate) << r.trace->ToTree();
  // The rendered tree carries the est/obs annotations \profile prints.
  EXPECT_NE(r.trace->ToTree().find("obs"), std::string::npos);
}

TEST(TraceEngineTest, ExplainRendersPhase1Estimates) {
  Engine eng(MakeCorpus());
  auto text = eng.Explain(kJoinQuery);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("predicted first"), std::string::npos) << *text;
  EXPECT_NE(text->find("v0"), std::string::npos) << *text;
  EXPECT_NE(text->find("e0"), std::string::npos) << *text;
  // EXPLAIN never executes: stats record no completed query execution.
  EXPECT_EQ(eng.Stats().completed, 0u);
}

// --- satellite 4: differential trace agreement -------------------------------
//
// The same query under {eager, lazy} x {1 shard, 4 shards} must produce
// traces that agree on edge order, kernels, and observed cardinalities,
// and identical results; running with tracing off must change nothing.
// Operator selection is pinned to the cost model
// (timed_operator_selection = false): the wall-clock race is the one
// intentionally nondeterministic choice in the executor.

struct EdgeSummary {
  std::string label;
  std::string kernel;
  double observed;
  bool operator==(const EdgeSummary& o) const {
    return label == o.label && kernel == o.kernel && observed == o.observed;
  }
};

std::vector<EdgeSummary> Summarize(const obs::QueryTrace& trace) {
  std::vector<EdgeSummary> out;
  for (const obs::EdgeTrace& e : trace.edges())
    out.push_back({e.label, e.kernel, e.observed});
  return out;
}

TEST(TraceDifferentialTest, ModesAgreeOnEdgesKernelsAndCardinalities) {
  const std::vector<std::string> queries = {
      kJoinQuery,
      XmarkQuantityIncreaseQuery(CmpOp::kGt, /*quantity_guard=*/5),
  };
  for (const std::string& query : queries) {
    SCOPED_TRACE(query);
    std::vector<EdgeSummary> reference_edges;
    std::vector<Pre> reference_items;
    bool have_reference = false;
    for (bool lazy : {false, true}) {
      for (size_t shards : {size_t{1}, size_t{4}}) {
        SCOPED_TRACE(testing::Message()
                     << (lazy ? "lazy" : "eager") << " x " << shards
                     << " shard(s)");
        EngineOptions opts;
        opts.num_threads = 2;
        opts.num_shards = shards;
        opts.lazy_materialization = lazy;
        opts.rox.lazy_materialization = lazy;
        opts.rox.timed_operator_selection = false;
        opts.rox.seed = 0xd1ffe7e57;  // same stream at sequence 0 everywhere
        Engine eng(MakeCorpus(), opts);
        QueryResult r = eng.Profile(query);
        ASSERT_TRUE(r.status.ok()) << r.status.ToString();
        ASSERT_NE(r.trace, nullptr);
        ASSERT_NE(r.items, nullptr);
        if (!have_reference) {
          reference_edges = Summarize(*r.trace);
          reference_items = *r.items;
          have_reference = true;
          ASSERT_FALSE(reference_edges.empty());
          continue;
        }
        EXPECT_EQ(Summarize(*r.trace), reference_edges)
            << "trace drift:\n"
            << r.trace->ToTree();
        EXPECT_EQ(*r.items, reference_items);
      }
    }
    // Tracing is observation only: the same engine config with the
    // recorder off returns the identical item sequence.
    EngineOptions off;
    off.num_threads = 2;
    off.rox.timed_operator_selection = false;
    off.rox.seed = 0xd1ffe7e57;
    Engine eng(MakeCorpus(), off);
    QueryResult r = eng.Run(query);
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_EQ(r.trace, nullptr);
    ASSERT_NE(r.items, nullptr);
    EXPECT_EQ(*r.items, reference_items);
  }
}

}  // namespace
}  // namespace rox::engine
