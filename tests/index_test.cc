#include <gtest/gtest.h>

#include "index/corpus.h"
#include "index/element_index.h"
#include "index/value_index.h"
#include "xml/parser.h"

namespace rox {
namespace {

class IndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto id = corpus_.AddXml(
        "<shop>"
        "<item id=\"i1\" price=\"10\"><name>apple</name></item>"
        "<item id=\"i2\" price=\"25\"><name>pear</name></item>"
        "<item id=\"i3\" price=\"10\"><name>apple</name></item>"
        "<box><item id=\"i4\" price=\"7\"><name>fig</name></item></box>"
        "</shop>",
        "shop.xml");
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    doc_ = *id;
  }

  Corpus corpus_;
  DocId doc_ = 0;
};

TEST_F(IndexTest, ElementLookupAndCount) {
  const ElementIndex& idx = corpus_.element_index(doc_);
  StringId item = corpus_.Find("item");
  EXPECT_EQ(idx.Count(item), 4u);
  auto span = idx.Lookup(item);
  // Document order and duplicate-free.
  for (size_t i = 1; i < span.size(); ++i) EXPECT_LT(span[i - 1], span[i]);
  EXPECT_EQ(idx.Count(corpus_.Find("name")), 4u);
  EXPECT_EQ(idx.Count(corpus_.Find("box")), 1u);
  EXPECT_EQ(idx.Lookup(kInvalidStringId - 1).size(), 0u);
}

TEST_F(IndexTest, ElementRangeLookup) {
  const ElementIndex& idx = corpus_.element_index(doc_);
  const Document& doc = corpus_.doc(doc_);
  StringId item = corpus_.Find("item");
  // Descendant range of <shop> (pre 1): everything.
  auto all = idx.RangeLookup(item, 1, 1 + doc.Size(1));
  EXPECT_EQ(all.size(), 4u);
  // Descendant range of <box>: just the nested item.
  StringId box = corpus_.Find("box");
  Pre box_pre = idx.Lookup(box)[0];
  auto nested = idx.RangeLookup(item, box_pre, box_pre + doc.Size(box_pre));
  ASSERT_EQ(nested.size(), 1u);
  EXPECT_EQ(doc.AttributeValue(nested[0], corpus_.Find("id")),
            corpus_.Find("i4"));
}

TEST_F(IndexTest, ElementSampling) {
  const ElementIndex& idx = corpus_.element_index(doc_);
  Rng rng(5);
  auto s = idx.Sample(corpus_.Find("item"), 2, rng);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_LT(s[0], s[1]);  // document order
  // Oversampling returns everything.
  EXPECT_EQ(idx.Sample(corpus_.Find("item"), 100, rng).size(), 4u);
}

TEST_F(IndexTest, AttrNameLookup) {
  const ElementIndex& idx = corpus_.element_index(doc_);
  EXPECT_EQ(idx.CountAttr(corpus_.Find("id")), 4u);
  EXPECT_EQ(idx.CountAttr(corpus_.Find("price")), 4u);
  EXPECT_EQ(idx.CountAttr(corpus_.Find("name")), 0u);  // element, not attr
}

TEST_F(IndexTest, TextValueLookup) {
  const ValueIndex& idx = corpus_.value_index(doc_);
  StringId apple = corpus_.Find("apple");
  EXPECT_EQ(idx.TextLookup(apple).size(), 2u);
  EXPECT_EQ(idx.TextLookup(corpus_.Find("fig")).size(), 1u);
  EXPECT_EQ(idx.TextLookup(corpus_.Intern("kiwi")).size(), 0u);
  EXPECT_EQ(idx.text_node_count(), 4u);
}

TEST_F(IndexTest, AttrValueLookup) {
  const ValueIndex& idx = corpus_.value_index(doc_);
  const Document& doc = corpus_.doc(doc_);
  StringId ten = corpus_.Find("10");
  EXPECT_EQ(idx.AttrLookup(ten).size(), 2u);
  // Restricted to attribute name.
  auto restricted =
      idx.AttrLookup(doc, ten, corpus_.Find("price"), kInvalidStringId);
  EXPECT_EQ(restricted.size(), 2u);
  auto wrong_name =
      idx.AttrLookup(doc, ten, corpus_.Find("id"), kInvalidStringId);
  EXPECT_EQ(wrong_name.size(), 0u);
}

TEST_F(IndexTest, AttrOwnerLookup) {
  const ValueIndex& idx = corpus_.value_index(doc_);
  const Document& doc = corpus_.doc(doc_);
  auto owners = idx.AttrOwnerLookup(doc, corpus_.Find("i4"),
                                    corpus_.Find("item"), corpus_.Find("id"));
  ASSERT_EQ(owners.size(), 1u);
  EXPECT_EQ(doc.NameStr(owners[0]), "item");
}

TEST_F(IndexTest, NumericRangeLookups) {
  const ValueIndex& idx = corpus_.value_index(doc_);
  // Attribute prices: 10, 25, 10, 7.
  EXPECT_EQ(idx.AttrRangeLookup(NumericRange::LessThan(11)).size(), 3u);
  EXPECT_EQ(idx.AttrRangeLookup(NumericRange::GreaterThan(10)).size(), 1u);
  EXPECT_EQ(idx.AttrRangeLookup(NumericRange::AtLeast(10)).size(), 3u);
  EXPECT_EQ(idx.AttrRangeLookup(NumericRange::Exactly(7)).size(), 1u);
  // Text nodes are non-numeric here.
  EXPECT_EQ(idx.TextRangeCount(NumericRange::LessThan(1e9)), 0u);
}

TEST_F(IndexTest, RangeResultsInDocumentOrder) {
  const ValueIndex& idx = corpus_.value_index(doc_);
  auto r = idx.AttrRangeLookup(NumericRange::AtLeast(0));
  for (size_t i = 1; i < r.size(); ++i) EXPECT_LT(r[i - 1], r[i]);
}

TEST(CorpusTest, ResolveAndDuplicates) {
  Corpus corpus;
  ASSERT_TRUE(corpus.AddXml("<a/>", "one.xml").ok());
  ASSERT_TRUE(corpus.AddXml("<b/>", "two.xml").ok());
  EXPECT_EQ(corpus.DocCount(), 2u);
  auto r = corpus.Resolve("two.xml");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(corpus.doc(*r).name(), "two.xml");
  EXPECT_FALSE(corpus.Resolve("three.xml").ok());
  // Duplicate names rejected.
  EXPECT_FALSE(corpus.AddXml("<c/>", "one.xml").ok());
}

TEST(CorpusTest, RejectsForeignPool) {
  Corpus corpus;
  auto foreign = ParseXml("<a/>", "f.xml");  // fresh private pool
  ASSERT_TRUE(foreign.ok());
  EXPECT_FALSE(corpus.Add(std::move(*foreign)).ok());
}

TEST(CorpusTest, SharedValueIdsAcrossDocs) {
  Corpus corpus;
  auto d1 = corpus.AddXml("<a>joe</a>", "d1");
  auto d2 = corpus.AddXml("<b>joe</b>", "d2");
  ASSERT_TRUE(d1.ok() && d2.ok());
  StringId joe = corpus.Find("joe");
  EXPECT_EQ(corpus.value_index(*d1).TextLookup(joe).size(), 1u);
  EXPECT_EQ(corpus.value_index(*d2).TextLookup(joe).size(), 1u);
}

}  // namespace
}  // namespace rox
