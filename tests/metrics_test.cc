// Tests for the process-wide metrics registry (obs/metrics.h) and the
// StatsCollector's latency quantiles — the interpolation contract
// (p50 of {10, 20} is 15) and the bounded-reservoir sampled path.

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/engine_stats.h"

namespace rox::obs {
namespace {

// --- instruments -------------------------------------------------------------

TEST(CounterTest, IncAndReset) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(GaugeTest, SetAddReset) {
  Gauge g;
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.Value(), 2.5);
  g.Add(1.5);
  EXPECT_DOUBLE_EQ(g.Value(), 4.0);
  g.Add(-3.0);
  EXPECT_DOUBLE_EQ(g.Value(), 1.0);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.Value(), 0.0);
}

TEST(HistogramTest, BucketsCountAndSum) {
  Histogram h({1.0, 10.0, 100.0});
  h.Observe(0.5);    // bucket 0 (<= 1)
  h.Observe(1.0);    // bucket 0 (boundary is inclusive)
  h.Observe(5.0);    // bucket 1
  h.Observe(50.0);   // bucket 2
  h.Observe(500.0);  // overflow bucket
  EXPECT_EQ(h.Count(), 5u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.5 + 1.0 + 5.0 + 50.0 + 500.0);
  std::vector<uint64_t> counts = h.BucketCounts();
  ASSERT_EQ(counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.0);
}

TEST(HistogramTest, QuantileInterpolatesWithinBucket) {
  Histogram h({10.0, 20.0, 40.0});
  // 10 observations in (10, 20].
  for (int i = 0; i < 10; ++i) h.Observe(15.0);
  // The median rank falls mid-bucket: linear interpolation within
  // (10, 20] puts it strictly between the bounds.
  double p50 = h.Quantile(0.5);
  EXPECT_GT(p50, 10.0);
  EXPECT_LE(p50, 20.0);
  EXPECT_EQ(h.Quantile(0.0), 10.0);  // everything is in the first
  EXPECT_EQ(h.Quantile(1.0), 20.0);  // occupied bucket
}

TEST(HistogramTest, LatencyBucketsAreSortedAndCoverMs) {
  std::vector<double> b = Histogram::LatencyBucketsMs();
  ASSERT_GT(b.size(), 4u);
  for (size_t i = 1; i < b.size(); ++i) EXPECT_LT(b[i - 1], b[i]);
  EXPECT_LE(b.front(), 1.0);     // sub-millisecond queries resolve
  EXPECT_GE(b.back(), 1000.0);   // second-scale queries resolve
}

// --- registry ----------------------------------------------------------------

TEST(MetricsRegistryTest, GetOrRegisterReturnsStablePointers) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("x.count");
  Counter* b = reg.GetCounter("x.count");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a, b);  // same instrument, not a new registration
  a->Inc();
  EXPECT_EQ(b->Value(), 1u);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistryTest, KindMismatchReturnsNull) {
  MetricsRegistry reg;
  ASSERT_NE(reg.GetCounter("m"), nullptr);
  EXPECT_EQ(reg.GetGauge("m"), nullptr);
  EXPECT_EQ(reg.GetHistogram("m", {1.0}), nullptr);
  EXPECT_NE(reg.GetCounter("m"), nullptr);  // original still served
}

TEST(MetricsRegistryTest, DumpTextSanitizesNames) {
  MetricsRegistry reg;
  reg.GetCounter("engine.cache.plan-hits")->Inc(3);
  std::string text = reg.DumpText();
  // Prometheus exposition: dots and dashes become underscores.
  EXPECT_NE(text.find("engine_cache_plan_hits 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE engine_cache_plan_hits counter"),
            std::string::npos);
}

TEST(MetricsRegistryTest, DumpJsonContainsInstruments) {
  MetricsRegistry reg;
  reg.GetCounter("a.count")->Inc(7);
  reg.GetGauge("b.gauge")->Set(1.5);
  reg.GetHistogram("c.hist", {10.0})->Observe(4.0);
  std::string json = reg.DumpJson();
  EXPECT_NE(json.find("\"a.count\""), std::string::npos);
  EXPECT_NE(json.find("\"b.gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"c.hist\""), std::string::npos);
}

TEST(MetricsRegistryTest, ResetAllZerosEveryInstrument) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("c");
  Gauge* g = reg.GetGauge("g");
  Histogram* h = reg.GetHistogram("h", {1.0});
  c->Inc(5);
  g->Set(5);
  h->Observe(0.5);
  reg.ResetAll();
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_DOUBLE_EQ(g->Value(), 0.0);
  EXPECT_EQ(h->Count(), 0u);
}

// --- StatsCollector quantiles (engine/engine_stats.h) -----------------------

TEST(StatsQuantileTest, InterpolatesBetweenSamples) {
  // The documented contract: p50 of {10, 20} is the midpoint, not
  // either endpoint (nearest-rank would return 10 or 20).
  EXPECT_DOUBLE_EQ(engine::StatsCollector::Quantile({10.0, 20.0}, 0.5), 15.0);
  EXPECT_DOUBLE_EQ(engine::StatsCollector::Quantile({10.0, 20.0}, 0.25), 12.5);
  EXPECT_DOUBLE_EQ(engine::StatsCollector::Quantile({1.0, 2.0, 3.0}, 0.5),
                   2.0);
  EXPECT_DOUBLE_EQ(engine::StatsCollector::Quantile({5.0}, 0.95), 5.0);
  EXPECT_DOUBLE_EQ(engine::StatsCollector::Quantile({}, 0.5), 0.0);
}

TEST(StatsQuantileTest, PinsP50AndP95OnKnownDistribution) {
  // 1..100 ms through the collector itself (exact path: 100 samples
  // fit any reservoir). rank(p) = p * 99, linearly interpolated:
  //   p50 -> rank 49.5 -> (50 + 51) / 2 = 50.5
  //   p95 -> rank 94.05 -> 95 + 0.05 * 1 = 95.05
  engine::StatsCollector stats;
  for (int i = 1; i <= 100; ++i) {
    stats.Record({.latency_ms = static_cast<double>(i)});
  }
  engine::EngineStats snap = stats.Snapshot();
  EXPECT_DOUBLE_EQ(snap.p50_ms, 50.5);
  EXPECT_DOUBLE_EQ(snap.p95_ms, 95.05);
  EXPECT_DOUBLE_EQ(snap.max_ms, 100.0);
  EXPECT_DOUBLE_EQ(snap.mean_ms, 50.5);
  EXPECT_EQ(snap.completed, 100u);
}

TEST(StatsQuantileTest, ReservoirPathStaysWithinDistributionBounds) {
  // A tiny injected capacity forces Vitter replacement after 8
  // samples. With every latency equal, any uniform subsample must
  // report exactly that value at every percentile.
  engine::StatsCollector constant(/*latency_capacity=*/8);
  for (int i = 0; i < 10000; ++i) constant.Record({.latency_ms = 7.0});
  engine::EngineStats snap = constant.Snapshot();
  EXPECT_EQ(snap.completed, 10000u);
  EXPECT_DOUBLE_EQ(snap.p50_ms, 7.0);
  EXPECT_DOUBLE_EQ(snap.p95_ms, 7.0);
  EXPECT_DOUBLE_EQ(snap.max_ms, 7.0);

  // A two-valued stream: every percentile lies in [lo, hi] whatever
  // the (seeded, deterministic) reservoir kept, and the bimodal p50
  // cannot escape the value set's convex hull.
  engine::StatsCollector bimodal(/*latency_capacity=*/64);
  for (int i = 0; i < 5000; ++i) {
    bimodal.Record({.latency_ms = i % 2 == 0 ? 10.0 : 20.0});
  }
  snap = bimodal.Snapshot();
  EXPECT_GE(snap.p50_ms, 10.0);
  EXPECT_LE(snap.p50_ms, 20.0);
  EXPECT_GE(snap.p95_ms, snap.p50_ms);
  EXPECT_LE(snap.p95_ms, 20.0);
}

TEST(StatsQuantileTest, DefaultCapacityTakesExactPathPastManySamples) {
  // Below the default 65536-sample bound the percentiles stay exact:
  // feed a skewed distribution bigger than any test-sized reservoir
  // but smaller than the default, and pin the exact interpolation.
  engine::StatsCollector stats;
  for (int i = 0; i < 1000; ++i) {
    stats.Record({.latency_ms = static_cast<double>(i < 900 ? 1 : 100)});
  }
  engine::EngineStats snap = stats.Snapshot();
  EXPECT_DOUBLE_EQ(snap.p50_ms, 1.0);
  // rank(0.95) = 949.05, samples 949/950 are 100 -> exactly 100.
  EXPECT_DOUBLE_EQ(snap.p95_ms, 100.0);
}

// --- StatsCollector -> registry mirroring ------------------------------------

TEST(StatsMetricsBindingTest, RecordMirrorsIntoRegistry) {
  MetricsRegistry reg;
  engine::StatsCollector stats;
  stats.BindMetrics(&reg);

  RoxStats rox;
  rox.edges_executed = 3;
  rox.warm_started_weights = 2;
  rox.gather.gather_count = 1;
  rox.gather.bytes_gathered = 640;
  stats.Record({.latency_ms = 5.0, .plan_cache_hit = true, .rox = &rox});
  stats.Record({.latency_ms = 1.0, .failed = true, .plan_cache_miss = true});
  stats.RecordPublish(/*added=*/2, /*removed=*/1, /*invalidated=*/4);

  EXPECT_EQ(reg.GetCounter("engine.queries.completed")->Value(), 1u);
  EXPECT_EQ(reg.GetCounter("engine.queries.failed")->Value(), 1u);
  EXPECT_EQ(reg.GetCounter("engine.cache.plan_hits")->Value(), 1u);
  EXPECT_EQ(reg.GetCounter("engine.cache.plan_misses")->Value(), 1u);
  EXPECT_EQ(reg.GetCounter("engine.rox.edges_executed")->Value(), 3u);
  EXPECT_EQ(reg.GetCounter("engine.warm.weights")->Value(), 2u);
  EXPECT_EQ(reg.GetCounter("engine.warm.runs")->Value(), 1u);
  EXPECT_EQ(reg.GetCounter("engine.gather.count")->Value(), 1u);
  EXPECT_EQ(reg.GetCounter("engine.gather.bytes")->Value(), 640u);
  EXPECT_EQ(reg.GetCounter("engine.corpus.publishes")->Value(), 1u);
  EXPECT_EQ(reg.GetCounter("engine.corpus.docs_added")->Value(), 2u);
  EXPECT_EQ(reg.GetCounter("engine.corpus.docs_removed")->Value(), 1u);
  EXPECT_EQ(reg.GetCounter("engine.cache.invalidations")->Value(), 4u);
  // Failed queries contribute no latency observation.
  EXPECT_EQ(reg.GetHistogram("engine.query.latency_ms",
                             Histogram::LatencyBucketsMs())
                ->Count(),
            1u);

  // The struct snapshot stays authoritative and agrees.
  engine::EngineStats snap = stats.Snapshot();
  EXPECT_EQ(snap.completed, 1u);
  EXPECT_EQ(snap.failed, 1u);
  EXPECT_EQ(snap.edges_executed, 3u);
}

}  // namespace
}  // namespace rox::obs
