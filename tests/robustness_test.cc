// Robustness and edge-case tests: the XML parser must reject arbitrary
// garbage gracefully (Status, never a crash), round-trip random
// documents, and the exec-layer combinators must handle degenerate
// inputs.

#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "exec/result_table.h"
#include "exec/structural_join.h"
#include "exec/value_join.h"
#include "index/corpus.h"
#include "xml/parser.h"

namespace rox {
namespace {

// --- parser fuzz ----------------------------------------------------------------

TEST(ParserRobustnessTest, RandomGarbageNeverCrashes) {
  Rng rng(0xfadedcafe);
  const char alphabet[] = "<>/=\"'abc &;#x![]-?";
  for (int trial = 0; trial < 500; ++trial) {
    std::string input;
    size_t len = rng.Below(120);
    for (size_t i = 0; i < len; ++i) {
      input.push_back(alphabet[rng.Below(sizeof(alphabet) - 1)]);
    }
    // Must return, never crash; most inputs fail to parse.
    auto r = ParseXml(input, "fuzz.xml");
    if (r.ok()) {
      // If it parsed, it must serialize and re-parse consistently.
      std::string out = SerializeXml(**r);
      auto r2 = ParseXml(out, "fuzz2.xml");
      EXPECT_TRUE(r2.ok()) << "round-trip failed for: " << out;
    }
  }
}

TEST(ParserRobustnessTest, MutatedValidDocuments) {
  // Take a valid document and flip random bytes: the parser must
  // either parse or fail cleanly.
  std::string base =
      "<site><person id=\"p1\"><name>Ann &amp; Bob</name>"
      "<age>42</age></person><empty/></site>";
  Rng rng(4321);
  for (int trial = 0; trial < 500; ++trial) {
    std::string mutated = base;
    int flips = 1 + static_cast<int>(rng.Below(3));
    for (int f = 0; f < flips; ++f) {
      size_t pos = rng.Below(mutated.size());
      mutated[pos] = static_cast<char>(32 + rng.Below(95));
    }
    auto r = ParseXml(mutated, "mut.xml");
    (void)r;  // either outcome is fine; the test is "no crash/UB"
  }
}

TEST(ParserRobustnessTest, DeeplyNestedDocument) {
  // Nesting depth is attacker-controlled input; the element parser is
  // iterative (explicit open-tag stack), so depths far beyond any
  // thread stack budget must parse. 50000 also stays under the uint16
  // level column's ceiling.
  std::string xml;
  const int depth = 50000;
  for (int i = 0; i < depth; ++i) xml += "<d>";
  xml += "x";
  for (int i = 0; i < depth; ++i) xml += "</d>";
  auto r = ParseXml(xml, "deep.xml");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->NodeCount(), static_cast<Pre>(depth + 2));
  EXPECT_EQ((*r)->Level(depth), depth);
}

TEST(ParserRobustnessTest, NestingBeyondLevelColumnIsRejected) {
  // Depths that would wrap the uint16 level column must fail cleanly
  // instead of parsing into a silently corrupted document.
  std::string xml;
  const int depth = 70000;
  for (int i = 0; i < depth; ++i) xml += "<d>";
  xml += "x";
  for (int i = 0; i < depth; ++i) xml += "</d>";
  auto r = ParseXml(xml, "too_deep.xml");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("nesting too deep"),
            std::string::npos);
}

// --- parser robustness caps (DESIGN.md §13) --------------------------------------

TEST(ParserRobustnessTest, OversizedInputIsRejected) {
  XmlParseOptions opts;
  opts.max_input_bytes = 64;
  std::string xml = "<a>" + std::string(200, 'x') + "</a>";
  auto r = ParseXml(xml, "big.xml", nullptr, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(r.status().ToString().find("max_input_bytes"),
            std::string::npos);
  // The same document parses with the cap off.
  opts.max_input_bytes = 0;
  EXPECT_TRUE(ParseXml(xml, "big.xml", nullptr, opts).ok());
}

TEST(ParserRobustnessTest, AttributeFloodIsRejected) {
  XmlParseOptions opts;
  opts.max_attributes_per_element = 8;
  std::string xml = "<a";
  for (int i = 0; i < 9; ++i) {
    xml += " a" + std::to_string(i) + "=\"v\"";
  }
  xml += "/>";
  auto r = ParseXml(xml, "attrs.xml", nullptr, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(r.status().ToString().find("max_attributes_per_element"),
            std::string::npos);
  // Exactly at the cap is fine.
  std::string ok_xml = "<a";
  for (int i = 0; i < 8; ++i) {
    ok_xml += " a" + std::to_string(i) + "=\"v\"";
  }
  ok_xml += "/>";
  EXPECT_TRUE(ParseXml(ok_xml, "attrs_ok.xml", nullptr, opts).ok());
}

TEST(ParserRobustnessTest, EntityExpansionFloodIsRejected) {
  // A reference flood: the cap meters *expanded output bytes* across
  // the whole document, so many small expansions trip it even though
  // each one is tiny.
  XmlParseOptions opts;
  opts.max_entity_expansion_bytes = 100;
  std::string xml = "<a>";
  for (int i = 0; i < 200; ++i) xml += "&amp;";
  xml += "</a>";
  auto r = ParseXml(xml, "ents.xml", nullptr, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(r.status().ToString().find("max_entity_expansion_bytes"),
            std::string::npos);
  // Under the cap the same shape parses.
  std::string small = "<a>&amp;&lt;&gt;</a>";
  EXPECT_TRUE(ParseXml(small, "ents_ok.xml", nullptr, opts).ok());
}

TEST(ParserRobustnessTest, CharRefFloodCountsExpandedBytes) {
  // Numeric character references expand through the same meter.
  XmlParseOptions opts;
  opts.max_entity_expansion_bytes = 16;
  std::string xml = "<a>";
  for (int i = 0; i < 40; ++i) xml += "&#65;";
  xml += "</a>";
  auto r = ParseXml(xml, "refs.xml", nullptr, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(ParserRobustnessTest, RandomDocumentRoundTrip) {
  Rng rng(31337);
  for (int trial = 0; trial < 30; ++trial) {
    // Random tree built through the builder, serialized, re-parsed.
    DocumentBuilder b("rt.xml", nullptr);
    int open = 0;
    b.StartElement("root");
    ++open;
    // Avoid emitting adjacent text nodes: XML serialization merges
    // them, so they cannot round-trip as separate nodes.
    bool last_was_text = false;
    for (int ops = 0; ops < 200; ++ops) {
      switch (rng.Below(4)) {
        case 0:
          b.StartElement("n" + std::to_string(rng.Below(5)));
          if (rng.Bernoulli(0.5)) {
            b.Attribute("a", std::to_string(rng.Below(100)));
          }
          ++open;
          last_was_text = false;
          break;
        case 1:
          if (open > 1) {
            b.EndElement();
            --open;
            last_was_text = false;
          }
          break;
        default:
          if (!last_was_text) {
            b.Text("t" + std::to_string(rng.Below(50)));
            last_was_text = true;
          }
      }
    }
    while (open-- > 0) b.EndElement();
    auto doc = std::move(b).Finish();
    ASSERT_TRUE(doc.ok());
    std::string xml = SerializeXml(**doc);
    auto reparsed = ParseXml(xml, "rt2.xml");
    ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
    EXPECT_EQ(SerializeXml(**reparsed), xml);
    EXPECT_EQ((*reparsed)->NodeCount(), (*doc)->NodeCount());
  }
}

// --- exec edge cases -------------------------------------------------------------

TEST(ExecEdgeCaseTest, EmptyContextInputs) {
  Corpus corpus;
  auto id = corpus.AddXml("<a><b>x</b></a>", "d");
  ASSERT_TRUE(id.ok());
  const Document& doc = corpus.doc(*id);
  std::vector<Pre> empty;
  JoinPairs p = StructuralJoinPairs(doc, empty, StepSpec::ChildText());
  EXPECT_EQ(p.size(), 0u);
  EXPECT_FALSE(p.truncated);
  EXPECT_EQ(p.EstimateFullCardinality(0), 0.0);
  JoinPairs v = HashValueJoinPairs(doc, empty, doc, empty);
  EXPECT_EQ(v.size(), 0u);
  auto d = StructuralJoinDistinct(doc, empty, StepSpec::Descendant(0));
  EXPECT_TRUE(d.empty());
}

TEST(ExecEdgeCaseTest, ExpandPairsOverColumn) {
  // distinct nodes {10, 20}; pairs: 10 -> {7, 8}, 20 -> {9}.
  JoinPairs pairs;
  pairs.left_rows = {0, 0, 1};
  pairs.right_nodes = {7, 8, 9};
  std::vector<Pre> distinct = {10, 20};
  std::vector<Pre> column = {20, 10, 10, 30};
  JoinPairs out = ExpandPairsOverColumn(pairs, distinct, column);
  // Row 0 (20) -> 9; rows 1,2 (10) -> 7,8 each; row 3 (30) drops.
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out.left_rows[0], 0u);
  EXPECT_EQ(out.right_nodes[0], 9u);
  EXPECT_EQ(out.left_rows[1], 1u);
  EXPECT_EQ(out.left_rows[3], 2u);
}

TEST(ExecEdgeCaseTest, CartesianProduct) {
  ResultTable a = ResultTable::FromColumn({1, 2});
  ResultTable b(2);
  b.AppendRow(std::vector<Pre>{10, 20});
  b.AppendRow(std::vector<Pre>{30, 40});
  b.AppendRow(std::vector<Pre>{50, 60});
  ResultTable p = CartesianProduct(a, b);
  EXPECT_EQ(p.NumRows(), 6u);
  EXPECT_EQ(p.NumCols(), 3u);
  // Row 4 = (2, 30, 40).
  EXPECT_EQ(p.Col(0)[4], 2u);
  EXPECT_EQ(p.Col(1)[4], 30u);
  EXPECT_EQ(p.Col(2)[4], 40u);
  // Empty side yields empty product.
  ResultTable empty(1);
  EXPECT_EQ(CartesianProduct(a, empty).NumRows(), 0u);
}

TEST(ExecEdgeCaseTest, SelfLoopFreeMergeJoin) {
  // Merge join where one side has no comparable values at all.
  Corpus corpus;
  auto id = corpus.AddXml("<a><b/><c/></a>", "d");  // elements, no text
  ASSERT_TRUE(id.ok());
  const Document& doc = corpus.doc(*id);
  std::vector<Pre> elems = {1, 2, 3};
  auto sorted = SortByValueId(doc, elems);
  JoinPairs p = MergeValueJoinPairs(doc, sorted, doc, sorted);
  EXPECT_EQ(p.size(), 0u);  // no values -> no matches
}

TEST(ExecEdgeCaseTest, DistinctRowsOnEmptyAndSingle) {
  ResultTable t(2);
  EXPECT_EQ(t.DistinctRows().NumRows(), 0u);
  t.AppendRow(std::vector<Pre>{1, 2});
  EXPECT_EQ(t.DistinctRows().NumRows(), 1u);
}

TEST(ExecEdgeCaseTest, NumericRangeBoundaries) {
  NumericRange lt = NumericRange::LessThan(5);
  EXPECT_TRUE(lt.Contains(4.999));
  EXPECT_FALSE(lt.Contains(5.0));
  NumericRange le = NumericRange::AtMost(5);
  EXPECT_TRUE(le.Contains(5.0));
  EXPECT_FALSE(le.Contains(5.0001));
  NumericRange gt = NumericRange::GreaterThan(5);
  EXPECT_FALSE(gt.Contains(5.0));
  EXPECT_TRUE(gt.Contains(5.0001));
  NumericRange eq = NumericRange::Exactly(5);
  EXPECT_TRUE(eq.Contains(5.0));
  EXPECT_FALSE(eq.Contains(4.999));
}

}  // namespace
}  // namespace rox
