#include <gtest/gtest.h>

#include <set>
#include <string>

#include "xml/node.h"

namespace rox {
namespace {

constexpr Axis kAllAxes[] = {
    Axis::kChild,         Axis::kDescendant,
    Axis::kDescendantOrSelf, Axis::kParent,
    Axis::kAncestor,      Axis::kAncestorOrSelf,
    Axis::kFollowing,     Axis::kPreceding,
    Axis::kFollowingSibling, Axis::kPrecedingSibling,
    Axis::kSelf,          Axis::kAttribute,
};

TEST(AxisTest, ReverseIsInvolutionExceptAttribute) {
  for (Axis a : kAllAxes) {
    if (a == Axis::kAttribute) continue;  // reverse(attr) = parent
    EXPECT_EQ(ReverseAxis(ReverseAxis(a)), a) << AxisName(a);
  }
  EXPECT_EQ(ReverseAxis(Axis::kAttribute), Axis::kParent);
}

TEST(AxisTest, ReversePairsAreCorrect) {
  EXPECT_EQ(ReverseAxis(Axis::kChild), Axis::kParent);
  EXPECT_EQ(ReverseAxis(Axis::kDescendant), Axis::kAncestor);
  EXPECT_EQ(ReverseAxis(Axis::kDescendantOrSelf), Axis::kAncestorOrSelf);
  EXPECT_EQ(ReverseAxis(Axis::kFollowing), Axis::kPreceding);
  EXPECT_EQ(ReverseAxis(Axis::kFollowingSibling), Axis::kPrecedingSibling);
  EXPECT_EQ(ReverseAxis(Axis::kSelf), Axis::kSelf);
}

TEST(AxisTest, NamesAreUniqueAndStable) {
  std::set<std::string> names;
  for (Axis a : kAllAxes) names.insert(AxisName(a));
  EXPECT_EQ(names.size(), std::size(kAllAxes));
  EXPECT_STREQ(AxisName(Axis::kDescendantOrSelf), "descendant-or-self");
}

TEST(AxisTest, ForwardAxes) {
  EXPECT_TRUE(IsForwardAxis(Axis::kChild));
  EXPECT_TRUE(IsForwardAxis(Axis::kDescendant));
  EXPECT_TRUE(IsForwardAxis(Axis::kFollowing));
  EXPECT_FALSE(IsForwardAxis(Axis::kParent));
  EXPECT_FALSE(IsForwardAxis(Axis::kAncestor));
  EXPECT_FALSE(IsForwardAxis(Axis::kPreceding));
  EXPECT_FALSE(IsForwardAxis(Axis::kPrecedingSibling));
}

TEST(KindTest, MatchMatrix) {
  constexpr NodeKind kKinds[] = {NodeKind::kDoc,  NodeKind::kElem,
                                 NodeKind::kText, NodeKind::kAttr,
                                 NodeKind::kComment, NodeKind::kPi};
  // kAnyKind matches all; each specific test matches exactly its kind.
  for (NodeKind k : kKinds) {
    EXPECT_TRUE(MatchesKind(k, KindTest::kAnyKind));
  }
  EXPECT_TRUE(MatchesKind(NodeKind::kElem, KindTest::kElem));
  EXPECT_FALSE(MatchesKind(NodeKind::kText, KindTest::kElem));
  EXPECT_TRUE(MatchesKind(NodeKind::kText, KindTest::kText));
  EXPECT_FALSE(MatchesKind(NodeKind::kAttr, KindTest::kText));
  EXPECT_TRUE(MatchesKind(NodeKind::kAttr, KindTest::kAttr));
  EXPECT_TRUE(MatchesKind(NodeKind::kDoc, KindTest::kDoc));
  EXPECT_TRUE(MatchesKind(NodeKind::kComment, KindTest::kComment));
  EXPECT_TRUE(MatchesKind(NodeKind::kPi, KindTest::kPi));
  EXPECT_FALSE(MatchesKind(NodeKind::kPi, KindTest::kComment));
}

TEST(KindTest, Names) {
  EXPECT_STREQ(NodeKindName(NodeKind::kElem), "elem");
  EXPECT_STREQ(KindTestName(KindTest::kAnyKind), "*");
  EXPECT_STREQ(KindTestName(KindTest::kText), "text");
}

}  // namespace
}  // namespace rox
