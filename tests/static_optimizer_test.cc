#include <gtest/gtest.h>

#include "classical/static_optimizer.h"
#include "rox/optimizer.h"
#include "workload/dblp.h"
#include "workload/xmark.h"

namespace rox {
namespace {

class StaticOptimizerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    XmarkGenOptions gen;
    gen.items = 300;
    gen.persons = 350;
    gen.open_auctions = 250;
    auto doc = GenerateXmarkDocument(corpus_, gen);
    ASSERT_TRUE(doc.ok());
    doc_ = *doc;
  }
  Corpus corpus_;
  DocId doc_ = 0;
};

TEST_F(StaticOptimizerTest, PlanCoversEveryEdgeOnce) {
  XmarkQ1Graph q = BuildXmarkQ1Graph(corpus_, doc_, 145.0, true);
  StaticPlan plan = PlanStatically(corpus_, q.graph);
  ASSERT_EQ(plan.order.size(), q.graph.EdgeCount());
  ASSERT_EQ(plan.estimates.size(), plan.order.size());
  std::vector<bool> seen(q.graph.EdgeCount(), false);
  for (EdgeId e : plan.order) {
    ASSERT_LT(e, q.graph.EdgeCount());
    EXPECT_FALSE(seen[e]);
    seen[e] = true;
  }
}

TEST_F(StaticOptimizerTest, StaticResultEqualsRoxResult) {
  for (bool less_than : {true, false}) {
    XmarkQ1Graph q = BuildXmarkQ1Graph(corpus_, doc_, 145.0, less_than);
    StaticPlan plan = PlanStatically(corpus_, q.graph);
    auto static_result = ExecuteStaticPlan(corpus_, q.graph, plan);
    ASSERT_TRUE(static_result.ok()) << static_result.status().ToString();
    RoxOptions opt;
    opt.tau = 25;
    auto rox_result = RoxOptimizer(corpus_, q.graph, opt).Run();
    ASSERT_TRUE(rox_result.ok()) << rox_result.status().ToString();
    EXPECT_EQ(static_result->table.NumRows(), rox_result->table.NumRows());
  }
}

TEST_F(StaticOptimizerTest, StaticPlanUsesNoSampling) {
  XmarkQ1Graph q = BuildXmarkQ1Graph(corpus_, doc_, 145.0, true);
  StaticPlan plan = PlanStatically(corpus_, q.graph);
  auto r = ExecuteStaticPlan(corpus_, q.graph, plan);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->stats.sampled_tuples, 0u);
  EXPECT_EQ(r->stats.chain_sample_calls, 0u);
}

TEST_F(StaticOptimizerTest, StaticPlanIsDeterministic) {
  XmarkQ1Graph q = BuildXmarkQ1Graph(corpus_, doc_, 145.0, true);
  StaticPlan p1 = PlanStatically(corpus_, q.graph);
  StaticPlan p2 = PlanStatically(corpus_, q.graph);
  EXPECT_EQ(p1.order, p2.order);
}

TEST_F(StaticOptimizerTest, StaticPlanIgnoresCorrelation) {
  // The static optimizer produces the SAME edge order for Q1 and Qm1
  // up to the predicate vertex, because its estimates cannot see the
  // price/bidder correlation; ROX's orders differ (rox_test covers the
  // flip). We check the static orders' step-edge sequences coincide.
  XmarkQ1Graph q1 = BuildXmarkQ1Graph(corpus_, doc_, 145.0, true);
  XmarkQ1Graph qm1 = BuildXmarkQ1Graph(corpus_, doc_, 145.0, false);
  StaticPlan p1 = PlanStatically(corpus_, q1.graph);
  StaticPlan pm1 = PlanStatically(corpus_, qm1.graph);
  // Edge ids are structurally identical between the two graphs (same
  // construction order), so comparable directly. The orders may differ
  // in the current-text edge position (its base estimate differs), but
  // the bidder branch's relative position must be the same.
  auto bidder_rank = [&](const StaticPlan& p, const JoinGraph& g) {
    for (size_t i = 0; i < p.order.size(); ++i) {
      const Edge& e = g.edge(p.order[i]);
      if (g.vertex(e.v1).label == "bidder" ||
          g.vertex(e.v2).label == "bidder") {
        return i;
      }
    }
    return p.order.size();
  };
  EXPECT_EQ(bidder_rank(p1, q1.graph), bidder_rank(pm1, qm1.graph));
}

TEST(StaticOptimizerDblpTest, MatchesRoxOnDblpGraph) {
  DblpGenOptions gen;
  gen.tag_scale = 0.05;
  auto corpus = GenerateDblpCorpus(gen, {19, 20, 21, 22});
  ASSERT_TRUE(corpus.ok());
  DblpQueryGraph q = BuildDblpJoinGraph(*corpus, {0, 1, 2, 3});
  StaticPlan plan = PlanStatically(*corpus, q.graph);
  auto st = ExecuteStaticPlan(*corpus, q.graph, plan);
  ASSERT_TRUE(st.ok()) << st.status().ToString();
  auto rx = RoxOptimizer(*corpus, q.graph, {}).Run();
  ASSERT_TRUE(rx.ok());
  EXPECT_EQ(st->table.NumRows(), rx->table.NumRows());
}


// --- approximate execution (§6 extension) --------------------------------------

TEST_F(StaticOptimizerTest, ApproximateExecutionYieldsSubset) {
  XmarkQ1Graph q = BuildXmarkQ1Graph(corpus_, doc_, 145.0, true);
  RoxOptions exact_opt;
  exact_opt.tau = 25;
  auto exact = RoxOptimizer(corpus_, q.graph, exact_opt).Run();
  ASSERT_TRUE(exact.ok());
  RoxOptions approx_opt = exact_opt;
  approx_opt.approximate_fraction = 0.5;
  auto approx = RoxOptimizer(corpus_, q.graph, approx_opt).Run();
  ASSERT_TRUE(approx.ok()) << approx.status().ToString();
  EXPECT_LE(approx->table.NumRows(), exact->table.NumRows());
  EXPECT_LE(approx->stats.cumulative_intermediate_rows,
            exact->stats.cumulative_intermediate_rows);
}

TEST_F(StaticOptimizerTest, ApproximateFractionOneIsExact) {
  XmarkQ1Graph q = BuildXmarkQ1Graph(corpus_, doc_, 145.0, true);
  RoxOptions opt;
  opt.tau = 25;
  opt.approximate_fraction = 1.0;  // boundary: disabled
  auto r1 = RoxOptimizer(corpus_, q.graph, opt).Run();
  opt.approximate_fraction = 0.0;
  auto r2 = RoxOptimizer(corpus_, q.graph, opt).Run();
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1->table.NumRows(), r2->table.NumRows());
}

// --- progressive re-optimization baseline ---------------------------------------

TEST_F(StaticOptimizerTest, ProgressiveMatchesRoxResult) {
  for (bool less_than : {true, false}) {
    XmarkQ1Graph q = BuildXmarkQ1Graph(corpus_, doc_, 145.0, less_than);
    auto prog = ExecuteProgressively(corpus_, q.graph);
    ASSERT_TRUE(prog.ok()) << prog.status().ToString();
    RoxOptions opt;
    opt.tau = 25;
    auto rox = RoxOptimizer(corpus_, q.graph, opt).Run();
    ASSERT_TRUE(rox.ok());
    EXPECT_EQ(prog->result.table.NumRows(), rox->table.NumRows());
    EXPECT_GE(prog->replans, 0);
  }
}

TEST_F(StaticOptimizerTest, ProgressiveTightRangeReplansMore) {
  XmarkQ1Graph q = BuildXmarkQ1Graph(corpus_, doc_, 145.0, false);
  ProgressiveOptions loose;
  loose.validity_factor = 1e9;  // never re-plan
  ProgressiveOptions tight;
  tight.validity_factor = 1.1;  // almost always re-plan
  auto r_loose = ExecuteProgressively(corpus_, q.graph, loose);
  auto r_tight = ExecuteProgressively(corpus_, q.graph, tight);
  ASSERT_TRUE(r_loose.ok() && r_tight.ok());
  EXPECT_EQ(r_loose->replans, 0);
  EXPECT_GE(r_tight->replans, r_loose->replans);
  EXPECT_EQ(r_loose->result.table.NumRows(),
            r_tight->result.table.NumRows());
}

// --- timed operator selection (§6 extension) ----------------------------------

TEST_F(StaticOptimizerTest, TimedSelectionPreservesResults) {
  XmarkQ1Graph q = BuildXmarkQ1Graph(corpus_, doc_, 145.0, true);
  RoxOptions with;
  with.tau = 25;
  with.timed_operator_selection = true;
  RoxOptions without = with;
  without.timed_operator_selection = false;
  auto r1 = RoxOptimizer(corpus_, q.graph, with).Run();
  auto r2 = RoxOptimizer(corpus_, q.graph, without).Run();
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1->table.NumRows(), r2->table.NumRows());
  // Selection happened at least once on a 14-edge graph.
  EXPECT_GT(r1->stats.operator_selections, 0u);
  EXPECT_EQ(r2->stats.operator_selections, 0u);
}

}  // namespace
}  // namespace rox
