// Query lifecycle governance (DESIGN.md §13): unit tests for the
// governor primitives (MemoryBudget, CancellationToken, Deadline,
// AdmissionGate) and end-to-end engine tests for deadlines, kill,
// memory budgets, result-row caps, and admission control — including
// the pinned acceptance bound: a 50 ms deadline against the ~800 ms
// qty_lt theta-join workload must return kDeadlineExceeded promptly.

#include <gtest/gtest.h>
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "engine/governor.h"
#include "index/corpus.h"
#include "workload/xmark.h"

namespace rox {
namespace {

// Sanitizer builds run several times slower; timing bounds relax so the
// tests pin behavior, not the sanitizer's overhead.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define ROX_SANITIZER_BUILD 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define ROX_SANITIZER_BUILD 1
#endif
#endif
#ifdef ROX_SANITIZER_BUILD
constexpr double kDeadlineReturnBoundMs = 1500;
#else
constexpr double kDeadlineReturnBoundMs = 150;
#endif

// Total user+system CPU consumed by this process, for load-immune
// latency bounds (a starved process accrues wall time but not CPU).
double ProcessCpuMillis() {
  struct rusage ru;
  getrusage(RUSAGE_SELF, &ru);
  auto ms = [](const timeval& tv) {
    return tv.tv_sec * 1e3 + tv.tv_usec / 1e3;
  };
  return ms(ru.ru_utime) + ms(ru.ru_stime);
}

// --- MemoryBudget ----------------------------------------------------------------

TEST(MemoryBudgetTest, LatchesOnceOverLimit) {
  MemoryBudget b(100);
  b.Charge(60);
  EXPECT_FALSE(b.Exceeded());
  EXPECT_EQ(b.used(), 60u);
  b.Charge(60);
  EXPECT_TRUE(b.Exceeded());
  EXPECT_EQ(b.used(), 120u);
  // The latch is sticky: later charges never clear it.
  b.Charge(1);
  EXPECT_TRUE(b.Exceeded());
}

TEST(MemoryBudgetTest, UnlimitedBudgetMetersButNeverLatches) {
  MemoryBudget b;  // limit 0
  b.Charge(uint64_t{1} << 40);
  EXPECT_FALSE(b.Exceeded());
  EXPECT_EQ(b.used(), uint64_t{1} << 40);
}

// --- CancellationToken -----------------------------------------------------------

TEST(CancellationTokenTest, StartsClean) {
  CancellationToken t;
  EXPECT_FALSE(t.StopRequested());
  EXPECT_EQ(t.TripReason(), StatusCode::kOk);
  EXPECT_TRUE(t.Check().ok());
  EXPECT_FALSE(StopRequested(nullptr));  // null token never stops
}

TEST(CancellationTokenTest, CancelTripsWithLatchedReason) {
  CancellationToken t;
  t.Cancel();
  EXPECT_TRUE(t.StopRequested());
  EXPECT_EQ(t.TripReason(), StatusCode::kCancelled);
  EXPECT_EQ(t.Check().code(), StatusCode::kCancelled);
}

TEST(CancellationTokenTest, DeadlineTrips) {
  CancellationToken t;
  t.ArmDeadline(Deadline::AfterMillis(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(t.StopRequested());
  EXPECT_EQ(t.Check().code(), StatusCode::kDeadlineExceeded);
}

TEST(CancellationTokenTest, BudgetLatchTrips) {
  MemoryBudget b(10);
  CancellationToken t;
  t.set_budget(&b);
  EXPECT_FALSE(t.StopRequested());
  b.Charge(11);
  EXPECT_TRUE(t.StopRequested());
  EXPECT_EQ(t.Check().code(), StatusCode::kResourceExhausted);
}

TEST(CancellationTokenTest, FirstReasonWinsOverLaterTrips) {
  // A query killed *and* past deadline must report one stable code:
  // the first reason observed.
  CancellationToken t;
  t.Cancel();
  EXPECT_TRUE(t.StopRequested());  // latches kCancelled
  t.ArmDeadline(Deadline::AfterMillis(-1));  // already expired
  EXPECT_TRUE(t.StopRequested());
  EXPECT_EQ(t.TripReason(), StatusCode::kCancelled);
}

// --- Deadline --------------------------------------------------------------------

TEST(DeadlineTest, InfiniteNeverExpires) {
  Deadline d;
  EXPECT_TRUE(d.IsInfinite());
  EXPECT_FALSE(d.Expired());
  EXPECT_GT(d.RemainingMillis(), 1e100);
}

TEST(DeadlineTest, AfterMillisExpires) {
  Deadline d = Deadline::AfterMillis(5);
  EXPECT_FALSE(d.IsInfinite());
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  EXPECT_TRUE(d.Expired());
  EXPECT_EQ(d.Remaining().count(), 0);
}

// --- AdmissionGate ---------------------------------------------------------------

TEST(AdmissionGateTest, AdmitsUpToCap) {
  AdmissionGate gate(2, 4);
  auto t1 = gate.Admit(Deadline::Infinite());
  auto t2 = gate.Admit(Deadline::Infinite());
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(gate.running(), 2u);
  EXPECT_EQ(gate.queued(), 0u);
}

TEST(AdmissionGateTest, ShedsWhenQueueFull) {
  // Cap 1, queue 0: with one ticket held, the next Admit sheds
  // immediately — it never blocks behind the running query.
  AdmissionGate gate(1, 0);
  auto held = gate.Admit(Deadline::Infinite());
  ASSERT_TRUE(held.ok());
  auto refused = gate.Admit(Deadline::Infinite());
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(gate.shed_count(), 1u);
}

TEST(AdmissionGateTest, QueuedWaiterAdmittedWhenSlotFrees) {
  AdmissionGate gate(1, 2);
  auto held = gate.Admit(Deadline::Infinite());
  ASSERT_TRUE(held.ok());
  std::promise<bool> admitted;
  std::thread waiter([&]() {
    auto t = gate.Admit(Deadline::Infinite());
    admitted.set_value(t.ok());
  });
  // Give the waiter time to enqueue, then free the slot.
  while (gate.queued() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(gate.peak_queued(), 1u);
  *held = AdmissionGate::Ticket();  // drop the ticket; slot frees
  auto fut = admitted.get_future();
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(10)),
            std::future_status::ready);
  EXPECT_TRUE(fut.get());
  waiter.join();
}

TEST(AdmissionGateTest, DeadlineLapsesWhileQueued) {
  AdmissionGate gate(1, 2);
  auto held = gate.Admit(Deadline::Infinite());
  ASSERT_TRUE(held.ok());
  auto timed_out = gate.Admit(Deadline::AfterMillis(20));
  ASSERT_FALSE(timed_out.ok());
  EXPECT_EQ(timed_out.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(gate.queued(), 0u);  // the waiter left the queue
}

// --- engine end-to-end -----------------------------------------------------------

// One shared XMark corpus for all engine tests (the qty_lt theta join
// over it runs long enough — hundreds of ms — that deadlines and kills
// land mid-flight deterministically). Engines share it via the
// shared_ptr constructor, so each test gets private cache/stats.
class GovernedEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto corpus = std::make_unique<Corpus>();
    XmarkGenOptions gen;
    gen.items = static_cast<uint32_t>(4350 * 0.15);
    gen.persons = static_cast<uint32_t>(5100 * 0.15);
    gen.open_auctions = static_cast<uint32_t>(2400 * 0.15);
    ASSERT_TRUE(GenerateXmarkDocument(*corpus, gen).ok());
    shared_corpus_ =
        new std::shared_ptr<const Corpus>(std::move(corpus));
  }
  static void TearDownTestSuite() {
    delete shared_corpus_;
    shared_corpus_ = nullptr;
  }

  static std::shared_ptr<const Corpus> corpus() { return *shared_corpus_; }

  // The ~800 ms (full scale, release build) theta-join workload from
  // BENCH_theta_joins.json.
  static std::string SlowQuery() {
    return XmarkQuantityIncreaseQuery(CmpOp::kLt, 1);
  }
  static std::string FastQuery() {
    return R"(for $p in doc("xmark.xml")//person return $p)";
  }

 private:
  static std::shared_ptr<const Corpus>* shared_corpus_;
};

std::shared_ptr<const Corpus>* GovernedEngineTest::shared_corpus_ = nullptr;

// The pinned acceptance bound: 50 ms deadline against the qty_lt
// theta join returns kDeadlineExceeded promptly — the amortized kernel
// polls bound the undetected-work window well under the query's
// remaining runtime.
TEST_F(GovernedEngineTest, DeadlineBoundsThetaJoinPinned) {
  engine::Engine eng(corpus(), {});
  QueryLimits limits;
  limits.deadline_ms = 50;
  // The bound asserts the engine's unwind latency, not the CI
  // runner's scheduler. Wall time is the primary check; when a
  // parallel ctest run starves this process of cores, the process CPU
  // time of the governed run is the load-immune fallback — other test
  // processes cannot inflate it, while a genuinely slow unwind
  // (amortized polls too coarse, work continuing past the deadline)
  // blows through both on every attempt.
  constexpr int kAttempts = 3;
  double best_wall = 1e300;
  double best_cpu = 1e300;
  for (int attempt = 0; attempt < kAttempts; ++attempt) {
    const double cpu_before = ProcessCpuMillis();
    StopWatch watch;
    engine::QueryResult r = eng.Run(SlowQuery(), limits);
    best_wall = std::min(best_wall, watch.ElapsedMillis());
    best_cpu = std::min(best_cpu, ProcessCpuMillis() - cpu_before);
    ASSERT_FALSE(r.ok());
    ASSERT_EQ(r.status.code(), StatusCode::kDeadlineExceeded)
        << r.status.ToString();
    if (best_wall <= kDeadlineReturnBoundMs) break;
  }
  EXPECT_TRUE(best_wall <= kDeadlineReturnBoundMs ||
              best_cpu <= kDeadlineReturnBoundMs)
      << "deadline trip took " << best_wall << " ms wall / " << best_cpu
      << " ms cpu to unwind (best of " << kAttempts << ")";
  // Stats classified every attempt, and the engine survived intact:
  // the same query without a deadline completes on the same engine.
  engine::EngineStats stats = eng.Stats();
  EXPECT_GE(stats.queries_deadline_exceeded, 1u);
  EXPECT_EQ(stats.queries_deadline_exceeded, stats.failed);
  engine::QueryResult full = eng.Run(SlowQuery());
  ASSERT_TRUE(full.ok()) << full.status.ToString();
  EXPECT_GT(full.items->size(), 0u);
}

TEST_F(GovernedEngineTest, KillCancelsInFlightQuery) {
  engine::Engine eng(corpus(), {});
  std::future<engine::QueryResult> fut = eng.Submit(SlowQuery());
  // Let it get into execution, then kill everything in flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  size_t killed = eng.KillAll();
  EXPECT_GE(killed, 1u);
  engine::QueryResult r = fut.get();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status.code(), StatusCode::kCancelled) << r.status.ToString();
  EXPECT_EQ(eng.Stats().queries_cancelled, 1u);
  // Kill of an unknown sequence is a clean no-op that says so.
  EXPECT_EQ(eng.Kill(123456789).code(), StatusCode::kNotFound);
}

TEST_F(GovernedEngineTest, KillReportsNotFoundForCompletedQuery) {
  engine::Engine eng(corpus(), {});
  engine::QueryResult done = eng.Run(FastQuery());
  ASSERT_TRUE(done.ok()) << done.status.ToString();
  // The query finished: its sequence is no longer in flight, and a
  // late Kill (a client disconnecting after the response was built)
  // must be distinguishable from killing a live query.
  Status late = eng.Kill(done.sequence);
  EXPECT_EQ(late.code(), StatusCode::kNotFound) << late.ToString();
  // Nothing was cancelled by the late kill.
  EXPECT_EQ(eng.Stats().queries_cancelled, 0u);

  // Contrast: a kill that lands while the query is active returns Ok
  // (covered above); an unknown-but-never-issued sequence is the same
  // not-found as a completed one — callers cannot tell them apart,
  // which is exactly the contract the server needs for idempotent
  // disconnect handling.
  EXPECT_EQ(eng.Kill(done.sequence + 1000).code(), StatusCode::kNotFound);
}

TEST_F(GovernedEngineTest, DeadlineCoversDispatchQueueWait) {
  // One pool thread: the slow query occupies it, so the governed fast
  // query sits in the dispatch queue well past its deadline. The
  // deadline must cover that wait — a backlogged pool must not
  // silently extend every deadline by its queue depth.
  engine::EngineOptions opts;
  opts.num_threads = 1;
  engine::Engine eng(corpus(), opts);

  engine::QueryRequest blocker;
  blocker.text = SlowQuery();
  std::future<engine::QueryResponse> slow =
      eng.ExecuteAsync(std::move(blocker));

  engine::QueryRequest governed;
  governed.text = FastQuery();
  QueryLimits limits;
  limits.deadline_ms = 1;  // lapses while queued behind the blocker
  governed.limits = limits;
  engine::QueryResponse fast =
      eng.ExecuteAsync(std::move(governed)).get();
  ASSERT_FALSE(fast.ok());
  EXPECT_EQ(fast.status.code(), StatusCode::kDeadlineExceeded)
      << fast.status.ToString();

  engine::QueryResponse done = slow.get();
  EXPECT_TRUE(done.ok()) << done.status.ToString();
}

TEST_F(GovernedEngineTest, MemoryBudgetTripsAndIsMetered) {
  engine::Engine eng(corpus(), {});
  QueryLimits limits;
  limits.memory_budget_bytes = 1;  // any arena block latches
  engine::QueryResult r = eng.Run(SlowQuery(), limits);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status.code(), StatusCode::kResourceExhausted)
      << r.status.ToString();
  EXPECT_GT(r.memory_bytes, 0u);
  engine::EngineStats stats = eng.Stats();
  EXPECT_EQ(stats.queries_budget_exceeded, 1u);
  EXPECT_GT(stats.peak_query_memory_bytes, 0u);
}

TEST_F(GovernedEngineTest, MaxResultRowsCapsFreshAndReplayedResults) {
  engine::Engine eng(corpus(), {});
  // Uncapped run: completes and memoizes the result.
  engine::QueryResult full = eng.Run(FastQuery());
  ASSERT_TRUE(full.ok());
  ASSERT_GT(full.items->size(), 1u);

  QueryLimits limits;
  limits.max_result_rows = 1;
  // The replay path enforces the cap without re-running...
  engine::QueryResult replay = eng.Run(FastQuery(), limits);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status.code(), StatusCode::kResourceExhausted);
  // ...and a fresh execution enforces it too.
  engine::EngineOptions no_cache;
  no_cache.enable_cache = false;
  engine::Engine eng2(corpus(), no_cache);
  engine::QueryResult fresh = eng2.Run(FastQuery(), limits);
  ASSERT_FALSE(fresh.ok());
  EXPECT_EQ(fresh.status.code(), StatusCode::kResourceExhausted);
  // A cap the result fits under passes.
  limits.max_result_rows = full.items->size();
  engine::QueryResult fits = eng.Run(FastQuery(), limits);
  ASSERT_TRUE(fits.ok()) << fits.status.ToString();
}

TEST_F(GovernedEngineTest, AdmissionGateShedsExcessLoad) {
  engine::EngineOptions opts;
  opts.max_concurrent_queries = 1;
  opts.max_queued_queries = 0;
  engine::Engine eng(corpus(), opts);
  std::future<engine::QueryResult> slow = eng.Submit(SlowQuery());
  // Wait until the slow query actually occupies the slot.
  while (eng.Stats().admission_running == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  engine::QueryResult refused = eng.Run(FastQuery());
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status.code(), StatusCode::kResourceExhausted)
      << refused.status.ToString();
  eng.KillAll();
  (void)slow.get();
  engine::EngineStats stats = eng.Stats();
  EXPECT_GE(stats.queries_shed, 1u);
}

TEST_F(GovernedEngineTest, GenerousLimitsDoNotChangeResults) {
  engine::EngineOptions no_cache;
  no_cache.enable_cache = false;
  engine::Engine eng(corpus(), no_cache);
  engine::QueryResult unlimited = eng.Run(FastQuery());
  ASSERT_TRUE(unlimited.ok());
  QueryLimits generous;
  generous.deadline_ms = 600000;
  generous.memory_budget_bytes = uint64_t{8} << 30;
  generous.max_result_rows = 1u << 30;
  engine::QueryResult governed = eng.Run(FastQuery(), generous);
  ASSERT_TRUE(governed.ok()) << governed.status.ToString();
  EXPECT_EQ(*governed.items, *unlimited.items);
}

TEST_F(GovernedEngineTest, DefaultLimitsApplyToEveryQuery) {
  engine::EngineOptions opts;
  opts.default_limits.deadline_ms = 50;
  engine::Engine eng(corpus(), opts);
  engine::QueryResult r = eng.Run(SlowQuery());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);
  // Per-query limits override the default.
  QueryLimits none;
  engine::QueryResult full = eng.Run(SlowQuery(), none);
  ASSERT_TRUE(full.ok()) << full.status.ToString();
}

}  // namespace
}  // namespace rox
