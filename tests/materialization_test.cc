// Late materialization correctness (DESIGN.md §8): the view layer must
// reproduce the eager ResultTable operators byte for byte, and whole
// query runs — including cut-off/approximate execution and sharded
// fan-out — must return identical result sequences with
// lazy_materialization on and off.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "classical/executor.h"
#include "classical/plans.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "engine/engine.h"
#include "exec/column_arena.h"
#include "exec/result_table.h"
#include "exec/result_view.h"
#include "index/sharded_corpus.h"
#include "workload/dblp.h"
#include "workload/xmark.h"
#include "xq/compile.h"

namespace rox {
namespace {

// --- view-layer property tests ---------------------------------------------

ResultTable RandomTable(Rng& rng, size_t cols, uint64_t rows,
                        uint32_t domain) {
  ResultTable t(cols);
  for (size_t c = 0; c < cols; ++c) {
    t.MutableCol(c).reserve(rows);
    for (uint64_t r = 0; r < rows; ++r) {
      t.MutableCol(c).push_back(static_cast<Pre>(rng.Below(domain)));
    }
  }
  return t;
}

bool TablesEqual(const ResultTable& a, const ResultTable& b) {
  if (a.NumCols() != b.NumCols() || a.NumRows() != b.NumRows()) return false;
  for (size_t c = 0; c < a.NumCols(); ++c) {
    if (a.Col(c) != b.Col(c)) return false;
  }
  return true;
}

TEST(ResultViewTest, SelectRowsMatchesEager) {
  Rng rng(1);
  for (int round = 0; round < 20; ++round) {
    ResultTable t = RandomTable(rng, 1 + rng.Below(4), rng.Below(200), 50);
    std::vector<uint32_t> rows;
    for (uint64_t i = 0; i < t.NumRows(); ++i) {
      if (rng.Below(3) == 0) rows.push_back(static_cast<uint32_t>(i));
      if (rng.Below(7) == 0) rows.push_back(static_cast<uint32_t>(i));
    }
    ColumnArena arena;
    ResultView v = ResultView::FromTable(t);
    // Stack two selections so composed (indexed) columns get exercised.
    ResultView first = SelectRowsView(v, rows, arena);
    std::vector<uint32_t> rows2;
    for (uint64_t i = 0; i < first.NumRows(); i += 2) {
      rows2.push_back(static_cast<uint32_t>(i));
    }
    ResultView second = SelectRowsView(first, rows2, arena);
    ResultTable eager = t.SelectRows(rows).SelectRows(rows2);
    EXPECT_TRUE(TablesEqual(second.Gather(nullptr), eager));
  }
}

// Pairs grouped by left row, as all pair-producing joins emit them.
JoinPairs RandomPairs(Rng& rng, uint64_t outer_rows, uint32_t domain) {
  JoinPairs p;
  for (uint64_t r = 0; r < outer_rows; ++r) {
    uint64_t n = rng.Below(4);
    for (uint64_t k = 0; k < n; ++k) {
      p.left_rows.push_back(static_cast<uint32_t>(r));
      p.right_nodes.push_back(static_cast<Pre>(rng.Below(domain)));
    }
  }
  p.outer_consumed = outer_rows;
  return p;
}

TEST(ResultViewTest, ExtendMatchesEager) {
  Rng rng(2);
  for (int round = 0; round < 20; ++round) {
    ResultTable t = RandomTable(rng, 1 + rng.Below(4), rng.Below(100), 40);
    JoinPairs pairs = RandomPairs(rng, t.NumRows(), 40);
    ResultTable eager = ExtendTableWithPairs(t, pairs);
    ColumnArena arena;
    ResultView v = ResultView::FromTable(t);
    ResultView out = ExtendViewWithPairs(v, std::move(pairs), arena);
    EXPECT_TRUE(TablesEqual(out.Gather(nullptr), eager));
  }
}

TEST(ResultViewTest, JoinMatchesEager) {
  Rng rng(3);
  for (int round = 0; round < 20; ++round) {
    ResultTable outer = RandomTable(rng, 1 + rng.Below(3), rng.Below(80), 30);
    ResultTable inner = RandomTable(rng, 1 + rng.Below(3), rng.Below(80), 30);
    size_t inner_col = rng.Below(inner.NumCols());
    JoinPairs pairs = RandomPairs(rng, outer.NumRows(), 30);
    ResultTable eager = JoinTablesWithPairs(outer, pairs, inner, inner_col);
    ColumnArena arena;
    ResultView out =
        JoinViewsWithPairs(ResultView::FromTable(outer), pairs,
                           ResultView::FromTable(inner), inner_col, arena);
    EXPECT_TRUE(TablesEqual(out.Gather(nullptr), eager));
  }
}

TEST(ResultViewTest, DistinctColumnMatchesEager) {
  Rng rng(4);
  ResultTable t = RandomTable(rng, 2, 300, 25);
  std::vector<uint32_t> rows;
  for (uint32_t i = 0; i < t.NumRows(); i += 3) rows.push_back(i);
  ColumnArena arena;
  ResultView v = SelectRowsView(ResultView::FromTable(t), rows, arena);
  ResultTable eager = t.SelectRows(rows);
  EXPECT_EQ(v.DistinctColumn(0), eager.DistinctColumn(0));
  EXPECT_EQ(v.DistinctColumn(1), eager.DistinctColumn(1));
}

TEST(ResultViewTest, DeadColumnsAreElidedButLiveOnesSurvive) {
  Rng rng(5);
  ResultTable t = RandomTable(rng, 3, 100, 20);
  std::vector<uint32_t> rows = {5, 1, 7, 7, 30};
  std::vector<bool> live = {true, false, true};
  ColumnArena arena;
  ResultView v =
      SelectRowsView(ResultView::FromTable(t), rows, arena, &live);
  EXPECT_FALSE(v.Dead(0));
  EXPECT_TRUE(v.Dead(1));
  EXPECT_FALSE(v.Dead(2));
  ResultTable eager = t.SelectRows(rows);
  std::vector<Pre> col;
  v.GatherColumnInto(0, col, nullptr);
  EXPECT_EQ(col, eager.Col(0));
  v.GatherColumnInto(2, col, nullptr);
  EXPECT_EQ(col, eager.Col(2));
}

TEST(ColumnArenaTest, AdoptKeepsDataStableWithoutCopy) {
  ColumnArena arena;
  std::vector<uint32_t> v = {1, 2, 3};
  const uint32_t* data = v.data();
  std::span<const uint32_t> s = arena.Adopt(std::move(v));
  EXPECT_EQ(s.data(), data);  // zero-copy: same heap buffer
  // Later allocations must not disturb adopted storage.
  for (int i = 0; i < 100; ++i) arena.Alloc(1000);
  EXPECT_EQ(s[0], 1u);
  EXPECT_EQ(s[2], 3u);
}

// --- end-to-end differential tests -----------------------------------------

Corpus TestCorpus() {
  Corpus corpus;
  XmarkGenOptions gen;
  gen.items = 400;
  gen.persons = 450;
  gen.open_auctions = 250;
  EXPECT_TRUE(GenerateXmarkDocument(corpus, gen).ok());
  DblpGenOptions dblp;
  dblp.tag_scale = 0.05;
  EXPECT_TRUE(AddDblpDocuments(corpus, dblp, {18, 19, 20}).ok());
  // A deep chain document for multi-step chain queries.
  std::string xml = "<root>";
  for (int c = 0; c < 30; ++c) {
    xml += "<a><b><a><b><a><b><t/></b></a></b></a></b></a>";
  }
  xml += "</root>";
  EXPECT_TRUE(corpus.AddXml(xml, "chain.xml").ok());
  return corpus;
}

// Q1-shaped query with a randomized price threshold and direction.
std::string XmarkQuery(uint32_t threshold, bool less_than) {
  std::string q = R"(let $d := doc("xmark.xml")
      for $o in $d//open_auction[.//current/text() )";
  q += less_than ? "<" : ">";
  q += " " + std::to_string(threshold) + R"(],
          $p in $d//person[.//province],
          $i in $d//item[./quantity = 1]
      where $o//bidder//personref/@person = $p/@id and
            $o//itemref/@item = $i/@id
      return $o)";
  return q;
}

std::vector<std::string> DifferentialQueries() {
  std::vector<std::string> queries;
  Rng rng(77);
  for (int i = 0; i < 6; ++i) {
    queries.push_back(
        XmarkQuery(40 + static_cast<uint32_t>(rng.Below(180)), i % 2 == 0));
  }
  // Deep chain: only the last step's column survives to the tail.
  queries.push_back(
      R"(let $d := doc("chain.xml")
         for $x in $d//a//b//a//b//t return $x)");
  // DBLP equi-joins (2-way and 3-way author joins).
  queries.push_back(
      R"(for $a in doc("SIGMOD")//author, $b in doc("EDBT")//author
         where $a/text() = $b/text() return $a)");
  queries.push_back(
      R"(for $a in doc("SIGMOD")//author, $b in doc("EDBT")//author,
             $c in doc("ADBIS")//author
         where $a/text() = $b/text() and $a/text() = $c/text()
         return $b)");
  // Disconnected join graph: components combine via cross product.
  queries.push_back(
      R"(for $p in doc("xmark.xml")//person[.//province],
             $i in doc("xmark.xml")//item[./quantity = 1]
         return $p)");
  return queries;
}

std::vector<Pre> RunWithOptions(const Corpus& corpus, const std::string& q,
                                RoxOptions rox, bool lazy,
                                RoxStats* stats = nullptr) {
  rox.lazy_materialization = lazy;
  auto compiled = xq::CompileXQuery(corpus, q);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  auto items = xq::RunXQuery(corpus, *compiled, rox, stats);
  EXPECT_TRUE(items.ok()) << items.status().ToString();
  return items.ok() ? *items : std::vector<Pre>{};
}

TEST(MaterializationDifferentialTest, LazyMatchesEagerOnAllQueries) {
  Corpus corpus = TestCorpus();
  RoxOptions rox;
  rox.seed = 99;
  size_t i = 0;
  for (const std::string& q : DifferentialQueries()) {
    RoxStats lazy_stats;
    std::vector<Pre> eager = RunWithOptions(corpus, q, rox, false);
    std::vector<Pre> lazy = RunWithOptions(corpus, q, rox, true, &lazy_stats);
    EXPECT_EQ(eager, lazy) << "query #" << i;
    // Row-count accounting is representation-independent.
    RoxStats eager_stats;
    RunWithOptions(corpus, q, rox, false, &eager_stats);
    EXPECT_EQ(eager_stats.peak_intermediate_rows,
              lazy_stats.peak_intermediate_rows)
        << "query #" << i;
    ++i;
  }
}

TEST(MaterializationDifferentialTest, CutOffAndApproximateRunsMatch) {
  Corpus corpus = TestCorpus();
  // Tiny tau forces truncated (cut-off) sampled executions everywhere;
  // approximate_fraction materializes sampled subsets of every vertex
  // table. Same seed -> both modes must still agree exactly.
  RoxOptions rox;
  rox.seed = 1234;
  rox.tau = 15;
  rox.approximate_fraction = 0.5;
  for (const std::string& q : DifferentialQueries()) {
    EXPECT_EQ(RunWithOptions(corpus, q, rox, false),
              RunWithOptions(corpus, q, rox, true));
  }
}

TEST(MaterializationDifferentialTest, ShardedLazyMatchesUnshardedEager) {
  Corpus corpus = TestCorpus();
  RoxOptions rox;
  rox.seed = 4321;
  for (size_t shards : {1u, 4u}) {
    ThreadPool pool(shards);
    ShardedCorpus sc(corpus, shards, &pool);
    ShardedExec ex;
    ex.shards = &sc;
    ex.pool = &pool;
    for (const std::string& q : DifferentialQueries()) {
      RoxOptions sharded_rox = rox;
      sharded_rox.sharded = &ex;
      RoxStats stats;
      std::vector<Pre> lazy_sharded =
          RunWithOptions(corpus, q, sharded_rox, true, &stats);
      EXPECT_EQ(RunWithOptions(corpus, q, rox, false), lazy_sharded)
          << shards << " shards";
    }
  }
}

TEST(MaterializationDifferentialTest, EngineFlagKeepsResultsIdentical) {
  std::vector<std::shared_ptr<const std::vector<Pre>>> results;
  for (bool lazy : {false, true}) {
    engine::EngineOptions opts;
    opts.num_threads = 2;
    opts.lazy_materialization = lazy;
    opts.cache_results = false;
    engine::Engine engine(TestCorpus(), opts);
    auto r = engine.Run(XmarkQuery(145, true));
    ASSERT_TRUE(r.ok()) << r.status.ToString();
    results.push_back(r.items);
    if (lazy) {
      EXPECT_GT(r.rox_stats.gather.gather_count, 0u);
      EXPECT_GT(engine.Stats().gather_count, 0u);
    }
  }
  EXPECT_EQ(*results[0], *results[1]);
}

TEST(MaterializationDifferentialTest, ClassicalExecutorLazyMatchesEager) {
  std::vector<bench::Combo> combos = bench::SampleCombos(1, 5);
  ASSERT_FALSE(combos.empty());
  DblpGenOptions gen;
  gen.tag_scale = 0.05;
  auto corpus = bench::ComboCorpus(combos[0], gen);
  ASSERT_TRUE(corpus.ok());
  std::vector<DocId> docs = {0, 1, 2, 3};
  CanonicalPlanExecutor eager(*corpus, docs, nullptr, /*lazy=*/false);
  CanonicalPlanExecutor lazy(*corpus, docs, nullptr, /*lazy=*/true);
  int checked = 0;
  for (const JoinOrder& order : EnumerateJoinOrders4()) {
    if (++checked > 4) break;  // a few orders x all placements suffice
    for (StepPlacement p : kAllPlacements) {
      auto re = eager.Run(order, p);
      auto rl = lazy.Run(order, p);
      ASSERT_TRUE(re.ok() && rl.ok());
      EXPECT_EQ(re->join_result_sizes, rl->join_result_sizes);
      EXPECT_EQ(re->cumulative_join_rows, rl->cumulative_join_rows);
      EXPECT_EQ(re->result_rows, rl->result_rows);
    }
  }
}

}  // namespace
}  // namespace rox
