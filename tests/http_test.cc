// Unit tests for the dependency-free HTTP/1.1 layer (DESIGN.md §15):
// incremental parsing across arbitrary chunk boundaries, keep-alive
// and pipelining, the size caps a socket peer could abuse, and the
// exact error statuses (400/413/431/501) each kind of damage earns.

#include "server/http.h"

#include <gtest/gtest.h>

#include <string>

namespace rox::server {
namespace {

HttpRequest ParseAll(HttpParser& p, const std::string& bytes) {
  p.Feed(bytes.data(), bytes.size());
  EXPECT_TRUE(p.HasRequest()) << "parser did not complete";
  return p.TakeRequest();
}

TEST(HttpParserTest, ParsesSimpleGet) {
  HttpParser p;
  HttpRequest r = ParseAll(p, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_EQ(r.method, "GET");
  EXPECT_EQ(r.target, "/healthz");
  EXPECT_EQ(r.version, "HTTP/1.1");
  EXPECT_TRUE(r.body.empty());
  EXPECT_FALSE(r.WantsClose());
}

TEST(HttpParserTest, ParsesPostWithBody) {
  HttpParser p;
  HttpRequest r = ParseAll(p,
                           "POST /query HTTP/1.1\r\n"
                           "Content-Length: 11\r\n"
                           "X-Client-Tag: t1\r\n"
                           "\r\n"
                           "hello world");
  EXPECT_EQ(r.method, "POST");
  EXPECT_EQ(r.body, "hello world");
  ASSERT_NE(r.FindHeader("x-client-tag"), nullptr);  // case-insensitive
  EXPECT_EQ(*r.FindHeader("X-CLIENT-TAG"), "t1");
}

TEST(HttpParserTest, ByteAtATimeFeedingReachesTheSameRequest) {
  const std::string bytes =
      "POST /query HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd";
  HttpParser p;
  for (char c : bytes) {
    EXPECT_FALSE(p.failed());
    p.Feed(&c, 1);
  }
  ASSERT_TRUE(p.HasRequest());
  HttpRequest r = p.TakeRequest();
  EXPECT_EQ(r.target, "/query");
  EXPECT_EQ(r.body, "abcd");
}

TEST(HttpParserTest, PipelinedRequestsComeOutInOrder) {
  HttpParser p;
  const std::string two =
      "POST /query HTTP/1.1\r\nContent-Length: 2\r\n\r\nq1"
      "GET /stats HTTP/1.1\r\n\r\n";
  p.Feed(two.data(), two.size());
  ASSERT_TRUE(p.HasRequest());
  HttpRequest first = p.TakeRequest();
  EXPECT_EQ(first.body, "q1");
  // Taking the first request parses the buffered second one.
  ASSERT_TRUE(p.HasRequest());
  HttpRequest second = p.TakeRequest();
  EXPECT_EQ(second.method, "GET");
  EXPECT_EQ(second.target, "/stats");
}

TEST(HttpParserTest, ConnectionCloseAndHttp10Semantics) {
  HttpParser p;
  HttpRequest r =
      ParseAll(p, "GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
  EXPECT_TRUE(r.WantsClose());
  HttpRequest r10 = ParseAll(p, "GET / HTTP/1.0\r\n\r\n");
  EXPECT_TRUE(r10.WantsClose());  // 1.0 default is close
  HttpRequest r10ka =
      ParseAll(p, "GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
  EXPECT_FALSE(r10ka.WantsClose());
}

TEST(HttpParserTest, MalformedRequestLineIs400) {
  HttpParser p;
  const std::string bad = "GET_NO_TARGET\r\n\r\n\r\n";
  p.Feed(bad.data(), bad.size());
  ASSERT_TRUE(p.failed());
  EXPECT_EQ(p.error_status(), 400);
}

TEST(HttpParserTest, UnsupportedVersionIs400) {
  HttpParser p;
  const std::string bad = "GET / HTTP/2.0\r\n\r\n";
  p.Feed(bad.data(), bad.size());
  ASSERT_TRUE(p.failed());
  EXPECT_EQ(p.error_status(), 400);
}

TEST(HttpParserTest, BadContentLengthIs400) {
  HttpParser p;
  const std::string bad =
      "POST /query HTTP/1.1\r\nContent-Length: banana\r\n\r\n";
  p.Feed(bad.data(), bad.size());
  ASSERT_TRUE(p.failed());
  EXPECT_EQ(p.error_status(), 400);
}

TEST(HttpParserTest, HeaderFoldingIs400) {
  HttpParser p;
  const std::string bad =
      "GET / HTTP/1.1\r\nX-A: one\r\n two\r\n\r\n";
  p.Feed(bad.data(), bad.size());
  ASSERT_TRUE(p.failed());
  EXPECT_EQ(p.error_status(), 400);
}

TEST(HttpParserTest, OversizedBodyIs413) {
  HttpParserLimits limits;
  limits.max_body_bytes = 16;
  HttpParser p(limits);
  const std::string bad =
      "POST /query HTTP/1.1\r\nContent-Length: 17\r\n\r\n";
  p.Feed(bad.data(), bad.size());
  ASSERT_TRUE(p.failed());
  EXPECT_EQ(p.error_status(), 413);
}

TEST(HttpParserTest, OversizedHeadersAre431) {
  HttpParserLimits limits;
  limits.max_header_bytes = 64;
  HttpParser p(limits);
  std::string bad = "GET / HTTP/1.1\r\nX-Big: ";
  bad.append(200, 'x');
  bad += "\r\n\r\n";
  p.Feed(bad.data(), bad.size());
  ASSERT_TRUE(p.failed());
  EXPECT_EQ(p.error_status(), 431);
}

TEST(HttpParserTest, OversizedHeadersWithoutTerminatorStillFail) {
  // The peer streams header bytes forever without the blank line; the
  // parser must not buffer unboundedly waiting for it.
  HttpParserLimits limits;
  limits.max_header_bytes = 64;
  HttpParser p(limits);
  std::string drip = "GET / HTTP/1.1\r\nX-Big: ";
  drip.append(100, 'x');
  p.Feed(drip.data(), drip.size());
  ASSERT_TRUE(p.failed());
  EXPECT_EQ(p.error_status(), 431);
}

TEST(HttpParserTest, TransferEncodingIs501) {
  HttpParser p;
  const std::string bad =
      "POST /query HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
  p.Feed(bad.data(), bad.size());
  ASSERT_TRUE(p.failed());
  EXPECT_EQ(p.error_status(), 501);
}

TEST(HttpParserTest, ErrorLatchesAgainstFurtherInput) {
  HttpParser p;
  const std::string bad = "BROKEN\r\n\r\n";
  p.Feed(bad.data(), bad.size());
  ASSERT_TRUE(p.failed());
  const std::string fine = "GET / HTTP/1.1\r\n\r\n";
  p.Feed(fine.data(), fine.size());
  EXPECT_TRUE(p.failed());
  EXPECT_FALSE(p.HasRequest());
}

TEST(HttpResponseTest, BuildsFramedResponse) {
  std::string resp = BuildHttpResponse(200, "application/json",
                                       "{\"x\": 1}", /*keep_alive=*/true);
  EXPECT_NE(resp.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(resp.find("Content-Length: 8\r\n"), std::string::npos);
  EXPECT_NE(resp.find("Connection: keep-alive\r\n"), std::string::npos);
  EXPECT_EQ(resp.substr(resp.size() - 8), "{\"x\": 1}");

  std::string err =
      BuildHttpResponse(429, "application/json", "{}", /*keep_alive=*/false);
  EXPECT_NE(err.find("HTTP/1.1 429 Too Many Requests\r\n"),
            std::string::npos);
  EXPECT_NE(err.find("Connection: close\r\n"), std::string::npos);
}

}  // namespace
}  // namespace rox::server
