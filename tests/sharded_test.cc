// Shard-boundary correctness of the sharded corpus and the parallel
// intra-query fan-out: per-shard index lookups must concatenate to the
// full lookup, fanned-out operators must reproduce the sequential
// operators byte for byte, and a query must return identical results
// for every shard count — including empty shards (more shards than a
// document has nodes) and single-document/mixed corpora.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "classical/executor.h"
#include "classical/plans.h"
#include "common/thread_pool.h"
#include "engine/engine.h"
#include "exec/sharded_exec.h"
#include "index/sharded_corpus.h"
#include "workload/dblp.h"
#include "workload/xmark.h"
#include "xq/compile.h"

namespace rox {
namespace {

Corpus XmarkCorpus() {
  Corpus corpus;
  XmarkGenOptions gen;
  gen.items = 300;
  gen.persons = 350;
  gen.open_auctions = 200;
  auto id = GenerateXmarkDocument(corpus, gen);
  EXPECT_TRUE(id.ok());
  return corpus;
}

// XMark plus two DBLP documents sharing the pool (mixed corpus).
Corpus MixedCorpus() {
  Corpus corpus = XmarkCorpus();
  DblpGenOptions dblp;
  dblp.tag_scale = 0.05;
  auto ids = AddDblpDocuments(corpus, dblp, {19, 20});
  EXPECT_TRUE(ids.ok());
  return corpus;
}

// A corpus whose second document is a single tiny element — with K > 3
// shards most of its shards are empty and one holds a single node.
Corpus TinyDocCorpus() {
  Corpus corpus = XmarkCorpus();
  auto id = corpus.AddXml("<solo><a>x</a></solo>", "tiny.xml");
  EXPECT_TRUE(id.ok());
  return corpus;
}

// --- ShardedCorpus ----------------------------------------------------------

TEST(ShardedCorpusTest, RangesPartitionEveryDocument) {
  Corpus corpus = MixedCorpus();
  for (size_t k : {1u, 2u, 3u, 8u}) {
    ShardedCorpus shards(corpus, k, nullptr);
    ASSERT_EQ(shards.num_shards(), k);
    for (DocId d = 0; d < corpus.DocCount(); ++d) {
      Pre expected_begin = 0;
      for (size_t s = 0; s < k; ++s) {
        const ShardRange& r = shards.range(d, s);
        EXPECT_EQ(r.begin, expected_begin);
        EXPECT_LE(r.begin, r.end);
        expected_begin = r.end;
      }
      EXPECT_EQ(expected_begin, corpus.doc(d).NodeCount());
    }
  }
}

TEST(ShardedCorpusTest, ShardLookupsConcatenateToFullLookup) {
  Corpus corpus = MixedCorpus();
  ThreadPool pool(2);
  ShardedCorpus shards(corpus, 4, &pool);
  for (DocId d = 0; d < corpus.DocCount(); ++d) {
    const ElementIndex& full = corpus.element_index(d);
    for (StringId q : full.Names()) {
      auto full_span = full.Lookup(q);
      std::vector<Pre> merged;
      for (size_t s = 0; s < shards.num_shards(); ++s) {
        auto part = shards.element_index(d, s).Lookup(q);
        merged.insert(merged.end(), part.begin(), part.end());
      }
      EXPECT_EQ(merged,
                std::vector<Pre>(full_span.begin(), full_span.end()))
          << "doc " << d << " name " << q;
    }
  }
}

TEST(ShardedCorpusTest, EmptyAndSingleNodeShards) {
  Corpus corpus = TinyDocCorpus();
  DocId tiny = 1;
  Pre n = corpus.doc(tiny).NodeCount();  // doc root + solo + a + text
  ASSERT_LE(n, 8u);
  ShardedCorpus shards(corpus, 8, nullptr);
  uint64_t covered = 0;
  size_t empty_shards = 0;
  for (size_t s = 0; s < 8; ++s) {
    const ShardRange& r = shards.range(tiny, s);
    covered += r.size();
    if (r.empty()) {
      ++empty_shards;
      // An empty shard still carries (empty) indexes.
      EXPECT_TRUE(shards.element_index(tiny, s).Names().empty());
    }
  }
  EXPECT_EQ(covered, n);
  EXPECT_GE(empty_shards, static_cast<size_t>(8 - n));
}

TEST(ShardedCorpusTest, PartitionSplitsAtBoundaries) {
  Corpus corpus = XmarkCorpus();
  ShardedCorpus shards(corpus, 4, nullptr);
  // All element nodes named "person", document-ordered.
  StringId person = corpus.Find("person");
  auto span = corpus.element_index(0).Lookup(person);
  std::vector<Pre> nodes(span.begin(), span.end());
  std::vector<std::span<const Pre>> parts;
  std::vector<uint32_t> offsets;
  shards.Partition(0, nodes, &parts, &offsets);
  ASSERT_EQ(parts.size(), 4u);
  size_t total = 0;
  for (size_t s = 0; s < parts.size(); ++s) {
    EXPECT_EQ(offsets[s], total);
    for (Pre p : parts[s]) {
      EXPECT_TRUE(shards.range(0, s).Contains(p));
    }
    total += parts[s].size();
  }
  EXPECT_EQ(total, nodes.size());
}

// --- fanned-out operators vs sequential -------------------------------------

TEST(ShardedExecTest, StructuralFanoutMatchesSequential) {
  Corpus corpus = XmarkCorpus();
  ThreadPool pool(3);
  ShardedCorpus shards(corpus, 3, &pool);
  ShardedExec ex{&shards, &pool};
  const Document& doc = corpus.doc(0);
  StringId open_auction = corpus.Find("open_auction");
  auto span = corpus.element_index(0).Lookup(open_auction);
  std::vector<Pre> ctx(span.begin(), span.end());
  for (StepSpec spec : {StepSpec::Descendant(corpus.Find("bidder")),
                        StepSpec::Child(corpus.Find("current")),
                        StepSpec::ChildText()}) {
    JoinPairs seq = StructuralJoinPairs(doc, ctx, spec, kNoLimit,
                                        &corpus.element_index(0));
    ShardFanoutStats stats;
    JoinPairs fan = ShardedStructuralJoinPairs(
        &ex, 0, doc, ctx, spec, &corpus.element_index(0), &stats);
    EXPECT_EQ(fan.left_rows, seq.left_rows);
    EXPECT_EQ(fan.right_nodes, seq.right_nodes);
    EXPECT_EQ(fan.outer_consumed, seq.outer_consumed);
    EXPECT_EQ(stats.fanouts, 1u);
    EXPECT_EQ(std::accumulate(stats.shard_rows.begin(),
                              stats.shard_rows.end(), uint64_t{0}),
              seq.right_nodes.size());
  }
}

TEST(ShardedExecTest, ValueJoinFanoutsMatchSequential) {
  Corpus corpus = XmarkCorpus();
  ThreadPool pool(4);
  ShardedCorpus shards(corpus, 4, &pool);
  ShardedExec ex{&shards, &pool};
  const Document& doc = corpus.doc(0);
  // personref/@person attributes joined against person/@id.
  auto at_person = corpus.element_index(0).LookupAttr(corpus.Find("person"));
  auto at_id = corpus.element_index(0).LookupAttr(corpus.Find("id"));
  std::vector<Pre> outer(at_person.begin(), at_person.end());
  std::vector<Pre> inner(at_id.begin(), at_id.end());

  JoinPairs seq_hash = HashValueJoinPairs(doc, outer, doc, inner);
  JoinPairs fan_hash =
      ShardedHashValueJoinPairs(&ex, doc, outer, doc, inner, nullptr);
  EXPECT_EQ(fan_hash.left_rows, seq_hash.left_rows);
  EXPECT_EQ(fan_hash.right_nodes, seq_hash.right_nodes);

  ValueProbeSpec spec = ValueProbeSpec::Attr(corpus.Find("id"));
  JoinPairs seq_nl = ValueIndexJoinPairs(doc, outer, doc,
                                         corpus.value_index(0), spec);
  JoinPairs fan_nl = ShardedValueIndexJoinPairs(
      &ex, doc, outer, doc, corpus.value_index(0), spec, nullptr);
  EXPECT_EQ(fan_nl.left_rows, seq_nl.left_rows);
  EXPECT_EQ(fan_nl.right_nodes, seq_nl.right_nodes);
}

// --- whole-query equivalence -------------------------------------------------

constexpr char kXmarkQ1[] = R"(
  let $d := doc("xmark.xml")
  for $o in $d//open_auction[.//current/text() < 145],
      $p in $d//person[.//province],
      $i in $d//item[./quantity = 1]
  where $o//bidder//personref/@person = $p/@id and
        $o//itemref/@item = $i/@id
  return $o
)";

constexpr char kXmarkLookupJoin[] = R"(
  for $b in doc("xmark.xml")//bidder//personref,
      $p in doc("xmark.xml")//person
  where $b/@person = $p/@id
  return $p
)";

constexpr char kDblpJoin[] = R"(
  for $a in doc("EDBT")//author, $b in doc("SIGMOD")//author
  where $a/text() = $b/text()
  return $a
)";

std::vector<Pre> RunSharded(const Corpus& corpus, const std::string& query,
                            size_t num_shards, int sample_shard) {
  auto compiled = xq::CompileXQuery(corpus, query);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  RoxOptions rox;
  rox.tau = 50;
  ThreadPool pool(2);
  ShardedCorpus shards(corpus, num_shards, &pool);
  ShardedExec ex{&shards, &pool};
  ex.sample_shard = sample_shard;
  if (num_shards > 1) rox.sharded = &ex;
  auto items = xq::RunXQuery(corpus, *compiled, rox);
  EXPECT_TRUE(items.ok()) << items.status().ToString();
  return items.ok() ? *items : std::vector<Pre>{};
}

TEST(ShardedQueryTest, XmarkIdenticalAcrossShardCounts) {
  Corpus corpus = XmarkCorpus();
  for (const char* query : {kXmarkQ1, kXmarkLookupJoin}) {
    std::vector<Pre> base =
        RunSharded(corpus, query, 1, ShardedExec::kSampleUnion);
    EXPECT_FALSE(base.empty());
    for (size_t k : {2u, 3u, 4u, 8u}) {
      EXPECT_EQ(RunSharded(corpus, query, k, ShardedExec::kSampleUnion),
                base)
          << "shards=" << k;
    }
  }
}

TEST(ShardedQueryTest, MixedCorpusIdenticalAcrossShardCounts) {
  Corpus corpus = MixedCorpus();
  for (const char* query : {kXmarkQ1, kDblpJoin}) {
    std::vector<Pre> base =
        RunSharded(corpus, query, 1, ShardedExec::kSampleUnion);
    EXPECT_FALSE(base.empty());
    for (size_t k : {2u, 4u}) {
      EXPECT_EQ(RunSharded(corpus, query, k, ShardedExec::kSampleUnion),
                base)
          << "shards=" << k;
    }
  }
}

TEST(ShardedQueryTest, SampleShardModeChangesOnlyTiming) {
  // Restricting Phase-1 draws to one designated shard may change the
  // explored join order but never the result.
  Corpus corpus = XmarkCorpus();
  std::vector<Pre> base =
      RunSharded(corpus, kXmarkQ1, 1, ShardedExec::kSampleUnion);
  for (int sample_shard : {0, 1, 3}) {
    EXPECT_EQ(RunSharded(corpus, kXmarkQ1, 4, sample_shard), base)
        << "sample_shard=" << sample_shard;
  }
}

TEST(ShardedQueryTest, TinyDocumentWithEmptyShards) {
  Corpus corpus = TinyDocCorpus();
  const std::string query = R"(for $a in doc("tiny.xml")//a return $a)";
  std::vector<Pre> base =
      RunSharded(corpus, query, 1, ShardedExec::kSampleUnion);
  EXPECT_EQ(base.size(), 1u);
  for (size_t k : {2u, 8u}) {
    EXPECT_EQ(RunSharded(corpus, query, k, ShardedExec::kSampleUnion), base);
  }
}

// --- classical executor -------------------------------------------------------

TEST(ShardedClassicalTest, CanonicalPlansMatchUnsharded) {
  DblpGenOptions gen;
  gen.tag_scale = 0.05;
  auto corpus = GenerateDblpCorpus(gen, {7, 12, 19, 20});
  ASSERT_TRUE(corpus.ok());
  std::vector<DocId> docs = {0, 1, 2, 3};
  ThreadPool pool(2);
  ShardedCorpus shards(*corpus, 3, &pool);
  ShardedExec ex{&shards, &pool};
  CanonicalPlanExecutor plain(*corpus, docs);
  CanonicalPlanExecutor sharded(*corpus, docs, &ex);
  JoinOrder order = ClassicalJoinOrder(*corpus, docs);
  for (StepPlacement placement : kAllPlacements) {
    auto a = plain.Run(order, placement);
    auto b = sharded.Run(order, placement);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a->result_rows, b->result_rows);
    EXPECT_EQ(a->join_result_sizes, b->join_result_sizes);
    EXPECT_EQ(a->cumulative_join_rows, b->cumulative_join_rows);
  }
}

// --- engine integration -------------------------------------------------------

TEST(ShardedEngineTest, EngineResultsIdenticalAndStatsSurface) {
  std::vector<Pre> base_items;
  for (size_t k : {1u, 4u}) {
    Corpus corpus = XmarkCorpus();
    engine::EngineOptions opts;
    opts.num_threads = 2;
    opts.num_shards = k;
    opts.cache_results = false;
    engine::Engine eng(std::move(corpus), opts);
    engine::QueryResult r1 = eng.Run(kXmarkQ1);
    engine::QueryResult r2 = eng.Run(kXmarkQ1);  // warm-started rerun
    ASSERT_TRUE(r1.ok()) << r1.status.ToString();
    ASSERT_TRUE(r2.ok());
    EXPECT_EQ(*r1.items, *r2.items);
    if (k == 1) {
      base_items = *r1.items;
      EXPECT_EQ(eng.sharded_corpus(), nullptr);
      EXPECT_EQ(eng.Stats().sharded.fanouts, 0u);
    } else {
      EXPECT_EQ(*r1.items, base_items);
      ASSERT_NE(eng.sharded_corpus(), nullptr);
      EXPECT_EQ(eng.sharded_corpus()->num_shards(), 4u);
      engine::EngineStats stats = eng.Stats();
      EXPECT_EQ(stats.num_shards, 4u);
      EXPECT_GT(stats.sharded.fanouts, 0u);
      EXPECT_EQ(stats.sharded.shard_rows.size(), 4u);
      // The stats string surfaces the shard line for \stats.
      EXPECT_NE(stats.ToString().find("shards: 4"), std::string::npos);
    }
  }
}

TEST(ShardedEngineTest, ConcurrentShardedBatchIsDeterministic) {
  Corpus corpus = XmarkCorpus();
  engine::EngineOptions opts;
  opts.num_threads = 4;
  opts.num_shards = 3;
  opts.shard_threads = 2;
  engine::Engine eng(std::move(corpus), opts);
  std::vector<std::string> batch;
  for (int i = 0; i < 12; ++i) {
    batch.push_back(i % 2 == 0 ? kXmarkQ1 : kXmarkLookupJoin);
  }
  std::vector<engine::QueryResult> results = eng.RunBatch(batch, 4);
  ASSERT_EQ(results.size(), batch.size());
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok());
    EXPECT_EQ(*results[i].items, *results[i % 2].items);
  }
}

// --- ParallelFor -------------------------------------------------------------

TEST(ParallelForTest, RunsEveryIterationExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> counts(100);
  ParallelFor(&pool, counts.size(),
              [&](size_t i) { counts[i].fetch_add(1); });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ParallelForTest, InlineWithoutPool) {
  std::vector<int> counts(10, 0);
  ParallelFor(nullptr, counts.size(), [&](size_t i) { counts[i]++; });
  for (int c : counts) EXPECT_EQ(c, 1);
}

TEST(ParallelForTest, NestedOnSamePoolDoesNotDeadlock) {
  ThreadPool pool(1);  // the worst case: a single worker
  std::atomic<int> total{0};
  ParallelFor(&pool, 4, [&](size_t) {
    ParallelFor(&pool, 4, [&](size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 16);
}

TEST(ParallelForTest, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(
      ParallelFor(&pool, 8,
                  [&](size_t i) {
                    if (i == 5) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
}

}  // namespace
}  // namespace rox
