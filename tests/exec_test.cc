// Operator tests, centered on a brute-force oracle: every structural
// join result is cross-checked against a quadratic scan that evaluates
// NodeMatchesStep for all (context, node) pairs, over randomly generated
// documents and all axes.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>

#include "common/rng.h"
#include "exec/result_table.h"
#include "exec/structural_join.h"
#include "exec/value_join.h"
#include "index/corpus.h"
#include "xml/parser.h"

namespace rox {
namespace {

// Random well-formed document with elements from a small alphabet,
// attributes, and numeric-ish text.
std::string RandomXml(Rng& rng, int target_elems) {
  const char* names[] = {"a", "b", "c", "d"};
  std::string xml;
  int emitted = 0;
  // Recursive generation with explicit stack.
  std::function<void(int)> gen = [&](int depth) {
    const char* n = names[rng.Below(4)];
    xml += "<";
    xml += n;
    if (rng.Bernoulli(0.4)) {
      xml += " k=\"" + std::to_string(rng.Below(5)) + "\"";
    }
    xml += ">";
    ++emitted;
    int children = depth > 4 ? 0 : static_cast<int>(rng.Below(4));
    for (int i = 0; i < children && emitted < target_elems; ++i) {
      if (rng.Bernoulli(0.3)) {
        xml += std::to_string(rng.Below(100));
      } else {
        gen(depth + 1);
      }
    }
    if (rng.Bernoulli(0.3)) xml += std::to_string(rng.Below(100));
    xml += "</";
    xml += n;
    xml += ">";
  };
  xml += "<root>";
  ++emitted;
  while (emitted < target_elems) gen(1);
  // Keep <root> wrapper balanced.
  xml.insert(0, "");
  xml += "</root>";
  return xml;
}

// Oracle: all (row, node) pairs via quadratic NodeMatchesStep scan.
JoinPairs OraclePairs(const Document& doc, std::span<const Pre> context,
                      const StepSpec& step) {
  JoinPairs out;
  for (size_t i = 0; i < context.size(); ++i) {
    for (Pre s = 0; s < doc.NodeCount(); ++s) {
      if (NodeMatchesStep(doc, context[i], s, step)) {
        out.left_rows.push_back(static_cast<uint32_t>(i));
        out.right_nodes.push_back(s);
      }
    }
  }
  out.outer_consumed = context.size();
  return out;
}

// Normalizes pairs into a sorted (row, node) list for comparison.
std::vector<std::pair<uint32_t, Pre>> Norm(const JoinPairs& p) {
  std::vector<std::pair<uint32_t, Pre>> v;
  for (size_t i = 0; i < p.size(); ++i) {
    v.emplace_back(p.left_rows[i], p.right_nodes[i]);
  }
  std::sort(v.begin(), v.end());
  return v;
}

class StructuralJoinAxisTest : public ::testing::TestWithParam<Axis> {};

TEST_P(StructuralJoinAxisTest, MatchesOracleOnRandomDocs) {
  Axis axis = GetParam();
  Rng rng(1234 + static_cast<int>(axis));
  for (int trial = 0; trial < 6; ++trial) {
    Corpus corpus;
    auto id = corpus.AddXml(RandomXml(rng, 40), "r" + std::to_string(trial));
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    const Document& doc = corpus.doc(*id);
    const ElementIndex& idx = corpus.element_index(*id);

    // Random contexts: a handful of nodes of any kind valid for the axis.
    std::vector<Pre> context;
    for (Pre p = 0; p < doc.NodeCount(); ++p) {
      if (doc.Kind(p) == NodeKind::kElem && rng.Bernoulli(0.4)) {
        context.push_back(p);
      }
    }
    for (KindTest kind : {KindTest::kAnyKind, KindTest::kElem,
                          KindTest::kText, KindTest::kAttr}) {
      StepSpec step;
      step.axis = axis;
      step.kind = kind;
      // With and without a name test (only meaningful for elem/attr).
      for (StringId name : {kInvalidStringId, corpus.Find("b")}) {
        if (name != kInvalidStringId && kind != KindTest::kElem) continue;
        step.name = name;
        JoinPairs got = StructuralJoinPairs(doc, context, step, kNoLimit,
                                            &idx);
        JoinPairs want = OraclePairs(doc, context, step);
        EXPECT_EQ(Norm(got), Norm(want))
            << "axis=" << AxisName(axis) << " kind=" << static_cast<int>(kind)
            << " trial=" << trial;
        EXPECT_FALSE(got.truncated);
        EXPECT_EQ(got.outer_consumed, context.size());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAxes, StructuralJoinAxisTest,
    ::testing::Values(Axis::kChild, Axis::kDescendant,
                      Axis::kDescendantOrSelf, Axis::kParent, Axis::kAncestor,
                      Axis::kAncestorOrSelf, Axis::kFollowing,
                      Axis::kPreceding, Axis::kFollowingSibling,
                      Axis::kPrecedingSibling, Axis::kSelf, Axis::kAttribute),
    [](const ::testing::TestParamInfo<Axis>& info) {
      std::string n = AxisName(info.param);
      std::replace(n.begin(), n.end(), '-', '_');
      return n;
    });

TEST(StructuralJoinTest, ResultsInDocumentOrderPerRow) {
  Corpus corpus;
  auto id = corpus.AddXml("<a><b/><c><b/><b/></c><b/></a>", "d");
  ASSERT_TRUE(id.ok());
  const Document& doc = corpus.doc(*id);
  std::vector<Pre> ctx = {1};  // <a>
  JoinPairs p = StructuralJoinPairs(doc, ctx,
                                    StepSpec::Descendant(corpus.Find("b")));
  ASSERT_EQ(p.size(), 4u);
  for (size_t i = 1; i < p.size(); ++i) {
    EXPECT_LT(p.right_nodes[i - 1], p.right_nodes[i]);
  }
}

TEST(StructuralJoinTest, CutoffTruncatesAndExtrapolates) {
  Corpus corpus;
  // 10 context nodes each with exactly 3 <x/> children -> 30 pairs.
  std::string xml = "<r>";
  for (int i = 0; i < 10; ++i) xml += "<p><x/><x/><x/></p>";
  xml += "</r>";
  auto id = corpus.AddXml(xml, "d");
  ASSERT_TRUE(id.ok());
  const Document& doc = corpus.doc(*id);
  const ElementIndex& idx = corpus.element_index(*id);
  auto pspan = idx.Lookup(corpus.Find("p"));
  std::vector<Pre> ctx(pspan.begin(), pspan.end());
  JoinPairs p = StructuralJoinPairs(doc, ctx,
                                    StepSpec::Child(corpus.Find("x")), 9);
  EXPECT_EQ(p.size(), 9u);
  EXPECT_TRUE(p.truncated);
  // The sentinel (10th) pair is row 3's first: the tripping row counts
  // as consumed (outer_consumed = i + 1) even though none of its pairs
  // survive the sentinel pop — see StampTruncationStop.
  EXPECT_EQ(p.outer_consumed, 4u);
  // Extrapolation: 9 pairs from 4 of 10 rows -> 22.5 (the tripping
  // row's cut pairs bias the estimate low by at most one row's worth;
  // the former accounting could over-estimate unboundedly when
  // match-less rows preceded the trip).
  EXPECT_NEAR(p.EstimateFullCardinality(ctx.size()), 22.5, 1e-9);
}

TEST(StructuralJoinTest, CutoffOnLastRowIsExact) {
  Corpus corpus;
  auto id = corpus.AddXml("<r><p><x/></p><p><x/></p></r>", "d");
  ASSERT_TRUE(id.ok());
  const Document& doc = corpus.doc(*id);
  auto pspan = corpus.element_index(*id).Lookup(corpus.Find("p"));
  std::vector<Pre> ctx(pspan.begin(), pspan.end());
  JoinPairs p = StructuralJoinPairs(doc, ctx,
                                    StepSpec::Child(corpus.Find("x")), 2);
  EXPECT_EQ(p.size(), 2u);
  EXPECT_FALSE(p.truncated);  // completed exactly at the end
  EXPECT_EQ(p.EstimateFullCardinality(ctx.size()), 2.0);
}

TEST(StructuralJoinTest, DistinctStaircaseDedupesOverlappingContexts) {
  Corpus corpus;
  auto id = corpus.AddXml("<a><b><b><x/></b><x/></b><x/></a>", "d");
  ASSERT_TRUE(id.ok());
  const Document& doc = corpus.doc(*id);
  // Context: <a> and both <b>s (overlapping subtrees), sorted.
  std::vector<Pre> ctx;
  for (Pre p = 0; p < doc.NodeCount(); ++p) {
    if (doc.Kind(p) == NodeKind::kElem && doc.NameStr(p) != "x") {
      ctx.push_back(p);
    }
  }
  auto out = StructuralJoinDistinct(doc, ctx,
                                    StepSpec::Descendant(corpus.Find("x")));
  EXPECT_EQ(out.size(), 3u);  // each <x> once despite 3 covering contexts
  for (size_t i = 1; i < out.size(); ++i) EXPECT_LT(out[i - 1], out[i]);
}

TEST(StructuralJoinTest, DistinctMatchesPairDedupOnRandomDocs) {
  Rng rng(777);
  for (int trial = 0; trial < 8; ++trial) {
    Corpus corpus;
    auto id = corpus.AddXml(RandomXml(rng, 50), "d" + std::to_string(trial));
    ASSERT_TRUE(id.ok());
    const Document& doc = corpus.doc(*id);
    std::vector<Pre> ctx;
    for (Pre p = 0; p < doc.NodeCount(); ++p) {
      if (doc.Kind(p) == NodeKind::kElem && rng.Bernoulli(0.5)) {
        ctx.push_back(p);
      }
    }
    for (Axis axis : {Axis::kDescendant, Axis::kDescendantOrSelf,
                      Axis::kAncestor, Axis::kChild}) {
      StepSpec step;
      step.axis = axis;
      step.kind = KindTest::kElem;
      auto distinct = StructuralJoinDistinct(doc, ctx, step);
      JoinPairs pairs = StructuralJoinPairs(doc, ctx, step);
      std::vector<Pre> want = pairs.right_nodes;
      std::sort(want.begin(), want.end());
      want.erase(std::unique(want.begin(), want.end()), want.end());
      EXPECT_EQ(distinct, want) << AxisName(axis) << " trial " << trial;
    }
  }
}

// --- value joins -------------------------------------------------------------

class ValueJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto d1 = corpus_.AddXml(
        "<l><v>x</v><v>y</v><v>x</v><v>z</v></l>", "left.xml");
    auto d2 = corpus_.AddXml(
        "<r><w>x</w><w>x</w><w>y</w><w>q</w></r>", "right.xml");
    ASSERT_TRUE(d1.ok() && d2.ok());
    left_ = *d1;
    right_ = *d2;
    // Text nodes of each side.
    for (Pre p = 0; p < corpus_.doc(left_).NodeCount(); ++p) {
      if (corpus_.doc(left_).Kind(p) == NodeKind::kText) {
        ltexts_.push_back(p);
      }
    }
    for (Pre p = 0; p < corpus_.doc(right_).NodeCount(); ++p) {
      if (corpus_.doc(right_).Kind(p) == NodeKind::kText) {
        rtexts_.push_back(p);
      }
    }
  }

  Corpus corpus_;
  DocId left_ = 0, right_ = 0;
  std::vector<Pre> ltexts_, rtexts_;
};

TEST_F(ValueJoinTest, HashJoinCardinality) {
  // x:2*2 + y:1*1 = 5 pairs.
  JoinPairs p = HashValueJoinPairs(corpus_.doc(left_), ltexts_,
                                   corpus_.doc(right_), rtexts_);
  EXPECT_EQ(p.size(), 5u);
}

TEST_F(ValueJoinTest, IndexNlJoinEqualsHashJoin) {
  JoinPairs h = HashValueJoinPairs(corpus_.doc(left_), ltexts_,
                                   corpus_.doc(right_), rtexts_);
  JoinPairs n = ValueIndexJoinPairs(corpus_.doc(left_), ltexts_,
                                    corpus_.doc(right_),
                                    corpus_.value_index(right_),
                                    ValueProbeSpec::Text());
  EXPECT_EQ(Norm(h), Norm(n));
}

TEST_F(ValueJoinTest, MergeJoinEqualsHashJoin) {
  auto ls = SortByValueId(corpus_.doc(left_), ltexts_);
  auto rs = SortByValueId(corpus_.doc(right_), rtexts_);
  JoinPairs m = MergeValueJoinPairs(corpus_.doc(left_), ls,
                                    corpus_.doc(right_), rs);
  JoinPairs h = HashValueJoinPairs(corpus_.doc(left_), ltexts_,
                                   corpus_.doc(right_), rtexts_);
  // Compare by matched node multisets (row indices differ by sort).
  auto nodes = [](const JoinPairs& p) {
    std::vector<Pre> v = p.right_nodes;
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(nodes(m), nodes(h));
  EXPECT_EQ(m.size(), h.size());
}

TEST_F(ValueJoinTest, IndexNlJoinCutoff) {
  JoinPairs p = ValueIndexJoinPairs(corpus_.doc(left_), ltexts_,
                                    corpus_.doc(right_),
                                    corpus_.value_index(right_),
                                    ValueProbeSpec::Text(), 2);
  EXPECT_EQ(p.size(), 2u);
  EXPECT_TRUE(p.truncated);
  // Row 0 produced the 2 surviving matches; the sentinel came from
  // row 1, which therefore counts as consumed (StampTruncationStop).
  EXPECT_EQ(p.outer_consumed, 2u);
  EXPECT_NEAR(p.EstimateFullCardinality(ltexts_.size()), 4.0, 1e-9);
}

TEST_F(ValueJoinTest, AttributeProbe) {
  Corpus c;
  auto d1 = c.AddXml("<l><k>7</k></l>", "l");
  auto d2 = c.AddXml("<r><e id=\"7\"/><e id=\"8\"/><e other=\"7\"/></r>", "r");
  ASSERT_TRUE(d1.ok() && d2.ok());
  std::vector<Pre> probe;  // the text node "7"
  for (Pre p = 0; p < c.doc(*d1).NodeCount(); ++p) {
    if (c.doc(*d1).Kind(p) == NodeKind::kText) probe.push_back(p);
  }
  // Unrestricted attribute probe matches both id=7 and other=7.
  JoinPairs all = ValueIndexJoinPairs(
      c.doc(*d1), probe, c.doc(*d2), c.value_index(*d2),
      {NodeKind::kAttr, kInvalidStringId, kInvalidStringId});
  EXPECT_EQ(all.size(), 2u);
  // Restricted to @id.
  JoinPairs ids = ValueIndexJoinPairs(c.doc(*d1), probe, c.doc(*d2),
                                      c.value_index(*d2),
                                      ValueProbeSpec::Attr(c.Find("id")));
  EXPECT_EQ(ids.size(), 1u);
}

TEST(NodeValueTest, KindsAndElements) {
  Corpus c;
  auto d = c.AddXml("<r a=\"5\"><e>txt</e><m><x/>two</m></r>", "d");
  ASSERT_TRUE(d.ok());
  const Document& doc = c.doc(*d);
  const StringPool& pool = doc.pool();
  for (Pre p = 0; p < doc.NodeCount(); ++p) {
    switch (doc.Kind(p)) {
      case NodeKind::kAttr:
        EXPECT_EQ(pool.Get(NodeValue(doc, p)), "5");
        break;
      case NodeKind::kDoc:
        EXPECT_EQ(NodeValue(doc, p), kInvalidStringId);
        break;
      default:
        break;
    }
  }
  // <e> has a single text child.
  StringId e_val = NodeValue(doc, 3);
  EXPECT_EQ(pool.Get(e_val), "txt");
}

TEST(FilterTest, ValueEqualsAndRange) {
  Corpus c;
  auto d = c.AddXml("<r><v>10</v><v>25</v><v>10</v><v>abc</v></r>", "d");
  ASSERT_TRUE(d.ok());
  const Document& doc = c.doc(*d);
  std::vector<Pre> texts;
  for (Pre p = 0; p < doc.NodeCount(); ++p) {
    if (doc.Kind(p) == NodeKind::kText) texts.push_back(p);
  }
  EXPECT_EQ(FilterValueEquals(doc, texts, c.Find("10")).size(), 2u);
  EXPECT_EQ(FilterNumericRange(doc, texts, NumericRange::LessThan(20)).size(),
            2u);
  EXPECT_EQ(
      FilterNumericRange(doc, texts, NumericRange::GreaterThan(9)).size(),
      3u);
  // Non-numeric text never matches a range.
  EXPECT_EQ(
      FilterNumericRange(doc, texts, NumericRange::AtLeast(-1e9)).size(), 3u);
}

// --- result table -------------------------------------------------------------

TEST(ResultTableTest, AppendAndProject) {
  ResultTable t(3);
  t.AppendRow(std::vector<Pre>{1, 2, 3});
  t.AppendRow(std::vector<Pre>{4, 5, 6});
  EXPECT_EQ(t.NumRows(), 2u);
  std::vector<size_t> keep = {2, 0};
  ResultTable p = t.Project(keep);
  EXPECT_EQ(p.NumCols(), 2u);
  EXPECT_EQ(p.Col(0)[1], 6u);
  EXPECT_EQ(p.Col(1)[0], 1u);
}

TEST(ResultTableTest, DistinctRows) {
  ResultTable t(2);
  t.AppendRow(std::vector<Pre>{1, 2});
  t.AppendRow(std::vector<Pre>{1, 2});
  t.AppendRow(std::vector<Pre>{2, 1});
  t.AppendRow(std::vector<Pre>{1, 2});
  ResultTable d = t.DistinctRows();
  EXPECT_EQ(d.NumRows(), 2u);
  EXPECT_EQ(d.Col(0)[0], 1u);  // first-occurrence order preserved
  EXPECT_EQ(d.Col(0)[1], 2u);
}

TEST(ResultTableTest, SortRowsLexicographic) {
  ResultTable t(2);
  t.AppendRow(std::vector<Pre>{2, 1});
  t.AppendRow(std::vector<Pre>{1, 9});
  t.AppendRow(std::vector<Pre>{2, 0});
  std::vector<size_t> keys = {0, 1};
  ResultTable s = t.SortRows(keys);
  EXPECT_EQ(s.Col(0)[0], 1u);
  EXPECT_EQ(s.Col(1)[1], 0u);  // (2,0) before (2,1)
  EXPECT_EQ(s.Col(1)[2], 1u);
}

TEST(ResultTableTest, DistinctColumn) {
  ResultTable t(1);
  t.AppendRow(std::vector<Pre>{5});
  t.AppendRow(std::vector<Pre>{3});
  t.AppendRow(std::vector<Pre>{5});
  auto d = t.DistinctColumn(0);
  EXPECT_EQ(d, (std::vector<Pre>{3, 5}));
}

TEST(ResultTableTest, JoinTablesWithPairs) {
  // outer: rows over col X; inner: rows over cols (Y, Z).
  ResultTable outer = ResultTable::FromColumn({10, 20});
  ResultTable inner(2);
  inner.AppendRow(std::vector<Pre>{7, 100});
  inner.AppendRow(std::vector<Pre>{8, 200});
  inner.AppendRow(std::vector<Pre>{7, 300});
  JoinPairs pairs;
  pairs.left_rows = {0, 1};
  pairs.right_nodes = {7, 8};  // match on inner col 0
  ResultTable out = JoinTablesWithPairs(outer, pairs, inner, 0);
  // Row (10,7,100), (10,7,300), (20,8,200).
  EXPECT_EQ(out.NumRows(), 3u);
  EXPECT_EQ(out.NumCols(), 3u);
  EXPECT_EQ(out.Col(2)[1], 300u);
}

TEST(ResultTableTest, ExtendTableWithPairs) {
  ResultTable outer = ResultTable::FromColumn({10, 20, 30});
  JoinPairs pairs;
  pairs.left_rows = {0, 0, 2};
  pairs.right_nodes = {1, 2, 3};
  ResultTable out = ExtendTableWithPairs(outer, pairs);
  EXPECT_EQ(out.NumRows(), 3u);
  EXPECT_EQ(out.Col(0)[1], 10u);
  EXPECT_EQ(out.Col(1)[2], 3u);
}

// Regression: EmitMatches used a fixed 512-entry stack buffer for the
// ancestor axes and silently dropped ancestors beyond depth 512, even
// though the parser admits documents up to depth 65533. Deep chains
// must spill into the growable overflow and still emit every ancestor
// in document order.
TEST(StructuralJoinTest, AncestorAxisBeyondStackBufferDepth) {
  constexpr int kDepth = 1500;
  std::string xml;
  for (int i = 0; i < kDepth; ++i) xml += "<a>";
  xml += "<leaf/>";
  for (int i = 0; i < kDepth; ++i) xml += "</a>";
  Corpus corpus;
  auto id = corpus.AddXml(xml, "deep.xml");
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  const Document& doc = corpus.doc(*id);

  Pre leaf = kInvalidPre;
  for (Pre p = 0; p < doc.NodeCount(); ++p) {
    if (doc.Kind(p) == NodeKind::kElem && doc.Name(p) == corpus.Find("leaf")) {
      leaf = p;
    }
  }
  ASSERT_NE(leaf, kInvalidPre);

  StepSpec step;
  step.axis = Axis::kAncestor;
  step.kind = KindTest::kElem;
  step.name = corpus.Find("a");
  std::vector<Pre> context = {leaf};
  JoinPairs pairs = StructuralJoinPairs(doc, context, step);
  ASSERT_EQ(pairs.size(), static_cast<uint64_t>(kDepth));
  // Document order: top-most ancestor first, strictly increasing pre.
  for (size_t i = 1; i < pairs.right_nodes.size(); ++i) {
    EXPECT_LT(pairs.right_nodes[i - 1], pairs.right_nodes[i]);
  }

  // ancestor-or-self on the deepest <a> also crosses the buffer size.
  step.axis = Axis::kAncestorOrSelf;
  std::vector<Pre> ctx2 = {doc.Parent(leaf)};
  JoinPairs pairs2 = StructuralJoinPairs(doc, ctx2, step);
  EXPECT_EQ(pairs2.size(), static_cast<uint64_t>(kDepth));

  // The cut-off protocol must keep working across the overflow path.
  JoinPairs limited = StructuralJoinPairs(doc, context, step, 100);
  EXPECT_TRUE(limited.truncated);
  EXPECT_EQ(limited.size(), 100u);
}

}  // namespace
}  // namespace rox
