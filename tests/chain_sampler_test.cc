// Unit tests of the chain-sampling decision rules (Algorithm 2),
// including the paper's own published numbers as test vectors, and
// behavioral tests of ChainSampler on hand-built graphs.

#include <gtest/gtest.h>

#include "rox/chain_sampler.h"
#include "rox/optimizer.h"
#include "workload/xmark.h"

namespace rox {
namespace {

PathSegment Seg(double cost, double sf) {
  PathSegment p;
  p.edges = {0};  // non-empty marker; ids irrelevant for the rules
  p.cost = cost;
  p.sf = sf;
  return p;
}

TEST(StoppingRuleTest, PaperFigure2Round2) {
  // Figure 2.2: Paths = {p1..p4} with
  //   (cost, sf) = (1500,1.5), (2000,1), (1300,0.1), (3200,2).
  // "the stopping condition holds for i = 3 and j = [1, 2, 4]".
  std::vector<PathSegment> paths = {Seg(1500, 1.5), Seg(2000, 1.0),
                                    Seg(1300, 0.1), Seg(3200, 2.0)};
  EXPECT_EQ(ChainSampler::FindStrictWinner(paths), 2);  // p3 (0-based)
}

TEST(StoppingRuleTest, PaperFigure2Round1NoWinner) {
  // Figure 2.1: (1500,1.5), (1000,1), (1200,1.2) — sampling continues,
  // so no strict winner may exist.
  std::vector<PathSegment> paths = {Seg(1500, 1.5), Seg(1000, 1.0),
                                    Seg(1200, 1.2)};
  EXPECT_EQ(ChainSampler::FindStrictWinner(paths), -1);
}

TEST(StoppingRuleTest, PaperTable2FinalDecision) {
  // Table 2(a), round 6: p1 = (154k, 0.5), p2 = (70.2k, 0.94).
  // cost(p1)+sf(p1)*cost(p2) = 189.1k; cost(p2)+sf(p2)*cost(p1) =
  // 214.96k -> "p1 should be executed before p2" via the relaxed rule;
  // the strict rule never fired ("the stopping condition after each
  // iteration is never satisfied").
  std::vector<PathSegment> paths = {Seg(154000, 0.5), Seg(70200, 0.94)};
  EXPECT_EQ(ChainSampler::FindStrictWinner(paths), -1);
  EXPECT_EQ(ChainSampler::FindRelaxedWinner(paths), 0);  // p1
}

TEST(StoppingRuleTest, PaperTable2ModifiedQuery) {
  // Table 2(b), round 6: p1 = (438.2k, 1.6), p2 = (72k, 0.94):
  // "the decision ... is, contrary to Q1, to execute p2 before p1".
  std::vector<PathSegment> paths = {Seg(438200, 1.6), Seg(72000, 0.94)};
  EXPECT_EQ(ChainSampler::FindRelaxedWinner(paths), 1);  // p2
}

TEST(StoppingRuleTest, StrictWinnerGuaranteesSafety) {
  // The motivating example of §3.1: cost(pj)=1000, sf(pi)=0.5 =>
  // executing pj after pi costs 500; pi cheaper than 500 stops.
  std::vector<PathSegment> paths = {Seg(400, 0.5), Seg(1000, 1.0)};
  EXPECT_EQ(ChainSampler::FindStrictWinner(paths), 0);
  // pi costing more than 500 does not satisfy the condition.
  paths[0] = Seg(600, 0.5);
  EXPECT_EQ(ChainSampler::FindStrictWinner(paths), -1);
}

TEST(StoppingRuleTest, ZeroCostPathAlwaysWins) {
  // A sampled-empty path (cost 0, sf 0) is free to execute and kills
  // all other work.
  std::vector<PathSegment> paths = {Seg(5000, 1.2), Seg(0, 0), Seg(900, 1)};
  EXPECT_EQ(ChainSampler::FindStrictWinner(paths), 1);
}

TEST(StoppingRuleTest, RelaxedFallsBackToMinCost) {
  // Cyclic preferences are impossible for the relaxed rule with two
  // paths, but empty-path entries must be skipped and min-cost picked
  // when no non-empty path dominates... construct equal costs:
  std::vector<PathSegment> paths = {Seg(100, 1.0), Seg(100, 1.0)};
  int w = ChainSampler::FindRelaxedWinner(paths);
  EXPECT_TRUE(w == 0 || w == 1);
}

// --- behavioral tests on a real graph ------------------------------------------

class ChainSamplerGraphTest : public ::testing::Test {
 protected:
  void SetUp() override {
    XmarkGenOptions gen;
    gen.items = 200;
    gen.persons = 220;
    gen.open_auctions = 180;
    auto doc = GenerateXmarkDocument(corpus_, gen);
    ASSERT_TRUE(doc.ok());
    doc_ = *doc;
  }
  Corpus corpus_;
  DocId doc_ = 0;
};

TEST_F(ChainSamplerGraphTest, ReturnsConnectedPathFromSource) {
  XmarkQ1Graph q = BuildXmarkQ1Graph(corpus_, doc_, 145.0, true);
  RoxOptions opt;
  opt.tau = 20;
  RoxState state(corpus_, q.graph, opt);
  state.InitializeSamplesAndWeights();
  ChainSampler sampler(state);
  ChainSampleTrace trace;
  std::vector<EdgeId> path = sampler.Run(&trace);
  ASSERT_FALSE(path.empty());
  // The path is a connected chain: each edge shares a vertex with the
  // prefix (starting at the source).
  std::vector<bool> reached(q.graph.VertexCount(), false);
  if (trace.source != kInvalidVertexId) reached[trace.source] = true;
  for (EdgeId e : path) {
    const Edge& edge = q.graph.edge(e);
    bool connects = trace.source == kInvalidVertexId || reached[edge.v1] ||
                    reached[edge.v2];
    EXPECT_TRUE(connects) << "edge " << q.graph.EdgeLabel(e);
    reached[edge.v1] = true;
    reached[edge.v2] = true;
  }
}

TEST_F(ChainSamplerGraphTest, NonBranchingSeedShortCircuits) {
  // A pure chain graph (no branching) must return the single cheapest
  // edge without any exploration rounds.
  JoinGraph g;
  StringId oa = corpus_.Find("open_auction");
  StringId bidder = corpus_.Find("bidder");
  VertexId a = g.AddElement(doc_, oa, "oa");
  VertexId b = g.AddElement(doc_, bidder, "bidder");
  g.AddStep(a, Axis::kDescendant, b);
  RoxOptions opt;
  opt.tau = 10;
  RoxState state(corpus_, g, opt);
  state.InitializeSamplesAndWeights();
  ChainSampler sampler(state);
  ChainSampleTrace trace;
  std::vector<EdgeId> path = sampler.Run(&trace);
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(trace.rounds, 0);
}

TEST_F(ChainSamplerGraphTest, TraceRecordsRounds) {
  XmarkQ1Graph q = BuildXmarkQ1Graph(corpus_, doc_, 145.0, true);
  RoxOptions opt;
  opt.tau = 20;
  RoxState state(corpus_, q.graph, opt);
  state.InitializeSamplesAndWeights();
  ChainSampler sampler(state);
  ChainSampleTrace trace;
  sampler.Run(&trace);
  ASSERT_GT(trace.rounds, 0);
  ASSERT_EQ(trace.round_snapshots.size(), static_cast<size_t>(trace.rounds));
  // Costs must be non-decreasing along each path's growth between
  // rounds (cost accumulates).
  for (const auto& snap : trace.round_snapshots) {
    for (const auto& p : snap.paths) {
      EXPECT_GE(p.cost, 0.0);
      EXPECT_GE(p.sf, 0.0);
    }
  }
}

TEST_F(ChainSamplerGraphTest, MaxRoundsCapRespected) {
  XmarkQ1Graph q = BuildXmarkQ1Graph(corpus_, doc_, 145.0, true);
  RoxOptions opt;
  opt.tau = 20;
  opt.max_chain_rounds = 2;
  RoxState state(corpus_, q.graph, opt);
  state.InitializeSamplesAndWeights();
  ChainSampler sampler(state);
  ChainSampleTrace trace;
  std::vector<EdgeId> path = sampler.Run(&trace);
  EXPECT_LE(trace.rounds, 2);
  EXPECT_FALSE(path.empty());
}

// --- estimation accuracy ---------------------------------------------------------

TEST_F(ChainSamplerGraphTest, WeightsApproximateTrueCardinalities) {
  // Phase-1 weights should land within a reasonable band of the true
  // pair-result cardinalities for step edges with materialized context
  // (sampling error on |S| = tau entries).
  XmarkQ1Graph q = BuildXmarkQ1Graph(corpus_, doc_, 145.0, true);
  RoxOptions opt;
  opt.tau = 60;
  RoxState state(corpus_, q.graph, opt);
  state.InitializeSamplesAndWeights();
  // True cardinality of (person -desc-> province): count provinces.
  StringId province = corpus_.Find("province");
  double truth =
      static_cast<double>(corpus_.element_index(doc_).Count(province));
  // Locate that edge.
  for (EdgeId e = 0; e < q.graph.EdgeCount(); ++e) {
    const Edge& edge = q.graph.edge(e);
    if (edge.type == EdgeType::kStep &&
        (edge.v1 == q.province || edge.v2 == q.province)) {
      double w = state.estate(e).weight;
      ASSERT_GE(w, 0);
      EXPECT_GT(w, truth * 0.4) << "weight far below truth " << truth;
      EXPECT_LT(w, truth * 2.5) << "weight far above truth " << truth;
    }
  }
}

}  // namespace
}  // namespace rox
