// Failpoint harness (DESIGN.md §13): registry semantics (arming,
// skip_hits, max_fires, delay, hit accounting) plus the compiled-in
// sites — CorpusBuilder::AddXml and Engine::Execute. The registry
// tests run in every build; the site tests skip when ROX_FAILPOINTS
// was not compiled in (the macros expand to nothing there).

#include "common/failpoint.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/timer.h"
#include "engine/engine.h"
#include "index/corpus.h"

namespace rox {
namespace {

// Each test arms its own uniquely named points and clears the global
// registry on exit so tests cannot leak armings into each other.
class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { FailpointRegistry::Global().DisableAll(); }
  FailpointRegistry& reg() { return FailpointRegistry::Global(); }
};

TEST_F(FailpointTest, UnarmedSiteIsOk) {
  EXPECT_TRUE(reg().Hit("fp.never_armed").ok());
  EXPECT_EQ(reg().HitCount("fp.never_armed"), 0u);
}

TEST_F(FailpointTest, ArmedSiteReturnsConfiguredError) {
  FailpointSpec spec;
  spec.code = StatusCode::kInternal;
  spec.message = "injected";
  reg().Enable("fp.basic", spec);
  Status s = reg().Hit("fp.basic");
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_EQ(s.message(), "injected");
  EXPECT_EQ(reg().HitCount("fp.basic"), 1u);
  reg().Disable("fp.basic");
  EXPECT_TRUE(reg().Hit("fp.basic").ok());
}

TEST_F(FailpointTest, DefaultMessageNamesTheSite) {
  FailpointSpec spec;
  spec.code = StatusCode::kUnimplemented;
  reg().Enable("fp.named", spec);
  Status s = reg().Hit("fp.named");
  EXPECT_NE(s.message().find("fp.named"), std::string::npos);
}

TEST_F(FailpointTest, SkipHitsPassesEarlyHitsThrough) {
  FailpointSpec spec;
  spec.code = StatusCode::kInternal;
  spec.skip_hits = 2;
  reg().Enable("fp.skip", spec);
  EXPECT_TRUE(reg().Hit("fp.skip").ok());
  EXPECT_TRUE(reg().Hit("fp.skip").ok());
  EXPECT_FALSE(reg().Hit("fp.skip").ok());  // third hit fires
  EXPECT_EQ(reg().HitCount("fp.skip"), 3u);
}

TEST_F(FailpointTest, MaxFiresDisarmsAfterBudget) {
  FailpointSpec spec;
  spec.code = StatusCode::kInternal;
  spec.max_fires = 1;
  reg().Enable("fp.once", spec);
  EXPECT_FALSE(reg().Hit("fp.once").ok());
  EXPECT_TRUE(reg().Hit("fp.once").ok());  // budget spent
  EXPECT_TRUE(reg().Hit("fp.once").ok());
  EXPECT_EQ(reg().HitCount("fp.once"), 3u);  // still counted
}

TEST_F(FailpointTest, DelayOnlySpecSleepsButSucceeds) {
  FailpointSpec spec;
  spec.delay_ms = 30;  // kOk code: delay-only
  reg().Enable("fp.delay", spec);
  StopWatch watch;
  EXPECT_TRUE(reg().Hit("fp.delay").ok());
  EXPECT_GE(watch.ElapsedMillis(), 25.0);
}

TEST_F(FailpointTest, ReArmingReplacesSpecAndResetsAccounting) {
  FailpointSpec one_shot;
  one_shot.code = StatusCode::kInternal;
  one_shot.max_fires = 1;
  reg().Enable("fp.rearm", one_shot);
  EXPECT_FALSE(reg().Hit("fp.rearm").ok());
  EXPECT_TRUE(reg().Hit("fp.rearm").ok());
  reg().Enable("fp.rearm", one_shot);  // fresh fire budget
  EXPECT_FALSE(reg().Hit("fp.rearm").ok());
  EXPECT_EQ(reg().HitCount("fp.rearm"), 1u);  // counting restarted too
}

// --- compiled-in sites -------------------------------------------------------

#ifdef ROX_FAILPOINTS
constexpr bool kSitesCompiledIn = true;
#else
constexpr bool kSitesCompiledIn = false;
#endif

TEST_F(FailpointTest, CorpusIngestSiteInjectsFailure) {
  if (!kSitesCompiledIn) {
    GTEST_SKIP() << "built without ROX_FAILPOINTS";
  }
  FailpointSpec spec;
  spec.code = StatusCode::kInternal;
  spec.message = "injected ingest failure";
  reg().Enable("corpus.add_xml", spec);

  Corpus corpus;
  auto failed = CorpusBuilder(corpus).AddXml("<doc/>", "a.xml");
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kInternal);
  EXPECT_EQ(failed.status().message(), "injected ingest failure");
  EXPECT_GE(reg().HitCount("corpus.add_xml"), 1u);

  // Disarmed, the same ingest succeeds — the failure injected nothing
  // durable into the corpus.
  reg().Disable("corpus.add_xml");
  auto ok = CorpusBuilder(corpus).AddXml("<doc/>", "a.xml");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
}

TEST_F(FailpointTest, EngineExecuteSiteFailsQueryNotEngine) {
  if (!kSitesCompiledIn) {
    GTEST_SKIP() << "built without ROX_FAILPOINTS";
  }
  Corpus corpus;
  ASSERT_TRUE(corpus.AddXml("<a><b/><b/></a>", "d.xml").ok());
  engine::Engine eng(std::move(corpus));
  const std::string query = "for $x in doc(\"d.xml\")//b return $x";

  FailpointSpec spec;
  spec.code = StatusCode::kInternal;
  spec.max_fires = 1;
  reg().Enable("engine.execute", spec);
  engine::QueryResult injected = eng.Run(query);
  ASSERT_FALSE(injected.ok());
  EXPECT_EQ(injected.status.code(), StatusCode::kInternal);

  // The failure was per-query: the next run of the very same query on
  // the same engine succeeds (max_fires budget spent).
  engine::QueryResult clean = eng.Run(query);
  ASSERT_TRUE(clean.ok()) << clean.status.ToString();
  EXPECT_EQ(clean.items->size(), 2u);
}

}  // namespace
}  // namespace rox
