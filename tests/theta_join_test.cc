// Theta-join correctness (DESIGN.md §11).
//
// Two layers of assurance:
//  * brute-force oracles — fixed queries checked against direct tree
//    walks, so the whole stack (parser, compiler, kernels, sampling,
//    assembly, plan tail) cannot agree on a shared wrong answer;
//  * a randomized differential suite — generated range-/inequality-
//    join queries over the XMark + DBLP workloads, byte-compared
//    across {eager, lazy} × {1, 4 shards} and against the classical
//    static-plan executor, which shares the kernels but none of the
//    run-time sampling machinery.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "common/check.h"

#include "classical/static_optimizer.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "index/sharded_corpus.h"
#include "workload/dblp.h"
#include "workload/xmark.h"
#include "xq/compile.h"

namespace rox {
namespace {

constexpr CmpOp kAllOps[] = {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt,
                             CmpOp::kLe, CmpOp::kGt, CmpOp::kGe};

bool CmpNumeric(double a, CmpOp op, double b) {
  switch (op) {
    case CmpOp::kEq:
      return a == b;
    case CmpOp::kNe:
      return a != b;
    case CmpOp::kLt:
      return a < b;
    case CmpOp::kLe:
      return a <= b;
    case CmpOp::kGt:
      return a > b;
    case CmpOp::kGe:
      return a >= b;
  }
  return false;
}

Corpus TestCorpus() {
  Corpus corpus;
  XmarkGenOptions gen;
  gen.items = 50;
  gen.persons = 60;
  gen.open_auctions = 40;
  gen.seed = 0x7e7a;
  ROX_CHECK_OK(GenerateXmarkDocument(corpus, gen, "xmark.xml").status());
  DblpGenOptions dblp;
  dblp.tag_scale = 0.08;
  ROX_CHECK_OK(AddDblpDocuments(corpus, dblp, {7, 8}).status());  // MLDM, ICDM
  return corpus;
}

std::vector<Pre> RunMode(const Corpus& corpus,
                         const xq::CompiledQuery& compiled, bool lazy,
                         const ShardedExec* ex, uint64_t tau = 20) {
  RoxOptions rox;
  rox.seed = 77;
  rox.tau = tau;
  rox.lazy_materialization = lazy;
  rox.sharded = ex;
  auto items = xq::RunXQuery(corpus, compiled, rox);
  EXPECT_TRUE(items.ok()) << items.status().ToString();
  return items.ok() ? *items : std::vector<Pre>{};
}

// RunXQuery's component split + plan tail, but with every component
// executed by the classical static-plan executor (no run-time
// sampling). Join orders differ from ROX's; results must not.
Result<std::vector<Pre>> RunStaticXQuery(const Corpus& corpus,
                                         const xq::CompiledQuery& compiled) {
  std::vector<GraphComponent> comps =
      SplitConnectedComponents(compiled.graph);
  ResultTable combined;
  std::vector<VertexId> combined_cols;
  bool first = true;
  for (const GraphComponent& comp : comps) {
    bool needed = false;
    for (VertexId orig : comp.orig_vertex) {
      for (VertexId fv : compiled.for_vertices) needed |= fv == orig;
    }
    if (!needed) continue;
    StaticPlan plan = PlanStatically(corpus, comp.graph);
    ROX_ASSIGN_OR_RETURN(RoxResult result,
                         ExecuteStaticPlan(corpus, comp.graph, plan));
    std::vector<VertexId> cols;
    for (VertexId v : result.columns) cols.push_back(comp.orig_vertex[v]);
    if (first) {
      combined = std::move(result.table);
      combined_cols = std::move(cols);
      first = false;
    } else {
      combined = CartesianProduct(combined, result.table);
      combined_cols.insert(combined_cols.end(), cols.begin(), cols.end());
    }
  }
  if (first) return Status::FailedPrecondition("no joined component");
  auto column_of = [&](VertexId v) -> size_t {
    for (size_t i = 0; i < combined_cols.size(); ++i) {
      if (combined_cols[i] == v) return i;
    }
    return static_cast<size_t>(-1);
  };
  std::vector<size_t> for_cols;
  size_t return_col = 0;
  for (size_t i = 0; i < compiled.for_vertices.size(); ++i) {
    VertexId v = compiled.for_vertices[i];
    size_t col = column_of(v);
    if (col == static_cast<size_t>(-1)) {
      return Status::Internal("for-variable vertex missing from result");
    }
    if (v == compiled.return_vertex) return_col = i;
    for_cols.push_back(col);
  }
  ResultTable tail = combined.Project(for_cols).DistinctRows();
  std::vector<size_t> sort_keys(for_cols.size());
  for (size_t i = 0; i < sort_keys.size(); ++i) sort_keys[i] = i;
  tail = tail.SortRows(sort_keys);
  return tail.Col(return_col);
}

// --- brute-force oracles -----------------------------------------------------

class ThetaJoinOracleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    corpus_ = TestCorpus();
    doc_id_ = *corpus_.Resolve("xmark.xml");
  }
  Corpus corpus_;
  DocId doc_id_ = 0;
};

TEST_F(ThetaJoinOracleTest, QuantityIncreaseMatchesBruteForce) {
  const Document& doc = corpus_.doc(doc_id_);
  StringId s_quantity = corpus_.Find("quantity");
  StringId s_increase = corpus_.Find("increase");
  // (item, quantity text value) in document order; items have exactly
  // one quantity child.
  std::vector<std::pair<Pre, StringId>> items;
  for (Pre q : corpus_.element_index(doc_id_).Lookup(s_quantity)) {
    items.emplace_back(doc.Parent(q), doc.SingleTextChildValue(q));
  }
  std::vector<std::pair<Pre, StringId>> bidders;
  for (Pre inc : corpus_.element_index(doc_id_).Lookup(s_increase)) {
    bidders.emplace_back(doc.Parent(inc), doc.SingleTextChildValue(inc));
  }
  const StringPool& pool = corpus_.string_pool();
  for (CmpOp op : kAllOps) {
    std::vector<Pre> expected;
    for (const auto& [item, qv] : items) {
      for (const auto& [bidder, iv] : bidders) {
        bool match;
        if (op == CmpOp::kEq || op == CmpOp::kNe) {
          match = (qv == iv) == (op == CmpOp::kEq);
        } else {
          auto a = pool.NumericValue(qv);
          auto b = pool.NumericValue(iv);
          match = a.has_value() && b.has_value() && CmpNumeric(*a, op, *b);
        }
        if (match) expected.push_back(item);
      }
    }
    auto compiled =
        xq::CompileXQuery(corpus_, XmarkQuantityIncreaseQuery(op));
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
    std::vector<Pre> got = RunMode(corpus_, *compiled, true, nullptr);
    EXPECT_EQ(got, expected) << "op " << CmpOpName(op);
    EXPECT_FALSE(got.empty()) << "op " << CmpOpName(op);
  }
}

TEST_F(ThetaJoinOracleTest, DisjunctiveQuantityMatchesBruteForce) {
  const Document& doc = corpus_.doc(doc_id_);
  StringId s_quantity = corpus_.Find("quantity");
  StringId s_itemref = corpus_.Find("itemref");
  StringId s_item_attr = corpus_.Find("item");
  StringId s_id = corpus_.Find("id");
  StringId s_open_auction = corpus_.Find("open_auction");
  StringId q1 = corpus_.Find("1"), q4 = corpus_.Find("4");
  // @id value -> item pre, restricted to quantity in {1, 4}.
  std::map<StringId, Pre> items_by_id;
  for (Pre q : corpus_.element_index(doc_id_).Lookup(s_quantity)) {
    StringId qv = doc.SingleTextChildValue(q);
    if (qv != q1 && qv != q4) continue;
    Pre item = doc.Parent(q);
    items_by_id[doc.AttributeValue(item, s_id)] = item;
  }
  // (item, auction) pairs via itemref/@item.
  std::vector<std::pair<Pre, Pre>> pairs;
  for (Pre ref : corpus_.element_index(doc_id_).Lookup(s_itemref)) {
    auto it = items_by_id.find(doc.AttributeValue(ref, s_item_attr));
    if (it == items_by_id.end()) continue;
    // Enclosing open_auction.
    Pre oa = doc.Parent(ref);
    while (oa != kInvalidPre && doc.Name(oa) != s_open_auction) {
      oa = doc.Parent(oa);
    }
    ASSERT_NE(oa, kInvalidPre);
    pairs.emplace_back(it->second, oa);
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  std::vector<Pre> expected;
  for (const auto& [item, oa] : pairs) expected.push_back(item);

  auto compiled =
      xq::CompileXQuery(corpus_, XmarkDisjunctiveQuantityQuery(1, 4));
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  std::vector<Pre> got = RunMode(corpus_, *compiled, true, nullptr);
  EXPECT_EQ(got, expected);
  EXPECT_FALSE(got.empty());

  // The disjunction is exactly the union of the two single-value
  // guards (their item sets are disjoint, so pair counts add up).
  auto single = [&](int q) {
    auto c = xq::CompileXQuery(corpus_, XmarkDisjunctiveQuantityQuery(q, q));
    ROX_CHECK_OK(c.status());
    return RunMode(corpus_, *c, true, nullptr);
  };
  EXPECT_EQ(single(1).size() + single(4).size(), got.size());
}

// --- randomized differential suite ------------------------------------------

std::vector<std::string> GeneratedThetaQueries(Rng& rng, int count) {
  std::vector<std::string> out;
  for (int i = 0; i < count; ++i) {
    CmpOp op = kAllOps[rng.Below(6)];
    switch (rng.Below(4)) {
      case 0:
        out.push_back(XmarkQuantityIncreaseQuery(
            op, /*quantity_guard=*/static_cast<int>(rng.Below(3))));
        break;
      case 1: {
        int lo = 40 + static_cast<int>(rng.Below(60));
        int hi = 150 + static_cast<int>(rng.Below(80));
        out.push_back(XmarkPriceThetaQuery(op, lo, hi));
        break;
      }
      case 2:
        out.push_back(XmarkDisjunctiveQuantityQuery(
            1 + static_cast<int>(rng.Below(3)),
            2 + static_cast<int>(rng.Below(4))));
        break;
      default:
        out.push_back(DblpAuthorYearQuery("MLDM", "ICDM", op));
        break;
    }
  }
  return out;
}

TEST(ThetaJoinDifferentialTest, ModesAndShardsAndStaticPlansAgree) {
  Corpus corpus = TestCorpus();
  Rng rng(0x7be7a);
  std::vector<std::string> queries = GeneratedThetaQueries(rng, 24);

  ThreadPool pool(4);
  ShardedCorpus sc(corpus, 4, &pool);
  ShardedExec ex;
  ex.shards = &sc;
  ex.pool = &pool;

  size_t nonempty = 0;
  for (const std::string& q : queries) {
    auto compiled = xq::CompileXQuery(corpus, q);
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString() << "\n" << q;
    std::vector<Pre> baseline = RunMode(corpus, *compiled, false, nullptr);
    nonempty += !baseline.empty();
    EXPECT_EQ(baseline, RunMode(corpus, *compiled, true, nullptr)) << q;
    EXPECT_EQ(baseline, RunMode(corpus, *compiled, false, &ex)) << q;
    EXPECT_EQ(baseline, RunMode(corpus, *compiled, true, &ex)) << q;
    auto statically = RunStaticXQuery(corpus, *compiled);
    ASSERT_TRUE(statically.ok()) << statically.status().ToString() << "\n"
                                 << q;
    EXPECT_EQ(baseline, *statically) << q;
  }
  // The suite must not silently degenerate to all-empty results.
  EXPECT_GT(nonempty, queries.size() / 2);
}

TEST(ThetaJoinDifferentialTest, CutOffSamplingKeepsModesIdentical) {
  // A tiny tau forces truncated theta samples everywhere; results must
  // not depend on it.
  Corpus corpus = TestCorpus();
  Rng rng(0xface);
  for (const std::string& q : GeneratedThetaQueries(rng, 8)) {
    auto compiled = xq::CompileXQuery(corpus, q);
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
    EXPECT_EQ(RunMode(corpus, *compiled, false, nullptr, /*tau=*/5),
              RunMode(corpus, *compiled, true, nullptr, /*tau=*/5))
        << q;
    EXPECT_EQ(RunMode(corpus, *compiled, false, nullptr, /*tau=*/5),
              RunMode(corpus, *compiled, true, nullptr, /*tau=*/100))
        << q;
  }
}

}  // namespace
}  // namespace rox
