// Integration tests for the roxd network front end (DESIGN.md §15):
// real sockets against a live HttpServer on an ephemeral port —
// request/response roundtrips, header-driven governance, protocol
// edge cases, mid-query disconnects mapping onto Engine::Kill, and
// concurrent client sessions against live corpus publishes.

#include "server/server.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "index/corpus.h"
#include "server/client.h"
#include "workload/xmark.h"

namespace rox {
namespace {

// Polls `cond` until true or ~5 s (sanitizer builds run slow; the
// bound exists only to fail the test instead of hanging it).
template <typename F>
bool WaitFor(F cond) {
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return cond();
}

// Pulls `"key": <uint>` out of a response body; -1 when absent.
int64_t JsonUint(const std::string& body, const std::string& key) {
  std::string needle = "\"" + key + "\": ";
  size_t pos = body.find(needle);
  if (pos == std::string::npos) return -1;
  return std::strtoll(body.c_str() + pos + needle.size(), nullptr, 10);
}

class ServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto corpus = std::make_unique<Corpus>();
    XmarkGenOptions gen;
    gen.items = static_cast<uint32_t>(4350 * 0.15);
    gen.persons = static_cast<uint32_t>(5100 * 0.15);
    gen.open_auctions = static_cast<uint32_t>(2400 * 0.15);
    ASSERT_TRUE(GenerateXmarkDocument(*corpus, gen).ok());
    shared_corpus_ = new std::shared_ptr<const Corpus>(std::move(corpus));
  }
  static void TearDownTestSuite() {
    delete shared_corpus_;
    shared_corpus_ = nullptr;
  }
  static std::shared_ptr<const Corpus> corpus() { return *shared_corpus_; }

  // The ~hundreds-of-ms theta-join workload — long enough that a
  // disconnect lands mid-execution.
  static std::string SlowQuery() {
    return XmarkQuantityIncreaseQuery(CmpOp::kLt, 1);
  }
  static std::string FastQuery() {
    return R"(for $p in doc("xmark.xml")//person return $p)";
  }

  // Starts a server on an ephemeral port over a fresh engine.
  struct Stack {
    engine::Engine engine;
    server::HttpServer server;
    Stack(std::shared_ptr<const Corpus> c, engine::EngineOptions eopts,
          server::ServerOptions sopts)
        : engine(std::move(c), eopts), server(&engine, sopts) {}
  };
  static std::unique_ptr<Stack> StartStack(
      engine::EngineOptions eopts = {},
      server::ServerOptions sopts = {}) {
    sopts.port = 0;
    auto stack = std::make_unique<Stack>(corpus(), eopts, sopts);
    Status s = stack->server.Start();
    EXPECT_TRUE(s.ok()) << s.ToString();
    return stack;
  }

  static server::HttpClient Connect(const Stack& stack) {
    server::HttpClient client;
    Status s = client.Connect("127.0.0.1", stack.server.port());
    EXPECT_TRUE(s.ok()) << s.ToString();
    return client;
  }

 private:
  static std::shared_ptr<const Corpus>* shared_corpus_;
};

std::shared_ptr<const Corpus>* ServerTest::shared_corpus_ = nullptr;

TEST_F(ServerTest, QueryRoundtripOverOneKeepAliveConnection) {
  auto stack = StartStack();
  server::HttpClient client = Connect(*stack);

  auto health = client.Request("GET", "/healthz", {}, "");
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health->status, 200);
  EXPECT_EQ(health->body, "ok\n");

  auto resp = client.Request("POST", "/query", {}, FastQuery());
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->status, 200);
  EXPECT_NE(resp->body.find("\"code\": \"OK\""), std::string::npos);
  EXPECT_GT(JsonUint(resp->body, "row_count"), 0);

  // Same connection, next request (keep-alive): a replay hit.
  auto again = client.Request("POST", "/query", {}, FastQuery());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->status, 200);
  EXPECT_NE(again->body.find("\"result_cache_hit\": true"),
            std::string::npos);

  auto stats = client.Request("GET", "/stats", {}, "");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->status, 200);
  EXPECT_EQ(JsonUint(stats->body, "completed"), 2);

  auto metrics = client.Request("GET", "/metrics", {}, "");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->status, 200);
  EXPECT_NE(metrics->body.find("rox_server_query_ms"), std::string::npos);

  client.Close();
  EXPECT_TRUE(WaitFor([&] {
    return stack->server.Snapshot().open_connections == 0;
  }));
  server::ServerStats s = stack->server.Snapshot();
  EXPECT_EQ(s.requests_total, 5u);
  EXPECT_EQ(s.responses_2xx, 5u);
}

TEST_F(ServerTest, HeadersMapOntoQueryLimitsAndModes) {
  auto stack = StartStack();
  server::HttpClient client = Connect(*stack);

  // Explain mode: no execution, an "explain" field in the JSON.
  auto explain = client.Request("POST", "/query",
                                {{"X-Query-Mode", "explain"}}, FastQuery());
  ASSERT_TRUE(explain.ok());
  EXPECT_EQ(explain->status, 200);
  EXPECT_NE(explain->body.find("\"explain\""), std::string::npos);
  EXPECT_NE(explain->body.find("\"mode\": \"explain\""), std::string::npos);

  // A 1-row cap trips kResourceExhausted → 429.
  auto capped = client.Request("POST", "/query", {{"X-Max-Rows", "1"}},
                               FastQuery());
  ASSERT_TRUE(capped.ok());
  EXPECT_EQ(capped->status, 429);
  EXPECT_NE(capped->body.find("ResourceExhausted"), std::string::npos);

  // An absurdly small deadline trips kDeadlineExceeded → 504.
  auto late = client.Request("POST", "/query",
                             {{"X-Deadline-Ms", "1"}}, SlowQuery());
  ASSERT_TRUE(late.ok());
  EXPECT_EQ(late->status, 504);

  // A client tag echoes back.
  auto tagged = client.Request("POST", "/query",
                               {{"X-Client-Tag", "test-42"}}, FastQuery());
  ASSERT_TRUE(tagged.ok());
  EXPECT_NE(tagged->body.find("\"client_tag\": \"test-42\""),
            std::string::npos);

  // Junk header values are rejected before anything executes.
  for (const char* name :
       {"X-Deadline-Ms", "X-Memory-Budget-Mb", "X-Max-Rows",
        "X-Query-Mode", "X-Trace-Level"}) {
    auto bad = client.Request("POST", "/query", {{name, "banana"}},
                              FastQuery());
    ASSERT_TRUE(bad.ok()) << name;
    EXPECT_EQ(bad->status, 400) << name;
  }

  // A query-text parse error maps to 400 with the stable JSON shape.
  auto parse_err = client.Request("POST", "/query", {}, "for broken (");
  ASSERT_TRUE(parse_err.ok());
  EXPECT_EQ(parse_err->status, 400);
  EXPECT_NE(parse_err->body.find("\"status\""), std::string::npos);
}

TEST_F(ServerTest, ProtocolEdgeCases) {
  auto stack = StartStack();

  {  // Unknown endpoint and wrong methods.
    server::HttpClient client = Connect(*stack);
    auto missing = client.Request("GET", "/nope", {}, "");
    ASSERT_TRUE(missing.ok());
    EXPECT_EQ(missing->status, 404);
    auto wrong = client.Request("GET", "/query", {}, "");
    ASSERT_TRUE(wrong.ok());
    EXPECT_EQ(wrong->status, 405);
    auto wrong2 = client.Request("POST", "/metrics", {}, "x");
    ASSERT_TRUE(wrong2.ok());
    EXPECT_EQ(wrong2->status, 405);
    auto empty = client.Request("POST", "/query", {}, "");
    ASSERT_TRUE(empty.ok());
    EXPECT_EQ(empty->status, 400);
  }

  {  // The render cap truncates rows explicitly, never silently: the
     // full row_count survives and "rows_truncated" is flagged, so a
     // giant result cannot buffer an unbounded body on the event loop.
    server::ServerOptions sopts;
    sopts.max_response_rows = 1;
    auto capped = StartStack({}, sopts);
    server::HttpClient client = Connect(*capped);
    auto resp = client.Request("POST", "/query", {}, FastQuery());
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->status, 200);
    EXPECT_NE(resp->body.find("\"rows_truncated\": true"),
              std::string::npos);
    EXPECT_GT(JsonUint(resp->body, "row_count"), 1);
  }

  {  // An oversized body earns 413 and a close.
    server::ServerOptions sopts;
    sopts.parser_limits.max_body_bytes = 64;
    auto small = StartStack({}, sopts);
    server::HttpClient client = Connect(*small);
    auto big = client.Request("POST", "/query", {},
                              std::string(1000, 'q'));
    ASSERT_TRUE(big.ok());
    EXPECT_EQ(big->status, 413);
    EXPECT_FALSE(client.connected());  // server said Connection: close
  }

  // Every connection is gone once clients are.
  EXPECT_TRUE(WaitFor([&] {
    return stack->server.Snapshot().open_connections == 0;
  }));
}

TEST_F(ServerTest, MidQueryDisconnectKillsAndFreesAdmissionSlot) {
  engine::EngineOptions eopts;
  eopts.max_concurrent_queries = 1;
  eopts.max_queued_queries = 0;
  auto stack = StartStack(eopts);

  // Client A posts the slow query on a raw socket (never reading the
  // response), then vanishes mid-execution.
  {
    int fd = socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(stack->server.port());
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)),
              0);
    std::string q = SlowQuery();
    char head[128];
    int n = std::snprintf(head, sizeof(head),
                          "POST /query HTTP/1.1\r\nContent-Length: "
                          "%zu\r\n\r\n",
                          q.size());
    std::string req(head, static_cast<size_t>(n));
    req += q;
    ASSERT_EQ(send(fd, req.data(), req.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(req.size()));
    // Wait until the query occupies the engine's only admission slot.
    ASSERT_TRUE(WaitFor([&] {
      return stack->engine.Stats().admission_running >= 1;
    }));
    close(fd);  // the peer disappears mid-query
  }

  // The server notices the disconnect and kills the query: the kill
  // is counted, the query unwinds as cancelled, and the admission
  // slot frees up.
  ASSERT_TRUE(WaitFor([&] {
    return stack->server.Snapshot().disconnect_kills >= 1;
  }));
  ASSERT_TRUE(WaitFor([&] {
    return stack->engine.Stats().queries_cancelled >= 1;
  }));
  ASSERT_TRUE(WaitFor([&] {
    return stack->engine.Stats().admission_running == 0;
  }));

  // A connected client gets the freed slot (would be 429 otherwise).
  server::HttpClient b = Connect(*stack);
  auto resp = b.Request("POST", "/query", {}, FastQuery());
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->status, 200);

  // No leaked connections or in-flight work.
  b.Close();
  EXPECT_TRUE(WaitFor([&] {
    server::ServerStats s = stack->server.Snapshot();
    return s.open_connections == 0 && s.queries_inflight == 0;
  }));
}

TEST_F(ServerTest, AdmissionShedMapsTo429) {
  engine::EngineOptions eopts;
  eopts.max_concurrent_queries = 1;
  eopts.max_queued_queries = 0;
  auto stack = StartStack(eopts);

  server::HttpClient a = Connect(*stack);
  std::thread slow([&] {
    auto r = a.Request("POST", "/query", {}, SlowQuery());
    ASSERT_TRUE(r.ok());
  });
  ASSERT_TRUE(WaitFor([&] {
    return stack->engine.Stats().admission_running >= 1;
  }));

  server::HttpClient b = Connect(*stack);
  auto shed = b.Request("POST", "/query", {}, FastQuery());
  ASSERT_TRUE(shed.ok());
  EXPECT_EQ(shed->status, 429);
  slow.join();
  EXPECT_GE(stack->engine.Stats().queries_shed, 1u);
}

TEST_F(ServerTest, ConcurrentSessionsAgainstLivePublishes) {
  engine::EngineOptions eopts;
  eopts.num_threads = 4;
  auto stack = StartStack(eopts);

  // The workload queries doc("xmark.xml") while publishes add
  // *other* documents: every response must see the same row count
  // regardless of which epoch its snapshot pinned — the oracle the
  // snapshot-fuzz harness uses, reduced to its invariant.
  constexpr int kClients = 4;
  constexpr int kQueriesPerClient = 8;
  std::atomic<int64_t> expected_rows{-1};
  std::atomic<int> failures{0};

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      server::HttpClient client;
      if (!client.Connect("127.0.0.1", stack->server.port()).ok()) {
        failures.fetch_add(1);
        return;
      }
      char tag[32];
      std::snprintf(tag, sizeof(tag), "client-%d", c);
      for (int q = 0; q < kQueriesPerClient; ++q) {
        auto resp = client.Request("POST", "/query",
                                   {{"X-Client-Tag", tag}}, FastQuery());
        if (!resp.ok() || resp->status != 200) {
          failures.fetch_add(1);
          continue;
        }
        int64_t rows = JsonUint(resp->body, "row_count");
        int64_t want = -1;
        if (!expected_rows.compare_exchange_strong(want, rows) &&
            want != rows) {
          failures.fetch_add(1);
        }
      }
    });
  }

  // Publish new epochs while the clients hammer the server.
  for (int i = 0; i < 6; ++i) {
    char name[32];
    std::snprintf(name, sizeof(name), "live-%d.xml", i);
    auto ids = stack->engine.AddDocuments(
        {{name, "<doc><v>" + std::to_string(i) + "</v></doc>"}});
    ASSERT_TRUE(ids.ok()) << ids.status().ToString();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(stack->engine.CurrentEpoch(), 0u);

  server::ServerStats s = stack->server.Snapshot();
  EXPECT_EQ(s.responses_5xx, 0u);
  EXPECT_EQ(s.requests_total,
            static_cast<uint64_t>(kClients * kQueriesPerClient));
  EXPECT_TRUE(WaitFor([&] {
    return stack->server.Snapshot().open_connections == 0;
  }));
}

TEST_F(ServerTest, StopWhileQueryInFlightDrainsCleanly) {
  auto stack = StartStack();
  server::HttpClient a = Connect(*stack);
  std::thread poster([&] {
    // The response may be the cancelled answer or a torn connection —
    // either is acceptable; what matters is that Stop returns and
    // nothing leaks (ASan/TSan watch this test closely).
    (void)a.Request("POST", "/query", {}, SlowQuery());
  });
  ASSERT_TRUE(WaitFor([&] {
    return stack->server.Snapshot().queries_inflight >= 1;
  }));
  stack->server.Stop();
  poster.join();
  EXPECT_EQ(stack->server.Snapshot().queries_inflight, 0u);
  EXPECT_EQ(stack->server.Snapshot().open_connections, 0u);
}

}  // namespace
}  // namespace rox
