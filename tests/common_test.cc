#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "common/status.h"
#include "common/str_util.h"

namespace rox {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad thing");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> Halve(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  ROX_ASSIGN_OR_RETURN(int h, Halve(x));
  ROX_ASSIGN_OR_RETURN(int q, Halve(h));
  return q;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_FALSE(Quarter(6).ok());
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 3);
}

TEST(RngTest, BelowIsInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Below(17), 17u);
}

TEST(RngTest, BetweenIsInclusive) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.Between(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values hit
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(15);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, SampleWithoutReplacementBasics) {
  Rng rng(17);
  auto s = rng.SampleWithoutReplacement(100, 10);
  ASSERT_EQ(s.size(), 10u);
  for (size_t i = 1; i < s.size(); ++i) EXPECT_LT(s[i - 1], s[i]);
  for (uint64_t v : s) EXPECT_LT(v, 100u);
}

TEST(RngTest, SampleWithoutReplacementWholePopulation) {
  Rng rng(19);
  auto s = rng.SampleWithoutReplacement(5, 10);
  ASSERT_EQ(s.size(), 5u);
  for (uint64_t i = 0; i < 5; ++i) EXPECT_EQ(s[i], i);
}

TEST(RngTest, SampleWithoutReplacementUniform) {
  Rng rng(21);
  std::vector<int> hits(10, 0);
  for (int trial = 0; trial < 5000; ++trial) {
    for (uint64_t v : rng.SampleWithoutReplacement(10, 3)) ++hits[v];
  }
  for (int h : hits) EXPECT_NEAR(h / 5000.0, 0.3, 0.05);
}

TEST(RngTest, ZipfInRangeAndSkewed) {
  Rng rng(23);
  std::vector<int> hits(50, 0);
  for (int i = 0; i < 20000; ++i) {
    uint64_t v = rng.Zipf(50, 1.0);
    ASSERT_LT(v, 50u);
    ++hits[v];
  }
  // Rank 0 must dominate rank 25 decisively under s=1.
  EXPECT_GT(hits[0], hits[25] * 5);
}

TEST(RngTest, ZipfZeroExponentIsUniform) {
  Rng rng(25);
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 20000; ++i) ++hits[rng.Zipf(10, 0.0)];
  for (int h : hits) EXPECT_NEAR(h / 20000.0, 0.1, 0.02);
}

TEST(RngTest, ForkIsIndependent) {
  Rng a(31);
  Rng b = a.Fork();
  // Forked stream should not track the parent.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 3);
}

TEST(StrUtilTest, StrCat) {
  EXPECT_EQ(StrCat("a", 1, "b", 2.5), "a1b2.5");
}

TEST(StrUtilTest, StrJoinAndSplit) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ","), "");
  auto parts = StrSplit("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
}

TEST(StrUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("ar", "bar"));
}

TEST(StrUtilTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(12 * 1024), "12.0 KB");
  EXPECT_EQ(HumanBytes(1100 * 1024), "1.1 MB");
}

TEST(StrUtilTest, HumanCount) {
  EXPECT_EQ(HumanCount(950), "950");
  EXPECT_EQ(HumanCount(43500), "43.5K");
  EXPECT_EQ(HumanCount(1200000), "1.2M");
}

}  // namespace
}  // namespace rox
