#include <gtest/gtest.h>

#include <map>

#include "workload/xmark.h"
#include "xq/compile.h"
#include "xq/parser.h"

namespace rox::xq {
namespace {

// --- parser -------------------------------------------------------------------

TEST(XqParserTest, PaperQueryQ) {
  // The example query Q of §2.1 (Figure 1).
  auto q = ParseXQuery(R"(
    let $r := doc("auction.xml")
    for $a in $r//open_auction[./reserve]/bidder//personref,
        $b in $r//person[.//education]
    where $a/@person = $b/@id
    return $a
  )");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->lets.size(), 1u);
  EXPECT_EQ(q->lets[0].variable, "r");
  EXPECT_EQ(q->lets[0].value.doc_url, "auction.xml");
  ASSERT_EQ(q->fors.size(), 2u);
  EXPECT_EQ(q->fors[0].variable, "a");
  ASSERT_EQ(q->fors[0].domain.steps.size(), 3u);
  EXPECT_EQ(q->fors[0].domain.steps[0].step.axis, Axis::kDescendant);
  EXPECT_EQ(q->fors[0].domain.steps[0].step.name, "open_auction");
  ASSERT_EQ(q->fors[0].domain.steps[0].predicates.size(), 1u);
  EXPECT_FALSE(q->fors[0].domain.steps[0].predicates[0].op.has_value());
  EXPECT_EQ(q->fors[0].domain.steps[1].step.axis, Axis::kChild);
  ASSERT_EQ(q->where.size(), 1u);
  EXPECT_EQ(q->where[0].lhs.variable, "a");
  ASSERT_EQ(q->where[0].lhs.steps.size(), 1u);
  EXPECT_EQ(q->where[0].lhs.steps[0].step.test, AstStep::Test::kAttribute);
  EXPECT_EQ(q->return_variable, "a");
}

TEST(XqParserTest, ValuePredicates) {
  auto q = ParseXQuery(R"(
    for $o in doc("x.xml")//open_auction[.//current/text() < 145],
        $i in doc("x.xml")//item[./quantity = 1]
    where $o/@x = $i/@y
    return $o
  )");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const AstPredicate& p0 = q->fors[0].domain.steps[0].predicates[0];
  ASSERT_TRUE(p0.op.has_value());
  EXPECT_EQ(*p0.op, CmpOp::kLt);
  EXPECT_EQ(p0.literal, "145");
  EXPECT_TRUE(p0.literal_is_number);
  ASSERT_EQ(p0.path.size(), 2u);
  EXPECT_EQ(p0.path[1].test, AstStep::Test::kText);
  const AstPredicate& p1 = q->fors[1].domain.steps[0].predicates[0];
  EXPECT_EQ(*p1.op, CmpOp::kEq);
}

TEST(XqParserTest, CommentsAndStrings) {
  auto q = ParseXQuery(R"(
    (: find things :)
    for $a in doc("d.xml")//thing[./name = "blue"]
    return $a
  )");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->fors[0].domain.steps[0].predicates[0].literal, "blue");
  EXPECT_FALSE(q->fors[0].domain.steps[0].predicates[0].literal_is_number);
}

TEST(XqParserTest, Errors) {
  EXPECT_FALSE(ParseXQuery("return $a").ok());           // no for
  EXPECT_FALSE(ParseXQuery("for $a in //x return $a").ok());  // no source
  EXPECT_FALSE(ParseXQuery("for $a in doc('d')//x").ok());    // no return
  EXPECT_FALSE(ParseXQuery(
                   "for $a in doc('d')//x where $a < $a return $a")
                   .ok());  // non-equality where
  EXPECT_FALSE(
      ParseXQuery("for $a in doc('d')//x return $a extra").ok());
  EXPECT_FALSE(ParseXQuery("for $a in doc('d')//x[./y !] return $a").ok());
}


TEST(XqParserTest, ExplicitAxes) {
  auto q = ParseXQuery(R"(
    for $a in doc("d.xml")//x/parent::venue/ancestor-or-self::site,
        $b in doc("d.xml")//y/following-sibling::z
    where $a/@k = $b/@k
    return $a
  )");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const auto& steps = q->fors[0].domain.steps;
  ASSERT_EQ(steps.size(), 3u);
  EXPECT_EQ(steps[1].step.axis, Axis::kParent);
  EXPECT_EQ(steps[1].step.name, "venue");
  EXPECT_EQ(steps[2].step.axis, Axis::kAncestorOrSelf);
  EXPECT_EQ(q->fors[1].domain.steps[1].step.axis, Axis::kFollowingSibling);
}

TEST(XqParserTest, ExplicitAxisErrors) {
  EXPECT_FALSE(ParseXQuery(
      "for $a in doc(\"d\")//sideways::x return $a").ok());
  EXPECT_FALSE(ParseXQuery(
      "for $a in doc(\"d\")//x//parent::y return $a").ok());  // '//'+axis
}

TEST(XqParserTest, AxisWildcardAndText) {
  auto q = ParseXQuery(R"(
    for $a in doc("d.xml")//x/ancestor::*/self::y/child::text()
    return $a
  )");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const auto& steps = q->fors[0].domain.steps;
  ASSERT_EQ(steps.size(), 4u);
  EXPECT_EQ(steps[1].step.axis, Axis::kAncestor);
  EXPECT_EQ(steps[1].step.test, AstStep::Test::kAnyElement);
  EXPECT_EQ(steps[2].step.axis, Axis::kSelf);
  EXPECT_EQ(steps[3].step.axis, Axis::kChild);
  EXPECT_EQ(steps[3].step.test, AstStep::Test::kText);
}

// --- compiler -----------------------------------------------------------------

class XqCompileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    XmarkGenOptions gen;
    gen.items = 60;
    gen.persons = 80;
    gen.open_auctions = 70;
    auto doc = GenerateXmarkDocument(corpus_, gen, "xmark.xml");
    ASSERT_TRUE(doc.ok());
    doc_ = *doc;
  }
  Corpus corpus_;
  DocId doc_ = 0;
};

TEST_F(XqCompileTest, CompilesQ1ToExpectedShape) {
  auto compiled = CompileXQuery(corpus_, R"(
    let $d := doc("xmark.xml")
    for $o in $d//open_auction[.//current/text() < 145],
        $p in $d//person[.//province],
        $i in $d//item[./quantity = 1]
    where $o//bidder//personref/@person = $p/@id and
          $o//itemref/@item = $i/@id
    return $o
  )");
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  // Same shape as the hand-built Figure 3.1 graph: 16 vertices, 14
  // edges after pruning the 3 root descendant steps (BuildXmarkQ1Graph
  // in workload/ builds the identical graph).
  EXPECT_EQ(compiled->graph.VertexCount(), 16u);
  EXPECT_EQ(compiled->graph.EdgeCount(), 14u);
  EXPECT_TRUE(compiled->graph.IsConnected());
  EXPECT_EQ(compiled->for_vertices.size(), 3u);
  EXPECT_EQ(compiled->return_vertex, compiled->variables.at("o"));
}

TEST_F(XqCompileTest, CompiledQ1MatchesHandBuiltGraphResults) {
  auto compiled = CompileXQuery(corpus_, R"(
    let $d := doc("xmark.xml")
    for $o in $d//open_auction[.//current/text() < 145],
        $p in $d//person[.//province],
        $i in $d//item[./quantity = 1]
    where $o//bidder//personref/@person = $p/@id and
          $o//itemref/@item = $i/@id
    return $o
  )");
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  RoxOptions opt;
  opt.tau = 20;
  RoxOptimizer via_xq(corpus_, compiled->graph, opt);
  auto r1 = via_xq.Run();
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();

  XmarkQ1Graph hand = BuildXmarkQ1Graph(corpus_, doc_, 145.0, true);
  RoxOptimizer via_hand(corpus_, hand.graph, opt);
  auto r2 = via_hand.Run();
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->table.NumRows(), r2->table.NumRows());
  EXPECT_GT(r1->table.NumRows(), 0u);
}

TEST_F(XqCompileTest, RunAppliesTail) {
  // Every returned node must be a distinct open_auction element in
  // document order... per XQuery semantics duplicates may remain when
  // ($p, $i) vary; distinct is applied on the full for-binding tuple.
  auto compiled = CompileXQuery(corpus_, R"(
    let $d := doc("xmark.xml")
    for $o in $d//open_auction[.//current/text() < 145],
        $p in $d//person[.//province]
    where $o//bidder//personref/@person = $p/@id
    return $o
  )");
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  RoxOptions opt;
  opt.tau = 20;
  auto seq = RunXQuery(corpus_, *compiled, opt);
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();
  ASSERT_FALSE(seq->empty());
  const Document& doc = corpus_.doc(doc_);
  StringId oa = corpus_.Find("open_auction");
  for (Pre p : *seq) {
    EXPECT_EQ(doc.Name(p), oa);
  }
  // Sorted by ($o, $p) document order => $o keys non-decreasing.
  for (size_t i = 1; i < seq->size(); ++i) {
    EXPECT_LE((*seq)[i - 1], (*seq)[i]);
  }
}



TEST_F(XqCompileTest, PaperFigureOneQueryQ) {
  // The paper's running example Q (§2.1, Figure 1): personrefs of
  // auctions with a reserve, joined to persons with an education entry.
  auto compiled = CompileXQuery(corpus_, R"(
    let $r := doc("xmark.xml")
    for $a in $r//open_auction[./reserve]/bidder//personref,
        $b in $r//person[.//education]
    where $a/@person = $b/@id
    return $a
  )");
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_TRUE(compiled->graph.IsConnected());
  RoxOptions opt;
  opt.tau = 20;
  auto seq = RunXQuery(corpus_, *compiled, opt);
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();

  // Brute-force oracle by direct tree walks.
  const Document& doc = corpus_.doc(doc_);
  const StringPool& pool = corpus_.string_pool();
  StringId s_oa = pool.Find("open_auction");
  StringId s_reserve = pool.Find("reserve");
  StringId s_bidder = pool.Find("bidder");
  StringId s_personref = pool.Find("personref");
  StringId s_person_attr = pool.Find("person");
  StringId s_person = pool.Find("person");
  StringId s_education = pool.Find("education");
  StringId s_id = pool.Find("id");
  // Persons with education, by @id value.
  std::map<StringId, uint64_t> edu_persons;
  for (Pre p : corpus_.element_index(doc_).Lookup(s_person)) {
    bool has_edu = false;
    for (Pre q = p + 1; q <= p + doc.Size(p); ++q) {
      if (doc.Kind(q) == NodeKind::kElem && doc.Name(q) == s_education) {
        has_edu = true;
        break;
      }
    }
    if (has_edu) ++edu_persons[doc.AttributeValue(p, s_id)];
  }
  // Distinct ($a, $b) pairs -> count per XQuery tail semantics: the
  // result keeps one $a per distinct binding pair.
  uint64_t expected = 0;
  for (Pre oa : corpus_.element_index(doc_).Lookup(s_oa)) {
    bool has_reserve = false;
    for (Pre q = oa + 1; q <= oa + doc.Size(oa); ++q) {
      if (doc.Kind(q) == NodeKind::kElem && doc.Name(q) == s_reserve &&
          doc.Parent(q) == oa) {
        has_reserve = true;
        break;
      }
    }
    if (!has_reserve) continue;
    for (Pre b = oa + 1; b <= oa + doc.Size(oa); ++b) {
      if (doc.Kind(b) != NodeKind::kElem || doc.Name(b) != s_bidder ||
          doc.Parent(b) != oa) {
        continue;
      }
      for (Pre pr = b + 1; pr <= b + doc.Size(b); ++pr) {
        if (doc.Kind(pr) != NodeKind::kElem || doc.Name(pr) != s_personref) {
          continue;
        }
        auto it = edu_persons.find(doc.AttributeValue(pr, s_person_attr));
        if (it != edu_persons.end()) expected += it->second;
      }
    }
  }
  EXPECT_EQ(seq->size(), expected);
  EXPECT_GT(expected, 0u);
}

TEST_F(XqCompileTest, DisconnectedForVariablesCrossProduct) {
  // Two for-variables with no join: independent components combined as
  // a cross product (XQuery nested-for semantics).
  auto compiled = CompileXQuery(corpus_, R"(
    let $d := doc("xmark.xml")
    for $p in $d//person[.//province],
        $i in $d//item[./quantity = 1]
    return $p
  )");
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_FALSE(compiled->graph.IsConnected());
  RoxOptions opt;
  opt.tau = 20;
  auto seq = RunXQuery(corpus_, *compiled, opt);
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();
  // |persons with province| x |items with quantity 1| bindings, but the
  // tail projects+distincts on ($p, $i) pairs, so the returned sequence
  // has one $p per ($p,$i) pair.
  const Document& doc = corpus_.doc(doc_);
  StringId province = corpus_.Find("province");
  StringId person = corpus_.Find("person");
  uint64_t persons_with_province = 0;
  for (Pre p : corpus_.element_index(doc_).Lookup(person)) {
    for (Pre q = p + 1; q <= p + doc.Size(p); ++q) {
      if (doc.Kind(q) == NodeKind::kElem && doc.Name(q) == province) {
        ++persons_with_province;
        break;
      }
    }
  }
  ASSERT_GT(persons_with_province, 0u);
  EXPECT_EQ(seq->size() % persons_with_province, 0u);
  EXPECT_GT(seq->size(), persons_with_province);
}

TEST_F(XqCompileTest, UnknownDocumentFails) {
  auto compiled =
      CompileXQuery(corpus_, "for $a in doc(\"nope.xml\")//x return $a");
  EXPECT_FALSE(compiled.ok());
  EXPECT_EQ(compiled.status().code(), StatusCode::kNotFound);
}

TEST_F(XqCompileTest, UnboundVariableFails) {
  auto c1 = CompileXQuery(corpus_,
                          "for $a in $zzz//x return $a");
  EXPECT_FALSE(c1.ok());
  auto c2 = CompileXQuery(
      corpus_, "for $a in doc(\"xmark.xml\")//item return $b");
  EXPECT_FALSE(c2.ok());
}

TEST_F(XqCompileTest, UnsupportedConstructsReportUnimplemented) {
  auto c1 = CompileXQuery(
      corpus_, "for $a in doc(\"xmark.xml\")//* return $a");
  EXPECT_FALSE(c1.ok());
  EXPECT_EQ(c1.status().code(), StatusCode::kUnimplemented);
  auto c2 = CompileXQuery(
      corpus_,
      "let $d := doc(\"xmark.xml\")//item for $a in $d//x return $a");
  EXPECT_FALSE(c2.ok());
}

TEST_F(XqCompileTest, GreaterThanPredicate) {
  auto compiled = CompileXQuery(corpus_, R"(
    let $d := doc("xmark.xml")
    for $o in $d//open_auction[.//current/text() > 145],
        $i in $d//item[./quantity = 1]
    where $o//itemref/@item = $i/@id
    return $o
  )");
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  RoxOptions opt;
  opt.tau = 20;
  auto r = RoxOptimizer(corpus_, compiled->graph, opt).Run();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->table.NumRows(), 0u);
}

}  // namespace
}  // namespace rox::xq
