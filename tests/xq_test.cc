#include <gtest/gtest.h>

#include <map>

#include "workload/xmark.h"
#include "xq/compile.h"
#include "xq/parser.h"

namespace rox::xq {
namespace {

// --- parser -------------------------------------------------------------------

TEST(XqParserTest, PaperQueryQ) {
  // The example query Q of §2.1 (Figure 1).
  auto q = ParseXQuery(R"(
    let $r := doc("auction.xml")
    for $a in $r//open_auction[./reserve]/bidder//personref,
        $b in $r//person[.//education]
    where $a/@person = $b/@id
    return $a
  )");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->lets.size(), 1u);
  EXPECT_EQ(q->lets[0].variable, "r");
  EXPECT_EQ(q->lets[0].value.doc_url, "auction.xml");
  ASSERT_EQ(q->fors.size(), 2u);
  EXPECT_EQ(q->fors[0].variable, "a");
  ASSERT_EQ(q->fors[0].domain.steps.size(), 3u);
  EXPECT_EQ(q->fors[0].domain.steps[0].step.axis, Axis::kDescendant);
  EXPECT_EQ(q->fors[0].domain.steps[0].step.name, "open_auction");
  ASSERT_EQ(q->fors[0].domain.steps[0].predicate_groups.size(), 1u);
  EXPECT_FALSE(q->fors[0]
                   .domain.steps[0]
                   .predicate_groups[0]
                   .alternatives[0][0]
                   .op.has_value());
  EXPECT_EQ(q->fors[0].domain.steps[1].step.axis, Axis::kChild);
  ASSERT_EQ(q->where.size(), 1u);
  EXPECT_EQ(q->where[0].lhs.variable, "a");
  ASSERT_EQ(q->where[0].lhs.steps.size(), 1u);
  EXPECT_EQ(q->where[0].lhs.steps[0].step.test, AstStep::Test::kAttribute);
  EXPECT_EQ(q->return_variable, "a");
}

TEST(XqParserTest, ValuePredicates) {
  auto q = ParseXQuery(R"(
    for $o in doc("x.xml")//open_auction[.//current/text() < 145],
        $i in doc("x.xml")//item[./quantity = 1]
    where $o/@x = $i/@y
    return $o
  )");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const AstPredicate& p0 =
      q->fors[0].domain.steps[0].predicate_groups[0].alternatives[0][0];
  ASSERT_TRUE(p0.op.has_value());
  EXPECT_EQ(*p0.op, CmpOp::kLt);
  EXPECT_EQ(p0.literal, "145");
  EXPECT_TRUE(p0.literal_is_number);
  ASSERT_EQ(p0.path.size(), 2u);
  EXPECT_EQ(p0.path[1].test, AstStep::Test::kText);
  const AstPredicate& p1 =
      q->fors[1].domain.steps[0].predicate_groups[0].alternatives[0][0];
  EXPECT_EQ(*p1.op, CmpOp::kEq);
}

TEST(XqParserTest, CommentsAndStrings) {
  auto q = ParseXQuery(R"(
    (: find things :)
    for $a in doc("d.xml")//thing[./name = "blue"]
    return $a
  )");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const AstPredicate& p =
      q->fors[0].domain.steps[0].predicate_groups[0].alternatives[0][0];
  EXPECT_EQ(p.literal, "blue");
  EXPECT_FALSE(p.literal_is_number);
}

TEST(XqParserTest, Errors) {
  EXPECT_FALSE(ParseXQuery("return $a").ok());           // no for
  EXPECT_FALSE(ParseXQuery("for $a in //x return $a").ok());  // no source
  EXPECT_FALSE(ParseXQuery("for $a in doc('d')//x").ok());    // no return
  EXPECT_FALSE(
      ParseXQuery("for $a in doc('d')//x return $a extra").ok());
  EXPECT_FALSE(ParseXQuery("for $a in doc('d')//x[./y !] return $a").ok());
}

TEST(XqParserTest, ThetaWhereComparisons) {
  // All six operators parse and record their CmpOp; `<` between bound
  // variables used to be rejected with "must be equalities".
  struct Case {
    const char* op;
    CmpOp expect;
  };
  for (const Case& c : {Case{"=", CmpOp::kEq}, Case{"!=", CmpOp::kNe},
                        Case{"<", CmpOp::kLt}, Case{"<=", CmpOp::kLe},
                        Case{">", CmpOp::kGt}, Case{">=", CmpOp::kGe}}) {
    std::string text =
        std::string("for $a in doc('d')//x, $b in doc('d')//y "
                    "where $a/@k ") +
        c.op + " $b/@k return $a";
    auto q = ParseXQuery(text);
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    ASSERT_EQ(q->where.size(), 1u);
    EXPECT_EQ(q->where[0].op, c.expect);
  }
}

TEST(XqParserTest, WhereErrorsArePreciseAndPositioned) {
  // Literal operand: diagnosed as such, with the literal's position.
  auto lit = ParseXQuery(
      "for $a in doc('d')//x where $a/@k = 145 return $a");
  ASSERT_FALSE(lit.ok());
  EXPECT_NE(lit.status().message().find("literal '145'"),
            std::string::npos)
      << lit.status().ToString();
  EXPECT_NE(lit.status().message().find("1:37"), std::string::npos)
      << lit.status().ToString();

  auto lit2 = ParseXQuery(
      "for $a in doc('d')//x where \"cat\" = $a/@k return $a");
  ASSERT_FALSE(lit2.ok());
  EXPECT_NE(lit2.status().message().find("literal 'cat'"),
            std::string::npos);

  // Unbound variable: named, with its position.
  auto unbound = ParseXQuery(
      "for $a in doc('d')//x where $a/@k = $nope/@k return $a");
  ASSERT_FALSE(unbound.ok());
  EXPECT_NE(unbound.status().message().find("unbound variable $nope"),
            std::string::npos)
      << unbound.status().ToString();
  EXPECT_NE(unbound.status().message().find("1:37"), std::string::npos)
      << unbound.status().ToString();

  // doc() operand: not a join path.
  auto docside = ParseXQuery(
      "for $a in doc('d')//x where doc('d')//y = $a/@k return $a");
  ASSERT_FALSE(docside.ok());
  EXPECT_NE(docside.status().message().find("bound variables"),
            std::string::npos);
}

TEST(XqParserTest, DisjunctivePredicateGroups) {
  auto q = ParseXQuery(R"(
    for $i in doc("d.xml")//item[./quantity = 1 or ./quantity >= 4]
    return $i
  )");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const auto& groups = q->fors[0].domain.steps[0].predicate_groups;
  ASSERT_EQ(groups.size(), 1u);
  ASSERT_EQ(groups[0].alternatives.size(), 2u);
  ASSERT_EQ(groups[0].alternatives[0].size(), 1u);
  EXPECT_EQ(*groups[0].alternatives[0][0].op, CmpOp::kEq);
  EXPECT_EQ(*groups[0].alternatives[1][0].op, CmpOp::kGe);

  // Standard XQuery precedence: `and` binds tighter than `or`, so
  // `[a and b or c]` is (a AND b) OR c — one group with two branches,
  // the first a two-predicate conjunction.
  auto q2 = ParseXQuery(R"(
    for $o in doc("d.xml")//a[./x = 1 and ./y = 2 or ./y != 3]
    return $o
  )");
  ASSERT_TRUE(q2.ok()) << q2.status().ToString();
  const auto& groups2 = q2->fors[0].domain.steps[0].predicate_groups;
  ASSERT_EQ(groups2.size(), 1u);
  ASSERT_EQ(groups2[0].alternatives.size(), 2u);
  ASSERT_EQ(groups2[0].alternatives[0].size(), 2u);
  EXPECT_EQ(*groups2[0].alternatives[0][1].op, CmpOp::kEq);
  ASSERT_EQ(groups2[0].alternatives[1].size(), 1u);
  EXPECT_EQ(*groups2[0].alternatives[1][0].op, CmpOp::kNe);

  // `[a and b]` is a single-branch conjunction, equivalent to [a][b].
  auto q3 = ParseXQuery(R"(
    for $o in doc("d.xml")//a[./x = 1 and ./y < 2] return $o
  )");
  ASSERT_TRUE(q3.ok()) << q3.status().ToString();
  const auto& groups3 = q3->fors[0].domain.steps[0].predicate_groups;
  ASSERT_EQ(groups3.size(), 1u);
  ASSERT_EQ(groups3[0].alternatives.size(), 1u);
  EXPECT_EQ(groups3[0].alternatives[0].size(), 2u);
}


TEST(XqParserTest, ExplicitAxes) {
  auto q = ParseXQuery(R"(
    for $a in doc("d.xml")//x/parent::venue/ancestor-or-self::site,
        $b in doc("d.xml")//y/following-sibling::z
    where $a/@k = $b/@k
    return $a
  )");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const auto& steps = q->fors[0].domain.steps;
  ASSERT_EQ(steps.size(), 3u);
  EXPECT_EQ(steps[1].step.axis, Axis::kParent);
  EXPECT_EQ(steps[1].step.name, "venue");
  EXPECT_EQ(steps[2].step.axis, Axis::kAncestorOrSelf);
  EXPECT_EQ(q->fors[1].domain.steps[1].step.axis, Axis::kFollowingSibling);
}

TEST(XqParserTest, ExplicitAxisErrors) {
  EXPECT_FALSE(ParseXQuery(
      "for $a in doc(\"d\")//sideways::x return $a").ok());
  EXPECT_FALSE(ParseXQuery(
      "for $a in doc(\"d\")//x//parent::y return $a").ok());  // '//'+axis
}

TEST(XqParserTest, AxisWildcardAndText) {
  auto q = ParseXQuery(R"(
    for $a in doc("d.xml")//x/ancestor::*/self::y/child::text()
    return $a
  )");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const auto& steps = q->fors[0].domain.steps;
  ASSERT_EQ(steps.size(), 4u);
  EXPECT_EQ(steps[1].step.axis, Axis::kAncestor);
  EXPECT_EQ(steps[1].step.test, AstStep::Test::kAnyElement);
  EXPECT_EQ(steps[2].step.axis, Axis::kSelf);
  EXPECT_EQ(steps[3].step.axis, Axis::kChild);
  EXPECT_EQ(steps[3].step.test, AstStep::Test::kText);
}

// --- compiler -----------------------------------------------------------------

class XqCompileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    XmarkGenOptions gen;
    gen.items = 60;
    gen.persons = 80;
    gen.open_auctions = 70;
    auto doc = GenerateXmarkDocument(corpus_, gen, "xmark.xml");
    ASSERT_TRUE(doc.ok());
    doc_ = *doc;
  }
  Corpus corpus_;
  DocId doc_ = 0;
};

TEST_F(XqCompileTest, CompilesQ1ToExpectedShape) {
  auto compiled = CompileXQuery(corpus_, R"(
    let $d := doc("xmark.xml")
    for $o in $d//open_auction[.//current/text() < 145],
        $p in $d//person[.//province],
        $i in $d//item[./quantity = 1]
    where $o//bidder//personref/@person = $p/@id and
          $o//itemref/@item = $i/@id
    return $o
  )");
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  // Same shape as the hand-built Figure 3.1 graph: 16 vertices, 14
  // edges after pruning the 3 root descendant steps (BuildXmarkQ1Graph
  // in workload/ builds the identical graph).
  EXPECT_EQ(compiled->graph.VertexCount(), 16u);
  EXPECT_EQ(compiled->graph.EdgeCount(), 14u);
  EXPECT_TRUE(compiled->graph.IsConnected());
  EXPECT_EQ(compiled->for_vertices.size(), 3u);
  EXPECT_EQ(compiled->return_vertex, compiled->variables.at("o"));
}

TEST_F(XqCompileTest, CompiledQ1MatchesHandBuiltGraphResults) {
  auto compiled = CompileXQuery(corpus_, R"(
    let $d := doc("xmark.xml")
    for $o in $d//open_auction[.//current/text() < 145],
        $p in $d//person[.//province],
        $i in $d//item[./quantity = 1]
    where $o//bidder//personref/@person = $p/@id and
          $o//itemref/@item = $i/@id
    return $o
  )");
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  RoxOptions opt;
  opt.tau = 20;
  RoxOptimizer via_xq(corpus_, compiled->graph, opt);
  auto r1 = via_xq.Run();
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();

  XmarkQ1Graph hand = BuildXmarkQ1Graph(corpus_, doc_, 145.0, true);
  RoxOptimizer via_hand(corpus_, hand.graph, opt);
  auto r2 = via_hand.Run();
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->table.NumRows(), r2->table.NumRows());
  EXPECT_GT(r1->table.NumRows(), 0u);
}

TEST_F(XqCompileTest, RunAppliesTail) {
  // Every returned node must be a distinct open_auction element in
  // document order... per XQuery semantics duplicates may remain when
  // ($p, $i) vary; distinct is applied on the full for-binding tuple.
  auto compiled = CompileXQuery(corpus_, R"(
    let $d := doc("xmark.xml")
    for $o in $d//open_auction[.//current/text() < 145],
        $p in $d//person[.//province]
    where $o//bidder//personref/@person = $p/@id
    return $o
  )");
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  RoxOptions opt;
  opt.tau = 20;
  auto seq = RunXQuery(corpus_, *compiled, opt);
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();
  ASSERT_FALSE(seq->empty());
  const Document& doc = corpus_.doc(doc_);
  StringId oa = corpus_.Find("open_auction");
  for (Pre p : *seq) {
    EXPECT_EQ(doc.Name(p), oa);
  }
  // Sorted by ($o, $p) document order => $o keys non-decreasing.
  for (size_t i = 1; i < seq->size(); ++i) {
    EXPECT_LE((*seq)[i - 1], (*seq)[i]);
  }
}



TEST_F(XqCompileTest, PaperFigureOneQueryQ) {
  // The paper's running example Q (§2.1, Figure 1): personrefs of
  // auctions with a reserve, joined to persons with an education entry.
  auto compiled = CompileXQuery(corpus_, R"(
    let $r := doc("xmark.xml")
    for $a in $r//open_auction[./reserve]/bidder//personref,
        $b in $r//person[.//education]
    where $a/@person = $b/@id
    return $a
  )");
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_TRUE(compiled->graph.IsConnected());
  RoxOptions opt;
  opt.tau = 20;
  auto seq = RunXQuery(corpus_, *compiled, opt);
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();

  // Brute-force oracle by direct tree walks.
  const Document& doc = corpus_.doc(doc_);
  const StringPool& pool = corpus_.string_pool();
  StringId s_oa = pool.Find("open_auction");
  StringId s_reserve = pool.Find("reserve");
  StringId s_bidder = pool.Find("bidder");
  StringId s_personref = pool.Find("personref");
  StringId s_person_attr = pool.Find("person");
  StringId s_person = pool.Find("person");
  StringId s_education = pool.Find("education");
  StringId s_id = pool.Find("id");
  // Persons with education, by @id value.
  std::map<StringId, uint64_t> edu_persons;
  for (Pre p : corpus_.element_index(doc_).Lookup(s_person)) {
    bool has_edu = false;
    for (Pre q = p + 1; q <= p + doc.Size(p); ++q) {
      if (doc.Kind(q) == NodeKind::kElem && doc.Name(q) == s_education) {
        has_edu = true;
        break;
      }
    }
    if (has_edu) ++edu_persons[doc.AttributeValue(p, s_id)];
  }
  // Distinct ($a, $b) pairs -> count per XQuery tail semantics: the
  // result keeps one $a per distinct binding pair.
  uint64_t expected = 0;
  for (Pre oa : corpus_.element_index(doc_).Lookup(s_oa)) {
    bool has_reserve = false;
    for (Pre q = oa + 1; q <= oa + doc.Size(oa); ++q) {
      if (doc.Kind(q) == NodeKind::kElem && doc.Name(q) == s_reserve &&
          doc.Parent(q) == oa) {
        has_reserve = true;
        break;
      }
    }
    if (!has_reserve) continue;
    for (Pre b = oa + 1; b <= oa + doc.Size(oa); ++b) {
      if (doc.Kind(b) != NodeKind::kElem || doc.Name(b) != s_bidder ||
          doc.Parent(b) != oa) {
        continue;
      }
      for (Pre pr = b + 1; pr <= b + doc.Size(b); ++pr) {
        if (doc.Kind(pr) != NodeKind::kElem || doc.Name(pr) != s_personref) {
          continue;
        }
        auto it = edu_persons.find(doc.AttributeValue(pr, s_person_attr));
        if (it != edu_persons.end()) expected += it->second;
      }
    }
  }
  EXPECT_EQ(seq->size(), expected);
  EXPECT_GT(expected, 0u);
}

TEST_F(XqCompileTest, DisconnectedForVariablesCrossProduct) {
  // Two for-variables with no join: independent components combined as
  // a cross product (XQuery nested-for semantics).
  auto compiled = CompileXQuery(corpus_, R"(
    let $d := doc("xmark.xml")
    for $p in $d//person[.//province],
        $i in $d//item[./quantity = 1]
    return $p
  )");
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_FALSE(compiled->graph.IsConnected());
  RoxOptions opt;
  opt.tau = 20;
  auto seq = RunXQuery(corpus_, *compiled, opt);
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();
  // |persons with province| x |items with quantity 1| bindings, but the
  // tail projects+distincts on ($p, $i) pairs, so the returned sequence
  // has one $p per ($p,$i) pair.
  const Document& doc = corpus_.doc(doc_);
  StringId province = corpus_.Find("province");
  StringId person = corpus_.Find("person");
  uint64_t persons_with_province = 0;
  for (Pre p : corpus_.element_index(doc_).Lookup(person)) {
    for (Pre q = p + 1; q <= p + doc.Size(p); ++q) {
      if (doc.Kind(q) == NodeKind::kElem && doc.Name(q) == province) {
        ++persons_with_province;
        break;
      }
    }
  }
  ASSERT_GT(persons_with_province, 0u);
  EXPECT_EQ(seq->size() % persons_with_province, 0u);
  EXPECT_GT(seq->size(), persons_with_province);
}

TEST_F(XqCompileTest, UnknownDocumentFails) {
  auto compiled =
      CompileXQuery(corpus_, "for $a in doc(\"nope.xml\")//x return $a");
  EXPECT_FALSE(compiled.ok());
  EXPECT_EQ(compiled.status().code(), StatusCode::kNotFound);
}

TEST_F(XqCompileTest, UnboundVariableFails) {
  auto c1 = CompileXQuery(corpus_,
                          "for $a in $zzz//x return $a");
  EXPECT_FALSE(c1.ok());
  auto c2 = CompileXQuery(
      corpus_, "for $a in doc(\"xmark.xml\")//item return $b");
  EXPECT_FALSE(c2.ok());
}

TEST_F(XqCompileTest, UnsupportedConstructsReportUnimplemented) {
  auto c1 = CompileXQuery(
      corpus_, "for $a in doc(\"xmark.xml\")//* return $a");
  EXPECT_FALSE(c1.ok());
  EXPECT_EQ(c1.status().code(), StatusCode::kUnimplemented);
  auto c2 = CompileXQuery(
      corpus_,
      "let $d := doc(\"xmark.xml\")//item for $a in $d//x return $a");
  EXPECT_FALSE(c2.ok());
}

TEST_F(XqCompileTest, ThetaWhereCompilesToThetaEdge) {
  auto compiled = CompileXQuery(corpus_, R"(
    let $d := doc("xmark.xml")
    for $i in $d//item, $b in $d//bidder
    where $i/quantity < $b/increase
    return $i
  )");
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  int theta_edges = 0;
  for (EdgeId e = 0; e < compiled->graph.EdgeCount(); ++e) {
    const Edge& edge = compiled->graph.edge(e);
    if (edge.type != EdgeType::kValueJoin) continue;
    EXPECT_EQ(edge.cmp, CmpOp::kLt);
    // Element-final operands are lowered to their text() children.
    EXPECT_EQ(compiled->graph.vertex(edge.v1).type, VertexType::kText);
    EXPECT_EQ(compiled->graph.vertex(edge.v2).type, VertexType::kText);
    ++theta_edges;
  }
  EXPECT_EQ(theta_edges, 1);
  auto seq = RunXQuery(corpus_, *compiled, RoxOptions{});
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();
  EXPECT_FALSE(seq->empty());
}

TEST_F(XqCompileTest, NotEqualsPredicateCompiles) {
  auto ne = CompileXQuery(corpus_, R"(
    for $i in doc("xmark.xml")//item[./quantity != 1] return $i
  )");
  ASSERT_TRUE(ne.ok()) << ne.status().ToString();
  auto eq = CompileXQuery(corpus_, R"(
    for $i in doc("xmark.xml")//item[./quantity = 1] return $i
  )");
  ASSERT_TRUE(eq.ok());
  RoxOptions opt;
  opt.tau = 20;
  auto ne_seq = RunXQuery(corpus_, *ne, opt);
  auto eq_seq = RunXQuery(corpus_, *eq, opt);
  ASSERT_TRUE(ne_seq.ok()) << ne_seq.status().ToString();
  ASSERT_TRUE(eq_seq.ok());
  // != and = partition the items (every item has one quantity).
  StringId item = corpus_.Find("item");
  uint64_t total = corpus_.element_index(doc_).Count(item);
  EXPECT_EQ(ne_seq->size() + eq_seq->size(), total);
  EXPECT_FALSE(ne_seq->empty());
}

TEST_F(XqCompileTest, DisjunctiveGroupLowersToAnyOfVertex) {
  auto compiled = CompileXQuery(corpus_, R"(
    for $i in doc("xmark.xml")//item[./quantity = 1 or ./quantity >= 4]
    return $i
  )");
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  int any_of = 0;
  for (VertexId v = 0; v < compiled->graph.VertexCount(); ++v) {
    const Vertex& vx = compiled->graph.vertex(v);
    if (vx.pred.kind != ValuePredicate::Kind::kAnyOf) continue;
    EXPECT_EQ(vx.pred.any_of.size(), 2u);
    EXPECT_EQ(vx.pred.any_of[0].kind, ValuePredicate::Kind::kEquals);
    EXPECT_EQ(vx.pred.any_of[1].kind, ValuePredicate::Kind::kRange);
    ++any_of;
  }
  EXPECT_EQ(any_of, 1);
}

TEST_F(XqCompileTest, UnsupportedDisjunctionsReportUnimplemented) {
  // Alternatives over different relative paths.
  auto mixed = CompileXQuery(corpus_, R"(
    for $i in doc("xmark.xml")//item[./quantity = 1 or ./name = "thing 2"]
    return $i
  )");
  ASSERT_FALSE(mixed.ok());
  EXPECT_EQ(mixed.status().code(), StatusCode::kUnimplemented);
  // Existence alternative inside a disjunction.
  auto exist = CompileXQuery(corpus_, R"(
    for $p in doc("xmark.xml")//person[.//province or .//education]
    return $p
  )");
  ASSERT_FALSE(exist.ok());
  EXPECT_EQ(exist.status().code(), StatusCode::kUnimplemented);
  // An `or` branch that is itself a conjunction ((a AND b) OR c under
  // standard precedence) has no single-vertex lowering.
  auto conj = CompileXQuery(corpus_, R"(
    for $i in doc("xmark.xml")//item[./quantity = 1 and ./quantity = 2
                                     or ./quantity = 3]
    return $i
  )");
  ASSERT_FALSE(conj.ok());
  EXPECT_EQ(conj.status().code(), StatusCode::kUnimplemented);
}

TEST_F(XqCompileTest, AndInsideBracketEqualsStackedBrackets) {
  auto both = [&](const char* text) {
    auto c = CompileXQuery(corpus_, text);
    ROX_CHECK_OK(c.status());
    RoxOptions opt;
    opt.tau = 20;
    auto seq = RunXQuery(corpus_, *c, opt);
    ROX_CHECK_OK(seq.status());
    return *seq;
  };
  auto a = both(R"(
    for $o in doc("xmark.xml")//open_auction[./reserve and ./bidder]
    return $o)");
  auto b = both(R"(
    for $o in doc("xmark.xml")//open_auction[./reserve][./bidder]
    return $o)");
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

TEST_F(XqCompileTest, RootWhereOperandRejected) {
  auto compiled = CompileXQuery(corpus_, R"(
    let $d := doc("xmark.xml")
    for $i in $d//item
    where $d = $i/@id
    return $i
  )");
  ASSERT_FALSE(compiled.ok());
  EXPECT_EQ(compiled.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(XqCompileTest, GreaterThanPredicate) {
  auto compiled = CompileXQuery(corpus_, R"(
    let $d := doc("xmark.xml")
    for $o in $d//open_auction[.//current/text() > 145],
        $i in $d//item[./quantity = 1]
    where $o//itemref/@item = $i/@id
    return $o
  )");
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  RoxOptions opt;
  opt.tau = 20;
  auto r = RoxOptimizer(corpus_, compiled->graph, opt).Run();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->table.NumRows(), 0u);
}

}  // namespace
}  // namespace rox::xq
