// Tests of the §4.2 correlation measure C against hand-computed values,
// and of the correlation-detection behavior that drives Figures 5-7.

#include <gtest/gtest.h>

#include <cmath>

#include "workload/dblp.h"

namespace rox {
namespace {

// Builds a corpus of four single-author-list documents with fully
// controlled value frequencies.
Corpus HandCorpus() {
  Corpus corpus;
  auto add = [&](const char* name, std::vector<const char*> authors) {
    std::string xml = "<venue>";
    for (const char* a : authors) {
      xml += "<article><author>";
      xml += a;
      xml += "</author></article>";
    }
    xml += "</venue>";
    EXPECT_TRUE(corpus.AddXml(xml, name).ok());
  };
  // d0 and d1 overlap heavily; d2 and d3 overlap d0/d1 in one value.
  add("d0", {"x", "x", "y", "z"});   // 4 tags
  add("d1", {"x", "y", "y"});        // 3 tags
  add("d2", {"x", "q"});             // 2 tags
  add("d3", {"p", "q"});             // 2 tags
  return corpus;
}

TEST(CorrelationTest, PairJoinSizesHandComputed) {
  Corpus corpus = HandCorpus();
  // d0 ⋈ d1: x 2*1 + y 1*2 = 4.
  EXPECT_EQ(PairJoinSize(corpus, 0, 1), 4u);
  // d0 ⋈ d2: x 2*1 = 2.
  EXPECT_EQ(PairJoinSize(corpus, 0, 2), 2u);
  // d0 ⋈ d3: nothing shared.
  EXPECT_EQ(PairJoinSize(corpus, 0, 3), 0u);
  // d2 ⋈ d3: q 1*1 = 1.
  EXPECT_EQ(PairJoinSize(corpus, 2, 3), 1u);
  // Symmetry.
  EXPECT_EQ(PairJoinSize(corpus, 1, 0), PairJoinSize(corpus, 0, 1));
}

TEST(CorrelationTest, CorrelationCFormula) {
  Corpus corpus = HandCorpus();
  // js(di,dj) = |di ⋈ dj| * 100 / max(|di|,|dj|):
  //   js01 = 4*100/4 = 100;  js02 = 2*100/4 = 50;  js03 = 0
  //   js12 = 1*100/3 = 33.33 (x: 1*1);  js13 = 0;  js23 = 1*100/2 = 50
  double js01 = 100, js02 = 50, js03 = 0, js12 = 100.0 / 3, js13 = 0,
         js23 = 50;
  double mean = (js01 + js02 + js03 + js12 + js13 + js23) / 6.0;
  double var = (std::pow(js01 - mean, 2) + std::pow(js02 - mean, 2) +
                std::pow(js03 - mean, 2) + std::pow(js12 - mean, 2) +
                std::pow(js13 - mean, 2) + std::pow(js23 - mean, 2)) /
               6.0;
  EXPECT_NEAR(CorrelationC(corpus, {0, 1, 2, 3}), var, 1e-9);
}

TEST(CorrelationTest, UniformOverlapMeansLowC) {
  // Four identical documents: all pairwise selectivities equal -> C = 0.
  Corpus corpus;
  for (int i = 0; i < 4; ++i) {
    std::string xml =
        "<venue><article><author>same</author></article></venue>";
    ASSERT_TRUE(corpus.AddXml(xml, "d" + std::to_string(i)).ok());
  }
  EXPECT_NEAR(CorrelationC(corpus, {0, 1, 2, 3}), 0.0, 1e-9);
}

TEST(CorrelationTest, GeneratedCorpusOrdersGroupsByC) {
  // On the synthetic corpus, 4:0 combinations should on average carry
  // higher correlation than 2:2 ones (the grouping assumption of §4.3).
  DblpGenOptions opt;
  opt.tag_scale = 0.05;
  auto corpus = GenerateDblpCorpus(opt);
  ASSERT_TRUE(corpus.ok());
  auto resolve = [&](const char* n) { return *corpus->Resolve(n); };
  double c_40 = CorrelationC(
      *corpus, {resolve("VLDB"), resolve("SIGMOD"), resolve("ICDE"),
                resolve("EDBT")});
  double c_22 = CorrelationC(
      *corpus, {resolve("VLDB"), resolve("SIGMOD"), resolve("AAAI"),
                resolve("AIinMedicine")});
  EXPECT_GT(c_40, c_22);
}

}  // namespace
}  // namespace rox
