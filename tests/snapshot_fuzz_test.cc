// Randomized differential harness for the epoch-versioned live corpus
// (DESIGN.md §10), plus the TSan-targeted publish/read race test.
//
// The differential suite interleaves AddDocuments/RemoveDocument with
// concurrent RunBatch over generated XMark-/DBLP-flavored queries;
// every result must byte-match a fresh single-epoch Engine built from
// that query's pinned snapshot. The reference engine deliberately runs
// the *other* materialization mode, a single shard, no cache, and a
// different optimizer seed, so one comparison covers live-vs-fresh,
// lazy-vs-eager, sharded-vs-unsharded and seed independence at once.
//
// Environment knobs (the CI sanitizer legs raise the iteration count):
//   ROX_FUZZ_ITERS      iterations per configuration (default 40)
//   ROX_FUZZ_SEED       base seed (default below)
//   ROX_FUZZ_SEED_FILE  where to record the seed on failure
//                       (default snapshot_fuzz_seed.txt), so CI can
//                       upload it and a failure reproduces exactly.
//   ROX_FUZZ_TRACE_FILE where to dump the failing query's execution
//                       trace JSON (default snapshot_fuzz_trace.json);
//                       uploaded next to the seed file, it shows the
//                       join order / kernels / cardinalities the live
//                       engine actually took. The live engine runs at
//                       trace_level=spans throughout, which doubles as
//                       a differential check that tracing never
//                       perturbs results.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "engine/engine.h"
#include "index/corpus.h"
#include "obs/trace.h"

namespace rox {
namespace {

constexpr uint64_t kDefaultSeed = 0x5eedc0ffee123ULL;

uint64_t EnvU64(const char* name, uint64_t def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  return std::strtoull(v, nullptr, 10);
}

// Appends the failing seed/config so a CI artifact reproduces the run:
//   ROX_FUZZ_SEED=<seed> ./rox_tests --gtest_filter='SnapshotFuzz*'
void DumpSeed(uint64_t seed, const std::string& context) {
  const char* path = std::getenv("ROX_FUZZ_SEED_FILE");
  std::ofstream out(path != nullptr ? path : "snapshot_fuzz_seed.txt",
                    std::ios::app);
  out << "ROX_FUZZ_SEED=" << seed << "  # " << context << "\n";
}

// Dumps the failing query's flight-recorder JSON next to the seed file
// (one JSON object per line, same append discipline), so the CI
// artifact shows the exact span tree / join order / kernels of the
// mismatching execution, not just how to re-run it.
void DumpTrace(const engine::QueryResult& r, const std::string& context) {
  const char* path = std::getenv("ROX_FUZZ_TRACE_FILE");
  std::ofstream out(path != nullptr ? path : "snapshot_fuzz_trace.json",
                    std::ios::app);
  std::string ctx;
  obs::AppendJsonEscaped(&ctx, context);  // query text contains quotes
  out << "{\"context\": \"" << ctx << "\", \"trace\": " << r.trace_json()
      << "}\n";
}

// --- generated documents ----------------------------------------------------
//
// Person/author identifiers come from a small shared vocabulary, so
// joins across independently generated documents actually match.

std::string XmarkFlavorXml(Rng& rng) {
  int persons = 1 + static_cast<int>(rng.Below(6));
  int auctions = 1 + static_cast<int>(rng.Below(6));
  std::string xml = "<site><people>";
  for (int i = 0; i < persons; ++i) {
    xml += "<person id=\"p" + std::to_string(rng.Below(8)) + "\"><name>n" +
           std::to_string(rng.Below(4)) + "</name>";
    if (rng.Bernoulli(0.4)) xml += "<province>v</province>";
    xml += "</person>";
  }
  xml += "</people><open_auctions>";
  for (int i = 0; i < auctions; ++i) {
    xml += "<open_auction><current>" + std::to_string(rng.Below(100)) +
           "</current>";
    int bidders = static_cast<int>(rng.Below(3));
    for (int b = 0; b < bidders; ++b) {
      xml += "<bidder><personref person=\"p" + std::to_string(rng.Below(8)) +
             "\"/></bidder>";
    }
    xml += "</open_auction>";
  }
  xml += "</open_auctions></site>";
  return xml;
}

std::string DblpFlavorXml(Rng& rng) {
  int articles = 1 + static_cast<int>(rng.Below(8));
  std::string xml = "<dblp>";
  for (int i = 0; i < articles; ++i) {
    xml += "<article><author>a" + std::to_string(rng.Below(6)) +
           "</author><year>" + std::to_string(2000 + rng.Below(6)) +
           "</year></article>";
  }
  xml += "</dblp>";
  return xml;
}

// Duplicate names are impossible: every generated document gets a
// fresh serial. Prefix x/d records the flavor.
struct NameBook {
  std::vector<std::string> live;     // resolvable at the current epoch
  std::vector<std::string> removed;  // stale names (compile NotFound)
  int next_serial = 0;

  std::string Fresh(bool xmark) {
    return (xmark ? "x" : "d") + std::to_string(next_serial++) + ".xml";
  }
  const std::string& AnyLive(Rng& rng) const {
    return live[rng.Below(live.size())];
  }
  // Mostly live names; occasionally a removed one, to exercise the
  // per-epoch NotFound path differentially.
  const std::string& Pick(Rng& rng) const {
    if (!removed.empty() && rng.Bernoulli(0.1)) {
      return removed[rng.Below(removed.size())];
    }
    return AnyLive(rng);
  }
};

std::string MakeQuery(Rng& rng, const NameBook& names) {
  const std::string n1 = names.Pick(rng);
  const std::string n2 = names.Pick(rng);
  // Non-equality operators for the theta-join cases (DESIGN.md §11).
  static const char* kThetaOps[] = {"<", "<=", ">", ">=", "!="};
  const char* theta_op = kThetaOps[rng.Below(5)];
  switch (rng.Below(9)) {
    case 0:
      return "for $p in doc(\"" + n1 + "\")//person return $p";
    case 1:
      return "for $o in doc(\"" + n1 + "\")//open_auction[.//current/text() " +
             (rng.Bernoulli(0.5) ? "<" : ">") + " " +
             std::to_string(rng.Below(100)) + "] return $o";
    case 2:
      return "for $b in doc(\"" + n1 + "\")//bidder//personref, $p in doc(\"" +
             n1 + "\")//person where $b/@person = $p/@id return $p";
    case 3:
      return "for $a in doc(\"" + n1 + "\")//author, $b in doc(\"" + n2 +
             "\")//author where $a/text() = $b/text() return $a";
    case 4:
      return "for $x in doc(\"" + n1 + "\")//article[./year = \"" +
             std::to_string(2000 + rng.Below(6)) + "\"] return $x";
    case 5:
      // Cross-document attribute join: personrefs of one document
      // against persons of another (the shared p-vocabulary matches).
      return "for $b in doc(\"" + n1 + "\")//personref, $p in doc(\"" + n2 +
             "\")//person where $b/@person = $p/@id return $b";
    case 6:
      // Theta join on article years, bounded by author equality.
      return "for $a in doc(\"" + n1 + "\")//article, $b in doc(\"" + n2 +
             "\")//article where $a/author = $b/author and $a/year " +
             theta_op + " $b/year return $a";
    case 7:
      // Pure inequality join on attribute values (near-cross-product
      // on these tiny documents; exercises the != kernels).
      return "for $b in doc(\"" + n1 + "\")//personref, $p in doc(\"" + n2 +
             "\")//person where $b/@person " + theta_op +
             " $p/@id return $b";
    default:
      // Disjunctive step predicate over the numeric current values.
      return "for $o in doc(\"" + n1 + "\")//open_auction[./current < " +
             std::to_string(rng.Below(40)) + " or ./current >= " +
             std::to_string(40 + rng.Below(60)) + "] return $o";
  }
}

// --- the differential harness ----------------------------------------------

struct FuzzConfig {
  size_t shards;
  bool lazy;
};

std::string Describe(const FuzzConfig& cfg, uint64_t iter,
                     const std::string& query) {
  return "shards=" + std::to_string(cfg.shards) +
         " lazy=" + std::to_string(cfg.lazy) +
         " iter=" + std::to_string(iter) + " query=[" + query + "]";
}

void RunDifferentialFuzz(const FuzzConfig& cfg) {
  const uint64_t seed = EnvU64("ROX_FUZZ_SEED", kDefaultSeed);
  const uint64_t iters = EnvU64("ROX_FUZZ_ITERS", 40);
  Rng rng(seed ^ (cfg.shards * 0x9e3779b97f4a7c15ULL) ^
          (cfg.lazy ? 0x1337 : 0));

  engine::EngineOptions live_opts;
  live_opts.num_threads = 4;
  live_opts.num_shards = cfg.shards;
  live_opts.lazy_materialization = cfg.lazy;
  live_opts.rox.tau = 20;
  live_opts.rox.seed = seed;
  // Record spans on every live query: any mismatch dumps the trace,
  // and running traced against an untraced reference differentially
  // proves tracing changes no results.
  live_opts.trace_level = obs::TraceLevel::kSpans;

  // The reference runs everything the live engine does NOT: other
  // materialization mode, one shard, no cache, fresh seed.
  engine::EngineOptions ref_opts;
  ref_opts.num_threads = 1;
  ref_opts.num_shards = 1;
  ref_opts.enable_cache = false;
  ref_opts.lazy_materialization = !cfg.lazy;
  ref_opts.rox.lazy_materialization = !cfg.lazy;
  ref_opts.rox.tau = 20;

  NameBook names;
  Corpus corpus;
  for (int i = 0; i < 2; ++i) {
    std::string nx = names.Fresh(/*xmark=*/true);
    std::string nd = names.Fresh(/*xmark=*/false);
    ASSERT_TRUE(corpus.AddXml(XmarkFlavorXml(rng), nx).ok());
    ASSERT_TRUE(corpus.AddXml(DblpFlavorXml(rng), nd).ok());
    names.live.push_back(nx);
    names.live.push_back(nd);
  }
  engine::Engine live(std::move(corpus), live_opts);

  uint64_t expected_publishes = 0;
  uint64_t expected_added = 0;
  uint64_t expected_removed = 0;
  // Coverage guards: the harness must not degenerate into all-error
  // or all-empty batches (both of which would "match" trivially).
  uint64_t ok_results = 0;
  uint64_t nonempty_results = 0;
  uint64_t error_results = 0;

  for (uint64_t iter = 0; iter < iters; ++iter) {
    const size_t batch_size = 4 + rng.Below(4);
    std::vector<std::string> queries;
    queries.reserve(batch_size);
    for (size_t i = 0; i < batch_size; ++i) {
      queries.push_back(MakeQuery(rng, names));
    }

    // The batch runs on the engine pool while this thread publishes
    // new epochs underneath it.
    auto batch = std::async(std::launch::async, [&live, &queries]() {
      return live.RunBatch(queries, 4);
    });

    const int mutations = 1 + static_cast<int>(rng.Below(2));
    for (int m = 0; m < mutations; ++m) {
      if (names.live.size() > 2 && rng.Bernoulli(0.35)) {
        size_t victim = rng.Below(names.live.size());
        std::string name = names.live[victim];
        ASSERT_TRUE(live.RemoveDocument(name).ok()) << name;
        names.live.erase(names.live.begin() + victim);
        names.removed.push_back(std::move(name));
        ++expected_publishes;
        ++expected_removed;
      } else {
        bool xmark = rng.Bernoulli(0.5);
        std::string name = names.Fresh(xmark);
        std::string xml = xmark ? XmarkFlavorXml(rng) : DblpFlavorXml(rng);
        ASSERT_TRUE(
            live.AddDocuments({{name, std::move(xml)}}).ok()) << name;
        names.live.push_back(std::move(name));
        ++expected_publishes;
        ++expected_added;
      }
    }

    std::vector<engine::QueryResult> results = batch.get();
    ASSERT_EQ(results.size(), queries.size());

    // Differential check: a fresh single-epoch engine per distinct
    // pinned snapshot must reproduce each result byte-identically.
    std::map<uint64_t, std::unique_ptr<engine::Engine>> refs;
    for (size_t i = 0; i < results.size(); ++i) {
      const engine::QueryResult& r = results[i];
      ASSERT_NE(r.snapshot, nullptr);
      ASSERT_EQ(r.snapshot->epoch(), r.epoch);
      std::unique_ptr<engine::Engine>& ref = refs[r.epoch];
      if (ref == nullptr) {
        engine::EngineOptions opts = ref_opts;
        opts.rox.seed = seed * 7919 + iter * 131 + r.epoch;
        ref = std::make_unique<engine::Engine>(r.snapshot, opts);
      }
      if (r.ok()) {
        ++ok_results;
        if (!r.items->empty()) ++nonempty_results;
      } else {
        ++error_results;
      }
      engine::QueryResult rr = ref->Run(queries[i]);
      if (r.ok() != rr.ok() ||
          (r.ok() && *r.items != *rr.items) ||
          (!r.ok() && r.status.code() != rr.status.code())) {
        DumpSeed(seed, Describe(cfg, iter, queries[i]));
        DumpTrace(r, Describe(cfg, iter, queries[i]));
        FAIL() << "differential mismatch at " << Describe(cfg, iter, queries[i])
               << "\n  live: "
               << (r.ok() ? std::to_string(r.items->size()) + " items"
                          : r.status.ToString())
               << " (epoch " << r.epoch << ")\n  ref:  "
               << (rr.ok() ? std::to_string(rr.items->size()) + " items"
                           : rr.status.ToString());
      }
    }
  }

  EXPECT_GT(ok_results, iters);        // most queries compile and run
  EXPECT_GT(nonempty_results, iters / 4);  // and plenty return items
  (void)error_results;  // stale-name NotFounds are expected, any count

  engine::EngineStats stats = live.Stats();
  EXPECT_EQ(stats.stale_cache_hits, 0u);
  EXPECT_EQ(stats.publishes, expected_publishes);
  EXPECT_EQ(stats.docs_added, expected_added);
  EXPECT_EQ(stats.docs_removed, expected_removed);
  EXPECT_EQ(live.CurrentEpoch(), expected_publishes);
}

TEST(SnapshotFuzzTest, DifferentialShards1LazyOn) {
  RunDifferentialFuzz({.shards = 1, .lazy = true});
}

TEST(SnapshotFuzzTest, DifferentialShards1LazyOff) {
  RunDifferentialFuzz({.shards = 1, .lazy = false});
}

TEST(SnapshotFuzzTest, DifferentialShards4LazyOn) {
  RunDifferentialFuzz({.shards = 4, .lazy = true});
}

TEST(SnapshotFuzzTest, DifferentialShards4LazyOff) {
  RunDifferentialFuzz({.shards = 4, .lazy = false});
}

// --- governed differential fuzz (DESIGN.md §13) ------------------------------
//
// The same live-corpus setting with query limits thrown in: every query
// randomly draws a tight deadline, a tiny memory budget, both, or
// neither, while this thread publishes new documents underneath the
// batch and occasionally fires KillAll. The properties under test:
//
//   1. A governed query that completes OK is byte-identical to an
//      ungoverned reference run against its pinned snapshot — limits
//      that don't trip must be invisible.
//   2. A query stopped by governance reports exactly one of
//      kCancelled / kDeadlineExceeded / kResourceExhausted.
//   3. The engine survives: later ungoverned queries still work, and
//      the governance counters add up.
//
// Only adds are published (no removals), so compile-time NotFound is
// impossible and every non-OK result must be a governance stop.

TEST(SnapshotFuzzTest, GovernedQueriesUnderConcurrentPublishes) {
  const uint64_t seed = EnvU64("ROX_FUZZ_SEED", kDefaultSeed);
  const uint64_t iters = EnvU64("ROX_FUZZ_ITERS", 40);
  Rng rng(seed ^ 0x60f3e12ULL);

  engine::EngineOptions live_opts;
  live_opts.num_threads = 4;
  live_opts.rox.tau = 20;
  live_opts.rox.seed = seed;

  engine::EngineOptions ref_opts;
  ref_opts.num_threads = 1;
  ref_opts.enable_cache = false;
  ref_opts.rox.tau = 20;

  NameBook names;
  Corpus corpus;
  for (int i = 0; i < 2; ++i) {
    std::string nx = names.Fresh(/*xmark=*/true);
    std::string nd = names.Fresh(/*xmark=*/false);
    ASSERT_TRUE(corpus.AddXml(XmarkFlavorXml(rng), nx).ok());
    ASSERT_TRUE(corpus.AddXml(DblpFlavorXml(rng), nd).ok());
    names.live.push_back(nx);
    names.live.push_back(nd);
  }
  engine::Engine live(std::move(corpus), live_opts);

  uint64_t ok_results = 0;
  uint64_t deadline_stops = 0;
  uint64_t budget_stops = 0;
  uint64_t cancel_stops = 0;

  for (uint64_t iter = 0; iter < iters; ++iter) {
    const size_t batch_size = 4 + rng.Below(4);
    std::vector<std::string> queries;
    std::vector<QueryLimits> limits;
    std::vector<std::future<engine::QueryResult>> futures;
    for (size_t i = 0; i < batch_size; ++i) {
      queries.push_back(MakeQuery(rng, names));
      QueryLimits lim;
      switch (rng.Below(4)) {
        case 0:  // ungoverned
          break;
        case 1:  // effectively-instant deadline: trips at the first poll
          lim.deadline_ms = 0.01;
          break;
        case 2:  // one-byte budget: latches on the first arena block
          lim.memory_budget_bytes = 1;
          break;
        default:  // generous limits: must be invisible
          lim.deadline_ms = 60000;
          lim.memory_budget_bytes = uint64_t{1} << 30;
          break;
      }
      limits.push_back(lim);
      futures.push_back(live.Submit(queries.back(), lim));
    }

    // Publish new epochs underneath the in-flight batch, and
    // occasionally kill whatever happens to be running.
    const int mutations = 1 + static_cast<int>(rng.Below(2));
    for (int m = 0; m < mutations; ++m) {
      bool xmark = rng.Bernoulli(0.5);
      std::string name = names.Fresh(xmark);
      std::string xml = xmark ? XmarkFlavorXml(rng) : DblpFlavorXml(rng);
      ASSERT_TRUE(live.AddDocuments({{name, std::move(xml)}}).ok()) << name;
      names.live.push_back(std::move(name));
    }
    if (rng.Bernoulli(0.25)) live.KillAll();

    for (size_t i = 0; i < batch_size; ++i) {
      engine::QueryResult r = futures[i].get();
      const std::string context =
          "governed iter=" + std::to_string(iter) + " query=[" + queries[i] +
          "] deadline_ms=" + std::to_string(limits[i].deadline_ms) +
          " budget=" + std::to_string(limits[i].memory_budget_bytes);
      if (r.ok()) {
        ++ok_results;
        ASSERT_NE(r.snapshot, nullptr);
        engine::EngineOptions opts = ref_opts;
        opts.rox.seed = seed * 7919 + iter * 131 + i;
        engine::Engine ref(r.snapshot, opts);
        engine::QueryResult rr = ref.Run(queries[i]);
        if (!rr.ok() || *r.items != *rr.items) {
          DumpSeed(seed, context);
          FAIL() << "governed OK result diverges from oracle at " << context;
        }
      } else {
        switch (r.status.code()) {
          case StatusCode::kDeadlineExceeded:
            ++deadline_stops;
            break;
          case StatusCode::kResourceExhausted:
            ++budget_stops;
            break;
          case StatusCode::kCancelled:
            ++cancel_stops;
            break;
          default:
            DumpSeed(seed, context);
            FAIL() << "non-governance failure " << r.status.ToString()
                   << " at " << context;
        }
      }
    }
  }

  // Coverage guards: the run must actually exercise both completion and
  // both deterministic stop kinds (KillAll stops are timing-dependent,
  // so they are reported but not required).
  EXPECT_GT(ok_results, iters);
  EXPECT_GT(deadline_stops, 0u);
  EXPECT_GT(budget_stops, 0u);

  // The engine is intact afterward, and the stats agree with what the
  // futures reported (every cancel was also counted by the engine).
  engine::QueryResult after =
      live.Run("for $p in doc(\"" + names.live[0] + "\")//person return $p");
  ASSERT_TRUE(after.ok()) << after.status.ToString();
  engine::EngineStats stats = live.Stats();
  EXPECT_EQ(stats.queries_deadline_exceeded, deadline_stops);
  EXPECT_EQ(stats.queries_budget_exceeded, budget_stops);
  EXPECT_EQ(stats.queries_cancelled, cancel_stops);
  EXPECT_EQ(stats.stale_cache_hits, 0u);
}

// --- TSan-targeted publish/read race ----------------------------------------
//
// N writer threads race M reader threads through epoch publishes. The
// readers' queries touch only documents no writer ever changes, so
// every epoch must return the identical result — any torn snapshot,
// stale cache entry or mutated pinned state shows up as a mismatch
// (and as a TSan report under -fsanitize=thread).

TEST(SnapshotRaceTest, WritersRacingReadersPreservePinnedEpochs) {
  constexpr int kWriters = 2;
  constexpr int kReaders = 4;
  constexpr int kPublishesPerWriter = 6;
  constexpr int kQueriesPerReader = 12;

  Rng seed_rng(0xace0fbace);
  Corpus corpus;
  ASSERT_TRUE(corpus.AddXml(XmarkFlavorXml(seed_rng), "stable.xml").ok());
  ASSERT_TRUE(corpus.AddXml(DblpFlavorXml(seed_rng), "authors.xml").ok());

  engine::EngineOptions opts;
  opts.num_threads = 4;
  opts.rox.tau = 10;
  engine::Engine eng(std::move(corpus), opts);

  // The numeric predicate forces StringPool::NumericValue reads on the
  // read side while writers intern new strings into the same pool.
  const std::string query =
      "for $o in doc(\"stable.xml\")//open_auction[.//current/text() < 50] "
      "return $o";

  // Pin the initial epoch and record everything a mutation would show.
  std::shared_ptr<const Corpus> pinned = eng.CurrentSnapshot();
  const uint64_t pinned_epoch = pinned->epoch();
  const size_t pinned_slots = pinned->DocCount();
  const uint32_t pinned_nodes = pinned->doc(0).NodeCount();
  engine::QueryResult baseline = eng.Run(query);
  ASSERT_TRUE(baseline.ok()) << baseline.status.ToString();

  std::atomic<uint64_t> adds{0};
  std::atomic<uint64_t> removes{0};
  std::atomic<bool> failed{false};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w]() {
      Rng rng(0xbadc0de + w);
      std::string prev;
      for (int i = 0; i < kPublishesPerWriter; ++i) {
        // Writers use disjoint name spaces, so every publish succeeds.
        std::string name =
            "w" + std::to_string(w) + "_" + std::to_string(i) + ".xml";
        auto ids = eng.AddDocuments({{name, XmarkFlavorXml(rng)}});
        if (!ids.ok()) {
          failed.store(true);
          return;
        }
        adds.fetch_add(1);
        if (!prev.empty() && rng.Bernoulli(0.5)) {
          if (!eng.RemoveDocument(prev).ok()) {
            failed.store(true);
            return;
          }
          removes.fetch_add(1);
          prev.clear();
        } else {
          prev = std::move(name);
        }
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&]() {
      for (int i = 0; i < kQueriesPerReader; ++i) {
        engine::QueryResult res = eng.Run(query);
        if (!res.ok() || res.snapshot == nullptr ||
            res.snapshot->epoch() != res.epoch ||
            *res.items != *baseline.items) {
          failed.store(true);
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_FALSE(failed.load());

  // The pinned snapshot was never mutated by any publish.
  EXPECT_EQ(pinned->epoch(), pinned_epoch);
  EXPECT_EQ(pinned->DocCount(), pinned_slots);
  EXPECT_EQ(pinned->doc(0).NodeCount(), pinned_nodes);
  engine::Engine ref(pinned);
  engine::QueryResult replay = ref.Run(query);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(*replay.items, *baseline.items);

  // Epoch counters are consistent: every successful publish advanced
  // the epoch by exactly one, starting from the pinned epoch.
  engine::EngineStats stats = eng.Stats();
  const uint64_t publishes = adds.load() + removes.load();
  EXPECT_EQ(stats.publishes, publishes);
  EXPECT_EQ(stats.docs_added, adds.load());
  EXPECT_EQ(stats.docs_removed, removes.load());
  EXPECT_EQ(eng.CurrentEpoch(), pinned_epoch + publishes);
  EXPECT_EQ(stats.stale_cache_hits, 0u);
  EXPECT_EQ(stats.epoch, eng.CurrentEpoch());
}

}  // namespace
}  // namespace rox
