#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace rox {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, AsyncReturnsValues) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.Async([i] { return i * i; }));
  }
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(futures[i].get(), i * i);
  }
}

TEST(ThreadPoolTest, AsyncPropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.Async([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, TasksRunOffTheSubmittingThread) {
  ThreadPool pool(2);
  auto f = pool.Async([] { return std::this_thread::get_id(); });
  EXPECT_NE(f.get(), std::this_thread::get_id());
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        count.fetch_add(1);
      });
    }
  }  // ~ThreadPool joins after the queue is empty
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  auto f = pool.Async([] { return 7; });
  EXPECT_EQ(f.get(), 7);
}

TEST(ThreadPoolTest, ParallelTasksOverlap) {
  // With 4 workers, 4 tasks that wait for each other must all be in
  // flight at once — proves tasks are not serialized.
  ThreadPool pool(4);
  std::atomic<int> arrived{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(pool.Async([&arrived] {
      arrived.fetch_add(1);
      while (arrived.load() < 4) std::this_thread::yield();
    }));
  }
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(30)),
              std::future_status::ready);
  }
}

}  // namespace
}  // namespace rox
