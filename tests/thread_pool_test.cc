#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "engine/governor.h"

namespace rox {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, AsyncReturnsValues) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.Async([i] { return i * i; }));
  }
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(futures[i].get(), i * i);
  }
}

TEST(ThreadPoolTest, AsyncPropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.Async([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, TasksRunOffTheSubmittingThread) {
  ThreadPool pool(2);
  auto f = pool.Async([] { return std::this_thread::get_id(); });
  EXPECT_NE(f.get(), std::this_thread::get_id());
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        count.fetch_add(1);
      });
    }
  }  // ~ThreadPool joins after the queue is empty
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  auto f = pool.Async([] { return 7; });
  EXPECT_EQ(f.get(), 7);
}

TEST(ThreadPoolTest, ParallelTasksOverlap) {
  // With 4 workers, 4 tasks that wait for each other must all be in
  // flight at once — proves tasks are not serialized.
  ThreadPool pool(4);
  std::atomic<int> arrived{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(pool.Async([&arrived] {
      arrived.fetch_add(1);
      while (arrived.load() < 4) std::this_thread::yield();
    }));
  }
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(30)),
              std::future_status::ready);
  }
}

// --- governance / abort interaction (DESIGN.md §13) --------------------------

TEST(ThreadPoolTest, CancelledBacklogDrainsThroughDestructor) {
  // Tasks queued behind a cancelled token must still be *executed* by
  // the destructor's drain (the pool never discards work), but each one
  // observes the token and skips its real work.
  CancellationToken token;
  token.Cancel();
  std::atomic<int> executed{0};
  std::atomic<int> worked{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&] {
        executed.fetch_add(1);
        if (StopRequested(&token)) return;  // governed early-exit
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        worked.fetch_add(1);
      });
    }
  }  // ~ThreadPool drains all 200, none doing real work
  EXPECT_EQ(executed.load(), 200);
  EXPECT_EQ(worked.load(), 0);
}

TEST(ThreadPoolTest, ParallelForExceptionRacesCancellation) {
  // One lane throws while the others concurrently cancel the shared
  // token and bail out: the exception must still reach the caller, the
  // done-accounting must not lose the cancelled lanes, and the pool
  // must stay usable.
  ThreadPool pool(4);
  CancellationToken token;
  EXPECT_THROW(
      ParallelFor(&pool, 64,
                  [&](size_t i) {
                    if (i == 0) throw std::runtime_error("lane failure");
                    token.Cancel();
                    if (StopRequested(&token)) return;
                  }),
      std::runtime_error);
  EXPECT_TRUE(token.StopRequested());
  auto f = pool.Async([] { return 7; });
  EXPECT_EQ(f.get(), 7);
}

TEST(ThreadPoolTest, CancelledCallerParticipationDoesNotDeadlock) {
  // Every worker is pinned busy, so the ParallelFor caller must claim
  // all iterations itself; with the token already tripped each claim
  // returns immediately. The call completing (instead of waiting on
  // workers that will never come) is the property under test.
  ThreadPool pool(2);
  std::atomic<bool> release{false};
  for (int i = 0; i < 2; ++i) {
    pool.Submit([&release] {
      while (!release.load()) std::this_thread::yield();
    });
  }
  CancellationToken token;
  token.Cancel();
  std::atomic<size_t> claimed{0};
  std::future<void> done = std::async(std::launch::async, [&] {
    ParallelFor(&pool, 128, [&](size_t) {
      claimed.fetch_add(1);
      if (StopRequested(&token)) return;
      ADD_FAILURE() << "iteration ran real work despite cancelled token";
    });
  });
  ASSERT_EQ(done.wait_for(std::chrono::seconds(30)),
            std::future_status::ready);
  done.get();
  EXPECT_EQ(claimed.load(), 128u);
  release.store(true);
  pool.WaitIdle();
}

}  // namespace
}  // namespace rox
