#include <gtest/gtest.h>

#include <cmath>

#include "workload/dblp.h"
#include "xml/parser.h"
#include "workload/xmark.h"

namespace rox {
namespace {

TEST(DblpSpecTest, TableThreeShape) {
  const auto& docs = Table3Documents();
  ASSERT_EQ(docs.size(), 23u);
  // Spot-check a few entries against the paper's Table 3.
  EXPECT_EQ(docs[0].name, "FuzzyLogicAI");
  EXPECT_EQ(docs[0].author_tags, 62u);
  EXPECT_EQ(docs[22].name, "VLDB");
  EXPECT_EQ(docs[22].author_tags, 6865u);
  // CANS spans AI and BI; CIKM spans DB and IR.
  EXPECT_EQ(docs[3].areas.size(), 2u);
  EXPECT_EQ(docs[17].name, "CIKM");
  EXPECT_EQ(docs[17].areas[0], Area::kDB);
  uint64_t total = 0;
  for (const auto& d : docs) total += d.author_tags;
  EXPECT_GT(total, 80000u);  // ~81k author tags in Table 3
}

class DblpCorpusTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DblpGenOptions opt;
    opt.tag_scale = 0.05;  // small corpus for tests
    auto r = GenerateDblpCorpus(opt);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    corpus_ = new Corpus(std::move(*r));
  }
  static void TearDownTestSuite() {
    delete corpus_;
    corpus_ = nullptr;
  }
  static Corpus* corpus_;
};

Corpus* DblpCorpusTest::corpus_ = nullptr;

TEST_F(DblpCorpusTest, AuthorTagCountsTrackTable3) {
  StringId author = corpus_->Find("author");
  ASSERT_NE(author, kInvalidStringId);
  const auto& specs = Table3Documents();
  for (size_t i = 0; i < specs.size(); ++i) {
    auto id = corpus_->Resolve(specs[i].name);
    ASSERT_TRUE(id.ok());
    uint64_t tags = corpus_->element_index(*id).Count(author);
    uint64_t want = std::max<uint64_t>(
        2, static_cast<uint64_t>(std::llround(specs[i].author_tags * 0.05)));
    EXPECT_EQ(tags, want) << specs[i].name;
  }
}

TEST_F(DblpCorpusTest, SameAreaOverlapExceedsCrossArea) {
  // VLDB vs ICDE (both DB) must share far more authors than VLDB vs
  // AAAI (DB vs AI): this is the correlation the experiments rely on.
  DocId vldb = *corpus_->Resolve("VLDB");
  DocId icde = *corpus_->Resolve("ICDE");
  DocId aaai = *corpus_->Resolve("AAAI");
  uint64_t same = PairJoinSize(*corpus_, vldb, icde);
  uint64_t cross = PairJoinSize(*corpus_, vldb, aaai);
  EXPECT_GT(same, 4 * std::max<uint64_t>(cross, 1));
  EXPECT_GT(same, 0u);
}

TEST_F(DblpCorpusTest, TwoAreaVenueBridges) {
  // CIKM (DB+IR) should overlap both SIGMOD (DB) and SIGIR (IR)
  // substantially.
  DocId cikm = *corpus_->Resolve("CIKM");
  DocId sigmod = *corpus_->Resolve("SIGMOD");
  DocId sigir = *corpus_->Resolve("SIGIR");
  DocId aaai = *corpus_->Resolve("AAAI");
  uint64_t db_side = PairJoinSize(*corpus_, cikm, sigmod);
  uint64_t ir_side = PairJoinSize(*corpus_, cikm, sigir);
  uint64_t unrelated = PairJoinSize(*corpus_, cikm, aaai);
  EXPECT_GT(db_side, unrelated);
  EXPECT_GT(ir_side, unrelated);
}

TEST_F(DblpCorpusTest, CorrelationHigherForSameAreaCombos) {
  std::array<DocId, 4> db_combo = {
      *corpus_->Resolve("VLDB"), *corpus_->Resolve("ICDE"),
      *corpus_->Resolve("SIGMOD"), *corpus_->Resolve("EDBT")};
  std::array<DocId, 4> mixed = {
      *corpus_->Resolve("VLDB"), *corpus_->Resolve("AAAI"),
      *corpus_->Resolve("SIGIR"), *corpus_->Resolve("KDD")};
  EXPECT_GT(CorrelationC(*corpus_, db_combo), CorrelationC(*corpus_, mixed));
}

TEST_F(DblpCorpusTest, HistogramSumsToTagCount) {
  DocId vldb = *corpus_->Resolve("VLDB");
  uint64_t total = 0;
  for (auto [v, n] : AuthorValueHistogram(*corpus_, vldb)) total += n;
  EXPECT_EQ(total,
            corpus_->element_index(vldb).Count(corpus_->Find("author")));
}

TEST(DblpScaleTest, ScaleReplicatesTags) {
  DblpGenOptions opt;
  opt.tag_scale = 0.02;
  std::vector<int> subset = {18};  // ADBIS
  auto x1 = GenerateDblpCorpus(opt, subset);
  opt.scale = 10;
  auto x10 = GenerateDblpCorpus(opt, subset);
  ASSERT_TRUE(x1.ok() && x10.ok());
  StringId a1 = x1->Find("author");
  StringId a10 = x10->Find("author");
  uint64_t n1 = x1->element_index(0).Count(a1);
  uint64_t n10 = x10->element_index(0).Count(a10);
  EXPECT_EQ(n10, 10 * n1);
}

TEST(DblpScaleTest, ScalingPreservesJoinSelectivityShape) {
  // js(x10) ≈ 10 × js(x1): each author value splits into 10 distinct
  // suffixed values with the same per-replica frequencies, so the join
  // size scales linearly (not quadratically) — the paper's "maintain
  // the original data distribution and correlation".
  DblpGenOptions opt;
  opt.tag_scale = 0.02;
  std::vector<int> subset = {20, 22};  // SIGMOD, VLDB
  auto x1 = GenerateDblpCorpus(opt, subset);
  opt.scale = 10;
  auto x10 = GenerateDblpCorpus(opt, subset);
  ASSERT_TRUE(x1.ok() && x10.ok());
  uint64_t j1 = PairJoinSize(*x1, 0, 1);
  uint64_t j10 = PairJoinSize(*x10, 0, 1);
  ASSERT_GT(j1, 0u);
  EXPECT_EQ(j10, 10 * j1);
}

TEST(DblpSubsetTest, SubsetIndependentContent) {
  // A document's content must not depend on which other documents are
  // generated alongside it.
  DblpGenOptions opt;
  opt.tag_scale = 0.02;
  auto solo = GenerateDblpCorpus(opt, {22});
  auto pair = GenerateDblpCorpus(opt, {0, 22});
  ASSERT_TRUE(solo.ok() && pair.ok());
  DocId v1 = *solo->Resolve("VLDB");
  DocId v2 = *pair->Resolve("VLDB");
  EXPECT_EQ(solo->doc(v1).NodeCount(), pair->doc(v2).NodeCount());
}

TEST(AreaGroupTest, Classification) {
  const auto& specs = Table3Documents();
  // VLDB, ICDE, SIGMOD, EDBT: all DB.
  EXPECT_EQ(AreaGroup(specs, {22, 21, 20, 19}), "4:0");
  // VLDB, ICDE, SIGMOD + AAAI: 3 DB + 1 AI.
  EXPECT_EQ(AreaGroup(specs, {22, 21, 20, 2}), "3:1");
  // VLDB, ICDE + AAAI, AIinMedicine: 2 DB + 2 AI.
  EXPECT_EQ(AreaGroup(specs, {22, 21, 2, 1}), "2:2");
  // VLDB + AAAI + SIGIR + KDD: 1+1+1+1 — none of the groups.
  EXPECT_EQ(AreaGroup(specs, {22, 2, 14, 9}), "");
}

TEST(DblpGraphTest, FigureFourShape) {
  DblpGenOptions opt;
  opt.tag_scale = 0.01;
  auto corpus = GenerateDblpCorpus(opt, {19, 20, 21, 22});
  ASSERT_TRUE(corpus.ok());
  DblpQueryGraph q = BuildDblpJoinGraph(*corpus, {0, 1, 2, 3});
  // 12 vertices (4 × root/author/text); root steps pruned; 4 author/text
  // steps + 6 equi-join clique edges.
  EXPECT_EQ(q.graph.VertexCount(), 12u);
  EXPECT_EQ(q.graph.EdgeCount(), 10u);
  EXPECT_TRUE(q.graph.Validate().ok());
  EXPECT_TRUE(q.graph.IsConnected());
}


TEST(DblpGenPathTest, DirectAndXmlTextPathsIdentical) {
  // The builder-direct and XML-text generation paths must produce the
  // same shredded document (the text path additionally exercises the
  // parser).
  DblpGenOptions opt;
  opt.tag_scale = 0.02;
  auto direct = GenerateDblpCorpus(opt, {20, 18});
  opt.via_xml_text = true;
  auto text = GenerateDblpCorpus(opt, {20, 18});
  ASSERT_TRUE(direct.ok() && text.ok());
  for (DocId d = 0; d < 2; ++d) {
    ASSERT_EQ(direct->doc(d).NodeCount(), text->doc(d).NodeCount());
    EXPECT_EQ(SerializeXml(direct->doc(d)), SerializeXml(text->doc(d)));
  }
}

// --- XMark ---------------------------------------------------------------------

TEST(XmarkTest, GeneratesValidDocument) {
  Corpus corpus;
  XmarkGenOptions opt;
  opt.items = 50;
  opt.persons = 60;
  opt.open_auctions = 40;
  auto doc = GenerateXmarkDocument(corpus, opt);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  StringId oa = corpus.Find("open_auction");
  EXPECT_EQ(corpus.element_index(*doc).Count(oa), 40u);
  EXPECT_EQ(corpus.element_index(*doc).Count(corpus.Find("item")), 50u);
  EXPECT_EQ(corpus.element_index(*doc).Count(corpus.Find("person")), 60u);
}

TEST(XmarkTest, PriceBidderCorrelationPresent) {
  Corpus corpus;
  XmarkGenOptions opt;
  opt.open_auctions = 400;
  opt.items = 100;
  opt.persons = 100;
  auto doc_id = GenerateXmarkDocument(corpus, opt);
  ASSERT_TRUE(doc_id.ok());
  const Document& doc = corpus.doc(*doc_id);
  StringId s_oa = corpus.Find("open_auction");
  StringId s_bidder = corpus.Find("bidder");
  StringId s_current = corpus.Find("current");
  double cheap_bidders = 0, cheap_n = 0, rich_bidders = 0, rich_n = 0;
  for (Pre p : corpus.element_index(*doc_id).Lookup(s_oa)) {
    double price = -1;
    uint64_t bidders = 0;
    for (Pre q = p + 1; q <= p + doc.Size(p); ++q) {
      if (doc.Kind(q) != NodeKind::kElem) continue;
      if (doc.Name(q) == s_current) {
        auto num = corpus.string_pool().NumericValue(
            doc.SingleTextChildValue(q));
        if (num) price = *num;
      } else if (doc.Name(q) == s_bidder) {
        ++bidders;
      }
    }
    ASSERT_GE(price, 0.0);
    if (price < 145) {
      cheap_bidders += bidders;
      ++cheap_n;
    } else {
      rich_bidders += bidders;
      ++rich_n;
    }
  }
  ASSERT_GT(cheap_n, 0);
  ASSERT_GT(rich_n, 0);
  // Expensive auctions attract clearly more bidders (§3.2's premise).
  EXPECT_GT(rich_bidders / rich_n, 1.5 * (cheap_bidders / cheap_n));
}

TEST(XmarkTest, Q1GraphShape) {
  Corpus corpus;
  XmarkGenOptions opt;
  opt.items = 20;
  opt.persons = 20;
  opt.open_auctions = 20;
  auto doc = GenerateXmarkDocument(corpus, opt);
  ASSERT_TRUE(doc.ok());
  XmarkQ1Graph q = BuildXmarkQ1Graph(corpus, *doc, 145.0, true);
  EXPECT_TRUE(q.graph.Validate().ok());
  EXPECT_TRUE(q.graph.IsConnected());
  // 16 vertices; 15 steps + 2 equi-joins - 3 pruned root edges = 14.
  EXPECT_EQ(q.graph.VertexCount(), 16u);
  EXPECT_EQ(q.graph.EdgeCount(), 14u);
}

}  // namespace
}  // namespace rox
