#include <gtest/gtest.h>

#include "xml/document.h"
#include "xml/parser.h"
#include "xml/string_pool.h"

namespace rox {
namespace {

std::unique_ptr<Document> Parse(std::string_view xml,
                                XmlParseOptions opts = {}) {
  auto r = ParseXml(xml, "test.xml", nullptr, opts);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(StringPoolTest, InternDedupes) {
  StringPool pool;
  StringId a = pool.Intern("hello");
  StringId b = pool.Intern("world");
  StringId c = pool.Intern("hello");
  EXPECT_EQ(a, c);
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.Get(a), "hello");
  EXPECT_EQ(pool.size(), 2u);
}

TEST(StringPoolTest, FindWithoutIntern) {
  StringPool pool;
  EXPECT_EQ(pool.Find("missing"), kInvalidStringId);
  StringId a = pool.Intern("x");
  EXPECT_EQ(pool.Find("x"), a);
}

TEST(StringPoolTest, NumericValues) {
  StringPool pool;
  EXPECT_EQ(pool.NumericValue(pool.Intern("145")), 145.0);
  EXPECT_EQ(pool.NumericValue(pool.Intern("-2.5")), -2.5);
  EXPECT_FALSE(pool.NumericValue(pool.Intern("12abc")).has_value());
  EXPECT_FALSE(pool.NumericValue(pool.Intern("")).has_value());
}

TEST(StringPoolTest, ViewsSurviveGrowth) {
  StringPool pool;
  StringId first = pool.Intern("stable");
  for (int i = 0; i < 10000; ++i) pool.Intern("filler_" + std::to_string(i));
  // Re-interning must still find the original id.
  EXPECT_EQ(pool.Intern("stable"), first);
}

TEST(DocumentBuilderTest, PreSizeLevel) {
  DocumentBuilder b("d", nullptr);
  b.StartElement("a");      // pre 1
  b.StartElement("b");      // pre 2
  b.Text("t");              // pre 3
  b.EndElement();
  b.StartElement("c");      // pre 4
  b.EndElement();
  b.EndElement();
  auto doc = std::move(b).Finish();
  ASSERT_TRUE(doc.ok());
  const Document& d = **doc;
  ASSERT_EQ(d.NodeCount(), 5u);
  EXPECT_EQ(d.Kind(0), NodeKind::kDoc);
  EXPECT_EQ(d.Size(0), 4u);
  EXPECT_EQ(d.Level(0), 0);
  EXPECT_EQ(d.Size(1), 3u);  // a contains b, t, c
  EXPECT_EQ(d.Level(1), 1);
  EXPECT_EQ(d.Size(2), 1u);  // b contains t
  EXPECT_EQ(d.Level(3), 3);
  EXPECT_EQ(d.Parent(4), 1u);
  EXPECT_EQ(d.Parent(0), kInvalidPre);
}

TEST(DocumentBuilderTest, UnbalancedFails) {
  DocumentBuilder b("d", nullptr);
  b.StartElement("a");
  auto doc = std::move(b).Finish();
  EXPECT_FALSE(doc.ok());
}

TEST(DocumentBuilderTest, AttributesInlineAfterElement) {
  DocumentBuilder b("d", nullptr);
  b.StartElement("e");
  b.Attribute("id", "42");
  b.Attribute("name", "x");
  b.Text("body");
  b.EndElement();
  auto doc = std::move(b).Finish();
  ASSERT_TRUE(doc.ok());
  const Document& d = **doc;
  EXPECT_EQ(d.Kind(2), NodeKind::kAttr);
  EXPECT_EQ(d.Kind(3), NodeKind::kAttr);
  EXPECT_EQ(d.Kind(4), NodeKind::kText);
  EXPECT_EQ(d.Parent(2), 1u);
  EXPECT_EQ(d.NameStr(2), "id");
  EXPECT_EQ(d.ValueStr(2), "42");
  EXPECT_EQ(d.Size(1), 3u);
}

TEST(ParserTest, SimpleDocument) {
  auto d = Parse("<a><b x='1'>hi</b><c/></a>");
  ASSERT_EQ(d->NodeCount(), 6u);  // doc, a, b, @x, text, c
  EXPECT_EQ(d->NameStr(1), "a");
  EXPECT_EQ(d->NameStr(2), "b");
  EXPECT_EQ(d->Kind(3), NodeKind::kAttr);
  EXPECT_EQ(d->ValueStr(4), "hi");
  EXPECT_EQ(d->NameStr(5), "c");
}

TEST(ParserTest, EntitiesAndCharRefs) {
  auto d = Parse("<a>&lt;x&gt; &amp; &quot;y&quot; &#65;&#x42;</a>");
  EXPECT_EQ(d->ValueStr(2), "<x> & \"y\" AB");
}

TEST(ParserTest, CdataSection) {
  auto d = Parse("<a><![CDATA[<not-a-tag> & raw]]></a>");
  EXPECT_EQ(d->ValueStr(2), "<not-a-tag> & raw");
}

TEST(ParserTest, WhitespaceTextSkippedByDefault) {
  auto d = Parse("<a>\n  <b>x</b>\n</a>");
  // doc, a, b, "x" — the whitespace runs are dropped.
  EXPECT_EQ(d->NodeCount(), 4u);
}

TEST(ParserTest, WhitespaceKeptWhenRequested) {
  XmlParseOptions opts;
  opts.skip_whitespace_text = false;
  auto d = Parse("<a> <b>x</b> </a>", opts);
  EXPECT_EQ(d->NodeCount(), 6u);
}

TEST(ParserTest, CommentsAndPis) {
  XmlParseOptions opts;
  opts.keep_comments = true;
  opts.keep_pis = true;
  auto d = Parse("<?xml version='1.0'?><a><!--note--><?tgt data?></a>", opts);
  EXPECT_EQ(d->Kind(2), NodeKind::kComment);
  EXPECT_EQ(d->ValueStr(2), "note");
  EXPECT_EQ(d->Kind(3), NodeKind::kPi);
  EXPECT_EQ(d->NameStr(3), "tgt");
}

TEST(ParserTest, DoctypeSkipped) {
  auto d = Parse("<!DOCTYPE a [<!ELEMENT a ANY>]><a>x</a>");
  EXPECT_EQ(d->NameStr(1), "a");
}

TEST(ParserTest, MismatchedTagFails) {
  auto r = ParseXml("<a><b></a></b>", "bad.xml");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(ParserTest, UnterminatedFails) {
  EXPECT_FALSE(ParseXml("<a><b>", "bad.xml").ok());
  EXPECT_FALSE(ParseXml("<a foo='1>x</a>", "bad.xml").ok());
  EXPECT_FALSE(ParseXml("", "bad.xml").ok());
}

TEST(ParserTest, TrailingContentFails) {
  EXPECT_FALSE(ParseXml("<a/><b/>", "bad.xml").ok());
}

TEST(SerializerTest, RoundTrip) {
  const char* xml =
      "<site><person id=\"p1\"><name>A &amp; B</name></person>"
      "<empty/></site>";
  auto d = Parse(xml);
  std::string out = SerializeXml(*d);
  // Re-parse the serialized form: structurally identical.
  auto d2 = Parse(out);
  EXPECT_EQ(d->NodeCount(), d2->NodeCount());
  EXPECT_EQ(SerializeXml(*d2), out);
}

TEST(SerializerTest, SubtreeSerialization) {
  auto d = Parse("<a><b>x</b><c>y</c></a>");
  EXPECT_EQ(SerializeSubtree(*d, 2), "<b>x</b>");
}

TEST(DocumentTest, TypedValueConcatenatesDescendantText) {
  auto d = Parse("<a>x<b>y</b>z</a>");
  EXPECT_EQ(d->TypedValue(1), "xyz");
}

TEST(DocumentTest, SingleTextChildValue) {
  auto d = Parse("<r><one>alpha</one><two>a<i>b</i></two><none/></r>");
  const StringPool& pool = d->pool();
  StringId v = d->SingleTextChildValue(2);  // <one>
  ASSERT_NE(v, kInvalidStringId);
  EXPECT_EQ(pool.Get(v), "alpha");
  // <two> has a text child and an element child with its own text; only
  // direct single text child counts, and "a" is its single direct text.
  StringId v2 = d->SingleTextChildValue(4);
  ASSERT_NE(v2, kInvalidStringId);
  EXPECT_EQ(pool.Get(v2), "a");
  // <none> has no text child.
  Pre none = d->NodeCount() - 1;
  EXPECT_EQ(d->SingleTextChildValue(none), kInvalidStringId);
}

TEST(DocumentTest, AttributeValue) {
  auto d = Parse("<e a=\"1\" b=\"2\"><f c=\"3\"/></e>");
  StringId a = d->pool().Find("a");
  StringId b = d->pool().Find("b");
  StringId c = d->pool().Find("c");
  EXPECT_EQ(d->pool().Get(d->AttributeValue(1, a)), "1");
  EXPECT_EQ(d->pool().Get(d->AttributeValue(1, b)), "2");
  EXPECT_EQ(d->AttributeValue(1, c), kInvalidStringId);
}

TEST(DocumentTest, IsAncestor) {
  auto d = Parse("<a><b><c/></b><d/></a>");
  // pres: doc=0, a=1, b=2, c=3, d=4
  EXPECT_TRUE(d->IsAncestor(1, 3));
  EXPECT_TRUE(d->IsAncestor(2, 3));
  EXPECT_FALSE(d->IsAncestor(3, 2));
  EXPECT_FALSE(d->IsAncestor(2, 4));
  EXPECT_FALSE(d->IsAncestor(2, 2));
}

TEST(DocumentTest, CountElements) {
  auto d = Parse("<a><x/><x/><y><x/></y></a>");
  StringId x = d->pool().Find("x");
  EXPECT_EQ(d->CountElements(x), 3u);
}

TEST(DocumentTest, SharedPoolAcrossDocuments) {
  auto pool = std::make_shared<StringPool>();
  auto d1 = ParseXml("<a>shared</a>", "d1", pool);
  auto d2 = ParseXml("<b>shared</b>", "d2", pool);
  ASSERT_TRUE(d1.ok() && d2.ok());
  // Same interned id for the same value in both documents.
  EXPECT_EQ((*d1)->Value(2), (*d2)->Value(2));
}

}  // namespace
}  // namespace rox
