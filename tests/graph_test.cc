#include <gtest/gtest.h>

#include "graph/join_graph.h"
#include "index/corpus.h"

namespace rox {
namespace {

// Tiny corpus so vertices can reference real documents/names.
class JoinGraphTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto d1 = corpus_.AddXml("<a><x>1</x></a>", "d1");
    auto d2 = corpus_.AddXml("<b><y>1</y></b>", "d2");
    ASSERT_TRUE(d1.ok() && d2.ok());
    doc1_ = *d1;
    doc2_ = *d2;
  }
  Corpus corpus_;
  DocId doc1_ = 0, doc2_ = 0;
};

TEST_F(JoinGraphTest, BuildAndValidate) {
  JoinGraph g;
  VertexId root = g.AddRoot(doc1_);
  VertexId x = g.AddElement(doc1_, corpus_.Find("x"), "x");
  VertexId t = g.AddText(doc1_);
  g.AddStep(root, Axis::kDescendant, x);
  g.AddStep(x, Axis::kChild, t);
  EXPECT_TRUE(g.Validate().ok());
  EXPECT_TRUE(g.IsConnected());
  EXPECT_EQ(g.VertexCount(), 3u);
  EXPECT_EQ(g.EdgeCount(), 2u);
  EXPECT_EQ(g.IncidentEdges(x).size(), 2u);
}

TEST_F(JoinGraphTest, StepAcrossDocumentsRejected) {
  JoinGraph g;
  VertexId a = g.AddElement(doc1_, corpus_.Find("x"), "x");
  VertexId b = g.AddElement(doc2_, corpus_.Find("y"), "y");
  // AddStep CHECKs on doc mismatch in debug; build the bad edge as an
  // equi-join and then validate a manually corrupted step instead.
  g.AddEquiJoin(a, b);
  EXPECT_TRUE(g.Validate().ok());
}

TEST_F(JoinGraphTest, EquiJoinOnRootRejected) {
  JoinGraph g;
  VertexId r = g.AddRoot(doc1_);
  VertexId t = g.AddText(doc2_);
  g.AddEquiJoin(r, t);
  EXPECT_FALSE(g.Validate().ok());
}

TEST_F(JoinGraphTest, ThetaEdgesCarryTheirOperatorAndSkipClosure) {
  JoinGraph g;
  VertexId t1 = g.AddText(doc1_, ValuePredicate::None(), "t1");
  VertexId t2 = g.AddText(doc1_, ValuePredicate::None(), "t2");
  VertexId t3 = g.AddText(doc2_, ValuePredicate::None(), "t3");
  g.AddEquiJoin(t1, t2);
  EdgeId lt = g.AddValueJoin(t2, t3, CmpOp::kLt);
  EXPECT_TRUE(g.Validate().ok());
  EXPECT_EQ(g.edge(lt).cmp, CmpOp::kLt);
  EXPECT_FALSE(g.edge(lt).IsEquiJoin());
  EXPECT_EQ(g.edge(lt).CmpFrom(t2), CmpOp::kLt);
  EXPECT_EQ(g.edge(lt).CmpFrom(t3), CmpOp::kGt);
  // Theta edges form no equivalence class: nothing to close.
  EXPECT_EQ(g.AddEquivalenceClosure(), 0);
  EXPECT_EQ(g.EdgeCount(), 2u);
  EXPECT_NE(g.EdgeLabel(lt).find("<"), std::string::npos);
  // Component split preserves the operator.
  auto comps = SplitConnectedComponents(g);
  ASSERT_EQ(comps.size(), 1u);
  int theta = 0;
  for (EdgeId e = 0; e < comps[0].graph.EdgeCount(); ++e) {
    theta += comps[0].graph.edge(e).cmp == CmpOp::kLt;
  }
  EXPECT_EQ(theta, 1);
}

TEST_F(JoinGraphTest, ValuePredicateMatchesAllKinds) {
  const Document& doc = corpus_.doc(doc1_);
  // Find a text node and its value.
  Pre text = kInvalidPre;
  for (Pre p = 0; p < doc.NodeCount(); ++p) {
    if (doc.Kind(p) == NodeKind::kText) {
      text = p;
      break;
    }
  }
  ASSERT_NE(text, kInvalidPre);
  StringId v = doc.Value(text);
  EXPECT_TRUE(ValuePredicate::None().Matches(doc, text));
  EXPECT_TRUE(ValuePredicate::Equals(v).Matches(doc, text));
  EXPECT_FALSE(ValuePredicate::NotEquals(v).Matches(doc, text));
  EXPECT_TRUE(ValuePredicate::NotEquals(v + 12345).Matches(doc, text));
  std::vector<ValuePredicate> terms;
  terms.push_back(ValuePredicate::NotEquals(v));
  terms.push_back(ValuePredicate::Equals(v));
  EXPECT_TRUE(ValuePredicate::AnyOf(terms).Matches(doc, text));
  std::vector<ValuePredicate> miss;
  miss.push_back(ValuePredicate::NotEquals(v));
  EXPECT_FALSE(ValuePredicate::AnyOf(miss).Matches(doc, text));
}

TEST_F(JoinGraphTest, EquivalenceClosure) {
  JoinGraph g;
  VertexId t1 = g.AddText(doc1_, ValuePredicate::None(), "t1");
  VertexId t2 = g.AddText(doc1_, ValuePredicate::None(), "t2");
  VertexId t3 = g.AddText(doc2_, ValuePredicate::None(), "t3");
  VertexId t4 = g.AddText(doc2_, ValuePredicate::None(), "t4");
  g.AddEquiJoin(t1, t2);
  g.AddEquiJoin(t1, t3);
  g.AddEquiJoin(t1, t4);
  // A 4-clique needs 6 edges; 3 exist, closure adds 3.
  EXPECT_EQ(g.AddEquivalenceClosure(), 3);
  EXPECT_EQ(g.EdgeCount(), 6u);
  // Added edges are flagged as derived.
  int derived = 0;
  for (EdgeId e = 0; e < g.EdgeCount(); ++e) {
    derived += g.edge(e).derived_equivalence;
  }
  EXPECT_EQ(derived, 3);
  // Idempotent.
  EXPECT_EQ(g.AddEquivalenceClosure(), 0);
}

TEST_F(JoinGraphTest, ClosureKeepsSeparateClassesApart) {
  JoinGraph g;
  VertexId a1 = g.AddText(doc1_, ValuePredicate::None(), "a1");
  VertexId a2 = g.AddText(doc1_, ValuePredicate::None(), "a2");
  VertexId b1 = g.AddText(doc2_, ValuePredicate::None(), "b1");
  VertexId b2 = g.AddText(doc2_, ValuePredicate::None(), "b2");
  g.AddEquiJoin(a1, a2);
  g.AddEquiJoin(b1, b2);
  EXPECT_EQ(g.AddEquivalenceClosure(), 0);  // two separate classes
}

TEST_F(JoinGraphTest, PruneRedundantRootEdges) {
  JoinGraph g;
  VertexId root = g.AddRoot(doc1_);
  VertexId x = g.AddElement(doc1_, corpus_.Find("x"), "x");
  VertexId t = g.AddText(doc1_);
  g.AddStep(root, Axis::kDescendant, x);
  g.AddStep(x, Axis::kChild, t);
  EXPECT_EQ(g.PruneRedundantRootEdges(), 1);
  EXPECT_EQ(g.EdgeCount(), 1u);
  // The root is now isolated but the rest stays connected.
  EXPECT_TRUE(g.IsConnected());
}

TEST_F(JoinGraphTest, PruneKeepsNecessaryRootEdges) {
  JoinGraph g;
  VertexId root = g.AddRoot(doc1_);
  VertexId x = g.AddElement(doc1_, corpus_.Find("x"), "x");
  // x has no other edge: pruning would disconnect it.
  g.AddStep(root, Axis::kDescendant, x);
  EXPECT_EQ(g.PruneRedundantRootEdges(), 0);
  EXPECT_EQ(g.EdgeCount(), 1u);
}

TEST_F(JoinGraphTest, PruneLeavesChildRootSteps) {
  JoinGraph g;
  VertexId root = g.AddRoot(doc1_);
  VertexId x = g.AddElement(doc1_, corpus_.Find("x"), "x");
  VertexId t = g.AddText(doc1_);
  g.AddStep(root, Axis::kChild, x);  // /x is NOT redundant
  g.AddStep(x, Axis::kChild, t);
  EXPECT_EQ(g.PruneRedundantRootEdges(), 0);
}

TEST_F(JoinGraphTest, UnexecutedDegree) {
  JoinGraph g;
  VertexId a = g.AddElement(doc1_, corpus_.Find("x"), "a");
  VertexId b = g.AddText(doc1_);
  VertexId c = g.AddText(doc1_);
  g.AddStep(a, Axis::kChild, b);
  g.AddStep(a, Axis::kChild, c);
  std::vector<bool> executed = {false, false};
  EXPECT_EQ(g.UnexecutedDegree(a, executed), 2);
  executed[0] = true;
  EXPECT_EQ(g.UnexecutedDegree(a, executed), 1);
  EXPECT_EQ(g.UnexecutedDegree(b, executed), 0);
}

TEST_F(JoinGraphTest, Disconnected) {
  JoinGraph g;
  VertexId a = g.AddElement(doc1_, corpus_.Find("x"), "a");
  VertexId b = g.AddText(doc1_);
  VertexId c = g.AddElement(doc2_, corpus_.Find("y"), "c");
  VertexId d = g.AddText(doc2_);
  g.AddStep(a, Axis::kChild, b);
  g.AddStep(c, Axis::kChild, d);
  EXPECT_FALSE(g.IsConnected());
}


TEST_F(JoinGraphTest, SplitConnectedComponents) {
  JoinGraph g;
  VertexId a = g.AddElement(doc1_, corpus_.Find("x"), "a");
  VertexId b = g.AddText(doc1_, ValuePredicate::None(), "b");
  VertexId c = g.AddElement(doc2_, corpus_.Find("y"), "c");
  VertexId d = g.AddText(doc2_, ValuePredicate::None(), "d");
  VertexId isolated = g.AddRoot(doc1_, "iso");
  g.AddStep(a, Axis::kChild, b);
  g.AddStep(c, Axis::kDescendant, d);
  auto comps = SplitConnectedComponents(g);
  ASSERT_EQ(comps.size(), 3u);
  int edged = 0, empty = 0;
  for (const auto& comp : comps) {
    if (comp.graph.EdgeCount() > 0) {
      ++edged;
      EXPECT_EQ(comp.graph.VertexCount(), 2u);
      EXPECT_TRUE(comp.graph.IsConnected());
      // Vertex annotations survive the split.
      for (VertexId v = 0; v < comp.graph.VertexCount(); ++v) {
        EXPECT_EQ(comp.graph.vertex(v).label,
                  g.vertex(comp.orig_vertex[v]).label);
      }
      // Edge axis preserved.
      EXPECT_EQ(comp.graph.edge(0).axis, g.edge(comp.orig_edge[0]).axis);
    } else {
      ++empty;
      EXPECT_EQ(comp.orig_vertex.size(), 1u);
      EXPECT_EQ(comp.orig_vertex[0], isolated);
    }
  }
  EXPECT_EQ(edged, 2);
  EXPECT_EQ(empty, 1);
}

TEST_F(JoinGraphTest, SplitOfConnectedGraphIsIdentity) {
  JoinGraph g;
  VertexId a = g.AddElement(doc1_, corpus_.Find("x"), "a");
  VertexId b = g.AddText(doc1_);
  g.AddStep(a, Axis::kChild, b);
  auto comps = SplitConnectedComponents(g);
  ASSERT_EQ(comps.size(), 1u);
  EXPECT_EQ(comps[0].graph.VertexCount(), g.VertexCount());
  EXPECT_EQ(comps[0].graph.EdgeCount(), g.EdgeCount());
}

TEST_F(JoinGraphTest, DotExport) {
  JoinGraph g;
  VertexId a = g.AddElement(doc1_, corpus_.Find("x"), "x-elem");
  VertexId t = g.AddText(doc1_, ValuePredicate::None(), "t");
  VertexId u = g.AddText(doc2_, ValuePredicate::None(), "u");
  g.AddStep(a, Axis::kDescendant, t);
  g.AddEquiJoin(t, u);
  std::string dot = g.ToDot();
  EXPECT_NE(dot.find("x-elem"), std::string::npos);
  EXPECT_NE(dot.find("descendant"), std::string::npos);
  EXPECT_NE(dot.find("\"=\""), std::string::npos);
}

TEST(VertexTest, IndexSelectable) {
  Vertex v;
  v.type = VertexType::kRoot;
  EXPECT_TRUE(v.IndexSelectable());
  v.type = VertexType::kElement;
  v.name = kInvalidStringId;
  EXPECT_FALSE(v.IndexSelectable());
  v.name = 1;
  EXPECT_TRUE(v.IndexSelectable());
  v.type = VertexType::kText;
  v.pred = ValuePredicate::None();
  EXPECT_FALSE(v.IndexSelectable());
  v.pred = ValuePredicate::Equals(3);
  EXPECT_TRUE(v.IndexSelectable());
  v.pred = ValuePredicate::Range(NumericRange::LessThan(5));
  EXPECT_TRUE(v.IndexSelectable());
}

}  // namespace
}  // namespace rox
