// Tests for corpus versioning (DESIGN.md §10): CorpusBuilder copy-on-
// write deltas, CorpusSnapshot pinning, incremental ShardedCorpus
// rebuilds, live Engine ingestion, and the epoch-keyed query cache
// (stale hits must be impossible).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "index/corpus.h"
#include "index/sharded_corpus.h"
#include "xq/compile.h"

namespace rox {
namespace {

// A small library document with `books` <book> elements.
std::string LibraryXml(int books, const std::string& tag = "book") {
  std::string xml = "<lib>";
  for (int i = 0; i < books; ++i) {
    xml += "<" + tag + "><title>t" + std::to_string(i) + "</title><year>" +
           std::to_string(2000 + i) + "</year></" + tag + ">";
  }
  xml += "</lib>";
  return xml;
}

Corpus MakeBaseCorpus() {
  Corpus corpus;
  EXPECT_TRUE(corpus.AddXml(LibraryXml(3), "a.xml").ok());
  EXPECT_TRUE(corpus.AddXml(LibraryXml(5), "b.xml").ok());
  return corpus;
}

// --- CorpusBuilder ----------------------------------------------------------

TEST(CorpusBuilderTest, BuildStampsNextEpochAndSharesUnchangedDocs) {
  Corpus base = MakeBaseCorpus();
  EXPECT_EQ(base.epoch(), 0u);

  CorpusBuilder builder(base);
  auto id = builder.AddXml(LibraryXml(7), "c.xml");
  ASSERT_TRUE(id.ok());
  Corpus next = std::move(builder).Build();

  EXPECT_EQ(next.epoch(), 1u);
  EXPECT_EQ(next.DocCount(), 3u);
  EXPECT_EQ(next.LiveDocCount(), 3u);
  // The base epoch is untouched.
  EXPECT_EQ(base.epoch(), 0u);
  EXPECT_EQ(base.DocCount(), 2u);
  EXPECT_FALSE(base.Resolve("c.xml").ok());
  // Unchanged documents are shared by pointer (copy-on-write), not
  // copied.
  EXPECT_EQ(next.DocPtrOrNull(0), base.DocPtrOrNull(0));
  EXPECT_EQ(next.DocPtrOrNull(1), base.DocPtrOrNull(1));
  EXPECT_EQ(&next.element_index(0), &base.element_index(0));
  EXPECT_EQ(&next.value_index(1), &base.value_index(1));
}

TEST(CorpusBuilderTest, RemoveTombstonesWithoutDisturbingTheBase) {
  Corpus base = MakeBaseCorpus();
  CorpusBuilder builder(base);
  ASSERT_TRUE(builder.Remove("a.xml").ok());
  EXPECT_FALSE(builder.Remove("nope.xml").ok());
  Corpus next = std::move(builder).Build();

  // The slot stays (DocIds are never reused) but is dead.
  EXPECT_EQ(next.DocCount(), 2u);
  EXPECT_EQ(next.LiveDocCount(), 1u);
  EXPECT_FALSE(next.IsLive(0));
  EXPECT_TRUE(next.IsLive(1));
  EXPECT_FALSE(next.Resolve("a.xml").ok());
  EXPECT_TRUE(next.Resolve("b.xml").ok());
  // The base still serves the removed document.
  EXPECT_TRUE(base.IsLive(0));
  EXPECT_TRUE(base.Resolve("a.xml").ok());
  EXPECT_EQ(base.doc(0).name(), "a.xml");
}

TEST(CorpusBuilderTest, ReaddedNameGetsFreshDocId) {
  Corpus base = MakeBaseCorpus();
  CorpusBuilder b1(base);
  ASSERT_TRUE(b1.Remove("a.xml").ok());
  Corpus e1 = std::move(b1).Build();

  CorpusBuilder b2(e1);
  auto id = b2.AddXml(LibraryXml(9), "a.xml");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 2u);  // appended, slot 0 is never reused
  Corpus e2 = std::move(b2).Build();
  EXPECT_EQ(e2.epoch(), 2u);
  EXPECT_FALSE(e2.IsLive(0));
  ASSERT_TRUE(e2.Resolve("a.xml").ok());
  EXPECT_EQ(*e2.Resolve("a.xml"), 2u);
}

TEST(CorpusBuilderTest, DuplicateNameIsRejected) {
  Corpus base = MakeBaseCorpus();
  CorpusBuilder builder(base);
  EXPECT_FALSE(builder.AddXml(LibraryXml(1), "a.xml").ok());
}

TEST(CorpusBuilderTest, StringPoolIsSharedAndAppendOnlyAcrossEpochs) {
  Corpus base = MakeBaseCorpus();
  StringId title = base.Find("title");
  ASSERT_NE(title, kInvalidStringId);
  size_t size_before = base.string_pool().size();

  CorpusBuilder builder(base);
  ASSERT_TRUE(builder.AddXml(LibraryXml(2, "novel"), "c.xml").ok());
  Corpus next = std::move(builder).Build();

  // One pool per lineage: interned ids stay stable across epochs.
  EXPECT_EQ(next.pool().get(), base.pool().get());
  EXPECT_EQ(next.Find("title"), title);
  EXPECT_EQ(next.string_pool().Get(title), "title");
  EXPECT_NE(next.Find("novel"), kInvalidStringId);
  EXPECT_GT(next.string_pool().size(), size_before);
}

// --- CorpusSnapshot ---------------------------------------------------------

TEST(CorpusSnapshotTest, OwningSnapshotPinsTheEpoch) {
  auto shared = std::make_shared<const Corpus>(MakeBaseCorpus());
  CorpusSnapshot snap(shared);
  EXPECT_TRUE(snap.pinned());
  EXPECT_EQ(snap.epoch(), 0u);
  EXPECT_EQ(&*snap, shared.get());
  // Dropping the original reference must not free the corpus.
  const Corpus* raw = shared.get();
  shared.reset();
  EXPECT_EQ(snap->DocCount(), 2u);
  EXPECT_EQ(&snap.corpus(), raw);
}

TEST(CorpusSnapshotTest, UnownedSnapshotFromReference) {
  Corpus corpus = MakeBaseCorpus();
  CorpusSnapshot snap = corpus;  // implicit, unowned
  EXPECT_FALSE(snap.pinned());
  EXPECT_EQ(&*snap, &corpus);
}

// --- incremental ShardedCorpus ---------------------------------------------

TEST(ShardedCorpusTest, IncrementalRebuildSharesUnchangedDocuments) {
  Corpus base = MakeBaseCorpus();
  ShardedCorpus sc1(base, 4, nullptr);
  EXPECT_EQ(sc1.rebuilt_docs(), 2u);
  EXPECT_EQ(sc1.reused_docs(), 0u);

  CorpusBuilder builder(base);
  ASSERT_TRUE(builder.AddXml(LibraryXml(6), "c.xml").ok());
  ASSERT_TRUE(builder.Remove("b.xml").ok());
  Corpus next = std::move(builder).Build();
  ShardedCorpus sc2(next, sc1, nullptr);

  EXPECT_EQ(sc2.num_shards(), 4u);
  EXPECT_EQ(sc2.reused_docs(), 1u);   // a.xml
  EXPECT_EQ(sc2.rebuilt_docs(), 1u);  // c.xml; b.xml is tombstoned
  // Shared by pointer, not rebuilt: the unchanged document's shard
  // indexes are the very same objects.
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(&sc2.element_index(0, s), &sc1.element_index(0, s));
    EXPECT_EQ(&sc2.value_index(0, s), &sc1.value_index(0, s));
    EXPECT_EQ(sc2.range(0, s).begin, sc1.range(0, s).begin);
  }
  // The new document got fresh shards covering all its nodes.
  DocId c = *next.Resolve("c.xml");
  EXPECT_EQ(sc2.range(c, 0).begin, 0u);
  EXPECT_EQ(sc2.range(c, 3).end, next.doc(c).NodeCount());
}

// --- live Engine ingestion --------------------------------------------------

constexpr char kCountBooksA[] = "for $b in doc(\"a.xml\")//book return $b";
constexpr char kCountBooksC[] = "for $b in doc(\"c.xml\")//book return $b";

TEST(EngineIngestTest, AddDocumentsPublishesAQueryableEpoch) {
  engine::Engine eng(MakeBaseCorpus());
  EXPECT_EQ(eng.CurrentEpoch(), 0u);
  // The new document is invisible (a compile-time NotFound) before the
  // publish...
  EXPECT_FALSE(eng.Run(kCountBooksC).ok());

  auto ids = eng.AddDocuments({{"c.xml", LibraryXml(7)},
                               {"d.xml", LibraryXml(2)}});
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(ids->size(), 2u);
  EXPECT_EQ(eng.CurrentEpoch(), 1u);

  // ...and queryable right after.
  engine::QueryResult r = eng.Run(kCountBooksC);
  ASSERT_TRUE(r.ok()) << r.status.ToString();
  EXPECT_EQ(r.items->size(), 7u);
  EXPECT_EQ(r.epoch, 1u);
  engine::EngineStats stats = eng.Stats();
  EXPECT_EQ(stats.epoch, 1u);
  EXPECT_EQ(stats.publishes, 1u);
  EXPECT_EQ(stats.docs_added, 2u);
  EXPECT_EQ(stats.docs_removed, 0u);
}

TEST(EngineIngestTest, EmptyAddIsANoOp) {
  engine::Engine eng(MakeBaseCorpus());
  auto ids = eng.AddDocuments({});
  ASSERT_TRUE(ids.ok());
  EXPECT_TRUE(ids->empty());
  EXPECT_EQ(eng.CurrentEpoch(), 0u);
  EXPECT_EQ(eng.Stats().publishes, 0u);
}

TEST(EngineIngestTest, FailedIngestPublishesNothing) {
  engine::Engine eng(MakeBaseCorpus());
  // Second document clashes with an existing name: the whole call
  // fails and no epoch is published.
  auto ids = eng.AddDocuments({{"c.xml", LibraryXml(1)},
                               {"a.xml", LibraryXml(1)}});
  EXPECT_FALSE(ids.ok());
  EXPECT_EQ(eng.CurrentEpoch(), 0u);
  EXPECT_FALSE(eng.Run(kCountBooksC).ok());
  EXPECT_EQ(eng.Stats().publishes, 0u);
}

TEST(EngineIngestTest, RemoveDocumentHidesItFromNewQueriesOnly) {
  engine::Engine eng(MakeBaseCorpus());
  engine::QueryResult before = eng.Run(kCountBooksA);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before.items->size(), 3u);

  // Pin the pre-remove epoch the way an in-flight query would.
  std::shared_ptr<const Corpus> pinned = eng.CurrentSnapshot();

  ASSERT_TRUE(eng.RemoveDocument("a.xml").ok());
  EXPECT_EQ(eng.CurrentEpoch(), 1u);
  EXPECT_FALSE(eng.RemoveDocument("a.xml").ok());  // already gone
  EXPECT_EQ(eng.CurrentEpoch(), 1u);               // failed: no publish

  // New queries see the document gone...
  EXPECT_FALSE(eng.Run(kCountBooksA).ok());
  // ...but the pinned snapshot still serves it, byte-identically: a
  // fresh single-epoch engine over the pinned corpus reproduces the
  // pre-remove result.
  engine::Engine ref(pinned);
  engine::QueryResult after = ref.Run(kCountBooksA);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after.items, *before.items);

  engine::EngineStats stats = eng.Stats();
  EXPECT_EQ(stats.docs_removed, 1u);
  EXPECT_EQ(stats.publishes, 1u);
}

TEST(EngineIngestTest, ShardedEngineMatchesUnshardedAcrossEpochs) {
  engine::EngineOptions sharded;
  sharded.num_shards = 4;
  engine::Engine eng(MakeBaseCorpus(), sharded);
  engine::Engine flat(MakeBaseCorpus());

  auto step = [&](engine::Engine& e) {
    EXPECT_TRUE(e.AddDocuments({{"c.xml", LibraryXml(7)}}).ok());
    EXPECT_TRUE(e.RemoveDocument("b.xml").ok());
  };
  step(eng);
  step(flat);
  for (const char* q : {kCountBooksA, kCountBooksC}) {
    engine::QueryResult rs = eng.Run(q);
    engine::QueryResult rf = flat.Run(q);
    ASSERT_TRUE(rs.ok()) << rs.status.ToString();
    ASSERT_TRUE(rf.ok()) << rf.status.ToString();
    EXPECT_EQ(*rs.items, *rf.items) << q;
  }
}

// --- epoch-keyed caching (the regression satellite) ------------------------

TEST(EngineEpochCacheTest, PublishInvalidatesResultAndPlanCaches) {
  engine::Engine eng(MakeBaseCorpus());
  engine::QueryResult cold = eng.Run(kCountBooksA);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold.items->size(), 3u);
  engine::QueryResult hot = eng.Run(kCountBooksA);
  ASSERT_TRUE(hot.ok());
  EXPECT_TRUE(hot.result_cache_hit);

  // Replace a.xml (remove + re-add with different content) across two
  // publishes. A stale plan would still point at the tombstoned DocId;
  // a stale result would replay 3 items.
  ASSERT_TRUE(eng.RemoveDocument("a.xml").ok());
  ASSERT_TRUE(eng.AddDocuments({{"a.xml", LibraryXml(9)}}).ok());
  EXPECT_EQ(eng.CurrentEpoch(), 2u);

  engine::QueryResult fresh = eng.Run(kCountBooksA);
  ASSERT_TRUE(fresh.ok()) << fresh.status.ToString();
  EXPECT_FALSE(fresh.result_cache_hit);
  EXPECT_FALSE(fresh.plan_cache_hit);
  EXPECT_EQ(fresh.items->size(), 9u);
  EXPECT_EQ(fresh.epoch, 2u);
  // The re-added document lives in a fresh slot.
  EXPECT_NE(fresh.result_doc, cold.result_doc);

  engine::EngineStats stats = eng.Stats();
  EXPECT_EQ(stats.stale_cache_hits, 0u);
  EXPECT_GT(stats.cache_invalidations, 0u);
}

TEST(EngineEpochCacheTest, StaleWarmStartWeightsAreImpossible) {
  engine::EngineOptions options;
  options.cache_results = false;  // force re-execution so weights matter
  engine::Engine eng(MakeBaseCorpus(), options);

  ASSERT_TRUE(eng.Run(kCountBooksA).ok());
  engine::QueryResult warm = eng.Run(kCountBooksA);
  ASSERT_TRUE(warm.ok());
  // (Single-edge queries may or may not warm-start; what matters is
  // the post-publish behavior below.)

  ASSERT_TRUE(eng.AddDocuments({{"c.xml", LibraryXml(4)}}).ok());
  engine::QueryResult post = eng.Run(kCountBooksA);
  ASSERT_TRUE(post.ok());
  // The dead epoch's weights were purged: the first post-publish run
  // can never adopt them.
  EXPECT_FALSE(post.warm_started);
  EXPECT_FALSE(post.plan_cache_hit);
  EXPECT_EQ(eng.Stats().stale_cache_hits, 0u);
}

TEST(EngineEpochCacheTest, CapacityEvictionAcrossEpochsKeepsServing) {
  engine::EngineOptions options;
  options.cache_capacity = 2;
  engine::Engine eng(MakeBaseCorpus(), options);
  const std::string qa = kCountBooksA;
  const std::string qb = "for $b in doc(\"b.xml\")//book return $b";

  for (int round = 0; round < 3; ++round) {
    engine::QueryResult ra = eng.Run(qa);
    engine::QueryResult rb = eng.Run(qb);
    ASSERT_TRUE(ra.ok());
    ASSERT_TRUE(rb.ok());
    EXPECT_EQ(ra.items->size(), 3u);
    EXPECT_EQ(rb.items->size(), 5u);
    // Each publish moves to a new epoch; old entries are purged and
    // the tiny cache keeps cycling without ever serving stale data.
    ASSERT_TRUE(
        eng.AddDocuments({{"extra" + std::to_string(round) + ".xml",
                           LibraryXml(1)}})
            .ok());
  }
  EXPECT_LE(eng.CacheSize(), 2u);
  EXPECT_EQ(eng.Stats().stale_cache_hits, 0u);
}

TEST(EngineEpochCacheTest, CacheListingsCarryTheEpoch) {
  engine::Engine eng(MakeBaseCorpus());
  ASSERT_TRUE(eng.Run(kCountBooksA).ok());
  ASSERT_TRUE(eng.AddDocuments({{"c.xml", LibraryXml(2)}}).ok());
  ASSERT_TRUE(eng.Run(kCountBooksA).ok());
  auto listing = eng.CacheContents();
  ASSERT_EQ(listing.size(), 1u);  // epoch-0 entry was invalidated
  EXPECT_EQ(listing[0].epoch, 1u);
}

}  // namespace
}  // namespace rox
