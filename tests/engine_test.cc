#include "engine/engine.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/query_cache.h"
#include "workload/xmark.h"
#include "xq/compile.h"

namespace rox::engine {
namespace {

// --- QueryCache --------------------------------------------------------------

TEST(QueryCacheTest, NormalizeCollapsesWhitespace) {
  EXPECT_EQ(QueryCache::Normalize("for  $a\n in\t doc(\"d\")//x\n"),
            "for $a in doc(\"d\")//x");
  EXPECT_EQ(QueryCache::Normalize("  a  b  "), "a b");
  EXPECT_EQ(QueryCache::Normalize(""), "");
}

TEST(QueryCacheTest, NormalizePreservesQuotedWhitespace) {
  EXPECT_EQ(QueryCache::Normalize("doc(\"a  b\")  //x"), "doc(\"a  b\") //x");
  EXPECT_EQ(QueryCache::Normalize("x = 'two  spaces'"), "x = 'two  spaces'");
}

TEST(QueryCacheTest, LruEvictsOldest) {
  QueryCache cache(2);
  cache.Insert(0, "q1", {});
  cache.Insert(0, "q2", {});
  EXPECT_NE(cache.Lookup(0, "q1"), nullptr);  // q1 now most recent
  cache.Insert(0, "q3", {});                  // evicts q2
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.Lookup(0, "q2"), nullptr);
  EXPECT_NE(cache.Lookup(0, "q1"), nullptr);
  EXPECT_NE(cache.Lookup(0, "q3"), nullptr);
}

TEST(QueryCacheTest, HitsCountedOnlyForRealLookups) {
  QueryCache cache(4);
  cache.Insert(0, "q", {});
  cache.Lookup(0, "q", /*count_hit=*/false);
  cache.Lookup(0, "q");
  auto listing = cache.List();
  ASSERT_EQ(listing.size(), 1u);
  EXPECT_EQ(listing[0].hits, 1u);
}

TEST(QueryCacheTest, EpochIsPartOfTheKey) {
  QueryCache cache(8);
  cache.Insert(1, "q", {});
  // The same text under another epoch is a distinct entry; a query
  // pinned to epoch 1 can never see epoch 2's entry and vice versa.
  EXPECT_EQ(cache.Lookup(2, "q"), nullptr);
  cache.Insert(2, "q", {});
  EXPECT_EQ(cache.size(), 2u);
  CacheEntry* e1 = cache.Lookup(1, "q");
  CacheEntry* e2 = cache.Lookup(2, "q");
  ASSERT_NE(e1, nullptr);
  ASSERT_NE(e2, nullptr);
  EXPECT_EQ(e1->epoch, 1u);
  EXPECT_EQ(e2->epoch, 2u);
}

TEST(QueryCacheTest, EvictBeforePurgesDeadEpochs) {
  QueryCache cache(8);
  cache.Insert(1, "a", {});
  cache.Insert(1, "b", {});
  cache.Insert(2, "a", {});
  EXPECT_EQ(cache.EvictBefore(2), 2u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.invalidations(), 2u);
  EXPECT_EQ(cache.evictions(), 0u);  // invalidations are not evictions
  EXPECT_EQ(cache.Lookup(1, "a"), nullptr);
  EXPECT_NE(cache.Lookup(2, "a"), nullptr);
}

TEST(QueryCacheTest, CapacityEvictionAcrossEpochs) {
  QueryCache cache(2);
  cache.Insert(1, "a", {});
  cache.Insert(2, "a", {});  // same text, new epoch: second slot
  cache.Insert(2, "b", {});  // evicts (1, "a"), the LRU entry
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.Lookup(1, "a"), nullptr);
  EXPECT_NE(cache.Lookup(2, "a"), nullptr);
  EXPECT_NE(cache.Lookup(2, "b"), nullptr);
}

// --- Engine ------------------------------------------------------------------

constexpr char kJoinQuery[] = R"(
  for $b in doc("xmark.xml")//bidder//personref,
      $p in doc("xmark.xml")//person
  where $b/@person = $p/@id
  return $p
)";

constexpr char kQ1Query[] = R"(
  let $d := doc("xmark.xml")
  for $o in $d//open_auction[.//current/text() < 145],
      $p in $d//person[.//province],
      $i in $d//item[./quantity = 1]
  where $o//bidder//personref/@person = $p/@id and
        $o//itemref/@item = $i/@id
  return $o
)";

class EngineTest : public ::testing::Test {
 protected:
  static Corpus MakeCorpus() {
    Corpus corpus;
    XmarkGenOptions gen;
    gen.items = 400;
    gen.persons = 500;
    gen.open_auctions = 250;
    auto id = GenerateXmarkDocument(corpus, gen);
    EXPECT_TRUE(id.ok());
    return corpus;
  }

  // Ground truth via the single-query pipeline.
  static std::vector<Pre> Direct(const Corpus& corpus, const char* query) {
    auto compiled = xq::CompileXQuery(corpus, query);
    EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
    RoxOptions rox;
    rox.tau = 50;
    auto result = xq::RunXQuery(corpus, *compiled, rox);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return *result;
  }
};

TEST_F(EngineTest, SingleQueryMatchesDirectPipeline) {
  Corpus corpus = MakeCorpus();
  std::vector<Pre> expected = Direct(corpus, kJoinQuery);
  Engine engine(MakeCorpus());
  QueryResult r = engine.Run(kJoinQuery);
  ASSERT_TRUE(r.ok()) << r.status.ToString();
  EXPECT_EQ(*r.items, expected);
  EXPECT_FALSE(r.plan_cache_hit);
  EXPECT_NE(r.compiled, nullptr);
  EXPECT_EQ(r.result_doc, 0u);
}

// The satellite requirement: N identical queries through RunBatch on
// >= 4 threads produce byte-identical results, and the second batch
// runs against a warm cache.
TEST_F(EngineTest, ConcurrentIdenticalQueriesAreDeterministic) {
  Corpus reference = MakeCorpus();
  std::vector<Pre> expected = Direct(reference, kJoinQuery);

  EngineOptions options;
  options.num_threads = 4;
  options.rox.tau = 50;
  Engine engine(MakeCorpus(), options);

  std::vector<std::string> batch(12, kJoinQuery);
  std::vector<QueryResult> first = engine.RunBatch(batch, 4);
  ASSERT_EQ(first.size(), batch.size());
  for (const QueryResult& r : first) {
    ASSERT_TRUE(r.ok()) << r.status.ToString();
    EXPECT_EQ(*r.items, expected);  // identical element-for-element
  }

  std::vector<QueryResult> second = engine.RunBatch(batch, 4);
  size_t warm_hits = 0;
  for (const QueryResult& r : second) {
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r.items, expected);
    warm_hits += r.plan_cache_hit ? 1 : 0;
  }
  // Every query of the second batch must find the cached plan.
  EXPECT_EQ(warm_hits, batch.size());
  EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_GT(stats.plan_cache_hits, 0u);
}

TEST_F(EngineTest, ConcurrencySafeWithCacheDisabled) {
  // Every run executes the full pipeline concurrently over the shared
  // corpus with its own RNG stream; results must still be identical.
  Corpus reference = MakeCorpus();
  std::vector<Pre> expected = Direct(reference, kJoinQuery);

  EngineOptions options;
  options.num_threads = 4;
  options.enable_cache = false;
  options.rox.tau = 50;
  Engine engine(MakeCorpus(), options);

  std::vector<QueryResult> results =
      engine.RunBatch(std::vector<std::string>(8, kJoinQuery), 4);
  for (const QueryResult& r : results) {
    ASSERT_TRUE(r.ok()) << r.status.ToString();
    EXPECT_EQ(*r.items, expected);
    EXPECT_FALSE(r.plan_cache_hit);
  }
}

TEST_F(EngineTest, ResultCacheReplaysWithoutExecution) {
  EngineOptions options;
  options.rox.tau = 50;
  Engine engine(MakeCorpus(), options);

  QueryResult cold = engine.Run(kJoinQuery);
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold.result_cache_hit);

  QueryResult hot = engine.Run(kJoinQuery);
  ASSERT_TRUE(hot.ok());
  EXPECT_TRUE(hot.result_cache_hit);
  EXPECT_TRUE(hot.plan_cache_hit);
  // Replays share the memoized sequence, they do not recompute it.
  EXPECT_EQ(hot.items.get(), cold.items.get());
  EXPECT_EQ(hot.rox_stats.edges_executed, 0u);
  EXPECT_EQ(engine.Stats().result_cache_hits, 1u);
}

TEST_F(EngineTest, WarmStartReusesLearnedWeights) {
  EngineOptions options;
  options.cache_results = false;  // force re-execution
  options.rox.tau = 50;
  Engine engine(MakeCorpus(), options);

  QueryResult cold = engine.Run(kQ1Query);
  ASSERT_TRUE(cold.ok()) << cold.status.ToString();
  EXPECT_FALSE(cold.warm_started);

  QueryResult warm = engine.Run(kQ1Query);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm.plan_cache_hit);
  EXPECT_FALSE(warm.result_cache_hit);
  EXPECT_TRUE(warm.warm_started);
  EXPECT_GT(warm.rox_stats.warm_started_weights, 0u);
  EXPECT_EQ(*warm.items, *cold.items);  // warm start never changes results

  EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.warm_started_runs, 1u);
}

TEST_F(EngineTest, WarmStartAblationFlagDisablesReuse) {
  EngineOptions options;
  options.cache_results = false;
  options.rox.tau = 50;
  options.rox.use_warm_start = false;  // the DESIGN.md §5 ablation flag
  Engine engine(MakeCorpus(), options);

  ASSERT_TRUE(engine.Run(kQ1Query).ok());
  QueryResult second = engine.Run(kQ1Query);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second.warm_started);
  EXPECT_EQ(second.rox_stats.warm_started_weights, 0u);
}

TEST_F(EngineTest, WhitespaceVariantsShareOneCacheEntry) {
  EngineOptions options;
  options.rox.tau = 50;
  Engine engine(MakeCorpus(), options);
  ASSERT_TRUE(
      engine.Run("for $i in doc(\"xmark.xml\")//item return $i").ok());
  QueryResult r = engine.Run(
      "for   $i in\n  doc(\"xmark.xml\")//item\n   return   $i");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.plan_cache_hit);
  EXPECT_EQ(engine.CacheSize(), 1u);
}

TEST_F(EngineTest, CompileErrorsAreReportedAndCounted) {
  Engine engine(MakeCorpus());
  QueryResult r = engine.Run("this is not xquery");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(engine.Stats().failed, 1u);
}

TEST_F(EngineTest, UnknownNamesYieldEmptyResultsNotErrors) {
  // Read-only compilation: a name the corpus never saw cannot match.
  Engine engine(MakeCorpus());
  QueryResult r =
      engine.Run("for $x in doc(\"xmark.xml\")//nonexistent_tag return $x");
  ASSERT_TRUE(r.ok()) << r.status.ToString();
  EXPECT_TRUE(r.items->empty());
}

TEST_F(EngineTest, SubmitRunsAsynchronously) {
  EngineOptions options;
  options.rox.tau = 50;
  Engine engine(MakeCorpus(), options);
  auto f1 = engine.Submit(kJoinQuery);
  auto f2 = engine.Submit(kJoinQuery);
  QueryResult r1 = f1.get();
  QueryResult r2 = f2.get();
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r1.items, *r2.items);
  EXPECT_NE(r1.sequence, r2.sequence);
}

TEST_F(EngineTest, CacheEvictionKeepsServingCorrectResults) {
  EngineOptions options;
  options.cache_capacity = 1;  // every distinct query evicts the last
  options.rox.tau = 50;
  Engine engine(MakeCorpus(), options);
  const char* queries[] = {
      "for $i in doc(\"xmark.xml\")//item return $i",
      "for $p in doc(\"xmark.xml\")//person return $p",
  };
  for (int round = 0; round < 2; ++round) {
    for (const char* q : queries) {
      QueryResult r = engine.Run(q);
      ASSERT_TRUE(r.ok()) << r.status.ToString();
      EXPECT_FALSE(r.items->empty());
    }
  }
  EXPECT_EQ(engine.CacheSize(), 1u);
  EXPECT_GT(engine.CacheEvictions(), 0u);
}

TEST_F(EngineTest, RunBatchEmptyReturnsImmediately) {
  // Regression: an empty batch (with the default concurrency = 0) must
  // return without touching the pool or the limiter semaphore.
  EngineOptions options;
  options.num_threads = 1;
  Engine engine(MakeCorpus(), options);
  std::vector<QueryResult> results = engine.RunBatch({}, /*concurrency=*/0);
  EXPECT_TRUE(results.empty());
  results = engine.RunBatch({}, /*concurrency=*/7);
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(engine.Stats().total(), 0u);
}

TEST_F(EngineTest, StatsPercentilesAndToString) {
  EngineOptions options;
  options.rox.tau = 50;
  Engine engine(MakeCorpus(), options);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(engine.Run(kJoinQuery).ok());
  }
  EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.completed, 5u);
  EXPECT_GT(stats.p50_ms, 0.0);
  EXPECT_GE(stats.p95_ms, stats.p50_ms);
  EXPECT_GE(stats.max_ms, stats.p95_ms);
  EXPECT_GT(stats.qps(), 0.0);
  EXPECT_NE(stats.ToString().find("plan cache"), std::string::npos);

  engine.ResetStats();
  EXPECT_EQ(engine.Stats().total(), 0u);
}

}  // namespace
}  // namespace rox::engine
