// Table 2 + Figure 3 — chain sampling on the XMark queries Q1 / Qm1.
//
// Runs ROX on the XMark-like document for
//   Q1 : //open_auction[.//current/text() < P] ...
//   Qm1: //open_auction[.//current/text() > P] ...
// and prints, per ChainSample invocation, the per-round (cost, sf)
// values of the explored path segments (the paper's Table 2), plus the
// order in which the edges were executed (Figures 3.3 / 3.4).
//
// Paper-vs-measured shape: because the number of <bidder>s correlates
// positively with the auction price, Qm1 (">" predicate) must make the
// bidder branch look expensive and flip the execution order relative to
// Q1 — the bidder-side path is executed early for Q1 and late for Qm1.
//
// Flags: --auctions=2400 --persons=2500 --items=2000 --threshold=145
//        --tau=100 --seed=N

#include <cstdio>

#include "bench/bench_util.h"
#include "rox/optimizer.h"
#include "workload/xmark.h"

namespace {

using namespace rox;

// Runs one query variant, printing traces; returns +1 when the bidder
// branch entered execution before the itemref branch, -1 otherwise.
int RunVariant(const Corpus& corpus, DocId doc, double threshold,
               bool less_than, const RoxOptions& opt, bool print_rounds) {
  XmarkQ1Graph q = BuildXmarkQ1Graph(corpus, doc, threshold, less_than);
  RoxOptimizer rox(corpus, q.graph, opt);
  std::vector<ChainSampleTrace> traces;
  rox.set_trace_log(&traces);
  auto result = rox.Run();
  if (!result.ok()) {
    std::fprintf(stderr, "ROX failed: %s\n",
                 result.status().ToString().c_str());
    return -1;
  }

  std::printf("%s (current/text() %s %g): %llu result rows\n",
              less_than ? "Q1" : "Qm1", less_than ? "<" : ">", threshold,
              static_cast<unsigned long long>(result->table.NumRows()));

  if (print_rounds) {
    int invocation = 0;
    for (const ChainSampleTrace& t : traces) {
      if (t.round_snapshots.empty()) continue;
      ++invocation;
      std::printf("  chain-sample #%d (seed edge: %s, %d rounds%s)\n",
                  invocation, q.graph.EdgeLabel(t.seed_edge).c_str(),
                  t.rounds, t.stopped_early ? ", stopping condition fired"
                                            : ", branches exhausted");
      int round_no = 0;
      for (const auto& snap : t.round_snapshots) {
        ++round_no;
        std::printf("    round %d:", round_no);
        for (const auto& p : snap.paths) {
          if (p.edges.empty()) continue;
          std::printf("  [len=%zu cost=%.1f sf=%.2f]", p.edges.size(),
                      p.cost, p.sf);
        }
        std::printf("\n");
      }
    }
  }

  std::printf("  executed edge order:\n");
  int first_bidder = -1, first_itemref = -1, pos = 0;
  for (EdgeId e : result->stats.execution_order) {
    ++pos;
    std::string label = q.graph.EdgeLabel(e);
    std::printf("   %2d. %s\n", pos, label.c_str());
    if (first_bidder < 0 && label.find("bidder") != std::string::npos) {
      first_bidder = pos;
    }
    if (first_itemref < 0 && label.find("itemref") != std::string::npos) {
      first_itemref = pos;
    }
  }
  std::printf("  bidder branch enters at %d, itemref branch at %d\n",
              first_bidder, first_itemref);
  std::printf("  sampling %.2f ms, execution %.2f ms, cumulative "
              "intermediates %llu rows\n\n",
              result->stats.sampling_time.TotalMillis(),
              result->stats.execution_time.TotalMillis(),
              static_cast<unsigned long long>(
                  result->stats.cumulative_intermediate_rows));
  return first_bidder < first_itemref ? 1 : -1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rox;
  bench::Flags flags(argc, argv);
  XmarkGenOptions gen;  // defaults follow Figure 3.1's proportions
  gen.open_auctions = static_cast<uint32_t>(
      flags.GetInt("auctions", gen.open_auctions));
  gen.persons = static_cast<uint32_t>(flags.GetInt("persons", gen.persons));
  gen.items = static_cast<uint32_t>(flags.GetInt("items", gen.items));
  gen.seed = static_cast<uint64_t>(flags.GetInt("seed", gen.seed));
  double threshold = flags.GetDouble("threshold", 145);
  RoxOptions opt;
  opt.tau = static_cast<uint64_t>(flags.GetInt("tau", 100));
  bool rounds = flags.GetBool("rounds", true);
  flags.FailOnUnused();

  Corpus corpus;
  auto doc = GenerateXmarkDocument(corpus, gen);
  if (!doc.ok()) {
    std::fprintf(stderr, "%s\n", doc.status().ToString().c_str());
    return 1;
  }
  std::printf("Table 2 / Figure 3: chain sampling on XMark Q1 vs Qm1\n");
  std::printf("document: %u auctions, %u persons, %u items (bidder count "
              "correlated with price)\n\n",
              gen.open_auctions, gen.persons, gen.items);

  int q1 = RunVariant(corpus, *doc, threshold, /*less_than=*/true, opt,
                      rounds);
  int qm1 = RunVariant(corpus, *doc, threshold, /*less_than=*/false, opt,
                       rounds);

  if (q1 > 0 && qm1 < 0) {
    std::printf(
        "FLIP REPRODUCED: Q1 runs the bidder branch before itemref, Qm1 "
        "reverses them — the price/bidder correlation drives the order "
        "(Figures 3.3/3.4).\n");
  } else {
    std::printf("orders did not flip at this scale/seed "
                "(Q1 bidder-first=%d, Qm1 bidder-first=%d)\n", q1, qm1);
  }
  return 0;
}
