// Table 1 — micro-benchmarks of the physical operator inventory.
//
// Validates the cost claims of the paper's Table 1 on the engine's
// operators: staircase joins are linear in context/result, value index
// lookups are O(log + result), hash join pays |C|+|S|+|R|, and cut-off
// sampled execution is bounded by the sample size (the zero-investment
// property: doubling the document must not slow a fixed-size sampled
// probe).

#include <benchmark/benchmark.h>

#include "exec/structural_join.h"
#include "exec/value_join.h"
#include "index/corpus.h"
#include "workload/xmark.h"

namespace {

using namespace rox;

// Corpus cache keyed by auction count so setup isn't re-paid per run.
const Corpus& XmarkCorpus(int auctions) {
  static std::map<int, Corpus>* cache = new std::map<int, Corpus>();
  auto it = cache->find(auctions);
  if (it == cache->end()) {
    Corpus corpus;
    XmarkGenOptions opt;
    opt.open_auctions = auctions;
    opt.items = auctions;
    opt.persons = auctions;
    auto doc = GenerateXmarkDocument(corpus, opt);
    if (!doc.ok()) std::abort();
    it = cache->emplace(auctions, std::move(corpus)).first;
  }
  return it->second;
}

std::vector<Pre> Elems(const Corpus& c, const char* name) {
  auto span = c.element_index(0).Lookup(c.string_pool().Find(name));
  return std::vector<Pre>(span.begin(), span.end());
}

void BM_StaircaseChild(benchmark::State& state) {
  const Corpus& c = XmarkCorpus(static_cast<int>(state.range(0)));
  std::vector<Pre> ctx = Elems(c, "open_auction");
  StepSpec spec = StepSpec::Child(c.string_pool().Find("bidder"));
  for (auto _ : state) {
    auto r = StructuralJoinPairs(c.doc(0), ctx, spec);
    benchmark::DoNotOptimize(r.size());
  }
  state.SetItemsProcessed(state.iterations() * ctx.size());
}
BENCHMARK(BM_StaircaseChild)->Arg(1000)->Arg(4000)->Arg(16000);

// The probe kernels run both paths of DESIGN.md §14 — the vectorized
// batch default and the row-at-a-time fallback — so the per-kernel
// items/sec (context rows/sec) speedup is tracked directly.
void StaircaseDescendantIndexed(benchmark::State& state, bool vectorized) {
  const Corpus& c = XmarkCorpus(static_cast<int>(state.range(0)));
  std::vector<Pre> ctx = Elems(c, "open_auction");
  StepSpec spec = StepSpec::Descendant(c.string_pool().Find("personref"));
  const ElementIndex& idx = c.element_index(0);
  for (auto _ : state) {
    auto r = StructuralJoinPairs(c.doc(0), ctx, spec, kNoLimit, &idx,
                                 nullptr, vectorized);
    benchmark::DoNotOptimize(r.size());
  }
  state.SetItemsProcessed(state.iterations() * ctx.size());
}
void BM_StaircaseDescendantIndexed(benchmark::State& state) {
  StaircaseDescendantIndexed(state, /*vectorized=*/true);
}
BENCHMARK(BM_StaircaseDescendantIndexed)->Arg(1000)->Arg(4000)->Arg(16000);
void BM_StaircaseDescendantIndexedFallback(benchmark::State& state) {
  StaircaseDescendantIndexed(state, /*vectorized=*/false);
}
BENCHMARK(BM_StaircaseDescendantIndexedFallback)->Arg(4000);

void BM_StaircaseDescendantScan(benchmark::State& state) {
  const Corpus& c = XmarkCorpus(static_cast<int>(state.range(0)));
  std::vector<Pre> ctx = Elems(c, "open_auction");
  StepSpec spec = StepSpec::Descendant(c.string_pool().Find("personref"));
  for (auto _ : state) {
    auto r = StructuralJoinPairs(c.doc(0), ctx, spec);
    benchmark::DoNotOptimize(r.size());
  }
  state.SetItemsProcessed(state.iterations() * ctx.size());
}
BENCHMARK(BM_StaircaseDescendantScan)->Arg(1000)->Arg(4000);

void BM_StaircaseAncestor(benchmark::State& state) {
  const Corpus& c = XmarkCorpus(static_cast<int>(state.range(0)));
  std::vector<Pre> ctx = Elems(c, "personref");
  StepSpec spec;
  spec.axis = Axis::kAncestor;
  spec.kind = KindTest::kElem;
  spec.name = c.string_pool().Find("open_auction");
  for (auto _ : state) {
    auto r = StructuralJoinPairs(c.doc(0), ctx, spec);
    benchmark::DoNotOptimize(r.size());
  }
  state.SetItemsProcessed(state.iterations() * ctx.size());
}
BENCHMARK(BM_StaircaseAncestor)->Arg(1000)->Arg(4000)->Arg(16000);

void ValueIndexNlJoin(benchmark::State& state, bool vectorized) {
  const Corpus& c = XmarkCorpus(static_cast<int>(state.range(0)));
  // @person attributes probed against @id via the value index.
  auto probe_span =
      c.element_index(0).LookupAttr(c.string_pool().Find("person"));
  std::vector<Pre> probe(probe_span.begin(), probe_span.end());
  ValueProbeSpec spec = ValueProbeSpec::Attr(c.string_pool().Find("id"));
  for (auto _ : state) {
    auto r = ValueIndexJoinPairs(c.doc(0), probe, c.doc(0), c.value_index(0),
                                 spec, kNoLimit, nullptr, vectorized);
    benchmark::DoNotOptimize(r.size());
  }
  state.SetItemsProcessed(state.iterations() * probe.size());
}
void BM_ValueIndexNlJoin(benchmark::State& state) {
  ValueIndexNlJoin(state, /*vectorized=*/true);
}
BENCHMARK(BM_ValueIndexNlJoin)->Arg(1000)->Arg(4000)->Arg(16000);
void BM_ValueIndexNlJoinFallback(benchmark::State& state) {
  ValueIndexNlJoin(state, /*vectorized=*/false);
}
BENCHMARK(BM_ValueIndexNlJoinFallback)->Arg(4000);

void HashValueJoin(benchmark::State& state, bool vectorized) {
  const Corpus& c = XmarkCorpus(static_cast<int>(state.range(0)));
  auto probe_span =
      c.element_index(0).LookupAttr(c.string_pool().Find("person"));
  std::vector<Pre> probe(probe_span.begin(), probe_span.end());
  auto id_span = c.element_index(0).LookupAttr(c.string_pool().Find("id"));
  std::vector<Pre> inner(id_span.begin(), id_span.end());
  for (auto _ : state) {
    auto r = HashValueJoinPairs(c.doc(0), probe, c.doc(0), inner, nullptr,
                                vectorized);
    benchmark::DoNotOptimize(r.size());
  }
  state.SetItemsProcessed(state.iterations() * probe.size());
}
void BM_HashValueJoin(benchmark::State& state) {
  HashValueJoin(state, /*vectorized=*/true);
}
BENCHMARK(BM_HashValueJoin)->Arg(1000)->Arg(4000)->Arg(16000);
void BM_HashValueJoinFallback(benchmark::State& state) {
  HashValueJoin(state, /*vectorized=*/false);
}
BENCHMARK(BM_HashValueJoinFallback)->Arg(4000);

void MergeValueJoin(benchmark::State& state, bool vectorized) {
  const Corpus& c = XmarkCorpus(static_cast<int>(state.range(0)));
  auto probe_span =
      c.element_index(0).LookupAttr(c.string_pool().Find("person"));
  std::vector<Pre> probe(probe_span.begin(), probe_span.end());
  auto id_span = c.element_index(0).LookupAttr(c.string_pool().Find("id"));
  std::vector<Pre> inner(id_span.begin(), id_span.end());
  auto ps = SortByValueId(c.doc(0), probe);
  auto is = SortByValueId(c.doc(0), inner);
  for (auto _ : state) {
    auto r = MergeValueJoinPairs(c.doc(0), ps, c.doc(0), is, nullptr,
                                 vectorized);
    benchmark::DoNotOptimize(r.size());
  }
  state.SetItemsProcessed(state.iterations() * probe.size());
}
void BM_MergeValueJoin(benchmark::State& state) {
  MergeValueJoin(state, /*vectorized=*/true);
}
BENCHMARK(BM_MergeValueJoin)->Arg(1000)->Arg(4000)->Arg(16000);
void BM_MergeValueJoinFallback(benchmark::State& state) {
  MergeValueJoin(state, /*vectorized=*/false);
}
BENCHMARK(BM_MergeValueJoinFallback)->Arg(4000);

// Range theta join: numeric <increase> probes against the sorted
// <quantity> run (values are small integers, so the match set per row
// is a large contiguous suffix — the bulk-append case).
void SortThetaJoin(benchmark::State& state, bool vectorized) {
  const Corpus& c = XmarkCorpus(static_cast<int>(state.range(0)));
  std::vector<Pre> probe = Elems(c, "increase");
  std::vector<Pre> inner = Elems(c, "quantity");
  for (auto _ : state) {
    auto r = SortThetaJoinPairs(c.doc(0), probe, c.doc(0), inner, CmpOp::kGe,
                                kNoLimit, nullptr, vectorized);
    benchmark::DoNotOptimize(r.size());
  }
  state.SetItemsProcessed(state.iterations() * probe.size());
}
void BM_SortThetaJoin(benchmark::State& state) {
  SortThetaJoin(state, /*vectorized=*/true);
}
BENCHMARK(BM_SortThetaJoin)->Arg(1000);
void BM_SortThetaJoinFallback(benchmark::State& state) {
  SortThetaJoin(state, /*vectorized=*/false);
}
BENCHMARK(BM_SortThetaJoinFallback)->Arg(1000);

// Zero-investment check: a τ-limited sampled probe must cost the same
// on a 1k-auction and a 16k-auction document (its cost depends on the
// sampled input only). Compare the two Arg timings in the report.
void BM_CutoffSampledStep(benchmark::State& state) {
  const Corpus& c = XmarkCorpus(static_cast<int>(state.range(0)));
  std::vector<Pre> ctx = Elems(c, "open_auction");
  ctx.resize(std::min<size_t>(ctx.size(), 100));  // the τ-sample
  StepSpec spec = StepSpec::Descendant(c.string_pool().Find("bidder"));
  const ElementIndex& idx = c.element_index(0);
  for (auto _ : state) {
    auto r = StructuralJoinPairs(c.doc(0), ctx, spec, /*limit=*/100, &idx);
    benchmark::DoNotOptimize(r.size());
  }
  // items/sec here is sampled context tuples/sec: the per-kernel rate
  // the perf-trend job tracks for every operator bench (it must stay
  // flat across the two Arg sizes — that is the zero-investment claim).
  state.SetItemsProcessed(state.iterations() * ctx.size());
}
BENCHMARK(BM_CutoffSampledStep)->Arg(1000)->Arg(16000);

}  // namespace

BENCHMARK_MAIN();
