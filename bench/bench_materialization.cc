// Late materialization vs eager row-copying (DESIGN.md §8): runs XMark
// Q1/Qm1 and a deep descendant-chain query through the full ROX
// pipeline twice — once with lazy_materialization off (the seed
// engine's eager path: every edge execution and assembly join copies
// all live columns) and once on (selection-vector views, one gather at
// the plan tail) — and reports the total and edge-execution speedups.
// Result item sequences must be byte-identical between the two modes;
// the process exits 1 when they are not.
//
//   $ ./bench_materialization [--xmark_scale=1.0] [--chains=400]
//        [--chain_depth=12] [--repeat=5] [--tau=100] [--seed=42]
//        [--smoke] [--json=BENCH_materialization.json]
//        [--max_regression=0] [--require_speedup=0]
//
// --smoke shrinks the corpus and repeat count for CI.
// --max_regression=R fails the run if, on any query, the lazy total
//   wall time exceeds R x the eager total wall time (the CI guard:
//   late materialization must never cost more than the noise budget).
// --require_speedup=S fails the run unless the best edge-execution
//   speedup across the queries reaches S (the acceptance gate; left
//   off in CI smoke runs, where shared-runner timing is too noisy to
//   hard-gate a ratio).

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "index/corpus.h"
#include "rox/options.h"
#include "workload/xmark.h"
#include "xq/compile.h"

namespace rox::bench {
namespace {

struct BenchQuery {
  std::string name;
  std::string text;
};

std::vector<BenchQuery> Queries(int chain_depth) {
  std::vector<BenchQuery> out;
  out.push_back({"xmark_q1",
                 R"(let $d := doc("xmark.xml")
        for $o in $d//open_auction[.//current/text() < 145],
            $p in $d//person[.//province],
            $i in $d//item[./quantity = 1]
        where $o//bidder//personref/@person = $p/@id and
              $o//itemref/@item = $i/@id
        return $o)"});
  out.push_back({"xmark_qm1",
                 R"(let $d := doc("xmark.xml")
        for $o in $d//open_auction[.//current/text() > 145],
            $p in $d//person[.//province],
            $i in $d//item[./quantity = 1]
        where $o//bidder//personref/@person = $p/@id and
              $o//itemref/@item = $i/@id
        return $o)"});
  // Deep chain over the synthetic alternating a/b document: every //a
  // and //b step multiplies the intermediate combinations, and only
  // the final $x column survives to the plan tail — the best case for
  // dead-column elision.
  std::string chain = R"(let $d := doc("chain.xml") for $x in $d)";
  for (int i = 0; i < chain_depth / 4; ++i) chain += "//a//b";
  chain += "//t return $x";
  out.push_back({"deep_chain", std::move(chain)});
  return out;
}

// M independent chains of depth D alternating <a>/<b>, each ending in
// a single <t/> leaf.
std::string ChainDocumentXml(int chains, int depth) {
  std::string xml = "<root>";
  for (int c = 0; c < chains; ++c) {
    for (int l = 0; l < depth; ++l) xml += (l % 2 == 0) ? "<a>" : "<b>";
    xml += "<t/>";
    for (int l = depth - 1; l >= 0; --l) {
      xml += (l % 2 == 0) ? "</a>" : "</b>";
    }
  }
  xml += "</root>";
  return xml;
}

struct ModeRun {
  double best_total_ms = 0;
  double best_exec_ms = 0;  // edge executions + final assembly
  std::vector<Pre> items;
  RoxStats stats;
};

Result<ModeRun> RunMode(const Corpus& corpus,
                        const xq::CompiledQuery& compiled,
                        const RoxOptions& base, bool lazy, int repeat) {
  ModeRun out;
  for (int r = 0; r < repeat; ++r) {
    RoxOptions rox = base;
    rox.lazy_materialization = lazy;
    RoxStats stats;
    StopWatch watch;
    auto items = xq::RunXQuery(corpus, compiled, rox, &stats);
    double ms = watch.ElapsedMillis();
    ROX_RETURN_IF_ERROR(items.status());
    if (r == 0 || ms < out.best_total_ms) {
      out.best_total_ms = ms;
      out.best_exec_ms = stats.execution_time.TotalMillis();
      out.stats = stats;
    }
    if (r == 0) {
      out.items = std::move(*items);
    } else if (*items != out.items) {
      return Status::Internal(
          "result items differ between repeats of the same mode");
    }
  }
  return out;
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool smoke = flags.GetBool("smoke", false);
  const double xmark_scale =
      flags.GetDouble("xmark_scale", smoke ? 0.2 : 1.0);
  const int chains =
      static_cast<int>(flags.GetInt("chains", smoke ? 40 : 120));
  const int chain_depth = static_cast<int>(flags.GetInt("chain_depth", 20));
  const int repeat = static_cast<int>(flags.GetInt("repeat", smoke ? 2 : 5));
  const uint64_t tau = static_cast<uint64_t>(flags.GetInt("tau", 100));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const double max_regression = flags.GetDouble("max_regression", 0.0);
  const double require_speedup = flags.GetDouble("require_speedup", 0.0);
  const std::string json_path =
      flags.GetString("json", "BENCH_materialization.json");
  if (chain_depth < 4 || chain_depth > 64 || chain_depth % 4 != 0) {
    std::fprintf(stderr,
                 "bad value for --chain_depth: %d (want a multiple of 4 in "
                 "[4, 64])\n",
                 chain_depth);
    return 2;
  }
  if (chains < 1 || chains > 1000000) {
    std::fprintf(stderr, "bad value for --chains: %d\n", chains);
    return 2;
  }
  flags.FailOnUnused();

  Corpus corpus;
  XmarkGenOptions gen;
  gen.items = static_cast<uint32_t>(4350 * xmark_scale);
  gen.persons = static_cast<uint32_t>(5100 * xmark_scale);
  gen.open_auctions = static_cast<uint32_t>(2400 * xmark_scale);
  auto xdoc = GenerateXmarkDocument(corpus, gen);
  if (!xdoc.ok()) {
    std::fprintf(stderr, "corpus: %s\n", xdoc.status().ToString().c_str());
    return 1;
  }
  auto cdoc =
      corpus.AddXml(ChainDocumentXml(chains, chain_depth), "chain.xml");
  if (!cdoc.ok()) {
    std::fprintf(stderr, "chain doc: %s\n",
                 cdoc.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "XMark scale %.2f (%u nodes) + %d chains of depth %d (%u nodes); "
      "%d repeats\n\n",
      xmark_scale, corpus.doc(*xdoc).NodeCount(), chains, chain_depth,
      corpus.doc(*cdoc).NodeCount(), repeat);

  RoxOptions rox;
  rox.tau = tau;
  rox.seed = seed;

  struct Row {
    std::string name;
    uint64_t items = 0;
    ModeRun eager, lazy;
    double speedup_total = 0, speedup_exec = 0;
    bool identical = false;
  };
  std::vector<Row> rows;
  bool all_identical = true;
  double best_exec_speedup = 0;
  bool regression = false;

  std::printf(
      "query       | eager ms (exec)  | lazy ms (exec)   | total x | "
      "exec x | gathers | MB gathered | identical\n");
  for (const BenchQuery& q : Queries(chain_depth)) {
    auto compiled = xq::CompileXQuery(corpus, q.text);
    if (!compiled.ok()) {
      std::fprintf(stderr, "compile %s: %s\n", q.name.c_str(),
                   compiled.status().ToString().c_str());
      return 1;
    }
    Row row;
    row.name = q.name;
    auto eager = RunMode(corpus, *compiled, rox, /*lazy=*/false, repeat);
    auto lazy = RunMode(corpus, *compiled, rox, /*lazy=*/true, repeat);
    if (!eager.ok() || !lazy.ok()) {
      std::fprintf(stderr, "%s: %s\n", q.name.c_str(),
                   (!eager.ok() ? eager : lazy).status().ToString().c_str());
      return 1;
    }
    row.eager = std::move(*eager);
    row.lazy = std::move(*lazy);
    row.items = row.lazy.items.size();
    row.identical = row.eager.items == row.lazy.items;
    all_identical &= row.identical;
    row.speedup_total =
        row.lazy.best_total_ms > 0
            ? row.eager.best_total_ms / row.lazy.best_total_ms
            : 0;
    row.speedup_exec = row.lazy.best_exec_ms > 0
                           ? row.eager.best_exec_ms / row.lazy.best_exec_ms
                           : 0;
    best_exec_speedup = std::max(best_exec_speedup, row.speedup_exec);
    if (max_regression > 0 &&
        row.lazy.best_total_ms > row.eager.best_total_ms * max_regression) {
      regression = true;
    }
    std::printf(
        "%-11s | %8.1f (%5.1f) | %8.1f (%5.1f) | %6.2fx | %5.2fx | %7llu | "
        "%11.2f | %s\n",
        row.name.c_str(), row.eager.best_total_ms, row.eager.best_exec_ms,
        row.lazy.best_total_ms, row.lazy.best_exec_ms, row.speedup_total,
        row.speedup_exec,
        static_cast<unsigned long long>(row.lazy.stats.gather.gather_count),
        static_cast<double>(row.lazy.stats.gather.bytes_gathered) /
            (1024.0 * 1024.0),
        row.identical ? "yes" : "NO");
    rows.push_back(std::move(row));
  }

  // JSON report (uploaded as a CI artifact so the perf trajectory is
  // tracked per PR).
  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f,
                 "{\n  \"bench\": \"materialization\",\n"
                 "  \"xmark_scale\": %.3f,\n  \"chains\": %d,\n"
                 "  \"chain_depth\": %d,\n  \"repeat\": %d,\n"
                 "  \"tau\": %llu,\n  \"seed\": %llu,\n  \"queries\": [\n",
                 xmark_scale, chains, chain_depth, repeat,
                 static_cast<unsigned long long>(tau),
                 static_cast<unsigned long long>(seed));
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(
          f,
          "    {\"name\": \"%s\", \"result_items\": %llu,\n"
          "     \"eager_total_ms\": %.3f, \"eager_exec_ms\": %.3f,\n"
          "     \"lazy_total_ms\": %.3f, \"lazy_exec_ms\": %.3f,\n"
          "     \"speedup_total\": %.3f, \"speedup_exec\": %.3f,\n"
          "     \"lazy_gathers\": %llu, \"lazy_bytes_gathered\": %llu,\n"
          "     \"lazy_arena_bytes\": %llu, "
          "\"peak_intermediate_rows\": %llu,\n"
          "     \"identical_results\": %s}%s\n",
          r.name.c_str(), static_cast<unsigned long long>(r.items),
          r.eager.best_total_ms, r.eager.best_exec_ms, r.lazy.best_total_ms,
          r.lazy.best_exec_ms, r.speedup_total, r.speedup_exec,
          static_cast<unsigned long long>(r.lazy.stats.gather.gather_count),
          static_cast<unsigned long long>(
              r.lazy.stats.gather.bytes_gathered),
          static_cast<unsigned long long>(r.lazy.stats.arena_bytes),
          static_cast<unsigned long long>(
              r.lazy.stats.peak_intermediate_rows),
          r.identical ? "true" : "false", i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"best_exec_speedup\": %.3f\n}\n",
                 best_exec_speedup);
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }

  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: lazy and eager materialization returned different "
                 "result items\n");
    return 1;
  }
  if (regression) {
    std::fprintf(stderr,
                 "FAIL: lazy wall time exceeded %.2fx the eager baseline\n",
                 max_regression);
    return 1;
  }
  if (require_speedup > 0 && best_exec_speedup < require_speedup) {
    std::fprintf(stderr,
                 "FAIL: best edge-execution speedup %.2fx < required "
                 "%.2fx\n",
                 best_exec_speedup, require_speedup);
    return 1;
  }
  std::printf("lazy and eager results are byte-identical on every query\n");
  return 0;
}

}  // namespace
}  // namespace rox::bench

int main(int argc, char** argv) { return rox::bench::Main(argc, argv); }
