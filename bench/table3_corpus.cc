// Table 3 — "Research areas, documents and their characteristics".
//
// Regenerates the corpus characteristics table: for each of the 23
// synthetic DBLP documents, the research areas, the number of <author>
// tags (×1 and ×scale), and the (estimated serialized) document sizes.
// Paper-vs-measured: the ×1 author-tag column must match Table 3
// exactly (the generator is driven by it); sizes track the paper's
// within a small factor since our article bodies are synthetic.
//
// Flags: --tag_scale=1.0 --scale=1 --seed=N

#include <cstdio>

#include "bench/bench_util.h"
#include "common/str_util.h"
#include "common/timer.h"
#include "workload/dblp.h"

int main(int argc, char** argv) {
  using namespace rox;
  bench::Flags flags(argc, argv);
  DblpGenOptions gen;
  gen.tag_scale = flags.GetDouble("tag_scale", 1.0);
  gen.scale = static_cast<uint32_t>(flags.GetInt("scale", 1));
  gen.seed = static_cast<uint64_t>(flags.GetInt("seed", gen.seed));
  flags.FailOnUnused();

  std::printf("Table 3: research areas, documents and their characteristics\n");
  std::printf("(synthetic DBLP corpus, tag_scale=%.3g, article replication x%u)\n\n",
              gen.tag_scale, gen.scale);

  StopWatch watch;
  auto corpus = GenerateDblpCorpus(gen);
  if (!corpus.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 corpus.status().ToString().c_str());
    return 1;
  }
  double gen_ms = watch.ElapsedMillis();

  std::printf("%-16s %-6s %12s %12s %12s %10s\n", "document", "areas",
              "author tags", "paper (x1)", "nodes", "size");
  std::printf("%.*s\n", 76, "-----------------------------------------"
                            "-----------------------------------");
  StringId author = corpus->Find("author");
  uint64_t total_tags = 0, total_bytes = 0;
  for (const DblpDocSpec& spec : Table3Documents()) {
    auto id = corpus->Resolve(spec.name);
    if (!id.ok()) continue;
    const Document& doc = corpus->doc(*id);
    uint64_t tags = corpus->element_index(*id).Count(author);
    uint64_t bytes = doc.SerializedSizeEstimate();
    total_tags += tags;
    total_bytes += bytes;
    std::string areas;
    for (size_t i = 0; i < spec.areas.size(); ++i) {
      if (i) areas += " ";
      areas += AreaName(spec.areas[i]);
    }
    std::printf("%-16s %-6s %12llu %12llu %12u %10s\n", spec.name.c_str(),
                areas.c_str(), static_cast<unsigned long long>(tags),
                static_cast<unsigned long long>(spec.author_tags),
                doc.NodeCount(), HumanBytes(bytes).c_str());
  }
  std::printf("%.*s\n", 76, "-----------------------------------------"
                            "-----------------------------------");
  std::printf("%-16s %-6s %12llu %12s %12s %10s\n", "total", "",
              static_cast<unsigned long long>(total_tags), "~81k x scale", "",
              HumanBytes(total_bytes).c_str());
  std::printf("\ngeneration+shredding+indexing: %.1f ms\n", gen_ms);
  return 0;
}
