#include "bench/bench_util.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "classical/rox_order.h"
#include "common/str_util.h"
#include "rox/optimizer.h"

namespace rox::bench {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      std::exit(2);
    }
    size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      kv_.emplace_back(arg.substr(2), "true");
    } else {
      kv_.emplace_back(arg.substr(2, eq - 2), arg.substr(eq + 1));
    }
  }
  used_.assign(kv_.size(), false);
}

namespace {

// Exits with the usage status when a flag value fails to parse.
[[noreturn]] void BadFlagValue(const std::string& key,
                               const std::string& value, const char* want) {
  std::fprintf(stderr, "bad value for --%s: \"%s\" (want %s)\n", key.c_str(),
               value.c_str(), want);
  std::exit(2);
}

double ParseDoubleOrDie(const std::string& key, const std::string& value) {
  char* end = nullptr;
  double v = std::strtod(value.c_str(), &end);
  if (value.empty() || end == nullptr || *end != '\0') {
    BadFlagValue(key, value, "a number");
  }
  return v;
}

int64_t ParseIntOrDie(const std::string& key, const std::string& value) {
  char* end = nullptr;
  int64_t v = std::strtoll(value.c_str(), &end, 10);
  if (value.empty() || end == nullptr || *end != '\0') {
    BadFlagValue(key, value, "an integer");
  }
  return v;
}

}  // namespace

double Flags::GetDouble(const std::string& key, double def) const {
  for (size_t i = 0; i < kv_.size(); ++i) {
    if (kv_[i].first == key) {
      used_[i] = true;
      return ParseDoubleOrDie(key, kv_[i].second);
    }
  }
  return def;
}

int64_t Flags::GetInt(const std::string& key, int64_t def) const {
  for (size_t i = 0; i < kv_.size(); ++i) {
    if (kv_[i].first == key) {
      used_[i] = true;
      return ParseIntOrDie(key, kv_[i].second);
    }
  }
  return def;
}

std::string Flags::GetString(const std::string& key, std::string def) const {
  for (size_t i = 0; i < kv_.size(); ++i) {
    if (kv_[i].first == key) {
      used_[i] = true;
      return kv_[i].second;
    }
  }
  return def;
}

bool Flags::GetBool(const std::string& key, bool def) const {
  for (size_t i = 0; i < kv_.size(); ++i) {
    if (kv_[i].first == key) {
      used_[i] = true;
      const std::string& v = kv_[i].second;
      if (v == "true" || v == "1") return true;
      if (v == "false" || v == "0") return false;
      BadFlagValue(key, v, "true/false/1/0");
    }
  }
  return def;
}

std::vector<int64_t> Flags::GetIntList(
    const std::string& key, const std::vector<int64_t>& def) const {
  for (size_t i = 0; i < kv_.size(); ++i) {
    if (kv_[i].first != key) continue;
    used_[i] = true;
    std::vector<int64_t> out;
    const std::string& v = kv_[i].second;
    size_t start = 0;
    while (start <= v.size()) {
      size_t comma = v.find(',', start);
      if (comma == std::string::npos) comma = v.size();
      out.push_back(ParseIntOrDie(key, v.substr(start, comma - start)));
      start = comma + 1;
    }
    return out;
  }
  return def;
}

void Flags::FailOnUnused() const {
  for (size_t i = 0; i < kv_.size(); ++i) {
    if (!used_[i]) {
      std::fprintf(stderr, "unknown flag: --%s\n", kv_[i].first.c_str());
      std::exit(2);
    }
  }
}

std::vector<Combo> SampleCombos(int per_group, uint64_t seed) {
  const auto& specs = Table3Documents();
  std::vector<Combo> groups[3];
  const std::string names[3] = {"2:2", "3:1", "4:0"};
  int n = static_cast<int>(specs.size());
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      for (int c = b + 1; c < n; ++c) {
        for (int d = c + 1; d < n; ++d) {
          Combo combo;
          combo.spec_indices = {a, b, c, d};
          combo.group = AreaGroup(specs, combo.spec_indices);
          for (int g = 0; g < 3; ++g) {
            if (combo.group == names[g]) groups[g].push_back(combo);
          }
        }
      }
    }
  }
  Rng rng(seed);
  std::vector<Combo> out;
  for (auto& g : groups) {
    if (per_group > 0 && static_cast<int>(g.size()) > per_group) {
      rng.Shuffle(g);
      g.resize(per_group);
    }
    out.insert(out.end(), g.begin(), g.end());
  }
  return out;
}

Result<Corpus> ComboCorpus(const Combo& combo, const DblpGenOptions& gen) {
  std::vector<int> idx(combo.spec_indices.begin(), combo.spec_indices.end());
  return GenerateDblpCorpus(gen, idx);
}

std::optional<ComboMeasurement> MeasureCombo(const Corpus& corpus,
                                             const Combo& combo,
                                             const RoxOptions& rox_options) {
  std::vector<DocId> docs = {0, 1, 2, 3};
  ComboMeasurement m;
  m.combo = combo;
  m.combo.correlation = CorrelationC(corpus, {0, 1, 2, 3});

  // Sub-millisecond runs are repeated and the minimum taken, so fixed
  // noise (allocator warm-up, cache state) does not swamp the ratios.
  constexpr double kMinMeasurableMs = 1.0;
  constexpr int kMaxReps = 5;

  // --- the adaptive ROX run -------------------------------------------------
  DblpQueryGraph q = BuildDblpJoinGraph(corpus, docs);
  std::optional<RoxResult> best_rox;
  for (int rep = 0; rep < kMaxReps; ++rep) {
    RoxOptimizer rox(corpus, q.graph, rox_options);
    auto rox_result = rox.Run();
    if (!rox_result.ok()) {
      std::fprintf(stderr, "ROX failed: %s\n",
                   rox_result.status().ToString().c_str());
      return std::nullopt;
    }
    double full = rox_result->stats.sampling_time.TotalMillis() +
                  rox_result->stats.execution_time.TotalMillis();
    double best_full = !best_rox ? 1e300
                                 : best_rox->stats.sampling_time.TotalMillis() +
                                       best_rox->stats.execution_time
                                           .TotalMillis();
    if (!best_rox || full < best_full) best_rox = std::move(*rox_result);
    if (full >= kMinMeasurableMs && rep >= 1) break;
  }
  const RoxResult& rox_result = *best_rox;
  m.result_rows = rox_result.table.NumRows();
  if (m.result_rows == 0) return std::nullopt;  // paper omits empty combos
  double sampling_ms = rox_result.stats.sampling_time.TotalMillis();
  double exec_ms = rox_result.stats.execution_time.TotalMillis();
  m.rox_full_ms = sampling_ms + exec_ms;
  m.rox_pure_ms = exec_ms;
  m.sampling_overhead_pct = exec_ms > 0 ? 100.0 * sampling_ms / exec_ms : 0;

  // --- canonical classes ----------------------------------------------------
  CanonicalPlanExecutor exec(corpus, docs);
  auto cards = ComputeOrderCardinalities(corpus, docs);
  const OrderCardinality* smallest = &cards[0];
  const OrderCardinality* largest = &cards[0];
  for (const auto& oc : cards) {
    if (oc.cumulative < smallest->cumulative) smallest = &oc;
    if (oc.cumulative > largest->cumulative) largest = &oc;
  }
  JoinOrder classical = ClassicalJoinOrder(corpus, docs);
  m.classical_label = classical.Label();

  auto rox_order = RoxJoinOrderFromRun(q, rox_result);
  JoinOrder rox_jo = rox_order.ok() ? *rox_order : classical;
  m.rox_order_label = rox_jo.Label();

  auto repeat_min = [&](auto&& run_once) -> double {
    double best = -1;
    for (int rep = 0; rep < kMaxReps; ++rep) {
      double t = run_once();
      if (t < 0) return t;
      if (best < 0 || t < best) best = t;
      if (best >= kMinMeasurableMs && rep >= 1) break;
    }
    return best;
  };
  auto run_best = [&](const JoinOrder& o) {
    return repeat_min([&]() {
      auto r = exec.RunBestPlacement(o);
      return r.ok() ? r->elapsed_ms : -1.0;
    });
  };
  m.smallest_ms = run_best(smallest->order);
  m.classical_ms = run_best(classical);
  m.rox_order_ms = run_best(rox_jo);
  m.largest_ms = repeat_min([&]() {
    auto r = exec.RunWorstPlacement(largest->order);
    return r.ok() ? r->elapsed_ms : -1.0;
  });

  m.optimal_ms = m.rox_pure_ms;
  for (double v : {m.smallest_ms, m.classical_ms, m.rox_order_ms}) {
    if (v > 0 && v < m.optimal_ms) m.optimal_ms = v;
  }
  return m;
}

double GeoMean(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  double s = 0;
  for (double x : xs) s += std::log(std::max(x, 1e-9));
  return std::exp(s / xs.size());
}

}  // namespace rox::bench
