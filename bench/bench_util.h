// Shared plumbing for the experiment benches: flag parsing, document-
// combination enumeration/grouping, and the per-combination plan-class
// measurement pipeline used by Figures 6-8.

#ifndef ROX_BENCH_BENCH_UTIL_H_
#define ROX_BENCH_BENCH_UTIL_H_

#include <array>
#include <optional>
#include <string>
#include <vector>

#include "classical/executor.h"
#include "classical/plans.h"
#include "common/rng.h"
#include "index/corpus.h"
#include "rox/options.h"
#include "workload/dblp.h"

namespace rox::bench {

// Minimal --key=value flag parser. Malformed arguments, unparsable
// numeric/bool values and (via FailOnUnused) unknown flags all exit
// with status 2, so CI smoke steps fail fast on a typo instead of
// silently benchmarking with a default-ish garbage value (strtod on
// "abc" is 0.0).
class Flags {
 public:
  Flags(int argc, char** argv);

  double GetDouble(const std::string& key, double def) const;
  int64_t GetInt(const std::string& key, int64_t def) const;
  bool GetBool(const std::string& key, bool def) const;
  std::string GetString(const std::string& key, std::string def) const;
  // Comma-separated integer list, e.g. --shards=1,2,4,8.
  std::vector<int64_t> GetIntList(const std::string& key,
                                  const std::vector<int64_t>& def) const;

  // Flags that were consumed via Get* (for usage checking).
  void FailOnUnused() const;

 private:
  std::vector<std::pair<std::string, std::string>> kv_;
  mutable std::vector<bool> used_;
};

// One 4-document combination with its group and correlation.
struct Combo {
  std::array<int, 4> spec_indices;  // into Table3Documents()
  std::string group;                // "2:2", "3:1", "4:0"
  double correlation = 0.0;         // filled after corpus generation
};

// Enumerates all 4-of-23 combinations that fall into the paper's three
// groups, then samples up to `per_group` of each (deterministically
// from `seed`); per_group <= 0 keeps everything.
std::vector<Combo> SampleCombos(int per_group, uint64_t seed);

// Measured timings of all plan classes for one combination (Fig. 6's
// y-values, before normalization).
struct ComboMeasurement {
  Combo combo;
  // Canonical classes (min over placements except `largest` = max).
  double smallest_ms = 0, largest_ms = 0, classical_ms = 0, rox_order_ms = 0;
  // The adaptive ROX runs.
  double rox_full_ms = 0;  // incl. sampling
  double rox_pure_ms = 0;  // excl. sampling
  // The fastest plan seen anywhere (normalization baseline).
  double optimal_ms = 0;
  std::string rox_order_label;
  std::string classical_label;
  uint64_t result_rows = 0;
  // ROX stats of interest.
  double sampling_overhead_pct = 0;  // 100*(full-pure)/pure
};

// Runs the whole Figure-6 measurement pipeline for one combination:
// generates nothing (corpus supplied), runs ROX, extracts its join
// order, enumerates order cardinalities, and measures the four
// canonical classes. Returns nullopt when the combination yields an
// empty result (the paper omits those).
std::optional<ComboMeasurement> MeasureCombo(const Corpus& corpus,
                                             const Combo& combo,
                                             const RoxOptions& rox_options);

// Generates the corpus for a combo (only its 4 documents).
Result<Corpus> ComboCorpus(const Combo& combo, const DblpGenOptions& gen);

// Geometric mean helper for report aggregation.
double GeoMean(const std::vector<double>& xs);

}  // namespace rox::bench

#endif  // ROX_BENCH_BENCH_UTIL_H_
