// Figure 8 — "Impact of Sample Size τ on Sampling Overhead".
//
// Runs ROX over sampled combinations with τ ∈ {25, 100, 400} and
// reports the average relative sampling overhead 100·(R−r)/r per group,
// where R includes sampling and r is the pure execution time.
//
// Paper-vs-measured shape: overhead grows with τ; 25 vs 100 differ only
// marginally while 400 costs clearly more — supporting the default
// τ=100.
//
// Flags: --per_group=20 --tag_scale=1.0 --scale=2 --seed=N

#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "rox/optimizer.h"
#include "workload/dblp.h"

int main(int argc, char** argv) {
  using namespace rox;
  bench::Flags flags(argc, argv);
  int per_group = static_cast<int>(flags.GetInt("per_group", 20));
  DblpGenOptions gen;
  gen.tag_scale = flags.GetDouble("tag_scale", 1.0);
  gen.scale = static_cast<uint32_t>(flags.GetInt("scale", 2));
  gen.seed = static_cast<uint64_t>(flags.GetInt("seed", gen.seed));
  flags.FailOnUnused();

  const uint64_t taus[] = {25, 100, 400};
  std::vector<bench::Combo> combos = bench::SampleCombos(per_group, 99);
  std::printf("Figure 8: sampling overhead vs sample size tau "
              "(%zu combinations, tag_scale=%.3g)\n\n",
              combos.size(), gen.tag_scale);

  // group -> tau -> (sum overhead, n)
  std::map<std::string, std::map<uint64_t, std::pair<double, int>>> agg;
  for (const bench::Combo& combo : combos) {
    auto corpus = bench::ComboCorpus(combo, gen);
    if (!corpus.ok()) continue;
    DblpQueryGraph q = BuildDblpJoinGraph(*corpus, {0, 1, 2, 3});
    for (uint64_t tau : taus) {
      RoxOptions opt;
      opt.tau = tau;
      RoxOptimizer rox(*corpus, q.graph, opt);
      auto r = rox.Run();
      if (!r.ok() || r->table.NumRows() == 0) continue;
      double exec = r->stats.execution_time.TotalMillis();
      double samp = r->stats.sampling_time.TotalMillis();
      if (exec <= 0) continue;
      auto& cell = agg[combo.group][tau];
      cell.first += 100.0 * samp / exec;
      cell.second += 1;
    }
  }

  std::printf("%-6s", "group");
  for (uint64_t tau : taus) std::printf("  tau=%-4llu",
                                        static_cast<unsigned long long>(tau));
  std::printf("   (avg sampling overhead %% over pure plan)\n");
  double all_sum[3] = {0, 0, 0};
  int all_n[3] = {0, 0, 0};
  for (const char* gname : {"2:2", "3:1", "4:0"}) {
    auto it = agg.find(gname);
    if (it == agg.end()) continue;
    std::printf("%-6s", gname);
    int ti = 0;
    for (uint64_t tau : taus) {
      auto& cell = it->second[tau];
      double avg = cell.second ? cell.first / cell.second : 0;
      std::printf("  %8.1f", avg);
      all_sum[ti] += cell.first;
      all_n[ti] += cell.second;
      ++ti;
    }
    std::printf("\n");
  }
  std::printf("%-6s", "all");
  for (int ti = 0; ti < 3; ++ti) {
    std::printf("  %8.1f", all_n[ti] ? all_sum[ti] / all_n[ti] : 0.0);
  }
  std::printf("\n");
  return 0;
}
