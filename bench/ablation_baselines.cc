// Ablation bench (DESIGN.md §5): one optimizer family, four policies,
// same engine, same queries — isolating what run-time feedback buys.
//
//   rox          — full ROX (chain sampling + re-sampling)
//   rox-greedy   — ROX without chain sampling (greedy min-weight)
//   rox-stale    — ROX without re-sampling (independence assumption)
//   static       — compile-time plan, no run-time feedback
//   progressive  — static plan + validity-range re-optimization [24,25]
//   approx(10%)  — ROX on 10% sampled tables (§6 future work)
//
// Run on the XMark Q1/Qm1 pair (correlation flips the right order) and
// on a correlated DBLP combination. Reported: cumulative intermediate
// rows (plan quality) and wall-clock.
//
// Flags: --auctions=4800 --tag_scale=0.5 --seed=N

#include <cstdio>

#include "bench/bench_util.h"
#include "classical/static_optimizer.h"
#include "rox/optimizer.h"
#include "workload/dblp.h"
#include "workload/xmark.h"

namespace {

using namespace rox;

struct Row {
  const char* name;
  uint64_t rows = 0;
  uint64_t cumulative = 0;
  double ms = 0;
  int replans = -1;
};

void Report(const char* title, const std::vector<Row>& rows) {
  std::printf("%s\n", title);
  std::printf("  %-12s %12s %14s %10s %8s\n", "policy", "result", "cumulative",
              "ms", "replans");
  for (const Row& r : rows) {
    std::printf("  %-12s %12llu %14llu %10.2f", r.name,
                static_cast<unsigned long long>(r.rows),
                static_cast<unsigned long long>(r.cumulative), r.ms);
    if (r.replans >= 0) {
      std::printf(" %8d", r.replans);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

std::vector<Row> RunPolicies(const Corpus& corpus, const JoinGraph& graph) {
  std::vector<Row> out;
  auto add_rox = [&](const char* name, RoxOptions opt) {
    RoxOptimizer rox(corpus, graph, opt);
    auto r = rox.Run();
    if (!r.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", name,
                   r.status().ToString().c_str());
      return;
    }
    out.push_back({name, r->table.NumRows(),
                   r->stats.cumulative_intermediate_rows,
                   r->stats.sampling_time.TotalMillis() +
                       r->stats.execution_time.TotalMillis(),
                   -1});
  };
  add_rox("rox", {});
  {
    RoxOptions o;
    o.enable_chain_sampling = false;
    add_rox("rox-greedy", o);
  }
  {
    RoxOptions o;
    o.resample_after_execute = false;
    add_rox("rox-stale", o);
  }
  {
    StaticPlan plan = PlanStatically(corpus, graph);
    auto r = ExecuteStaticPlan(corpus, graph, plan);
    if (r.ok()) {
      out.push_back({"static", r->table.NumRows(),
                     r->stats.cumulative_intermediate_rows,
                     r->stats.execution_time.TotalMillis(), -1});
    }
  }
  {
    auto r = ExecuteProgressively(corpus, graph);
    if (r.ok()) {
      out.push_back({"progressive", r->result.table.NumRows(),
                     r->result.stats.cumulative_intermediate_rows,
                     r->result.stats.execution_time.TotalMillis(),
                     r->replans});
    }
  }
  {
    RoxOptions o;
    o.approximate_fraction = 0.1;
    add_rox("approx(10%)", o);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rox;
  bench::Flags flags(argc, argv);
  XmarkGenOptions xgen;
  xgen.open_auctions =
      static_cast<uint32_t>(flags.GetInt("auctions", 4800));
  xgen.items = xgen.open_auctions * 2;
  xgen.persons = static_cast<uint32_t>(xgen.open_auctions * 2.1);
  xgen.seed = static_cast<uint64_t>(flags.GetInt("seed", xgen.seed));
  double tag_scale = flags.GetDouble("tag_scale", 0.5);
  flags.FailOnUnused();

  std::printf("Optimizer-policy ablation on one engine\n\n");

  Corpus xmark;
  auto doc = GenerateXmarkDocument(xmark, xgen);
  if (!doc.ok()) return 1;
  for (bool less_than : {true, false}) {
    XmarkQ1Graph q = BuildXmarkQ1Graph(xmark, *doc, 145.0, less_than);
    Report(less_than ? "XMark Q1 (current < 145, few bidders)"
                     : "XMark Qm1 (current > 145, many bidders)",
           RunPolicies(xmark, q.graph));
  }

  DblpGenOptions dgen;
  dgen.tag_scale = tag_scale;
  auto corpus = GenerateDblpCorpus(dgen, {19, 20, 21, 22});
  if (!corpus.ok()) return 1;
  DblpQueryGraph q = BuildDblpJoinGraph(*corpus, {0, 1, 2, 3});
  Report("DBLP ADBIS+SIGMOD+ICDE+VLDB (all-DB, correlated)",
         RunPolicies(*corpus, q.graph));
  return 0;
}
