// Figure 6 — "Elapsed Time of ROX vs Four Plan Classes".
//
// For sampled 4-document combinations of the three area groups (2:2,
// 3:1, 4:0), measures elapsed time of:
//   largest    — worst canonical placement of the largest join order,
//   classical  — best canonical placement of the classical order,
//   ROX-order  — best canonical placement of the join order ROX chose,
//   smallest   — best canonical placement of the smallest order,
//   ROX full   — the adaptive run including sampling,
//   ROX pure   — the adaptive run's execution time only,
// each normalized to the fastest plan seen for that combination.
//
// Paper-vs-measured shape: ROX pure sits at ~1x across all groups
// (insensitive to correlation); classical shows strong variance and
// exceeds ROX by growing factors as correlation rises (paper: 3.4x /
// 6x / 7.9x on average in groups 2:2 / 3:1 / 4:0); sampling overhead
// stays small (~30% average).
//
// Flags: --per_group=12 --tag_scale=1.0 --scale=4 --tau=100 --seed=N
//        --verbose (per-combination rows) --ablate (re-run ROX without
//        re-sampling / without chain sampling and report plan quality)

#include <algorithm>
#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "rox/optimizer.h"

namespace {

using namespace rox;
using bench::Combo;
using bench::ComboMeasurement;

struct GroupAgg {
  std::vector<double> largest, classical_, rox_order, smallest, rox_full,
      rox_pure, overhead;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace rox;
  bench::Flags flags(argc, argv);
  int per_group = static_cast<int>(flags.GetInt("per_group", 12));
  DblpGenOptions gen;
  gen.tag_scale = flags.GetDouble("tag_scale", 1.0);
  gen.scale = static_cast<uint32_t>(flags.GetInt("scale", 4));
  gen.seed = static_cast<uint64_t>(flags.GetInt("seed", gen.seed));
  RoxOptions rox_opt;
  rox_opt.tau = static_cast<uint64_t>(flags.GetInt("tau", 100));
  bool verbose = flags.GetBool("verbose", false);
  bool ablate = flags.GetBool("ablate", false);
  flags.FailOnUnused();

  std::vector<Combo> combos = bench::SampleCombos(per_group, 4242);
  std::printf("Figure 6: ROX vs plan classes over %zu document "
              "combinations (per_group=%d, tag_scale=%.3g, tau=%llu)\n\n",
              combos.size(), per_group, gen.tag_scale,
              static_cast<unsigned long long>(rox_opt.tau));

  if (verbose) {
    std::printf("%-4s %9s %8s %8s %8s %8s %8s %8s  %-12s %-12s\n", "grp",
                "corr", "largest", "classic", "roxord", "smallest", "roxfull",
                "roxpure", "rox order", "classical");
  }

  std::map<std::string, GroupAgg> agg;
  std::map<std::string, GroupAgg> agg_ablate;
  int skipped = 0;
  for (const Combo& combo : combos) {
    auto corpus = bench::ComboCorpus(combo, gen);
    if (!corpus.ok()) continue;
    auto m = bench::MeasureCombo(*corpus, combo, rox_opt);
    if (!m) {
      ++skipped;
      continue;
    }
    double base = std::max(m->optimal_ms, 1e-3);
    GroupAgg& g = agg[m->combo.group];
    g.largest.push_back(m->largest_ms / base);
    g.classical_.push_back(m->classical_ms / base);
    g.rox_order.push_back(m->rox_order_ms / base);
    g.smallest.push_back(m->smallest_ms / base);
    g.rox_full.push_back(m->rox_full_ms / base);
    g.rox_pure.push_back(m->rox_pure_ms / base);
    g.overhead.push_back(m->sampling_overhead_pct);
    if (verbose) {
      std::printf(
          "%-4s %9.2f %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f  %-12s %-12s "
          "opt=%.3fms rows=%llu\n",
          m->combo.group.c_str(), m->combo.correlation, m->largest_ms / base,
          m->classical_ms / base, m->rox_order_ms / base,
          m->smallest_ms / base, m->rox_full_ms / base, m->rox_pure_ms / base,
          m->rox_order_label.c_str(), m->classical_label.c_str(), base,
          static_cast<unsigned long long>(m->result_rows));
    }
    if (ablate) {
      // Ablation A: no re-sampling after execution (independence
      // assumption); Ablation B: greedy, no chain sampling.
      for (int which : {0, 1}) {
        RoxOptions o = rox_opt;
        if (which == 0) {
          o.resample_after_execute = false;
        } else {
          o.enable_chain_sampling = false;
        }
        auto m2 = bench::MeasureCombo(*corpus, combo, o);
        if (!m2) continue;
        GroupAgg& ga = agg_ablate[m->combo.group + (which == 0
                                                        ? " no-resample"
                                                        : " no-chain")];
        ga.rox_pure.push_back(m2->rox_pure_ms / base);
        ga.rox_full.push_back(m2->rox_full_ms / base);
      }
    }
  }

  std::printf("\n%-5s %6s | %9s %9s %9s %9s %9s %9s %10s\n", "group", "n",
              "largest", "classical", "rox-order", "smallest", "rox-full",
              "rox-pure", "overhead%");
  for (const char* gname : {"2:2", "3:1", "4:0"}) {
    auto it = agg.find(gname);
    if (it == agg.end()) continue;
    const GroupAgg& g = it->second;
    auto mean = [](const std::vector<double>& v) {
      double s = 0;
      for (double x : v) s += x;
      return v.empty() ? 0.0 : s / v.size();
    };
    std::printf("%-5s %6zu | %9.2f %9.2f %9.2f %9.2f %9.2f %9.2f %10.1f\n",
                gname, g.rox_pure.size(), mean(g.largest),
                mean(g.classical_), mean(g.rox_order), mean(g.smallest),
                mean(g.rox_full), mean(g.rox_pure), mean(g.overhead));
  }
  std::printf("(values are mean elapsed time normalized to the fastest "
              "plan per combination; %d empty combinations skipped)\n",
              skipped);

  if (ablate && !agg_ablate.empty()) {
    std::printf("\nAblations (normalized rox-pure / rox-full):\n");
    for (const auto& [name, g] : agg_ablate) {
      double sp = 0, sf = 0;
      for (double x : g.rox_pure) sp += x;
      for (double x : g.rox_full) sf += x;
      size_t n = std::max<size_t>(g.rox_pure.size(), 1);
      std::printf("  %-18s n=%zu pure=%.2f full=%.2f\n", name.c_str(),
                  g.rox_pure.size(), sp / n, sf / n);
    }
  }
  return 0;
}
