// Single-query scaling with sharded intra-query execution: sweeps the
// shard count over {1, 2, 4, 8} (configurable) on the XMark workload
// and reports the per-query wall time and the speedup over the 1-shard
// run. 1 shard takes the exact pre-sharding code path, and every
// level's result item sequence is compared against an unsharded
// baseline run — the sweep measures wall-clock only, the results must
// be bit-identical (the process exits 1 when they are not).
//
//   $ ./bench_sharded_scaling [--xmark_scale=1.0] [--shards=1,2,4,8]
//        [--repeat=5] [--tau=100] [--seed=42] [--shard_threads=0]
//        [--require_speedup=0] [--sample_shard=-1]
//
// --require_speedup=R additionally fails the run unless the 4-shard
// level (or the largest level when 4 is not swept) reaches an RxB
// speedup — used to gate multi-core performance runs; CI smoke runs
// leave it off since shared runners have unpredictable core counts.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "index/sharded_corpus.h"
#include "rox/options.h"
#include "workload/xmark.h"
#include "xq/compile.h"

namespace rox::bench {
namespace {

std::vector<std::string> ScalingQueries() {
  return {
      // Q1: the cheap side of the price/bidder correlation.
      R"(let $d := doc("xmark.xml")
         for $o in $d//open_auction[.//current/text() < 145],
             $p in $d//person[.//province],
             $i in $d//item[./quantity = 1]
         where $o//bidder//personref/@person = $p/@id and
               $o//itemref/@item = $i/@id
         return $o)",
      // Qm1: the expensive side (the bidder route joins ~6x the rows).
      R"(let $d := doc("xmark.xml")
         for $o in $d//open_auction[.//current/text() > 145],
             $p in $d//person[.//province],
             $i in $d//item[./quantity = 1]
         where $o//bidder//personref/@person = $p/@id and
               $o//itemref/@item = $i/@id
         return $o)",
  };
}

struct QueryRun {
  double best_ms = 0;
  std::vector<Pre> items;
  RoxStats stats;
};

// Runs `compiled` `repeat` times with the given sharding (null = the
// unsharded pre-PR executor) and keeps the fastest run.
Result<QueryRun> RunOne(const Corpus& corpus,
                        const xq::CompiledQuery& compiled,
                        const RoxOptions& base, const ShardedExec* sharded,
                        int repeat) {
  QueryRun out;
  for (int r = 0; r < repeat; ++r) {
    RoxOptions rox = base;
    rox.sharded = sharded;
    RoxStats stats;
    StopWatch watch;
    auto items = xq::RunXQuery(corpus, compiled, rox, &stats);
    double ms = watch.ElapsedMillis();
    ROX_RETURN_IF_ERROR(items.status());
    if (r == 0 || ms < out.best_ms) {
      out.best_ms = ms;
      out.stats = stats;
    }
    if (r == 0) {
      out.items = std::move(*items);
    } else if (*items != out.items) {
      return Status::Internal(
          "result items differ between repeats of the same configuration");
    }
  }
  return out;
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const double xmark_scale = flags.GetDouble("xmark_scale", 1.0);
  const std::vector<int64_t> shard_levels =
      flags.GetIntList("shards", {1, 2, 4, 8});
  const int repeat = static_cast<int>(flags.GetInt("repeat", 5));
  const uint64_t tau = static_cast<uint64_t>(flags.GetInt("tau", 100));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const size_t shard_threads =
      static_cast<size_t>(flags.GetInt("shard_threads", 0));
  const double require_speedup = flags.GetDouble("require_speedup", 0.0);
  const int sample_shard =
      static_cast<int>(flags.GetInt("sample_shard", ShardedExec::kSampleUnion));
  flags.FailOnUnused();
  for (int64_t k : shard_levels) {
    if (k < 1 || k > 1024) {
      std::fprintf(stderr,
                   "bad value for --shards: %lld (want 1..1024 per level)\n",
                   static_cast<long long>(k));
      return 2;
    }
  }
  if (shard_threads > 64) {
    std::fprintf(stderr, "bad value for --shard_threads: %zu (want <= 64)\n",
                 shard_threads);
    return 2;
  }

  Corpus corpus;
  XmarkGenOptions gen;
  gen.items = static_cast<uint32_t>(4350 * xmark_scale);
  gen.persons = static_cast<uint32_t>(5100 * xmark_scale);
  gen.open_auctions = static_cast<uint32_t>(2400 * xmark_scale);
  auto doc = GenerateXmarkDocument(corpus, gen);
  if (!doc.ok()) {
    std::fprintf(stderr, "corpus: %s\n", doc.status().ToString().c_str());
    return 1;
  }
  std::printf("XMark scale %.2f: %u nodes; %d repeats per level\n",
              xmark_scale, corpus.doc(*doc).NodeCount(), repeat);

  std::vector<std::string> queries = ScalingQueries();
  std::vector<xq::CompiledQuery> compiled;
  for (const std::string& q : queries) {
    auto c = xq::CompileXQuery(corpus, q);
    if (!c.ok()) {
      std::fprintf(stderr, "compile: %s\n", c.status().ToString().c_str());
      return 1;
    }
    compiled.push_back(std::move(*c));
  }

  RoxOptions rox;
  rox.tau = tau;
  rox.seed = seed;

  // Unsharded baseline: the executor exactly as it was before sharding
  // existed. All sweep levels are checked against its items.
  std::vector<QueryRun> baseline;
  double baseline_total = 0;
  for (size_t q = 0; q < compiled.size(); ++q) {
    auto run = RunOne(corpus, compiled[q], rox, nullptr, repeat);
    if (!run.ok()) {
      std::fprintf(stderr, "baseline: %s\n",
                   run.status().ToString().c_str());
      return 1;
    }
    baseline_total += run->best_ms;
    baseline.push_back(std::move(*run));
  }
  std::printf("unsharded baseline: %.1f ms total (%zu + %zu items)\n\n",
              baseline_total, baseline[0].items.size(),
              baseline[1].items.size());

  std::printf(
      " shards | total ms | speedup | sampling ms | exec ms | fan-outs | "
      "identical results\n");
  bool all_identical = true;
  double speedup_at_gate = 0;
  int64_t gate_level = 0;
  for (int64_t k : shard_levels) {
    if (k == 4 || (gate_level != 4 && k > gate_level)) gate_level = k;
  }
  for (int64_t k : shard_levels) {
    if (k < 1) continue;
    size_t workers = shard_threads > 0 ? shard_threads
                                       : static_cast<size_t>(k);
    workers = std::min<size_t>(workers, 64);  // same cap as the Engine
    ThreadPool pool(workers);
    ShardedCorpus shards(corpus, static_cast<size_t>(k), &pool);
    ShardedExec ex;
    ex.shards = &shards;
    ex.pool = &pool;
    ex.sample_shard = sample_shard;
    double total_ms = 0, sampling_ms = 0, exec_ms = 0;
    uint64_t fanouts = 0;
    bool identical = true;
    for (size_t q = 0; q < compiled.size(); ++q) {
      auto run = RunOne(corpus, compiled[q], rox, &ex, repeat);
      if (!run.ok()) {
        std::fprintf(stderr, "%lld shards: %s\n",
                     static_cast<long long>(k),
                     run.status().ToString().c_str());
        return 1;
      }
      total_ms += run->best_ms;
      sampling_ms += run->stats.sampling_time.TotalMillis();
      exec_ms += run->stats.execution_time.TotalMillis();
      fanouts += run->stats.sharded.fanouts;
      identical &= run->items == baseline[q].items;
    }
    all_identical &= identical;
    double speedup = total_ms > 0 ? baseline_total / total_ms : 0;
    if (k == gate_level) speedup_at_gate = speedup;
    std::printf("  %5lld | %8.1f |  %5.2fx | %11.1f | %7.1f | %8llu | %s\n",
                static_cast<long long>(k), total_ms, speedup, sampling_ms,
                exec_ms, static_cast<unsigned long long>(fanouts),
                identical ? "yes" : "NO");
  }

  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: sharded results differ from the unsharded baseline\n");
    return 1;
  }
  if (require_speedup > 0 && speedup_at_gate < require_speedup) {
    std::fprintf(stderr,
                 "FAIL: %.2fx speedup at %lld shards < required %.2fx\n",
                 speedup_at_gate, static_cast<long long>(gate_level),
                 require_speedup);
    return 1;
  }
  std::printf("\nall levels returned results identical to the unsharded "
              "baseline\n");
  return 0;
}

}  // namespace
}  // namespace rox::bench

int main(int argc, char** argv) { return rox::bench::Main(argc, argv); }
