// Figure 7 — "Scaling Document Sizes".
//
// Repeats the Figure 6 measurement at three corpus scales (the paper's
// ×1 / ×10 / ×100 article replication) and reports, per scale and per
// group, the average normalized time of the five plan types.
//
// Paper-vs-measured shape: the relative sampling overhead is largest
// on the small corpus (the paper: "the full ROX run is almost twice as
// slow for small documents") and shrinks considerably as documents
// grow, while the ROX plan itself stays near its canonical-order class
// at every scale.
//
// Flags: --per_group=12 --tag_scale=0.5 --scale0=1 --scale1=4
//        --scale2=16 --tau=100 --seed=N

#include <cstdio>
#include <map>
#include <cstdlib>

#include "bench/bench_util.h"
#include "common/str_util.h"
#include "rox/optimizer.h"

int main(int argc, char** argv) {
  using namespace rox;
  bench::Flags flags(argc, argv);
  int per_group = static_cast<int>(flags.GetInt("per_group", 12));
  double tag_scale = flags.GetDouble("tag_scale", 0.5);
  int64_t tau = flags.GetInt("tau", 100);
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 20090629));
  // Replication factors; the paper uses 1,10,100 — the default shrinks
  // the ladder so the bench finishes in seconds (pass --scales=1,10,100
  // for the full ladder).
  // Flags only supports typed getters; the ladder is three ints.
  int64_t s0 = flags.GetInt("scale0", 1);
  int64_t s1 = flags.GetInt("scale1", 4);
  int64_t s2 = flags.GetInt("scale2", 16);
  flags.FailOnUnused();
  std::vector<uint32_t> scales = {static_cast<uint32_t>(s0),
                                  static_cast<uint32_t>(s1),
                                  static_cast<uint32_t>(s2)};

  std::vector<bench::Combo> combos = bench::SampleCombos(per_group, 777);
  std::printf("Figure 7: plan classes vs document scale "
              "(%zu combinations/scale, base tag_scale=%.3g)\n\n",
              combos.size(), tag_scale);
  std::printf("%-7s %-5s %6s | %9s %9s %9s %9s %9s %10s\n", "scale",
              "group", "n", "rox-pure", "rox-full", "smallest", "classical",
              "largest", "overhead%");

  RoxOptions rox_opt;
  rox_opt.tau = static_cast<uint64_t>(tau);

  for (uint32_t scale : scales) {
    DblpGenOptions gen;
    gen.tag_scale = tag_scale;
    gen.scale = scale;
    gen.seed = seed;
    struct Agg {
      double pure = 0, full = 0, smallest = 0, classical_ = 0, largest = 0;
      double overhead = 0;
      int n = 0;
    };
    std::map<std::string, Agg> agg;
    for (const bench::Combo& combo : combos) {
      auto corpus = bench::ComboCorpus(combo, gen);
      if (!corpus.ok()) continue;
      auto m = bench::MeasureCombo(*corpus, combo, rox_opt);
      if (!m) continue;
      double base = std::max(m->optimal_ms, 1e-3);
      Agg& a = agg[m->combo.group];
      a.pure += m->rox_pure_ms / base;
      a.full += m->rox_full_ms / base;
      a.smallest += m->smallest_ms / base;
      a.classical_ += m->classical_ms / base;
      a.largest += m->largest_ms / base;
      a.overhead += m->sampling_overhead_pct;
      ++a.n;
    }
    for (const char* gname : {"2:2", "3:1", "4:0"}) {
      auto it = agg.find(gname);
      if (it == agg.end() || it->second.n == 0) continue;
      const Agg& a = it->second;
      std::printf("x%-6u %-5s %6d | %9.2f %9.2f %9.2f %9.2f %9.2f %10.1f\n",
                  scale, gname, a.n, a.pure / a.n, a.full / a.n,
                  a.smallest / a.n, a.classical_ / a.n, a.largest / a.n,
                  a.overhead / a.n);
    }
    // "all" row.
    Agg all;
    for (auto& [k, a] : agg) {
      all.pure += a.pure;
      all.full += a.full;
      all.smallest += a.smallest;
      all.classical_ += a.classical_;
      all.largest += a.largest;
      all.overhead += a.overhead;
      all.n += a.n;
    }
    if (all.n > 0) {
      std::printf("x%-6u %-5s %6d | %9.2f %9.2f %9.2f %9.2f %9.2f %10.1f\n",
                  scale, "all", all.n, all.pure / all.n, all.full / all.n,
                  all.smallest / all.n, all.classical_ / all.n,
                  all.largest / all.n, all.overhead / all.n);
    }
  }
  return 0;
}
