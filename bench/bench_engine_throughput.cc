// Engine throughput under concurrent load: sweeps RunBatch concurrency
// {1, 4, 16} over a mixed XMark + DBLP query set served from one shared
// corpus, and reports queries/sec, latency percentiles and cache hit
// rates per level.
//
// Protocol. One Engine serves the whole sweep (a session), so the
// first level pays the cold compiles/sampling and later levels benefit
// from the plan/weight/result cache exactly as a long-running server
// would — the per-level cache hit rates printed alongside make the
// source of every speedup visible. A second sweep with result caching
// disabled isolates the warm-start (plan + learned weight reuse)
// contribution: every query executes, but Phase 1 sampling is
// amortized. Pass --isolate=1 to instead give every level a fresh
// engine (cold cache), which measures pure thread scaling.
//
//   $ ./bench_engine_throughput [--repeat=6] [--threads=16] [--tau=100]
//        [--xmark_scale=0.4] [--dblp_tag_scale=0.2] [--isolate=0]
//        [--skip_warm_sweep=0] [--seed=42] [--num_shards=1]
//        [--min_qps=0]
//
// --trace_overhead=1 runs a different experiment instead of the
// sweeps: the same executed workload (result cache off) through two
// otherwise-identical engines, one with trace_level=off and one with
// trace_level=spans, interleaved best-of---overhead_rounds. It reports
// the spans-level q/s cost, writes --json (default
// BENCH_engine_trace_overhead.json), and fails when the overhead
// exceeds --max_trace_overhead_pct (0 disables the gate). This is the
// CI guard on the "near-zero cost when off, cheap when on" trace
// contract (DESIGN.md §12).
//
// --overload=1 runs the admission-control experiment instead
// (DESIGN.md §13): one engine with a small admission gate
// (--overload_cap concurrent, --overload_queue queued) is driven at
// 10x the cap. It fails unless every refused query carries a
// governance code (shed / deadline / cancelled — never a crash or an
// internal error), at least one query was shed, at least one ran to
// completion, and the p95 latency of completed queries stays under
// --overload_max_p95_ms — i.e. overload degrades by shedding, not by
// collapsing.
//
// Exit status: 0 only when every query of every level succeeded and
// every level reached --min_qps queries/sec (so a CI smoke run fails
// on broken flags or a silently failing workload instead of printing
// a zero-throughput table and exiting 0).

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "engine/engine.h"
#include "workload/dblp.h"
#include "workload/xmark.h"

namespace rox::bench {
namespace {

Result<Corpus> BuildMixedCorpus(double xmark_scale, double dblp_tag_scale,
                                uint32_t dblp_scale) {
  Corpus corpus;
  XmarkGenOptions xmark;
  xmark.items = static_cast<uint32_t>(4350 * xmark_scale);
  xmark.persons = static_cast<uint32_t>(5100 * xmark_scale);
  xmark.open_auctions = static_cast<uint32_t>(2400 * xmark_scale);
  ROX_RETURN_IF_ERROR(GenerateXmarkDocument(corpus, xmark).status());

  DblpGenOptions dblp;
  dblp.scale = dblp_scale;
  dblp.tag_scale = dblp_tag_scale;
  // MLDM, INEX, SPIRE, ADBIS, EDBT, SIGMOD — two IR venues, three DB
  // venues and one DM venue from Table 3, small enough for quick runs
  // but with the same-area author overlap the ROX experiments rely on.
  ROX_RETURN_IF_ERROR(
      AddDblpDocuments(corpus, dblp, {7, 11, 12, 18, 19, 20}).status());
  return corpus;
}

std::vector<std::string> DistinctQueries() {
  return {
      // XMark: the paper's Q1 (3-way, cheap side).
      R"(let $d := doc("xmark.xml")
         for $o in $d//open_auction[.//current/text() < 145],
             $p in $d//person[.//province],
             $i in $d//item[./quantity = 1]
         where $o//bidder//personref/@person = $p/@id and
               $o//itemref/@item = $i/@id
         return $o)",
      // XMark: Qm1 (expensive side of the correlation).
      R"(let $d := doc("xmark.xml")
         for $o in $d//open_auction[.//current/text() > 145],
             $p in $d//person[.//province],
             $i in $d//item[./quantity = 1]
         where $o//bidder//personref/@person = $p/@id and
               $o//itemref/@item = $i/@id
         return $o)",
      // XMark: bidder -> person lookup join.
      R"(for $b in doc("xmark.xml")//bidder//personref,
             $p in doc("xmark.xml")//person
         where $b/@person = $p/@id
         return $p)",
      // XMark: selective single-document scans.
      R"(for $p in doc("xmark.xml")//person[.//province] return $p)",
      R"(for $i in doc("xmark.xml")//item[./quantity = 1] return $i)",
      // DBLP: 2-way and 3-way author joins (Figure 4 shape).
      R"(for $a in doc("SIGMOD")//author, $b in doc("EDBT")//author
         where $a/text() = $b/text()
         return $a)",
      R"(for $a in doc("SIGMOD")//author, $b in doc("EDBT")//author,
             $c in doc("ADBIS")//author
         where $a/text() = $b/text() and $a/text() = $c/text()
         return $a)",
      R"(for $a in doc("SPIRE")//author, $b in doc("INEX")//author
         where $a/text() = $b/text()
         return $a)",
  };
}

std::vector<std::string> BuildWorkload(int repeat, uint64_t seed) {
  std::vector<std::string> distinct = DistinctQueries();
  std::vector<std::string> workload;
  for (int r = 0; r < repeat; ++r) {
    workload.insert(workload.end(), distinct.begin(), distinct.end());
  }
  Rng rng(seed);
  rng.Shuffle(workload);
  return workload;
}

struct LevelResult {
  size_t concurrency = 0;
  double wall_ms = 0;
  double qps = 0;
  size_t failed = 0;
  engine::EngineStats stats;
};

LevelResult RunLevel(engine::Engine& eng,
                     const std::vector<std::string>& workload,
                     size_t concurrency) {
  eng.ResetStats();
  StopWatch watch;
  std::vector<engine::QueryResult> results =
      eng.RunBatch(workload, concurrency);
  LevelResult out;
  out.concurrency = concurrency;
  out.wall_ms = watch.ElapsedMillis();
  out.qps = 1000.0 * static_cast<double>(workload.size()) / out.wall_ms;
  out.stats = eng.Stats();
  size_t items = 0;
  for (const auto& r : results) {
    if (!r.ok()) {
      std::fprintf(stderr, "query failed: %s\n", r.status.ToString().c_str());
      ++out.failed;
    } else {
      items += r.items->size();
    }
  }
  if (out.failed > 0) {
    std::fprintf(stderr, "%zu of %zu queries failed\n", out.failed,
                 workload.size());
  }
  std::printf("  (checksum: %zu result items)\n", items);
  return out;
}

void PrintSweep(const std::vector<LevelResult>& levels) {
  std::printf(
      "  conc |  wall ms |    q/s | speedup |  p50 ms |  p95 ms | plan hit | "
      "result hit | warm runs\n");
  double base_qps = levels.empty() ? 0 : levels.front().qps;
  for (const LevelResult& lv : levels) {
    std::printf(
      "  %4zu | %8.1f | %6.1f |  %5.2fx | %7.2f | %7.2f | %7.0f%% | %9.0f%% "
      "| %9llu\n",
        lv.concurrency, lv.wall_ms, lv.qps, lv.qps / base_qps,
        lv.stats.p50_ms, lv.stats.p95_ms, 100 * lv.stats.plan_hit_rate(),
        100 * lv.stats.result_hit_rate(),
        static_cast<unsigned long long>(lv.stats.warm_started_runs));
  }
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int repeat = static_cast<int>(flags.GetInt("repeat", 6));
  const size_t threads = static_cast<size_t>(flags.GetInt("threads", 16));
  const uint64_t tau = static_cast<uint64_t>(flags.GetInt("tau", 100));
  const double xmark_scale = flags.GetDouble("xmark_scale", 0.4);
  const double dblp_tag_scale = flags.GetDouble("dblp_tag_scale", 0.2);
  const bool isolate = flags.GetBool("isolate", false);
  const bool skip_warm_sweep = flags.GetBool("skip_warm_sweep", false);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const size_t num_shards =
      static_cast<size_t>(flags.GetInt("num_shards", 1));
  const double min_qps = flags.GetDouble("min_qps", 0.0);
  const bool trace_overhead = flags.GetBool("trace_overhead", false);
  const int overhead_rounds =
      static_cast<int>(flags.GetInt("overhead_rounds", 5));
  const double max_trace_overhead_pct =
      flags.GetDouble("max_trace_overhead_pct", 0.0);
  const std::string json_path =
      flags.GetString("json", "BENCH_engine_trace_overhead.json");
  const bool overload = flags.GetBool("overload", false);
  const size_t overload_cap =
      static_cast<size_t>(flags.GetInt("overload_cap", 2));
  const size_t overload_queue =
      static_cast<size_t>(flags.GetInt("overload_queue", 4));
  const double overload_max_p95_ms =
      flags.GetDouble("overload_max_p95_ms", 10000.0);
  flags.FailOnUnused();

  const std::vector<size_t> levels = {1, 4, 16};
  std::vector<std::string> workload = BuildWorkload(repeat, seed);
  size_t total_failed = 0;
  double slowest_qps = -1.0;
  auto account = [&](const std::vector<LevelResult>& results) {
    for (const LevelResult& lv : results) {
      total_failed += lv.failed;
      if (slowest_qps < 0 || lv.qps < slowest_qps) slowest_qps = lv.qps;
    }
  };
  std::printf(
      "mixed XMark+DBLP workload: %zu distinct queries x %d = %zu instances, "
      "pool of %zu threads\n",
      DistinctQueries().size(), repeat, workload.size(), threads);

  auto make_engine = [&](bool cache_results,
                         obs::TraceLevel trace_level = obs::TraceLevel::kOff)
      -> Result<std::unique_ptr<engine::Engine>> {
    ROX_ASSIGN_OR_RETURN(Corpus corpus,
                         BuildMixedCorpus(xmark_scale, dblp_tag_scale, 1));
    engine::EngineOptions opts;
    opts.num_threads = threads;
    opts.cache_results = cache_results;
    opts.num_shards = num_shards;
    opts.rox.tau = tau;
    opts.rox.seed = seed;
    opts.trace_level = trace_level;
    return std::make_unique<engine::Engine>(std::move(corpus), opts);
  };

  // --- overload experiment (replaces the sweeps) --------------------------
  if (overload) {
    const size_t drive = 10 * overload_cap;
    std::printf(
        "\n== overload: admission cap %zu (+%zu queued), driven at "
        "concurrency %zu (10x) ==\n",
        overload_cap, overload_queue, drive);
    auto corpus = BuildMixedCorpus(xmark_scale, dblp_tag_scale, 1);
    if (!corpus.ok()) {
      std::fprintf(stderr, "corpus: %s\n",
                   corpus.status().ToString().c_str());
      return 1;
    }
    engine::EngineOptions opts;
    opts.num_threads = drive;  // RunBatch can actually drive 10x the cap
    opts.cache_results = false;  // every admitted query must execute
    opts.num_shards = num_shards;
    opts.rox.tau = tau;
    opts.rox.seed = seed;
    opts.max_concurrent_queries = overload_cap;
    opts.max_queued_queries = overload_queue;
    engine::Engine eng(std::move(*corpus), opts);

    StopWatch watch;
    std::vector<engine::QueryResult> results = eng.RunBatch(workload, drive);
    const double wall_ms = watch.ElapsedMillis();
    size_t ok = 0, shed = 0, deadline = 0, cancelled = 0, other = 0;
    for (const auto& r : results) {
      if (r.ok()) {
        ++ok;
        continue;
      }
      switch (r.status.code()) {
        case StatusCode::kResourceExhausted:
          ++shed;
          break;
        case StatusCode::kDeadlineExceeded:
          ++deadline;
          break;
        case StatusCode::kCancelled:
          ++cancelled;
          break;
        default:
          ++other;
          std::fprintf(stderr, "non-governance failure: %s\n",
                       r.status.ToString().c_str());
          break;
      }
    }
    engine::EngineStats stats = eng.Stats();
    std::printf(
        "  %zu queries in %.1f ms: %zu completed, %zu shed, %zu "
        "deadline-exceeded, %zu cancelled, %zu other failures\n"
        "  completed latency: p50 %.2f ms, p95 %.2f ms; peak admission "
        "queue %zu\n",
        results.size(), wall_ms, ok, shed, deadline, cancelled, other,
        stats.p50_ms, stats.p95_ms, stats.peak_admission_queued);
    if (other > 0) {
      std::fprintf(stderr,
                   "FAIL: %zu queries failed outside the governance "
                   "codes\n",
                   other);
      return 1;
    }
    if (shed == 0) {
      std::fprintf(stderr,
                   "FAIL: 10x drive shed nothing — the admission gate "
                   "did not engage\n");
      return 1;
    }
    if (ok == 0) {
      std::fprintf(stderr, "FAIL: no query completed under overload\n");
      return 1;
    }
    if (overload_max_p95_ms > 0 && stats.p95_ms > overload_max_p95_ms) {
      std::fprintf(stderr,
                   "FAIL: completed-query p95 %.2f ms > "
                   "--overload_max_p95_ms=%.2f\n",
                   stats.p95_ms, overload_max_p95_ms);
      return 1;
    }
    std::printf(
        "  PASS: overload degraded by shedding (bounded p95, no "
        "non-governance failures)\n");
    return 0;
  }

  // --- trace-overhead experiment (replaces the sweeps) --------------------
  if (trace_overhead) {
    std::printf(
        "\n== trace overhead: trace off vs spans, result cache off, "
        "concurrency 4, best of %d rounds ==\n",
        overhead_rounds);
    auto off_eng = make_engine(/*cache_results=*/false, obs::TraceLevel::kOff);
    auto spans_eng =
        make_engine(/*cache_results=*/false, obs::TraceLevel::kSpans);
    if (!off_eng.ok() || !spans_eng.ok()) {
      std::fprintf(stderr, "corpus: %s\n",
                   (!off_eng.ok() ? off_eng : spans_eng)
                       .status()
                       .ToString()
                       .c_str());
      return 1;
    }
    // Interleave the rounds so drift (thermal, page cache, a noisy CI
    // neighbor) hits both configurations alike; best-of-N on each side
    // then cancels it out.
    double best_off = 0, best_spans = 0;
    size_t failed = 0;
    for (int r = 0; r < overhead_rounds; ++r) {
      LevelResult off = RunLevel(**off_eng, workload, 4);
      LevelResult spans = RunLevel(**spans_eng, workload, 4);
      failed += off.failed + spans.failed;
      if (off.qps > best_off) best_off = off.qps;
      if (spans.qps > best_spans) best_spans = spans.qps;
      std::printf("  round %d: off %.1f q/s, spans %.1f q/s\n", r + 1,
                  off.qps, spans.qps);
    }
    double overhead_pct =
        best_off > 0 ? 100.0 * (best_off - best_spans) / best_off : 0.0;
    std::printf(
        "  best: off %.1f q/s, spans %.1f q/s -> spans overhead %.2f%%\n",
        best_off, best_spans, overhead_pct);
    if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
      // overhead_pct stays outside "metrics": it is the bench's own
      // gate (below), not a trend series — it can be negative on a
      // noisy run, which fits neither a timing nor a rate for
      // perf_trend.py.
      std::fprintf(f,
                   "{\n  \"bench\": \"engine_trace_overhead\",\n"
                   "  \"rounds\": %d,\n  \"queries\": %zu,\n"
                   "  \"trace_overhead_pct\": %.3f,\n"
                   "  \"metrics\": {\n"
                   "    \"qps_trace_off\": %.2f,\n"
                   "    \"qps_trace_spans\": %.2f\n  }\n}\n",
                   overhead_rounds, workload.size(), overhead_pct, best_off,
                   best_spans);
      std::fclose(f);
      std::printf("  wrote %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    if (failed > 0) {
      std::fprintf(stderr, "FAIL: %zu queries failed\n", failed);
      return 1;
    }
    if (max_trace_overhead_pct > 0 && overhead_pct > max_trace_overhead_pct) {
      std::fprintf(stderr,
                   "FAIL: spans-level tracing cost %.2f%% q/s "
                   "(> --max_trace_overhead_pct=%.2f)\n",
                   overhead_pct, max_trace_overhead_pct);
      return 1;
    }
    return 0;
  }

  // --- sweep 1: full session cache (plans + weights + results) -----------
  std::printf("\n== session sweep: plan/weight/result cache %s ==\n",
              isolate ? "(fresh engine per level)" : "(shared across levels)");
  {
    std::vector<LevelResult> results;
    auto eng = make_engine(/*cache_results=*/true);
    if (!eng.ok()) {
      std::fprintf(stderr, "corpus: %s\n", eng.status().ToString().c_str());
      return 1;
    }
    for (size_t c : levels) {
      if (isolate && !results.empty()) {
        eng = make_engine(true);
        if (!eng.ok()) return 1;
      }
      results.push_back(RunLevel(**eng, workload, c));
    }
    account(results);
    PrintSweep(results);
    double speedup4 = results[1].qps / results[0].qps;
    std::printf("  -> %.2fx queries/sec at concurrency 4 vs 1 (%s)\n",
                speedup4, speedup4 > 2.0 ? "PASS >2x" : "below 2x");
  }

  // --- sweep 2: warm-start only (every query executes) --------------------
  if (!skip_warm_sweep) {
    std::printf(
        "\n== warm-start sweep: result cache off, plans + learned weights "
        "reused ==\n");
    std::vector<LevelResult> results;
    auto eng = make_engine(/*cache_results=*/false);
    if (!eng.ok()) return 1;
    for (size_t c : levels) {
      if (isolate && !results.empty()) {
        eng = make_engine(false);
        if (!eng.ok()) return 1;
      }
      results.push_back(RunLevel(**eng, workload, c));
    }
    account(results);
    PrintSweep(results);
  }

  if (total_failed > 0) {
    std::fprintf(stderr, "FAIL: %zu queries failed\n", total_failed);
    return 1;
  }
  if (min_qps > 0 && slowest_qps < min_qps) {
    std::fprintf(stderr, "FAIL: slowest level ran %.2f q/s < --min_qps=%.2f\n",
                 slowest_qps, min_qps);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace rox::bench

int main(int argc, char** argv) { return rox::bench::Main(argc, argv); }
