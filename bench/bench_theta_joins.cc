// Theta-join benchmark (DESIGN.md §11): runs the parameterized range-/
// inequality-join and disjunctive-predicate queries of the XMark and
// DBLP workloads through the full ROX pipeline in both materialization
// modes, enforces byte-identical results, and reports per-query wall
// times so the new edge class shows up in the perf trajectory (the CI
// perf-trend job compares the JSON against the previous run's).
//
//   $ ./bench_theta_joins [--xmark_scale=0.15] [--dblp_tag_scale=0.1]
//        [--repeat=5] [--tau=100] [--seed=42] [--smoke] [--vectorized=1]
//        [--json=BENCH_theta_joins.json] [--max_regression=0]
//
// --smoke shrinks the corpus and repeat count for CI.
// --vectorized=0 runs the row-at-a-time kernel fallback
//   (RoxOptions::vectorized_kernels, DESIGN.md §14) for A/B rate
//   comparisons against the default batched kernels.
// --max_regression=R fails the run if, on any query, the lazy total
//   wall time exceeds R x the eager total wall time.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "index/corpus.h"
#include "rox/options.h"
#include "workload/dblp.h"
#include "workload/xmark.h"
#include "xq/compile.h"

namespace rox::bench {
namespace {

struct BenchQuery {
  std::string name;
  std::string text;
};

std::vector<BenchQuery> Queries() {
  // MLDM / ICDM are Table 3 documents 7 and 8 (added below).
  return {
      {"qty_lt", XmarkQuantityIncreaseQuery(CmpOp::kLt, 1)},
      {"qty_ge", XmarkQuantityIncreaseQuery(CmpOp::kGe, 2)},
      {"qty_ne", XmarkQuantityIncreaseQuery(CmpOp::kNe, 1)},
      {"price_theta", XmarkPriceThetaQuery(CmpOp::kLe, 80, 170)},
      {"disjunctive_qty", XmarkDisjunctiveQuantityQuery(1, 4)},
      {"dblp_year_le", DblpAuthorYearQuery("MLDM", "ICDM", CmpOp::kLe)},
      {"dblp_year_ne", DblpAuthorYearQuery("MLDM", "ICDM", CmpOp::kNe)},
  };
}

struct ModeRun {
  double best_total_ms = 0;
  // Intermediate rows the best repeat pushed through its join kernels —
  // with best_total_ms this yields the per-kernel rows/sec rate the
  // perf-trend job tracks (row counts are representation-independent,
  // so lazy and eager rates are directly comparable).
  uint64_t intermediate_rows = 0;
  std::vector<Pre> items;
};

Result<ModeRun> RunMode(const Corpus& corpus,
                        const xq::CompiledQuery& compiled,
                        const RoxOptions& base, bool lazy, int repeat) {
  ModeRun out;
  for (int r = 0; r < repeat; ++r) {
    RoxOptions rox = base;
    rox.lazy_materialization = lazy;
    RoxStats stats;
    StopWatch watch;
    auto items = xq::RunXQuery(corpus, compiled, rox, &stats);
    double ms = watch.ElapsedMillis();
    ROX_RETURN_IF_ERROR(items.status());
    if (r == 0 || ms < out.best_total_ms) {
      out.best_total_ms = ms;
      out.intermediate_rows = stats.cumulative_intermediate_rows;
    }
    if (r == 0) {
      out.items = std::move(*items);
    } else if (*items != out.items) {
      return Status::Internal(
          "result items differ between repeats of the same mode");
    }
  }
  return out;
}

// Rows/sec of a mode run (0 when the wall time rounds to zero).
double RowsPerSec(const ModeRun& run) {
  return run.best_total_ms > 0
             ? static_cast<double>(run.intermediate_rows) /
                   (run.best_total_ms / 1000.0)
             : 0.0;
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool smoke = flags.GetBool("smoke", false);
  const double xmark_scale =
      flags.GetDouble("xmark_scale", smoke ? 0.05 : 0.15);
  const double dblp_tag_scale =
      flags.GetDouble("dblp_tag_scale", smoke ? 0.05 : 0.1);
  const int repeat = static_cast<int>(flags.GetInt("repeat", smoke ? 2 : 5));
  const uint64_t tau = static_cast<uint64_t>(flags.GetInt("tau", 100));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const double max_regression = flags.GetDouble("max_regression", 0.0);
  const bool vectorized = flags.GetBool("vectorized", true);
  const std::string json_path =
      flags.GetString("json", "BENCH_theta_joins.json");
  flags.FailOnUnused();

  Corpus corpus;
  XmarkGenOptions gen;
  gen.items = static_cast<uint32_t>(4350 * xmark_scale);
  gen.persons = static_cast<uint32_t>(5100 * xmark_scale);
  gen.open_auctions = static_cast<uint32_t>(2400 * xmark_scale);
  auto xdoc = GenerateXmarkDocument(corpus, gen);
  if (!xdoc.ok()) {
    std::fprintf(stderr, "corpus: %s\n", xdoc.status().ToString().c_str());
    return 1;
  }
  DblpGenOptions dblp;
  dblp.tag_scale = dblp_tag_scale;
  auto ddocs = AddDblpDocuments(corpus, dblp, {7, 8});  // MLDM, ICDM
  if (!ddocs.ok()) {
    std::fprintf(stderr, "dblp: %s\n", ddocs.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "XMark scale %.2f (%u nodes) + DBLP tag scale %.2f; %d repeats; "
      "%s kernels\n\n",
      xmark_scale, corpus.doc(*xdoc).NodeCount(), dblp_tag_scale, repeat,
      vectorized ? "vectorized" : "fallback");

  RoxOptions rox;
  rox.tau = tau;
  rox.seed = seed;
  rox.vectorized_kernels = vectorized;

  struct Row {
    std::string name;
    uint64_t items = 0;
    double eager_ms = 0, lazy_ms = 0, speedup = 0;
    double eager_rows_per_sec = 0, lazy_rows_per_sec = 0;
    bool identical = false;
  };
  std::vector<Row> rows;
  bool all_identical = true;
  bool regression = false;

  std::printf("query           | eager ms | lazy ms  | lazy x | items    | "
              "identical\n");
  for (const BenchQuery& q : Queries()) {
    auto compiled = xq::CompileXQuery(corpus, q.text);
    if (!compiled.ok()) {
      std::fprintf(stderr, "compile %s: %s\n", q.name.c_str(),
                   compiled.status().ToString().c_str());
      return 1;
    }
    auto eager = RunMode(corpus, *compiled, rox, /*lazy=*/false, repeat);
    auto lazy = RunMode(corpus, *compiled, rox, /*lazy=*/true, repeat);
    if (!eager.ok() || !lazy.ok()) {
      std::fprintf(stderr, "%s: %s\n", q.name.c_str(),
                   (!eager.ok() ? eager : lazy).status().ToString().c_str());
      return 1;
    }
    Row row;
    row.name = q.name;
    row.items = lazy->items.size();
    row.eager_ms = eager->best_total_ms;
    row.lazy_ms = lazy->best_total_ms;
    row.speedup = row.lazy_ms > 0 ? row.eager_ms / row.lazy_ms : 0;
    row.eager_rows_per_sec = RowsPerSec(*eager);
    row.lazy_rows_per_sec = RowsPerSec(*lazy);
    row.identical = eager->items == lazy->items;
    all_identical &= row.identical;
    if (max_regression > 0 && row.lazy_ms > row.eager_ms * max_regression) {
      regression = true;
    }
    std::printf("%-15s | %8.1f | %8.1f | %5.2fx | %8llu | %s\n",
                row.name.c_str(), row.eager_ms, row.lazy_ms, row.speedup,
                static_cast<unsigned long long>(row.items),
                row.identical ? "yes" : "NO");
    rows.push_back(std::move(row));
  }

  // JSON report; the flat "metrics" object is what the CI perf-trend
  // job (tools/perf_trend.py) compares across runs.
  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f,
                 "{\n  \"bench\": \"theta_joins\",\n"
                 "  \"xmark_scale\": %.3f,\n  \"dblp_tag_scale\": %.3f,\n"
                 "  \"repeat\": %d,\n  \"tau\": %llu,\n  \"seed\": %llu,\n"
                 "  \"vectorized\": %s,\n"
                 "  \"queries\": [\n",
                 xmark_scale, dblp_tag_scale, repeat,
                 static_cast<unsigned long long>(tau),
                 static_cast<unsigned long long>(seed),
                 vectorized ? "true" : "false");
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"result_items\": %llu,\n"
                   "     \"eager_total_ms\": %.3f, \"lazy_total_ms\": %.3f,\n"
                   "     \"speedup_total\": %.3f, \"identical_results\": "
                   "%s}%s\n",
                   r.name.c_str(), static_cast<unsigned long long>(r.items),
                   r.eager_ms, r.lazy_ms, r.speedup,
                   r.identical ? "true" : "false",
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"metrics\": {\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      // *_rows_per_sec metrics are higher-is-better; perf_trend.py
      // detects the suffix and inverts its regression ratio for them.
      std::fprintf(f,
                   "    \"%s_lazy_ms\": %.3f, \"%s_eager_ms\": %.3f,\n"
                   "    \"%s_lazy_rows_per_sec\": %.1f, "
                   "\"%s_eager_rows_per_sec\": %.1f%s\n",
                   r.name.c_str(), r.lazy_ms, r.name.c_str(), r.eager_ms,
                   r.name.c_str(), r.lazy_rows_per_sec, r.name.c_str(),
                   r.eager_rows_per_sec, i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }

  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: lazy and eager runs returned different results on a "
                 "theta query\n");
    return 1;
  }
  if (regression) {
    std::fprintf(stderr,
                 "FAIL: lazy wall time exceeded %.2fx the eager baseline\n",
                 max_regression);
    return 1;
  }
  std::printf("lazy and eager results are byte-identical on every query\n");
  return 0;
}

}  // namespace
}  // namespace rox::bench

int main(int argc, char** argv) { return rox::bench::Main(argc, argv); }
