// Figure 5 — "Impact of join order on intermediate result sizes".
//
// Documents 1=VLDB, 2=ICDE, 3=ICIP, 4=ADBIS (ICIP is IR, the rest DB).
// For each of the 18 join orders, prints the cumulative (intermediate)
// join result cardinality, and marks the orders picked by the classical
// optimizer ("<= c") and by ROX ("<= R").
//
// Paper-vs-measured shape: orders that leave the uncorrelated IR
// conference (ICIP, document 3) to the end process orders of magnitude
// more intermediate tuples than orders starting with it; the classical
// smallest-input-first pick lands in the expensive region, ROX in the
// cheap one.
//
// Flags: --tag_scale=0.3 --scale=1 --tau=100 --seed=N

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "classical/executor.h"
#include "classical/rox_order.h"
#include "common/str_util.h"
#include "rox/optimizer.h"

int main(int argc, char** argv) {
  using namespace rox;
  bench::Flags flags(argc, argv);
  DblpGenOptions gen;
  gen.tag_scale = flags.GetDouble("tag_scale", 0.3);
  gen.scale = static_cast<uint32_t>(flags.GetInt("scale", 1));
  gen.seed = static_cast<uint64_t>(flags.GetInt("seed", gen.seed));
  RoxOptions rox_opt;
  rox_opt.tau = static_cast<uint64_t>(flags.GetInt("tau", 100));
  flags.FailOnUnused();

  // Table 3 indices: VLDB=22, ICDE=21, ICIP=16, ADBIS=18.
  std::vector<int> spec_indices = {22, 21, 16, 18};
  const char* doc_names[] = {"VLDB", "ICDE", "ICIP", "ADBIS"};
  auto corpus = GenerateDblpCorpus(gen, spec_indices);
  if (!corpus.ok()) {
    std::fprintf(stderr, "%s\n", corpus.status().ToString().c_str());
    return 1;
  }
  std::vector<DocId> docs = {0, 1, 2, 3};

  std::printf(
      "Figure 5: cumulative (intermediate) join result cardinality per "
      "join order\nDocuments: 1=VLDB, 2=ICDE, 3=ICIP, 4=ADBIS "
      "(tag_scale=%.3g)\n\n",
      gen.tag_scale);

  auto cards = ComputeOrderCardinalities(*corpus, docs);
  JoinOrder classical = ClassicalJoinOrder(*corpus, docs);

  DblpQueryGraph q = BuildDblpJoinGraph(*corpus, docs);
  RoxOptimizer rox(*corpus, q.graph, rox_opt);
  auto rox_result = rox.Run();
  if (!rox_result.ok()) {
    std::fprintf(stderr, "ROX failed: %s\n",
                 rox_result.status().ToString().c_str());
    return 1;
  }
  auto rox_order = RoxJoinOrderFromRun(q, *rox_result);

  uint64_t best = UINT64_MAX, worst = 0;
  for (const auto& oc : cards) {
    best = std::min(best, oc.cumulative);
    worst = std::max(worst, oc.cumulative);
  }

  std::printf("%-14s %18s   %s\n", "join order", "cumulative card", "");
  for (const auto& oc : cards) {
    std::string mark;
    if (oc.order == classical) mark += "  <= classical";
    if (rox_order.ok() && oc.order == *rox_order) mark += "  <= ROX";
    if (oc.cumulative == best) mark += "  (smallest)";
    if (oc.cumulative == worst) mark += "  (largest)";
    std::printf("%-14s %18llu%s\n", oc.order.Label().c_str(),
                static_cast<unsigned long long>(oc.cumulative), mark.c_str());
  }

  std::printf("\nspread largest/smallest: %.1fx\n",
              static_cast<double>(worst) / static_cast<double>(best));
  std::printf("ROX pure-plan time %.2f ms, sampling overhead %.2f ms, "
              "result rows %llu\n",
              rox_result->stats.execution_time.TotalMillis(),
              rox_result->stats.sampling_time.TotalMillis(),
              static_cast<unsigned long long>(rox_result->table.NumRows()));
  if (rox_order.ok()) {
    uint64_t rox_cum = 0, cls_cum = 0;
    for (const auto& oc : cards) {
      if (oc.order == *rox_order) rox_cum = oc.cumulative;
      if (oc.order == classical) cls_cum = oc.cumulative;
    }
    std::printf("ROX order %s: %llu tuples; classical order %s: %llu tuples "
                "(%.1fx more)\n",
                rox_order->Label().c_str(),
                static_cast<unsigned long long>(rox_cum), classical.Label().c_str(),
                static_cast<unsigned long long>(cls_cum),
                rox_cum ? static_cast<double>(cls_cum) / rox_cum : 0.0);
  }
  (void)doc_names;
  return 0;
}
