// Closed-loop load bench for the roxd network front end (DESIGN.md
// §15). Two phases over one in-process HttpServer stack:
//
//   sustained  16 persistent-connection clients, replay-enabled
//              engine, open admission — the headline q/s and latency
//              percentiles (these are the trended metrics).
//   overload   admission capacity 2 (1 running + 1 queued), cache
//              disabled so every query really executes, and
//              clients = 10 x capacity (>= 16): most requests must be
//              shed with 429 while the server stays healthy.
//
//   bench_server_load [--smoke] [--overload] [--clients=N]
//                     [--seconds=S] [--xmark_scale=0.15]
//                     [--num_threads=8] [--p95_bound_ms=10000]
//                     [--out=BENCH_server_load.json]
//
// --smoke shrinks both phases for CI; --overload runs the overload
// phase alone (the gate check, no trended metrics). The bench exits 1 when any
// degradation gate fails — zero transport errors, zero 5xx, zero
// leaked connections/in-flight queries after the clients hang up,
// nonzero sheds under overload, and overload p95 under the structural
// bound (pool backlog + two serialized executions) — so CI catches a
// leak or shed-path regression, not just a slowdown.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "engine/engine.h"
#include "index/corpus.h"
#include "server/client.h"
#include "server/server.h"
#include "workload/xmark.h"

namespace {

using rox::server::HttpClient;

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double Quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  size_t idx = static_cast<size_t>(q * static_cast<double>(sorted.size()));
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

struct PhaseConfig {
  const char* name;
  int clients;
  double seconds;
  bool overload;  // slow queries mixed in, deadline header, shed backoff
  size_t max_concurrent;
  size_t max_queued;
  bool enable_cache;
};

struct PhaseResult {
  uint64_t ok = 0;
  uint64_t shed = 0;          // 429
  uint64_t deadline_504 = 0;  // graceful under overload, not a bug
  uint64_t other_4xx = 0;
  uint64_t server_5xx = 0;
  uint64_t transport_errors = 0;
  uint64_t leaked_connections = 0;
  uint64_t leaked_inflight = 0;
  double wall_s = 0;
  double qps = 0;
  double p50_ms = 0, p95_ms = 0, max_ms = 0;
};

}  // namespace

static PhaseResult RunPhase(const PhaseConfig& cfg, double xmark_scale,
                            size_t num_threads) {
  using namespace rox;
  Corpus corpus;
  XmarkGenOptions gen;
  gen.items = static_cast<uint32_t>(4350 * xmark_scale);
  gen.persons = static_cast<uint32_t>(5100 * xmark_scale);
  gen.open_auctions = static_cast<uint32_t>(2400 * xmark_scale);
  auto doc = GenerateXmarkDocument(corpus, gen);
  if (!doc.ok()) {
    std::fprintf(stderr, "xmark generation failed: %s\n",
                 doc.status().ToString().c_str());
    std::exit(1);
  }

  engine::EngineOptions eopts;
  eopts.num_threads = num_threads;
  eopts.max_concurrent_queries = cfg.max_concurrent;
  eopts.max_queued_queries = cfg.max_queued;
  eopts.enable_cache = cfg.enable_cache;
  engine::Engine eng(std::move(corpus), eopts);

  server::ServerOptions sopts;
  sopts.port = 0;  // ephemeral: parallel CI jobs cannot collide
  server::HttpServer srv(&eng, sopts);
  Status started = srv.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 started.ToString().c_str());
    std::exit(1);
  }
  const uint16_t port = srv.port();

  // The query mix: cheap scans, with the theta join mixed in under
  // overload so admission slots are genuinely occupied for a while.
  const std::vector<std::string> fast = {
      R"(for $p in doc("xmark.xml")//person return $p)",
      R"(for $i in doc("xmark.xml")//item return $i)",
      R"(for $a in doc("xmark.xml")//open_auction return $a)",
  };
  const std::string slow = XmarkQuantityIncreaseQuery(CmpOp::kLt, 1);

  std::atomic<bool> stop{false};
  std::vector<PhaseResult> tallies(static_cast<size_t>(cfg.clients));
  std::vector<std::vector<double>> latencies(
      static_cast<size_t>(cfg.clients));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(cfg.clients));
  const double phase_start_ms = NowMs();

  for (int c = 0; c < cfg.clients; ++c) {
    workers.emplace_back([&, c] {
      PhaseResult& tally = tallies[static_cast<size_t>(c)];
      std::vector<double>& lat = latencies[static_cast<size_t>(c)];
      HttpClient client;
      if (!client.Connect("127.0.0.1", port).ok()) {
        ++tally.transport_errors;
        return;
      }
      char tag[32];
      std::snprintf(tag, sizeof(tag), "bench:%s-%d", cfg.name, c);
      uint64_t n = 0;
      while (!stop.load(std::memory_order_acquire)) {
        // Under overload every 4th request is the slow theta join;
        // otherwise rotate through the cheap scans.
        const std::string& q = (cfg.overload && n % 4 == 3)
                                   ? slow
                                   : fast[(static_cast<size_t>(c) + n) %
                                          fast.size()];
        ++n;
        std::vector<std::pair<std::string, std::string>> headers = {
            {"X-Client-Tag", tag}};
        if (cfg.overload) headers.emplace_back("X-Deadline-Ms", "8000");
        double t0 = NowMs();
        auto resp = client.Request("POST", "/query", headers, q);
        if (!resp.ok()) {
          // A torn connection mid-bench is a failed gate unless we
          // caused it by stopping.
          if (!stop.load(std::memory_order_acquire)) {
            ++tally.transport_errors;
          }
          if (!client.Connect("127.0.0.1", port).ok()) return;
          continue;
        }
        if (resp->status == 200) {
          ++tally.ok;
          lat.push_back(NowMs() - t0);
        } else if (resp->status == 429) {
          ++tally.shed;
          // Back off briefly after a shed: an un-paced retry storm
          // starves the query that IS running of CPU and measures
          // nothing but socket churn.
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        } else if (resp->status == 504) {
          ++tally.deadline_504;
        } else if (resp->status >= 500) {
          ++tally.server_5xx;
        } else {
          ++tally.other_4xx;
        }
      }
      client.Close();
    });
  }

  std::this_thread::sleep_for(std::chrono::duration<double>(cfg.seconds));
  stop.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();

  PhaseResult total;
  total.wall_s = (NowMs() - phase_start_ms) / 1e3;

  // Leak gate: every client disconnected; the server must agree and
  // have nothing in flight shortly after.
  bool drained = false;
  for (int i = 0; i < 500; ++i) {
    server::ServerStats snap = srv.Snapshot();
    if (snap.open_connections == 0 && snap.queries_inflight == 0) {
      drained = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  server::ServerStats snap = srv.Snapshot();
  srv.Stop();
  if (!drained) {
    total.leaked_connections = snap.open_connections;
    total.leaked_inflight = snap.queries_inflight;
  }

  std::vector<double> lat;
  for (int c = 0; c < cfg.clients; ++c) {
    const PhaseResult& t = tallies[static_cast<size_t>(c)];
    total.ok += t.ok;
    total.shed += t.shed;
    total.deadline_504 += t.deadline_504;
    total.other_4xx += t.other_4xx;
    total.server_5xx += t.server_5xx;
    total.transport_errors += t.transport_errors;
    lat.insert(lat.end(), latencies[static_cast<size_t>(c)].begin(),
               latencies[static_cast<size_t>(c)].end());
  }
  std::sort(lat.begin(), lat.end());
  total.qps = total.wall_s > 0
                  ? static_cast<double>(total.ok) / total.wall_s
                  : 0;
  total.p50_ms = Quantile(lat, 0.50);
  total.p95_ms = Quantile(lat, 0.95);
  total.max_ms = lat.empty() ? 0 : lat.back();

  std::printf(
      "%s: %d clients for %.1fs -> %llu ok (%.1f q/s), %llu shed, "
      "%llu deadline 504, %llu 4xx, %llu 5xx, %llu transport errors\n"
      "  latency p50 %.2f ms, p95 %.2f ms, max %.2f ms; "
      "leaked conns %llu, leaked inflight %llu\n",
      cfg.name, cfg.clients, total.wall_s,
      static_cast<unsigned long long>(total.ok), total.qps,
      static_cast<unsigned long long>(total.shed),
      static_cast<unsigned long long>(total.deadline_504),
      static_cast<unsigned long long>(total.other_4xx),
      static_cast<unsigned long long>(total.server_5xx),
      static_cast<unsigned long long>(total.transport_errors),
      total.p50_ms, total.p95_ms, total.max_ms,
      static_cast<unsigned long long>(total.leaked_connections),
      static_cast<unsigned long long>(total.leaked_inflight));
  return total;
}

int main(int argc, char** argv) {
  using rox::bench::Flags;
  Flags flags(argc, argv);
  const bool smoke = flags.GetBool("smoke", false);
  const bool overload_only = flags.GetBool("overload", false);
  const double xmark_scale = flags.GetDouble("xmark_scale", 0.15);
  // Pool threads double as dispatch workers: provisioning more than
  // the shard fan-out keeps the shed path responsive while a big
  // query holds all execution slots.
  const size_t num_threads =
      static_cast<size_t>(flags.GetInt("num_threads", 8));
  const double p95_bound_ms = flags.GetDouble("p95_bound_ms", 10000);
  const std::string out_path =
      flags.GetString("out", "BENCH_server_load.json");
  const int clients =
      static_cast<int>(flags.GetInt("clients", smoke ? 8 : 16));
  const double seconds = flags.GetDouble("seconds", smoke ? 1.0 : 5.0);
  flags.FailOnUnused();

  PhaseConfig sustained_cfg;
  sustained_cfg.name = "sustained";
  sustained_cfg.clients = clients;
  sustained_cfg.seconds = seconds;
  sustained_cfg.overload = false;
  sustained_cfg.max_concurrent = 0;  // unlimited
  sustained_cfg.max_queued = 0;
  sustained_cfg.enable_cache = true;

  // 10x the admission capacity of 2 (1 running + 1 queued), and at
  // least 16 clients either way.
  PhaseConfig overload_cfg;
  overload_cfg.name = "overload";
  overload_cfg.clients = std::max(20, clients);
  overload_cfg.seconds = seconds;
  overload_cfg.overload = true;
  overload_cfg.max_concurrent = 1;
  overload_cfg.max_queued = 1;
  overload_cfg.enable_cache = false;  // every query really executes

  PhaseResult sustained;
  if (!overload_only) {
    sustained = RunPhase(sustained_cfg, xmark_scale, num_threads);
  }
  PhaseResult overload = RunPhase(overload_cfg, xmark_scale, num_threads);

  // --- degradation gates ---------------------------------------------------
  bool failed = false;
  auto gate = [&](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "GATE FAILED: %s\n", what);
      failed = true;
    }
  };
  std::vector<const PhaseResult*> gated = {&overload};
  if (!overload_only) gated.push_back(&sustained);
  for (const PhaseResult* p : gated) {
    gate(p->transport_errors == 0, "transport errors (torn connections)");
    gate(p->server_5xx == 0, "5xx responses");
    gate(p->ok > 0, "no query ever succeeded");
    gate(p->leaked_connections == 0 && p->leaked_inflight == 0,
         "connection/in-flight leak after clients disconnected");
  }
  gate(overload.shed > 0, "overload produced zero 429 sheds");
  gate(overload.p95_ms <= p95_bound_ms,
       "overload p95 exceeds the structural bound");

  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  // The trended metrics come from the sustained phase; an
  // overload-only run has none (perf_trend skips an empty map).
  std::string metrics_block = "  \"metrics\": {}\n";
  if (!overload_only) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "  \"metrics\": {\n"
                  "    \"qps_sustained\": %.1f,\n"
                  "    \"p50_ms\": %.3f,\n"
                  "    \"p95_ms\": %.3f\n"
                  "  }\n",
                  sustained.qps, sustained.p50_ms, sustained.p95_ms);
    metrics_block = buf;
  }
  std::fprintf(
      out,
      "{\n"
      "  \"bench\": \"server_load\",\n"
      "  \"clients\": %d,\n"
      "  \"seconds\": %.1f,\n"
      "  \"xmark_scale\": %.3f,\n"
      "  \"num_threads\": %zu,\n"
      "  \"sustained\": {\n"
      "    \"requests_ok\": %llu,\n"
      "    \"requests_shed_429\": %llu\n"
      "  },\n"
      "  \"overload\": {\n"
      "    \"clients\": %d,\n"
      "    \"admission_capacity\": 2,\n"
      "    \"requests_ok\": %llu,\n"
      "    \"requests_shed_429\": %llu,\n"
      "    \"requests_deadline_504\": %llu,\n"
      "    \"requests_5xx\": %llu,\n"
      "    \"transport_errors\": %llu,\n"
      "    \"leaked_connections\": %llu,\n"
      "    \"p95_ms\": %.3f\n"
      "  },\n"
      "  \"gates_passed\": %s,\n"
      "%s"
      "}\n",
      clients, seconds, xmark_scale, num_threads,
      static_cast<unsigned long long>(sustained.ok),
      static_cast<unsigned long long>(sustained.shed),
      overload_cfg.clients, static_cast<unsigned long long>(overload.ok),
      static_cast<unsigned long long>(overload.shed),
      static_cast<unsigned long long>(overload.deadline_504),
      static_cast<unsigned long long>(overload.server_5xx),
      static_cast<unsigned long long>(overload.transport_errors),
      static_cast<unsigned long long>(overload.leaked_connections),
      overload.p95_ms, failed ? "false" : "true", metrics_block.c_str());
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return failed ? 1 : 0;
}
