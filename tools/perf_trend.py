#!/usr/bin/env python3
"""Perf-trend gate for the CI bench jobs.

Extracts wall-time metrics from the bench JSON reports, compares them
against the previous run's (restored via actions/cache), fails on
regressions beyond --max-regression, and appends the current run to the
rolling history file (uploaded as an artifact).

Supported report shapes:
  * rox report benches: {"bench": ..., "metrics": {"<name>_ms": ...}}
    or {"bench": ..., "queries": [{"name": ..., "*_ms": ...}]}
  * google-benchmark --benchmark_format=json: {"benchmarks": [...]}

Metrics below --min-ms in the baseline are compared only informationally
(sub-threshold timings on shared runners are noise, not signal).

Most metrics are timings (lower is better). Throughput metrics —
names ending in _rows_per_sec, _per_second or starting with qps_ —
are higher-is-better: their regression ratio is inverted (prev/cur)
before gating, and they are gated whenever the current *timing*
metrics would be (the --min-ms floor does not apply to rates; rates
from the report benches are macro measurements, not sub-ms noise).
google-benchmark items_per_second rates are extracted informationally
(items_per_second on a shared runner is too jittery to gate, but the
trend line in the history artifact is worth having).

Usage:
  perf_trend.py --history perf_history.json [--max-regression 1.5]
                [--min-ms 20] report.json [report.json ...]
"""

import argparse
import json
import os
import sys
import time


def extract_metrics(path):
    """Returns {metric_name: milliseconds} for one report file."""
    with open(path) as f:
        report = json.load(f)
    out = {}
    if "benchmarks" in report:  # google-benchmark
        for b in report["benchmarks"]:
            if b.get("run_type") == "aggregate":
                continue
            unit = b.get("time_unit", "ns")
            scale = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}[unit]
            out[f"operators/{b['name']}"] = b["real_time"] * scale
            if "items_per_second" in b:
                out[f"operators/{b['name']}/items_per_sec"] = float(
                    b["items_per_second"])
        return out
    bench = report.get("bench", os.path.basename(path))
    if "metrics" in report:  # flat metric map: authoritative
        for key, value in report["metrics"].items():
            if isinstance(value, (int, float)):
                out[f"{bench}/{key}"] = float(value)
        return out
    for query in report.get("queries", []):
        name = query.get("name", "?")
        for key, value in query.items():
            if key.endswith("_ms") and isinstance(value, (int, float)):
                out[f"{bench}/{name}/{key}"] = float(value)
    return out


def is_rate(name):
    """Higher-is-better throughput metric (vs default lower-is-better)."""
    base = name.rsplit("/", 1)[-1]
    return (base.endswith("_rows_per_sec") or base.endswith("_per_sec")
            or base.endswith("_per_second") or base.startswith("qps_"))


def is_informational(name):
    """Tracked in the history but never gated (too jittery to fail on)."""
    # google-benchmark items/sec: micro-bench rates on shared runners.
    return name.startswith("operators/") and is_rate(name)


def fmt(name, value):
    return f"{value:.1f}/s" if is_rate(name) else f"{value:.1f} ms"


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--history", required=True)
    parser.add_argument("--max-regression", type=float, default=1.5)
    parser.add_argument("--min-ms", type=float, default=20.0)
    parser.add_argument("reports", nargs="+")
    args = parser.parse_args()

    current = {}
    for path in args.reports:
        if not os.path.exists(path):
            print(f"perf-trend: missing report {path}", file=sys.stderr)
            return 1
        current.update(extract_metrics(path))
    if not current:
        print("perf-trend: no metrics extracted", file=sys.stderr)
        return 1

    history = []
    if os.path.exists(args.history):
        with open(args.history) as f:
            history = json.load(f)

    regressions = []
    if history:
        previous = history[-1]["metrics"]
        for name in sorted(current):
            prev = previous.get(name)
            if prev is None:
                print(f"  NEW    {name}: {fmt(name, current[name])}")
                continue
            if is_rate(name):
                # Higher is better: invert so ratio > 1 still means
                # "got worse" and the one gate below covers both kinds.
                ratio = prev / current[name] if current[name] > 0 \
                    else float("inf")
                gated = not is_informational(name)
            else:
                ratio = current[name] / prev if prev > 0 else float("inf")
                gated = prev >= args.min_ms
            marker = " "
            if ratio > args.max_regression:
                marker = "!" if gated else "~"  # ~ = ungated noise
                if gated:
                    regressions.append((name, prev, current[name], ratio))
            print(f"  {marker} {name}: {fmt(name, prev)} -> "
                  f"{fmt(name, current[name])} ({ratio:.2f}x)")
    else:
        print("perf-trend: no previous run; recording baseline")
        for name in sorted(current):
            print(f"  BASE   {name}: {fmt(name, current[name])}")

    if regressions:
        # Do NOT record the regressed run: the pre-regression numbers
        # stay the baseline, so re-running a red job cannot launder a
        # real regression into the history.
        print(f"\nFAIL: {len(regressions)} metric(s) regressed beyond "
              f"{args.max_regression}x (history left unchanged):",
              file=sys.stderr)
        for name, prev, cur, ratio in regressions:
            print(f"  {name}: {fmt(name, prev)} -> {fmt(name, cur)} "
                  f"({ratio:.2f}x)", file=sys.stderr)
        return 1

    history.append({
        "run": os.environ.get("GITHUB_RUN_NUMBER", str(int(time.time()))),
        "sha": os.environ.get("GITHUB_SHA", ""),
        "timestamp": int(time.time()),
        "metrics": current,
    })
    # Bound the artifact: keep the trailing year of daily runs.
    history = history[-365:]
    with open(args.history, "w") as f:
        json.dump(history, f, indent=1)
    print("\nperf-trend: no regression beyond "
          f"{args.max_regression}x (floor {args.min_ms} ms)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
