// roxd — the ROX query server daemon.
//
//   $ roxd [--port=8080] [--host=127.0.0.1] [--num_threads=N]
//          [--num_shards=K] [--max_concurrent=N] [--max_queued=N]
//          [--cache_capacity=N] [--trace_level=off|spans|full]
//          [--deadline_ms=N] [--memory_budget_mb=N]
//          [file1.xml file2.xml ...]
//
// Loads the given XML files into a corpus (doc("<basename>") resolves
// them; a demo XMark document is generated when none are given), hands
// the corpus to an Engine, and serves it over HTTP (DESIGN.md §15):
//
//   $ curl -d 'QUERY' http://localhost:8080/query
//   $ curl http://localhost:8080/stats
//   $ curl http://localhost:8080/metrics
//
// Per-query governance is wire-controlled (X-Deadline-Ms,
// X-Memory-Budget-Mb, X-Max-Rows headers); --deadline_ms /
// --memory_budget_mb set engine-wide defaults underneath them.
// SIGINT/SIGTERM stop the server gracefully: in-flight queries are
// cancelled, connections drained, then the process exits 0.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "engine/engine.h"
#include "server/server.h"
#include "workload/xmark.h"

namespace {

// Signal flag + self-waking: the handler just sets the flag; the main
// thread sleeps in pause()-free polling on a pipe.
volatile std::sig_atomic_t g_stop = 0;
int g_stop_pipe[2] = {-1, -1};

void HandleStop(int) {
  g_stop = 1;
  if (g_stop_pipe[1] >= 0) {
    char b = 's';
    (void)!write(g_stop_pipe[1], &b, 1);
  }
}

std::string Basename(const std::string& path) {
  size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::stringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

bool ParseLong(const char* text, long min, long max, long* out) {
  char* end = nullptr;
  long v = std::strtol(text, &end, 10);
  if (end == nullptr || *end != '\0' || v < min || v > max) return false;
  *out = v;
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--port=8080] [--host=127.0.0.1] [--num_threads=N]\n"
      "          [--num_shards=K] [--max_concurrent=N] [--max_queued=N]\n"
      "          [--cache_capacity=N] [--trace_level=off|spans|full]\n"
      "          [--deadline_ms=N] [--memory_budget_mb=N]\n"
      "          [--max_response_rows=N] [files...]\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rox;

  server::ServerOptions sopts;
  engine::EngineOptions eopts;
  eopts.num_threads = 4;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    size_t eq = arg.find('=');
    std::string key = arg.substr(0, eq);
    const char* val = eq == std::string::npos ? "" : arg.c_str() + eq + 1;
    long v = 0;
    if (key == "--port") {
      if (!ParseLong(val, 0, 65535, &v)) return Usage(argv[0]);
      sopts.port = static_cast<uint16_t>(v);
    } else if (key == "--host") {
      sopts.host = val;
    } else if (key == "--num_threads") {
      if (!ParseLong(val, 1, 256, &v)) return Usage(argv[0]);
      eopts.num_threads = static_cast<size_t>(v);
    } else if (key == "--num_shards") {
      if (!ParseLong(val, 1, 1024, &v)) return Usage(argv[0]);
      eopts.num_shards = static_cast<size_t>(v);
    } else if (key == "--max_concurrent") {
      if (!ParseLong(val, 0, 100000, &v)) return Usage(argv[0]);
      eopts.max_concurrent_queries = static_cast<size_t>(v);
    } else if (key == "--max_queued") {
      if (!ParseLong(val, 0, 100000, &v)) return Usage(argv[0]);
      eopts.max_queued_queries = static_cast<size_t>(v);
    } else if (key == "--cache_capacity") {
      if (!ParseLong(val, 0, 1000000, &v)) return Usage(argv[0]);
      eopts.cache_capacity = static_cast<size_t>(v);
    } else if (key == "--trace_level") {
      if (!obs::ParseTraceLevel(val, &eopts.trace_level)) {
        return Usage(argv[0]);
      }
    } else if (key == "--max_response_rows") {
      if (!ParseLong(val, 0, 100000000, &v)) return Usage(argv[0]);
      sopts.max_response_rows = static_cast<size_t>(v);
    } else if (key == "--deadline_ms") {
      if (!ParseLong(val, 0, 86400000, &v)) return Usage(argv[0]);
      eopts.default_limits.deadline_ms = static_cast<double>(v);
    } else if (key == "--memory_budget_mb") {
      if (!ParseLong(val, 0, 1048576, &v)) return Usage(argv[0]);
      eopts.default_limits.memory_budget_bytes =
          static_cast<uint64_t>(v) * 1024 * 1024;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag %s\n", key.c_str());
      return Usage(argv[0]);
    } else {
      files.push_back(arg);
    }
  }

  Corpus corpus;
  if (!files.empty()) {
    for (const std::string& file : files) {
      std::string xml;
      if (!ReadFile(file, &xml)) {
        std::fprintf(stderr, "cannot open %s\n", file.c_str());
        return 1;
      }
      auto id = corpus.AddXml(xml, Basename(file));
      if (!id.ok()) {
        std::fprintf(stderr, "%s: %s\n", file.c_str(),
                     id.status().ToString().c_str());
        return 1;
      }
      std::printf("loaded doc(\"%s\"): %u nodes\n",
                  corpus.doc(*id).name().c_str(),
                  corpus.doc(*id).NodeCount());
    }
  } else {
    XmarkGenOptions gen;
    gen.open_auctions = 500;
    gen.items = 400;
    gen.persons = 500;
    auto id = GenerateXmarkDocument(corpus, gen);
    if (!id.ok()) {
      std::fprintf(stderr, "xmark generation failed: %s\n",
                   id.status().ToString().c_str());
      return 1;
    }
    std::printf("no files given; generated doc(\"xmark.xml\") with %u "
                "nodes\n",
                corpus.doc(*id).NodeCount());
  }

  engine::Engine eng(std::move(corpus), eopts);
  server::HttpServer srv(&eng, sopts);
  Status started = srv.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "cannot start server: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  std::printf("roxd listening on %s:%u\n", sopts.host.c_str(),
              static_cast<unsigned>(srv.port()));
  std::fflush(stdout);

  if (pipe(g_stop_pipe) != 0) {
    std::fprintf(stderr, "pipe: %s\n", std::strerror(errno));
    return 1;
  }
  std::signal(SIGINT, HandleStop);
  std::signal(SIGTERM, HandleStop);
  // SIGPIPE would otherwise kill the process on a vanished peer; the
  // server uses MSG_NOSIGNAL, but belt and braces.
  std::signal(SIGPIPE, SIG_IGN);

  char b;
  while (g_stop == 0 && read(g_stop_pipe[0], &b, 1) < 0 && errno == EINTR) {
  }

  std::printf("shutting down...\n");
  srv.Stop();
  server::ServerStats s = srv.Snapshot();
  std::printf("served %llu requests over %llu connections (%llu "
              "disconnect kills)\n",
              static_cast<unsigned long long>(s.requests_total),
              static_cast<unsigned long long>(s.connections_accepted),
              static_cast<unsigned long long>(s.disconnect_kills));
  return 0;
}
