// roxq — command-line client for roxd.
//
//   $ roxq [--host=127.0.0.1] [--port=8080] 'QUERY'
//   $ echo 'QUERY' | roxq           # query from stdin when no arg
//   $ roxq --stats                  # GET /stats
//   $ roxq --metrics                # GET /metrics
//   $ roxq --health                 # GET /healthz
//
// Query knobs map straight onto the /query headers (DESIGN.md §15):
//   --deadline_ms=N       X-Deadline-Ms
//   --memory_budget_mb=N  X-Memory-Budget-Mb
//   --max_rows=N          X-Max-Rows
//   --mode=execute|explain|profile   X-Query-Mode
//   --trace_level=off|spans|full     X-Trace-Level
//   --tag=TEXT            X-Client-Tag
//
// Prints the response body (the stable QueryResponse JSON) to stdout.
// Exit status: 0 on HTTP 2xx, 1 on any HTTP error or transport
// failure, 2 on usage errors.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "server/client.h"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: roxq [--host=H] [--port=P] [--deadline_ms=N]\n"
      "            [--memory_budget_mb=N] [--max_rows=N]\n"
      "            [--mode=execute|explain|profile]\n"
      "            [--trace_level=off|spans|full] [--tag=TEXT]\n"
      "            ['QUERY' | --stats | --metrics | --health]\n"
      "with no QUERY argument, the query is read from stdin\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rox;

  std::string host = "127.0.0.1";
  uint16_t port = 8080;
  std::string get_target;  // --stats/--metrics/--health
  std::vector<std::pair<std::string, std::string>> headers;
  std::string query;
  bool have_query = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    size_t eq = arg.find('=');
    std::string key = arg.substr(0, eq);
    std::string val = eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (key == "--host") {
      host = val;
    } else if (key == "--port") {
      long p = std::strtol(val.c_str(), nullptr, 10);
      if (p < 1 || p > 65535) return Usage();
      port = static_cast<uint16_t>(p);
    } else if (key == "--deadline_ms") {
      headers.emplace_back("X-Deadline-Ms", val);
    } else if (key == "--memory_budget_mb") {
      headers.emplace_back("X-Memory-Budget-Mb", val);
    } else if (key == "--max_rows") {
      headers.emplace_back("X-Max-Rows", val);
    } else if (key == "--mode") {
      headers.emplace_back("X-Query-Mode", val);
    } else if (key == "--trace_level") {
      headers.emplace_back("X-Trace-Level", val);
    } else if (key == "--tag") {
      headers.emplace_back("X-Client-Tag", val);
    } else if (arg == "--stats") {
      get_target = "/stats";
    } else if (arg == "--metrics") {
      get_target = "/metrics";
    } else if (arg == "--health") {
      get_target = "/healthz";
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag %s\n", key.c_str());
      return Usage();
    } else if (!have_query) {
      query = arg;
      have_query = true;
    } else {
      return Usage();
    }
  }
  if (have_query && !get_target.empty()) return Usage();
  if (!have_query && get_target.empty()) {
    std::stringstream buf;
    buf << std::cin.rdbuf();
    query = buf.str();
    if (query.empty()) return Usage();
    have_query = true;
  }

  server::HttpClient client;
  Status s = client.Connect(host, port);
  if (!s.ok()) {
    std::fprintf(stderr, "cannot reach roxd at %s:%u: %s\n", host.c_str(),
                 static_cast<unsigned>(port), s.ToString().c_str());
    return 1;
  }
  auto resp = have_query
                  ? client.Request("POST", "/query", headers, query)
                  : client.Request("GET", get_target, headers, "");
  if (!resp.ok()) {
    std::fprintf(stderr, "request failed: %s\n",
                 resp.status().ToString().c_str());
    return 1;
  }
  std::fputs(resp->body.c_str(), stdout);
  if (resp->status >= 300) {
    std::fprintf(stderr, "HTTP %d\n", resp->status);
    return 1;
  }
  return 0;
}
