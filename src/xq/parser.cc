#include "xq/parser.h"

#include <cctype>
#include <unordered_set>

#include "common/str_util.h"

namespace rox::xq {

namespace {

enum class Tok : uint8_t {
  kEof,
  kIdent,     // let, for, where, return, and, in, doc, names
  kVariable,  // $x
  kString,    // "..." or '...'
  kNumber,    // 123, 1.5
  kSlash,     // /
  kSlashSlash,  // //
  kAt,        // @
  kDot,       // .
  kDotDot,    // ..
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kComma,
  kAssign,    // :=
  kEq,        // =
  kNe,        // !=
  kLt,
  kLe,
  kGt,
  kGe,
  kStar,
};

struct Token {
  Tok kind = Tok::kEof;
  std::string text;
  int line = 1;
  int col = 1;
};

class Lexer {
 public:
  explicit Lexer(std::string_view s) : s_(s) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> out;
    for (;;) {
      SkipSpaceAndComments();
      Token t;
      t.line = line_;
      t.col = col_;
      if (AtEnd()) {
        t.kind = Tok::kEof;
        out.push_back(t);
        return out;
      }
      char c = Peek();
      if (c == '$') {
        Take();
        if (AtEnd() || !IsNameStart(Peek())) return Err("expected name after $");
        t.kind = Tok::kVariable;
        t.text = TakeName();
      } else if (IsNameStart(c)) {
        t.kind = Tok::kIdent;
        t.text = TakeName();
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        t.kind = Tok::kNumber;
        while (!AtEnd() && (std::isdigit(static_cast<unsigned char>(Peek())) ||
                            Peek() == '.')) {
          t.text.push_back(Take());
        }
      } else if (c == '"' || c == '\'') {
        char quote = Take();
        t.kind = Tok::kString;
        while (!AtEnd() && Peek() != quote) t.text.push_back(Take());
        if (AtEnd()) return Err("unterminated string literal");
        Take();
      } else {
        Take();
        switch (c) {
          case '/':
            if (!AtEnd() && Peek() == '/') {
              Take();
              t.kind = Tok::kSlashSlash;
            } else {
              t.kind = Tok::kSlash;
            }
            break;
          case '@':
            t.kind = Tok::kAt;
            break;
          case '.':
            if (!AtEnd() && Peek() == '.') {
              Take();
              t.kind = Tok::kDotDot;
            } else {
              t.kind = Tok::kDot;
            }
            break;
          case '(':
            t.kind = Tok::kLParen;
            break;
          case ')':
            t.kind = Tok::kRParen;
            break;
          case '[':
            t.kind = Tok::kLBracket;
            break;
          case ']':
            t.kind = Tok::kRBracket;
            break;
          case ',':
            t.kind = Tok::kComma;
            break;
          case ':':
            if (!AtEnd() && Peek() == '=') {
              Take();
              t.kind = Tok::kAssign;
            } else {
              return Err("expected := after :");
            }
            break;
          case '=':
            t.kind = Tok::kEq;
            break;
          case '!':
            if (!AtEnd() && Peek() == '=') {
              Take();
              t.kind = Tok::kNe;
            } else {
              return Err("expected != after !");
            }
            break;
          case '<':
            if (!AtEnd() && Peek() == '=') {
              Take();
              t.kind = Tok::kLe;
            } else {
              t.kind = Tok::kLt;
            }
            break;
          case '>':
            if (!AtEnd() && Peek() == '=') {
              Take();
              t.kind = Tok::kGe;
            } else {
              t.kind = Tok::kGt;
            }
            break;
          case '*':
            t.kind = Tok::kStar;
            break;
          default:
            return Err(StrCat("unexpected character '", std::string(1, c),
                              "'"));
        }
      }
      out.push_back(std::move(t));
    }
  }

 private:
  bool AtEnd() const { return pos_ >= s_.size(); }
  char Peek() const { return s_[pos_]; }
  char Take() {
    char c = s_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }
  static bool IsNameStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
  }
  static bool IsNameChar(char c) {
    return IsNameStart(c) || std::isdigit(static_cast<unsigned char>(c)) ||
           c == '-' || c == '.' || c == ':';
  }
  std::string TakeName() {
    std::string out;
    while (!AtEnd() && IsNameChar(Peek())) out.push_back(Take());
    return out;
  }
  void SkipSpaceAndComments() {
    for (;;) {
      while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
        Take();
      }
      // XQuery comments: (: ... :)
      if (pos_ + 1 < s_.size() && s_[pos_] == '(' && s_[pos_ + 1] == ':') {
        Take();
        Take();
        while (pos_ + 1 < s_.size() &&
               !(s_[pos_] == ':' && s_[pos_ + 1] == ')')) {
          Take();
        }
        if (pos_ + 1 < s_.size()) {
          Take();
          Take();
        }
        continue;
      }
      return;
    }
  }
  Status Err(std::string msg) {
    return Status::ParseError(StrCat(line_, ":", col_, ": ", msg));
  }

  std::string_view s_;
  size_t pos_ = 0;
  int line_ = 1, col_ = 1;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  Result<AstQuery> Run() {
    AstQuery q;
    for (;;) {
      if (AtKeyword("let")) {
        Advance();
        ROX_ASSIGN_OR_RETURN(AstLet let, ParseLet());
        q.lets.push_back(std::move(let));
      } else if (AtKeyword("for")) {
        Advance();
        for (;;) {
          ROX_ASSIGN_OR_RETURN(AstFor f, ParseForBinding());
          q.fors.push_back(std::move(f));
          if (!At(Tok::kComma)) break;
          Advance();
        }
      } else {
        break;
      }
    }
    if (q.fors.empty()) return Err("query needs at least one for clause");
    if (AtKeyword("where")) {
      Advance();
      for (;;) {
        ROX_ASSIGN_OR_RETURN(AstComparison cmp, ParseComparison());
        q.where.push_back(std::move(cmp));
        if (!AtKeyword("and")) break;
        Advance();
      }
    }
    if (!AtKeyword("return")) return Err("expected 'return'");
    Advance();
    if (!At(Tok::kVariable)) {
      return Err("return clause must be a bound variable");
    }
    q.return_variable = Cur().text;
    Advance();
    if (!At(Tok::kEof)) return Err("trailing input after return clause");
    return q;
  }

 private:
  const Token& Cur() const { return toks_[pos_]; }
  bool At(Tok k) const { return Cur().kind == k; }
  bool AtKeyword(std::string_view kw) const {
    return Cur().kind == Tok::kIdent && Cur().text == kw;
  }
  void Advance() {
    if (pos_ + 1 < toks_.size()) ++pos_;
  }
  Status Err(std::string msg) const { return ErrAt(Cur(), std::move(msg)); }
  static Status ErrAt(const Token& t, std::string msg) {
    return Status::ParseError(StrCat(t.line, ":", t.col, ": ", msg));
  }

  Result<AstLet> ParseLet() {
    AstLet let;
    if (!At(Tok::kVariable)) return Err("expected $variable after 'let'");
    let.variable = Cur().text;
    Advance();
    if (!At(Tok::kAssign)) return Err("expected ':='");
    Advance();
    ROX_ASSIGN_OR_RETURN(let.value, ParsePathExpr());
    bound_.insert(let.variable);
    return let;
  }

  Result<AstFor> ParseForBinding() {
    AstFor f;
    if (!At(Tok::kVariable)) return Err("expected $variable in for clause");
    f.variable = Cur().text;
    Advance();
    if (!AtKeyword("in")) return Err("expected 'in'");
    Advance();
    ROX_ASSIGN_OR_RETURN(f.domain, ParsePathExpr());
    bound_.insert(f.variable);
    return f;
  }

  Result<AstPathExpr> ParsePathExpr() {
    AstPathExpr p;
    if (AtKeyword("doc") || AtKeyword("fn:doc")) {
      Advance();
      if (!At(Tok::kLParen)) return Err("expected '(' after doc");
      Advance();
      if (!At(Tok::kString)) return Err("doc() needs a string literal url");
      p.doc_url = Cur().text;
      Advance();
      if (!At(Tok::kRParen)) return Err("expected ')'");
      Advance();
    } else if (At(Tok::kVariable)) {
      p.variable = Cur().text;
      Advance();
    } else {
      return Err("path must start with doc(\"...\") or a variable");
    }
    while (At(Tok::kSlash) || At(Tok::kSlashSlash)) {
      AstPathExpr::PredicatedStep ps;
      ROX_ASSIGN_OR_RETURN(ps.step, ParseStep());
      while (At(Tok::kLBracket)) {
        Advance();
        // Standard XQuery precedence: `and` binds tighter than `or`,
        // so each `or` branch is a conjunction of predicates and
        // `[a and b or c]` parses as (a AND b) OR c. A single-branch
        // group is a plain conjunction (`[a and b]` == `[a][b]`).
        AstPredicateGroup group;
        for (;;) {
          std::vector<AstPredicate> conjunction;
          for (;;) {
            ROX_ASSIGN_OR_RETURN(AstPredicate pred, ParsePredicate());
            conjunction.push_back(std::move(pred));
            if (!AtKeyword("and")) break;
            Advance();
          }
          group.alternatives.push_back(std::move(conjunction));
          if (!AtKeyword("or")) break;
          Advance();
        }
        ps.predicate_groups.push_back(std::move(group));
        if (!At(Tok::kRBracket)) return Err("expected ']'");
        Advance();
      }
      p.steps.push_back(std::move(ps));
    }
    return p;
  }

  // Maps an explicit axis name ("ancestor", "following-sibling", ...)
  // to the Axis enum; returns false for unknown names. Note the lexer
  // folds "axis::name" into one identifier because ':' is a name char —
  // we split on the first "::" here.
  static bool LookupAxis(std::string_view name, Axis* out) {
    struct Entry {
      const char* name;
      Axis axis;
    };
    static constexpr Entry kAxes[] = {
        {"child", Axis::kChild},
        {"descendant", Axis::kDescendant},
        {"descendant-or-self", Axis::kDescendantOrSelf},
        {"parent", Axis::kParent},
        {"ancestor", Axis::kAncestor},
        {"ancestor-or-self", Axis::kAncestorOrSelf},
        {"following", Axis::kFollowing},
        {"preceding", Axis::kPreceding},
        {"following-sibling", Axis::kFollowingSibling},
        {"preceding-sibling", Axis::kPrecedingSibling},
        {"self", Axis::kSelf},
        {"attribute", Axis::kAttribute},
    };
    for (const Entry& e : kAxes) {
      if (name == e.name) {
        *out = e.axis;
        return true;
      }
    }
    return false;
  }

  // Parses "/" or "//" followed by a node test, with optional explicit
  // axis ("/ancestor::venue", "//following-sibling::x"). The leading
  // separator must be current.
  Result<AstStep> ParseStep() {
    AstStep s;
    bool descend = At(Tok::kSlashSlash);
    Advance();
    s.axis = descend ? Axis::kDescendant : Axis::kChild;
    if (At(Tok::kAt)) {
      Advance();
      if (!At(Tok::kIdent)) return Err("expected attribute name after @");
      s.test = AstStep::Test::kAttribute;
      s.axis = Axis::kAttribute;  // @x is always attribute-axis
      s.name = Cur().text;
      Advance();
      return s;
    }
    if (At(Tok::kStar)) {
      Advance();
      s.test = AstStep::Test::kAnyElement;
      return s;
    }
    if (!At(Tok::kIdent)) return Err("expected node test");
    std::string name = Cur().text;
    Advance();
    // Explicit axis: the lexer keeps "axis::test" as one identifier.
    size_t sep = name.find("::");
    if (sep != std::string::npos) {
      if (descend) {
        return Err("'//' cannot be combined with an explicit axis");
      }
      std::string axis_name = name.substr(0, sep);
      if (!LookupAxis(axis_name, &s.axis)) {
        return Err(StrCat("unknown axis '", axis_name, "'"));
      }
      name = name.substr(sep + 2);
      if (name.empty()) {
        // "axis::*": the lexer stops the identifier before '*'.
        if (At(Tok::kStar)) {
          Advance();
          s.test = AstStep::Test::kAnyElement;
          return s;
        }
        return Err("expected node test after axis");
      }
      if (s.axis == Axis::kAttribute) {
        s.test = AstStep::Test::kAttribute;
        s.name = std::move(name);
        return s;
      }
    }
    if (name == "text" && At(Tok::kLParen)) {
      Advance();
      if (!At(Tok::kRParen)) return Err("expected ')' after text(");
      Advance();
      s.test = AstStep::Test::kText;
      return s;
    }
    s.test = AstStep::Test::kElement;
    s.name = std::move(name);
    return s;
  }

  Result<AstPredicate> ParsePredicate() {
    AstPredicate pred;
    if (!At(Tok::kDot)) return Err("predicate must start with '.'");
    Advance();
    while (At(Tok::kSlash) || At(Tok::kSlashSlash)) {
      ROX_ASSIGN_OR_RETURN(AstStep s, ParseStep());
      pred.path.push_back(std::move(s));
    }
    if (pred.path.empty()) return Err("empty predicate path");
    if (std::optional<CmpOp> op = TokToCmp(Cur().kind)) {
      pred.op = *op;
      Advance();
      if (At(Tok::kNumber)) {
        pred.literal = Cur().text;
        pred.literal_is_number = true;
      } else if (At(Tok::kString)) {
        pred.literal = Cur().text;
        pred.literal_is_number = false;
      } else {
        return Err("expected literal after comparison operator");
      }
      Advance();
    }
    return pred;
  }

  // Maps a comparison token to its operator; nullopt for other tokens.
  static std::optional<CmpOp> TokToCmp(Tok k) {
    switch (k) {
      case Tok::kEq:
        return CmpOp::kEq;
      case Tok::kNe:
        return CmpOp::kNe;
      case Tok::kLt:
        return CmpOp::kLt;
      case Tok::kLe:
        return CmpOp::kLe;
      case Tok::kGt:
        return CmpOp::kGt;
      case Tok::kGe:
        return CmpOp::kGe;
      default:
        return std::nullopt;
    }
  }

  // One side of a where comparison: a path rooted at a bound variable.
  // Malformed operands get precise, position-carrying diagnoses here
  // rather than the generic path-parse error.
  Result<AstPathExpr> ParseComparisonOperand() {
    const Token start = Cur();
    if (At(Tok::kNumber) || At(Tok::kString)) {
      return ErrAt(start,
                   StrCat("where comparison operand must be a path from a "
                          "bound variable, not the literal '",
                          start.text, "'"));
    }
    if (At(Tok::kVariable) && !bound_.contains(start.text)) {
      return ErrAt(start, StrCat("unbound variable $", start.text,
                                 " in where clause"));
    }
    ROX_ASSIGN_OR_RETURN(AstPathExpr p, ParsePathExpr());
    if (p.variable.empty()) {
      return ErrAt(start,
                   "where comparisons must start from bound variables "
                   "(doc(...) operands are not join paths)");
    }
    return p;
  }

  Result<AstComparison> ParseComparison() {
    AstComparison cmp;
    ROX_ASSIGN_OR_RETURN(cmp.lhs, ParseComparisonOperand());
    std::optional<CmpOp> op = TokToCmp(Cur().kind);
    if (!op.has_value()) {
      return Err("expected a comparison operator (=, !=, <, <=, >, >=)");
    }
    cmp.op = *op;
    Advance();
    ROX_ASSIGN_OR_RETURN(cmp.rhs, ParseComparisonOperand());
    return cmp;
  }

  std::vector<Token> toks_;
  size_t pos_ = 0;
  // Variables bound by preceding let/for clauses, for precise unbound-
  // variable diagnoses in the where clause.
  std::unordered_set<std::string> bound_;
};

}  // namespace

Result<AstQuery> ParseXQuery(std::string_view text) {
  Lexer lexer(text);
  ROX_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Run());
  Parser parser(std::move(tokens));
  return parser.Run();
}

}  // namespace rox::xq
