// Lowering of parsed XQueries to Join Graphs — the stand-in for
// Pathfinder's Join Graph Isolation [18].
//
// Every for-variable, path step and predicate step becomes a vertex;
// steps become step edges, where-clause equalities become equi-join
// edges. The compiler then (optionally) adds the equivalence closure
// over the equi-join classes and prunes redundant descendant-from-root
// edges, producing exactly the Join Graph shape ROX consumes (Figures
// 1, 3.1 and 4 of the paper).

#ifndef ROX_XQ_COMPILE_H_
#define ROX_XQ_COMPILE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "graph/join_graph.h"
#include "index/corpus.h"
#include "rox/optimizer.h"
#include "xq/ast.h"

namespace rox::xq {

struct CompileOptions {
  bool add_equivalence_closure = true;
  bool prune_root_edges = true;
};

// A compiled query: the Join Graph plus the variable bindings needed to
// interpret the joined relation.
struct CompiledQuery {
  JoinGraph graph;
  // Variable name (without '$') -> its vertex.
  std::unordered_map<std::string, VertexId> variables;
  // The for-variables in declaration order: they define the duplicate/
  // order semantics of the result (the τ numbering of the plan tail).
  std::vector<VertexId> for_vertices;
  VertexId return_vertex = kInvalidVertexId;
};

// Compiles `query` against one pinned corpus epoch (doc() urls are
// resolved against document names). Compilation is strictly read-only
// on the corpus: element/attribute names and value literals are
// *looked up* in the string pool, never interned. A name or literal
// the epoch has never seen cannot match any node, so it lowers to a
// vertex that is correctly empty — this is what lets an engine share
// one immutable epoch across concurrent compilations and executions
// without locks. A compiled query is valid only for the epoch it was
// compiled against (the engine's cache is epoch-keyed): a later epoch
// may resolve the same names and literals differently.
Result<CompiledQuery> CompileXQuery(const CorpusSnapshot& snapshot,
                                    const AstQuery& query,
                                    const CompileOptions& options = {});

// Parses and compiles in one call.
Result<CompiledQuery> CompileXQuery(const CorpusSnapshot& snapshot,
                                    std::string_view text,
                                    const CompileOptions& options = {});

// Runs a compiled query through the ROX optimizer and applies the plan
// tail of §2.1 / Figure 1: project onto the for-variables, remove
// duplicate bindings, sort in document order, and project onto the
// return variable. Returns the result node sequence (one Pre per
// result item; items stem from the return variable's document).
//
// `warm_edge_weights`, when non-null and sized to
// compiled.graph.EdgeCount(), warm-starts each connected component's
// ROX run with the given per-edge weights (subject to
// rox_options.use_warm_start; entries < 0 are estimated normally).
// `learned_weights_out`, when non-null, receives the weights the run
// learned, indexed by the compiled graph's edge ids (-1 for edges of
// components that did not execute) — feed them back as
// `warm_edge_weights` of the next run of the same compiled query.
// The snapshot is pinned by every optimizer the run spawns, so the
// epoch stays alive for the whole execution even if the engine
// publishes a successor mid-run.
Result<std::vector<Pre>> RunXQuery(
    CorpusSnapshot snapshot, const CompiledQuery& compiled,
    const RoxOptions& rox_options = {}, RoxStats* stats_out = nullptr,
    const std::vector<double>* warm_edge_weights = nullptr,
    std::vector<double>* learned_weights_out = nullptr);

// EXPLAIN support (\explain): runs Phase 1 sampling per connected
// component — index samples and cut-off sampled edge weights, no full
// edge executes — and maps the estimates back to the compiled graph's
// ids. The join *order* beyond each component's predicted first edge
// is decided at run time (ROX's whole point), so that is all an
// explain can honestly promise. `warm_edge_weights` follows the
// RunXQuery contract: cached weights are adopted where Phase 1 would
// have sampled.
struct ExplainInfo {
  // Indexed by the compiled graph's ids; < 0 means "no estimate".
  std::vector<double> edge_weights;
  std::vector<double> vertex_cards;
  // Per contributing component: the min-weight edge ROX would execute
  // first (original edge id), and the component's edge count.
  std::vector<EdgeId> predicted_first;
  uint64_t warm_started_weights = 0;
};
Result<ExplainInfo> ExplainXQuery(
    CorpusSnapshot snapshot, const CompiledQuery& compiled,
    const RoxOptions& rox_options = {},
    const std::vector<double>* warm_edge_weights = nullptr);

}  // namespace rox::xq

#endif  // ROX_XQ_COMPILE_H_
