#include "xq/compile.h"

#include <algorithm>
#include <cmath>

#include "common/str_util.h"
#include "obs/trace.h"
#include "xq/parser.h"

namespace rox::xq {

namespace {

// Tracks compilation state: vertices created so far, per-document root
// vertices, variable bindings.
class Compiler {
 public:
  Compiler(const Corpus& corpus, const CompileOptions& options)
      : corpus_(corpus), options_(options) {}

  Result<CompiledQuery> Run(const AstQuery& q) {
    for (const AstLet& let : q.lets) {
      ROX_RETURN_IF_ERROR(CompileLet(let));
    }
    for (const AstFor& f : q.fors) {
      ROX_ASSIGN_OR_RETURN(VertexId v, CompilePath(f.domain));
      if (out_.variables.contains(f.variable)) {
        return Status::InvalidArgument(
            StrCat("variable $", f.variable, " bound twice"));
      }
      out_.variables.emplace(f.variable, v);
      out_.for_vertices.push_back(v);
    }
    for (const AstComparison& cmp : q.where) {
      ROX_ASSIGN_OR_RETURN(VertexId lhs, CompileWhereOperand(cmp.lhs));
      ROX_ASSIGN_OR_RETURN(VertexId rhs, CompileWhereOperand(cmp.rhs));
      out_.graph.AddValueJoin(lhs, rhs, cmp.op);
    }
    auto it = out_.variables.find(q.return_variable);
    if (it == out_.variables.end()) {
      return Status::InvalidArgument(
          StrCat("return variable $", q.return_variable, " is not bound"));
    }
    out_.return_vertex = it->second;
    ROX_RETURN_IF_ERROR(out_.graph.Validate());
    if (options_.add_equivalence_closure) out_.graph.AddEquivalenceClosure();
    if (options_.prune_root_edges) out_.graph.PruneRedundantRootEdges();
    return std::move(out_);
  }

 private:
  Status CompileLet(const AstLet& let) {
    if (let.value.doc_url.empty() || !let.value.steps.empty()) {
      return Status::Unimplemented(
          "let clauses must bind doc(\"...\") (path lets are future work)");
    }
    ROX_ASSIGN_OR_RETURN(VertexId root, RootFor(let.value.doc_url));
    if (out_.variables.contains(let.variable)) {
      return Status::InvalidArgument(
          StrCat("variable $", let.variable, " bound twice"));
    }
    out_.variables.emplace(let.variable, root);
    return Status::Ok();
  }

  Result<VertexId> RootFor(const std::string& url) {
    auto it = roots_.find(url);
    if (it != roots_.end()) return it->second;
    ROX_ASSIGN_OR_RETURN(DocId doc, corpus_.Resolve(url));
    VertexId root = out_.graph.AddRoot(doc, StrCat("root(", url, ")"));
    roots_.emplace(url, root);
    return root;
  }

  // Compiles a path expression; returns the vertex of its final step.
  Result<VertexId> CompilePath(const AstPathExpr& p) {
    VertexId cur;
    if (!p.doc_url.empty()) {
      ROX_ASSIGN_OR_RETURN(cur, RootFor(p.doc_url));
    } else {
      auto it = out_.variables.find(p.variable);
      if (it == out_.variables.end()) {
        return Status::InvalidArgument(
            StrCat("unbound variable $", p.variable));
      }
      cur = it->second;
    }
    for (const auto& ps : p.steps) {
      ROX_ASSIGN_OR_RETURN(
          cur, AddStepVertex(cur, ps.step, ValuePredicate::None()));
      for (const AstPredicateGroup& group : ps.predicate_groups) {
        ROX_RETURN_IF_ERROR(CompilePredicateGroup(cur, group));
      }
    }
    return cur;
  }

  // Compiles one side of a where comparison. The join edge compares
  // node *values*, so an operand ending at an element is lowered to
  // the element's text() child (XQuery atomization of element content:
  // `$a/price < $b/price` joins the price texts); roots carry no value
  // and are rejected.
  Result<VertexId> CompileWhereOperand(const AstPathExpr& p) {
    ROX_ASSIGN_OR_RETURN(VertexId v, CompilePath(p));
    switch (out_.graph.vertex(v).type) {
      case VertexType::kRoot:
        return Status::InvalidArgument(
            "where comparison operand denotes a document root, which "
            "carries no value");
      case VertexType::kElement: {
        AstStep text_step;
        text_step.axis = Axis::kChild;
        text_step.test = AstStep::Test::kText;
        return AddStepVertex(v, text_step, ValuePredicate::None());
      }
      case VertexType::kText:
      case VertexType::kAttribute:
        return v;
    }
    return v;
  }

  // Find, not Intern: compilation never mutates the shared pool. A name
  // the corpus has never seen maps to kNoSuchStringId, which stays
  // index-selectable (with an empty lookup, so ROX sees cardinality 0)
  // and never matches a node — kInvalidStringId would instead mean "no
  // name restriction" to the step executor.
  StringId FindName(std::string_view name) const {
    StringId id = corpus_.Find(name);
    return id == kInvalidStringId ? kNoSuchStringId : id;
  }

  // Adds the vertex + step edge for one location step out of `from`.
  Result<VertexId> AddStepVertex(VertexId from, const AstStep& step,
                                 const ValuePredicate& pred) {
    DocId doc = out_.graph.vertex(from).doc;
    VertexId v = kInvalidVertexId;
    switch (step.test) {
      case AstStep::Test::kElement:
        v = out_.graph.AddElement(doc, FindName(step.name), step.name);
        break;
      case AstStep::Test::kAnyElement:
        return Status::Unimplemented(
            "wildcard element tests are not index-selectable; name the "
            "element");
      case AstStep::Test::kText:
        v = out_.graph.AddText(doc, pred, DescribeTextVertex(pred));
        break;
      case AstStep::Test::kAttribute:
        v = out_.graph.AddAttribute(doc, FindName(step.name), pred,
                                    StrCat("@", step.name));
        break;
    }
    out_.graph.AddStep(from, step.axis, v);
    return v;
  }

  std::string DescribeTextVertex(const ValuePredicate& pred) {
    switch (pred.kind) {
      case ValuePredicate::Kind::kNone:
        return "text()";
      case ValuePredicate::Kind::kEquals:
      case ValuePredicate::Kind::kNotEquals: {
        const char* op =
            pred.kind == ValuePredicate::Kind::kEquals ? "=" : "!=";
        if (pred.equals >= corpus_.string_pool().size()) {
          return StrCat("text()", op, "<unseen literal>");
        }
        return StrCat("text()", op, corpus_.string_pool().Get(pred.equals));
      }
      case ValuePredicate::Kind::kRange:
        return "text() in range";
      case ValuePredicate::Kind::kAnyOf:
        return StrCat("text() or-group(", pred.any_of.size(), ")");
    }
    return "text()";
  }

  // Lowers one predicate path hanging off `anchor`, restricting its
  // final vertex by `vp` (nullopt: existence test). A comparison on an
  // element-final path becomes the element plus a predicated text()
  // child (the shape of the paper's Figure 3.1 `quantity -> text()=1`).
  Status CompilePredicatePath(VertexId anchor,
                              const std::vector<AstStep>& path,
                              const std::optional<ValuePredicate>& vp) {
    VertexId cur = anchor;
    for (size_t i = 0; i < path.size(); ++i) {
      const AstStep& step = path[i];
      bool last = i + 1 == path.size();
      if (!last || !vp.has_value()) {
        ROX_ASSIGN_OR_RETURN(
            cur, AddStepVertex(cur, step, ValuePredicate::None()));
        continue;
      }
      if (step.test == AstStep::Test::kElement) {
        ROX_ASSIGN_OR_RETURN(
            cur, AddStepVertex(cur, step, ValuePredicate::None()));
        AstStep text_step;
        text_step.axis = Axis::kChild;
        text_step.test = AstStep::Test::kText;
        ROX_ASSIGN_OR_RETURN(cur, AddStepVertex(cur, text_step, *vp));
      } else {
        ROX_ASSIGN_OR_RETURN(cur, AddStepVertex(cur, step, *vp));
      }
    }
    return Status::Ok();
  }

  // Compiles a [...] predicate group hanging off `anchor`. A single
  // `or` branch is a plain conjunction: every predicate lowers to its
  // own vertex chain. A disjunction lowers to ONE vertex chain whose
  // final vertex carries the kAnyOf predicate — which is why every
  // branch must be a single comparison on the same relative path;
  // anything else (existence branches, different paths, conjunctions
  // inside a branch) would need a union operator the join graph does
  // not have and reports Unimplemented.
  Status CompilePredicateGroup(VertexId anchor,
                               const AstPredicateGroup& group) {
    if (group.alternatives.size() == 1) {
      for (const AstPredicate& pred : group.alternatives[0]) {
        std::optional<ValuePredicate> vp;
        if (pred.op.has_value()) {
          ROX_ASSIGN_OR_RETURN(vp, MakeValuePredicate(pred));
        }
        ROX_RETURN_IF_ERROR(CompilePredicatePath(anchor, pred.path, vp));
      }
      return Status::Ok();
    }
    const std::vector<AstStep>& path = group.alternatives[0][0].path;
    std::vector<ValuePredicate> terms;
    terms.reserve(group.alternatives.size());
    for (const std::vector<AstPredicate>& branch : group.alternatives) {
      if (branch.size() != 1) {
        return Status::Unimplemented(
            "an 'or' branch that is itself a conjunction is not "
            "index-lowerable (write the conjunct as its own [..] "
            "bracket)");
      }
      const AstPredicate& alt = branch[0];
      if (!alt.op.has_value()) {
        return Status::Unimplemented(
            "every branch of an 'or' predicate needs a value comparison "
            "(existence disjunctions are not index-lowerable)");
      }
      if (!SameSteps(alt.path, path)) {
        return Status::Unimplemented(
            "'or' predicate branches must compare the same relative "
            "path");
      }
      ROX_ASSIGN_OR_RETURN(ValuePredicate term, MakeValuePredicate(alt));
      terms.push_back(std::move(term));
    }
    return CompilePredicatePath(anchor, path,
                                ValuePredicate::AnyOf(std::move(terms)));
  }

  static bool SameSteps(const std::vector<AstStep>& a,
                        const std::vector<AstStep>& b) {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i].axis != b[i].axis || a[i].test != b[i].test ||
          a[i].name != b[i].name) {
        return false;
      }
    }
    return true;
  }

  Result<ValuePredicate> MakeValuePredicate(const AstPredicate& pred) {
    CmpOp op = *pred.op;
    if (op == CmpOp::kEq) {
      return ValuePredicate::Equals(FindName(pred.literal));
    }
    if (op == CmpOp::kNe) {
      return ValuePredicate::NotEquals(FindName(pred.literal));
    }
    if (!pred.literal_is_number) {
      return Status::Unimplemented(
          "range predicates require numeric literals");
    }
    // Full-string parse (shared with the string pool's cached numeric
    // interpretation): a lexer bug in `literal_is_number` can then never
    // silently compile a garbage-prefixed literal into a range bound.
    double v = ParseNumeric(pred.literal);
    if (std::isnan(v)) {
      return Status::InvalidArgument(
          StrCat("range predicate literal is not numeric: '", pred.literal,
                 "'"));
    }
    switch (op) {
      case CmpOp::kLt:
        return ValuePredicate::Range(NumericRange::LessThan(v));
      case CmpOp::kLe:
        return ValuePredicate::Range(NumericRange::AtMost(v));
      case CmpOp::kGt:
        return ValuePredicate::Range(NumericRange::GreaterThan(v));
      case CmpOp::kGe:
        return ValuePredicate::Range(NumericRange::AtLeast(v));
      default:
        return Status::Internal("unhandled comparison");
    }
  }

  const Corpus& corpus_;
  const CompileOptions& options_;
  CompiledQuery out_;
  std::unordered_map<std::string, VertexId> roots_;
};

}  // namespace

Result<CompiledQuery> CompileXQuery(const CorpusSnapshot& snapshot,
                                    const AstQuery& query,
                                    const CompileOptions& options) {
  Compiler compiler(*snapshot, options);
  return compiler.Run(query);
}

Result<CompiledQuery> CompileXQuery(const CorpusSnapshot& snapshot,
                                    std::string_view text,
                                    const CompileOptions& options) {
  ROX_ASSIGN_OR_RETURN(AstQuery ast, ParseXQuery(text));
  return CompileXQuery(snapshot, ast, options);
}

namespace {

// Merges the counters of a sub-run into the aggregate stats.
void MergeStats(RoxStats& into, const RoxStats& from) {
  into.sampling_time.Merge(from.sampling_time);
  into.execution_time.Merge(from.execution_time);
  into.assembly_time.Merge(from.assembly_time);
  into.warm_started_weights += from.warm_started_weights;
  into.edges_executed += from.edges_executed;
  into.chain_sample_calls += from.chain_sample_calls;
  into.chain_rounds += from.chain_rounds;
  into.sampled_tuples += from.sampled_tuples;
  into.operator_selections += from.operator_selections;
  into.operator_overrides += from.operator_overrides;
  into.cumulative_intermediate_rows += from.cumulative_intermediate_rows;
  into.peak_intermediate_rows =
      std::max(into.peak_intermediate_rows, from.peak_intermediate_rows);
  into.gather.Merge(from.gather);
  into.arena_bytes += from.arena_bytes;
  into.sharded.Merge(from.sharded);
}

}  // namespace

Result<std::vector<Pre>> RunXQuery(CorpusSnapshot snapshot,
                                   const CompiledQuery& compiled,
                                   const RoxOptions& rox_options,
                                   RoxStats* stats_out,
                                   const std::vector<double>* warm_edge_weights,
                                   std::vector<double>* learned_weights_out) {
  if (warm_edge_weights != nullptr &&
      warm_edge_weights->size() != compiled.graph.EdgeCount()) {
    warm_edge_weights = nullptr;  // stale cache entry: ignore
  }
  if (learned_weights_out != nullptr) {
    learned_weights_out->assign(compiled.graph.EdgeCount(), -1.0);
  }
  // A query whose for-variables are never joined produces a
  // disconnected graph; ROX optimizes each component separately (the
  // paper's isolated Join Graphs, §2.1) and the results combine as a
  // cross product.
  std::vector<GraphComponent> comps =
      SplitConnectedComponents(compiled.graph);
  ResultTable combined;
  std::vector<VertexId> combined_cols;  // original vertex ids
  RoxStats stats;
  GatherStats tail_gather;
  const bool lazy = rox_options.lazy_materialization;
  bool first = true;
  size_t comp_index = 0;
  for (const GraphComponent& comp : comps) {
    // Only components containing a for-variable contribute to the
    // result (pruned roots end up isolated and are skipped).
    bool needed = false;
    for (VertexId orig : comp.orig_vertex) {
      for (VertexId fv : compiled.for_vertices) needed |= fv == orig;
    }
    if (!needed) continue;
    if (comp.graph.EdgeCount() == 0) {
      return Status::Unimplemented(
          "for-variable bound to a bare document root is not supported");
    }
    // Gather/scatter warm weights through the component's edge mapping.
    RoxOptions comp_options = rox_options;
    std::vector<double> comp_warm;
    if (warm_edge_weights != nullptr) {
      comp_warm.reserve(comp.orig_edge.size());
      for (EdgeId orig : comp.orig_edge) {
        comp_warm.push_back((*warm_edge_weights)[orig]);
      }
      comp_options.warm_edge_weights = &comp_warm;
    }
    obs::ScopedSpan comp_span(comp_options.query_trace, "rox",
                              StrCat("component ", comp_index++));
    RoxOptimizer rox(snapshot, comp.graph, comp_options);
    ResultTable part;
    std::vector<VertexId> cols;
    std::vector<double> learned_weights;
    if (lazy) {
      // Late materialization: only the for-variable columns are ever
      // read downstream (the plan tail), so only they are requested as
      // output and gathered — every other column of the assembled
      // relation stays an un-materialized view. local_out follows
      // for-variable declaration order, so for a single-component
      // query the gathered table already IS the projected plan-tail
      // input.
      std::vector<VertexId> local_out;
      for (VertexId fv : compiled.for_vertices) {
        for (VertexId lv = 0; lv < comp.graph.VertexCount(); ++lv) {
          if (comp.orig_vertex[lv] == fv) local_out.push_back(lv);
        }
      }
      ROX_ASSIGN_OR_RETURN(RoxViewResult vr, rox.RunView(local_out));
      learned_weights = std::move(vr.final_edge_weights);
      MergeStats(stats, vr.stats);
      part = ResultTable(local_out.size());
      uint64_t bytes_before = tail_gather.bytes_gathered;
      obs::ScopedSpan gather_span(comp_options.query_trace, "gather");
      for (size_t i = 0; i < local_out.size(); ++i) {
        size_t col = static_cast<size_t>(-1);
        for (size_t c = 0; c < vr.columns.size(); ++c) {
          if (vr.columns[c] == local_out[i]) col = c;
        }
        if (col == static_cast<size_t>(-1)) {
          return Status::Internal("for-variable vertex missing from result");
        }
        vr.view.GatherColumnInto(col, part.MutableCol(i), &tail_gather);
        cols.push_back(comp.orig_vertex[local_out[i]]);
      }
      if (gather_span.armed()) {
        gather_span.AttrNum("columns", static_cast<double>(local_out.size()));
        gather_span.AttrNum(
            "bytes",
            static_cast<double>(tail_gather.bytes_gathered - bytes_before));
        gather_span.AttrNum("arena_bytes",
                            static_cast<double>(vr.stats.arena_bytes));
      }
    } else {
      ROX_ASSIGN_OR_RETURN(RoxResult result, rox.Run());
      learned_weights = std::move(result.final_edge_weights);
      MergeStats(stats, result.stats);
      part = std::move(result.table);
      for (VertexId v : result.columns) cols.push_back(comp.orig_vertex[v]);
    }
    if (comp_span.armed()) {
      comp_span.AttrNum("edges_executed",
                        static_cast<double>(stats.edges_executed));
      comp_span.AttrNum("chain_rounds",
                        static_cast<double>(stats.chain_rounds));
      comp_span.AttrNum("rows", static_cast<double>(part.NumRows()));
    }
    if (learned_weights_out != nullptr) {
      for (EdgeId e = 0; e < comp.orig_edge.size(); ++e) {
        (*learned_weights_out)[comp.orig_edge[e]] = learned_weights[e];
      }
    }
    if (first) {
      combined = std::move(part);
      combined_cols = std::move(cols);
      first = false;
    } else {
      combined = CartesianProduct(combined, part);
      combined_cols.insert(combined_cols.end(), cols.begin(), cols.end());
    }
  }
  if (first) {
    return Status::FailedPrecondition("query produced no joined component");
  }
  stats.gather.Merge(tail_gather);
  if (stats_out != nullptr) *stats_out = stats;

  // Plan tail (Figure 1): π(for-vars) -> δ -> τ(sort) -> π(return var).
  obs::ScopedSpan tail_span(rox_options.query_trace, "plan_tail");
  auto column_of = [&](VertexId v) -> size_t {
    for (size_t i = 0; i < combined_cols.size(); ++i) {
      if (combined_cols[i] == v) return i;
    }
    return static_cast<size_t>(-1);
  };
  std::vector<size_t> for_cols;
  size_t return_col_in_proj = 0;
  for (size_t i = 0; i < compiled.for_vertices.size(); ++i) {
    VertexId v = compiled.for_vertices[i];
    size_t col = column_of(v);
    if (col == static_cast<size_t>(-1)) {
      return Status::Internal("for-variable vertex missing from result");
    }
    if (v == compiled.return_vertex) return_col_in_proj = i;
    for_cols.push_back(col);
  }
  // A lazy single-component run already gathered exactly the
  // for-variable columns in declaration order — skip the copy.
  bool identity_projection = for_cols.size() == combined.NumCols();
  for (size_t i = 0; identity_projection && i < for_cols.size(); ++i) {
    identity_projection = for_cols[i] == i;
  }
  ResultTable tail = identity_projection ? std::move(combined)
                                         : combined.Project(for_cols);
  tail = tail.DistinctRows();
  std::vector<size_t> sort_keys(for_cols.size());
  for (size_t i = 0; i < sort_keys.size(); ++i) sort_keys[i] = i;
  tail = tail.SortRows(sort_keys);
  if (tail_span.armed()) {
    tail_span.AttrNum("rows", static_cast<double>(tail.NumRows()));
  }
  return tail.Col(return_col_in_proj);
}

Result<ExplainInfo> ExplainXQuery(
    CorpusSnapshot snapshot, const CompiledQuery& compiled,
    const RoxOptions& rox_options,
    const std::vector<double>* warm_edge_weights) {
  if (warm_edge_weights != nullptr &&
      warm_edge_weights->size() != compiled.graph.EdgeCount()) {
    warm_edge_weights = nullptr;  // stale cache entry: ignore
  }
  ExplainInfo info;
  info.edge_weights.assign(compiled.graph.EdgeCount(), -1.0);
  info.vertex_cards.assign(compiled.graph.VertexCount(), -1.0);
  std::vector<GraphComponent> comps =
      SplitConnectedComponents(compiled.graph);
  for (const GraphComponent& comp : comps) {
    // Same component filter as RunXQuery: only components containing a
    // for-variable contribute.
    bool needed = false;
    for (VertexId orig : comp.orig_vertex) {
      for (VertexId fv : compiled.for_vertices) needed |= fv == orig;
    }
    if (!needed) continue;
    if (comp.graph.EdgeCount() == 0) {
      return Status::Unimplemented(
          "for-variable bound to a bare document root is not supported");
    }
    RoxOptions comp_options = rox_options;
    std::vector<double> comp_warm;
    if (warm_edge_weights != nullptr) {
      comp_warm.reserve(comp.orig_edge.size());
      for (EdgeId orig : comp.orig_edge) {
        comp_warm.push_back((*warm_edge_weights)[orig]);
      }
      comp_options.warm_edge_weights = &comp_warm;
    }
    RoxOptimizer rox(snapshot, comp.graph, comp_options);
    ROX_RETURN_IF_ERROR(rox.Prepare());
    const RoxState& st = rox.state();
    for (EdgeId e = 0; e < comp.graph.EdgeCount(); ++e) {
      info.edge_weights[comp.orig_edge[e]] = st.estate(e).weight;
    }
    for (VertexId v = 0; v < comp.graph.VertexCount(); ++v) {
      info.vertex_cards[comp.orig_vertex[v]] = st.vstate(v).card;
    }
    EdgeId first = st.MinWeightEdge();
    info.predicted_first.push_back(
        first == kInvalidEdgeId ? kInvalidEdgeId : comp.orig_edge[first]);
    info.warm_started_weights += st.stats().warm_started_weights;
  }
  if (info.predicted_first.empty()) {
    return Status::FailedPrecondition("query produced no joined component");
  }
  return info;
}

}  // namespace rox::xq
