// Recursive-descent parser for the XQuery subset (see ast.h).

#ifndef ROX_XQ_PARSER_H_
#define ROX_XQ_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "xq/ast.h"

namespace rox::xq {

// Parses `text` into an AstQuery. Errors carry a line/column prefix.
Result<AstQuery> ParseXQuery(std::string_view text);

}  // namespace rox::xq

#endif  // ROX_XQ_PARSER_H_
