// Abstract syntax for the XQuery subset ROX optimizes.
//
// The frontend accepts the FLWOR shape used throughout the paper:
//
//   let $r := doc("auction.xml")
//   for $a in $r//open_auction[./reserve]/bidder//personref,
//       $b in doc("dblp.xml")//person[.//education]
//   where $a/@person = $b/@id and ...
//   return $a
//
// i.e. let-bindings of documents, for-bindings of path expressions with
// structural and value predicates, a conjunctive where clause of value
// equality comparisons, and a variable return. This is exactly the
// fragment whose join graphs Pathfinder's Join Graph Isolation [18]
// would hand to ROX; anything beyond it (arithmetic, FLWOR nesting,
// node construction) is out of scope for the optimizer experiments.

#ifndef ROX_XQ_AST_H_
#define ROX_XQ_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "xml/node.h"

namespace rox::xq {

// One location step: axis plus node test.
struct AstStep {
  enum class Test : uint8_t { kElement, kText, kAttribute, kAnyElement };
  Axis axis = Axis::kChild;
  Test test = Test::kElement;
  std::string name;  // element/attribute name (empty for text()/*)
};

// Comparison operator of a value predicate.
enum class CmpOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };
const char* CmpOpName(CmpOp op);

// A predicate inside [...]: a relative path, optionally compared
// against a literal. Without comparison it is an existence test.
struct AstPredicate {
  std::vector<AstStep> path;  // relative to the predicated node
  std::optional<CmpOp> op;
  std::string literal;   // raw literal text ("145", "dog")
  bool literal_is_number = false;
};

// A path expression: a source (doc() call or variable reference)
// followed by steps, each step optionally predicated.
struct AstPathExpr {
  std::string doc_url;   // non-empty when the source is doc("url")
  std::string variable;  // non-empty when the source is $var
  struct PredicatedStep {
    AstStep step;
    std::vector<AstPredicate> predicates;
  };
  std::vector<PredicatedStep> steps;
};

// let $v := <path>   (typically just doc("..."))
struct AstLet {
  std::string variable;
  AstPathExpr value;
};

// for $v in <path>
struct AstFor {
  std::string variable;
  AstPathExpr domain;
};

// where clause conjunct: <path> = <path>, where both sides start from
// a bound variable.
struct AstComparison {
  AstPathExpr lhs;
  AstPathExpr rhs;
};

// The whole query.
struct AstQuery {
  std::vector<AstLet> lets;
  std::vector<AstFor> fors;
  std::vector<AstComparison> where;  // conjunctive
  std::string return_variable;
};

}  // namespace rox::xq

#endif  // ROX_XQ_AST_H_
