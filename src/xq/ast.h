// Abstract syntax for the XQuery subset ROX optimizes.
//
// The frontend accepts the FLWOR shape used throughout the paper:
//
//   let $r := doc("auction.xml")
//   for $a in $r//open_auction[./reserve and ./current > 40]/bidder,
//       $b in doc("dblp.xml")//person[./age >= 65 or ./age < 10]
//   where $a/@person = $b/@id and $a/increase <= $b/age and ...
//   return $a
//
// i.e. let-bindings of documents, for-bindings of path expressions
// with structural and value predicates (standard-precedence and/or —
// `and` binds tighter; an `or` disjunction must compare one shared
// path against literals), a conjunctive where clause of value comparisons
// between bound-variable paths — all six operators, so non-equality
// comparisons compile to theta-join edges (DESIGN.md §11) — and a
// variable return. This is the fragment whose join graphs Pathfinder's
// Join Graph Isolation [18] would hand to ROX; anything beyond it
// (arithmetic, FLWOR nesting, node construction) is out of scope for
// the optimizer experiments.

#ifndef ROX_XQ_AST_H_
#define ROX_XQ_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "index/value_index.h"  // CmpOp
#include "xml/node.h"

namespace rox::xq {

// One location step: axis plus node test.
struct AstStep {
  enum class Test : uint8_t { kElement, kText, kAttribute, kAnyElement };
  Axis axis = Axis::kChild;
  Test test = Test::kElement;
  std::string name;  // element/attribute name (empty for text()/*)
};

// One predicate conjunct inside [...]: a relative path, optionally
// compared against a literal (all six CmpOps). Without comparison it
// is an existence test. The comparison operator enum is the shared
// rox::CmpOp (index/value_index.h).
struct AstPredicate {
  std::vector<AstStep> path;  // relative to the predicated node
  std::optional<CmpOp> op;
  std::string literal;   // raw literal text ("145", "dog")
  bool literal_is_number = false;
};

// One bracket pair's predicate expression with standard XQuery
// precedence: `or` binds looser than `and`, so `[a and b or c]` is
// `(a AND b) OR c`. Each alternative is one `or` branch — a
// conjunction of predicates. Stacked brackets conjoin groups, so
// and-of-or queries are written `[x = 1 or x = 2][y < 5]`.
struct AstPredicateGroup {
  std::vector<std::vector<AstPredicate>> alternatives;
};

// A path expression: a source (doc() call or variable reference)
// followed by steps, each step optionally predicated.
struct AstPathExpr {
  std::string doc_url;   // non-empty when the source is doc("url")
  std::string variable;  // non-empty when the source is $var
  struct PredicatedStep {
    AstStep step;
    std::vector<AstPredicateGroup> predicate_groups;
  };
  std::vector<PredicatedStep> steps;
};

// let $v := <path>   (typically just doc("..."))
struct AstLet {
  std::string variable;
  AstPathExpr value;
};

// for $v in <path>
struct AstFor {
  std::string variable;
  AstPathExpr domain;
};

// where clause conjunct: <path> op <path>, where both sides start from
// a bound variable. kEq compiles to the paper's equi-join edge; the
// other operators compile to theta edges.
struct AstComparison {
  AstPathExpr lhs;
  AstPathExpr rhs;
  CmpOp op = CmpOp::kEq;
};

// The whole query.
struct AstQuery {
  std::vector<AstLet> lets;
  std::vector<AstFor> fors;
  std::vector<AstComparison> where;  // conjunctive
  std::string return_variable;
};

}  // namespace rox::xq

#endif  // ROX_XQ_AST_H_
