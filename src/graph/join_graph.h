// The Join Graph (Definition 1 of the paper): the order-independent
// representation of all step and join relationships of an XQuery that is
// handed to the ROX run-time optimizer.
//
// Vertices denote node sets of one document: the document root, elements
// with a qualified name, text nodes (optionally with an equality,
// inequality, range or disjunctive predicate on their value), or
// attribute nodes (ditto). Edges are either XPath step joins (with an
// axis, directed for presentation only) or value joins carrying one of
// the six comparison operators (kEq is the paper's equi-join; the
// others are theta edges, DESIGN.md §11).
//
// The graph itself is immutable topology + static annotations; run-time
// state (materialized tables, samples, weights) lives in rox::RoxState.

#ifndef ROX_GRAPH_JOIN_GRAPH_H_
#define ROX_GRAPH_JOIN_GRAPH_H_

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "index/value_index.h"
#include "xml/document.h"
#include "xml/node.h"

namespace rox {

using VertexId = uint32_t;
using EdgeId = uint32_t;
inline constexpr VertexId kInvalidVertexId = 0xffffffffu;
inline constexpr EdgeId kInvalidEdgeId = 0xffffffffu;

// What node set a vertex denotes.
enum class VertexType : uint8_t {
  kRoot,      // the document node of its document
  kElement,   // elements with qualified name `name`
  kText,      // text nodes, optionally restricted by `pred`
  kAttribute  // attribute nodes named `name`, optionally restricted
};

// Optional value restriction on text/attribute vertices. Besides the
// paper's equality and range restrictions, the frontend's disjunctive
// step predicates lower to kAnyOf — a flat OR over kEquals/kNotEquals/
// kRange terms on the same vertex (`[./x = 1 or ./x > 5]`).
struct ValuePredicate {
  enum class Kind : uint8_t { kNone, kEquals, kNotEquals, kRange, kAnyOf };
  Kind kind = Kind::kNone;
  StringId equals = kInvalidStringId;  // for kEquals / kNotEquals
  NumericRange range;                  // for kRange
  std::vector<ValuePredicate> any_of;  // for kAnyOf: non-kAnyOf terms

  static ValuePredicate None() { return {}; }
  static ValuePredicate Equals(StringId v) {
    return {Kind::kEquals, v, NumericRange{}, {}};
  }
  static ValuePredicate NotEquals(StringId v) {
    return {Kind::kNotEquals, v, NumericRange{}, {}};
  }
  static ValuePredicate Range(NumericRange r) {
    return {Kind::kRange, kInvalidStringId, r, {}};
  }
  static ValuePredicate AnyOf(std::vector<ValuePredicate> terms) {
    ValuePredicate p;
    p.kind = Kind::kAnyOf;
    p.any_of = std::move(terms);
    return p;
  }

  // Evaluates the predicate against the *value* of `node` (a text or
  // attribute node of `doc`). kNone matches everything.
  bool Matches(const Document& doc, Pre node) const;
};

// `nodes` restricted to those whose value satisfies `pred`.
std::vector<Pre> FilterByPredicate(const Document& doc,
                                   std::span<const Pre> nodes,
                                   const ValuePredicate& pred);

struct Vertex {
  VertexType type = VertexType::kElement;
  DocId doc = kInvalidDocId;
  StringId name = kInvalidStringId;  // element qname / attribute name
  ValuePredicate pred;
  std::string label;  // human-readable, for traces and DOT export

  // True if phase 1 of Algorithm 1 may initialize this vertex from an
  // index lookup: elements with a qname, attributes with a name, text
  // nodes with an equality predicate (lines 1-2 / 9-12 of Algorithm 1;
  // we additionally allow text-range vertices, which our ordered value
  // index also supports — the paper's index offers the same).
  bool IndexSelectable() const;
};

enum class EdgeType : uint8_t { kStep, kValueJoin };

struct Edge {
  EdgeType type = EdgeType::kStep;
  VertexId v1 = kInvalidVertexId;  // step: context side (the "circle")
  VertexId v2 = kInvalidVertexId;  // step: result side
  Axis axis = Axis::kChild;        // step only: v2 = axis(v1)
  // Value-join comparison: value(v1) cmp value(v2). kEq is the paper's
  // equi-join; the range/inequality operators are theta edges.
  CmpOp cmp = CmpOp::kEq;
  // Equivalence edges added by ROX (the dotted edges of Figure 4) are
  // marked so ablation runs can ignore them.
  bool derived_equivalence = false;

  VertexId Other(VertexId v) const { return v == v1 ? v2 : v1; }
  bool Touches(VertexId v) const { return v1 == v || v2 == v; }
  bool IsEquiJoin() const {
    return type == EdgeType::kValueJoin && cmp == CmpOp::kEq;
  }
  // The comparison as seen probing from `from` toward the other side.
  CmpOp CmpFrom(VertexId from) const {
    return from == v1 ? cmp : SwapCmp(cmp);
  }
};

class JoinGraph {
 public:
  // --- construction -------------------------------------------------------

  VertexId AddVertex(Vertex v);
  VertexId AddRoot(DocId doc, std::string label = "root");
  VertexId AddElement(DocId doc, StringId qname, std::string label = "");
  VertexId AddText(DocId doc, ValuePredicate pred = ValuePredicate::None(),
                   std::string label = "text()");
  VertexId AddAttribute(DocId doc, StringId name,
                        ValuePredicate pred = ValuePredicate::None(),
                        std::string label = "");

  // Adds a step edge: v2 = axis(v1). Vertices must be on the same doc.
  EdgeId AddStep(VertexId v1, Axis axis, VertexId v2);

  // Adds a value-join edge between two (typically text/attribute)
  // vertices, possibly on different documents, with value(v1) cmp
  // value(v2) semantics. AddEquiJoin is the kEq convenience.
  EdgeId AddValueJoin(VertexId v1, VertexId v2, CmpOp cmp);
  EdgeId AddEquiJoin(VertexId v1, VertexId v2);

  // Adds the transitive closure of equi-join equivalences: if a=b and
  // b=c are join edges, a=c is added too (Figure 4's dotted edges),
  // giving ROX the freedom to pick any join order over the class.
  // Returns the number of edges added.
  int AddEquivalenceClosure();

  // Removes `descendant` step edges out of root vertices whose far
  // vertex is reachable through other edges (§3.2: "descendant edges
  // from the root are ignored since these are not necessary to execute
  // to produce the correct result"). Isolated roots are kept but have no
  // edges; Validate() tolerates them. Returns number of edges removed.
  int PruneRedundantRootEdges();

  // --- inspection ----------------------------------------------------------

  size_t VertexCount() const { return vertices_.size(); }
  size_t EdgeCount() const { return edges_.size(); }
  const Vertex& vertex(VertexId v) const { return vertices_[v]; }
  const Edge& edge(EdgeId e) const { return edges_[e]; }

  // Ids of all edges incident to `v`.
  const std::vector<EdgeId>& IncidentEdges(VertexId v) const {
    return incident_[v];
  }

  // Degree of `v` counting only edges not in `executed` (Algorithm 2's
  // edges(v)).
  int UnexecutedDegree(VertexId v, const std::vector<bool>& executed) const;

  // Checks structural sanity: step endpoints share a document, equi-join
  // endpoints carry values, every non-root vertex is reachable.
  Status Validate() const;

  // True if all vertices with at least one edge form one connected
  // component.
  bool IsConnected() const;

  // Graphviz DOT rendering (steps solid, equi-joins labeled "=",
  // derived equivalences dashed).
  std::string ToDot() const;

  // Human-readable edge description, e.g. "open_auction //descendant//
  // bidder" or "text()@VLDB = text()@ICDE".
  std::string EdgeLabel(EdgeId e) const;

 private:
  std::vector<Vertex> vertices_;
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> incident_;
};

// One connected component of a join graph, with the mapping back to the
// original vertex/edge ids. The paper's plans can contain several
// isolated Join Graphs separated by blocking operators (§2.1); ROX
// optimizes each separately — SplitConnectedComponents provides that
// decomposition (isolated vertices form single-vertex components with
// no edges).
struct GraphComponent {
  JoinGraph graph;
  std::vector<VertexId> orig_vertex;  // new vertex id -> original id
  std::vector<EdgeId> orig_edge;      // new edge id -> original id
};

std::vector<GraphComponent> SplitConnectedComponents(const JoinGraph& g);

}  // namespace rox

#endif  // ROX_GRAPH_JOIN_GRAPH_H_
