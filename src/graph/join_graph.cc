#include "graph/join_graph.h"

#include <algorithm>
#include <queue>

#include "common/check.h"
#include "common/str_util.h"

namespace rox {

bool ValuePredicate::Matches(const Document& doc, Pre node) const {
  switch (kind) {
    case Kind::kNone:
      return true;
    case Kind::kEquals:
      return doc.Value(node) == equals;
    case Kind::kNotEquals:
      return doc.Value(node) != equals;
    case Kind::kRange: {
      auto num = doc.pool().NumericValue(doc.Value(node));
      return num.has_value() && range.Contains(*num);
    }
    case Kind::kAnyOf:
      for (const ValuePredicate& term : any_of) {
        if (term.Matches(doc, node)) return true;
      }
      return false;
  }
  return true;
}

std::vector<Pre> FilterByPredicate(const Document& doc,
                                   std::span<const Pre> nodes,
                                   const ValuePredicate& pred) {
  std::vector<Pre> out;
  for (Pre p : nodes) {
    if (pred.Matches(doc, p)) out.push_back(p);
  }
  return out;
}

bool Vertex::IndexSelectable() const {
  switch (type) {
    case VertexType::kRoot:
      return true;  // the singleton {document node}
    case VertexType::kElement:
      return name != kInvalidStringId;
    case VertexType::kAttribute:
      return name != kInvalidStringId;
    case VertexType::kText:
      // Every restricted text vertex is selectable: equality and range
      // through the hash/ordered projections, kNotEquals/kAnyOf by
      // filtering the index's document-ordered all-text list.
      return pred.kind != ValuePredicate::Kind::kNone;
  }
  return false;
}

VertexId JoinGraph::AddVertex(Vertex v) {
  VertexId id = static_cast<VertexId>(vertices_.size());
  vertices_.push_back(std::move(v));
  incident_.emplace_back();
  return id;
}

VertexId JoinGraph::AddRoot(DocId doc, std::string label) {
  Vertex v;
  v.type = VertexType::kRoot;
  v.doc = doc;
  v.label = std::move(label);
  return AddVertex(std::move(v));
}

VertexId JoinGraph::AddElement(DocId doc, StringId qname, std::string label) {
  Vertex v;
  v.type = VertexType::kElement;
  v.doc = doc;
  v.name = qname;
  v.label = std::move(label);
  return AddVertex(std::move(v));
}

VertexId JoinGraph::AddText(DocId doc, ValuePredicate pred,
                            std::string label) {
  Vertex v;
  v.type = VertexType::kText;
  v.doc = doc;
  v.pred = pred;
  v.label = std::move(label);
  return AddVertex(std::move(v));
}

VertexId JoinGraph::AddAttribute(DocId doc, StringId name,
                                 ValuePredicate pred, std::string label) {
  Vertex v;
  v.type = VertexType::kAttribute;
  v.doc = doc;
  v.name = name;
  v.pred = pred;
  v.label = std::move(label);
  return AddVertex(std::move(v));
}

EdgeId JoinGraph::AddStep(VertexId v1, Axis axis, VertexId v2) {
  ROX_CHECK(v1 < vertices_.size() && v2 < vertices_.size());
  ROX_CHECK(vertices_[v1].doc == vertices_[v2].doc);
  Edge e;
  e.type = EdgeType::kStep;
  e.v1 = v1;
  e.v2 = v2;
  e.axis = axis;
  EdgeId id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(e);
  incident_[v1].push_back(id);
  incident_[v2].push_back(id);
  return id;
}

EdgeId JoinGraph::AddValueJoin(VertexId v1, VertexId v2, CmpOp cmp) {
  ROX_CHECK(v1 < vertices_.size() && v2 < vertices_.size());
  Edge e;
  e.type = EdgeType::kValueJoin;
  e.v1 = v1;
  e.v2 = v2;
  e.cmp = cmp;
  EdgeId id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(e);
  incident_[v1].push_back(id);
  incident_[v2].push_back(id);
  return id;
}

EdgeId JoinGraph::AddEquiJoin(VertexId v1, VertexId v2) {
  return AddValueJoin(v1, v2, CmpOp::kEq);
}

int JoinGraph::AddEquivalenceClosure() {
  // Union-find over vertices linked by equi-join edges. Theta edges
  // carry no equivalence: a<b and b<c implies a<c, but the closure edge
  // would duplicate work, not open join orders, so only kEq closes.
  std::vector<VertexId> parent(vertices_.size());
  for (VertexId v = 0; v < parent.size(); ++v) parent[v] = v;
  auto find = [&](VertexId v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  };
  for (const Edge& e : edges_) {
    if (!e.IsEquiJoin()) continue;
    VertexId a = find(e.v1), b = find(e.v2);
    if (a != b) parent[a] = b;
  }
  // Existing equi-join pairs.
  auto key = [](VertexId a, VertexId b) {
    return (static_cast<uint64_t>(std::min(a, b)) << 32) | std::max(a, b);
  };
  std::vector<uint64_t> have;
  for (const Edge& e : edges_) {
    if (e.IsEquiJoin()) have.push_back(key(e.v1, e.v2));
  }
  std::sort(have.begin(), have.end());
  // Group vertices by equivalence class and add missing pairs.
  int added = 0;
  for (VertexId a = 0; a < vertices_.size(); ++a) {
    for (VertexId b = a + 1; b < vertices_.size(); ++b) {
      // a != b in the same class implies the class was formed by at
      // least one equi-join edge.
      if (find(a) != find(b)) continue;
      uint64_t k = key(a, b);
      if (std::binary_search(have.begin(), have.end(), k)) continue;
      Edge e;
      e.type = EdgeType::kValueJoin;
      e.v1 = a;
      e.v2 = b;
      e.derived_equivalence = true;
      EdgeId id = static_cast<EdgeId>(edges_.size());
      edges_.push_back(e);
      incident_[a].push_back(id);
      incident_[b].push_back(id);
      ++added;
    }
  }
  return added;
}

int JoinGraph::PruneRedundantRootEdges() {
  std::vector<bool> remove(edges_.size(), false);
  int removed = 0;
  for (EdgeId i = 0; i < edges_.size(); ++i) {
    const Edge& e = edges_[i];
    if (e.type != EdgeType::kStep) continue;
    if (e.axis != Axis::kDescendant && e.axis != Axis::kDescendantOrSelf) {
      continue;
    }
    VertexId far = kInvalidVertexId;
    if (vertices_[e.v1].type == VertexType::kRoot) {
      far = e.v2;
    } else if (vertices_[e.v2].type == VertexType::kRoot) {
      far = e.v1;
    } else {
      continue;
    }
    // The far vertex must stay connected through some other edge, and
    // must be index-selectable so its node set is complete without the
    // root step.
    if (!vertices_[far].IndexSelectable()) continue;
    if (incident_[far].size() <= 1) continue;
    remove[i] = true;
    ++removed;
  }
  if (removed == 0) return 0;
  // Rebuild edge list and incidence.
  std::vector<Edge> kept;
  kept.reserve(edges_.size() - removed);
  for (EdgeId i = 0; i < edges_.size(); ++i) {
    if (!remove[i]) kept.push_back(edges_[i]);
  }
  edges_ = std::move(kept);
  for (auto& inc : incident_) inc.clear();
  for (EdgeId i = 0; i < edges_.size(); ++i) {
    incident_[edges_[i].v1].push_back(i);
    incident_[edges_[i].v2].push_back(i);
  }
  return removed;
}

int JoinGraph::UnexecutedDegree(VertexId v,
                                const std::vector<bool>& executed) const {
  int d = 0;
  for (EdgeId e : incident_[v]) {
    if (!executed[e]) ++d;
  }
  return d;
}

Status JoinGraph::Validate() const {
  for (EdgeId i = 0; i < edges_.size(); ++i) {
    const Edge& e = edges_[i];
    if (e.v1 >= vertices_.size() || e.v2 >= vertices_.size()) {
      return Status::Internal(StrCat("edge ", i, " has bad endpoints"));
    }
    if (e.v1 == e.v2) {
      return Status::InvalidArgument(StrCat("edge ", i, " is a self-loop"));
    }
    if (e.type == EdgeType::kStep &&
        vertices_[e.v1].doc != vertices_[e.v2].doc) {
      return Status::InvalidArgument(
          StrCat("step edge ", i, " spans documents"));
    }
    if (e.type == EdgeType::kValueJoin) {
      for (VertexId v : {e.v1, e.v2}) {
        if (vertices_[v].type == VertexType::kRoot) {
          return Status::InvalidArgument(
              StrCat("value-join edge ", i, " touches a root vertex"));
        }
      }
    }
  }
  return Status::Ok();
}

bool JoinGraph::IsConnected() const {
  // BFS over vertices that have at least one edge.
  VertexId start = kInvalidVertexId;
  size_t with_edges = 0;
  for (VertexId v = 0; v < vertices_.size(); ++v) {
    if (!incident_[v].empty()) {
      ++with_edges;
      if (start == kInvalidVertexId) start = v;
    }
  }
  if (with_edges == 0) return true;
  std::vector<bool> seen(vertices_.size(), false);
  std::queue<VertexId> q;
  q.push(start);
  seen[start] = true;
  size_t visited = 0;
  while (!q.empty()) {
    VertexId v = q.front();
    q.pop();
    ++visited;
    for (EdgeId e : incident_[v]) {
      VertexId o = edges_[e].Other(v);
      if (!seen[o]) {
        seen[o] = true;
        q.push(o);
      }
    }
  }
  return visited == with_edges;
}

std::string JoinGraph::EdgeLabel(EdgeId e) const {
  const Edge& ed = edges_[e];
  const std::string& l1 = vertices_[ed.v1].label;
  const std::string& l2 = vertices_[ed.v2].label;
  if (ed.type == EdgeType::kStep) {
    return StrCat(l1, " -", AxisName(ed.axis), "-> ", l2);
  }
  return StrCat(l1, " ", CmpOpName(ed.cmp), " ", l2);
}

std::vector<GraphComponent> SplitConnectedComponents(const JoinGraph& g) {
  // Union-find over vertices via edges.
  std::vector<VertexId> parent(g.VertexCount());
  for (VertexId v = 0; v < parent.size(); ++v) parent[v] = v;
  auto find = [&](VertexId v) {
    while (parent[v] != v) v = parent[v] = parent[parent[v]];
    return v;
  };
  for (EdgeId e = 0; e < g.EdgeCount(); ++e) {
    VertexId a = find(g.edge(e).v1), b = find(g.edge(e).v2);
    if (a != b) parent[a] = b;
  }
  // Assign dense component ids.
  std::vector<int> comp_of(g.VertexCount(), -1);
  int n_comps = 0;
  for (VertexId v = 0; v < g.VertexCount(); ++v) {
    VertexId r = find(v);
    if (comp_of[r] < 0) comp_of[r] = n_comps++;
    comp_of[v] = comp_of[r];
  }
  std::vector<GraphComponent> out(n_comps);
  // Rebuild vertices.
  std::vector<VertexId> new_id(g.VertexCount());
  for (VertexId v = 0; v < g.VertexCount(); ++v) {
    GraphComponent& c = out[comp_of[v]];
    new_id[v] = c.graph.AddVertex(g.vertex(v));
    c.orig_vertex.push_back(v);
  }
  // Rebuild edges.
  for (EdgeId e = 0; e < g.EdgeCount(); ++e) {
    const Edge& ed = g.edge(e);
    GraphComponent& c = out[comp_of[ed.v1]];
    EdgeId id;
    if (ed.type == EdgeType::kStep) {
      id = c.graph.AddStep(new_id[ed.v1], ed.axis, new_id[ed.v2]);
    } else {
      id = c.graph.AddValueJoin(new_id[ed.v1], new_id[ed.v2], ed.cmp);
    }
    (void)id;
    c.orig_edge.push_back(e);
  }
  return out;
}

std::string JoinGraph::ToDot() const {
  std::string out = "graph JoinGraph {\n  node [shape=box];\n";
  for (VertexId v = 0; v < vertices_.size(); ++v) {
    const Vertex& vx = vertices_[v];
    out += StrCat("  v", v, " [label=\"", vx.label.empty() ? "?" : vx.label,
                  "\\ndoc=", vx.doc, "\"];\n");
  }
  for (const Edge& e : edges_) {
    if (e.type == EdgeType::kStep) {
      out += StrCat("  v", e.v1, " -- v", e.v2, " [label=\"", AxisName(e.axis),
                    "\"];\n");
    } else {
      out += StrCat("  v", e.v1, " -- v", e.v2, " [label=\"",
                    CmpOpName(e.cmp), "\"",
                    e.derived_equivalence ? ", style=dashed" : "", "];\n");
    }
  }
  out += "}\n";
  return out;
}

}  // namespace rox
