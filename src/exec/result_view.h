// Late-materialization views over node columns (DESIGN.md §8).
//
// ROX materializes every intermediate fully (§1.1); the seed engine
// realized that with ResultTable, copying every live column at every
// edge execution and assembly join. A ResultView is the deferred form:
// each logical column is a (base column, selection vector) pair — the
// value of row r in column c is base_c[sel_c[r]] — so combining
// results appends/composes selection vectors instead of copying node
// data, and full row gather happens once, at the plan tail.
//
// Representation invariants:
//  * At most ONE level of indirection: composing a view with a new row
//    list materializes the composed selection vector immediately, so
//    At() never chases chains.
//  * Columns that shared a selection vector keep sharing after
//    composition — the per-join cost is one pass per *distinct*
//    selection vector (usually one), not one per column.
//  * A direct column (sel == nullptr) composed with a row list aliases
//    the row list itself as its selection vector, costing nothing.
//    Row lists passed to the composing operations must therefore be
//    arena-stable (allocated from or adopted into the ColumnArena).
//  * A column may be dead: the assembly marks columns no later
//    operator will read, and composition skips them — they never cost
//    another write. Reading or gathering a dead column is a
//    programming error.
//
// All base/selection storage is borrowed: from the per-query
// ColumnArena, from an EdgeState's materialized pair result, or from a
// vertex table. The owner must outlive the view; within one ROX run
// the RoxState (which owns the arena) guarantees that.

#ifndef ROX_EXEC_RESULT_VIEW_H_
#define ROX_EXEC_RESULT_VIEW_H_

#include <cstdint>
#include <span>
#include <vector>

#include "exec/column_arena.h"
#include "exec/join_result.h"
#include "exec/result_table.h"
#include "xml/node.h"

namespace rox {

// Materialization counters (RoxStats::gather; the \stats surface).
struct GatherStats {
  uint64_t gather_count = 0;    // column materializations performed
  uint64_t bytes_gathered = 0;  // bytes written by those gathers

  void Merge(const GatherStats& other) {
    gather_count += other.gather_count;
    bytes_gathered += other.bytes_gathered;
  }
};

class ResultView {
 public:
  struct Column {
    const Pre* base = nullptr;
    const uint32_t* sel = nullptr;  // nullptr = direct (row r -> base[r])
    bool dead = false;              // elided: no later operator reads it
  };

  ResultView() = default;
  ResultView(size_t num_cols, uint64_t num_rows)
      : cols_(num_cols), rows_(num_rows) {}

  // A view aliasing a materialized table's columns (all direct).
  // `t` must outlive the view.
  static ResultView FromTable(const ResultTable& t);

  size_t NumCols() const { return cols_.size(); }
  uint64_t NumRows() const { return rows_; }
  void set_num_rows(uint64_t n) { rows_ = n; }

  const Column& col(size_t c) const { return cols_[c]; }
  Column& col(size_t c) { return cols_[c]; }
  void AddColumn(Column c) { cols_.push_back(c); }
  bool Dead(size_t c) const { return cols_[c].dead; }

  Pre At(size_t c, uint64_t r) const {
    const Column& col = cols_[c];
    return col.sel != nullptr ? col.base[col.sel[r]] : col.base[r];
  }

  // Materializes column `c` contiguously. A direct column returns its
  // base without copying (and without counting a gather).
  std::span<const Pre> GatherColumn(size_t c, ColumnArena& arena,
                                    GatherStats* stats) const;

  // Ditto into a caller-owned vector (always writes; reuses capacity).
  void GatherColumnInto(size_t c, std::vector<Pre>& out,
                        GatherStats* stats) const;

  // Full materialization of all (live) columns.
  ResultTable Gather(GatherStats* stats) const;

  // Sorted duplicate-free nodes of column `c` — byte-identical to
  // ResultTable::DistinctColumn on the gathered table.
  std::vector<Pre> DistinctColumn(size_t c) const;

 private:
  std::vector<Column> cols_;
  uint64_t rows_ = 0;
};

// Re-rows `v` through `rows` (indices into v's rows; duplicates
// allowed): output row i holds v's row rows[i]. Direct columns alias
// `rows` as their selection vector — `rows` MUST be arena-stable.
// Indexed columns compose once per distinct selection vector; columns
// sharing a selection vector keep sharing. `live`, when non-null,
// marks the columns worth keeping; the rest come out dead.
ResultView ComposeRows(const ResultView& v, std::span<const uint32_t> rows,
                       ColumnArena& arena,
                       const std::vector<bool>* live = nullptr);

// View analogue of ResultTable::SelectRows: copies `rows` into the
// arena first, so any caller-owned row list works.
ResultView SelectRowsView(const ResultView& v,
                          std::span<const uint32_t> rows, ColumnArena& arena,
                          const std::vector<bool>* live = nullptr);

// View analogue of ExtendTableWithPairs: outer's columns re-rowed
// through pairs.left_rows plus one new direct column holding
// pairs.right_nodes. Consumes the pair arrays (zero-copy adoption).
ResultView ExtendViewWithPairs(const ResultView& outer, JoinPairs&& pairs,
                               ColumnArena& arena);

// View analogue of JoinTablesWithPairs: combines `outer` and `inner`
// through join `pairs` (left_rows index outer rows, right_nodes match
// values of inner column `inner_col`), outer's columns first. The
// emitted (outer row, inner row) expansion matches the eager operator
// exactly, so gathered output is byte-identical. `live_outer` /
// `live_inner`, when non-null, mark the columns worth keeping (the
// assembly's dead-column elision); `inner_col` itself is always read.
ResultView JoinViewsWithPairs(const ResultView& outer, const JoinPairs& pairs,
                              const ResultView& inner, size_t inner_col,
                              ColumnArena& arena,
                              const std::vector<bool>* live_outer = nullptr,
                              const std::vector<bool>* live_inner = nullptr);

}  // namespace rox

#endif  // ROX_EXEC_RESULT_VIEW_H_
