// Shared machinery of the vectorized (batched) kernel paths
// (DESIGN.md §14).
//
// The vectorized joins emit whole match spans per outer row — index
// runs, hash-table payload groups, range-join prefixes/suffixes —
// instead of sinking one pair at a time. BatchEmitter centralizes the
// two protocols every emission must honor regardless of granularity:
// the limit+1 sentinel cut-off (§2.3) and the amortized output-growth
// cancellation poll (DESIGN.md §13). Both are enforced so that, for
// any limit and an un-tripped token, a batched kernel's output is
// byte-identical to its row-at-a-time fallback.

#ifndef ROX_EXEC_KERNEL_BATCH_H_
#define ROX_EXEC_KERNEL_BATCH_H_

#include <cstddef>
#include <iterator>
#include <span>

#include "engine/governor.h"
#include "exec/join_result.h"
#include "index/value_index.h"
#include "xml/node.h"

namespace rox {

// Batch width of the vectorized kernel paths: small enough that the
// per-batch value arrays (ids + doubles + row bookkeeping) stay in L1,
// large enough to amortize the per-batch governance poll.
inline constexpr size_t kKernelBatchRows = 1024;

// Below this many entries Append's bulk vector::insert (libstdc++
// routes it through the general mid-insert path, not push_back's
// append fast path) costs more than a plain push loop, so short match
// spans — probe workloads with near-unique keys emit 1-2 pairs per
// row — use the push loop. Above it, the contiguous-span insert is a
// memcpy and wins.
inline constexpr size_t kBulkAppendMinRows = 16;

// Selection-vector-aware outer input: row i is base[sel[i]], or
// base[i] when `sel` is null (a plain contiguous span). Lets a lazy
// ResultView column feed a probe kernel directly, without gathering
// into a temporary first (DESIGN.md §14); both referenced arrays are
// borrowed and must outlive the call.
struct PreColumn {
  const Pre* base = nullptr;
  const uint32_t* sel = nullptr;
  size_t n = 0;

  size_t size() const { return n; }
  bool empty() const { return n == 0; }
  Pre operator[](size_t i) const {
    return sel != nullptr ? base[sel[i]] : base[i];
  }

  // The rows [off, off+len) as a PreColumn (positional, like
  // span::subspan — the chunked fan-outs cut lanes with this).
  PreColumn Sub(size_t off, size_t len) const {
    return sel != nullptr ? PreColumn{base, sel + off, len}
                          : PreColumn{base + off, nullptr, len};
  }

  static PreColumn FromSpan(std::span<const Pre> s) {
    return {s.data(), nullptr, s.size()};
  }
};

// Emission state of one vectorized kernel run over a reused JoinPairs.
class BatchEmitter {
 public:
  enum class Stop {
    kNone,
    kLimit,   // sentinel produced: finish via StampTruncationStop
    kCancel,  // governance trip: ditto (partial row discarded there)
  };

  BatchEmitter(JoinPairs& out, uint64_t limit,
               const CancellationToken* cancel)
      : out_(out), limit_(limit), cancel_(cancel) {}

  // Bulk-appends `nodes` as the matches of outer row `row`, stopping
  // at the sentinel: on a kLimit stop exactly limit+1 pairs are
  // present and the caller finishes through StampTruncationStop.
  Stop Append(uint32_t row, std::span<const Pre> nodes) {
    size_t take = Take(nodes.size());
    if (take < kBulkAppendMinRows) {
      for (size_t k = 0; k < take; ++k) {
        out_.left_rows.push_back(row);
        out_.right_nodes.push_back(nodes[k]);
      }
    } else {
      out_.left_rows.insert(out_.left_rows.end(), take, row);
      out_.right_nodes.insert(out_.right_nodes.end(), nodes.begin(),
                              nodes.begin() + take);
    }
    if (limit_ != kNoLimit && out_.right_nodes.size() > limit_) {
      return Stop::kLimit;
    }
    return PollIfDue();
  }

  // Ditto over the node components of a sorted numeric run slice
  // [begin, end). The strided 16-byte source can't memcpy, so this is
  // always the push loop — still batch-fast, because the limit and
  // governance checks run once per call, not once per pair.
  Stop AppendRun(uint32_t row, std::span<const ValueIndex::NumEntry> run,
                 size_t begin, size_t end) {
    size_t take = Take(end - begin);
    const ValueIndex::NumEntry* src = run.data() + begin;
    for (size_t k = 0; k < take; ++k) {
      out_.left_rows.push_back(row);
      out_.right_nodes.push_back(src[k].pre);
    }
    if (limit_ != kNoLimit && out_.right_nodes.size() > limit_) {
      return Stop::kLimit;
    }
    return PollIfDue();
  }

  // Appends a single pair (the filtered per-entry emission loops).
  Stop Push(uint32_t row, Pre s) {
    out_.left_rows.push_back(row);
    out_.right_nodes.push_back(s);
    if (limit_ != kNoLimit && out_.right_nodes.size() > limit_) {
      return Stop::kLimit;
    }
    if (out_.right_nodes.size() < next_poll_) return Stop::kNone;
    return PollIfDue();
  }

 private:
  // Entries that still fit under the sentinel capacity limit+1.
  size_t Take(size_t want) const {
    if (limit_ == kNoLimit) return want;
    size_t room = static_cast<size_t>(limit_) + 1 - out_.right_nodes.size();
    return want < room ? want : room;
  }

  // Amortized governance poll on output growth: once per
  // kCancelCheckRows produced pairs, crossing-based so bulk appends of
  // any size poll at the same cadence as the row-at-a-time sinks. The
  // first poll waits a full interval (DESIGN.md §13).
  Stop PollIfDue() {
    if (out_.right_nodes.size() < next_poll_) return Stop::kNone;
    next_poll_ =
        (out_.right_nodes.size() / kCancelCheckRows + 1) * kCancelCheckRows;
    return StopRequested(cancel_) ? Stop::kCancel : Stop::kNone;
  }

  JoinPairs& out_;
  uint64_t limit_;
  const CancellationToken* cancel_;
  uint64_t next_poll_ = kCancelCheckRows;
};

}  // namespace rox

#endif  // ROX_EXEC_KERNEL_BATCH_H_
