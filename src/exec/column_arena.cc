#include "exec/column_arena.h"

#include <algorithm>

namespace rox {

std::span<uint32_t> ColumnArena::Alloc(size_t n) {
  if (n == 0) return {};
  if (blocks_.empty() || block_words_ - used_ < n) {
    size_t words = std::max({kMinBlockWords, block_words_ * 2, n});
    blocks_.push_back(std::make_unique<uint32_t[]>(words));
    block_words_ = words;
    used_ = 0;
    bytes_ += words * sizeof(uint32_t);
    if (budget_ != nullptr) budget_->Charge(words * sizeof(uint32_t));
  }
  uint32_t* out = blocks_.back().get() + used_;
  used_ += n;
  return {out, n};
}

std::span<const uint32_t> ColumnArena::Adopt(std::vector<uint32_t>&& v) {
  adopted_.push_back(std::move(v));
  uint64_t bytes = adopted_.back().capacity() * sizeof(uint32_t);
  bytes_ += bytes;
  if (budget_ != nullptr) budget_->Charge(bytes);
  return adopted_.back();
}

}  // namespace rox
