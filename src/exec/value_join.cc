#include "exec/value_join.h"

#include <algorithm>
#include <unordered_map>

namespace rox {

StringId NodeValue(const Document& doc, Pre p) {
  switch (doc.Kind(p)) {
    case NodeKind::kText:
    case NodeKind::kAttr:
    case NodeKind::kComment:
    case NodeKind::kPi:
      return doc.Value(p);
    case NodeKind::kElem:
      return doc.SingleTextChildValue(p);
    case NodeKind::kDoc:
      return kInvalidStringId;
  }
  return kInvalidStringId;
}

namespace {

// Emits matching inner nodes for one probe value through the index.
template <typename Sink>
bool ProbeIndex(const Document& inner_doc, const ValueIndex& index,
                const ValueProbeSpec& spec, StringId value, Sink&& sink) {
  if (value == kInvalidStringId) return true;
  if (spec.kind == NodeKind::kText) {
    for (Pre s : index.TextLookup(value)) {
      if (!sink(s)) return false;
    }
    return true;
  }
  for (Pre s : index.AttrLookup(value)) {
    if (spec.attr_name != kInvalidStringId &&
        inner_doc.Name(s) != spec.attr_name) {
      continue;
    }
    if (spec.owner_elem != kInvalidStringId &&
        inner_doc.Name(inner_doc.Parent(s)) != spec.owner_elem) {
      continue;
    }
    if (!sink(s)) return false;
  }
  return true;
}

}  // namespace

void ValueIndexJoinPairsInto(const Document& outer_doc,
                             std::span<const Pre> outer,
                             const Document& inner_doc,
                             const ValueIndex& inner_index,
                             const ValueProbeSpec& spec, uint64_t limit,
                             JoinPairs& out) {
  // Same limit+1 sentinel protocol as StructuralJoinPairs.
  out.Clear();
  out.Reserve(limit != kNoLimit ? limit + 1 : outer.size());
  for (size_t i = 0; i < outer.size(); ++i) {
    uint32_t row = static_cast<uint32_t>(i);
    StringId v = NodeValue(outer_doc, outer[i]);
    bool completed =
        ProbeIndex(inner_doc, inner_index, spec, v, [&](Pre s) -> bool {
          out.left_rows.push_back(row);
          out.right_nodes.push_back(s);
          return limit == kNoLimit || out.right_nodes.size() <= limit;
        });
    if (!completed) {
      out.left_rows.pop_back();
      out.right_nodes.pop_back();
      out.truncated = true;
      out.outer_consumed =
          out.left_rows.empty() ? 1 : out.left_rows.back() + 1;
      return;
    }
  }
  out.truncated = false;
  out.outer_consumed = outer.size();
}

JoinPairs ValueIndexJoinPairs(const Document& outer_doc,
                              std::span<const Pre> outer,
                              const Document& inner_doc,
                              const ValueIndex& inner_index,
                              const ValueProbeSpec& spec, uint64_t limit) {
  JoinPairs out;
  ValueIndexJoinPairsInto(outer_doc, outer, inner_doc, inner_index, spec,
                          limit, out);
  return out;
}

ValueHashTable::ValueHashTable(const Document& inner_doc,
                               std::span<const Pre> inner) {
  by_value_.reserve(inner.size());
  for (Pre s : inner) {
    StringId v = NodeValue(inner_doc, s);
    if (v != kInvalidStringId) by_value_[v].push_back(s);
  }
}

void ValueHashTable::ProbeInto(const Document& outer_doc,
                               std::span<const Pre> outer,
                               JoinPairs& out) const {
  out.Clear();
  out.Reserve(outer.size());
  for (size_t i = 0; i < outer.size(); ++i) {
    StringId v = NodeValue(outer_doc, outer[i]);
    if (v == kInvalidStringId) continue;
    auto it = by_value_.find(v);
    if (it == by_value_.end()) continue;
    for (Pre s : it->second) {
      out.left_rows.push_back(static_cast<uint32_t>(i));
      out.right_nodes.push_back(s);
    }
  }
  out.truncated = false;
  out.outer_consumed = outer.size();
}

JoinPairs ValueHashTable::Probe(const Document& outer_doc,
                                std::span<const Pre> outer) const {
  JoinPairs out;
  ProbeInto(outer_doc, outer, out);
  return out;
}

JoinPairs HashValueJoinPairs(const Document& outer_doc,
                             std::span<const Pre> outer,
                             const Document& inner_doc,
                             std::span<const Pre> inner) {
  return ValueHashTable(inner_doc, inner).Probe(outer_doc, outer);
}

std::vector<Pre> SortByValueId(const Document& doc,
                               std::span<const Pre> nodes) {
  std::vector<Pre> out(nodes.begin(), nodes.end());
  std::sort(out.begin(), out.end(), [&](Pre a, Pre b) {
    StringId va = NodeValue(doc, a), vb = NodeValue(doc, b);
    if (va != vb) return va < vb;  // kInvalidStringId (max) sorts last
    return a < b;
  });
  return out;
}

JoinPairs MergeValueJoinPairs(const Document& outer_doc,
                              std::span<const Pre> outer_sorted,
                              const Document& inner_doc,
                              std::span<const Pre> inner_sorted) {
  JoinPairs out;
  out.Reserve(std::max(outer_sorted.size(), inner_sorted.size()));
  size_t i = 0, j = 0;
  while (i < outer_sorted.size() && j < inner_sorted.size()) {
    StringId vo = NodeValue(outer_doc, outer_sorted[i]);
    StringId vi = NodeValue(inner_doc, inner_sorted[j]);
    if (vo == kInvalidStringId) break;  // rest of outer has no value
    if (vi == kInvalidStringId) break;
    if (vo < vi) {
      ++i;
    } else if (vo > vi) {
      ++j;
    } else {
      // Emit the cross product of the two equal-value groups.
      size_t j_end = j;
      while (j_end < inner_sorted.size() &&
             NodeValue(inner_doc, inner_sorted[j_end]) == vi) {
        ++j_end;
      }
      while (i < outer_sorted.size() &&
             NodeValue(outer_doc, outer_sorted[i]) == vo) {
        for (size_t k = j; k < j_end; ++k) {
          out.left_rows.push_back(static_cast<uint32_t>(i));
          out.right_nodes.push_back(inner_sorted[k]);
        }
        ++i;
      }
      j = j_end;
    }
  }
  out.truncated = false;
  out.outer_consumed = outer_sorted.size();
  return out;
}

std::vector<Pre> FilterValueEquals(const Document& doc,
                                   std::span<const Pre> nodes, StringId v) {
  std::vector<Pre> out;
  for (Pre p : nodes) {
    if (NodeValue(doc, p) == v) out.push_back(p);
  }
  return out;
}

std::vector<Pre> FilterNumericRange(const Document& doc,
                                    std::span<const Pre> nodes,
                                    const NumericRange& range) {
  std::vector<Pre> out;
  const StringPool& pool = doc.pool();
  for (Pre p : nodes) {
    StringId v = NodeValue(doc, p);
    if (v == kInvalidStringId) continue;
    auto num = pool.NumericValue(v);
    if (num && range.Contains(*num)) out.push_back(p);
  }
  return out;
}

}  // namespace rox
