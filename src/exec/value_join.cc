#include "exec/value_join.h"

#include <algorithm>
#include <unordered_map>

#include "common/check.h"

namespace rox {

StringId NodeValue(const Document& doc, Pre p) {
  switch (doc.Kind(p)) {
    case NodeKind::kText:
    case NodeKind::kAttr:
    case NodeKind::kComment:
    case NodeKind::kPi:
      return doc.Value(p);
    case NodeKind::kElem:
      return doc.SingleTextChildValue(p);
    case NodeKind::kDoc:
      return kInvalidStringId;
  }
  return kInvalidStringId;
}

namespace {

// The attribute-name / owner-element restriction of a probe spec.
// Text probes have no restriction. Shared by the equality and theta
// index kernels so the spec semantics cannot diverge.
bool MatchesProbeSpec(const Document& inner_doc, const ValueProbeSpec& spec,
                      Pre s) {
  if (spec.kind == NodeKind::kText) return true;
  if (spec.attr_name != kInvalidStringId &&
      inner_doc.Name(s) != spec.attr_name) {
    return false;
  }
  return spec.owner_elem == kInvalidStringId ||
         inner_doc.Name(inner_doc.Parent(s)) == spec.owner_elem;
}

// Emits matching inner nodes for one probe value through the index.
template <typename Sink>
bool ProbeIndex(const Document& inner_doc, const ValueIndex& index,
                const ValueProbeSpec& spec, StringId value, Sink&& sink) {
  if (value == kInvalidStringId) return true;
  if (spec.kind == NodeKind::kText) {
    for (Pre s : index.TextLookup(value)) {
      if (!sink(s)) return false;
    }
    return true;
  }
  for (Pre s : index.AttrLookup(value)) {
    if (!MatchesProbeSpec(inner_doc, spec, s)) continue;
    if (!sink(s)) return false;
  }
  return true;
}

// Amortized governance poll: due once per kCancelCheckRows rows. The
// first poll waits a full interval, so τ-sized sampling calls never
// pay the token's clock read.
inline bool CancelCheckDue(uint64_t count) {
  return (count & (kCancelCheckRows - 1)) == 0;
}

}  // namespace

void ValueIndexJoinPairsInto(const Document& outer_doc,
                             std::span<const Pre> outer,
                             const Document& inner_doc,
                             const ValueIndex& inner_index,
                             const ValueProbeSpec& spec, uint64_t limit,
                             JoinPairs& out,
                             const CancellationToken* cancel) {
  // Same limit+1 sentinel protocol as StructuralJoinPairs.
  out.Clear();
  out.Reserve(limit != kNoLimit ? limit + 1 : outer.size());
  for (size_t i = 0; i < outer.size(); ++i) {
    if (CancelCheckDue(i + 1) && StopRequested(cancel)) {
      out.truncated = true;
      out.outer_consumed = i;
      return;
    }
    uint32_t row = static_cast<uint32_t>(i);
    StringId v = NodeValue(outer_doc, outer[i]);
    bool completed =
        ProbeIndex(inner_doc, inner_index, spec, v, [&](Pre s) -> bool {
          out.left_rows.push_back(row);
          out.right_nodes.push_back(s);
          if (limit != kNoLimit && out.right_nodes.size() > limit) {
            return false;
          }
          return !(CancelCheckDue(out.right_nodes.size()) &&
                   StopRequested(cancel));
        });
    if (!completed) {
      out.left_rows.pop_back();
      out.right_nodes.pop_back();
      out.truncated = true;
      out.outer_consumed =
          out.left_rows.empty() ? 1 : out.left_rows.back() + 1;
      return;
    }
  }
  out.truncated = false;
  out.outer_consumed = outer.size();
}

JoinPairs ValueIndexJoinPairs(const Document& outer_doc,
                              std::span<const Pre> outer,
                              const Document& inner_doc,
                              const ValueIndex& inner_index,
                              const ValueProbeSpec& spec, uint64_t limit,
                              const CancellationToken* cancel) {
  JoinPairs out;
  ValueIndexJoinPairsInto(outer_doc, outer, inner_doc, inner_index, spec,
                          limit, out, cancel);
  return out;
}

// --- theta kernels ----------------------------------------------------------

namespace {

// Emits the run entries matching `outer_value op inner_value`, i.e. the
// suffix of inner values above the boundary for kLt/kLe and the prefix
// below it for kGt/kGe. `keep` filters entries (attribute-name
// restriction on index runs); `sink` returns false to stop (cut-off).
template <typename Keep, typename Sink>
bool EmitRangeMatches(std::span<const ValueIndex::NumEntry> run, double v,
                      CmpOp op, const Keep& keep, Sink&& sink) {
  auto val_less = [](const ValueIndex::NumEntry& e, double x) {
    return e.value < x;
  };
  auto less_val = [](double x, const ValueIndex::NumEntry& e) {
    return x < e.value;
  };
  size_t begin = 0, end = run.size();
  switch (op) {
    case CmpOp::kLt:  // inner values > v
      begin = static_cast<size_t>(
          std::upper_bound(run.begin(), run.end(), v, less_val) -
          run.begin());
      break;
    case CmpOp::kLe:  // inner values >= v
      begin = static_cast<size_t>(
          std::lower_bound(run.begin(), run.end(), v, val_less) -
          run.begin());
      break;
    case CmpOp::kGt:  // inner values < v
      end = static_cast<size_t>(
          std::lower_bound(run.begin(), run.end(), v, val_less) -
          run.begin());
      break;
    case CmpOp::kGe:  // inner values <= v
      end = static_cast<size_t>(
          std::upper_bound(run.begin(), run.end(), v, less_val) -
          run.begin());
      break;
    case CmpOp::kEq:
    case CmpOp::kNe:
      return true;  // handled by the callers' string-id paths
  }
  for (size_t i = begin; i < end; ++i) {
    if (!keep(run[i].pre)) continue;
    if (!sink(run[i].pre)) return false;
  }
  return true;
}

// Shared outer loop of both theta kernels, including the limit+1
// truncation protocol of ValueIndexJoinPairsInto. `emit_range(num,
// sink)` / `emit_ne(value_id, sink)` produce the matches of one row.
template <typename EmitRange, typename EmitNe>
void ThetaProbeLoop(const Document& outer_doc, std::span<const Pre> outer,
                    CmpOp op, uint64_t limit, JoinPairs& out,
                    const EmitRange& emit_range, const EmitNe& emit_ne,
                    const CancellationToken* cancel) {
  ROX_DCHECK(op != CmpOp::kEq);
  out.Clear();
  out.Reserve(limit != kNoLimit ? limit + 1 : outer.size());
  const StringPool& pool = outer_doc.pool();
  for (size_t i = 0; i < outer.size(); ++i) {
    if (CancelCheckDue(i + 1) && StopRequested(cancel)) {
      out.truncated = true;
      out.outer_consumed = i;
      return;
    }
    uint32_t row = static_cast<uint32_t>(i);
    StringId v = NodeValue(outer_doc, outer[i]);
    if (v == kInvalidStringId) continue;  // value-less rows never join
    auto sink = [&](Pre s) -> bool {
      out.left_rows.push_back(row);
      out.right_nodes.push_back(s);
      if (limit != kNoLimit && out.right_nodes.size() > limit) return false;
      return !(CancelCheckDue(out.right_nodes.size()) &&
               StopRequested(cancel));
    };
    bool completed;
    if (op == CmpOp::kNe) {
      completed = emit_ne(v, sink);
    } else {
      auto num = pool.NumericValue(v);
      if (!num.has_value()) continue;  // non-numeric: no range match
      completed = emit_range(*num, sink);
    }
    if (!completed) {
      out.left_rows.pop_back();
      out.right_nodes.pop_back();
      out.truncated = true;
      out.outer_consumed =
          out.left_rows.empty() ? 1 : out.left_rows.back() + 1;
      return;
    }
  }
  out.truncated = false;
  out.outer_consumed = outer.size();
}

}  // namespace

ThetaRun ThetaRun::Build(const Document& inner_doc,
                         std::span<const Pre> inner) {
  ThetaRun run;
  run.numeric.reserve(inner.size());
  run.valued.reserve(inner.size());
  const StringPool& pool = inner_doc.pool();
  for (Pre s : inner) {
    StringId v = NodeValue(inner_doc, s);
    if (v == kInvalidStringId) continue;
    run.valued.push_back(s);
    if (auto num = pool.NumericValue(v)) run.numeric.push_back({*num, s});
  }
  std::sort(run.numeric.begin(), run.numeric.end(),
            [](const ValueIndex::NumEntry& a, const ValueIndex::NumEntry& b) {
              return a.value < b.value || (a.value == b.value && a.pre < b.pre);
            });
  return run;
}

void ValueIndexThetaJoinPairsInto(const Document& outer_doc,
                                  std::span<const Pre> outer,
                                  const Document& inner_doc,
                                  const ValueIndex& inner_index,
                                  const ValueProbeSpec& spec, CmpOp op,
                                  uint64_t limit, JoinPairs& out,
                                  const CancellationToken* cancel) {
  const bool text = spec.kind == NodeKind::kText;
  std::span<const ValueIndex::NumEntry> run =
      text ? inner_index.NumericTextRun() : inner_index.NumericAttrRun();
  std::span<const Pre> all =
      text ? inner_index.AllTextNodes() : inner_index.AllAttrNodes();
  auto keep = [&](Pre s) { return MatchesProbeSpec(inner_doc, spec, s); };
  ThetaProbeLoop(
      outer_doc, outer, op, limit, out,
      [&](double v, auto&& sink) {
        return EmitRangeMatches(run, v, op, keep, sink);
      },
      [&](StringId v, auto&& sink) {
        for (Pre s : all) {
          if (!keep(s) || inner_doc.Value(s) == v) continue;
          if (!sink(s)) return false;
        }
        return true;
      },
      cancel);
}

JoinPairs ValueIndexThetaJoinPairs(const Document& outer_doc,
                                   std::span<const Pre> outer,
                                   const Document& inner_doc,
                                   const ValueIndex& inner_index,
                                   const ValueProbeSpec& spec, CmpOp op,
                                   uint64_t limit,
                                   const CancellationToken* cancel) {
  JoinPairs out;
  ValueIndexThetaJoinPairsInto(outer_doc, outer, inner_doc, inner_index,
                               spec, op, limit, out, cancel);
  return out;
}

void ThetaRunJoinPairsInto(const Document& outer_doc,
                           std::span<const Pre> outer,
                           const Document& inner_doc, const ThetaRun& run,
                           CmpOp op, uint64_t limit, JoinPairs& out,
                           const CancellationToken* cancel) {
  auto keep = [](Pre) { return true; };
  ThetaProbeLoop(
      outer_doc, outer, op, limit, out,
      [&](double v, auto&& sink) {
        return EmitRangeMatches(
            std::span<const ValueIndex::NumEntry>(run.numeric), v, op, keep,
            sink);
      },
      [&](StringId v, auto&& sink) {
        for (Pre s : run.valued) {
          if (NodeValue(inner_doc, s) == v) continue;
          if (!sink(s)) return false;
        }
        return true;
      },
      cancel);
}

JoinPairs SortThetaJoinPairs(const Document& outer_doc,
                             std::span<const Pre> outer,
                             const Document& inner_doc,
                             std::span<const Pre> inner, CmpOp op,
                             uint64_t limit, const CancellationToken* cancel) {
  ThetaRun run = ThetaRun::Build(inner_doc, inner);
  JoinPairs out;
  ThetaRunJoinPairsInto(outer_doc, outer, inner_doc, run, op, limit, out,
                        cancel);
  return out;
}

ValueHashTable::ValueHashTable(const Document& inner_doc,
                               std::span<const Pre> inner) {
  by_value_.reserve(inner.size());
  for (Pre s : inner) {
    StringId v = NodeValue(inner_doc, s);
    if (v != kInvalidStringId) by_value_[v].push_back(s);
  }
}

void ValueHashTable::ProbeInto(const Document& outer_doc,
                               std::span<const Pre> outer, JoinPairs& out,
                               const CancellationToken* cancel) const {
  out.Clear();
  out.Reserve(outer.size());
  for (size_t i = 0; i < outer.size(); ++i) {
    if (CancelCheckDue(i + 1) && StopRequested(cancel)) {
      out.truncated = true;
      out.outer_consumed = i;
      return;
    }
    StringId v = NodeValue(outer_doc, outer[i]);
    if (v == kInvalidStringId) continue;
    auto it = by_value_.find(v);
    if (it == by_value_.end()) continue;
    for (Pre s : it->second) {
      out.left_rows.push_back(static_cast<uint32_t>(i));
      out.right_nodes.push_back(s);
      // Skewed values can emit huge groups off one probe; poll on
      // output growth too.
      if (CancelCheckDue(out.right_nodes.size()) && StopRequested(cancel)) {
        out.truncated = true;
        out.outer_consumed = i + 1;
        return;
      }
    }
  }
  out.truncated = false;
  out.outer_consumed = outer.size();
}

JoinPairs ValueHashTable::Probe(const Document& outer_doc,
                                std::span<const Pre> outer,
                                const CancellationToken* cancel) const {
  JoinPairs out;
  ProbeInto(outer_doc, outer, out, cancel);
  return out;
}

JoinPairs HashValueJoinPairs(const Document& outer_doc,
                             std::span<const Pre> outer,
                             const Document& inner_doc,
                             std::span<const Pre> inner,
                             const CancellationToken* cancel) {
  return ValueHashTable(inner_doc, inner).Probe(outer_doc, outer, cancel);
}

std::vector<Pre> SortByValueId(const Document& doc,
                               std::span<const Pre> nodes) {
  std::vector<Pre> out(nodes.begin(), nodes.end());
  std::sort(out.begin(), out.end(), [&](Pre a, Pre b) {
    StringId va = NodeValue(doc, a), vb = NodeValue(doc, b);
    if (va != vb) return va < vb;  // kInvalidStringId (max) sorts last
    return a < b;
  });
  return out;
}

JoinPairs MergeValueJoinPairs(const Document& outer_doc,
                              std::span<const Pre> outer_sorted,
                              const Document& inner_doc,
                              std::span<const Pre> inner_sorted,
                              const CancellationToken* cancel) {
  JoinPairs out;
  out.Reserve(std::max(outer_sorted.size(), inner_sorted.size()));
  // Polled on advance steps and on output growth: equal-value groups
  // cross-product, so either side alone can run away.
  uint64_t steps = 0;
  auto tripped = [&]() -> bool {
    if (!(CancelCheckDue(++steps) && StopRequested(cancel))) return false;
    out.truncated = true;
    return true;
  };
  size_t i = 0, j = 0;
  while (i < outer_sorted.size() && j < inner_sorted.size()) {
    if (tripped()) break;
    StringId vo = NodeValue(outer_doc, outer_sorted[i]);
    StringId vi = NodeValue(inner_doc, inner_sorted[j]);
    if (vo == kInvalidStringId) break;  // rest of outer has no value
    if (vi == kInvalidStringId) break;
    if (vo < vi) {
      ++i;
    } else if (vo > vi) {
      ++j;
    } else {
      // Emit the cross product of the two equal-value groups.
      size_t j_end = j;
      while (j_end < inner_sorted.size() &&
             NodeValue(inner_doc, inner_sorted[j_end]) == vi) {
        ++j_end;
      }
      while (i < outer_sorted.size() &&
             NodeValue(outer_doc, outer_sorted[i]) == vo) {
        for (size_t k = j; k < j_end; ++k) {
          out.left_rows.push_back(static_cast<uint32_t>(i));
          out.right_nodes.push_back(inner_sorted[k]);
        }
        if (tripped()) return out;
        ++i;
      }
      j = j_end;
    }
  }
  out.outer_consumed = outer_sorted.size();
  return out;
}

std::vector<Pre> FilterValueEquals(const Document& doc,
                                   std::span<const Pre> nodes, StringId v) {
  std::vector<Pre> out;
  for (Pre p : nodes) {
    if (NodeValue(doc, p) == v) out.push_back(p);
  }
  return out;
}

std::vector<Pre> FilterNumericRange(const Document& doc,
                                    std::span<const Pre> nodes,
                                    const NumericRange& range) {
  std::vector<Pre> out;
  const StringPool& pool = doc.pool();
  for (Pre p : nodes) {
    StringId v = NodeValue(doc, p);
    if (v == kInvalidStringId) continue;
    auto num = pool.NumericValue(v);
    if (num && range.Contains(*num)) out.push_back(p);
  }
  return out;
}

}  // namespace rox
