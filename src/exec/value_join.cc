#include "exec/value_join.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "exec/kernel_batch.h"

namespace rox {

StringId NodeValue(const Document& doc, Pre p) {
  switch (doc.Kind(p)) {
    case NodeKind::kText:
    case NodeKind::kAttr:
    case NodeKind::kComment:
    case NodeKind::kPi:
      return doc.Value(p);
    case NodeKind::kElem:
      return doc.SingleTextChildValue(p);
    case NodeKind::kDoc:
      return kInvalidStringId;
  }
  return kInvalidStringId;
}

namespace {

// The attribute-name / owner-element restriction of a probe spec.
// Text probes have no restriction. Shared by the equality and theta
// index kernels so the spec semantics cannot diverge.
bool MatchesProbeSpec(const Document& inner_doc, const ValueProbeSpec& spec,
                      Pre s) {
  if (spec.kind == NodeKind::kText) return true;
  if (spec.attr_name != kInvalidStringId &&
      inner_doc.Name(s) != spec.attr_name) {
    return false;
  }
  return spec.owner_elem == kInvalidStringId ||
         inner_doc.Name(inner_doc.Parent(s)) == spec.owner_elem;
}

// Emits matching inner nodes for one probe value through the index
// (the row-at-a-time fallback path).
template <typename Sink>
bool ProbeIndex(const Document& inner_doc, const ValueIndex& index,
                const ValueProbeSpec& spec, StringId value, Sink&& sink) {
  if (value == kInvalidStringId) return true;
  if (spec.kind == NodeKind::kText) {
    for (Pre s : index.TextLookup(value)) {
      if (!sink(s)) return false;
    }
    return true;
  }
  for (Pre s : index.AttrLookup(value)) {
    if (!MatchesProbeSpec(inner_doc, spec, s)) continue;
    if (!sink(s)) return false;
  }
  return true;
}

// Amortized governance poll: due once per kCancelCheckRows rows. The
// first poll waits a full interval, so τ-sized sampling calls never
// pay the token's clock read.
inline bool CancelCheckDue(uint64_t count) {
  return (count & (kCancelCheckRows - 1)) == 0;
}

// Value pre-pass of one batch: vals[b] = NodeValue(outer[i0 + b]).
// One tight loop per batch keeps the Kind/Value accesses hot instead
// of interleaving them with emission.
void BatchNodeValues(const Document& doc, const PreColumn& outer, size_t i0,
                     size_t bn, StringId* vals) {
  for (size_t b = 0; b < bn; ++b) vals[b] = NodeValue(doc, outer[i0 + b]);
}

// Batched-loop governance poll at a batch boundary: stops with the
// clean prefix [0, i0) — only between rows, so no partial row to
// discard. Skipped at i0 == 0 (first poll waits a full interval).
bool BatchBoundaryStop(size_t i0, const CancellationToken* cancel,
                       JoinPairs& out) {
  if (i0 == 0 || !StopRequested(cancel)) return false;
  out.truncated = true;
  out.outer_consumed = i0;
  return true;
}

// --- equi index probe -------------------------------------------------------

void ValueIndexEquiScalar(const Document& outer_doc, const PreColumn& outer,
                          const Document& inner_doc,
                          const ValueIndex& inner_index,
                          const ValueProbeSpec& spec, uint64_t limit,
                          JoinPairs& out, const CancellationToken* cancel) {
  for (size_t i = 0; i < outer.size(); ++i) {
    if (CancelCheckDue(i + 1) && StopRequested(cancel)) {
      out.truncated = true;
      out.outer_consumed = i;
      return;
    }
    uint32_t row = static_cast<uint32_t>(i);
    StringId v = NodeValue(outer_doc, outer[i]);
    bool completed =
        ProbeIndex(inner_doc, inner_index, spec, v, [&](Pre s) -> bool {
          out.left_rows.push_back(row);
          out.right_nodes.push_back(s);
          if (limit != kNoLimit && out.right_nodes.size() > limit) {
            return false;
          }
          return !(CancelCheckDue(out.right_nodes.size()) &&
                   StopRequested(cancel));
        });
    if (!completed) {
      StampTruncationStop(out, limit, i);
      return;
    }
  }
  out.truncated = false;
  out.outer_consumed = outer.size();
}

void ValueIndexEquiBatched(const Document& outer_doc, const PreColumn& outer,
                           const Document& inner_doc,
                           const ValueIndex& inner_index,
                           const ValueProbeSpec& spec, uint64_t limit,
                           JoinPairs& out, const CancellationToken* cancel) {
  StringId vals[kKernelBatchRows];
  BatchEmitter em(out, limit, cancel);
  const bool text = spec.kind == NodeKind::kText;
  for (size_t i0 = 0; i0 < outer.size(); i0 += kKernelBatchRows) {
    if (BatchBoundaryStop(i0, cancel, out)) return;
    size_t bn = std::min(kKernelBatchRows, outer.size() - i0);
    BatchNodeValues(outer_doc, outer, i0, bn, vals);
    for (size_t b = 0; b < bn; ++b) {
      StringId v = vals[b];
      if (v == kInvalidStringId) continue;
      uint32_t row = static_cast<uint32_t>(i0 + b);
      BatchEmitter::Stop stop = BatchEmitter::Stop::kNone;
      if (text) {
        // Text probes match the whole index run: one bulk append.
        stop = em.Append(row, inner_index.TextLookup(v));
      } else {
        for (Pre s : inner_index.AttrLookup(v)) {
          if (!MatchesProbeSpec(inner_doc, spec, s)) continue;
          stop = em.Push(row, s);
          if (stop != BatchEmitter::Stop::kNone) break;
        }
      }
      if (stop != BatchEmitter::Stop::kNone) {
        StampTruncationStop(out, limit, i0 + b);
        return;
      }
    }
  }
  out.truncated = false;
  out.outer_consumed = outer.size();
}

}  // namespace

void ValueIndexJoinPairsInto(const Document& outer_doc,
                             const PreColumn& outer,
                             const Document& inner_doc,
                             const ValueIndex& inner_index,
                             const ValueProbeSpec& spec, uint64_t limit,
                             JoinPairs& out,
                             const CancellationToken* cancel,
                             bool vectorized) {
  // Same limit+1 sentinel protocol as StructuralJoinPairs.
  out.Clear();
  out.Reserve(limit != kNoLimit ? limit + 1 : outer.size());
  if (vectorized) {
    ValueIndexEquiBatched(outer_doc, outer, inner_doc, inner_index, spec,
                          limit, out, cancel);
  } else {
    ValueIndexEquiScalar(outer_doc, outer, inner_doc, inner_index, spec,
                         limit, out, cancel);
  }
}

void ValueIndexJoinPairsInto(const Document& outer_doc,
                             std::span<const Pre> outer,
                             const Document& inner_doc,
                             const ValueIndex& inner_index,
                             const ValueProbeSpec& spec, uint64_t limit,
                             JoinPairs& out,
                             const CancellationToken* cancel,
                             bool vectorized) {
  ValueIndexJoinPairsInto(outer_doc, PreColumn::FromSpan(outer), inner_doc,
                          inner_index, spec, limit, out, cancel, vectorized);
}

JoinPairs ValueIndexJoinPairs(const Document& outer_doc,
                              std::span<const Pre> outer,
                              const Document& inner_doc,
                              const ValueIndex& inner_index,
                              const ValueProbeSpec& spec, uint64_t limit,
                              const CancellationToken* cancel,
                              bool vectorized) {
  JoinPairs out;
  ValueIndexJoinPairsInto(outer_doc, outer, inner_doc, inner_index, spec,
                          limit, out, cancel, vectorized);
  return out;
}

// --- theta kernels ----------------------------------------------------------

namespace {

// The [begin, end) slice of the sorted run matching
// `outer_value op inner_value` — the suffix of inner values above the
// boundary for kLt/kLe, the prefix below it for kGt/kGe. Shared by the
// scalar and batched paths so the boundary semantics cannot diverge.
std::pair<size_t, size_t> RangeBounds(
    std::span<const ValueIndex::NumEntry> run, double v, CmpOp op) {
  auto val_less = [](const ValueIndex::NumEntry& e, double x) {
    return e.value < x;
  };
  auto less_val = [](double x, const ValueIndex::NumEntry& e) {
    return x < e.value;
  };
  size_t begin = 0, end = run.size();
  switch (op) {
    case CmpOp::kLt:  // inner values > v
      begin = static_cast<size_t>(
          std::upper_bound(run.begin(), run.end(), v, less_val) -
          run.begin());
      break;
    case CmpOp::kLe:  // inner values >= v
      begin = static_cast<size_t>(
          std::lower_bound(run.begin(), run.end(), v, val_less) -
          run.begin());
      break;
    case CmpOp::kGt:  // inner values < v
      end = static_cast<size_t>(
          std::lower_bound(run.begin(), run.end(), v, val_less) -
          run.begin());
      break;
    case CmpOp::kGe:  // inner values <= v
      end = static_cast<size_t>(
          std::upper_bound(run.begin(), run.end(), v, less_val) -
          run.begin());
      break;
    case CmpOp::kEq:
    case CmpOp::kNe:
      begin = end = 0;  // handled by the callers' string-id paths
      break;
  }
  return {begin, end};
}

// Row-at-a-time theta probe (the fallback path), including the limit+1
// truncation protocol of ValueIndexJoinPairsInto. `keep` filters inner
// candidates (attribute-name restriction on index runs); `ne_nodes` /
// `ne_value` provide the document-order candidate scan of `!=`.
template <typename Keep, typename NeValueOf>
void ThetaProbeScalar(const Document& outer_doc, const PreColumn& outer,
                      CmpOp op, uint64_t limit,
                      std::span<const ValueIndex::NumEntry> run,
                      const Keep& keep, std::span<const Pre> ne_nodes,
                      const NeValueOf& ne_value, JoinPairs& out,
                      const CancellationToken* cancel) {
  const StringPool& pool = outer_doc.pool();
  for (size_t i = 0; i < outer.size(); ++i) {
    if (CancelCheckDue(i + 1) && StopRequested(cancel)) {
      out.truncated = true;
      out.outer_consumed = i;
      return;
    }
    uint32_t row = static_cast<uint32_t>(i);
    StringId v = NodeValue(outer_doc, outer[i]);
    if (v == kInvalidStringId) continue;  // value-less rows never join
    auto sink = [&](Pre s) -> bool {
      out.left_rows.push_back(row);
      out.right_nodes.push_back(s);
      if (limit != kNoLimit && out.right_nodes.size() > limit) return false;
      return !(CancelCheckDue(out.right_nodes.size()) &&
               StopRequested(cancel));
    };
    bool completed = true;
    if (op == CmpOp::kNe) {
      for (Pre s : ne_nodes) {
        if (!keep(s) || ne_value(s) == v) continue;
        if (!sink(s)) {
          completed = false;
          break;
        }
      }
    } else {
      auto num = pool.NumericValue(v);
      if (!num.has_value()) continue;  // non-numeric: no range match
      auto [begin, end] = RangeBounds(run, *num, op);
      for (size_t k = begin; k < end && completed; ++k) {
        if (!keep(run[k].pre)) continue;
        completed = sink(run[k].pre);
      }
    }
    if (!completed) {
      StampTruncationStop(out, limit, i);
      return;
    }
  }
  out.truncated = false;
  out.outer_consumed = outer.size();
}

// Batched theta probe: per batch, one value pre-pass materializes the
// interned ids and cached numeric interpretations into flat arrays, a
// second flat loop binary-searches all row boundaries, and the
// emission sweep bulk-copies each row's contiguous run slice
// (`keep_trivial` — text runs and private ThetaRuns have no filter).
template <typename Keep, typename NeValueOf>
void ThetaProbeBatched(const Document& outer_doc, const PreColumn& outer,
                       CmpOp op, uint64_t limit,
                       std::span<const ValueIndex::NumEntry> run,
                       const Keep& keep, bool keep_trivial,
                       std::span<const Pre> ne_nodes,
                       const NeValueOf& ne_value, JoinPairs& out,
                       const CancellationToken* cancel) {
  const StringPool& pool = outer_doc.pool();
  StringId vals[kKernelBatchRows];
  double nums[kKernelBatchRows];
  uint32_t begins[kKernelBatchRows];
  uint32_t ends[kKernelBatchRows];
  BatchEmitter em(out, limit, cancel);
  const bool is_ne = op == CmpOp::kNe;
  for (size_t i0 = 0; i0 < outer.size(); i0 += kKernelBatchRows) {
    if (BatchBoundaryStop(i0, cancel, out)) return;
    size_t bn = std::min(kKernelBatchRows, outer.size() - i0);
    BatchNodeValues(outer_doc, outer, i0, bn, vals);
    if (is_ne) {
      for (size_t b = 0; b < bn; ++b) {
        StringId v = vals[b];
        if (v == kInvalidStringId) continue;
        uint32_t row = static_cast<uint32_t>(i0 + b);
        BatchEmitter::Stop stop = BatchEmitter::Stop::kNone;
        for (Pre s : ne_nodes) {
          if (!keep(s) || ne_value(s) == v) continue;
          stop = em.Push(row, s);
          if (stop != BatchEmitter::Stop::kNone) break;
        }
        if (stop != BatchEmitter::Stop::kNone) {
          StampTruncationStop(out, limit, i0 + b);
          return;
        }
      }
      continue;
    }
    // Numeric pre-pass, then the boundary-search pass: two flat loops
    // over the batch arrays (ends[b] == begins[b] marks no-match rows).
    for (size_t b = 0; b < bn; ++b) {
      begins[b] = ends[b] = 0;
      if (vals[b] == kInvalidStringId) continue;
      auto num = pool.NumericValue(vals[b]);
      if (!num.has_value()) continue;
      nums[b] = *num;
      auto [lo, hi] = RangeBounds(run, nums[b], op);
      begins[b] = static_cast<uint32_t>(lo);
      ends[b] = static_cast<uint32_t>(hi);
    }
    // Emission sweep: bulk-copy each row's run slice.
    for (size_t b = 0; b < bn; ++b) {
      if (begins[b] >= ends[b]) continue;
      uint32_t row = static_cast<uint32_t>(i0 + b);
      BatchEmitter::Stop stop = BatchEmitter::Stop::kNone;
      if (keep_trivial) {
        stop = em.AppendRun(row, run, begins[b], ends[b]);
      } else {
        for (size_t k = begins[b]; k < ends[b]; ++k) {
          if (!keep(run[k].pre)) continue;
          stop = em.Push(row, run[k].pre);
          if (stop != BatchEmitter::Stop::kNone) break;
        }
      }
      if (stop != BatchEmitter::Stop::kNone) {
        StampTruncationStop(out, limit, i0 + b);
        return;
      }
    }
  }
  out.truncated = false;
  out.outer_consumed = outer.size();
}

// Shared dispatch of both theta kernels.
template <typename Keep, typename NeValueOf>
void ThetaProbeLoop(const Document& outer_doc, const PreColumn& outer,
                    CmpOp op, uint64_t limit,
                    std::span<const ValueIndex::NumEntry> run,
                    const Keep& keep, bool keep_trivial,
                    std::span<const Pre> ne_nodes, const NeValueOf& ne_value,
                    JoinPairs& out, const CancellationToken* cancel,
                    bool vectorized) {
  ROX_DCHECK(op != CmpOp::kEq);
  out.Clear();
  out.Reserve(limit != kNoLimit ? limit + 1 : outer.size());
  if (vectorized) {
    ThetaProbeBatched(outer_doc, outer, op, limit, run, keep, keep_trivial,
                      ne_nodes, ne_value, out, cancel);
  } else {
    ThetaProbeScalar(outer_doc, outer, op, limit, run, keep, ne_nodes,
                     ne_value, out, cancel);
  }
}

}  // namespace

ThetaRun ThetaRun::Build(const Document& inner_doc,
                         std::span<const Pre> inner) {
  ThetaRun run;
  run.numeric.reserve(inner.size());
  run.valued.reserve(inner.size());
  const StringPool& pool = inner_doc.pool();
  for (Pre s : inner) {
    StringId v = NodeValue(inner_doc, s);
    if (v == kInvalidStringId) continue;
    run.valued.push_back(s);
    if (auto num = pool.NumericValue(v)) run.numeric.push_back({*num, s});
  }
  std::sort(run.numeric.begin(), run.numeric.end(),
            [](const ValueIndex::NumEntry& a, const ValueIndex::NumEntry& b) {
              return a.value < b.value || (a.value == b.value && a.pre < b.pre);
            });
  return run;
}

void ValueIndexThetaJoinPairsInto(const Document& outer_doc,
                                  std::span<const Pre> outer,
                                  const Document& inner_doc,
                                  const ValueIndex& inner_index,
                                  const ValueProbeSpec& spec, CmpOp op,
                                  uint64_t limit, JoinPairs& out,
                                  const CancellationToken* cancel,
                                  bool vectorized) {
  const bool text = spec.kind == NodeKind::kText;
  std::span<const ValueIndex::NumEntry> run =
      text ? inner_index.NumericTextRun() : inner_index.NumericAttrRun();
  std::span<const Pre> all =
      text ? inner_index.AllTextNodes() : inner_index.AllAttrNodes();
  auto keep = [&](Pre s) { return MatchesProbeSpec(inner_doc, spec, s); };
  auto ne_value = [&](Pre s) { return inner_doc.Value(s); };
  ThetaProbeLoop(outer_doc, PreColumn::FromSpan(outer), op, limit, run, keep,
                 /*keep_trivial=*/text, all, ne_value, out, cancel,
                 vectorized);
}

JoinPairs ValueIndexThetaJoinPairs(const Document& outer_doc,
                                   std::span<const Pre> outer,
                                   const Document& inner_doc,
                                   const ValueIndex& inner_index,
                                   const ValueProbeSpec& spec, CmpOp op,
                                   uint64_t limit,
                                   const CancellationToken* cancel,
                                   bool vectorized) {
  JoinPairs out;
  ValueIndexThetaJoinPairsInto(outer_doc, outer, inner_doc, inner_index,
                               spec, op, limit, out, cancel, vectorized);
  return out;
}

void ThetaRunJoinPairsInto(const Document& outer_doc,
                           std::span<const Pre> outer,
                           const Document& inner_doc, const ThetaRun& run,
                           CmpOp op, uint64_t limit, JoinPairs& out,
                           const CancellationToken* cancel, bool vectorized) {
  auto keep = [](Pre) { return true; };
  auto ne_value = [&](Pre s) { return NodeValue(inner_doc, s); };
  ThetaProbeLoop(outer_doc, PreColumn::FromSpan(outer), op, limit,
                 std::span<const ValueIndex::NumEntry>(run.numeric), keep,
                 /*keep_trivial=*/true, run.valued, ne_value, out, cancel,
                 vectorized);
}

JoinPairs SortThetaJoinPairs(const Document& outer_doc,
                             std::span<const Pre> outer,
                             const Document& inner_doc,
                             std::span<const Pre> inner, CmpOp op,
                             uint64_t limit, const CancellationToken* cancel,
                             bool vectorized) {
  ThetaRun run = ThetaRun::Build(inner_doc, inner);
  JoinPairs out;
  ThetaRunJoinPairsInto(outer_doc, outer, inner_doc, run, op, limit, out,
                        cancel, vectorized);
  return out;
}

// --- hash equi-join ---------------------------------------------------------

ValueHashTable::ValueHashTable(const Document& inner_doc,
                               std::span<const Pre> inner) {
  by_value_.Reset(inner.size());
  // Pass 1: count each value's group, remembering the per-node values
  // so the scatter pass does not re-derive them.
  std::vector<std::pair<StringId, Pre>> valued;
  valued.reserve(inner.size());
  for (Pre s : inner) {
    StringId v = NodeValue(inner_doc, s);
    if (v == kInvalidStringId) continue;
    valued.emplace_back(v, s);
    ++by_value_.FindOrInsert(v).b;
  }
  // Offsets by prefix sum (hash order — only the *within-group* order
  // matters for emission, and the scatter below fixes that).
  uint32_t off = 0;
  for (auto& slot : by_value_.slots()) {
    if (slot.key == kInvalidStringId) continue;
    slot.a = off;
    off += slot.b;
    slot.b = 0;  // reused as the fill cursor; ends back at the length
  }
  // Pass 2: scatter in input order, so each group holds its nodes in
  // build-input (document) order — the emission order of the former
  // per-value bucket map.
  payload_.resize(valued.size());
  for (const auto& [v, s] : valued) {
    auto& slot = by_value_.FindOrInsert(v);
    payload_[slot.a + slot.b++] = s;
  }
}

namespace {

void HashProbeScalar(const ValueHashTable& table, const Document& outer_doc,
                     const PreColumn& outer, JoinPairs& out,
                     const CancellationToken* cancel) {
  for (size_t i = 0; i < outer.size(); ++i) {
    if (CancelCheckDue(i + 1) && StopRequested(cancel)) {
      out.truncated = true;
      out.outer_consumed = i;
      return;
    }
    StringId v = NodeValue(outer_doc, outer[i]);
    if (v == kInvalidStringId) continue;
    for (Pre s : table.Lookup(v)) {
      out.left_rows.push_back(static_cast<uint32_t>(i));
      out.right_nodes.push_back(s);
      // Skewed values can emit huge groups off one probe; poll on
      // output growth too.
      if (CancelCheckDue(out.right_nodes.size()) && StopRequested(cancel)) {
        StampTruncationStop(out, kNoLimit, i);
        return;
      }
    }
  }
  out.truncated = false;
  out.outer_consumed = outer.size();
}

void HashProbeBatched(const ValueHashTable& table, const Document& outer_doc,
                      const PreColumn& outer, JoinPairs& out,
                      const CancellationToken* cancel) {
  StringId vals[kKernelBatchRows];
  BatchEmitter em(out, kNoLimit, cancel);
  for (size_t i0 = 0; i0 < outer.size(); i0 += kKernelBatchRows) {
    if (BatchBoundaryStop(i0, cancel, out)) return;
    size_t bn = std::min(kKernelBatchRows, outer.size() - i0);
    BatchNodeValues(outer_doc, outer, i0, bn, vals);
    for (size_t b = 0; b < bn; ++b) {
      if (vals[b] == kInvalidStringId) continue;
      std::span<const Pre> group = table.Lookup(vals[b]);
      if (group.empty()) continue;
      if (em.Append(static_cast<uint32_t>(i0 + b), group) !=
          BatchEmitter::Stop::kNone) {
        StampTruncationStop(out, kNoLimit, i0 + b);
        return;
      }
    }
  }
  out.truncated = false;
  out.outer_consumed = outer.size();
}

}  // namespace

void ValueHashTable::ProbeInto(const Document& outer_doc,
                               const PreColumn& outer, JoinPairs& out,
                               const CancellationToken* cancel,
                               bool vectorized) const {
  out.Clear();
  out.Reserve(outer.size());
  if (vectorized) {
    HashProbeBatched(*this, outer_doc, outer, out, cancel);
  } else {
    HashProbeScalar(*this, outer_doc, outer, out, cancel);
  }
}

void ValueHashTable::ProbeInto(const Document& outer_doc,
                               std::span<const Pre> outer, JoinPairs& out,
                               const CancellationToken* cancel,
                               bool vectorized) const {
  ProbeInto(outer_doc, PreColumn::FromSpan(outer), out, cancel, vectorized);
}

JoinPairs ValueHashTable::Probe(const Document& outer_doc,
                                std::span<const Pre> outer,
                                const CancellationToken* cancel,
                                bool vectorized) const {
  JoinPairs out;
  ProbeInto(outer_doc, outer, out, cancel, vectorized);
  return out;
}

JoinPairs HashValueJoinPairs(const Document& outer_doc,
                             std::span<const Pre> outer,
                             const Document& inner_doc,
                             std::span<const Pre> inner,
                             const CancellationToken* cancel,
                             bool vectorized) {
  return ValueHashTable(inner_doc, inner)
      .Probe(outer_doc, outer, cancel, vectorized);
}

// --- merge equi-join --------------------------------------------------------

std::vector<Pre> SortByValueId(const Document& doc,
                               std::span<const Pre> nodes) {
  // Decorate-sort-undecorate: one NodeValue per node instead of one
  // per comparison. (value, pre) pair order equals the former
  // comparator exactly — kInvalidStringId (max) still sorts last.
  std::vector<std::pair<StringId, Pre>> dec;
  dec.reserve(nodes.size());
  for (Pre p : nodes) dec.emplace_back(NodeValue(doc, p), p);
  std::sort(dec.begin(), dec.end());
  std::vector<Pre> out;
  out.reserve(dec.size());
  for (const auto& [v, p] : dec) out.push_back(p);
  return out;
}

JoinPairs MergeValueJoinPairs(const Document& outer_doc,
                              std::span<const Pre> outer_sorted,
                              const Document& inner_doc,
                              std::span<const Pre> inner_sorted,
                              const CancellationToken* cancel,
                              bool vectorized) {
  JoinPairs out;
  out.Reserve(std::max(outer_sorted.size(), inner_sorted.size()));
  // Polled on advance steps and on output growth: equal-value groups
  // cross-product, so either side alone can run away.
  uint64_t steps = 0;
  auto tripped = [&]() -> bool {
    if (!(CancelCheckDue(++steps) && StopRequested(cancel))) return false;
    out.truncated = true;
    return true;
  };
  size_t i = 0, j = 0;
  if (!vectorized) {
    while (i < outer_sorted.size() && j < inner_sorted.size()) {
      if (tripped()) {
        // Cancellation at an advance step: rows [0, i) are fully
        // merged and all emitted pairs reference them.
        out.outer_consumed = i;
        return out;
      }
      StringId vo = NodeValue(outer_doc, outer_sorted[i]);
      StringId vi = NodeValue(inner_doc, inner_sorted[j]);
      if (vo == kInvalidStringId) break;  // rest of outer has no value
      if (vi == kInvalidStringId) break;
      if (vo < vi) {
        ++i;
      } else if (vo > vi) {
        ++j;
      } else {
        // Emit the cross product of the two equal-value groups.
        size_t j_end = j;
        while (j_end < inner_sorted.size() &&
               NodeValue(inner_doc, inner_sorted[j_end]) == vi) {
          ++j_end;
        }
        while (i < outer_sorted.size() &&
               NodeValue(outer_doc, outer_sorted[i]) == vo) {
          for (size_t k = j; k < j_end; ++k) {
            out.left_rows.push_back(static_cast<uint32_t>(i));
            out.right_nodes.push_back(inner_sorted[k]);
          }
          if (tripped()) {
            // Row i's group pairs were fully emitted before the poll.
            out.outer_consumed = i + 1;
            return out;
          }
          ++i;
        }
        j = j_end;
      }
    }
    // Clean finish (including the no-more-values early exit: value-less
    // rows never join, so every outer row counts as consumed).
    out.outer_consumed = outer_sorted.size();
    return out;
  }
  // Vectorized: one value pre-pass per side (one NodeValue per input
  // row instead of one per merge comparison), then the merge runs over
  // the flat id arrays and bulk-copies each group cross product.
  std::vector<StringId> ov(outer_sorted.size());
  std::vector<StringId> iv(inner_sorted.size());
  for (size_t k = 0; k < outer_sorted.size(); ++k) {
    ov[k] = NodeValue(outer_doc, outer_sorted[k]);
  }
  for (size_t k = 0; k < inner_sorted.size(); ++k) {
    iv[k] = NodeValue(inner_doc, inner_sorted[k]);
  }
  while (i < outer_sorted.size() && j < inner_sorted.size()) {
    if (tripped()) {
      out.outer_consumed = i;
      return out;
    }
    StringId vo = ov[i];
    StringId vi = iv[j];
    if (vo == kInvalidStringId || vi == kInvalidStringId) break;
    if (vo < vi) {
      ++i;
    } else if (vo > vi) {
      ++j;
    } else {
      size_t j_end = j;
      while (j_end < inner_sorted.size() && iv[j_end] == vi) ++j_end;
      size_t glen = j_end - j;
      while (i < outer_sorted.size() && ov[i] == vo) {
        if (glen < kBulkAppendMinRows) {
          for (size_t k = j; k < j_end; ++k) {
            out.left_rows.push_back(static_cast<uint32_t>(i));
            out.right_nodes.push_back(inner_sorted[k]);
          }
        } else {
          out.left_rows.resize(out.left_rows.size() + glen,
                               static_cast<uint32_t>(i));
          out.right_nodes.insert(out.right_nodes.end(),
                                 inner_sorted.begin() + j,
                                 inner_sorted.begin() + j_end);
        }
        if (tripped()) {
          out.outer_consumed = i + 1;
          return out;
        }
        ++i;
      }
      j = j_end;
    }
  }
  out.outer_consumed = outer_sorted.size();
  return out;
}

// --- selection predicates ---------------------------------------------------

std::vector<Pre> FilterValueEquals(const Document& doc,
                                   std::span<const Pre> nodes, StringId v) {
  std::vector<Pre> out;
  for (Pre p : nodes) {
    if (NodeValue(doc, p) == v) out.push_back(p);
  }
  return out;
}

std::vector<Pre> FilterNumericRange(const Document& doc,
                                    std::span<const Pre> nodes,
                                    const NumericRange& range) {
  std::vector<Pre> out;
  const StringPool& pool = doc.pool();
  for (Pre p : nodes) {
    StringId v = NodeValue(doc, p);
    if (v == kInvalidStringId) continue;
    auto num = pool.NumericValue(v);
    if (num && range.Contains(*num)) out.push_back(p);
  }
  return out;
}

}  // namespace rox
