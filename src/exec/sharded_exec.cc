#include "exec/sharded_exec.h"

#include <algorithm>

#include "common/thread_pool.h"

namespace rox {

namespace {

// Concatenates per-part pair lists, shifting each part's left_rows by
// the part's start offset in the original input, and accumulates the
// per-lane row counts. Parts must be in input order.
JoinPairs MergeParts(std::vector<JoinPairs>& parts,
                     std::span<const uint32_t> offsets, uint64_t outer_total,
                     ShardFanoutStats* stats) {
  if (stats != nullptr) {
    ++stats->fanouts;
    if (stats->shard_rows.size() < parts.size()) {
      stats->shard_rows.resize(parts.size(), 0);
    }
  }
  size_t total = 0;
  for (const JoinPairs& p : parts) total += p.right_nodes.size();
  JoinPairs out;
  out.left_rows.reserve(total);
  out.right_nodes.reserve(total);
  for (size_t s = 0; s < parts.size(); ++s) {
    JoinPairs& p = parts[s];
    if (stats != nullptr) stats->shard_rows[s] += p.right_nodes.size();
    uint32_t off = offsets[s];
    for (uint32_t row : p.left_rows) out.left_rows.push_back(row + off);
    out.right_nodes.insert(out.right_nodes.end(), p.right_nodes.begin(),
                           p.right_nodes.end());
  }
  out.truncated = false;
  out.outer_consumed = outer_total;
  return out;
}

// Shared scaffolding of the equi-join fan-outs: splits [0, n) into K
// contiguous, order-preserving chunks, runs `probe(lo, hi)` per
// non-empty chunk on the pool, and merges. The probe side of an
// equi-join may be an unsorted intermediate column, so chunking is
// positional rather than by shard node-id range.
template <typename Probe>
JoinPairs ChunkedProbe(const ShardedExec& ex, size_t n, const Probe& probe,
                       ShardFanoutStats* stats) {
  size_t k = ex.shards->num_shards();
  std::vector<JoinPairs> results(k);
  std::vector<uint32_t> offsets(k);
  ParallelFor(ex.pool, k, [&](size_t s) {
    uint32_t lo = static_cast<uint32_t>(n * s / k);
    uint32_t hi = static_cast<uint32_t>(n * (s + 1) / k);
    offsets[s] = lo;
    if (lo < hi) results[s] = probe(lo, hi);
  });
  return MergeParts(results, offsets, n, stats);
}

}  // namespace

JoinPairs ShardedStructuralJoinPairs(const ShardedExec* ex, DocId ctx_doc,
                                     const Document& target_doc,
                                     std::span<const Pre> context,
                                     const StepSpec& step,
                                     const ElementIndex* index,
                                     ShardFanoutStats* stats) {
  if (ex == nullptr || !ex->Enabled() || context.size() < 2) {
    return StructuralJoinPairs(target_doc, context, step, kNoLimit, index);
  }
  std::vector<std::span<const Pre>> parts;
  std::vector<uint32_t> offsets;
  ex->shards->Partition(ctx_doc, context, &parts, &offsets);
  std::vector<JoinPairs> results(parts.size());
  ParallelFor(ex->pool, parts.size(), [&](size_t s) {
    if (parts[s].empty()) return;
    results[s] =
        StructuralJoinPairs(target_doc, parts[s], step, kNoLimit, index);
  });
  return MergeParts(results, offsets, context.size(), stats);
}

JoinPairs ShardedHashValueJoinPairs(const ShardedExec* ex,
                                    const Document& outer_doc,
                                    std::span<const Pre> outer,
                                    const Document& inner_doc,
                                    std::span<const Pre> inner,
                                    ShardFanoutStats* stats) {
  if (ex == nullptr || !ex->Enabled() || outer.size() < 2) {
    return HashValueJoinPairs(outer_doc, outer, inner_doc, inner);
  }
  ValueHashTable table(inner_doc, inner);
  return ChunkedProbe(
      *ex, outer.size(),
      [&](uint32_t lo, uint32_t hi) {
        return table.Probe(outer_doc, outer.subspan(lo, hi - lo));
      },
      stats);
}

JoinPairs ShardedValueIndexJoinPairs(const ShardedExec* ex,
                                     const Document& outer_doc,
                                     std::span<const Pre> outer,
                                     const Document& inner_doc,
                                     const ValueIndex& inner_index,
                                     const ValueProbeSpec& spec,
                                     ShardFanoutStats* stats) {
  if (ex == nullptr || !ex->Enabled() || outer.size() < 2) {
    return ValueIndexJoinPairs(outer_doc, outer, inner_doc, inner_index,
                               spec, kNoLimit);
  }
  return ChunkedProbe(
      *ex, outer.size(),
      [&](uint32_t lo, uint32_t hi) {
        return ValueIndexJoinPairs(outer_doc, outer.subspan(lo, hi - lo),
                                   inner_doc, inner_index, spec, kNoLimit);
      },
      stats);
}

}  // namespace rox
