#include "exec/sharded_exec.h"

#include <algorithm>
#include <utility>

#include "common/thread_pool.h"

namespace rox {

namespace {

// Accounts one real fan-out (the sequential single-lane fallbacks
// leave the stats untouched, so `fanouts` counts parallel executions
// only). Lane row counts are recorded pre-filtering, at production.
void RecordFanout(const std::vector<JoinPairs>& parts,
                  ShardFanoutStats* stats) {
  if (stats == nullptr) return;
  ++stats->fanouts;
  if (stats->shard_rows.size() < parts.size()) {
    stats->shard_rows.resize(parts.size(), 0);
  }
  stats->last_lanes = parts.size();
  stats->last_lane_rows.resize(parts.size());
  for (size_t s = 0; s < parts.size(); ++s) {
    stats->shard_rows[s] += parts[s].right_nodes.size();
    stats->last_lane_rows[s] = parts[s].right_nodes.size();
  }
}

// A single sequential lane covering the whole input.
ShardedJoinParts SingleLane(JoinPairs pairs, uint64_t outer_total) {
  ShardedJoinParts out;
  out.parts.push_back(std::move(pairs));
  out.offsets.push_back(0);
  out.outer_total = outer_total;
  return out;
}

// Shared scaffolding of the equi-join fan-outs: splits [0, n) into K
// contiguous, order-preserving chunks, runs `probe(lo, hi)` per
// non-empty chunk on the pool. The probe side of an equi-join may be
// an unsorted intermediate column, so chunking is positional rather
// than by shard node-id range.
template <typename Probe>
ShardedJoinParts ChunkedProbe(const ShardedExec& ex, size_t n,
                              const Probe& probe, ShardFanoutStats* stats) {
  size_t k = ex.shards->num_shards();
  ShardedJoinParts out;
  out.parts.resize(k);
  out.offsets.resize(k);
  out.outer_total = n;
  ParallelFor(ex.pool, k, [&](size_t s) {
    uint32_t lo = static_cast<uint32_t>(n * s / k);
    uint32_t hi = static_cast<uint32_t>(n * (s + 1) / k);
    out.offsets[s] = lo;
    if (lo < hi) out.parts[s] = probe(lo, hi);
  });
  RecordFanout(out.parts, stats);
  return out;
}

}  // namespace

JoinPairs ShardedJoinParts::Merged() && {
  if (parts.size() == 1 && offsets[0] == 0) {
    JoinPairs out = std::move(parts[0]);
    out.truncated = false;
    out.outer_consumed = outer_total;
    return out;
  }
  uint64_t total = size();
  JoinPairs out;
  out.Reserve(total);
  for (size_t s = 0; s < parts.size(); ++s) {
    JoinPairs& p = parts[s];
    uint32_t off = offsets[s];
    for (uint32_t row : p.left_rows) out.left_rows.push_back(row + off);
    out.right_nodes.insert(out.right_nodes.end(), p.right_nodes.begin(),
                           p.right_nodes.end());
  }
  out.truncated = false;
  out.outer_consumed = outer_total;
  return out;
}

ShardedJoinParts ShardedStructuralJoinParts(
    const ShardedExec* ex, DocId ctx_doc, const Document& target_doc,
    std::span<const Pre> context, const StepSpec& step,
    const ElementIndex* index, ShardFanoutStats* stats,
    const CancellationToken* cancel, bool vectorized) {
  if (ex == nullptr || !ex->Enabled() || context.size() < 2) {
    return SingleLane(StructuralJoinPairs(target_doc, context, step, kNoLimit,
                                          index, cancel, vectorized),
                      context.size());
  }
  std::vector<std::span<const Pre>> parts;
  std::vector<uint32_t> offsets;
  ex->shards->Partition(ctx_doc, context, &parts, &offsets);
  ShardedJoinParts out;
  out.parts.resize(parts.size());
  out.offsets.assign(offsets.begin(), offsets.end());
  out.outer_total = context.size();
  ParallelFor(ex->pool, parts.size(), [&](size_t s) {
    if (parts[s].empty()) return;
    out.parts[s] = StructuralJoinPairs(target_doc, parts[s], step, kNoLimit,
                                       index, cancel, vectorized);
  });
  RecordFanout(out.parts, stats);
  return out;
}

ShardedJoinParts ShardedHashValueJoinParts(
    const ShardedExec* ex, const Document& outer_doc,
    const PreColumn& outer, const Document& inner_doc,
    std::span<const Pre> inner, ShardFanoutStats* stats,
    const CancellationToken* cancel, bool vectorized) {
  ValueHashTable table(inner_doc, inner);
  if (ex == nullptr || !ex->Enabled() || outer.size() < 2) {
    JoinPairs pairs;
    table.ProbeInto(outer_doc, outer, pairs, cancel, vectorized);
    return SingleLane(std::move(pairs), outer.size());
  }
  return ChunkedProbe(
      *ex, outer.size(),
      [&](uint32_t lo, uint32_t hi) {
        JoinPairs pairs;
        table.ProbeInto(outer_doc, outer.Sub(lo, hi - lo), pairs, cancel,
                        vectorized);
        return pairs;
      },
      stats);
}

ShardedJoinParts ShardedHashValueJoinParts(
    const ShardedExec* ex, const Document& outer_doc,
    std::span<const Pre> outer, const Document& inner_doc,
    std::span<const Pre> inner, ShardFanoutStats* stats,
    const CancellationToken* cancel, bool vectorized) {
  return ShardedHashValueJoinParts(ex, outer_doc, PreColumn::FromSpan(outer),
                                   inner_doc, inner, stats, cancel,
                                   vectorized);
}

ShardedJoinParts ShardedValueIndexJoinParts(
    const ShardedExec* ex, const Document& outer_doc,
    const PreColumn& outer, const Document& inner_doc,
    const ValueIndex& inner_index, const ValueProbeSpec& spec,
    ShardFanoutStats* stats, const CancellationToken* cancel,
    bool vectorized) {
  if (ex == nullptr || !ex->Enabled() || outer.size() < 2) {
    JoinPairs pairs;
    ValueIndexJoinPairsInto(outer_doc, outer, inner_doc, inner_index, spec,
                            kNoLimit, pairs, cancel, vectorized);
    return SingleLane(std::move(pairs), outer.size());
  }
  return ChunkedProbe(
      *ex, outer.size(),
      [&](uint32_t lo, uint32_t hi) {
        JoinPairs pairs;
        ValueIndexJoinPairsInto(outer_doc, outer.Sub(lo, hi - lo), inner_doc,
                                inner_index, spec, kNoLimit, pairs, cancel,
                                vectorized);
        return pairs;
      },
      stats);
}

ShardedJoinParts ShardedValueIndexJoinParts(
    const ShardedExec* ex, const Document& outer_doc,
    std::span<const Pre> outer, const Document& inner_doc,
    const ValueIndex& inner_index, const ValueProbeSpec& spec,
    ShardFanoutStats* stats, const CancellationToken* cancel,
    bool vectorized) {
  return ShardedValueIndexJoinParts(ex, outer_doc, PreColumn::FromSpan(outer),
                                    inner_doc, inner_index, spec, stats,
                                    cancel, vectorized);
}

ShardedJoinParts ShardedValueIndexThetaJoinParts(
    const ShardedExec* ex, const Document& outer_doc,
    std::span<const Pre> outer, const Document& inner_doc,
    const ValueIndex& inner_index, const ValueProbeSpec& spec, CmpOp op,
    ShardFanoutStats* stats, const CancellationToken* cancel,
    bool vectorized) {
  if (ex == nullptr || !ex->Enabled() || outer.size() < 2) {
    return SingleLane(
        ValueIndexThetaJoinPairs(outer_doc, outer, inner_doc, inner_index,
                                 spec, op, kNoLimit, cancel, vectorized),
        outer.size());
  }
  return ChunkedProbe(
      *ex, outer.size(),
      [&](uint32_t lo, uint32_t hi) {
        return ValueIndexThetaJoinPairs(outer_doc,
                                        outer.subspan(lo, hi - lo),
                                        inner_doc, inner_index, spec, op,
                                        kNoLimit, cancel, vectorized);
      },
      stats);
}

ShardedJoinParts ShardedSortThetaJoinParts(
    const ShardedExec* ex, const Document& outer_doc,
    std::span<const Pre> outer, const Document& inner_doc,
    std::span<const Pre> inner, CmpOp op, ShardFanoutStats* stats,
    const CancellationToken* cancel, bool vectorized) {
  if (ex == nullptr || !ex->Enabled() || outer.size() < 2) {
    return SingleLane(SortThetaJoinPairs(outer_doc, outer, inner_doc, inner,
                                         op, kNoLimit, cancel, vectorized),
                      outer.size());
  }
  ThetaRun run = ThetaRun::Build(inner_doc, inner);
  return ChunkedProbe(
      *ex, outer.size(),
      [&](uint32_t lo, uint32_t hi) {
        JoinPairs pairs;
        ThetaRunJoinPairsInto(outer_doc, outer.subspan(lo, hi - lo),
                              inner_doc, run, op, kNoLimit, pairs, cancel,
                              vectorized);
        return pairs;
      },
      stats);
}

JoinPairs ShardedStructuralJoinPairs(
    const ShardedExec* ex, DocId ctx_doc, const Document& target_doc,
    std::span<const Pre> context, const StepSpec& step,
    const ElementIndex* index, ShardFanoutStats* stats,
    const CancellationToken* cancel, bool vectorized) {
  return ShardedStructuralJoinParts(ex, ctx_doc, target_doc, context, step,
                                    index, stats, cancel, vectorized)
      .Merged();
}

JoinPairs ShardedHashValueJoinPairs(
    const ShardedExec* ex, const Document& outer_doc,
    std::span<const Pre> outer, const Document& inner_doc,
    std::span<const Pre> inner, ShardFanoutStats* stats,
    const CancellationToken* cancel, bool vectorized) {
  return ShardedHashValueJoinParts(ex, outer_doc, outer, inner_doc, inner,
                                   stats, cancel, vectorized)
      .Merged();
}

JoinPairs ShardedHashValueJoinPairs(
    const ShardedExec* ex, const Document& outer_doc,
    const PreColumn& outer, const Document& inner_doc,
    std::span<const Pre> inner, ShardFanoutStats* stats,
    const CancellationToken* cancel, bool vectorized) {
  return ShardedHashValueJoinParts(ex, outer_doc, outer, inner_doc, inner,
                                   stats, cancel, vectorized)
      .Merged();
}

JoinPairs ShardedValueIndexJoinPairs(
    const ShardedExec* ex, const Document& outer_doc,
    std::span<const Pre> outer, const Document& inner_doc,
    const ValueIndex& inner_index, const ValueProbeSpec& spec,
    ShardFanoutStats* stats, const CancellationToken* cancel,
    bool vectorized) {
  return ShardedValueIndexJoinParts(ex, outer_doc, outer, inner_doc,
                                    inner_index, spec, stats, cancel,
                                    vectorized)
      .Merged();
}

JoinPairs ShardedValueIndexJoinPairs(
    const ShardedExec* ex, const Document& outer_doc,
    const PreColumn& outer, const Document& inner_doc,
    const ValueIndex& inner_index, const ValueProbeSpec& spec,
    ShardFanoutStats* stats, const CancellationToken* cancel,
    bool vectorized) {
  return ShardedValueIndexJoinParts(ex, outer_doc, outer, inner_doc,
                                    inner_index, spec, stats, cancel,
                                    vectorized)
      .Merged();
}

}  // namespace rox
