// Common result representation of pair-producing join operators, with
// the cut-off bookkeeping of §2.3.
//
// Every sampled operator in ROX is executed with a limit l on the number
// of produced tuples ("cut-off sampled execution"). The operator records
// how far into the outer (sampled) input it got when the limit was hit;
// the reduction factor f = outer_consumed / outer_total then extrapolates
// the full result size:  |r'| = |r| / f.

#ifndef ROX_EXEC_JOIN_RESULT_H_
#define ROX_EXEC_JOIN_RESULT_H_

#include <cstdint>
#include <vector>

#include "xml/node.h"

namespace rox {

// No output limit.
inline constexpr uint64_t kNoLimit = 0;

// Output of a pair-producing join: parallel arrays of (outer row index,
// matched inner node).
struct JoinPairs {
  std::vector<uint32_t> left_rows;
  std::vector<Pre> right_nodes;

  // True if result generation was cut off by the limit.
  bool truncated = false;
  // Number of outer rows consumed: all of them when !truncated. On a
  // limit cut-off at row i (0-based), i + 1 — the tripping row counts
  // as consumed whether or not any of its pairs survive the sentinel
  // pop, and rows before it count even if they emitted nothing. On a
  // cancellation trip, the length i of the fully-processed prefix
  // [0, i); the tripped row's partial matches are discarded, so pairs
  // only ever reference rows < outer_consumed.
  uint64_t outer_consumed = 0;

  uint64_t size() const { return right_nodes.size(); }

  // Resets to an empty, un-truncated result, keeping buffer capacity —
  // the reuse contract of the *Into kernel variants.
  void Clear() {
    left_rows.clear();
    right_nodes.clear();
    truncated = false;
    outer_consumed = 0;
  }

  void Reserve(uint64_t n) {
    left_rows.reserve(n);
    right_nodes.reserve(n);
  }

  // Linear extrapolation of the full (un-truncated) result cardinality
  // given the total outer input size used for this execution.
  double EstimateFullCardinality(uint64_t outer_total) const {
    if (!truncated || outer_consumed == 0) {
      return static_cast<double>(size());
    }
    double f = static_cast<double>(outer_consumed) /
               static_cast<double>(outer_total == 0 ? 1 : outer_total);
    return static_cast<double>(size()) / f;
  }
};

// Finishes a kernel run that stopped inside row `i`'s emission,
// distinguishing the two stop causes by inspecting the output:
//  * Limit trip — the sentinel (limit+1)-th pair was just produced:
//    drop it, leaving exactly `limit` pairs, and count row i as
//    consumed (outer_consumed = i + 1) whether or not any of its pairs
//    survive. (The former accounting reported left_rows.back() + 1 —
//    or 1 when no pairs survived at all — under-counting whenever
//    match-less rows preceded the tripping row and skewing the
//    reduction factor f = outer_consumed / outer_total toward
//    over-estimates.)
//  * Cancellation trip — discard row i's partial matches so the
//    surviving pairs cover exactly the fully consumed prefix [0, i)
//    and report outer_consumed = i. Callers re-check the token and
//    discard the result either way; the discard keeps the truncation
//    invariants (pairs reference rows < outer_consumed) intact.
inline void StampTruncationStop(JoinPairs& out, uint64_t limit, size_t i) {
  const bool limit_trip =
      limit != kNoLimit && out.right_nodes.size() > limit;
  if (limit_trip) {
    out.left_rows.pop_back();
    out.right_nodes.pop_back();
    out.outer_consumed = i + 1;
  } else {
    const uint32_t row = static_cast<uint32_t>(i);
    while (!out.left_rows.empty() && out.left_rows.back() == row) {
      out.left_rows.pop_back();
      out.right_nodes.pop_back();
    }
    out.outer_consumed = i;
  }
  out.truncated = true;
}

}  // namespace rox

#endif  // ROX_EXEC_JOIN_RESULT_H_
