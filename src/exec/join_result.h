// Common result representation of pair-producing join operators, with
// the cut-off bookkeeping of §2.3.
//
// Every sampled operator in ROX is executed with a limit l on the number
// of produced tuples ("cut-off sampled execution"). The operator records
// how far into the outer (sampled) input it got when the limit was hit;
// the reduction factor f = outer_consumed / outer_total then extrapolates
// the full result size:  |r'| = |r| / f.

#ifndef ROX_EXEC_JOIN_RESULT_H_
#define ROX_EXEC_JOIN_RESULT_H_

#include <cstdint>
#include <vector>

#include "xml/node.h"

namespace rox {

// No output limit.
inline constexpr uint64_t kNoLimit = 0;

// Output of a pair-producing join: parallel arrays of (outer row index,
// matched inner node).
struct JoinPairs {
  std::vector<uint32_t> left_rows;
  std::vector<Pre> right_nodes;

  // True if result generation was cut off by the limit.
  bool truncated = false;
  // Number of outer rows processed (all of them when !truncated; the
  // 1-based index of the row being processed when the cut-off hit).
  uint64_t outer_consumed = 0;

  uint64_t size() const { return right_nodes.size(); }

  // Resets to an empty, un-truncated result, keeping buffer capacity —
  // the reuse contract of the *Into kernel variants.
  void Clear() {
    left_rows.clear();
    right_nodes.clear();
    truncated = false;
    outer_consumed = 0;
  }

  void Reserve(uint64_t n) {
    left_rows.reserve(n);
    right_nodes.reserve(n);
  }

  // Linear extrapolation of the full (un-truncated) result cardinality
  // given the total outer input size used for this execution.
  double EstimateFullCardinality(uint64_t outer_total) const {
    if (!truncated || outer_consumed == 0) {
      return static_cast<double>(size());
    }
    double f = static_cast<double>(outer_consumed) /
               static_cast<double>(outer_total == 0 ? 1 : outer_total);
    return static_cast<double>(size()) / f;
  }
};

}  // namespace rox

#endif  // ROX_EXEC_JOIN_RESULT_H_
