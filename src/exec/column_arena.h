// Per-query bump allocator for column and selection-vector storage.
//
// Late materialization (DESIGN.md §8) represents intermediate results
// as views: (base column, selection vector) pairs. Both parts are
// uint32 sequences (node ids and row indices), so one arena serves
// both. Allocations are served from geometrically growing blocks and
// are never individually freed — everything dies with the query. Spans
// handed out stay stable for the arena's lifetime (blocks never move),
// which is what lets many view columns alias one shared selection
// vector.
//
// Adopt() takes ownership of an existing vector without copying it:
// the vector's heap buffer becomes arena-owned storage. This is how a
// join's freshly produced pair arrays (JoinPairs::left_rows /
// right_nodes) become view columns with zero additional writes.

#ifndef ROX_EXEC_COLUMN_ARENA_H_
#define ROX_EXEC_COLUMN_ARENA_H_

#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "engine/governor.h"
#include "xml/node.h"

namespace rox {

// Selection vectors index rows; node columns hold Pre values. Both are
// uint32, so the arena allocates untyped uint32 words.
static_assert(std::is_same_v<Pre, uint32_t>,
              "ColumnArena assumes Pre and row indices share uint32");

class ColumnArena {
 public:
  ColumnArena() = default;

  ColumnArena(const ColumnArena&) = delete;
  ColumnArena& operator=(const ColumnArena&) = delete;

  // Uninitialized storage for `n` words; stable until the arena dies.
  std::span<uint32_t> Alloc(size_t n);

  // Takes ownership of `v`'s buffer (no copy) and returns its contents
  // as an arena-stable span.
  std::span<const uint32_t> Adopt(std::vector<uint32_t>&& v);

  // Total bytes held (blocks plus adopted buffers' capacity).
  uint64_t bytes_reserved() const { return bytes_; }

  // Charges every byte the arena reserves from here on against
  // `budget` (DESIGN.md §13). The budget latches when exceeded — it
  // never fails an allocation — so partially built views stay valid;
  // the query unwinds at its next cancellation checkpoint.
  void set_budget(MemoryBudget* budget) { budget_ = budget; }

 private:
  // First block size, in words. Grows geometrically from there.
  static constexpr size_t kMinBlockWords = size_t{1} << 12;

  std::vector<std::unique_ptr<uint32_t[]>> blocks_;
  size_t block_words_ = 0;  // capacity of the current (last) block
  size_t used_ = 0;         // words used in the current block
  std::vector<std::vector<uint32_t>> adopted_;
  uint64_t bytes_ = 0;
  MemoryBudget* budget_ = nullptr;
};

}  // namespace rox

#endif  // ROX_EXEC_COLUMN_ARENA_H_
