// Flat open-addressing run maps for the hot join and dedup paths.
//
// The kernels and assembly operators repeatedly group 32-bit keys
// (interned string ids, node pre ids) into contiguous runs of a payload
// array. std::unordered_map's node-based buckets made those maps the
// top profile entries: one allocation per distinct key, pointer-chasing
// probes, and a destructor walk on clear. The tables here are the flat
// replacement — a power-of-two slot array probed linearly at load
// factor <= 1/2, no per-entry allocation, trivially discardable — and
// back ValueHashTable (equi-join build side), ValueRuns (pair
// expansion) and the row-dedup of ResultTable::DistinctRows.

#ifndef ROX_EXEC_FLAT_HASH_H_
#define ROX_EXEC_FLAT_HASH_H_

#include <cstdint>
#include <vector>

namespace rox {

// splitmix64 finalizer over a 32-bit key: the shared mixer of all flat
// tables (strong enough that linear-probe clusters stay short).
inline uint64_t HashKey32(uint32_t k) {
  uint64_t h = static_cast<uint64_t>(k) + 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

// Open-addressing map from a 32-bit key (with a reserved empty
// sentinel) to two 32-bit values — the (offset, length) run
// bookkeeping every grouping site needs. The caller must size the
// table up front via Reset(expected >= number of distinct keys); there
// is no rehash, which is exactly why inserts are a short probe loop.
template <typename Key, Key kEmptyKey>
class FlatRunMap {
 public:
  struct Slot {
    Key key = kEmptyKey;
    uint32_t a = 0;  // run offset (or first pair index)
    uint32_t b = 0;  // run length (or fill cursor)
  };

  FlatRunMap() = default;

  // Sizes the table for `expected` distinct keys; drops existing
  // content.
  void Reset(size_t expected) {
    size_t cap = 16;
    while (cap < expected * 2) cap <<= 1;
    slots_.assign(cap, Slot{});
    mask_ = cap - 1;
    size_ = 0;
  }

  size_t size() const { return size_; }

  // The slot for `k`, inserted with zero payload if absent. `k` must
  // not be the empty sentinel.
  Slot& FindOrInsert(Key k) {
    size_t i = HashKey32(static_cast<uint32_t>(k)) & mask_;
    while (true) {
      Slot& s = slots_[i];
      if (s.key == k) return s;
      if (s.key == kEmptyKey) {
        s.key = k;
        ++size_;
        return s;
      }
      i = (i + 1) & mask_;
    }
  }

  const Slot* Find(Key k) const {
    if (slots_.empty()) return nullptr;
    size_t i = HashKey32(static_cast<uint32_t>(k)) & mask_;
    while (true) {
      const Slot& s = slots_[i];
      if (s.key == k) return &s;
      if (s.key == kEmptyKey) return nullptr;
      i = (i + 1) & mask_;
    }
  }

  // Occupied-slot iteration (the offset-assignment pass); order is
  // hash order, which no caller may depend on for output ordering.
  std::vector<Slot>& slots() { return slots_; }
  const std::vector<Slot>& slots() const { return slots_; }

 private:
  std::vector<Slot> slots_;
  size_t mask_ = 0;
  size_t size_ = 0;
};

}  // namespace rox

#endif  // ROX_EXEC_FLAT_HASH_H_
