// Row-aligned, column-major tables of node identifiers.
//
// ROX materializes intermediate results fully (§1.1); a ResultTable is
// one such intermediate: each column corresponds to a Join Graph vertex
// already joined into this component, each row to one combination of
// nodes satisfying all executed edges between those vertices. The tail
// operators of §2.1 (projection, distinct, document-order sort) also
// operate on ResultTables.

#ifndef ROX_EXEC_RESULT_TABLE_H_
#define ROX_EXEC_RESULT_TABLE_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "exec/flat_hash.h"
#include "exec/join_result.h"
#include "xml/node.h"

namespace rox {

// CSR grouping of a node column: node -> (offset, length) run into
// `row_ids`, the row indices grouped per node in ascending row order.
// Every pair-expansion site (eager and lazy table joins, both final
// assemblies) shares this construction, so the row order they emit is
// identical — the invariant behind the lazy/eager byte-identity
// guarantee (DESIGN.md §8). Backed by a flat open-addressing map
// (exec/flat_hash.h): the former std::unordered_map was the top
// profile entry of the assembly path (one node allocation per distinct
// value plus a destructor walk per rebuild).
struct ValueRuns {
  FlatRunMap<Pre, kInvalidPre> runs;  // a = offset, b = length
  std::vector<uint32_t> row_ids;

  // The (offset, length) run of `node`, or nullptr if absent.
  const FlatRunMap<Pre, kInvalidPre>::Slot* Find(Pre node) const {
    return runs.Find(node);
  }
};

// `value_at(r)` returns the node value of row r, for r in [0, n).
template <typename ValueAt>
ValueRuns BuildValueRuns(uint64_t n, ValueAt&& value_at) {
  ValueRuns out;
  out.runs.Reset(n);
  for (uint32_t r = 0; r < n; ++r) ++out.runs.FindOrInsert(value_at(r)).b;
  out.row_ids.resize(n);
  uint32_t off = 0;
  for (auto& slot : out.runs.slots()) {
    if (slot.key == kInvalidPre) continue;
    slot.a = off;
    off += slot.b;
    slot.b = 0;  // reused as the fill cursor; ends back at length
  }
  for (uint32_t r = 0; r < n; ++r) {
    auto& slot = out.runs.FindOrInsert(value_at(r));
    out.row_ids[slot.a + slot.b++] = r;
  }
  return out;
}

class ResultTable {
 public:
  ResultTable() = default;
  explicit ResultTable(size_t num_cols) : cols_(num_cols) {}

  // A one-column table over `nodes`.
  static ResultTable FromColumn(std::vector<Pre> nodes);

  size_t NumCols() const { return cols_.size(); }
  uint64_t NumRows() const { return cols_.empty() ? 0 : cols_[0].size(); }

  const std::vector<Pre>& Col(size_t i) const { return cols_[i]; }
  std::vector<Pre>& MutableCol(size_t i) { return cols_[i]; }

  // Appends one row; `row.size()` must equal NumCols().
  void AppendRow(std::span<const Pre> row);

  // Adds an empty column (used when a vertex joins into the component).
  size_t AddColumn() {
    cols_.emplace_back();
    return cols_.size() - 1;
  }

  // Keeps only the given columns, in the given order.
  ResultTable Project(std::span<const size_t> keep) const;

  // Keeps only the given rows, in the given order (duplicates allowed).
  ResultTable SelectRows(std::span<const uint32_t> rows) const;

  // Removes duplicate rows (hash-based); keeps first occurrence order.
  ResultTable DistinctRows() const;

  // Stable-sorts rows lexicographically by the given key columns in
  // document (pre) order — the τ numbering operator of the plan tail.
  ResultTable SortRows(std::span<const size_t> key_cols) const;

  // Sorted, duplicate-free nodes of column `col` — the semi-join-reduced
  // vertex table T(v) after an edge execution.
  std::vector<Pre> DistinctColumn(size_t col) const;

 private:
  std::vector<std::vector<Pre>> cols_;
};

// Combines `outer` and `inner` through join `pairs`, where
// pairs.left_rows index rows of `outer` and pairs.right_nodes must match
// the values of column `inner_col` of `inner`. The output has the
// columns of `outer` followed by the columns of `inner` and one row per
// (pair, matching inner row). This is the expansion step that turns a
// node-level join result into a component-level join result.
ResultTable JoinTablesWithPairs(const ResultTable& outer,
                                const JoinPairs& pairs,
                                const ResultTable& inner, size_t inner_col);

// Extends `outer` with a single new column: one output row per pair,
// copying the outer row and appending the matched node. Used when the
// edge's far vertex is not yet part of any component.
ResultTable ExtendTableWithPairs(const ResultTable& outer,
                                 const JoinPairs& pairs);

// Re-expresses `pairs` — whose left_rows index `distinct_nodes` and
// must be grouped by left row (as all pair-producing joins emit) —
// against `column`, a node column containing those nodes with
// duplicates: emits (r, s) for every column row r and pair (i, s) with
// distinct_nodes[i] == column[r]. Rows whose node produced no pairs
// are dropped (semi-join semantics). Lets an operator run once per
// distinct node and still join against a materialized component.
JoinPairs ExpandPairsOverColumn(const JoinPairs& pairs,
                                const std::vector<Pre>& distinct_nodes,
                                const std::vector<Pre>& column);

// Full cross product: |a|·|b| rows with a's columns followed by b's.
// Used to combine the results of disconnected Join Graph components
// (independent for-variables without a join predicate).
ResultTable CartesianProduct(const ResultTable& a, const ResultTable& b);

}  // namespace rox

#endif  // ROX_EXEC_RESULT_TABLE_H_
