#include "exec/structural_join.h"

#include <algorithm>

#include "common/check.h"
#include "exec/kernel_batch.h"

namespace rox {

namespace {

// First poll waits a full kCancelCheckRows interval, so τ-sized
// sampling calls never pay a clock read (DESIGN.md §13).
inline bool CancelCheckDue(uint64_t count) {
  return (count & (kCancelCheckRows - 1)) == 0;
}

// True if the index can accelerate this step: element-kind name test on
// an axis whose result is a contiguous pre range (possibly minus a few
// exclusions).
bool IndexUsable(const StepSpec& step, const ElementIndex* index) {
  if (index == nullptr) return false;
  if (step.name == kInvalidStringId) return false;
  if (step.kind != KindTest::kElem && step.kind != KindTest::kAnyKind) {
    return false;
  }
  switch (step.axis) {
    case Axis::kDescendant:
    case Axis::kDescendantOrSelf:
    case Axis::kFollowing:
    case Axis::kPreceding:
      return true;
    default:
      return false;
  }
}

}  // namespace

bool NodeMatchesTest(const Document& doc, Pre s, const StepSpec& step) {
  if (!MatchesKind(doc.Kind(s), step.kind)) return false;
  if (step.name != kInvalidStringId && doc.Name(s) != step.name) return false;
  return true;
}

bool NodeMatchesStep(const Document& doc, Pre c, Pre s, const StepSpec& step) {
  if (!NodeMatchesTest(doc, s, step)) return false;
  NodeKind sk = doc.Kind(s);
  bool s_is_attr = sk == NodeKind::kAttr;
  switch (step.axis) {
    case Axis::kSelf:
      return s == c;
    case Axis::kChild:
      return !s_is_attr && doc.Parent(s) == c;
    case Axis::kAttribute:
      return s_is_attr && doc.Parent(s) == c;
    case Axis::kParent:
      return doc.Parent(c) == s;
    case Axis::kDescendant:
      return !s_is_attr && doc.IsAncestor(c, s);
    case Axis::kDescendantOrSelf:
      return !s_is_attr && (s == c || doc.IsAncestor(c, s));
    case Axis::kAncestor:
      return doc.IsAncestor(s, c);
    case Axis::kAncestorOrSelf:
      return s == c || doc.IsAncestor(s, c);
    case Axis::kFollowing:
      return !s_is_attr && s > c + doc.Size(c);
    case Axis::kPreceding:
      return !s_is_attr && s < c && !doc.IsAncestor(s, c);
    case Axis::kFollowingSibling:
      return !s_is_attr && doc.Parent(s) == doc.Parent(c) &&
             s > c + doc.Size(c);
    case Axis::kPrecedingSibling:
      return !s_is_attr && doc.Parent(s) == doc.Parent(c) && s < c;
  }
  return false;
}

namespace {

// Calls `sink(s)` for every node reachable from `c` via `step`, in
// document order. `sink` returns false to stop early (cut-off).
// Returns false iff the sink stopped the enumeration.
template <typename Sink>
bool EmitMatches(const Document& doc, Pre c, const StepSpec& step,
                 const ElementIndex* index, Sink&& sink) {
  auto test = [&](Pre s) { return NodeMatchesTest(doc, s, step); };
  auto is_attr = [&](Pre s) { return doc.Kind(s) == NodeKind::kAttr; };

  switch (step.axis) {
    case Axis::kSelf:
      if (test(c) && !sink(c)) return false;
      return true;

    case Axis::kAttribute: {
      Pre end = c + doc.Size(c);
      for (Pre q = c + 1; q <= end && is_attr(q); ++q) {
        if (test(q) && !sink(q)) return false;
      }
      return true;
    }

    case Axis::kChild: {
      Pre end = c + doc.Size(c);
      Pre q = c + 1;
      while (q <= end) {
        if (!is_attr(q) && test(q) && !sink(q)) return false;
        q += doc.Size(q) + 1;
      }
      return true;
    }

    case Axis::kDescendant:
    case Axis::kDescendantOrSelf: {
      if (step.axis == Axis::kDescendantOrSelf && !is_attr(c) && test(c) &&
          !sink(c)) {
        return false;
      }
      Pre end = c + doc.Size(c);
      if (IndexUsable(step, index)) {
        for (Pre s : index->RangeLookup(step.name, c, end)) {
          if (!sink(s)) return false;
        }
        return true;
      }
      for (Pre q = c + 1; q <= end; ++q) {
        if (!is_attr(q) && test(q) && !sink(q)) return false;
      }
      return true;
    }

    case Axis::kParent: {
      Pre p = doc.Parent(c);
      if (p != kInvalidPre && test(p) && !sink(p)) return false;
      return true;
    }

    case Axis::kAncestor:
    case Axis::kAncestorOrSelf: {
      // Collect bottom-up, emit in document order (top-down). The
      // stack buffer covers ordinary documents allocation-free; the
      // parser admits depths up to 65533, so chains beyond the buffer
      // spill into a growable overflow instead of being dropped.
      constexpr size_t kBufSize = 512;
      Pre buf[kBufSize];
      size_t n = 0;
      std::vector<Pre> overflow;
      Pre q = step.axis == Axis::kAncestorOrSelf ? c : doc.Parent(c);
      while (q != kInvalidPre) {
        if (test(q)) {
          if (n < kBufSize) {
            buf[n++] = q;
          } else {
            overflow.push_back(q);
          }
        }
        q = doc.Parent(q);
      }
      // Overflow holds the ancestors *above* the buffered ones, also
      // bottom-up: they come first in document order.
      for (size_t i = overflow.size(); i > 0; --i) {
        if (!sink(overflow[i - 1])) return false;
      }
      for (size_t i = n; i > 0; --i) {
        if (!sink(buf[i - 1])) return false;
      }
      return true;
    }

    case Axis::kFollowing: {
      Pre start = c + doc.Size(c);  // exclusive
      Pre last = doc.NodeCount() - 1;
      if (IndexUsable(step, index)) {
        for (Pre s : index->RangeLookup(step.name, start, last)) {
          if (!sink(s)) return false;
        }
        return true;
      }
      for (Pre q = start + 1; q <= last; ++q) {
        if (!is_attr(q) && test(q) && !sink(q)) return false;
      }
      return true;
    }

    case Axis::kPreceding: {
      if (IndexUsable(step, index)) {
        if (c == 0) return true;
        for (Pre s : index->RangeLookup(step.name, 0, c - 1)) {
          if (!doc.IsAncestor(s, c) && !sink(s)) return false;
        }
        return true;
      }
      for (Pre q = 1; q < c; ++q) {
        if (!is_attr(q) && !doc.IsAncestor(q, c) && test(q) && !sink(q)) {
          return false;
        }
      }
      return true;
    }

    case Axis::kFollowingSibling: {
      Pre p = doc.Parent(c);
      if (p == kInvalidPre) return true;
      Pre end = p + doc.Size(p);
      Pre q = c + doc.Size(c) + 1;
      while (q <= end) {
        if (!is_attr(q) && test(q) && !sink(q)) return false;
        q += doc.Size(q) + 1;
      }
      return true;
    }

    case Axis::kPrecedingSibling: {
      Pre p = doc.Parent(c);
      if (p == kInvalidPre) return true;
      Pre end = p + doc.Size(p);
      Pre q = p + 1;
      while (q <= end && q < c) {
        if (!is_attr(q) && test(q) && !sink(q)) return false;
        q += doc.Size(q) + 1;
      }
      return true;
    }
  }
  return true;
}

}  // namespace

namespace {

// Row-at-a-time fallback path.
void StructuralJoinScalar(const Document& doc, const PreColumn& context,
                          const StepSpec& step, uint64_t limit,
                          const ElementIndex* index, JoinPairs& out,
                          const CancellationToken* cancel) {
  for (size_t i = 0; i < context.size(); ++i) {
    if (CancelCheckDue(i + 1) && StopRequested(cancel)) {
      out.truncated = true;
      out.outer_consumed = i;
      return;
    }
    uint32_t row = static_cast<uint32_t>(i);
    bool completed =
        EmitMatches(doc, context[i], step, index, [&](Pre s) -> bool {
          out.left_rows.push_back(row);
          out.right_nodes.push_back(s);
          if (limit != kNoLimit && out.right_nodes.size() > limit) {
            return false;
          }
          return !(CancelCheckDue(out.right_nodes.size()) &&
                   StopRequested(cancel));
        });
    if (!completed) {
      StampTruncationStop(out, limit, i);
      return;
    }
  }
  out.truncated = false;
  out.outer_consumed = context.size();
}

// Batched path: per kKernelBatchRows of context rows, one governance
// poll at the batch boundary, then per row a bulk append of the
// contiguous index-range match span where the axis allows it
// (descendant, descendant-or-self, following with a usable index);
// every other axis emits through a BatchEmitter-backed sink, which
// still centralizes the sentinel and output-growth-poll protocols.
void StructuralJoinBatched(const Document& doc, const PreColumn& context,
                           const StepSpec& step, uint64_t limit,
                           const ElementIndex* index, JoinPairs& out,
                           const CancellationToken* cancel) {
  BatchEmitter em(out, limit, cancel);
  const bool indexed = IndexUsable(step, index);
  const bool bulk_range =
      indexed && (step.axis == Axis::kDescendant ||
                  step.axis == Axis::kDescendantOrSelf ||
                  step.axis == Axis::kFollowing);
  for (size_t i0 = 0; i0 < context.size(); i0 += kKernelBatchRows) {
    if (i0 > 0 && StopRequested(cancel)) {
      out.truncated = true;
      out.outer_consumed = i0;
      return;
    }
    size_t bn = std::min(kKernelBatchRows, context.size() - i0);
    for (size_t b = 0; b < bn; ++b) {
      uint32_t row = static_cast<uint32_t>(i0 + b);
      Pre c = context[i0 + b];
      BatchEmitter::Stop stop = BatchEmitter::Stop::kNone;
      if (bulk_range) {
        if (step.axis == Axis::kDescendantOrSelf &&
            doc.Kind(c) != NodeKind::kAttr && NodeMatchesTest(doc, c, step)) {
          stop = em.Push(row, c);
        }
        if (stop == BatchEmitter::Stop::kNone) {
          std::span<const Pre> range =
              step.axis == Axis::kFollowing
                  ? index->RangeLookup(step.name, c + doc.Size(c),
                                       doc.NodeCount() - 1)
                  : index->RangeLookup(step.name, c, c + doc.Size(c));
          stop = em.Append(row, range);
        }
      } else {
        bool completed = EmitMatches(doc, c, step, index, [&](Pre s) {
          stop = em.Push(row, s);
          return stop == BatchEmitter::Stop::kNone;
        });
        (void)completed;  // `stop` carries the cause
      }
      if (stop != BatchEmitter::Stop::kNone) {
        StampTruncationStop(out, limit, i0 + b);
        return;
      }
    }
  }
  out.truncated = false;
  out.outer_consumed = context.size();
}

}  // namespace

void StructuralJoinPairsInto(const Document& doc, const PreColumn& context,
                             const StepSpec& step, uint64_t limit,
                             const ElementIndex* index, JoinPairs& out,
                             const CancellationToken* cancel,
                             bool vectorized) {
  // Cut-off protocol: allow up to limit+1 pairs; producing the sentinel
  // (limit+1)-th pair proves the result was truncated, otherwise the
  // result is complete and exact. The reduction factor follows the
  // paper's f = max(r.rowid) / max(c.rowid). A cancellation trip stops
  // through the same unwinding; callers re-check the token.
  out.Clear();
  out.Reserve(limit != kNoLimit ? limit + 1 : context.size());
  if (vectorized) {
    StructuralJoinBatched(doc, context, step, limit, index, out, cancel);
  } else {
    StructuralJoinScalar(doc, context, step, limit, index, out, cancel);
  }
}

void StructuralJoinPairsInto(const Document& doc,
                             std::span<const Pre> context,
                             const StepSpec& step, uint64_t limit,
                             const ElementIndex* index, JoinPairs& out,
                             const CancellationToken* cancel,
                             bool vectorized) {
  StructuralJoinPairsInto(doc, PreColumn::FromSpan(context), step, limit,
                          index, out, cancel, vectorized);
}

JoinPairs StructuralJoinPairs(const Document& doc,
                              std::span<const Pre> context,
                              const StepSpec& step, uint64_t limit,
                              const ElementIndex* index,
                              const CancellationToken* cancel,
                              bool vectorized) {
  JoinPairs out;
  StructuralJoinPairsInto(doc, context, step, limit, index, out, cancel,
                          vectorized);
  return out;
}

std::vector<Pre> StructuralJoinDistinct(const Document& doc,
                                        std::span<const Pre> context,
                                        const StepSpec& step,
                                        const ElementIndex* index) {
  std::vector<Pre> out;

  // Staircase pruning for the descendant axes: a context node whose
  // subtree lies inside an earlier context node's subtree contributes no
  // new result nodes and is skipped outright; partially re-scanned
  // regions are deduplicated by the monotonicity of document order.
  if (step.axis == Axis::kDescendant || step.axis == Axis::kDescendantOrSelf) {
    bool any = false;
    Pre covered_end = 0;  // highest subtree end seen so far (inclusive)
    for (Pre c : context) {
      Pre hi = c + doc.Size(c);
      if (any && hi <= covered_end && c > 0 &&
          step.axis == Axis::kDescendant) {
        continue;  // fully covered by a previous context subtree
      }
      EmitMatches(doc, c, step, index, [&](Pre s) -> bool {
        if (out.empty() || s > out.back()) out.push_back(s);
        return true;
      });
      if (!any || hi > covered_end) covered_end = hi;
      any = true;
    }
    return out;
  }

  // Generic fallback: emit all pairs, dedupe.
  JoinPairs pairs = StructuralJoinPairs(doc, context, step, kNoLimit, index);
  out = std::move(pairs.right_nodes);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace rox
