#include "exec/result_view.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/check.h"

namespace rox {

ResultView ResultView::FromTable(const ResultTable& t) {
  ResultView out(t.NumCols(), t.NumRows());
  for (size_t c = 0; c < t.NumCols(); ++c) {
    out.cols_[c] = {t.Col(c).data(), nullptr};
  }
  return out;
}

std::span<const Pre> ResultView::GatherColumn(size_t c, ColumnArena& arena,
                                              GatherStats* stats) const {
  const Column& col = cols_[c];
  ROX_DCHECK(!col.dead);
  if (col.sel == nullptr) return {col.base, rows_};
  std::span<uint32_t> out = arena.Alloc(rows_);
  for (uint64_t r = 0; r < rows_; ++r) out[r] = col.base[col.sel[r]];
  if (stats != nullptr) {
    ++stats->gather_count;
    stats->bytes_gathered += rows_ * sizeof(Pre);
  }
  return {out.data(), out.size()};
}

void ResultView::GatherColumnInto(size_t c, std::vector<Pre>& out,
                                  GatherStats* stats) const {
  const Column& col = cols_[c];
  ROX_DCHECK(!col.dead);
  out.resize(rows_);
  if (rows_ == 0) return;
  if (col.sel == nullptr) {
    std::memcpy(out.data(), col.base, rows_ * sizeof(Pre));
  } else {
    for (uint64_t r = 0; r < rows_; ++r) out[r] = col.base[col.sel[r]];
  }
  if (stats != nullptr) {
    ++stats->gather_count;
    stats->bytes_gathered += rows_ * sizeof(Pre);
  }
}

ResultTable ResultView::Gather(GatherStats* stats) const {
  ResultTable out(cols_.size());
  for (size_t c = 0; c < cols_.size(); ++c) {
    GatherColumnInto(c, out.MutableCol(c), stats);
  }
  return out;
}

std::vector<Pre> ResultView::DistinctColumn(size_t c) const {
  const Column& col = cols_[c];
  ROX_DCHECK(!col.dead);
  std::unordered_set<Pre> seen;
  seen.reserve(rows_);
  if (rows_ == 0) return {};
  if (col.sel == nullptr) {
    seen.insert(col.base, col.base + rows_);
  } else {
    for (uint64_t r = 0; r < rows_; ++r) seen.insert(col.base[col.sel[r]]);
  }
  std::vector<Pre> out(seen.begin(), seen.end());
  std::sort(out.begin(), out.end());
  return out;
}

ResultView ComposeRows(const ResultView& v, std::span<const uint32_t> rows,
                       ColumnArena& arena, const std::vector<bool>* live) {
  ResultView out(v.NumCols(), rows.size());
  // Distinct old selection vector -> composed selection vector. A view
  // has very few distinct selection vectors (one per prior join at
  // most), so a flat scan beats hashing.
  std::vector<std::pair<const uint32_t*, const uint32_t*>> composed;
  for (size_t c = 0; c < v.NumCols(); ++c) {
    const ResultView::Column& old = v.col(c);
    if (old.dead || (live != nullptr && !(*live)[c])) {
      out.col(c).dead = true;  // dead before or dead now: no more writes
      continue;
    }
    if (old.sel == nullptr) {
      // Direct column: the row list IS its selection vector.
      out.col(c) = {old.base, rows.data()};
      continue;
    }
    const uint32_t* sel = nullptr;
    for (const auto& [from, to] : composed) {
      if (from == old.sel) {
        sel = to;
        break;
      }
    }
    if (sel == nullptr) {
      std::span<uint32_t> s = arena.Alloc(rows.size());
      for (size_t i = 0; i < rows.size(); ++i) s[i] = old.sel[rows[i]];
      sel = s.data();
      composed.emplace_back(old.sel, sel);
    }
    out.col(c) = {old.base, sel};
  }
  return out;
}

ResultView SelectRowsView(const ResultView& v,
                          std::span<const uint32_t> rows, ColumnArena& arena,
                          const std::vector<bool>* live) {
  std::span<uint32_t> stable = arena.Alloc(rows.size());
  if (!rows.empty()) {
    std::memcpy(stable.data(), rows.data(), rows.size() * sizeof(uint32_t));
  }
  return ComposeRows(v, {stable.data(), stable.size()}, arena, live);
}

ResultView ExtendViewWithPairs(const ResultView& outer, JoinPairs&& pairs,
                               ColumnArena& arena) {
  std::span<const uint32_t> rows = arena.Adopt(std::move(pairs.left_rows));
  ResultView out = ComposeRows(outer, rows, arena);
  out.AddColumn({arena.Adopt(std::move(pairs.right_nodes)).data(), nullptr});
  return out;
}

ResultView JoinViewsWithPairs(const ResultView& outer, const JoinPairs& pairs,
                              const ResultView& inner, size_t inner_col,
                              ColumnArena& arena,
                              const std::vector<bool>* live_outer,
                              const std::vector<bool>* live_inner) {
  // CSR index of the inner join column (shared construction with the
  // eager JoinTablesWithPairs, so the emitted row expansion is
  // identical).
  ValueRuns vr = BuildValueRuns(
      inner.NumRows(), [&](uint32_t r) { return inner.At(inner_col, r); });

  std::vector<uint32_t> orows, irows;
  orows.reserve(pairs.size());
  irows.reserve(pairs.size());
  for (uint64_t k = 0; k < pairs.size(); ++k) {
    const auto* run = vr.Find(pairs.right_nodes[k]);
    if (run == nullptr) continue;
    for (uint32_t j = 0; j < run->b; ++j) {
      orows.push_back(pairs.left_rows[k]);
      irows.push_back(vr.row_ids[run->a + j]);
    }
  }

  std::span<const uint32_t> ospan = arena.Adopt(std::move(orows));
  std::span<const uint32_t> ispan = arena.Adopt(std::move(irows));
  ResultView o = ComposeRows(outer, ospan, arena, live_outer);
  ResultView i = ComposeRows(inner, ispan, arena, live_inner);
  ResultView out(outer.NumCols() + inner.NumCols(), ospan.size());
  for (size_t c = 0; c < outer.NumCols(); ++c) out.col(c) = o.col(c);
  for (size_t c = 0; c < inner.NumCols(); ++c) {
    out.col(outer.NumCols() + c) = i.col(c);
  }
  return out;
}

}  // namespace rox
