#include "exec/result_table.h"

#include <algorithm>

#include "common/check.h"
#include "exec/flat_hash.h"

namespace rox {

ResultTable ResultTable::FromColumn(std::vector<Pre> nodes) {
  ResultTable t(1);
  t.cols_[0] = std::move(nodes);
  return t;
}

void ResultTable::AppendRow(std::span<const Pre> row) {
  ROX_DCHECK(row.size() == cols_.size());
  for (size_t i = 0; i < cols_.size(); ++i) cols_[i].push_back(row[i]);
}

ResultTable ResultTable::Project(std::span<const size_t> keep) const {
  ResultTable out(keep.size());
  for (size_t i = 0; i < keep.size(); ++i) {
    ROX_DCHECK(keep[i] < cols_.size());
    out.cols_[i] = cols_[keep[i]];
  }
  return out;
}

ResultTable ResultTable::SelectRows(std::span<const uint32_t> rows) const {
  ResultTable out(cols_.size());
  for (size_t c = 0; c < cols_.size(); ++c) {
    out.cols_[c].reserve(rows.size());
    for (uint32_t r : rows) out.cols_[c].push_back(cols_[c][r]);
  }
  return out;
}

namespace {

// 64-bit mix (splitmix64 finalizer) for row hashing.
inline uint64_t Mix(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  return h ^ (h >> 31);
}

}  // namespace

ResultTable ResultTable::DistinctRows() const {
  // Flat open-addressing row set (first-occurrence order preserved via
  // `keep`). The former per-hash bucket map (unordered_map<uint64_t,
  // vector<uint32_t>>) dominated whole-query profiles: an allocation
  // per distinct row plus a rehash cascade per assembly. Row hashes are
  // precomputed with one column-major sweep per column — the row-major
  // re-hash per probe was the second-largest cost.
  uint64_t n = NumRows();
  std::vector<uint32_t> keep;
  keep.reserve(n);
  if (n == 0) return SelectRows(keep);
  std::vector<uint64_t> hashes(n, 0x12345678ULL);
  for (const auto& col : cols_) {
    for (uint64_t r = 0; r < n; ++r) hashes[r] = Mix(hashes[r], col[r]);
  }
  constexpr uint32_t kEmptySlot = UINT32_MAX;
  size_t cap = 16;
  while (cap < n * 2) cap <<= 1;
  const size_t mask = cap - 1;
  std::vector<uint32_t> slots(cap, kEmptySlot);
  for (uint64_t r = 0; r < n; ++r) {
    size_t i = hashes[r] & mask;
    while (true) {
      uint32_t prev = slots[i];
      if (prev == kEmptySlot) {
        slots[i] = static_cast<uint32_t>(r);
        keep.push_back(static_cast<uint32_t>(r));
        break;
      }
      if (hashes[prev] == hashes[r]) {
        bool equal = true;
        for (const auto& col : cols_) {
          if (col[prev] != col[r]) {
            equal = false;
            break;
          }
        }
        if (equal) break;  // duplicate of an earlier row
      }
      i = (i + 1) & mask;
    }
  }
  return SelectRows(keep);
}

ResultTable ResultTable::SortRows(std::span<const size_t> key_cols) const {
  std::vector<uint32_t> order(NumRows());
  for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](uint32_t a, uint32_t b) {
                     for (size_t k : key_cols) {
                       if (cols_[k][a] != cols_[k][b]) {
                         return cols_[k][a] < cols_[k][b];
                       }
                     }
                     return false;
                   });
  return SelectRows(order);
}

std::vector<Pre> ResultTable::DistinctColumn(size_t col) const {
  // Hash-based dedup first: distinct nodes are typically far fewer than
  // rows, so sorting only the distinct set beats sorting the column.
  FlatRunMap<Pre, kInvalidPre> seen;
  seen.Reset(cols_[col].size());
  std::vector<Pre> out;
  for (Pre p : cols_[col]) {
    auto& slot = seen.FindOrInsert(p);
    if (slot.b == 0) {
      slot.b = 1;
      out.push_back(p);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

ResultTable JoinTablesWithPairs(const ResultTable& outer,
                                const JoinPairs& pairs,
                                const ResultTable& inner, size_t inner_col) {
  // CSR index of the inner join column: node -> contiguous row-id run.
  const std::vector<Pre>& icol = inner.Col(inner_col);
  ValueRuns vr = BuildValueRuns(icol.size(), [&](uint32_t r) { return icol[r]; });

  // Expand pairs into aligned (outer row, inner row) index lists.
  std::vector<uint32_t> orows, irows;
  orows.reserve(pairs.size());
  irows.reserve(pairs.size());
  for (uint64_t k = 0; k < pairs.size(); ++k) {
    const auto* run = vr.Find(pairs.right_nodes[k]);
    if (run == nullptr) continue;
    for (uint32_t j = 0; j < run->b; ++j) {
      orows.push_back(pairs.left_rows[k]);
      irows.push_back(vr.row_ids[run->a + j]);
    }
  }

  // Column-wise gather.
  ResultTable out(outer.NumCols() + inner.NumCols());
  for (size_t c = 0; c < outer.NumCols(); ++c) {
    const std::vector<Pre>& src = outer.Col(c);
    std::vector<Pre>& dst = out.MutableCol(c);
    dst.resize(orows.size());
    for (size_t k = 0; k < orows.size(); ++k) dst[k] = src[orows[k]];
  }
  for (size_t c = 0; c < inner.NumCols(); ++c) {
    const std::vector<Pre>& src = inner.Col(c);
    std::vector<Pre>& dst = out.MutableCol(outer.NumCols() + c);
    dst.resize(irows.size());
    for (size_t k = 0; k < irows.size(); ++k) dst[k] = src[irows[k]];
  }
  return out;
}

JoinPairs ExpandPairsOverColumn(const JoinPairs& pairs,
                                const std::vector<Pre>& distinct_nodes,
                                const std::vector<Pre>& column) {
  // Runs of consecutive equal left rows -> (first pair index, length),
  // keyed by the context node (distinct, so each key inserts once).
  FlatRunMap<Pre, kInvalidPre> runs;
  runs.Reset(distinct_nodes.size());
  for (uint32_t k = 0; k < pairs.size();) {
    uint32_t start = k;
    uint32_t left = pairs.left_rows[k];
    while (k < pairs.size() && pairs.left_rows[k] == left) ++k;
    auto& slot = runs.FindOrInsert(distinct_nodes[left]);
    slot.a = start;
    slot.b = k - start;
  }
  JoinPairs out;
  for (uint32_t r = 0; r < column.size(); ++r) {
    const auto* run = runs.Find(column[r]);
    if (run == nullptr) continue;
    for (uint32_t j = 0; j < run->b; ++j) {
      out.left_rows.push_back(r);
      out.right_nodes.push_back(pairs.right_nodes[run->a + j]);
    }
  }
  out.truncated = pairs.truncated;
  out.outer_consumed = column.size();
  return out;
}

ResultTable CartesianProduct(const ResultTable& a, const ResultTable& b) {
  ResultTable out(a.NumCols() + b.NumCols());
  uint64_t na = a.NumRows(), nb = b.NumRows();
  for (size_t c = 0; c < a.NumCols(); ++c) {
    std::vector<Pre>& dst = out.MutableCol(c);
    dst.reserve(na * nb);
    for (uint64_t i = 0; i < na; ++i) {
      dst.insert(dst.end(), nb, a.Col(c)[i]);
    }
  }
  for (size_t c = 0; c < b.NumCols(); ++c) {
    std::vector<Pre>& dst = out.MutableCol(a.NumCols() + c);
    dst.reserve(na * nb);
    for (uint64_t i = 0; i < na; ++i) {
      dst.insert(dst.end(), b.Col(c).begin(), b.Col(c).end());
    }
  }
  return out;
}

ResultTable ExtendTableWithPairs(const ResultTable& outer,
                                 const JoinPairs& pairs) {
  ResultTable out(outer.NumCols() + 1);
  for (size_t c = 0; c < outer.NumCols(); ++c) {
    const std::vector<Pre>& src = outer.Col(c);
    std::vector<Pre>& dst = out.MutableCol(c);
    dst.resize(pairs.size());
    for (size_t k = 0; k < pairs.size(); ++k) {
      dst[k] = src[pairs.left_rows[k]];
    }
  }
  out.MutableCol(outer.NumCols()) = pairs.right_nodes;
  return out;
}

}  // namespace rox
