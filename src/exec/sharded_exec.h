// Per-shard fan-out wrappers around the physical join operators.
//
// A full (un-cut-off) materialization step takes a document-ordered
// context/probe node list and produces a JoinPairs. The wrappers here
// split that input — at the shard node-id boundaries for structural
// joins (pre-locality), into K order-preserving chunks for value joins
// (the probe side of an equi-join is sometimes an intermediate column
// that is not pre-sorted) — run the underlying operator per part on
// the shard pool, and merge the partial results by concatenation with
// a row-offset fix-up.
//
// Because each part processes a disjoint, order-contiguous slice of
// the input and the underlying operators emit pairs grouped by input
// row, the merged JoinPairs is byte-for-byte the sequential operator's
// output: sharded execution changes wall-clock time, never results.
//
// Cut-off (sampled) executions are deliberately NOT fanned out: their
// outputs are bounded by tau and the cut-off protocol ("stop after l
// tuples") is inherently sequential.
//
// Epochs (DESIGN.md §10): every wrapper receives the ShardedExec
// bundle of the query's *pinned* snapshot — one bundle per published
// epoch, packaged and kept alive with the corpus and sharded view it
// points at — so a publish mid-query can never swap the indexes a
// fan-out is reading.

#ifndef ROX_EXEC_SHARDED_EXEC_H_
#define ROX_EXEC_SHARDED_EXEC_H_

#include <span>
#include <vector>

#include "exec/structural_join.h"
#include "exec/value_join.h"
#include "index/sharded_corpus.h"

namespace rox {

// Fan-out counters: how many materialization steps actually fanned out
// and how many rows each shard (or chunk) lane produced across them.
// The sequential fallbacks leave the stats untouched, so `fanouts`
// counts real parallel executions only.
struct ShardFanoutStats {
  uint64_t fanouts = 0;
  std::vector<uint64_t> shard_rows;

  // The most recent real fan-out: its width (lanes) and the rows each
  // lane produced. The query trace reads these right after an edge
  // execution to record that edge's fan-out payload (obs/trace.h);
  // callers reset them before executing when they want the per-edge
  // delta. Sequential fallbacks leave them untouched.
  uint64_t last_lanes = 0;
  std::vector<uint64_t> last_lane_rows;

  void ResetLastFanout() {
    last_lanes = 0;
    last_lane_rows.clear();
  }

  void Merge(const ShardFanoutStats& other) {
    fanouts += other.fanouts;
    if (shard_rows.size() < other.shard_rows.size()) {
      shard_rows.resize(other.shard_rows.size(), 0);
    }
    for (size_t s = 0; s < other.shard_rows.size(); ++s) {
      shard_rows[s] += other.shard_rows[s];
    }
  }
};

// Un-merged fan-out output: one JoinPairs per lane (shard or chunk),
// in input order, plus each lane's input-row offset. The lazy executor
// consumes the parts directly — flattening them once into arena-backed
// view columns with the offsets applied — instead of paying a merge
// copy followed by a gather copy. `Merged()` recovers the sequential
// operator's byte-identical JoinPairs for eager consumers.
struct ShardedJoinParts {
  std::vector<JoinPairs> parts;
  std::vector<uint32_t> offsets;  // input-row offset per lane
  uint64_t outer_total = 0;

  uint64_t size() const {
    uint64_t n = 0;
    for (const JoinPairs& p : parts) n += p.size();
    return n;
  }

  // Concatenates the lanes, shifting each lane's left_rows by its
  // offset — exactly the sequential operator's output.
  JoinPairs Merged() &&;
};

// Structural join fanned out at the shard boundaries of `ctx_doc` (the
// document the context nodes belong to; for step edges it equals the
// target document). `context` must be pre-sorted — vertex tables T(v)
// always are. Falls back to a single sequential lane when `ex` is null
// or has a single shard.
//
// All wrappers accept an optional CancellationToken, handed to every
// lane's kernel: the lanes poll the shared token independently, so the
// first trip stops the siblings within one polling interval. Partial
// lane outputs are merged as usual; callers re-check the token before
// consuming the merge (DESIGN.md §13).
//
// The trailing `vectorized` flag selects each lane's kernel path
// (value_join.h): the batched default or the row-at-a-time fallback,
// byte-identical either way. PreColumn overloads exist for the probe-
// side fan-outs so a lazy ResultView column feeds the lanes without an
// intermediate gather (each lane probes a positional Sub slice).
ShardedJoinParts ShardedStructuralJoinParts(
    const ShardedExec* ex, DocId ctx_doc, const Document& target_doc,
    std::span<const Pre> context, const StepSpec& step,
    const ElementIndex* index, ShardFanoutStats* stats,
    const CancellationToken* cancel = nullptr, bool vectorized = true);

// Hash equi-join with a single shared build side and per-chunk
// parallel probes (the probe side need not be sorted).
ShardedJoinParts ShardedHashValueJoinParts(
    const ShardedExec* ex, const Document& outer_doc,
    std::span<const Pre> outer, const Document& inner_doc,
    std::span<const Pre> inner, ShardFanoutStats* stats,
    const CancellationToken* cancel = nullptr, bool vectorized = true);
ShardedJoinParts ShardedHashValueJoinParts(
    const ShardedExec* ex, const Document& outer_doc,
    const PreColumn& outer, const Document& inner_doc,
    std::span<const Pre> inner, ShardFanoutStats* stats,
    const CancellationToken* cancel = nullptr, bool vectorized = true);

// Index nested-loop equi-join with per-chunk parallel probes into the
// (full) inner value index.
ShardedJoinParts ShardedValueIndexJoinParts(
    const ShardedExec* ex, const Document& outer_doc,
    std::span<const Pre> outer, const Document& inner_doc,
    const ValueIndex& inner_index, const ValueProbeSpec& spec,
    ShardFanoutStats* stats, const CancellationToken* cancel = nullptr,
    bool vectorized = true);
ShardedJoinParts ShardedValueIndexJoinParts(
    const ShardedExec* ex, const Document& outer_doc,
    const PreColumn& outer, const Document& inner_doc,
    const ValueIndex& inner_index, const ValueProbeSpec& spec,
    ShardFanoutStats* stats, const CancellationToken* cancel = nullptr,
    bool vectorized = true);

// Theta join (`op` != kEq) with per-chunk parallel probes into the
// inner index's pre-sorted runs (see value_join.h). Probing is
// read-only on the index, so lanes share it without synchronization.
ShardedJoinParts ShardedValueIndexThetaJoinParts(
    const ShardedExec* ex, const Document& outer_doc,
    std::span<const Pre> outer, const Document& inner_doc,
    const ValueIndex& inner_index, const ValueProbeSpec& spec, CmpOp op,
    ShardFanoutStats* stats, const CancellationToken* cancel = nullptr,
    bool vectorized = true);

// Theta join against a materialized inner node list: builds the sorted
// ThetaRun once, then probes it from per-chunk parallel lanes (the
// theta counterpart of the shared-build hash fan-out).
ShardedJoinParts ShardedSortThetaJoinParts(
    const ShardedExec* ex, const Document& outer_doc,
    std::span<const Pre> outer, const Document& inner_doc,
    std::span<const Pre> inner, CmpOp op, ShardFanoutStats* stats,
    const CancellationToken* cancel = nullptr, bool vectorized = true);

// Merged (eager) wrappers over the Parts functions. A single-lane
// fallback returns the lane's pairs directly, without a merge copy.
JoinPairs ShardedStructuralJoinPairs(
    const ShardedExec* ex, DocId ctx_doc, const Document& target_doc,
    std::span<const Pre> context, const StepSpec& step,
    const ElementIndex* index, ShardFanoutStats* stats,
    const CancellationToken* cancel = nullptr, bool vectorized = true);

JoinPairs ShardedHashValueJoinPairs(
    const ShardedExec* ex, const Document& outer_doc,
    std::span<const Pre> outer, const Document& inner_doc,
    std::span<const Pre> inner, ShardFanoutStats* stats,
    const CancellationToken* cancel = nullptr, bool vectorized = true);
JoinPairs ShardedHashValueJoinPairs(
    const ShardedExec* ex, const Document& outer_doc,
    const PreColumn& outer, const Document& inner_doc,
    std::span<const Pre> inner, ShardFanoutStats* stats,
    const CancellationToken* cancel = nullptr, bool vectorized = true);

JoinPairs ShardedValueIndexJoinPairs(
    const ShardedExec* ex, const Document& outer_doc,
    std::span<const Pre> outer, const Document& inner_doc,
    const ValueIndex& inner_index, const ValueProbeSpec& spec,
    ShardFanoutStats* stats, const CancellationToken* cancel = nullptr,
    bool vectorized = true);
JoinPairs ShardedValueIndexJoinPairs(
    const ShardedExec* ex, const Document& outer_doc,
    const PreColumn& outer, const Document& inner_doc,
    const ValueIndex& inner_index, const ValueProbeSpec& spec,
    ShardFanoutStats* stats, const CancellationToken* cancel = nullptr,
    bool vectorized = true);

}  // namespace rox

#endif  // ROX_EXEC_SHARDED_EXEC_H_
