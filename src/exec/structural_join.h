// Structural (XPath step) joins over the pre/size/level encoding.
//
// These implement the staircase-join operator family of the paper's
// Table 1: D_k/axis(C, S). Two variants are provided:
//
//  * StructuralJoinPairs — pair-producing, per outer row, in input-row
//    order; this is the form used to extend materialized component
//    relations and for cut-off sampled execution. It is zero-investment
//    with respect to the context input C: per context node only its
//    axis-local region (children, subtree range, parent chain, index
//    range) is touched, never the full document.
//
//  * StructuralJoinDistinct — classic staircase semantics: given a
//    duplicate-free, document-ordered context, produce the duplicate-
//    free, document-ordered result node set, pruning overlapping context
//    ranges (the "staircase" trick) for descendant/ancestor axes.
//
// Axis semantics notes: attribute nodes live inline in the pre numbering
// (directly after their owner element) but are excluded from all axes
// except `attribute` and `self`, matching XPath. The document node can
// appear on ancestor axes.

#ifndef ROX_EXEC_STRUCTURAL_JOIN_H_
#define ROX_EXEC_STRUCTURAL_JOIN_H_

#include <span>

#include "engine/governor.h"
#include "exec/join_result.h"
#include "exec/kernel_batch.h"
#include "index/element_index.h"
#include "xml/document.h"

namespace rox {

// An XPath step test: axis plus node test (kind and optional name).
struct StepSpec {
  Axis axis = Axis::kChild;
  KindTest kind = KindTest::kAnyKind;
  StringId name = kInvalidStringId;  // element/attribute name restriction

  static StepSpec Child(StringId name) {
    return {Axis::kChild, KindTest::kElem, name};
  }
  static StepSpec Descendant(StringId name) {
    return {Axis::kDescendant, KindTest::kElem, name};
  }
  static StepSpec ChildText() {
    return {Axis::kChild, KindTest::kText, kInvalidStringId};
  }
  static StepSpec Attribute(StringId name) {
    return {Axis::kAttribute, KindTest::kAttr, name};
  }
};

// Pair-producing structural join. For each context row (in order), emits
// (row index, matched node) for every node of `doc` reachable via
// `step`, result nodes in document order within a row. Stops once
// `limit` pairs were produced (kNoLimit = unlimited). If `index` is
// non-null it accelerates name-tested descendant/following/preceding
// steps with range lookups. A non-null `cancel` token is polled once per
// kCancelCheckRows pairs and stops the join through the truncation
// protocol (DESIGN.md §13). The vectorized default (DESIGN.md §14)
// processes the context in kKernelBatchRows batches and bulk-appends
// the contiguous index-range matches; `vectorized = false` selects the
// original row-at-a-time fallback (byte-identical output for any limit
// and an un-tripped token).
JoinPairs StructuralJoinPairs(const Document& doc,
                              std::span<const Pre> context,
                              const StepSpec& step, uint64_t limit = kNoLimit,
                              const ElementIndex* index = nullptr,
                              const CancellationToken* cancel = nullptr,
                              bool vectorized = true);

// Allocation-free variant: clears and refills `out`, reusing its
// buffers' capacity. Hot callers (the sampled-execution loops) keep one
// scratch JoinPairs alive across calls instead of allocating per probe.
void StructuralJoinPairsInto(const Document& doc,
                             std::span<const Pre> context,
                             const StepSpec& step, uint64_t limit,
                             const ElementIndex* index, JoinPairs& out,
                             const CancellationToken* cancel = nullptr,
                             bool vectorized = true);

// Selection-vector-aware entry point (lazy views join without a
// gather).
void StructuralJoinPairsInto(const Document& doc, const PreColumn& context,
                             const StepSpec& step, uint64_t limit,
                             const ElementIndex* index, JoinPairs& out,
                             const CancellationToken* cancel = nullptr,
                             bool vectorized = true);

// Distinct-result staircase join: `context` must be duplicate-free and
// sorted by pre. Returns the distinct result node set in document order.
std::vector<Pre> StructuralJoinDistinct(const Document& doc,
                                        std::span<const Pre> context,
                                        const StepSpec& step,
                                        const ElementIndex* index = nullptr);

// True iff node `s` is reachable from context node `c` via `step`.
// Used to evaluate a step edge that closes a cycle inside an already
// joined component (a per-row filter instead of a join).
bool NodeMatchesStep(const Document& doc, Pre c, Pre s, const StepSpec& step);

// True iff node `s` passes the kind/name node test of `step`.
bool NodeMatchesTest(const Document& doc, Pre s, const StepSpec& step);

}  // namespace rox

#endif  // ROX_EXEC_STRUCTURAL_JOIN_H_
