// Value-based equi-join operators and value selection predicates.
//
// The paper's relational join edges compare node *values*: text-node
// content, attribute values, or (through the single text child) element
// content. Three physical algorithms are provided, mirroring Table 1:
//
//  * ValueIndexJoinPairs — nested-loop index lookup through the inner
//    document's value index: zero-investment w.r.t. the outer input,
//    hence usable for cut-off sampling (cost |C| + |R|).
//  * HashValueJoinPairs  — builds a hash table on the inner input
//    (cost |C| + |S| + |R|); not zero-investment, used only for full
//    edge execution, never for sampling.
//  * MergeValueJoinPairs — merge join over inputs sorted by value id
//    (cost min(|C|,|S|) + |R| when the inner is pre-sorted).
//
// Vectorized execution (DESIGN.md §14): every probe kernel has two
// paths selected by its trailing `vectorized` flag. The vectorized
// default processes the outer input in fixed-size batches of
// kKernelBatchRows rows — one value pre-pass materializes NodeValue
// (and the cached numeric interpretation) for the whole batch into
// flat arrays, then the probe/emission loop runs over those arrays
// with bulk appends wherever the match set is a contiguous span
// (index runs, hash-table payload groups, range-join prefixes or
// suffixes). The `false` path is the original row-at-a-time loop,
// retained as the differential fallback (RoxOptions::vectorized_
// kernels). Both paths emit byte-identical pairs, truncation flags and
// outer_consumed for every limit; only cancellation *stop points* may
// differ (a tripped result is discarded by the caller either way).

#ifndef ROX_EXEC_VALUE_JOIN_H_
#define ROX_EXEC_VALUE_JOIN_H_

#include <span>
#include <vector>

#include "engine/governor.h"
#include "exec/flat_hash.h"
#include "exec/join_result.h"
#include "exec/kernel_batch.h"
#include "index/value_index.h"
#include "xml/document.h"

namespace rox {

// Every kernel below takes an optional CancellationToken. A non-null
// token is polled once per kCancelCheckRows produced (or consumed)
// rows; on a trip the kernel stops early through the same truncation
// protocol a cut-off limit uses (out.truncated set, partial pairs) —
// callers detect governance stops by re-checking the token, never by
// the flag (DESIGN.md §13).

// The interned comparison value of node `p`: the value of a text or
// attribute node, or the single-text-child value of an element
// (kInvalidStringId if the element has 0 or >1 text children).
StringId NodeValue(const Document& doc, Pre p);

// Describes which inner nodes an equi-join probe may match.
struct ValueProbeSpec {
  NodeKind kind = NodeKind::kText;          // kText or kAttr
  StringId attr_name = kInvalidStringId;    // restrict attribute name
  StringId owner_elem = kInvalidStringId;   // restrict attr owner element

  static ValueProbeSpec Text() { return {NodeKind::kText, kInvalidStringId,
                                         kInvalidStringId}; }
  static ValueProbeSpec Attr(StringId name) {
    return {NodeKind::kAttr, name, kInvalidStringId};
  }
};

// Index nested-loop equi-join: for each outer row, probes `inner_index`
// (of `inner_doc`) for nodes with equal value, in document order. Obeys
// the cut-off `limit` like StructuralJoinPairs.
JoinPairs ValueIndexJoinPairs(const Document& outer_doc,
                              std::span<const Pre> outer,
                              const Document& inner_doc,
                              const ValueIndex& inner_index,
                              const ValueProbeSpec& spec,
                              uint64_t limit = kNoLimit,
                              const CancellationToken* cancel = nullptr,
                              bool vectorized = true);

// Allocation-free variant: clears and refills `out`, reusing its
// buffers' capacity (see StructuralJoinPairsInto).
void ValueIndexJoinPairsInto(const Document& outer_doc,
                             std::span<const Pre> outer,
                             const Document& inner_doc,
                             const ValueIndex& inner_index,
                             const ValueProbeSpec& spec, uint64_t limit,
                             JoinPairs& out,
                             const CancellationToken* cancel = nullptr,
                             bool vectorized = true);

// Selection-vector-aware entry point (lazy views probe without a
// gather).
void ValueIndexJoinPairsInto(const Document& outer_doc,
                             const PreColumn& outer,
                             const Document& inner_doc,
                             const ValueIndex& inner_index,
                             const ValueProbeSpec& spec, uint64_t limit,
                             JoinPairs& out,
                             const CancellationToken* cancel = nullptr,
                             bool vectorized = true);

// Hash equi-join: builds value -> inner positions, probes with outer.
// Pairs reference outer rows and inner *nodes*.
JoinPairs HashValueJoinPairs(const Document& outer_doc,
                             std::span<const Pre> outer,
                             const Document& inner_doc,
                             std::span<const Pre> inner,
                             const CancellationToken* cancel = nullptr,
                             bool vectorized = true);

// The build side of the hash equi-join, split out so a sharded
// execution can build the table once and probe it from several threads
// concurrently (Probe is const and allocation-free on the table).
//
// The table is a flat open-addressing map (exec/flat_hash.h) over a
// payload array holding each value's matching nodes contiguously in
// build-input order — built once with two passes (count, scatter), so
// probing returns a bulk-copyable span with no per-probe allocation
// and the emitted pair order is identical to the former per-value
// bucket map.
class ValueHashTable {
 public:
  ValueHashTable(const Document& inner_doc, std::span<const Pre> inner);

  // The build-side nodes whose value is `v`, in build-input order.
  std::span<const Pre> Lookup(StringId v) const {
    const auto* s = by_value_.Find(v);
    if (s == nullptr) return {};
    return {payload_.data() + s->a, s->b};
  }

  // Probes with `outer`; identical to the probe loop of
  // HashValueJoinPairs. Emitted left_rows index into `outer`.
  JoinPairs Probe(const Document& outer_doc, std::span<const Pre> outer,
                  const CancellationToken* cancel = nullptr,
                  bool vectorized = true) const;

  // Allocation-free probe into a caller-reused buffer.
  void ProbeInto(const Document& outer_doc, std::span<const Pre> outer,
                 JoinPairs& out,
                 const CancellationToken* cancel = nullptr,
                 bool vectorized = true) const;

  // Selection-vector-aware probe (lazy views probe without a gather).
  void ProbeInto(const Document& outer_doc, const PreColumn& outer,
                 JoinPairs& out,
                 const CancellationToken* cancel = nullptr,
                 bool vectorized = true) const;

 private:
  FlatRunMap<StringId, kInvalidStringId> by_value_;  // a = offset, b = len
  std::vector<Pre> payload_;
};

// --- theta (range / inequality) value joins ---------------------------------
//
// Sort-based kernels for the five non-equality comparison operators
// (DESIGN.md §11). Range operators probe a run of inner entries sorted
// ascending by (numeric value, pre): each outer row binary-searches the
// boundary and emits a contiguous prefix/suffix of the run, so cost is
// O(|outer| log |inner| + |result|). `!=` compares interned string ids
// (like kEq) and scans the inner candidates in document order, skipping
// the equal-valued ones. Two run sources exist:
//  * ValueIndexThetaJoinPairs — reads the inner ValueIndex's pre-sorted
//    numeric projection / all-node lists: zero-investment w.r.t. the
//    outer input, hence usable for cut-off sampling (the theta
//    counterpart of ValueIndexJoinPairs).
//  * ThetaRun::Build + ThetaRunJoinPairsInto — sorts a materialized
//    inner node list once (|inner| log |inner|) and probes the private
//    run; preferable when the inner vertex table has been semi-join-
//    reduced far below the full index run. Probing is const and
//    allocation-free on the run, so sharded lanes share one build.
// Per outer row both sources emit the identical sequence — ascending
// (value, pre) for range operators, document order for `!=` — so every
// execution mode produces the same pairs after table filtering.

// Prebuilt probe target over a materialized inner node list.
struct ThetaRun {
  std::vector<ValueIndex::NumEntry> numeric;  // (value, pre) ascending
  std::vector<Pre> valued;  // nodes with any value, document order

  static ThetaRun Build(const Document& inner_doc,
                        std::span<const Pre> inner);
};

// Index nested-loop theta join through the inner document's value
// index; `op` must not be kEq (equality goes through the hash lookups
// above). Obeys the cut-off `limit` protocol of ValueIndexJoinPairs.
void ValueIndexThetaJoinPairsInto(const Document& outer_doc,
                                  std::span<const Pre> outer,
                                  const Document& inner_doc,
                                  const ValueIndex& inner_index,
                                  const ValueProbeSpec& spec, CmpOp op,
                                  uint64_t limit, JoinPairs& out,
                                  const CancellationToken* cancel = nullptr,
                                  bool vectorized = true);
JoinPairs ValueIndexThetaJoinPairs(const Document& outer_doc,
                                   std::span<const Pre> outer,
                                   const Document& inner_doc,
                                   const ValueIndex& inner_index,
                                   const ValueProbeSpec& spec, CmpOp op,
                                   uint64_t limit = kNoLimit,
                                   const CancellationToken* cancel = nullptr,
                                   bool vectorized = true);

// Theta probe against a prebuilt run (see ThetaRun::Build).
void ThetaRunJoinPairsInto(const Document& outer_doc,
                           std::span<const Pre> outer,
                           const Document& inner_doc, const ThetaRun& run,
                           CmpOp op, uint64_t limit, JoinPairs& out,
                           const CancellationToken* cancel = nullptr,
                           bool vectorized = true);

// One-shot convenience: Build + probe over a materialized inner list.
JoinPairs SortThetaJoinPairs(const Document& outer_doc,
                             std::span<const Pre> outer,
                             const Document& inner_doc,
                             std::span<const Pre> inner, CmpOp op,
                             uint64_t limit = kNoLimit,
                             const CancellationToken* cancel = nullptr,
                             bool vectorized = true);

// Merge equi-join over inputs that the caller pre-sorted with
// SortByValueId. Produces the same pair multiset as the hash join.
// The vectorized path materializes both sides' value ids once (one
// NodeValue per input row instead of one per comparison) and
// bulk-copies each equal-value group's cross product.
JoinPairs MergeValueJoinPairs(const Document& outer_doc,
                              std::span<const Pre> outer_sorted,
                              const Document& inner_doc,
                              std::span<const Pre> inner_sorted,
                              const CancellationToken* cancel = nullptr,
                              bool vectorized = true);

// Sorts node list by (value id, pre); nodes without a value sort last
// and never join. Decorate-sort-undecorate: one NodeValue per node,
// not one per comparison.
std::vector<Pre> SortByValueId(const Document& doc, std::span<const Pre> nodes);

// --- selection predicates ---------------------------------------------------

// Nodes whose value equals `v`.
std::vector<Pre> FilterValueEquals(const Document& doc,
                                   std::span<const Pre> nodes, StringId v);

// Nodes whose numeric value lies in `range` (non-numeric values drop).
std::vector<Pre> FilterNumericRange(const Document& doc,
                                    std::span<const Pre> nodes,
                                    const NumericRange& range);

}  // namespace rox

#endif  // ROX_EXEC_VALUE_JOIN_H_
