#include "workload/dblp.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/check.h"
#include "common/str_util.h"

namespace rox {

const char* AreaName(Area a) {
  switch (a) {
    case Area::kAI:
      return "AI";
    case Area::kBI:
      return "BI";
    case Area::kDM:
      return "DM";
    case Area::kIR:
      return "IR";
    case Area::kDB:
      return "DB";
  }
  return "?";
}

const std::vector<DblpDocSpec>& Table3Documents() {
  static const std::vector<DblpDocSpec>* kDocs = new std::vector<DblpDocSpec>{
      {"FuzzyLogicAI", {Area::kAI}, 62},
      {"AIinMedicine", {Area::kAI}, 2264},
      {"AAAI", {Area::kAI}, 6832},
      {"CANS", {Area::kAI, Area::kBI}, 214},
      {"BMCBioinform", {Area::kBI}, 3547},
      {"Bioinformatics", {Area::kBI}, 15019},
      {"BIOKDD", {Area::kDM, Area::kBI}, 139},
      {"MLDM", {Area::kDM}, 575},
      {"ICDM", {Area::kDM}, 2205},
      {"KDD", {Area::kDM}, 3201},
      {"WSDM", {Area::kDM, Area::kIR}, 95},
      {"INEX", {Area::kIR}, 342},
      {"SPIRE", {Area::kIR}, 724},
      {"TREC", {Area::kIR}, 2541},
      {"SIGIR", {Area::kIR}, 4584},
      {"ICME", {Area::kIR}, 5757},
      {"ICIP", {Area::kIR}, 7935},
      {"CIKM", {Area::kDB, Area::kIR}, 3684},
      {"ADBIS", {Area::kDB}, 947},
      {"EDBT", {Area::kDB}, 1340},
      {"SIGMOD", {Area::kDB}, 5912},
      {"ICDE", {Area::kDB}, 6169},
      {"VLDB", {Area::kDB}, 6865},
  };
  return *kDocs;
}

namespace {

// Scaled tag count for a document (at least 2).
uint64_t ScaledTags(uint64_t base, double tag_scale) {
  uint64_t t = static_cast<uint64_t>(std::llround(base * tag_scale));
  return std::max<uint64_t>(t, 2);
}

struct Pools {
  // Per-area list of author names.
  std::array<std::vector<std::string>, kNumAreas> by_area;
};

Pools BuildPools(const DblpGenOptions& options) {
  // Pool size per area from the full Table 3 (independent of subset).
  std::array<uint64_t, kNumAreas> area_tags{};
  for (const DblpDocSpec& spec : Table3Documents()) {
    uint64_t tags = ScaledTags(spec.author_tags, options.tag_scale);
    for (Area a : spec.areas) {
      area_tags[static_cast<int>(a)] += tags / spec.areas.size();
    }
  }
  Pools pools;
  for (int a = 0; a < kNumAreas; ++a) {
    uint64_t n = std::max<uint64_t>(
        8, static_cast<uint64_t>(area_tags[a] / options.pool_div));
    pools.by_area[a].reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      pools.by_area[a].push_back(
          StrCat(AreaName(static_cast<Area>(a)), "_author_", i));
    }
  }
  return pools;
}

// Per-document random permutations of each area pool (decorrelating the
// Zipf popularity ranking between venues that share a pool) plus the
// venue's celebrity-arc offsets.
struct DocPerms {
  std::array<std::vector<uint32_t>, kNumAreas> perm;
  std::array<uint64_t, kNumAreas> celeb_offset;

  DocPerms(const Pools& pools, Rng& rng) {
    for (int a = 0; a < kNumAreas; ++a) {
      perm[a].resize(pools.by_area[a].size());
      for (uint32_t i = 0; i < perm[a].size(); ++i) perm[a][i] = i;
      rng.Shuffle(perm[a]);
      celeb_offset[a] = rng.Next();
    }
  }
};

// Number of celebrities of an area pool.
uint64_t CelebCount(size_t pool_size, const DblpGenOptions& options) {
  uint64_t celebs = std::max<uint64_t>(
      8, static_cast<uint64_t>(pool_size / options.celeb_div));
  return std::min<uint64_t>(celebs, pool_size);
}

// Draws one author name for a document of `spec`.
const std::string& DrawAuthor(const DblpDocSpec& spec, const Pools& pools,
                              const DocPerms& perms,
                              const DblpGenOptions& options, Rng& rng) {
  int area;
  bool noise = rng.Bernoulli(options.cross_area_noise);
  if (noise) {
    area = static_cast<int>(rng.Below(kNumAreas));
  } else {
    // Uniformly one of the venue's own areas (two-area venues split
    // their tags between both pools — that is what makes them bridges).
    area = static_cast<int>(
        spec.areas[rng.Below(spec.areas.size())]);
  }
  const std::vector<std::string>& pool = pools.by_area[area];
  if (noise || rng.Bernoulli(options.global_share)) {
    // Uniform over the venue's celebrity arc: a contiguous window of
    // the area's celebrity ring, placed per (venue, area).
    uint64_t celebs = CelebCount(pool.size(), options);
    uint64_t arc = std::max<uint64_t>(
        4, static_cast<uint64_t>(celebs * options.community_frac));
    arc = std::min(arc, celebs);
    uint64_t start = perms.celeb_offset[area] % celebs;
    return pool[(start + rng.Below(arc)) % celebs];
  }
  uint64_t rank = rng.Zipf(pool.size(), options.zipf_s);
  return pool[perms.perm[area][rank]];
}

struct Article {
  std::vector<const std::string*> authors;  // pointers into the pools
  std::string title;
  int year;
};

// Base articles: distribute the scaled tag budget over articles with
// 1..2*avg authors each.
std::vector<Article> GenerateArticles(const DblpDocSpec& spec,
                                      const Pools& pools,
                                      const DblpGenOptions& options,
                                      Rng& rng) {
  uint64_t tags = ScaledTags(spec.author_tags, options.tag_scale);
  std::vector<Article> base;
  DocPerms perms(pools, rng);
  uint64_t assigned = 0;
  int article_no = 0;
  while (assigned < tags) {
    Article art;
    uint64_t max_a = std::max<uint64_t>(
        1, static_cast<uint64_t>(2 * options.authors_per_article) - 1);
    uint64_t n = 1 + rng.Below(max_a);
    n = std::min(n, tags - assigned);
    for (uint64_t i = 0; i < n; ++i) {
      art.authors.push_back(&DrawAuthor(spec, pools, perms, options, rng));
    }
    art.title = StrCat("A study in ", spec.name, " no ", article_no);
    art.year = 1990 + (article_no % 20);
    ++article_no;
    assigned += n;
    base.push_back(std::move(art));
  }
  return base;
}

// Suffix helper for the ×scale replication (§4.1: replicated articles
// carry serial-number suffixes on author names and titles, preserving
// the distribution while avoiding duplicates).
std::string WithRep(const std::string& s, uint32_t rep, uint32_t scale) {
  if (scale == 1) return s;
  return StrCat(s, "#", rep);
}

std::string GenerateDocXml(const DblpDocSpec& spec,
                           const std::vector<Article>& base,
                           const DblpGenOptions& options) {
  std::string xml;
  xml.reserve(base.size() * options.scale * 96);
  xml += StrCat("<venue name=\"", spec.name, "\">\n");
  for (uint32_t rep = 0; rep < options.scale; ++rep) {
    for (size_t i = 0; i < base.size(); ++i) {
      const Article& art = base[i];
      xml += StrCat("<article key=\"", spec.name, "/", i, "#", rep, "\">");
      for (const std::string* a : art.authors) {
        xml += StrCat("<author>", WithRep(*a, rep, options.scale),
                      "</author>");
      }
      xml += StrCat("<title>", WithRep(art.title, rep, options.scale),
                    "</title>");
      xml += StrCat("<year>", art.year, "</year>");
      xml += "</article>\n";
    }
  }
  xml += "</venue>\n";
  return xml;
}

Result<std::unique_ptr<Document>> GenerateDocDirect(
    const DblpDocSpec& spec, const std::vector<Article>& base,
    const DblpGenOptions& options, std::shared_ptr<StringPool> pool) {
  DocumentBuilder b(spec.name, std::move(pool));
  b.StartElement("venue");
  b.Attribute("name", spec.name);
  for (uint32_t rep = 0; rep < options.scale; ++rep) {
    for (size_t i = 0; i < base.size(); ++i) {
      const Article& art = base[i];
      b.StartElement("article");
      b.Attribute("key", StrCat(spec.name, "/", i, "#", rep));
      for (const std::string* a : art.authors) {
        b.StartElement("author");
        b.Text(WithRep(*a, rep, options.scale));
        b.EndElement();
      }
      b.StartElement("title");
      b.Text(WithRep(art.title, rep, options.scale));
      b.EndElement();
      b.StartElement("year");
      b.Text(StrCat(art.year));
      b.EndElement();
      b.EndElement();
    }
  }
  b.EndElement();
  return std::move(b).Finish();
}

}  // namespace

Result<Corpus> GenerateDblpCorpus(const DblpGenOptions& options) {
  std::vector<int> all(Table3Documents().size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);
  return GenerateDblpCorpus(options, all);
}

Result<Corpus> GenerateDblpCorpus(const DblpGenOptions& options,
                                  const std::vector<int>& doc_indices) {
  Corpus corpus;
  ROX_RETURN_IF_ERROR(
      AddDblpDocuments(corpus, options, doc_indices).status());
  return corpus;
}

Result<std::vector<DocId>> AddDblpDocuments(
    Corpus& corpus, const DblpGenOptions& options,
    const std::vector<int>& doc_indices) {
  Pools pools = BuildPools(options);
  const std::vector<DblpDocSpec>& specs = Table3Documents();
  std::vector<DocId> out;
  out.reserve(doc_indices.size());
  for (int idx : doc_indices) {
    if (idx < 0 || idx >= static_cast<int>(specs.size())) {
      return Status::InvalidArgument(StrCat("bad document index ", idx));
    }
    // Per-document RNG derived from the corpus seed and the document
    // identity, so a document's content does not depend on which other
    // documents were generated.
    Rng rng(options.seed ^ (0x9e3779b97f4a7c15ULL * (idx + 1)));
    std::vector<Article> articles =
        GenerateArticles(specs[idx], pools, options, rng);
    if (options.via_xml_text) {
      std::string xml = GenerateDocXml(specs[idx], articles, options);
      ROX_ASSIGN_OR_RETURN(DocId id, corpus.AddXml(xml, specs[idx].name));
      out.push_back(id);
    } else {
      ROX_ASSIGN_OR_RETURN(
          std::unique_ptr<Document> doc,
          GenerateDocDirect(specs[idx], articles, options, corpus.pool()));
      ROX_ASSIGN_OR_RETURN(DocId id, corpus.Add(std::move(doc)));
      out.push_back(id);
    }
  }
  return out;
}

std::string DblpAuthorYearQuery(const std::string& doc1,
                                const std::string& doc2, CmpOp op) {
  return StrCat("for $a in doc(\"", doc1, "\")//article, $b in doc(\"",
                doc2, "\")//article\n", "where $a/author = $b/author and ",
                "$a/year ", CmpOpName(op), " $b/year\n", "return $a");
}

DblpQueryGraph BuildDblpJoinGraph(const Corpus& corpus,
                                  const std::vector<DocId>& docs,
                                  bool add_equivalence_closure,
                                  bool prune_root_edges) {
  DblpQueryGraph out;
  StringId author = corpus.string_pool().Find("author");
  ROX_CHECK(author != kInvalidStringId);
  for (size_t i = 0; i < docs.size(); ++i) {
    DocId d = docs[i];
    VertexId root = out.graph.AddRoot(d, StrCat("root(", corpus.doc(d).name(), ")"));
    VertexId a = out.graph.AddElement(
        d, author, StrCat("author@", corpus.doc(d).name()));
    VertexId t = out.graph.AddText(d, ValuePredicate::None(),
                                   StrCat("text()@", corpus.doc(d).name()));
    out.graph.AddStep(root, Axis::kDescendant, a);
    out.graph.AddStep(a, Axis::kChild, t);
    out.roots.push_back(root);
    out.authors.push_back(a);
    out.texts.push_back(t);
  }
  // where $a1/text() = $ai/text() — a star from the first variable.
  for (size_t i = 1; i < docs.size(); ++i) {
    out.graph.AddEquiJoin(out.texts[0], out.texts[i]);
  }
  if (add_equivalence_closure) out.graph.AddEquivalenceClosure();
  if (prune_root_edges) out.graph.PruneRedundantRootEdges();
  return out;
}

std::vector<std::pair<StringId, uint32_t>> AuthorValueHistogram(
    const Corpus& corpus, DocId doc_id) {
  const Document& doc = corpus.doc(doc_id);
  StringId author = corpus.string_pool().Find("author");
  std::unordered_map<StringId, uint32_t> hist;
  for (Pre p : corpus.element_index(doc_id).Lookup(author)) {
    StringId v = doc.SingleTextChildValue(p);
    if (v != kInvalidStringId) ++hist[v];
  }
  std::vector<std::pair<StringId, uint32_t>> out(hist.begin(), hist.end());
  std::sort(out.begin(), out.end());
  return out;
}

uint64_t PairJoinSize(const Corpus& corpus, DocId d1, DocId d2) {
  auto h1 = AuthorValueHistogram(corpus, d1);
  auto h2 = AuthorValueHistogram(corpus, d2);
  uint64_t total = 0;
  size_t i = 0, j = 0;
  while (i < h1.size() && j < h2.size()) {
    if (h1[i].first < h2[j].first) {
      ++i;
    } else if (h1[i].first > h2[j].first) {
      ++j;
    } else {
      total += static_cast<uint64_t>(h1[i].second) * h2[j].second;
      ++i;
      ++j;
    }
  }
  return total;
}

double CorrelationC(const Corpus& corpus, const std::array<DocId, 4>& docs) {
  // Author-tag counts.
  std::array<double, 4> tags{};
  StringId author = corpus.string_pool().Find("author");
  for (int i = 0; i < 4; ++i) {
    tags[i] =
        static_cast<double>(corpus.element_index(docs[i]).Count(author));
  }
  std::vector<double> js;
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) {
      double join = static_cast<double>(PairJoinSize(corpus, docs[i], docs[j]));
      js.push_back(join * 100.0 / std::max(tags[i], tags[j]));
    }
  }
  double mean = 0;
  for (double v : js) mean += v;
  mean /= js.size();
  double c = 0;
  for (double v : js) c += (v - mean) * (v - mean);
  return c / js.size();
}

std::string AreaGroup(const std::vector<DblpDocSpec>& specs,
                      const std::array<int, 4>& spec_indices) {
  std::array<int, kNumAreas> count{};
  for (int idx : spec_indices) {
    // Primary (first listed) area.
    ++count[static_cast<int>(specs[idx].areas[0])];
  }
  std::vector<int> nonzero;
  for (int c : count) {
    if (c > 0) nonzero.push_back(c);
  }
  std::sort(nonzero.rbegin(), nonzero.rend());
  if (nonzero.size() == 1) return "4:0";
  if (nonzero.size() == 2 && nonzero[0] == 3) return "3:1";
  if (nonzero.size() == 2 && nonzero[0] == 2) return "2:2";
  return "";
}

}  // namespace rox
