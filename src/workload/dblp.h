// Synthetic DBLP-like corpus generator.
//
// The paper's experiments (§4.1) split the real DBLP dataset into ~4500
// per-venue documents and select 23 "representative" documents from 5
// research areas (Table 3), scaled ×1/×10/×100 by replicating articles
// with serial-number suffixes on author names and titles. We do not
// have DBLP, so we synthesize a corpus with the same observable
// structure:
//
//  * the 23 documents of Table 3, with the same per-document
//    author-tag counts (optionally down-scaled for quick runs),
//  * per-area author pools with Zipf-distributed productivity, so that
//    documents of the same area share many authors (high join hit
//    ratios / correlation) while cross-area overlap comes only from a
//    small interdisciplinary population — exactly the correlation
//    structure the ROX experiments rely on,
//  * the ×n scaling rule of the paper: every article is replicated n
//    times with "#k" suffixes, preserving distribution and correlation.
//
// Document shape:
//   <venue name="VLDB">
//     <article key="VLDB/0">
//       <author>NAME</author>...  <title>..</title>  <year>..</year>
//     </article>...
//   </venue>

#ifndef ROX_WORKLOAD_DBLP_H_
#define ROX_WORKLOAD_DBLP_H_

#include <array>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "graph/join_graph.h"
#include "index/corpus.h"

namespace rox {

// The five research areas of Table 3.
enum class Area : uint8_t { kAI = 0, kBI, kDM, kIR, kDB };
inline constexpr int kNumAreas = 5;
const char* AreaName(Area a);

// One venue/document of Table 3.
struct DblpDocSpec {
  std::string name;
  std::vector<Area> areas;    // 1 or 2 areas
  uint64_t author_tags;       // ×1 author-tag count from Table 3
};

// The 23 documents of Table 3 (names normalized to identifiers).
const std::vector<DblpDocSpec>& Table3Documents();

struct DblpGenOptions {
  // Article replication factor (the paper's ×1 / ×10 / ×100).
  uint32_t scale = 1;
  // Multiplier on the Table 3 author-tag counts (e.g. 0.1 to shrink the
  // corpus for fast CI runs while keeping relative sizes).
  double tag_scale = 1.0;
  // Average <author> tags per article (DBLP is ~2.5).
  double authors_per_article = 2.5;
  // Zipf exponent of author productivity within a venue's pool. Each
  // document applies its own random permutation of the pool before the
  // Zipf draw, so venues of one area share *authors* but not the exact
  // popularity ranking — keeping multi-way join fan-out realistic.
  double zipf_s = 0.7;
  // Fraction of in-area draws taken uniformly from the area's small
  // "celebrity" subset (the first pool_size/celeb_div pool entries):
  // celebrities publish in every venue of their area with modest
  // per-venue frequency, carrying the same-area correlation without
  // blowing up multi-way join fan-out. Noise (cross-area) draws always
  // target celebrities, so interdisciplinary matches exist but are rare.
  double global_share = 0.15;
  double celeb_div = 50.0;
  // Each venue draws its celebrities from a random contiguous arc
  // covering this fraction of the area's celebrity ring. Arc overlap
  // between two venues varies from empty to complete, independent of
  // venue size — the selectivity variance that burns a smallest-
  // input-first classical optimizer exactly as §4.3 describes.
  double community_frac = 0.5;
  // Generate through XML text + parser instead of building the shredded
  // document directly. Both paths produce identical documents; the text
  // path exercises the parser, the direct path is ~4x faster and is the
  // default for experiment harnesses.
  bool via_xml_text = false;
  // Fraction of a document's author tags drawn from pools of areas the
  // venue does NOT belong to (background noise that keeps cross-area
  // joins non-empty).
  double cross_area_noise = 0.01;
  // Pool sizing: distinct authors per area ≈ area_tag_total / pool_div.
  double pool_div = 3.0;
  uint64_t seed = 20090629;  // SIGMOD'09 started June 29
};

// Generates the full 23-document corpus.
Result<Corpus> GenerateDblpCorpus(const DblpGenOptions& options);

// Generates only the given subset of Table 3 documents (indices into
// Table3Documents()); pools are still sized from the full table so
// overlap statistics do not depend on the subset.
Result<Corpus> GenerateDblpCorpus(const DblpGenOptions& options,
                                  const std::vector<int>& doc_indices);

// Adds the given Table 3 documents to an existing corpus (which may
// already hold other documents, e.g. an XMark document — the engine
// benches serve mixed workloads from one shared corpus). Document
// content is identical to GenerateDblpCorpus's: each document's RNG is
// derived from the seed and the document identity alone. Returns the
// assigned DocIds in doc_indices order.
Result<std::vector<DocId>> AddDblpDocuments(Corpus& corpus,
                                            const DblpGenOptions& options,
                                            const std::vector<int>& doc_indices);

// --- the 4-way author query of §4.1 -----------------------------------------

// Join Graph of the DBLP query template (Figure 4): per document a
// root --//-- author --/-- text() chain, plus equi-joins between the
// text() vertices ($a1/text() = $ai/text()), optionally closed into the
// full equivalence clique (the dotted edges) and with redundant root
// steps pruned.
struct DblpQueryGraph {
  JoinGraph graph;
  std::vector<VertexId> roots;
  std::vector<VertexId> authors;
  std::vector<VertexId> texts;
};

DblpQueryGraph BuildDblpJoinGraph(const Corpus& corpus,
                                  const std::vector<DocId>& docs,
                                  bool add_equivalence_closure = true,
                                  bool prune_root_edges = true);

// --- theta-join query generator (DESIGN.md §11) ------------------------------

// Author-equality + year-theta query joining two Table 3 documents:
//   for $a in doc(d1)//article, $b in doc(d2)//article
//   where $a/author = $b/author and $a/year OP $b/year
//   return $a
// The author equality bounds the join (same correlation structure as
// the 4-way query); the year comparison adds a theta edge that closes
// a cycle through the two articles. `op` = kEq degenerates to a pure
// conjunctive equality query (useful as a differential baseline).
std::string DblpAuthorYearQuery(const std::string& doc1,
                                const std::string& doc2, CmpOp op);

// --- correlation machinery (§4.2) --------------------------------------------

// Histogram of author text values of one document: value id -> tag count.
std::vector<std::pair<StringId, uint32_t>> AuthorValueHistogram(
    const Corpus& corpus, DocId doc);

// |di ⋈ dj| — the author-text equi-join cardinality of two documents
// (Σ_v f_i(v) · f_j(v)).
uint64_t PairJoinSize(const Corpus& corpus, DocId d1, DocId d2);

// The correlation measure C of §4.2: the variance of the pairwise join
// selectivities js(di,dj) = |di ⋈ dj| * 100 / max(|di|,|dj|), where
// |d| is the author-tag count of d.
double CorrelationC(const Corpus& corpus, const std::array<DocId, 4>& docs);

// Classifies a 4-document combination by its area distribution:
// "2:2", "3:1", "4:0", or "" when it does not fall into the paper's
// three groups (venues with two areas count once per area; the paper's
// grouping uses the primary area, we use the first listed).
std::string AreaGroup(const std::vector<DblpDocSpec>& specs,
                      const std::array<int, 4>& spec_indices);

}  // namespace rox

#endif  // ROX_WORKLOAD_DBLP_H_
