#include "workload/xmark.h"

#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "common/str_util.h"

namespace rox {

Result<DocId> GenerateXmarkDocument(Corpus& corpus,
                                    const XmarkGenOptions& options,
                                    std::string doc_name) {
  Rng rng(options.seed);
  std::string xml;
  xml.reserve(options.open_auctions * 256);
  xml += "<site>\n<regions>\n";
  for (uint32_t i = 0; i < options.items; ++i) {
    int quantity = rng.Bernoulli(options.quantity_one_prob)
                       ? 1
                       : static_cast<int>(2 + rng.Below(4));
    xml += StrCat("<item id=\"item", i, "\"><quantity>", quantity,
                  "</quantity><name>thing ", i,
                  "</name><payment>Creditcard</payment></item>\n");
  }
  xml += "</regions>\n<people>\n";
  for (uint32_t i = 0; i < options.persons; ++i) {
    xml += StrCat("<person id=\"person", i, "\"><name>user ", i, "</name>");
    if (rng.Bernoulli(options.education_prob)) {
      xml += "<profile><education>Graduate School</education></profile>";
    }
    if (rng.Bernoulli(options.province_prob)) {
      xml += StrCat("<province>prov", rng.Below(12), "</province>");
    }
    xml += "</person>\n";
  }
  xml += "</people>\n<open_auctions>\n";
  for (uint32_t i = 0; i < options.open_auctions; ++i) {
    double price = rng.NextDouble() * options.max_price;
    // The injected correlation: expected bidder count grows with price.
    double expected =
        options.bidders_base +
        options.bidders_slope * options.bidders_span *
            std::pow(price / options.max_price, options.bidders_exponent);
    int64_t jitter = rng.Between(-1, 1);
    int bidders = static_cast<int>(std::llround(expected) + jitter);
    if (bidders < 0) bidders = 0;
    xml += StrCat("<open_auction id=\"open_auction", i, "\"><current>",
                  static_cast<int>(price), "</current><itemref item=\"item",
                  rng.Below(options.items), "\"/>");
    for (int b = 0; b < bidders; ++b) {
      xml += StrCat("<bidder><personref person=\"person",
                    rng.Below(options.persons), "\"/><increase>",
                    1 + rng.Below(9), "</increase></bidder>");
    }
    if (rng.Bernoulli(options.reserve_prob)) {
      xml += StrCat("<reserve>", static_cast<int>(price * 0.8), "</reserve>");
    }
    xml += "</open_auction>\n";
  }
  xml += "</open_auctions>\n</site>\n";
  return corpus.AddXml(xml, std::move(doc_name));
}

XmarkQ1Graph BuildXmarkQ1Graph(const Corpus& corpus, DocId doc,
                               double price_threshold, bool less_than,
                               bool prune_root_edges) {
  Corpus& c = const_cast<Corpus&>(corpus);
  auto name = [&](const char* s) { return c.Intern(s); };

  XmarkQ1Graph g;
  JoinGraph& jg = g.graph;
  g.root = jg.AddRoot(doc, "root(xmark)");
  g.open_auction = jg.AddElement(doc, name("open_auction"), "open_auction");
  g.current = jg.AddElement(doc, name("current"), "current");
  NumericRange range = less_than ? NumericRange::LessThan(price_threshold)
                                 : NumericRange::GreaterThan(price_threshold);
  g.current_text =
      jg.AddText(doc, ValuePredicate::Range(range),
                 StrCat("text()", less_than ? "<" : ">", price_threshold));
  g.bidder = jg.AddElement(doc, name("bidder"), "bidder");
  g.personref = jg.AddElement(doc, name("personref"), "personref");
  g.at_person = jg.AddAttribute(doc, name("person"),
                                ValuePredicate::None(), "@person");
  g.itemref = jg.AddElement(doc, name("itemref"), "itemref");
  g.at_item = jg.AddAttribute(doc, name("item"), ValuePredicate::None(),
                              "@item");
  g.person = jg.AddElement(doc, name("person"), "person");
  g.province = jg.AddElement(doc, name("province"), "province");
  g.person_id = jg.AddAttribute(doc, name("id"), ValuePredicate::None(),
                                "@id(person)");
  g.item = jg.AddElement(doc, name("item"), "item");
  g.quantity = jg.AddElement(doc, name("quantity"), "quantity");
  g.quantity_text = jg.AddText(
      doc, ValuePredicate::Equals(c.Intern("1")), "text()=1");
  g.item_id = jg.AddAttribute(doc, name("id"), ValuePredicate::None(),
                              "@id(item)");

  // Steps (Figure 3.1).
  jg.AddStep(g.root, Axis::kDescendant, g.open_auction);
  jg.AddStep(g.root, Axis::kDescendant, g.person);
  jg.AddStep(g.root, Axis::kDescendant, g.item);
  jg.AddStep(g.open_auction, Axis::kDescendant, g.current);
  jg.AddStep(g.current, Axis::kChild, g.current_text);
  jg.AddStep(g.open_auction, Axis::kDescendant, g.bidder);
  jg.AddStep(g.bidder, Axis::kDescendant, g.personref);
  jg.AddStep(g.personref, Axis::kChild, g.at_person);
  jg.AddStep(g.open_auction, Axis::kDescendant, g.itemref);
  jg.AddStep(g.itemref, Axis::kChild, g.at_item);
  jg.AddStep(g.person, Axis::kDescendant, g.province);
  jg.AddStep(g.person, Axis::kChild, g.person_id);
  jg.AddStep(g.item, Axis::kChild, g.quantity);
  jg.AddStep(g.quantity, Axis::kChild, g.quantity_text);
  jg.AddStep(g.item, Axis::kChild, g.item_id);

  // Value joins.
  jg.AddEquiJoin(g.at_person, g.person_id);
  jg.AddEquiJoin(g.at_item, g.item_id);

  if (prune_root_edges) jg.PruneRedundantRootEdges();
  return g;
}

std::string XmarkQuantityIncreaseQuery(CmpOp op, int quantity_guard,
                                       const std::string& doc_name) {
  std::string items = StrCat("$d//item");
  if (quantity_guard > 0) {
    items = StrCat(items, "[./quantity = ", quantity_guard, "]");
  }
  return StrCat("let $d := doc(\"", doc_name, "\")\n", "for $i in ", items,
                ", $b in $d//bidder\n", "where $i/quantity ", CmpOpName(op),
                " $b/increase\n", "return $i");
}

std::string XmarkPriceThetaQuery(CmpOp op, int lo, int hi,
                                 const std::string& doc_name) {
  return StrCat("let $d := doc(\"", doc_name, "\")\n",
                "for $a in $d//open_auction[.//current/text() < ", lo,
                "],\n", "    $b in $d//open_auction[.//current/text() > ",
                hi, "]\n", "where $a//reserve ", CmpOpName(op),
                " $b//current\n", "return $a");
}

std::string XmarkDisjunctiveQuantityQuery(int q1, int q2,
                                          const std::string& doc_name) {
  return StrCat("let $d := doc(\"", doc_name, "\")\n",
                "for $i in $d//item[./quantity = ", q1,
                " or ./quantity = ", q2, "],\n",
                "    $o in $d//open_auction\n",
                "where $o//itemref/@item = $i/@id\n", "return $i");
}

}  // namespace rox
