// XMark-like auction document generator with an injected correlation
// between the current price of an auction and its number of bidders.
//
// §3.2 of the paper builds its running example (queries Q1 / Qm1,
// Figure 3, Table 2) on the XMark benchmark document and on the fact
// that "the bigger the current price of an item, the higher the number
// of bidders participating in the bid" — a correlation a static
// optimizer cannot see. The generator makes that correlation explicit
// and tunable.
//
// Document shape (a subset of XMark sufficient for Q1/Qm1):
//   <site>
//     <regions><item id="item0"><quantity>1</quantity>
//              <name>..</name><payment>..</payment></item>...</regions>
//     <people><person id="person0"><name>..</name>
//             [<profile><education>..</education></profile>]
//             [<province>..</province>]</person>...</people>
//     <open_auctions><open_auction id="open_auction0">
//        <current>137</current>
//        <itemref item="item17"/>
//        <bidder><personref person="person3"/><increase>3</increase>
//        </bidder> × (correlated with current)
//        [<reserve>..</reserve>]
//     </open_auction>...</open_auctions>
//   </site>

#ifndef ROX_WORKLOAD_XMARK_H_
#define ROX_WORKLOAD_XMARK_H_

#include <string>

#include "common/status.h"
#include "graph/join_graph.h"
#include "index/corpus.h"
#include "index/value_index.h"

namespace rox {

// Entity proportions follow the paper's Figure 3.1 annotations
// (auctions 24K, items 43.5K, persons 51K, province 11.2K, bidders
// 133K), scaled down by default to 1/10.
struct XmarkGenOptions {
  uint32_t items = 4350;
  uint32_t persons = 5100;
  uint32_t open_auctions = 2400;
  // Prices are uniform in [0, max_price].
  double max_price = 250.0;
  // Expected bidders of an auction priced p:
  //   bidders_base + bidders_slope * bidders_span * (p/max_price)^bidders_exponent
  // (plus ±1 noise). With the defaults, auctions below a 145 threshold
  // average <1 bidder while auctions above it average ~6 — strong
  // enough that the cheap side's bidder branch is the most selective
  // route (executed early, Figure 3.3) while the expensive side's is
  // the least (deferred, Figure 3.4).
  double bidders_base = 1.5;
  double bidders_span = 11.0;
  double bidders_slope = 1.0;
  double bidders_exponent = 2.0;
  // Probability a person has a <province> / an <education> entry, and
  // an item has quantity 1 (vs 2..5). Province is the *selective* end
  // of the bidder route (11.2K of 51K persons in the paper's figure);
  // quantity=1 is the mild end of the itemref route.
  double province_prob = 0.22;
  double education_prob = 0.5;
  double quantity_one_prob = 0.8;
  // Probability an auction has a <reserve>.
  double reserve_prob = 0.6;
  uint64_t seed = 0xabcdef12;
};

// Generates the auction document and adds it to `corpus` under
// `doc_name` (default "xmark.xml").
Result<DocId> GenerateXmarkDocument(Corpus& corpus,
                                    const XmarkGenOptions& options,
                                    std::string doc_name = "xmark.xml");

// --- Join Graph of query Q1 / Qm1 (§3.2, Figure 3.1) -------------------------
//
// for $o in //open_auction[.//current/text() < P],
//     $p in //person[.//province],
//     $i in //item[./quantity = 1]
// where $o//bidder//personref/@person = $p/@id
//   and $o//itemref/@item = $i/@id
// return $o
//
// `less_than` selects Q1 (text() < P) vs Qm1 (text() > P).
struct XmarkQ1Graph {
  JoinGraph graph;
  VertexId root, open_auction, current, current_text;
  VertexId bidder, personref, at_person;
  VertexId itemref, at_item;
  VertexId person, province, person_id;
  VertexId item, quantity, quantity_text, item_id;
};

XmarkQ1Graph BuildXmarkQ1Graph(const Corpus& corpus, DocId doc,
                               double price_threshold, bool less_than,
                               bool prune_root_edges = true);

// --- theta-join query generators (DESIGN.md §11) -----------------------------
//
// Parameterized XQuery texts exercising the theta edge class on the
// XMark document; `doc_name` defaults to the generator's default. All
// six CmpOps are accepted; operators other than kEq compile to theta
// edges over the bounded numeric domains of the document (quantity
// 1..5, increase 1..9, prices 0..max_price).

// Item quantities against bidder increases:
//   for $i in //item, $b in //bidder where $i/quantity OP $b/increase.
// `quantity_guard` > 0 restricts items to [./quantity = guard] so the
// outer side stays selective.
std::string XmarkQuantityIncreaseQuery(CmpOp op, int quantity_guard = 0,
                                       const std::string& doc_name =
                                           "xmark.xml");

// Cross-auction price theta join: reserves of auctions priced below
// `lo` against currents of auctions priced above `hi`:
//   for $a in //open_auction[.//current/text() < lo],
//       $b in //open_auction[.//current/text() > hi]
//   where $a//reserve OP $b//current.
// Integer thresholds: the generated documents carry integer prices.
std::string XmarkPriceThetaQuery(CmpOp op, int lo, int hi,
                                 const std::string& doc_name = "xmark.xml");

// Disjunctive step predicate riding the Q1 itemref join: items whose
// quantity is q1 or q2, joined to their auctions.
std::string XmarkDisjunctiveQuantityQuery(int q1, int q2,
                                          const std::string& doc_name =
                                              "xmark.xml");

}  // namespace rox

#endif  // ROX_WORKLOAD_XMARK_H_
