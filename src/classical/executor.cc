#include "classical/executor.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <unordered_map>

#include "common/check.h"
#include "common/str_util.h"
#include "common/timer.h"
#include "exec/column_arena.h"
#include "exec/result_table.h"
#include "exec/result_view.h"
#include "exec/sharded_exec.h"
#include "exec/structural_join.h"
#include "exec/value_join.h"
#include "workload/dblp.h"

namespace rox {

namespace {

// A partially executed per-document (or joined multi-document)
// partition. Columns alternate [author?, text] per stepped doc and
// [text] per un-stepped doc; `join_value_col` points at a text column
// usable as the join value (all text columns of a partition have equal
// values once joined); `text_col_of[i]` maps doc index -> its text
// column. An eager run materializes `table`; a lazy run keeps `view`
// (selection vectors over the run's arena) instead — join sizes are
// identical either way.
struct Partition {
  ResultTable table;
  ResultView view;
  std::vector<int> docs;                    // doc indices joined in
  std::unordered_map<int, size_t> text_col_of;
  size_t join_value_col = 0;
};

}  // namespace

CanonicalPlanExecutor::CanonicalPlanExecutor(const Corpus& corpus,
                                             std::vector<DocId> docs,
                                             const ShardedExec* sharded,
                                             bool lazy)
    : corpus_(corpus),
      docs_(std::move(docs)),
      sharded_(sharded),
      lazy_(lazy) {
  author_ = corpus_.string_pool().Find("author");
  ROX_CHECK(author_ != kInvalidStringId);
  ROX_CHECK(docs_.size() == 4);
}

Result<PlanRunStats> CanonicalPlanExecutor::Run(const JoinOrder& order,
                                                StepPlacement placement) const {
  StopWatch watch;
  PlanRunStats stats;
  obs::ScopedSpan plan_span(trace_, "plan",
                            order.Label() + " / " +
                                StepPlacementName(placement));
  // Backs all lazy views of this run; unused (empty) on eager runs.
  ColumnArena arena;

  std::vector<int> seq = order.DocSequence();
  std::vector<bool> stepped(4, false);

  auto rows_of = [&](const Partition& p) {
    return lazy_ ? p.view.NumRows() : p.table.NumRows();
  };
  auto cols_of = [&](const Partition& p) {
    return lazy_ ? p.view.NumCols() : p.table.NumCols();
  };
  // The partition's join-value column as a selection-vector-aware
  // probe input: a lazy view column feeds the kernels as (base, sel)
  // directly — no gather into the arena — and an eager table column is
  // a plain contiguous span (DESIGN.md §14).
  auto probe_col = [&](const Partition& p) -> PreColumn {
    if (!lazy_) return PreColumn::FromSpan(p.table.Col(p.join_value_col));
    const ResultView::Column& c = p.view.col(p.join_value_col);
    return {c.base, c.sel, p.view.NumRows()};
  };

  // Executes doc i's author/text() step as an initial table.
  auto step_table = [&](int i) -> Partition {
    DocId d = docs_[i];
    const Document& doc = corpus_.doc(d);
    auto authors_span = corpus_.element_index(d).Lookup(author_);
    std::vector<Pre> authors(authors_span.begin(), authors_span.end());
    JoinPairs pairs = ShardedStructuralJoinPairs(
        sharded_, d, doc, authors, StepSpec::ChildText(), nullptr, nullptr,
        cancel_, vectorized_);
    Partition part;
    if (lazy_) {
      // The pair arrays are the view: authors as the base of a
      // selection-vector column, text nodes as a direct column.
      std::span<const Pre> base = arena.Adopt(std::move(authors));
      ResultView v(2, pairs.size());
      v.col(0) = {base.data(),
                  arena.Adopt(std::move(pairs.left_rows)).data()};
      v.col(1) = {arena.Adopt(std::move(pairs.right_nodes)).data(),
                  nullptr};
      part.view = std::move(v);
    } else {
      part.table = ResultTable(2);
      std::vector<Pre>& acol = part.table.MutableCol(0);
      acol.resize(pairs.size());
      for (uint64_t k = 0; k < pairs.size(); ++k) {
        acol[k] = authors[pairs.left_rows[k]];
      }
      part.table.MutableCol(1) = std::move(pairs.right_nodes);
    }
    part.docs = {i};
    part.text_col_of[i] = 1;
    part.join_value_col = 1;
    stepped[i] = true;
    return part;
  };

  // Applies doc i's deferred step as a filter: keep rows whose text
  // node's parent is an <author> element.
  auto apply_step_filter = [&](Partition& part, int i) {
    const Document& doc = corpus_.doc(docs_[i]);
    size_t col = part.text_col_of.at(i);
    std::vector<uint32_t> keep;
    keep.reserve(rows_of(part));
    for (uint32_t r = 0; r < rows_of(part); ++r) {
      Pre text = lazy_ ? part.view.At(col, r) : part.table.Col(col)[r];
      Pre parent = doc.Parent(text);
      if (parent != kInvalidPre && doc.Kind(parent) == NodeKind::kElem &&
          doc.Name(parent) == author_) {
        keep.push_back(r);
      }
    }
    if (lazy_) {
      part.view = SelectRowsView(part.view, keep, arena);
    } else {
      part.table = part.table.SelectRows(keep);
    }
    stepped[i] = true;
  };

  // Joins `part` with un-stepped doc i via an index nested-loop probe
  // into doc i's text value index.
  auto join_with_unstepped = [&](Partition part, int i) -> Partition {
    DocId d = docs_[i];
    const Document& part_doc = corpus_.doc(docs_[part.docs[0]]);
    JoinPairs pairs = ShardedValueIndexJoinPairs(
        sharded_, part_doc, probe_col(part), corpus_.doc(d),
        corpus_.value_index(d), ValueProbeSpec::Text(), nullptr, cancel_,
        vectorized_);
    Partition out;
    if (lazy_) {
      out.view = ExtendViewWithPairs(part.view, std::move(pairs), arena);
    } else {
      out.table = ExtendTableWithPairs(part.table, pairs);
    }
    out.docs = part.docs;
    out.docs.push_back(i);
    out.text_col_of = part.text_col_of;
    out.text_col_of[i] = cols_of(out) - 1;
    out.join_value_col = part.join_value_col;
    return out;
  };

  // Hash-joins two materialized partitions on their text values.
  auto join_partitions = [&](Partition x, Partition y) -> Partition {
    const Document& xd = corpus_.doc(docs_[x.docs[0]]);
    const Document& yd = corpus_.doc(docs_[y.docs[0]]);
    // Probe with x's value column against y's distinct value column.
    std::vector<Pre> inner = lazy_
                                 ? y.view.DistinctColumn(y.join_value_col)
                                 : y.table.DistinctColumn(y.join_value_col);
    JoinPairs pairs =
        ShardedHashValueJoinPairs(sharded_, xd, probe_col(x), yd, inner,
                                  nullptr, cancel_, vectorized_);
    Partition out;
    size_t x_cols = cols_of(x);
    if (lazy_) {
      out.view =
          JoinViewsWithPairs(x.view, pairs, y.view, y.join_value_col, arena);
    } else {
      out.table =
          JoinTablesWithPairs(x.table, pairs, y.table, y.join_value_col);
    }
    out.docs = x.docs;
    out.docs.insert(out.docs.end(), y.docs.begin(), y.docs.end());
    out.text_col_of = x.text_col_of;
    for (auto& [doc_idx, col] : y.text_col_of) {
      out.text_col_of[doc_idx] = x_cols + col;
    }
    out.join_value_col = x.join_value_col;
    return out;
  };

  auto record_join = [&](const Partition& p) {
    stats.join_result_sizes.push_back(rows_of(p));
    stats.cumulative_join_rows += rows_of(p);
    if (trace_ != nullptr) {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%llu rows",
                    static_cast<unsigned long long>(rows_of(p)));
      trace_->Event("join", buf);
    }
  };

  Partition result;
  switch (placement) {
    case StepPlacement::kSJ: {
      // All steps first, then the joins over materialized partitions.
      std::map<int, Partition> parts;
      for (int i : seq) parts.emplace(i, step_table(i));
      Partition left = join_partitions(std::move(parts.at(order.a)),
                                       std::move(parts.at(order.b)));
      record_join(left);
      if (order.bushy) {
        Partition right = join_partitions(std::move(parts.at(order.c)),
                                          std::move(parts.at(order.d)));
        record_join(right);
        result = join_partitions(std::move(left), std::move(right));
        record_join(result);
      } else {
        left = join_partitions(std::move(left), std::move(parts.at(order.c)));
        record_join(left);
        result =
            join_partitions(std::move(left), std::move(parts.at(order.d)));
        record_join(result);
      }
      break;
    }
    case StepPlacement::kJS:
    case StepPlacement::kS_J: {
      bool steps_inline = placement == StepPlacement::kS_J;
      Partition left = step_table(order.a);
      auto join_next = [&](Partition part, int i) {
        part = join_with_unstepped(std::move(part), i);
        record_join(part);
        if (steps_inline) apply_step_filter(part, i);
        return part;
      };
      left = join_next(std::move(left), order.b);
      if (order.bushy) {
        Partition right = step_table(order.c);
        right = join_next(std::move(right), order.d);
        result = join_partitions(std::move(left), std::move(right));
        record_join(result);
      } else {
        left = join_next(std::move(left), order.c);
        result = join_next(std::move(left), order.d);
      }
      // Deferred steps (all remaining, for JS; none for S_J).
      for (int i : seq) {
        if (!stepped[i]) apply_step_filter(result, i);
      }
      break;
    }
  }

  // A tripped token made the kernels above stop early (truncated
  // partitions); report the governance error instead of a wrong count.
  if (cancel_ != nullptr) {
    ROX_RETURN_IF_ERROR(cancel_->Check());
  }
  stats.result_rows = rows_of(result);
  stats.elapsed_ms = watch.ElapsedMillis();
  if (plan_span.armed()) {
    plan_span.AttrNum("joins",
                      static_cast<double>(stats.join_result_sizes.size()));
    plan_span.AttrNum("cumulative_rows",
                      static_cast<double>(stats.cumulative_join_rows));
    plan_span.AttrNum("result_rows", static_cast<double>(stats.result_rows));
  }
  return stats;
}

Result<PlanRunStats> CanonicalPlanExecutor::RunBestPlacement(
    const JoinOrder& order) const {
  Result<PlanRunStats> best = Status::Internal("no placement ran");
  for (StepPlacement p : kAllPlacements) {
    Result<PlanRunStats> r = Run(order, p);
    if (!r.ok()) return r;
    if (!best.ok() || r->elapsed_ms < best->elapsed_ms) best = std::move(r);
  }
  return best;
}

Result<PlanRunStats> CanonicalPlanExecutor::RunWorstPlacement(
    const JoinOrder& order) const {
  Result<PlanRunStats> worst = Status::Internal("no placement ran");
  for (StepPlacement p : kAllPlacements) {
    Result<PlanRunStats> r = Run(order, p);
    if (!r.ok()) return r;
    if (!worst.ok() || r->elapsed_ms > worst->elapsed_ms) worst = std::move(r);
  }
  return worst;
}

std::vector<OrderCardinality> ComputeOrderCardinalities(
    const Corpus& corpus, const std::vector<DocId>& docs) {
  ROX_CHECK(docs.size() == 4);
  // Per-document author-value histograms, merged into one map:
  // value -> per-doc counts.
  std::unordered_map<StringId, std::array<uint64_t, 4>> freq;
  for (int i = 0; i < 4; ++i) {
    for (auto [v, n] : AuthorValueHistogram(corpus, docs[i])) {
      auto it = freq.find(v);
      if (it == freq.end()) {
        std::array<uint64_t, 4> zero{};
        it = freq.emplace(v, zero).first;
      }
      it->second[i] = n;
    }
  }
  auto join_size = [&](std::initializer_list<int> group) -> uint64_t {
    uint64_t total = 0;
    for (const auto& [v, f] : freq) {
      uint64_t prod = 1;
      for (int i : group) {
        prod *= f[i];
        if (prod == 0) break;
      }
      total += prod;
    }
    return total;
  };
  std::vector<OrderCardinality> out;
  for (const JoinOrder& o : EnumerateJoinOrders4()) {
    OrderCardinality oc;
    oc.order = o;
    oc.join_sizes.push_back(join_size({o.a, o.b}));
    if (o.bushy) {
      oc.join_sizes.push_back(join_size({o.c, o.d}));
      oc.join_sizes.push_back(join_size({o.a, o.b, o.c, o.d}));
    } else {
      oc.join_sizes.push_back(join_size({o.a, o.b, o.c}));
      oc.join_sizes.push_back(join_size({o.a, o.b, o.c, o.d}));
    }
    for (uint64_t s : oc.join_sizes) oc.cumulative += s;
    out.push_back(std::move(oc));
  }
  return out;
}

JoinOrder ClassicalJoinOrder(const Corpus& corpus,
                             const std::vector<DocId>& docs) {
  ROX_CHECK(docs.size() == 4);
  StringId author = corpus.string_pool().Find("author");
  std::vector<std::pair<uint64_t, int>> sized;
  for (int i = 0; i < 4; ++i) {
    sized.emplace_back(corpus.element_index(docs[i]).Count(author), i);
  }
  std::sort(sized.begin(), sized.end());
  JoinOrder o;
  o.a = sized[0].second;
  o.b = sized[1].second;
  o.bushy = false;
  o.c = sized[2].second;
  o.d = sized[3].second;
  return o;
}

}  // namespace rox
