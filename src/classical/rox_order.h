// Maps a finished ROX run back into the paper's join-order taxonomy, so
// the "ROX join-order class" of Figures 6/7 (same equi-join order as
// ROX, but canonical step placement) can be executed and compared.

#ifndef ROX_CLASSICAL_ROX_ORDER_H_
#define ROX_CLASSICAL_ROX_ORDER_H_

#include "classical/plans.h"
#include "common/status.h"
#include "rox/optimizer.h"
#include "workload/dblp.h"

namespace rox {

// Reconstructs the equi-join order (over document positions 0..3) that
// a ROX run executed on the DBLP query graph `q`. Equivalence-closure
// edges that merely close cycles (filters) do not count as joins; the
// three component-merging equi-join executions define the order.
Result<JoinOrder> RoxJoinOrderFromRun(const DblpQueryGraph& q,
                                      const RoxResult& result);

}  // namespace rox

#endif  // ROX_CLASSICAL_ROX_ORDER_H_
