// Fixed-plan executor for the DBLP 4-way author join, and the
// histogram-based join-size calculator used to rank join orders.
//
// This is the "static plan" side of the paper's experiments: given an
// equi-join order and a canonical step placement, execute the plan with
// the same physical operators ROX uses (index lookups, child steps,
// hash / index nested-loop value joins) but in a fixed order decided up
// front — no sampling, no adaptation.

#ifndef ROX_CLASSICAL_EXECUTOR_H_
#define ROX_CLASSICAL_EXECUTOR_H_

#include <vector>

#include "classical/plans.h"
#include "common/status.h"
#include "engine/governor.h"
#include "index/corpus.h"
#include "index/sharded_corpus.h"
#include "obs/trace.h"

namespace rox {

// Measurements of one plan execution.
struct PlanRunStats {
  // Result rows after each equi-join, in execution order.
  std::vector<uint64_t> join_result_sizes;
  // Σ join_result_sizes — the paper's "cumulative (intermediate) join
  // result cardinality" (Figure 5's y-axis).
  uint64_t cumulative_join_rows = 0;
  // Final result rows (after all steps and joins).
  uint64_t result_rows = 0;
  double elapsed_ms = 0.0;
};

// Executes canonical plans of the query
//   for $ai in doc(Di)//author ... where $a1/text() = $ai/text()
// over exactly 4 documents.
class CanonicalPlanExecutor {
 public:
  // `sharded`, when non-null and covering >1 shard, fans the author
  // steps and value joins of every plan out per shard — the fixed
  // *logical* plan (join order, step placement) is untouched, so the
  // measured plan-class ratios stay comparable; only wall-clock
  // changes. Must outlive the executor. `lazy` (the default) keeps
  // partition intermediates as selection-vector views over a per-run
  // arena instead of row-copying at every join/filter; join sizes and
  // result counts are identical either way (DESIGN.md §8).
  CanonicalPlanExecutor(const Corpus& corpus, std::vector<DocId> docs,
                        const ShardedExec* sharded = nullptr,
                        bool lazy = true);

  // Runs one (join order, step placement) plan.
  Result<PlanRunStats> Run(const JoinOrder& order,
                           StepPlacement placement) const;

  // Fastest of the three canonical placements for `order` (the form the
  // paper plots for the smallest/classical/ROX join-order classes).
  Result<PlanRunStats> RunBestPlacement(const JoinOrder& order) const;
  // Slowest of the three (used for the "largest" class).
  Result<PlanRunStats> RunWorstPlacement(const JoinOrder& order) const;

  // Flight recorder for subsequent Run() calls (null = off, the
  // default): each run opens a "plan" span annotated with the order
  // label and placement; every join records a per-join "join" event
  // with its result size. Same contract as RoxOptions::query_trace —
  // recorded from the calling thread only, must outlive the runs.
  void set_trace(obs::QueryTrace* trace) { trace_ = trace; }

  // Cooperative cancellation for subsequent Run() calls (null = off,
  // the default). The token is handed to every join kernel and checked
  // after each join; a tripped run returns the token's governance
  // Status (DESIGN.md §13). Same lifetime contract as set_trace.
  void set_cancel(const CancellationToken* cancel) { cancel_ = cancel; }

  // Kernel path for subsequent Run() calls: the vectorized batch
  // kernels (the default) or the row-at-a-time fallback. Results are
  // byte-identical (DESIGN.md §14); mirrors
  // RoxOptions::vectorized_kernels.
  void set_vectorized(bool vectorized) { vectorized_ = vectorized; }

 private:
  const Corpus& corpus_;
  std::vector<DocId> docs_;
  StringId author_;
  const ShardedExec* sharded_;
  bool lazy_;
  obs::QueryTrace* trace_ = nullptr;
  const CancellationToken* cancel_ = nullptr;
  bool vectorized_ = true;
};

// Cumulative join cardinality of a join order computed purely from the
// per-document author-value histograms (no plan execution): the join
// result sizes are Σ_v Π f_di(v) over the documents joined so far.
struct OrderCardinality {
  JoinOrder order;
  std::vector<uint64_t> join_sizes;
  uint64_t cumulative = 0;
};

std::vector<OrderCardinality> ComputeOrderCardinalities(
    const Corpus& corpus, const std::vector<DocId>& docs);

// The join order an exact-per-document, correlation-blind classical
// optimizer picks: linear, smallest author sets first (§4.2).
JoinOrder ClassicalJoinOrder(const Corpus& corpus,
                             const std::vector<DocId>& docs);

}  // namespace rox

#endif  // ROX_CLASSICAL_EXECUTOR_H_
