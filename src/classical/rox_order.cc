#include "classical/rox_order.h"

#include <array>

#include "common/str_util.h"

namespace rox {

Result<JoinOrder> RoxJoinOrderFromRun(const DblpQueryGraph& q,
                                      const RoxResult& result) {
  if (q.texts.size() != 4) {
    return Status::InvalidArgument("expected a 4-document DBLP graph");
  }
  // vertex -> document position.
  auto doc_of = [&](VertexId v) -> int {
    for (int i = 0; i < 4; ++i) {
      if (q.texts[i] == v || q.authors[i] == v ||
          (i < static_cast<int>(q.roots.size()) && q.roots[i] == v)) {
        return i;
      }
    }
    return -1;
  };

  // Union-find over document positions; replay the executed equi edges
  // and collect the merging ones.
  std::array<int, 4> parent = {0, 1, 2, 3};
  auto find = [&](int x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  std::vector<std::pair<int, int>> merges;
  for (EdgeId e : result.stats.execution_order) {
    const Edge& edge = q.graph.edge(e);
    if (!edge.IsEquiJoin()) continue;
    int i = doc_of(edge.v1), j = doc_of(edge.v2);
    if (i < 0 || j < 0) continue;
    int ri = find(i), rj = find(j);
    if (ri == rj) continue;  // cycle-closing filter, not a join
    parent[ri] = rj;
    merges.emplace_back(i, j);
  }
  if (merges.size() != 3) {
    return Status::Internal(
        StrCat("expected 3 merging equi-joins, saw ", merges.size()));
  }

  JoinOrder o;
  o.a = merges[0].first;
  o.b = merges[0].second;
  auto in_first = [&](int x) { return x == o.a || x == o.b; };
  int m2a = merges[1].first, m2b = merges[1].second;
  if (!in_first(m2a) && !in_first(m2b)) {
    // Second join pairs the two remaining documents: bushy.
    o.bushy = true;
    o.c = m2a;
    o.d = m2b;
  } else {
    o.bushy = false;
    o.c = in_first(m2a) ? m2b : m2a;
    // The final merge contributes the last document.
    int m3a = merges[2].first, m3b = merges[2].second;
    auto used = [&](int x) { return x == o.a || x == o.b || x == o.c; };
    o.d = used(m3a) ? m3b : m3a;
  }
  return o;
}

}  // namespace rox
