#include "classical/plans.h"

#include "common/str_util.h"

namespace rox {

std::string JoinOrder::Label() const {
  std::string s = StrCat("(", a + 1, "-", b + 1, ")");
  if (bushy) {
    s += StrCat("-(", c + 1, "-", d + 1, ")");
  } else {
    s += StrCat("-", c + 1, "-", d + 1);
  }
  return s;
}

std::vector<JoinOrder> EnumerateJoinOrders4() {
  std::vector<JoinOrder> out;
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) {
      int rest[2];
      int k = 0;
      for (int x = 0; x < 4; ++x) {
        if (x != a && x != b) rest[k++] = x;
      }
      // Bushy: (a-b)-(c-d).
      out.push_back({a, b, true, rest[0], rest[1]});
      // Linear, both orders of the remaining documents.
      out.push_back({a, b, false, rest[0], rest[1]});
      out.push_back({a, b, false, rest[1], rest[0]});
    }
  }
  return out;  // 6 pairs * 3 = 18
}

const char* StepPlacementName(StepPlacement p) {
  switch (p) {
    case StepPlacement::kSJ:
      return "SJ";
    case StepPlacement::kJS:
      return "JS";
    case StepPlacement::kS_J:
      return "S_J";
  }
  return "?";
}

}  // namespace rox
