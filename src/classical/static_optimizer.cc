#include "classical/static_optimizer.h"

#include <algorithm>

#include "common/check.h"
#include "exec/structural_join.h"
#include "exec/value_join.h"
#include "rox/state.h"

namespace rox {

namespace {

// Exact base cardinality of a vertex (the optimizer's single-document
// statistics: element/attribute counts and value-index counts are all
// available from the indexes).
double VertexCard(const Corpus& corpus, const JoinGraph& graph, VertexId v) {
  const Vertex& vx = graph.vertex(v);
  const ElementIndex& eidx = corpus.element_index(vx.doc);
  const ValueIndex& vidx = corpus.value_index(vx.doc);
  switch (vx.type) {
    case VertexType::kRoot:
      return 1.0;
    case VertexType::kElement:
      return static_cast<double>(eidx.Count(vx.name));
    case VertexType::kText:
      switch (vx.pred.kind) {
        case ValuePredicate::Kind::kEquals:
          return static_cast<double>(vidx.TextLookup(vx.pred.equals).size());
        case ValuePredicate::Kind::kNotEquals:
          return static_cast<double>(vidx.text_node_count() -
                                     vidx.TextLookup(vx.pred.equals).size());
        case ValuePredicate::Kind::kRange:
          return static_cast<double>(vidx.TextRangeCount(vx.pred.range));
        case ValuePredicate::Kind::kAnyOf:
          return static_cast<double>(
              FilterByPredicate(corpus.doc(vx.doc), vidx.AllTextNodes(),
                                vx.pred)
                  .size());
        case ValuePredicate::Kind::kNone:
          return static_cast<double>(vidx.text_node_count());
      }
      break;
    case VertexType::kAttribute:
      return static_cast<double>(eidx.CountAttr(vx.name));
  }
  return 1.0;
}

// Exact single-step result cardinality on the *base* tables: the paper
// grants the classical optimizer accurate per-document estimation, so
// we compute the true pair count of the step between unreduced vertex
// node sets once, at "compile time".
double ExactStepCard(const Corpus& corpus, const JoinGraph& graph,
                     EdgeId e) {
  const Edge& edge = graph.edge(e);
  const Vertex& v1 = graph.vertex(edge.v1);
  const Document& doc = corpus.doc(v1.doc);
  const ElementIndex& eidx = corpus.element_index(v1.doc);
  // Materialize the context side (prefer v1); step toward v2.
  // Index-selectable contexts keep this cheap; otherwise estimate from
  // the other side.
  auto nodes_of = [&](VertexId v) -> std::vector<Pre> {
    const Vertex& vx = graph.vertex(v);
    switch (vx.type) {
      case VertexType::kRoot:
        return {0};
      case VertexType::kElement: {
        auto span = eidx.Lookup(vx.name);
        return {span.begin(), span.end()};
      }
      case VertexType::kAttribute: {
        auto span = eidx.LookupAttr(vx.name);
        return {span.begin(), span.end()};
      }
      case VertexType::kText: {
        const ValueIndex& vidx = corpus.value_index(vx.doc);
        if (vx.pred.kind == ValuePredicate::Kind::kEquals) {
          auto span = vidx.TextLookup(vx.pred.equals);
          return {span.begin(), span.end()};
        }
        if (vx.pred.kind == ValuePredicate::Kind::kRange) {
          return vidx.TextRangeLookup(vx.pred.range);
        }
        if (vx.pred.kind != ValuePredicate::Kind::kNone) {
          return FilterByPredicate(corpus.doc(vx.doc), vidx.AllTextNodes(),
                                   vx.pred);
        }
        return {};  // unrestricted text: derive from the other side
      }
    }
    return {};
  };
  VertexId from = edge.v1, to = edge.v2;
  std::vector<Pre> ctx = nodes_of(from);
  if (ctx.empty()) {
    std::swap(from, to);
    ctx = nodes_of(from);
    if (ctx.empty()) return 0.0;
  }
  Axis axis = (from == edge.v1) ? edge.axis : ReverseAxis(edge.axis);
  const Vertex& tx = graph.vertex(to);
  StepSpec spec;
  spec.axis = axis;
  switch (tx.type) {
    case VertexType::kRoot:
      spec.kind = KindTest::kDoc;
      break;
    case VertexType::kElement:
      spec.kind = KindTest::kElem;
      spec.name = tx.name;
      break;
    case VertexType::kText:
      spec.kind = KindTest::kText;
      break;
    case VertexType::kAttribute:
      spec.kind = KindTest::kAttr;
      spec.name = tx.name;
      if (spec.axis == Axis::kChild) spec.axis = Axis::kAttribute;
      break;
  }
  JoinPairs pairs = StructuralJoinPairs(doc, ctx, spec, kNoLimit, &eidx);
  // Apply the target's value predicate (part of the statistics).
  if (tx.pred.kind != ValuePredicate::Kind::kNone) {
    size_t n = 0;
    for (Pre s : pairs.right_nodes) n += tx.pred.Matches(doc, s);
    return static_cast<double>(n);
  }
  return static_cast<double>(pairs.size());
}

}  // namespace

StaticPlan PlanStatically(const Corpus& corpus, const JoinGraph& graph,
                          const StaticPlanOptions& options) {
  return PlanStatically(corpus, graph, options,
                        std::vector<bool>(graph.EdgeCount(), false),
                        std::vector<double>(graph.VertexCount(), -1.0));
}

StaticPlan PlanStatically(const Corpus& corpus, const JoinGraph& graph,
                          const StaticPlanOptions& options,
                          const std::vector<bool>& already_executed,
                          const std::vector<double>& current_cards) {
  size_t nv = graph.VertexCount(), ne = graph.EdgeCount();
  std::vector<double> card(nv);
  for (VertexId v = 0; v < nv; ++v) card[v] = VertexCard(corpus, graph, v);

  // Static per-edge estimates on base tables.
  std::vector<double> base_est(ne);
  for (EdgeId e = 0; e < ne; ++e) {
    const Edge& edge = graph.edge(e);
    if (edge.type == EdgeType::kStep) {
      base_est[e] = ExactStepCard(corpus, graph, e);
    } else {
      const Vertex& a = graph.vertex(edge.v1);
      const Vertex& b = graph.vertex(edge.v2);
      double ca = card[edge.v1], cb = card[edge.v2];
      if (edge.cmp == CmpOp::kNe) {
        // Inequality joins nearly cross-product: |A|·|B|·(1 - 1/V).
        base_est[e] = ca * cb * (1.0 - 1.0 / std::max({ca, cb, 1.0}));
      } else if (edge.cmp != CmpOp::kEq) {
        // Textbook selectivity for range theta joins: 1/3 (System R's
        // magic constant for col OP col without statistics).
        base_est[e] = ca * cb / 3.0;
      } else if (a.doc == b.doc) {
        // Same-document equi-join: grant accurate estimation by
        // treating it like a known statistic (ca·cb / max distinct).
        base_est[e] = ca * cb / std::max({ca, cb, 1.0});
      } else {
        // Cross-document: System R style independence fallback.
        base_est[e] = options.equi_fudge * ca * cb / std::max({ca, cb, 1.0});
      }
    }
  }

  // Greedy smallest-estimate-first over connected edges, with
  // multiplicative selectivity propagation (no re-observation — this is
  // exactly the compounding-error behavior run-time sampling avoids).
  // For mid-query re-planning, observed cardinalities override the
  // statistics and executed edges seed the "touched" region.
  std::vector<double> cur_card = card;
  for (VertexId v = 0; v < nv; ++v) {
    if (current_cards[v] >= 0) cur_card[v] = current_cards[v];
  }
  std::vector<bool> used = already_executed;
  std::vector<bool> touched(nv, false);
  for (EdgeId e = 0; e < ne; ++e) {
    if (used[e]) {
      touched[graph.edge(e).v1] = true;
      touched[graph.edge(e).v2] = true;
    }
  }
  StaticPlan plan;
  auto scaled_est = [&](EdgeId e) {
    const Edge& edge = graph.edge(e);
    double f1 = card[edge.v1] > 0 ? cur_card[edge.v1] / card[edge.v1] : 1.0;
    double f2 = card[edge.v2] > 0 ? cur_card[edge.v2] / card[edge.v2] : 1.0;
    return base_est[e] * f1 * f2;
  };
  for (size_t step = 0; step < ne; ++step) {
    EdgeId best = kInvalidEdgeId;
    double best_est = 0;
    bool any_touched = false;
    for (VertexId v = 0; v < nv; ++v) any_touched |= touched[v];
    for (EdgeId e = 0; e < ne; ++e) {
      if (used[e]) continue;
      const Edge& edge = graph.edge(e);
      // Prefer edges connected to the executed region (pipeline
      // shape); when nothing qualifies, any edge may start a region.
      bool connected = !any_touched || touched[edge.v1] || touched[edge.v2];
      if (!connected) continue;
      double est = scaled_est(e);
      if (best == kInvalidEdgeId || est < best_est) {
        best = e;
        best_est = est;
      }
    }
    if (best == kInvalidEdgeId) {
      // Disconnected remainder: start a new region.
      for (EdgeId e = 0; e < ne; ++e) {
        if (!used[e]) {
          best = e;
          best_est = scaled_est(e);
          break;
        }
      }
    }
    if (best == kInvalidEdgeId) break;
    used[best] = true;
    plan.order.push_back(best);
    plan.estimates.push_back(best_est);
    const Edge& edge = graph.edge(best);
    touched[edge.v1] = touched[edge.v2] = true;
    // Propagate: both endpoints shrink to at most the edge estimate.
    cur_card[edge.v1] = std::min(cur_card[edge.v1], best_est);
    cur_card[edge.v2] = std::min(cur_card[edge.v2], best_est);
  }
  return plan;
}

Result<ProgressiveResult> ExecuteProgressively(
    const Corpus& corpus, const JoinGraph& graph,
    const ProgressiveOptions& options) {
  ROX_RETURN_IF_ERROR(graph.Validate());
  RoxOptions rox_options;
  rox_options.resample_after_execute = false;
  rox_options.enable_chain_sampling = false;
  rox_options.timed_operator_selection = false;
  RoxState state(corpus, graph, rox_options);

  ProgressiveResult out;
  StaticPlan plan = PlanStatically(corpus, graph, options.planning);
  size_t idx = 0;
  std::vector<bool> executed(graph.EdgeCount(), false);
  size_t remaining = graph.EdgeCount();
  double f = std::max(options.validity_factor, 1.0);
  while (remaining > 0) {
    if (idx >= plan.order.size()) {
      return Status::Internal("progressive plan exhausted prematurely");
    }
    EdgeId e = plan.order[idx];
    double est = plan.estimates[idx];
    ++idx;
    ROX_RETURN_IF_ERROR(state.ExecuteEdge(e));
    executed[e] = true;
    --remaining;
    double observed =
        state.estate(e).HasResult()
            ? static_cast<double>(state.estate(e).ResultRows())
            : est;  // implied-skip edges observe nothing
    // Validity range check ([25]): re-plan the rest when the observed
    // cardinality escapes [est/f, est*f].
    bool out_of_range =
        observed > est * f || (est > 0 && observed < est / f);
    if (out_of_range && remaining > 0) {
      std::vector<double> cards(graph.VertexCount(), -1.0);
      for (VertexId v = 0; v < graph.VertexCount(); ++v) {
        cards[v] = state.vstate(v).card;
      }
      plan = PlanStatically(corpus, graph, options.planning, executed, cards);
      idx = 0;
      ++out.replans;
    }
  }
  ROX_ASSIGN_OR_RETURN(out.result.table,
                       state.AssembleFinal(&out.result.columns));
  out.result.stats = state.stats();
  return out;
}

Result<RoxResult> ExecuteStaticPlan(const Corpus& corpus,
                                    const JoinGraph& graph,
                                    const StaticPlan& plan) {
  ROX_RETURN_IF_ERROR(graph.Validate());
  RoxOptions options;
  // No run-time feedback: no re-sampling, no chain sampling, no timed
  // operator selection.
  options.resample_after_execute = false;
  options.enable_chain_sampling = false;
  options.timed_operator_selection = false;
  RoxState state(corpus, graph, options);
  for (EdgeId e : plan.order) {
    ROX_RETURN_IF_ERROR(state.ExecuteEdge(e));
  }
  RoxResult out;
  ROX_ASSIGN_OR_RETURN(out.table, state.AssembleFinal(&out.columns));
  out.stats = state.stats();
  return out;
}

}  // namespace rox
