// Static plan space of the 4-way DBLP author join (§4.2).
//
// The paper enumerates 88880 physical plans; their two-level
// categorization is (1) the equi-join order — 18 classes for a 4-way
// join: six choices of the first join pair, each continued either
// bushy ("(a-b)-(c-d)") or linear with the remaining two documents in
// either order ("(a-b)-c-d") — and (2) the placement of the
// author/text() steps among the joins, condensed into three canonical
// placements:
//
//   SJ : all steps first, then all joins           SaSbScSd JaJbJc
//   JS : one step, all joins, remaining steps      Sa JaJbJc SbScSd
//   S_J: each document's step right after it joins Sa Ja Sb Jb Sc Jc Sd
//
// Documents are referred to by their index 0..3 inside a combination;
// labels use the paper's 1-based notation.

#ifndef ROX_CLASSICAL_PLANS_H_
#define ROX_CLASSICAL_PLANS_H_

#include <string>
#include <tuple>
#include <utility>
#include <vector>

namespace rox {

// One equi-join order over 4 documents.
struct JoinOrder {
  int a = 0, b = 1;    // first join pair
  bool bushy = false;  // true: (a-b)-(c-d); false: ((a-b)-c)-d
  int c = 2, d = 3;    // remaining documents (order matters when linear)

  // "(2-1)-(3-4)" / "(2-1)-3-4" with 1-based document numbers.
  std::string Label() const;

  // The documents in join-appearance order (a, b, c, d).
  std::vector<int> DocSequence() const { return {a, b, c, d}; }

  friend bool operator==(const JoinOrder& x, const JoinOrder& y) {
    auto norm = [](const JoinOrder& o) {
      int a = o.a, b = o.b, c = o.c, d = o.d;
      if (a > b) std::swap(a, b);
      if (o.bushy && c > d) std::swap(c, d);
      return std::tuple(a, b, o.bushy, c, d);
    };
    return norm(x) == norm(y);
  }
};

// All 18 join orders of the paper's Figure 5 legend.
std::vector<JoinOrder> EnumerateJoinOrders4();

// Canonical step placements.
enum class StepPlacement { kSJ, kJS, kS_J };
const char* StepPlacementName(StepPlacement p);
inline constexpr StepPlacement kAllPlacements[] = {
    StepPlacement::kSJ, StepPlacement::kJS, StepPlacement::kS_J};

}  // namespace rox

#endif  // ROX_CLASSICAL_PLANS_H_
