// A classical compile-time optimizer over arbitrary Join Graphs.
//
// This generalizes the DBLP-specific baseline of executor.h to any join
// graph (e.g. the XMark Q1/Qm1 graphs), modeling the optimizer the
// paper assumes in §4.2: it has *accurate* cardinality estimates for
// operations inside one document (we grant it exact single-step
// cardinalities computed from the base tables), but must fall back on
// textbook independence assumptions for anything it cannot know
// statically — most importantly correlations between predicates. The
// resulting edge order is fixed before execution; no run-time feedback
// is used.
//
// The plan executes on the same machinery as ROX (RoxState with
// sampling disabled), so measured differences are purely due to the
// edge order.

#ifndef ROX_CLASSICAL_STATIC_OPTIMIZER_H_
#define ROX_CLASSICAL_STATIC_OPTIMIZER_H_

#include <vector>

#include "common/status.h"
#include "graph/join_graph.h"
#include "index/corpus.h"
#include "rox/optimizer.h"

namespace rox {

// A statically decided plan: the edge execution order plus the
// optimizer's cardinality estimates (for diagnostics).
struct StaticPlan {
  std::vector<EdgeId> order;
  // Estimated result cardinality per edge, aligned with `order`.
  std::vector<double> estimates;
};

struct StaticPlanOptions {
  // Selectivity the optimizer assumes for a cross-document equi-join
  // between values it has no statistics for: |A ⋈ B| = |A|·|B| /
  // max(V_A, V_B) with V approximated by the larger side (System R's
  // 1/max(distinct) with distinct ≈ cardinality).
  double equi_fudge = 1.0;
};

// Computes the static plan: exact single-document step cardinalities,
// independence-based estimates for cross-document joins, greedy
// smallest-estimate-first ordering over connected edges, estimates
// propagated multiplicatively (the error propagation of [23] that the
// paper's introduction criticizes).
StaticPlan PlanStatically(const Corpus& corpus, const JoinGraph& graph,
                          const StaticPlanOptions& options = {});

// Variant for mid-query re-planning: `executed` marks edges already
// run and `current_cards` carries the *observed* vertex cardinalities
// (<0 = unknown, fall back to base statistics). Only un-executed edges
// appear in the returned order.
StaticPlan PlanStatically(const Corpus& corpus, const JoinGraph& graph,
                          const StaticPlanOptions& options,
                          const std::vector<bool>& executed,
                          const std::vector<double>& current_cards);

// Executes the graph in the given fixed order with run-time sampling
// disabled; result and stats are directly comparable to a ROX run on
// the same graph.
Result<RoxResult> ExecuteStaticPlan(const Corpus& corpus,
                                    const JoinGraph& graph,
                                    const StaticPlan& plan);

// --- progressive optimization (the paper's related work [24, 25]) ------------
//
// Mid-Query Re-Optimization / Progressive Optimization: execute the
// static plan, but attach a validity range to every estimate; when an
// observed edge result falls outside [est / validity_factor,
// est * validity_factor], re-plan the remaining edges with the observed
// cardinalities. Unlike ROX it only reacts to estimates that already
// went wrong (and never samples ahead), which is exactly the contrast
// §5 draws.

struct ProgressiveOptions {
  StaticPlanOptions planning;
  double validity_factor = 3.0;
};

struct ProgressiveResult {
  RoxResult result;
  int replans = 0;
};

Result<ProgressiveResult> ExecuteProgressively(
    const Corpus& corpus, const JoinGraph& graph,
    const ProgressiveOptions& options = {});

}  // namespace rox

#endif  // ROX_CLASSICAL_STATIC_OPTIMIZER_H_
