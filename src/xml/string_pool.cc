#include "xml/string_pool.h"

#include <cmath>
#include <cstdlib>

#include "common/check.h"

namespace rox {

namespace {

double ParseNumeric(std::string_view s) {
  if (s.empty()) return std::nan("");
  // Full-string parse: trailing garbage disqualifies.
  std::string buf(s);
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return std::nan("");
  return v;
}

}  // namespace

StringId StringPool::Intern(std::string_view s) {
  auto it = index_.find(s);
  if (it != index_.end()) return it->second;
  StringId id = static_cast<StringId>(strings_.size());
  strings_.emplace_back(s);
  numeric_.push_back(ParseNumeric(s));
  index_.emplace(std::string_view(strings_.back()), id);
  return id;
}

StringId StringPool::Find(std::string_view s) const {
  auto it = index_.find(s);
  return it == index_.end() ? kInvalidStringId : it->second;
}

std::string_view StringPool::Get(StringId id) const {
  ROX_CHECK(id < strings_.size());
  return strings_[id];
}

std::optional<double> StringPool::NumericValue(StringId id) const {
  ROX_CHECK(id < numeric_.size());
  double v = numeric_[id];
  if (std::isnan(v)) return std::nullopt;
  return v;
}

}  // namespace rox
