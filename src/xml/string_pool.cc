#include "xml/string_pool.h"

#include <cmath>

#include "common/check.h"
#include "common/str_util.h"

namespace rox {

StringPool::~StringPool() {
  for (auto& slot : blocks_) {
    delete slot.load(std::memory_order_acquire);
  }
}

StringId StringPool::Intern(std::string_view s) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(s);
  if (it != index_.end()) return it->second;
  size_t n = size_.load(std::memory_order_relaxed);
  ROX_CHECK(n < kMaxBlocks * kBlockSize);
  std::atomic<Block*>& slot = blocks_[n >> kBlockBits];
  Block* block = slot.load(std::memory_order_relaxed);
  if (block == nullptr) {
    block = new Block();
    slot.store(block, std::memory_order_release);
  }
  Entry& e = block->entries[n & (kBlockSize - 1)];
  e.str.assign(s);
  e.numeric = ParseNumeric(s);
  // Publish the entry only after it is fully constructed.
  size_.store(n + 1, std::memory_order_release);
  StringId id = static_cast<StringId>(n);
  index_.emplace(std::string_view(e.str), id);
  return id;
}

StringId StringPool::Find(std::string_view s) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(s);
  return it == index_.end() ? kInvalidStringId : it->second;
}

std::string_view StringPool::Get(StringId id) const {
  ROX_CHECK(id < size());
  return entry(id).str;
}

std::optional<double> StringPool::NumericValue(StringId id) const {
  ROX_CHECK(id < size());
  double v = entry(id).numeric;
  if (std::isnan(v)) return std::nullopt;
  return v;
}

}  // namespace rox
