// Column-oriented shredded XML document storage.
//
// This is the MonetDB/XQuery-style pre/size/level relational encoding
// (§2.2 of the paper): node `pre` ranks are assigned in document order
// (opening-tag order), `size` is the number of nodes in the subtree
// below a node, and `level` is the tree depth. Attribute nodes are
// stored inline directly after their owner element (so `pre` stays a
// single dense numbering), but are excluded from the child/descendant
// axes by the axis semantics in exec/.
//
// The encoding supports O(1) containment tests:
//   a is an ancestor of d  <=>  a.pre < d.pre <= a.pre + a.size
// which is what makes the staircase join a single-pass algorithm.

#ifndef ROX_XML_DOCUMENT_H_
#define ROX_XML_DOCUMENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "xml/node.h"
#include "xml/string_pool.h"

namespace rox {

// Dense per-corpus document identifier.
using DocId = uint32_t;
inline constexpr DocId kInvalidDocId = 0xffffffffu;

// One shredded XML document. Immutable after construction (built through
// DocumentBuilder). Owns its columns; shares the corpus StringPool.
class Document {
 public:
  // Documents are heavyweight; move-only.
  Document(const Document&) = delete;
  Document& operator=(const Document&) = delete;
  Document(Document&&) = default;
  Document& operator=(Document&&) = default;

  // --- identity ---------------------------------------------------------

  const std::string& name() const { return name_; }
  DocId id() const { return id_; }
  void set_id(DocId id) { id_ = id; }

  const StringPool& pool() const { return *pool_; }
  StringPool* mutable_pool() { return pool_.get(); }

  // --- node columns ------------------------------------------------------

  // Total node count, including the document root node (pre = 0).
  Pre NodeCount() const { return static_cast<Pre>(kind_.size()); }

  NodeKind Kind(Pre p) const { return kind_[p]; }
  // Subtree size: number of nodes strictly below p (attributes included).
  uint32_t Size(Pre p) const { return size_[p]; }
  // Depth; the document node has level 0.
  uint16_t Level(Pre p) const { return level_[p]; }
  // Owner/parent node; kInvalidPre for the document node.
  Pre Parent(Pre p) const { return parent_[p]; }
  // Element/attribute qualified name id; kInvalidStringId otherwise.
  StringId Name(Pre p) const { return name_id_[p]; }
  // Text/attribute/comment/pi value id; kInvalidStringId otherwise.
  StringId Value(Pre p) const { return value_id_[p]; }

  std::string_view NameStr(Pre p) const { return pool_->Get(Name(p)); }
  std::string_view ValueStr(Pre p) const { return pool_->Get(Value(p)); }

  // Raw column access for tight operator loops.
  const std::vector<NodeKind>& kinds() const { return kind_; }
  const std::vector<uint32_t>& sizes() const { return size_; }
  const std::vector<uint16_t>& levels() const { return level_; }
  const std::vector<Pre>& parents() const { return parent_; }
  const std::vector<StringId>& name_ids() const { return name_id_; }
  const std::vector<StringId>& value_ids() const { return value_id_; }

  // --- derived accessors --------------------------------------------------

  // True iff `anc` is a proper ancestor of `desc`.
  bool IsAncestor(Pre anc, Pre desc) const {
    return anc < desc && desc <= anc + size_[anc];
  }

  // The typed value of an element: the concatenation of the values of its
  // descendant text nodes (fn:data on an element). For the common case of
  // a single text child this is that child's interned value; otherwise
  // the strings are concatenated (rare in our workloads).
  std::string TypedValue(Pre p) const;

  // Value id of the single text child of element p, or kInvalidStringId
  // if p has zero or more than one text child. Fast path for equality
  // predicates on "element content".
  StringId SingleTextChildValue(Pre p) const;

  // Value of attribute `qattr` on element p, or kInvalidStringId.
  StringId AttributeValue(Pre p, StringId qattr) const;

  // Approximate serialized byte size (used to report Table 3-style
  // document sizes without materializing the text).
  uint64_t SerializedSizeEstimate() const;

  // Number of element nodes with name `q` (linear scan; the element
  // index in index/ provides the O(1) variant).
  uint64_t CountElements(StringId q) const;

 private:
  friend class DocumentBuilder;
  Document(std::string name, std::shared_ptr<StringPool> pool)
      : name_(std::move(name)), pool_(std::move(pool)) {}

  std::string name_;
  DocId id_ = kInvalidDocId;
  std::shared_ptr<StringPool> pool_;

  std::vector<NodeKind> kind_;
  std::vector<uint32_t> size_;
  std::vector<uint16_t> level_;
  std::vector<Pre> parent_;
  std::vector<StringId> name_id_;
  std::vector<StringId> value_id_;
};

// Push-based construction of a Document in document order.
//
// Usage:
//   DocumentBuilder b("auction.xml", pool);
//   b.StartElement("site");
//     b.Attribute("id", "s1");
//     b.Text("hello");
//   b.EndElement();
//   std::unique_ptr<Document> doc = std::move(b).Finish();
class DocumentBuilder {
 public:
  // `pool` may be shared with other documents of the corpus; if null, a
  // fresh pool is created.
  DocumentBuilder(std::string name, std::shared_ptr<StringPool> pool);

  // Opens an element. Must be balanced with EndElement().
  void StartElement(std::string_view qname);

  // Adds an attribute to the most recently opened element. Must be
  // called before any child content of that element.
  void Attribute(std::string_view qname, std::string_view value);

  void Text(std::string_view value);
  void Comment(std::string_view value);
  void ProcessingInstruction(std::string_view target,
                             std::string_view value);

  void EndElement();

  // Validates balance and returns the finished document.
  Result<std::unique_ptr<Document>> Finish() &&;

 private:
  Pre AddNode(NodeKind kind, StringId name, StringId value);

  std::unique_ptr<Document> doc_;
  std::vector<Pre> open_;  // stack of currently open nodes (doc + elems)
  bool content_started_ = false;  // attribute ordering guard
};

}  // namespace rox

#endif  // ROX_XML_DOCUMENT_H_
