// A small, dependency-free XML parser producing shredded Documents.
//
// Supports the XML subset needed by the workloads: elements, attributes,
// character data, CDATA sections, comments, processing instructions, the
// five predefined entities and numeric character references. It does not
// implement DTDs, namespaces-as-scoping (prefixes are kept verbatim in
// qualified names), or external entities.

#ifndef ROX_XML_PARSER_H_
#define ROX_XML_PARSER_H_

#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "xml/document.h"

namespace rox {

struct XmlParseOptions {
  // Discard text nodes that consist solely of whitespace (typical for
  // pretty-printed data documents; keeps shredded sizes honest).
  bool skip_whitespace_text = true;
  // Keep comments / processing instructions as nodes.
  bool keep_comments = false;
  bool keep_pis = false;

  // --- robustness caps (DESIGN.md §13) --------------------------------------
  // Parsing fails with kResourceExhausted (message naming the cap) once
  // any of these is exceeded; 0 disables the individual cap. Defaults
  // are generous — they exist to bound adversarial inputs, not to
  // constrain real workloads.

  // Total input size accepted (checked before any parsing).
  size_t max_input_bytes = size_t{1} << 30;  // 1 GiB
  // Attributes on a single element (attribute-flood guard).
  size_t max_attributes_per_element = 4096;
  // Total bytes produced by entity / character-reference expansion over
  // the whole document (reference-flood guard; the supported entity set
  // cannot recurse, so output is what needs bounding).
  size_t max_entity_expansion_bytes = size_t{1} << 26;  // 64 MiB
};

// Parses `xml` into a Document named `doc_name`, interning strings into
// `pool` (shared across a corpus; a fresh pool is created when null).
Result<std::unique_ptr<Document>> ParseXml(
    std::string_view xml, std::string doc_name,
    std::shared_ptr<StringPool> pool = nullptr,
    const XmlParseOptions& options = {});

// Serializes `doc` back to XML text (no pretty-printing; entities are
// re-escaped). Round-trips documents produced by ParseXml up to
// whitespace-only text nodes and attribute order.
std::string SerializeXml(const Document& doc);

// Serializes the subtree rooted at `p`.
std::string SerializeSubtree(const Document& doc, Pre p);

}  // namespace rox

#endif  // ROX_XML_PARSER_H_
