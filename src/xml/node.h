// Node kinds and identifiers of the shredded XML storage.

#ifndef ROX_XML_NODE_H_
#define ROX_XML_NODE_H_

#include <cstdint>
#include <limits>

namespace rox {

// Node identifier: the node's `pre` rank (position of its opening tag in
// the document, with attributes serialized directly after their owner
// element's tag). Dense in [0, Document::NodeCount()).
using Pre = uint32_t;

inline constexpr Pre kInvalidPre = std::numeric_limits<Pre>::max();

// XML node kinds (the paper's k ∈ {*,doc,elem,text,attr,comment,pi}).
enum class NodeKind : uint8_t {
  kDoc = 0,
  kElem = 1,
  kText = 2,
  kAttr = 3,
  kComment = 4,
  kPi = 5,
};

// Kind test used by operators: kAnyKind matches every kind.
enum class KindTest : uint8_t {
  kAnyKind = 0,
  kDoc,
  kElem,
  kText,
  kAttr,
  kComment,
  kPi,
};

// True if node kind `k` satisfies the test `t`.
inline bool MatchesKind(NodeKind k, KindTest t) {
  switch (t) {
    case KindTest::kAnyKind:
      return true;
    case KindTest::kDoc:
      return k == NodeKind::kDoc;
    case KindTest::kElem:
      return k == NodeKind::kElem;
    case KindTest::kText:
      return k == NodeKind::kText;
    case KindTest::kAttr:
      return k == NodeKind::kAttr;
    case KindTest::kComment:
      return k == NodeKind::kComment;
    case KindTest::kPi:
      return k == NodeKind::kPi;
  }
  return false;
}

const char* NodeKindName(NodeKind k);
const char* KindTestName(KindTest t);

// The XPath axes supported by the staircase join (Table 1).
enum class Axis : uint8_t {
  kChild = 0,
  kDescendant,
  kDescendantOrSelf,
  kParent,
  kAncestor,
  kAncestorOrSelf,
  kFollowing,
  kPreceding,
  kFollowingSibling,
  kPrecedingSibling,
  kSelf,
  kAttribute,  // child-range restricted to attribute nodes
};

const char* AxisName(Axis axis);

// The axis that maps result back to context: desc <-> anc, child <->
// parent, foll <-> prec, etc. Used when ROX executes a step edge in the
// reverse direction (§2.1: "the algorithm may very well decide to execute
// the step in the reverse direction").
Axis ReverseAxis(Axis axis);

// True for axes whose result set, for a duplicate-free context, needs no
// per-pair deduplication when only distinct result nodes are requested.
bool IsForwardAxis(Axis axis);

}  // namespace rox

#endif  // ROX_XML_NODE_H_
