#include "xml/parser.h"

#include <cctype>
#include <string>
#include <vector>

#include "common/str_util.h"

namespace rox {

namespace {

bool IsNameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool IsNameChar(char c) {
  return IsNameStartChar(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '-' || c == '.';
}

bool IsAllWhitespace(std::string_view s) {
  for (char c : s) {
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

// Streaming cursor over the input with line tracking for error messages.
class Cursor {
 public:
  explicit Cursor(std::string_view s) : s_(s) {}

  bool AtEnd() const { return pos_ >= s_.size(); }
  char Peek() const { return s_[pos_]; }
  char PeekAt(size_t off) const {
    return pos_ + off < s_.size() ? s_[pos_ + off] : '\0';
  }

  char Take() {
    char c = s_[pos_++];
    if (c == '\n') ++line_;
    return c;
  }

  bool TryConsume(std::string_view token) {
    if (s_.substr(pos_, token.size()) != token) return false;
    for (size_t i = 0; i < token.size(); ++i) Take();
    return true;
  }

  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      Take();
    }
  }

  // Consumes up to (not including) the first occurrence of `delim`;
  // returns false if `delim` never occurs.
  bool TakeUntil(std::string_view delim, std::string* out) {
    size_t found = s_.find(delim, pos_);
    if (found == std::string_view::npos) return false;
    out->assign(s_.substr(pos_, found - pos_));
    while (pos_ < found) Take();
    for (size_t i = 0; i < delim.size(); ++i) Take();
    return true;
  }

  int line() const { return line_; }

 private:
  std::string_view s_;
  size_t pos_ = 0;
  int line_ = 1;
};

class Parser {
 public:
  Parser(std::string_view xml, const XmlParseOptions& options,
         DocumentBuilder* builder)
      : cur_(xml), options_(options), builder_(builder) {}

  Status Run() {
    cur_.SkipWhitespace();
    // Prolog: XML declaration and misc.
    while (!cur_.AtEnd() && cur_.Peek() == '<' &&
           (cur_.PeekAt(1) == '?' || cur_.PeekAt(1) == '!')) {
      ROX_RETURN_IF_ERROR(ParseMarkupDecl());
      cur_.SkipWhitespace();
    }
    if (cur_.AtEnd() || cur_.Peek() != '<') {
      return Err("expected root element");
    }
    ROX_RETURN_IF_ERROR(ParseElement());
    cur_.SkipWhitespace();
    while (!cur_.AtEnd()) {
      if (cur_.Peek() == '<' &&
          (cur_.PeekAt(1) == '!' || cur_.PeekAt(1) == '?')) {
        ROX_RETURN_IF_ERROR(ParseMarkupDecl());
        cur_.SkipWhitespace();
      } else {
        return Err("trailing content after root element");
      }
    }
    return Status::Ok();
  }

 private:
  Status Err(std::string_view what) {
    return Status::ParseError(
        StrCat("line ", cur_.line(), ": ", std::string(what)));
  }

  // A robustness cap was exceeded: kResourceExhausted, not kParseError,
  // so callers can tell "malformed" from "well-formed but too big".
  Status CapErr(std::string_view what) {
    return Status::ResourceExhausted(
        StrCat("line ", cur_.line(), ": ", std::string(what)));
  }

  Status ParseName(std::string* out) {
    if (cur_.AtEnd() || !IsNameStartChar(cur_.Peek())) {
      return Err("expected name");
    }
    out->clear();
    while (!cur_.AtEnd() && IsNameChar(cur_.Peek())) out->push_back(cur_.Take());
    return Status::Ok();
  }

  // <?...?>, <!--...-->, <!DOCTYPE...>, <![CDATA[...]]> at top level.
  Status ParseMarkupDecl() {
    if (cur_.TryConsume("<?")) {
      std::string target;
      ROX_RETURN_IF_ERROR(ParseName(&target));
      std::string content;
      if (!cur_.TakeUntil("?>", &content)) return Err("unterminated PI");
      if (options_.keep_pis && target != "xml") {
        builder_->ProcessingInstruction(target, Trim(content));
      }
      return Status::Ok();
    }
    if (cur_.TryConsume("<!--")) {
      std::string content;
      if (!cur_.TakeUntil("-->", &content)) return Err("unterminated comment");
      if (options_.keep_comments) builder_->Comment(content);
      return Status::Ok();
    }
    if (cur_.TryConsume("<!DOCTYPE")) {
      // Consume until the matching '>' (internal subsets in brackets).
      int depth = 1;
      bool bracket = false;
      while (!cur_.AtEnd() && depth > 0) {
        char c = cur_.Take();
        if (c == '[') bracket = true;
        if (c == ']') bracket = false;
        if (c == '<' && !bracket) ++depth;
        if (c == '>' && !bracket) --depth;
      }
      if (depth != 0) return Err("unterminated DOCTYPE");
      return Status::Ok();
    }
    return Err("unsupported markup declaration");
  }

  // Elements are parsed iteratively with an explicit stack of open
  // element names: nesting depth is input-controlled, so a recursive
  // descent here can overflow the thread stack on adversarially deep
  // documents (sanitizer builds, with their larger frames, hit this at
  // a few thousand levels).
  Status ParseElement() {
    std::vector<std::string> open;
    // Pending character data of the innermost open element. A single
    // buffer suffices: it is always flushed before a tag boundary, so
    // text never spans nesting levels.
    std::string text;
    auto flush_text = [&]() {
      if (text.empty()) return;
      if (!options_.skip_whitespace_text || !IsAllWhitespace(text)) {
        builder_->Text(text);
      }
      text.clear();
    };

    // The document's level column is uint16 and a text child of an
    // element at depth d has level d + 2 (the document node is level
    // 0), so element nesting beyond this must be rejected — without
    // the check it would parse "successfully" with silently wrapped
    // levels, corrupting level-based child navigation.
    constexpr size_t kMaxElementDepth = 65533;

    // Parses one start tag with its attributes; pushes onto `open`
    // unless the element was self-closing.
    auto parse_start_tag = [&]() -> Status {
      if (!cur_.TryConsume("<")) return Err("expected '<'");
      if (open.size() >= kMaxElementDepth) {
        return Err("element nesting too deep");
      }
      size_t attr_count = 0;
      std::string name;
      ROX_RETURN_IF_ERROR(ParseName(&name));
      builder_->StartElement(name);
      for (;;) {
        cur_.SkipWhitespace();
        if (cur_.AtEnd()) return Err("unterminated start tag");
        if (cur_.TryConsume("/>")) {
          builder_->EndElement();
          return Status::Ok();
        }
        if (cur_.TryConsume(">")) break;
        if (options_.max_attributes_per_element > 0 &&
            attr_count >= options_.max_attributes_per_element) {
          return CapErr("too many attributes on one element "
                        "(max_attributes_per_element)");
        }
        ++attr_count;
        std::string aname;
        ROX_RETURN_IF_ERROR(ParseName(&aname));
        cur_.SkipWhitespace();
        if (!cur_.TryConsume("=")) return Err("expected '=' in attribute");
        cur_.SkipWhitespace();
        if (cur_.AtEnd()) return Err("unterminated attribute");
        char quote = cur_.Take();
        if (quote != '"' && quote != '\'') {
          return Err("expected quoted attribute value");
        }
        std::string raw;
        if (!cur_.TakeUntil(std::string_view(&quote, 1), &raw)) {
          return Err("unterminated attribute value");
        }
        std::string value;
        ROX_RETURN_IF_ERROR(Unescape(raw, &value));
        builder_->Attribute(aname, value);
      }
      open.push_back(std::move(name));
      return Status::Ok();
    };

    ROX_RETURN_IF_ERROR(parse_start_tag());
    while (!open.empty()) {
      if (cur_.AtEnd()) return Err("unterminated element content");
      if (cur_.Peek() == '<') {
        if (cur_.TryConsume("</")) {
          flush_text();
          std::string end_name;
          ROX_RETURN_IF_ERROR(ParseName(&end_name));
          cur_.SkipWhitespace();
          if (!cur_.TryConsume(">")) return Err("expected '>' in end tag");
          if (end_name != open.back()) {
            return Err(StrCat("mismatched end tag </", end_name,
                              ">, expected </", open.back(), ">"));
          }
          builder_->EndElement();
          open.pop_back();
          continue;
        }
        if (cur_.TryConsume("<![CDATA[")) {
          std::string cdata;
          if (!cur_.TakeUntil("]]>", &cdata)) return Err("unterminated CDATA");
          text += cdata;
          continue;
        }
        if (cur_.Peek() == '<' &&
            (cur_.PeekAt(1) == '!' || cur_.PeekAt(1) == '?')) {
          flush_text();
          ROX_RETURN_IF_ERROR(ParseMarkupDecl());
          continue;
        }
        flush_text();
        ROX_RETURN_IF_ERROR(parse_start_tag());
        continue;
      }
      // Character data (with entity expansion).
      std::string raw;
      raw.push_back(cur_.Take());
      while (!cur_.AtEnd() && cur_.Peek() != '<') raw.push_back(cur_.Take());
      std::string unescaped;
      ROX_RETURN_IF_ERROR(Unescape(raw, &unescaped));
      text += unescaped;
    }
    return Status::Ok();
  }

  Status Unescape(std::string_view raw, std::string* out) {
    out->clear();
    out->reserve(raw.size());
    for (size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] != '&') {
        out->push_back(raw[i]);
        continue;
      }
      const size_t before = out->size();
      size_t semi = raw.find(';', i);
      if (semi == std::string_view::npos) return Err("unterminated entity");
      std::string_view ent = raw.substr(i + 1, semi - i - 1);
      if (ent == "amp") {
        out->push_back('&');
      } else if (ent == "lt") {
        out->push_back('<');
      } else if (ent == "gt") {
        out->push_back('>');
      } else if (ent == "quot") {
        out->push_back('"');
      } else if (ent == "apos") {
        out->push_back('\'');
      } else if (!ent.empty() && ent[0] == '#') {
        int base = 10;
        std::string digits(ent.substr(1));
        if (!digits.empty() && (digits[0] == 'x' || digits[0] == 'X')) {
          base = 16;
          digits.erase(0, 1);
        }
        char* end = nullptr;
        long code = std::strtol(digits.c_str(), &end, base);
        if (end != digits.c_str() + digits.size() || code <= 0) {
          return Err("bad character reference");
        }
        AppendUtf8(static_cast<uint32_t>(code), out);
      } else {
        return Err(StrCat("unknown entity &", std::string(ent), ";"));
      }
      // Meter expanded output, not reference count: the supported
      // entity set cannot recurse, so total produced bytes is the
      // resource an expansion flood actually consumes.
      expanded_bytes_ += out->size() - before;
      if (options_.max_entity_expansion_bytes > 0 &&
          expanded_bytes_ > options_.max_entity_expansion_bytes) {
        return CapErr("entity expansion output too large "
                      "(max_entity_expansion_bytes)");
      }
      i = semi;
    }
    return Status::Ok();
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  static std::string Trim(std::string_view s) {
    size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
    return std::string(s.substr(b, e - b));
  }

  Cursor cur_;
  const XmlParseOptions& options_;
  DocumentBuilder* builder_;
  // Bytes produced by entity/char-ref expansion so far (whole document).
  size_t expanded_bytes_ = 0;
};

void EscapeInto(std::string_view s, bool attr, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '&':
        *out += "&amp;";
        break;
      case '<':
        *out += "&lt;";
        break;
      case '>':
        *out += "&gt;";
        break;
      case '"':
        if (attr) {
          *out += "&quot;";
        } else {
          out->push_back(c);
        }
        break;
      default:
        out->push_back(c);
    }
  }
}

void SerializeNode(const Document& doc, Pre p, std::string* out) {
  switch (doc.Kind(p)) {
    case NodeKind::kDoc: {
      Pre end = p + doc.Size(p);
      for (Pre q = p + 1; q <= end; q += doc.Size(q) + 1) {
        SerializeNode(doc, q, out);
      }
      break;
    }
    case NodeKind::kElem: {
      *out += '<';
      *out += doc.NameStr(p);
      // Attributes come first in the subtree.
      Pre end = p + doc.Size(p);
      Pre q = p + 1;
      for (; q <= end && doc.Kind(q) == NodeKind::kAttr; ++q) {
        *out += ' ';
        *out += doc.NameStr(q);
        *out += "=\"";
        EscapeInto(doc.ValueStr(q), /*attr=*/true, out);
        *out += '"';
      }
      if (q > end) {
        *out += "/>";
        break;
      }
      *out += '>';
      while (q <= end) {
        SerializeNode(doc, q, out);
        q += doc.Size(q) + 1;
      }
      *out += "</";
      *out += doc.NameStr(p);
      *out += '>';
      break;
    }
    case NodeKind::kText:
      EscapeInto(doc.ValueStr(p), /*attr=*/false, out);
      break;
    case NodeKind::kAttr:
      // Emitted by the owning element.
      break;
    case NodeKind::kComment:
      *out += "<!--";
      *out += doc.ValueStr(p);
      *out += "-->";
      break;
    case NodeKind::kPi:
      *out += "<?";
      *out += doc.NameStr(p);
      *out += ' ';
      *out += doc.ValueStr(p);
      *out += "?>";
      break;
  }
}

}  // namespace

Result<std::unique_ptr<Document>> ParseXml(std::string_view xml,
                                           std::string doc_name,
                                           std::shared_ptr<StringPool> pool,
                                           const XmlParseOptions& options) {
  if (options.max_input_bytes > 0 && xml.size() > options.max_input_bytes) {
    return Status::ResourceExhausted(
        StrCat("document of ", xml.size(), " bytes exceeds max_input_bytes (",
               options.max_input_bytes, ")"));
  }
  DocumentBuilder builder(std::move(doc_name), std::move(pool));
  Parser parser(xml, options, &builder);
  ROX_RETURN_IF_ERROR(parser.Run());
  return std::move(builder).Finish();
}

std::string SerializeXml(const Document& doc) {
  return SerializeSubtree(doc, 0);
}

std::string SerializeSubtree(const Document& doc, Pre p) {
  std::string out;
  SerializeNode(doc, p, &out);
  return out;
}

}  // namespace rox
