#include "xml/document.h"

#include "common/check.h"

namespace rox {

std::string Document::TypedValue(Pre p) const {
  if (Kind(p) == NodeKind::kText || Kind(p) == NodeKind::kAttr) {
    return std::string(ValueStr(p));
  }
  std::string out;
  Pre end = p + Size(p);
  for (Pre q = p + 1; q <= end; ++q) {
    if (kind_[q] == NodeKind::kText) out += pool_->Get(value_id_[q]);
  }
  return out;
}

StringId Document::SingleTextChildValue(Pre p) const {
  StringId found = kInvalidStringId;
  Pre end = p + Size(p);
  uint16_t child_level = static_cast<uint16_t>(level_[p] + 1);
  for (Pre q = p + 1; q <= end; ++q) {
    if (kind_[q] == NodeKind::kText && level_[q] == child_level) {
      if (found != kInvalidStringId) return kInvalidStringId;  // >1 child
      found = value_id_[q];
    }
    // Skip whole subtrees of non-matching children for speed.
    if (level_[q] == child_level && kind_[q] == NodeKind::kElem) {
      q += size_[q];
    }
  }
  return found;
}

StringId Document::AttributeValue(Pre p, StringId qattr) const {
  if (Kind(p) != NodeKind::kElem) return kInvalidStringId;
  // Attributes are stored immediately after their owner element.
  Pre end = p + Size(p);
  for (Pre q = p + 1; q <= end; ++q) {
    if (kind_[q] != NodeKind::kAttr) break;
    if (name_id_[q] == qattr) return value_id_[q];
  }
  return kInvalidStringId;
}

uint64_t Document::SerializedSizeEstimate() const {
  uint64_t bytes = 0;
  for (Pre p = 0; p < NodeCount(); ++p) {
    switch (kind_[p]) {
      case NodeKind::kDoc:
        break;
      case NodeKind::kElem:
        // <name> + </name>
        bytes += 2 * pool_->Get(name_id_[p]).size() + 5;
        break;
      case NodeKind::kAttr:
        bytes += pool_->Get(name_id_[p]).size() +
                 pool_->Get(value_id_[p]).size() + 4;
        break;
      case NodeKind::kText:
        bytes += pool_->Get(value_id_[p]).size();
        break;
      case NodeKind::kComment:
        bytes += pool_->Get(value_id_[p]).size() + 7;
        break;
      case NodeKind::kPi:
        bytes += pool_->Get(name_id_[p]).size() +
                 pool_->Get(value_id_[p]).size() + 5;
        break;
    }
  }
  return bytes;
}

uint64_t Document::CountElements(StringId q) const {
  uint64_t n = 0;
  for (Pre p = 0; p < NodeCount(); ++p) {
    if (kind_[p] == NodeKind::kElem && name_id_[p] == q) ++n;
  }
  return n;
}

// --- DocumentBuilder -------------------------------------------------------

DocumentBuilder::DocumentBuilder(std::string name,
                                 std::shared_ptr<StringPool> pool) {
  if (!pool) pool = std::make_shared<StringPool>();
  doc_ = std::unique_ptr<Document>(
      new Document(std::move(name), std::move(pool)));
  // The document node.
  Pre root = AddNode(NodeKind::kDoc, kInvalidStringId, kInvalidStringId);
  open_.push_back(root);
}

Pre DocumentBuilder::AddNode(NodeKind kind, StringId name, StringId value) {
  Pre p = static_cast<Pre>(doc_->kind_.size());
  doc_->kind_.push_back(kind);
  doc_->size_.push_back(0);
  doc_->level_.push_back(
      open_.empty() ? 0 : static_cast<uint16_t>(open_.size()));
  doc_->parent_.push_back(open_.empty() ? kInvalidPre : open_.back());
  doc_->name_id_.push_back(name);
  doc_->value_id_.push_back(value);
  return p;
}

void DocumentBuilder::StartElement(std::string_view qname) {
  StringId q = doc_->pool_->Intern(qname);
  Pre p = AddNode(NodeKind::kElem, q, kInvalidStringId);
  open_.push_back(p);
  content_started_ = false;
}

void DocumentBuilder::Attribute(std::string_view qname,
                                std::string_view value) {
  ROX_CHECK(open_.size() > 1);  // inside some element
  ROX_CHECK(!content_started_);
  StringId q = doc_->pool_->Intern(qname);
  StringId v = doc_->pool_->Intern(value);
  AddNode(NodeKind::kAttr, q, v);
}

void DocumentBuilder::Text(std::string_view value) {
  StringId v = doc_->pool_->Intern(value);
  AddNode(NodeKind::kText, kInvalidStringId, v);
  content_started_ = true;
}

void DocumentBuilder::Comment(std::string_view value) {
  StringId v = doc_->pool_->Intern(value);
  AddNode(NodeKind::kComment, kInvalidStringId, v);
  content_started_ = true;
}

void DocumentBuilder::ProcessingInstruction(std::string_view target,
                                            std::string_view value) {
  StringId t = doc_->pool_->Intern(target);
  StringId v = doc_->pool_->Intern(value);
  AddNode(NodeKind::kPi, t, v);
  content_started_ = true;
}

void DocumentBuilder::EndElement() {
  ROX_CHECK(open_.size() > 1);
  Pre p = open_.back();
  open_.pop_back();
  doc_->size_[p] = static_cast<Pre>(doc_->kind_.size()) - p - 1;
  content_started_ = true;  // parent's content has started
}

Result<std::unique_ptr<Document>> DocumentBuilder::Finish() && {
  if (open_.size() != 1) {
    return Status::FailedPrecondition("unbalanced StartElement/EndElement");
  }
  Pre root = open_.back();
  doc_->size_[root] = static_cast<Pre>(doc_->kind_.size()) - root - 1;
  return std::move(doc_);
}

}  // namespace rox
