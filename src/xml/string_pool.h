// Interned string storage shared across the documents of a corpus.
//
// Qualified names and text/attribute values are interned into u32 ids.
// Sharing one pool across documents makes cross-document value joins a
// plain integer comparison (the DBLP experiments join author text values
// across 4 documents), and keeps the per-node storage at 4 bytes.

#ifndef ROX_XML_STRING_POOL_H_
#define ROX_XML_STRING_POOL_H_

#include <cstdint>
#include <deque>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace rox {

// Id of an interned string. Ids are dense, starting at 0, and stable for
// the lifetime of the pool.
using StringId = uint32_t;

inline constexpr StringId kInvalidStringId =
    std::numeric_limits<StringId>::max();

// A reserved id guaranteed never to be interned: index lookups with it
// are empty and name comparisons are always false. Distinct from
// kInvalidStringId, which the step-execution layer (StepSpec) reads as
// "no name restriction" — the exact opposite. The read-only query
// compiler maps names the corpus has never seen to this id so they
// correctly match nothing.
inline constexpr StringId kNoSuchStringId = kInvalidStringId - 1;

// Append-only intern table. Not thread-safe; callers own synchronization.
class StringPool {
 public:
  StringPool() = default;

  // Not copyable (documents hold pointers into it); movable.
  StringPool(const StringPool&) = delete;
  StringPool& operator=(const StringPool&) = delete;
  StringPool(StringPool&&) = default;
  StringPool& operator=(StringPool&&) = default;

  // Interns `s`, returning its id (existing id if already present).
  StringId Intern(std::string_view s);

  // Returns the id of `s` or kInvalidStringId if never interned.
  StringId Find(std::string_view s) const;

  // The string for `id`. id must be valid.
  std::string_view Get(StringId id) const;

  // The numeric interpretation of the string (full-string strtod parse),
  // or nullopt if it is not a number. Computed once at intern time; used
  // by range predicates like `current/text() < 145`.
  std::optional<double> NumericValue(StringId id) const;

  size_t size() const { return strings_.size(); }

 private:
  // deque: element addresses are stable under push_back, so the
  // string_view keys in index_ stay valid (a vector would invalidate
  // views into small-string-optimized elements on reallocation).
  std::deque<std::string> strings_;
  std::vector<double> numeric_;  // NaN when not numeric
  std::unordered_map<std::string_view, StringId> index_;
};

}  // namespace rox

#endif  // ROX_XML_STRING_POOL_H_
