// Interned string storage shared across the documents of a corpus.
//
// Qualified names and text/attribute values are interned into u32 ids.
// Sharing one pool across documents makes cross-document value joins a
// plain integer comparison (the DBLP experiments join author text values
// across 4 documents), and keeps the per-node storage at 4 bytes.
//
// The pool is append-only across corpus epochs (DESIGN.md §10): an
// ingestion building epoch E+1 interns new strings while queries pinned
// to epoch E keep resolving the ids their documents were shredded with.
// Ids are dense, never reused, and stable for the lifetime of the pool,
// which is what keeps cross-epoch value joins and cached StringIds
// valid without re-interning.
//
// Concurrency: Get/NumericValue/size are lock-free — entries live in
// fixed-size blocks that never move once allocated, and the block
// directory is a flat array of atomic pointers. Intern and Find share
// one mutex (they consult the lookup map). The lock-free readers are
// the ones on query paths (per-candidate numeric predicates, result
// serialization); Find runs a handful of times per compile and Intern
// only during document ingestion.

#ifndef ROX_XML_STRING_POOL_H_
#define ROX_XML_STRING_POOL_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

namespace rox {

// Id of an interned string. Ids are dense, starting at 0, and stable for
// the lifetime of the pool.
using StringId = uint32_t;

inline constexpr StringId kInvalidStringId =
    std::numeric_limits<StringId>::max();

// A reserved id guaranteed never to be interned: index lookups with it
// are empty and name comparisons are always false. Distinct from
// kInvalidStringId, which the step-execution layer (StepSpec) reads as
// "no name restriction" — the exact opposite. The read-only query
// compiler maps names the corpus has never seen to this id so they
// correctly match nothing.
inline constexpr StringId kNoSuchStringId = kInvalidStringId - 1;

// Append-only intern table; safe for concurrent Intern + reads.
class StringPool {
 public:
  StringPool() = default;
  ~StringPool();

  // Not copyable or movable (documents hold pointers into it, and the
  // block directory contains atomics); always shared via shared_ptr.
  StringPool(const StringPool&) = delete;
  StringPool& operator=(const StringPool&) = delete;

  // Interns `s`, returning its id (existing id if already present).
  StringId Intern(std::string_view s);

  // Returns the id of `s` or kInvalidStringId if never interned.
  StringId Find(std::string_view s) const;

  // The string for `id`. id must be valid. Lock-free.
  std::string_view Get(StringId id) const;

  // The numeric interpretation of the string (full-string strtod parse),
  // or nullopt if it is not a number. Computed once at intern time; used
  // by range predicates like `current/text() < 145`. Lock-free.
  std::optional<double> NumericValue(StringId id) const;

  size_t size() const { return size_.load(std::memory_order_acquire); }

 private:
  // 4096 entries per block; 4096 blocks => up to ~16.8M distinct
  // strings, far beyond any corpus here (ROX_CHECK guards overflow).
  static constexpr size_t kBlockBits = 12;
  static constexpr size_t kBlockSize = size_t{1} << kBlockBits;
  static constexpr size_t kMaxBlocks = 4096;

  struct Entry {
    std::string str;
    double numeric = 0;  // NaN when not numeric
  };
  struct Block {
    std::array<Entry, kBlockSize> entries;
  };

  const Entry& entry(StringId id) const {
    Block* b = blocks_[id >> kBlockBits].load(std::memory_order_acquire);
    return b->entries[id & (kBlockSize - 1)];
  }

  // Published entry count. Entries are fully constructed before the
  // release store, so a reader that learned an id through any
  // synchronizing channel (snapshot publication, Intern's own return)
  // sees the entry complete.
  std::atomic<size_t> size_{0};
  // Block directory: slots start null and are set exactly once, under
  // mu_, with a release store. Blocks never move or shrink.
  std::array<std::atomic<Block*>, kMaxBlocks> blocks_{};

  // Guards index_ and the append path. The string_view keys point into
  // block entries, whose addresses are stable forever.
  mutable std::mutex mu_;
  std::unordered_map<std::string_view, StringId> index_;
};

}  // namespace rox

#endif  // ROX_XML_STRING_POOL_H_
