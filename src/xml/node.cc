#include "xml/node.h"

namespace rox {

const char* NodeKindName(NodeKind k) {
  switch (k) {
    case NodeKind::kDoc:
      return "doc";
    case NodeKind::kElem:
      return "elem";
    case NodeKind::kText:
      return "text";
    case NodeKind::kAttr:
      return "attr";
    case NodeKind::kComment:
      return "comment";
    case NodeKind::kPi:
      return "pi";
  }
  return "?";
}

const char* KindTestName(KindTest t) {
  switch (t) {
    case KindTest::kAnyKind:
      return "*";
    case KindTest::kDoc:
      return "doc";
    case KindTest::kElem:
      return "elem";
    case KindTest::kText:
      return "text";
    case KindTest::kAttr:
      return "attr";
    case KindTest::kComment:
      return "comment";
    case KindTest::kPi:
      return "pi";
  }
  return "?";
}

const char* AxisName(Axis axis) {
  switch (axis) {
    case Axis::kChild:
      return "child";
    case Axis::kDescendant:
      return "descendant";
    case Axis::kDescendantOrSelf:
      return "descendant-or-self";
    case Axis::kParent:
      return "parent";
    case Axis::kAncestor:
      return "ancestor";
    case Axis::kAncestorOrSelf:
      return "ancestor-or-self";
    case Axis::kFollowing:
      return "following";
    case Axis::kPreceding:
      return "preceding";
    case Axis::kFollowingSibling:
      return "following-sibling";
    case Axis::kPrecedingSibling:
      return "preceding-sibling";
    case Axis::kSelf:
      return "self";
    case Axis::kAttribute:
      return "attribute";
  }
  return "?";
}

Axis ReverseAxis(Axis axis) {
  switch (axis) {
    case Axis::kChild:
      return Axis::kParent;
    case Axis::kParent:
      return Axis::kChild;
    case Axis::kDescendant:
      return Axis::kAncestor;
    case Axis::kAncestor:
      return Axis::kDescendant;
    case Axis::kDescendantOrSelf:
      return Axis::kAncestorOrSelf;
    case Axis::kAncestorOrSelf:
      return Axis::kDescendantOrSelf;
    case Axis::kFollowing:
      return Axis::kPreceding;
    case Axis::kPreceding:
      return Axis::kFollowing;
    case Axis::kFollowingSibling:
      return Axis::kPrecedingSibling;
    case Axis::kPrecedingSibling:
      return Axis::kFollowingSibling;
    case Axis::kSelf:
      return Axis::kSelf;
    case Axis::kAttribute:
      return Axis::kParent;  // parent of an attribute is its owner element
  }
  return axis;
}

bool IsForwardAxis(Axis axis) {
  switch (axis) {
    case Axis::kChild:
    case Axis::kDescendant:
    case Axis::kDescendantOrSelf:
    case Axis::kFollowing:
    case Axis::kFollowingSibling:
    case Axis::kSelf:
    case Axis::kAttribute:
      return true;
    default:
      return false;
  }
}

}  // namespace rox
