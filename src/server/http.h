// A minimal, dependency-free HTTP/1.1 message layer (DESIGN.md §15).
//
// HttpParser is an *incremental* request parser: the server feeds it
// whatever bytes arrive on a socket, and it either asks for more,
// produces a complete HttpRequest, or fails with the HTTP status code
// the peer should be told (400 malformed, 413 body too large, 431
// headers too large, 501 unimplemented transfer-coding). Parsing never
// throws and never reads beyond the bytes it was given, so a
// misbehaving client can at worst earn itself an error response.
//
// Scope is deliberately small — exactly what roxd needs:
//   * request line + headers + optional Content-Length body
//   * keep-alive (HTTP/1.1 default; "Connection: close" honored)
//   * no chunked encoding, no continuation lines, no trailers
//
// BuildHttpResponse renders the matching response bytes.

#ifndef ROX_SERVER_HTTP_H_
#define ROX_SERVER_HTTP_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rox::server {

// One parsed request. Header names are stored as received; lookup is
// case-insensitive per RFC 9110.
struct HttpRequest {
  std::string method;   // "GET", "POST", ... (uppercase by convention)
  std::string target;   // "/query", "/metrics?x=1", ...
  std::string version;  // "HTTP/1.1"
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  // Case-insensitive header lookup; nullptr when absent.
  const std::string* FindHeader(std::string_view name) const;
  // True when the request asks for the connection to close after the
  // response ("Connection: close", or an HTTP/1.0 peer that did not
  // opt into keep-alive).
  bool WantsClose() const;
};

// Size caps the parser enforces (a socket peer controls these inputs).
struct HttpParserLimits {
  size_t max_header_bytes = 16 * 1024;       // request line + all headers
  size_t max_body_bytes = 4 * 1024 * 1024;   // declared Content-Length
};

// Incremental parser for a sequence of requests on one connection.
//
//   parser.Feed(data, n);
//   while (parser.HasRequest()) { HttpRequest r = parser.TakeRequest(); }
//   if (parser.failed()) { send BuildHttpResponse(parser.error_status(),...) }
class HttpParser {
 public:
  HttpParser() = default;
  explicit HttpParser(HttpParserLimits limits) : limits_(limits) {}

  // Consumes `n` bytes from the peer. Safe to call with n == 0. After
  // a parse error the parser latches failed() and ignores further
  // input (the server answers the error and closes).
  void Feed(const char* data, size_t n);

  // A complete request is ready to take.
  bool HasRequest() const { return state_ == State::kComplete; }
  // Returns the parsed request and resets for the next one on the
  // same connection. Precondition: HasRequest().
  HttpRequest TakeRequest();

  bool failed() const { return state_ == State::kError; }
  // HTTP status code describing the failure (400/413/431/501).
  int error_status() const { return error_status_; }
  const std::string& error_message() const { return error_message_; }

 private:
  enum class State { kHeaders, kBody, kComplete, kError };

  void Fail(int status, std::string message);
  // Attempts to parse buffered header bytes into request_.
  void ParseHeaders();
  void MaybeFinishBody();

  HttpParserLimits limits_;
  State state_ = State::kHeaders;
  std::string buffer_;         // unconsumed input
  HttpRequest request_;        // request being assembled
  size_t body_expected_ = 0;   // declared Content-Length
  int error_status_ = 0;
  std::string error_message_;
};

// Standard reason phrase for the status codes roxd emits ("OK",
// "Too Many Requests", ...); "Unknown" otherwise.
std::string_view HttpReasonPhrase(int status);

// Renders a full response: status line, Content-Type, Content-Length,
// Connection header (keep-alive/close), blank line, body.
std::string BuildHttpResponse(int status, std::string_view content_type,
                              std::string_view body, bool keep_alive);

}  // namespace rox::server

#endif  // ROX_SERVER_HTTP_H_
