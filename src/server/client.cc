#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace rox::server {

Status HttpClient::Connect(const std::string& host, uint16_t port) {
  if (fd_ >= 0) return Status::Ok();
  fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad host: " + host);
  }
  if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s =
        Status::Internal(std::string("connect: ") + std::strerror(errno));
    Close();
    return s;
  }
  int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  buffer_.clear();
  return Status::Ok();
}

void HttpClient::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

Result<HttpResponse> HttpClient::Request(
    std::string_view method, std::string_view target,
    const std::vector<std::pair<std::string, std::string>>& headers,
    std::string_view body) {
  if (fd_ < 0) return Status::Internal("not connected");

  std::string req;
  req.reserve(256 + body.size());
  req.append(method).append(" ").append(target).append(" HTTP/1.1\r\n");
  req.append("Host: roxd\r\n");
  for (const auto& [k, v] : headers) {
    req.append(k).append(": ").append(v).append("\r\n");
  }
  char cl[64];
  std::snprintf(cl, sizeof(cl), "Content-Length: %zu\r\n\r\n", body.size());
  req.append(cl);
  req.append(body);

  size_t sent = 0;
  while (sent < req.size()) {
    ssize_t n =
        send(fd_, req.data() + sent, req.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      Close();
      return Status::Internal(std::string("send: ") +
                              std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }

  // Read until the header section, then until Content-Length is
  // satisfied.
  HttpResponse resp;
  size_t header_end = std::string::npos;
  for (;;) {
    header_end = buffer_.find("\r\n\r\n");
    if (header_end != std::string::npos) break;
    char buf[4096];
    ssize_t n = read(fd_, buf, sizeof(buf));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      Close();
      return Status::Internal("peer closed before response headers");
    }
    buffer_.append(buf, static_cast<size_t>(n));
  }

  std::string head = buffer_.substr(0, header_end);
  buffer_.erase(0, header_end + 4);
  size_t line_end = head.find("\r\n");
  std::string status_line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  // "HTTP/1.1 200 OK"
  size_t sp = status_line.find(' ');
  if (sp == std::string::npos) {
    Close();
    return Status::Internal("malformed status line: " + status_line);
  }
  resp.status = std::atoi(status_line.c_str() + sp + 1);

  size_t content_length = 0;
  bool server_closes = false;
  size_t pos = line_end == std::string::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    size_t eol = head.find("\r\n", pos);
    std::string field = eol == std::string::npos
                            ? head.substr(pos)
                            : head.substr(pos, eol - pos);
    pos = eol == std::string::npos ? head.size() : eol + 2;
    size_t colon = field.find(':');
    if (colon == std::string::npos) continue;
    std::string name = field.substr(0, colon);
    std::string value = field.substr(colon + 1);
    while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
      value.erase(value.begin());
    }
    for (char& c : name) {
      if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
    }
    if (name == "content-length") {
      content_length = std::strtoull(value.c_str(), nullptr, 10);
    } else if (name == "connection" && value == "close") {
      server_closes = true;
    }
    resp.headers.emplace_back(std::move(name), std::move(value));
  }

  while (buffer_.size() < content_length) {
    char buf[4096];
    ssize_t n = read(fd_, buf, sizeof(buf));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      Close();
      return Status::Internal("peer closed mid-body");
    }
    buffer_.append(buf, static_cast<size_t>(n));
  }
  resp.body = buffer_.substr(0, content_length);
  buffer_.erase(0, content_length);

  if (server_closes) Close();
  return resp;
}

}  // namespace rox::server
