#include "server/http.h"

#include <cstdio>
#include <cstdlib>

namespace rox::server {

namespace {

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    char ca = a[i], cb = b[i];
    if (ca >= 'A' && ca <= 'Z') ca = static_cast<char>(ca - 'A' + 'a');
    if (cb >= 'A' && cb <= 'Z') cb = static_cast<char>(cb - 'A' + 'a');
    if (ca != cb) return false;
  }
  return true;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

// RFC 9110 token characters — what a header field name may contain.
bool IsTokenChar(char c) {
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
      (c >= '0' && c <= '9')) {
    return true;
  }
  switch (c) {
    case '!': case '#': case '$': case '%': case '&': case '\'':
    case '*': case '+': case '-': case '.': case '^': case '_':
    case '`': case '|': case '~':
      return true;
    default:
      return false;
  }
}

}  // namespace

const std::string* HttpRequest::FindHeader(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (EqualsIgnoreCase(key, name)) return &value;
  }
  return nullptr;
}

bool HttpRequest::WantsClose() const {
  const std::string* conn = FindHeader("Connection");
  if (conn != nullptr && EqualsIgnoreCase(Trim(*conn), "close")) return true;
  if (version == "HTTP/1.0") {
    return conn == nullptr || !EqualsIgnoreCase(Trim(*conn), "keep-alive");
  }
  return false;
}

void HttpParser::Fail(int status, std::string message) {
  state_ = State::kError;
  error_status_ = status;
  error_message_ = std::move(message);
  buffer_.clear();
}

void HttpParser::Feed(const char* data, size_t n) {
  if (state_ == State::kError) return;
  buffer_.append(data, n);
  if (state_ == State::kHeaders) {
    // Cap applies to the not-yet-parsed header section only; body
    // bytes that arrived with the headers are not its problem.
    ParseHeaders();
  }
  if (state_ == State::kBody) MaybeFinishBody();
}

void HttpParser::ParseHeaders() {
  size_t end = buffer_.find("\r\n\r\n");
  if (end == std::string::npos) {
    if (buffer_.size() > limits_.max_header_bytes) {
      Fail(431, "request headers exceed limit");
    }
    return;
  }
  if (end + 4 > limits_.max_header_bytes) {
    Fail(431, "request headers exceed limit");
    return;
  }
  std::string_view head(buffer_.data(), end);

  // Request line: METHOD SP TARGET SP VERSION.
  size_t line_end = head.find("\r\n");
  std::string_view line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  size_t sp1 = line.find(' ');
  size_t sp2 = sp1 == std::string_view::npos ? std::string_view::npos
                                             : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      sp1 == 0 || sp2 == sp1 + 1 || sp2 + 1 >= line.size()) {
    Fail(400, "malformed request line");
    return;
  }
  request_.method = std::string(line.substr(0, sp1));
  request_.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  request_.version = std::string(line.substr(sp2 + 1));
  for (char c : request_.method) {
    if (!IsTokenChar(c)) {
      Fail(400, "malformed method");
      return;
    }
  }
  if (request_.version != "HTTP/1.1" && request_.version != "HTTP/1.0") {
    Fail(400, "unsupported HTTP version");
    return;
  }

  // Header fields.
  size_t pos = line_end == std::string_view::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    size_t eol = head.find("\r\n", pos);
    std::string_view field = eol == std::string_view::npos
                                 ? head.substr(pos)
                                 : head.substr(pos, eol - pos);
    pos = eol == std::string_view::npos ? head.size() : eol + 2;
    if (field.empty()) continue;
    if (field.front() == ' ' || field.front() == '\t') {
      Fail(400, "obsolete header line folding");
      return;
    }
    size_t colon = field.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      Fail(400, "malformed header field");
      return;
    }
    std::string_view name = field.substr(0, colon);
    for (char c : name) {
      if (!IsTokenChar(c)) {
        Fail(400, "malformed header name");
        return;
      }
    }
    request_.headers.emplace_back(std::string(name),
                                  std::string(Trim(field.substr(colon + 1))));
  }

  buffer_.erase(0, end + 4);

  // Body framing: Content-Length only. Chunked (or any other
  // Transfer-Encoding) is outside this server's scope — tell the peer
  // rather than misframe the stream.
  if (request_.FindHeader("Transfer-Encoding") != nullptr) {
    Fail(501, "transfer encodings not implemented");
    return;
  }
  body_expected_ = 0;
  if (const std::string* cl = request_.FindHeader("Content-Length")) {
    char* parse_end = nullptr;
    unsigned long long v = std::strtoull(cl->c_str(), &parse_end, 10);
    if (cl->empty() || parse_end == nullptr || *parse_end != '\0') {
      Fail(400, "malformed Content-Length");
      return;
    }
    if (v > limits_.max_body_bytes) {
      Fail(413, "request body exceeds limit");
      return;
    }
    body_expected_ = static_cast<size_t>(v);
  }
  state_ = State::kBody;
  MaybeFinishBody();
}

void HttpParser::MaybeFinishBody() {
  if (buffer_.size() < body_expected_) return;
  request_.body = buffer_.substr(0, body_expected_);
  buffer_.erase(0, body_expected_);
  state_ = State::kComplete;
}

HttpRequest HttpParser::TakeRequest() {
  HttpRequest out = std::move(request_);
  request_ = HttpRequest();
  body_expected_ = 0;
  state_ = State::kHeaders;
  // Pipelined bytes for the next request may already be buffered.
  if (!buffer_.empty()) {
    ParseHeaders();
    if (state_ == State::kBody) MaybeFinishBody();
  }
  return out;
}

std::string_view HttpReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Content Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 499: return "Client Closed Request";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

std::string BuildHttpResponse(int status, std::string_view content_type,
                              std::string_view body, bool keep_alive) {
  char head[256];
  int n = std::snprintf(
      head, sizeof(head),
      "HTTP/1.1 %d %.*s\r\n"
      "Content-Type: %.*s\r\n"
      "Content-Length: %zu\r\n"
      "Connection: %s\r\n"
      "\r\n",
      status, static_cast<int>(HttpReasonPhrase(status).size()),
      HttpReasonPhrase(status).data(), static_cast<int>(content_type.size()),
      content_type.data(), body.size(), keep_alive ? "keep-alive" : "close");
  std::string out(head, static_cast<size_t>(n));
  out.append(body);
  return out;
}

}  // namespace rox::server
