// roxd's network front end (DESIGN.md §15): a poll()-based event loop
// that multiplexes HTTP/1.1 client sessions onto the engine's thread
// pools. No external dependencies — raw sockets + src/server/http.h.
//
// Threading model
//   * One event-loop thread owns every socket: it accepts, reads,
//     parses, writes, and closes. Connection state is touched by this
//     thread only, so it needs no locks.
//   * Query execution happens on the *engine's* pool via
//     Engine::ExecuteAsync(request, sequence, done). The done callback
//     (a pool worker) renders the HTTP response bytes off the event
//     loop, pushes them onto a mutex-protected completion queue, and
//     wakes the loop through a self-pipe.
//   * The loop drains completions by connection id. A client that
//     disconnected mid-query maps onto Engine::Kill(sequence) — the
//     query unwinds cooperatively, frees its admission slot, and its
//     completion is dropped on the floor (the id no longer resolves).
//
// Endpoints
//   POST /query    body = XQuery text; headers map onto QueryRequest:
//                  X-Deadline-Ms, X-Memory-Budget-Mb, X-Max-Rows (→
//                  QueryLimits), X-Trace-Level (off|spans|full),
//                  X-Query-Mode (execute|explain|profile),
//                  X-Client-Tag. Response: QueryResponse::ToJson.
//   GET /stats     EngineStats::ToJson (application/json)
//   GET /metrics   MetricsRegistry text exposition (Prometheus format)
//   GET /healthz   200 "ok"

#ifndef ROX_SERVER_SERVER_H_
#define ROX_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "engine/engine.h"
#include "server/http.h"

namespace rox::server {

struct ServerOptions {
  std::string host = "127.0.0.1";
  // 0 asks the kernel for an ephemeral port; HttpServer::port() reports
  // the bound one (how tests avoid port collisions).
  uint16_t port = 8080;
  // Connections beyond this are answered 503 and closed at accept.
  size_t max_connections = 1024;
  // Responses embed at most this many result rows (0 = all). The full
  // row_count is always reported and truncation is explicit
  // ("rows_truncated": true); without chunked streaming, an unbounded
  // body would be buffered whole on the single event-loop thread.
  size_t max_response_rows = 1000;
  HttpParserLimits parser_limits;
};

// Point-in-time counters (atomics snapshotted without locks; the
// turnstile totals are exact, open_connections is the loop's view).
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_closed = 0;
  uint64_t connections_refused = 0;  // over max_connections → 503
  uint64_t open_connections = 0;     // accepted - closed
  uint64_t requests_total = 0;
  uint64_t responses_2xx = 0;
  uint64_t responses_4xx = 0;
  uint64_t responses_5xx = 0;
  uint64_t queries_inflight = 0;
  uint64_t disconnect_kills = 0;  // mid-query disconnects → Engine::Kill
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
};

// One engine behind one listening socket. Start() spawns the loop;
// Stop() (or the destructor) kills in-flight server queries, drains
// them, and tears every connection down — no fd outlives the server.
class HttpServer {
 public:
  HttpServer(engine::Engine* engine, ServerOptions options);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Binds, listens, and spawns the event loop. Errors (port in use,
  // bad host) come back as kInternal with the errno text.
  Status Start();
  // Idempotent. Blocks until the loop exited and in-flight queries
  // drained (they are killed, not awaited to completion).
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  // The actually-bound port (resolves port 0).
  uint16_t port() const { return bound_port_; }

  ServerStats Snapshot() const;

  // Maps an engine Status onto the HTTP response code /query uses:
  // 200 ok, 400 invalid, 404 not-found, 429 shed/over-budget,
  // 499 cancelled, 504 deadline, 500 anything else.
  static int HttpStatusFor(const Status& status);

 private:
  struct Connection {
    int fd = -1;
    HttpParser parser;
    std::string outbuf;        // bytes not yet accepted by the socket
    std::deque<HttpRequest> pending;  // parsed, waiting on in-flight
    bool executing = false;    // a /query is on the engine pool
    uint64_t sequence = 0;     // its kill handle
    bool close_after_write = false;
  };

  // A finished query's rendered response, keyed back to its
  // connection (which may be gone — then it is dropped).
  struct Completion {
    uint64_t conn_id = 0;
    std::string bytes;
    int http_status = 0;
  };

  // State shared with engine-pool callbacks. Kept in a shared_ptr so a
  // callback outliving the server object still has somewhere safe to
  // write (Stop() drains before the pipe closes, but the engine pool
  // may invoke callbacks for killed queries after Stop returns).
  struct Shared {
    std::mutex mu;
    std::condition_variable cv;
    std::vector<Completion> completions;
    size_t inflight = 0;
    int wake_fd = -1;  // self-pipe write end; -1 once closed
  };

  void Loop();
  void AcceptNew();
  // Reads available bytes; returns false when the connection died.
  bool ReadFrom(uint64_t id, Connection& conn);
  bool FlushWrites(uint64_t id, Connection& conn);
  void ProcessRequests(uint64_t id, Connection& conn);
  void HandleRequest(uint64_t id, Connection& conn, HttpRequest req);
  void DispatchQuery(uint64_t id, Connection& conn, const HttpRequest& req);
  void QueueResponse(Connection& conn, int status,
                     std::string_view content_type, std::string_view body);
  void DrainCompletions();
  void CloseConnection(uint64_t id, bool killed_query);
  void RecordResponse(int status);

  engine::Engine* engine_;
  ServerOptions options_;

  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  uint16_t bound_port_ = 0;
  std::thread loop_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};

  std::shared_ptr<Shared> shared_ = std::make_shared<Shared>();

  uint64_t next_conn_id_ = 1;
  std::map<uint64_t, Connection> conns_;  // event-loop thread only

  // Stats (atomics: written by loop + callbacks, read by Snapshot).
  struct {
    std::atomic<uint64_t> accepted{0}, closed{0}, refused{0};
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> r2xx{0}, r4xx{0}, r5xx{0};
    std::atomic<uint64_t> disconnect_kills{0};
    std::atomic<uint64_t> bytes_read{0}, bytes_written{0};
  } stats_;
};

}  // namespace rox::server

#endif  // ROX_SERVER_SERVER_H_
