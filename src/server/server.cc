#include "server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "obs/metrics.h"

namespace rox::server {

namespace {

Status ErrnoStatus(const char* what) {
  return Status::Internal(std::string(what) + ": " +
                          std::strerror(errno));
}

bool SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

// Parses a non-negative integer header value; false on junk.
bool ParseUint(const std::string& text, uint64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  errno = 0;
  unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0' || text[0] == '-') {
    return false;
  }
  *out = v;
  return true;
}

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr std::string_view kJsonType = "application/json";
constexpr std::string_view kTextType = "text/plain; charset=utf-8";

std::string JsonError(std::string_view message) {
  std::string out = "{\"error\": \"";
  obs::AppendJsonEscaped(&out, message);
  out += "\"}\n";
  return out;
}

}  // namespace

int HttpServer::HttpStatusFor(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
    case StatusCode::kParseError:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kResourceExhausted:
      return 429;
    case StatusCode::kCancelled:
      return 499;
    case StatusCode::kDeadlineExceeded:
      return 504;
    default:
      return 500;
  }
}

HttpServer::HttpServer(engine::Engine* engine, ServerOptions options)
    : engine_(engine), options_(std::move(options)) {}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::Internal("server already running");
  }
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return ErrnoStatus("socket");
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad listen host: " + options_.host);
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status s = ErrnoStatus("bind");
    close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (listen(listen_fd_, 128) != 0) {
    Status s = ErrnoStatus("listen");
    close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  socklen_t len = sizeof(addr);
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  bound_port_ = ntohs(addr.sin_port);
  if (!SetNonBlocking(listen_fd_)) {
    close(listen_fd_);
    listen_fd_ = -1;
    return ErrnoStatus("fcntl");
  }

  int pipe_fds[2];
  if (pipe(pipe_fds) != 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    return ErrnoStatus("pipe");
  }
  wake_read_fd_ = pipe_fds[0];
  SetNonBlocking(wake_read_fd_);
  SetNonBlocking(pipe_fds[1]);
  {
    std::lock_guard<std::mutex> lock(shared_->mu);
    shared_->wake_fd = pipe_fds[1];
  }

  stop_requested_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  loop_thread_ = std::thread([this] { Loop(); });
  return Status::Ok();
}

void HttpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stop_requested_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(shared_->mu);
    if (shared_->wake_fd >= 0) {
      char b = 'q';
      (void)!write(shared_->wake_fd, &b, 1);
    }
  }
  if (loop_thread_.joinable()) loop_thread_.join();

  // The loop has exited; this thread now owns conns_. Kill whatever is
  // still on the engine pool, close every socket, and wait for the
  // kills to unwind so no callback can race the pipe teardown.
  for (auto& [id, conn] : conns_) {
    (void)id;
    if (conn.executing) {
      (void)engine_->Kill(conn.sequence);
      stats_.disconnect_kills.fetch_add(1, std::memory_order_relaxed);
    }
    close(conn.fd);
    stats_.closed.fetch_add(1, std::memory_order_relaxed);
  }
  conns_.clear();
  {
    std::unique_lock<std::mutex> lock(shared_->mu);
    shared_->cv.wait(lock, [&] { return shared_->inflight == 0; });
    if (shared_->wake_fd >= 0) {
      close(shared_->wake_fd);
      shared_->wake_fd = -1;
    }
    shared_->completions.clear();
  }
  if (wake_read_fd_ >= 0) {
    close(wake_read_fd_);
    wake_read_fd_ = -1;
  }
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
}

ServerStats HttpServer::Snapshot() const {
  ServerStats s;
  s.connections_accepted = stats_.accepted.load(std::memory_order_relaxed);
  s.connections_closed = stats_.closed.load(std::memory_order_relaxed);
  s.connections_refused = stats_.refused.load(std::memory_order_relaxed);
  s.open_connections = s.connections_accepted - s.connections_closed;
  s.requests_total = stats_.requests.load(std::memory_order_relaxed);
  s.responses_2xx = stats_.r2xx.load(std::memory_order_relaxed);
  s.responses_4xx = stats_.r4xx.load(std::memory_order_relaxed);
  s.responses_5xx = stats_.r5xx.load(std::memory_order_relaxed);
  s.disconnect_kills =
      stats_.disconnect_kills.load(std::memory_order_relaxed);
  s.bytes_read = stats_.bytes_read.load(std::memory_order_relaxed);
  s.bytes_written = stats_.bytes_written.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(shared_->mu);
    s.queries_inflight = shared_->inflight;
  }
  return s;
}

void HttpServer::Loop() {
  std::vector<pollfd> fds;
  std::vector<uint64_t> ids;  // ids[i] maps fds[i] back to conns_
  while (!stop_requested_.load(std::memory_order_acquire)) {
    fds.clear();
    ids.clear();
    fds.push_back({wake_read_fd_, POLLIN, 0});
    fds.push_back({listen_fd_, POLLIN, 0});
    for (auto& [id, conn] : conns_) {
      short events = POLLIN;  // always watch reads: disconnects too
      if (!conn.outbuf.empty()) events |= POLLOUT;
      fds.push_back({conn.fd, events, 0});
      ids.push_back(id);
    }
    int n = poll(fds.data(), fds.size(), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[0].revents != 0) {
      char buf[256];
      while (read(wake_read_fd_, buf, sizeof(buf)) > 0) {
      }
      DrainCompletions();
    }
    if (fds[1].revents != 0) AcceptNew();
    for (size_t i = 2; i < fds.size(); ++i) {
      uint64_t id = ids[i - 2];
      auto it = conns_.find(id);
      if (it == conns_.end()) continue;  // closed by an earlier event
      Connection& conn = it->second;
      short re = fds[i].revents;
      if (re == 0) continue;
      if ((re & (POLLERR | POLLNVAL)) != 0) {
        CloseConnection(id, conn.executing);
        continue;
      }
      if ((re & (POLLIN | POLLHUP)) != 0 && !ReadFrom(id, conn)) {
        CloseConnection(id, conn.executing);
        continue;
      }
      ProcessRequests(id, conn);
      if (!FlushWrites(id, conn)) {
        CloseConnection(id, conn.executing);
        continue;
      }
      if (conn.close_after_write && conn.outbuf.empty() &&
          !conn.executing) {
        CloseConnection(id, false);
      }
    }
  }
}

void HttpServer::AcceptNew() {
  for (;;) {
    int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN, or transient accept failure
    if (conns_.size() >= options_.max_connections) {
      // Over capacity: a one-shot 503 and an immediate close. The
      // socket is still blocking-fresh; a single send suffices for a
      // response this small.
      std::string resp = BuildHttpResponse(
          503, kJsonType, JsonError("server at connection capacity"),
          /*keep_alive=*/false);
      (void)send(fd, resp.data(), resp.size(), MSG_NOSIGNAL);
      close(fd);
      stats_.refused.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    SetNonBlocking(fd);
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    uint64_t id = next_conn_id_++;
    Connection conn;
    conn.fd = fd;
    conn.parser = HttpParser(options_.parser_limits);
    conns_.emplace(id, std::move(conn));
    stats_.accepted.fetch_add(1, std::memory_order_relaxed);
  }
}

bool HttpServer::ReadFrom(uint64_t id, Connection& conn) {
  (void)id;
  char buf[4096];
  for (;;) {
    ssize_t n = read(conn.fd, buf, sizeof(buf));
    if (n > 0) {
      stats_.bytes_read.fetch_add(static_cast<uint64_t>(n),
                                  std::memory_order_relaxed);
      conn.parser.Feed(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) return false;  // orderly shutdown from the peer
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    return false;
  }
}

bool HttpServer::FlushWrites(uint64_t id, Connection& conn) {
  (void)id;
  while (!conn.outbuf.empty()) {
    ssize_t n =
        send(conn.fd, conn.outbuf.data(), conn.outbuf.size(), MSG_NOSIGNAL);
    if (n > 0) {
      stats_.bytes_written.fetch_add(static_cast<uint64_t>(n),
                                     std::memory_order_relaxed);
      conn.outbuf.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    return false;
  }
  return true;
}

void HttpServer::RecordResponse(int status) {
  if (status < 400) {
    stats_.r2xx.fetch_add(1, std::memory_order_relaxed);
  } else if (status < 500) {
    stats_.r4xx.fetch_add(1, std::memory_order_relaxed);
  } else {
    stats_.r5xx.fetch_add(1, std::memory_order_relaxed);
  }
}

void HttpServer::QueueResponse(Connection& conn, int status,
                               std::string_view content_type,
                               std::string_view body) {
  bool keep_alive = !conn.close_after_write;
  conn.outbuf += BuildHttpResponse(status, content_type, body, keep_alive);
  RecordResponse(status);
}

void HttpServer::ProcessRequests(uint64_t id, Connection& conn) {
  while (conn.parser.HasRequest()) {
    conn.pending.push_back(conn.parser.TakeRequest());
  }
  if (conn.parser.failed() && !conn.close_after_write) {
    // Protocol damage is unrecoverable on this connection: answer the
    // error and close once written.
    conn.close_after_write = true;
    QueueResponse(conn, conn.parser.error_status(), kJsonType,
                  JsonError(conn.parser.error_message()));
  }
  // One query in flight per connection; further pipelined requests
  // wait their turn in arrival order.
  while (!conn.executing && !conn.pending.empty() &&
         !conn.close_after_write) {
    HttpRequest req = std::move(conn.pending.front());
    conn.pending.pop_front();
    HandleRequest(id, conn, std::move(req));
  }
}

void HttpServer::HandleRequest(uint64_t id, Connection& conn,
                               HttpRequest req) {
  stats_.requests.fetch_add(1, std::memory_order_relaxed);
  if (req.WantsClose()) conn.close_after_write = true;
  std::string path = req.target.substr(0, req.target.find('?'));

  if (path == "/query") {
    if (req.method != "POST") {
      QueueResponse(conn, 405, kJsonType, JsonError("use POST /query"));
      return;
    }
    DispatchQuery(id, conn, req);
    return;
  }
  if (path == "/healthz") {
    if (req.method != "GET") {
      QueueResponse(conn, 405, kJsonType, JsonError("use GET /healthz"));
      return;
    }
    QueueResponse(conn, 200, kTextType, "ok\n");
    return;
  }
  if (path == "/metrics") {
    if (req.method != "GET") {
      QueueResponse(conn, 405, kJsonType, JsonError("use GET /metrics"));
      return;
    }
    QueueResponse(conn, 200, kTextType,
                  engine_->metrics_registry().DumpText());
    return;
  }
  if (path == "/stats") {
    if (req.method != "GET") {
      QueueResponse(conn, 405, kJsonType, JsonError("use GET /stats"));
      return;
    }
    QueueResponse(conn, 200, kJsonType, engine_->Stats().ToJson());
    return;
  }
  QueueResponse(conn, 404, kJsonType, JsonError("no such endpoint"));
}

void HttpServer::DispatchQuery(uint64_t id, Connection& conn,
                               const HttpRequest& req) {
  engine::QueryRequest qreq;
  qreq.text = req.body;
  if (qreq.text.empty()) {
    QueueResponse(conn, 400, kJsonType,
                  JsonError("empty request body (expected XQuery text)"));
    return;
  }

  QueryLimits limits;
  uint64_t v = 0;
  if (const std::string* h = req.FindHeader("X-Deadline-Ms")) {
    if (!ParseUint(*h, &v)) {
      QueueResponse(conn, 400, kJsonType, JsonError("bad X-Deadline-Ms"));
      return;
    }
    limits.deadline_ms = static_cast<double>(v);
  }
  if (const std::string* h = req.FindHeader("X-Memory-Budget-Mb")) {
    if (!ParseUint(*h, &v)) {
      QueueResponse(conn, 400, kJsonType,
                    JsonError("bad X-Memory-Budget-Mb"));
      return;
    }
    limits.memory_budget_bytes = v * 1024 * 1024;
  }
  if (const std::string* h = req.FindHeader("X-Max-Rows")) {
    if (!ParseUint(*h, &v)) {
      QueueResponse(conn, 400, kJsonType, JsonError("bad X-Max-Rows"));
      return;
    }
    limits.max_result_rows = v;
  }
  if (limits.Any()) qreq.limits = limits;

  if (const std::string* h = req.FindHeader("X-Query-Mode")) {
    engine::QueryMode mode;
    if (!engine::ParseQueryMode(*h, &mode)) {
      QueueResponse(
          conn, 400, kJsonType,
          JsonError("bad X-Query-Mode (execute|explain|profile)"));
      return;
    }
    qreq.mode = mode;
  }
  if (const std::string* h = req.FindHeader("X-Trace-Level")) {
    obs::TraceLevel level;
    if (!obs::ParseTraceLevel(*h, &level)) {
      QueueResponse(conn, 400, kJsonType,
                    JsonError("bad X-Trace-Level (off|spans|full)"));
      return;
    }
    qreq.trace_level = level;
  }
  if (const std::string* h = req.FindHeader("X-Client-Tag")) {
    qreq.client_tag = *h;
  }

  engine::ResponseJsonOptions jopts;
  jopts.max_rows = options_.max_response_rows;
  jopts.include_trace =
      qreq.mode == engine::QueryMode::kProfile ||
      (qreq.trace_level.has_value() &&
       *qreq.trace_level != obs::TraceLevel::kOff);

  uint64_t sequence = engine_->ReserveSequence();
  conn.executing = true;
  conn.sequence = sequence;
  bool keep_alive = !conn.close_after_write;
  {
    std::lock_guard<std::mutex> lock(shared_->mu);
    ++shared_->inflight;
  }
  obs::MetricsRegistry& reg = engine_->metrics_registry();
  obs::Histogram* latency = reg.GetHistogram(
      "rox_server_query_ms", obs::Histogram::LatencyBucketsMs(),
      "server-side /query latency (dispatch to response built)");
  double start_ms = NowMs();

  std::shared_ptr<Shared> shared = shared_;
  uint64_t conn_id = id;
  engine_->ExecuteAsync(
      std::move(qreq), sequence,
      [shared, conn_id, keep_alive, jopts, latency,
       start_ms](engine::QueryResponse resp) {
        // Engine-pool thread: render the response bytes off the event
        // loop, then hand them over and wake it.
        int http = HttpStatusFor(resp.status);
        std::string bytes = BuildHttpResponse(
            http, kJsonType, resp.ToJson(jopts), keep_alive);
        if (latency != nullptr) latency->Observe(NowMs() - start_ms);
        std::lock_guard<std::mutex> lock(shared->mu);
        shared->completions.push_back(
            Completion{conn_id, std::move(bytes), http});
        --shared->inflight;
        if (shared->wake_fd >= 0) {
          char b = 'c';
          (void)!write(shared->wake_fd, &b, 1);
        }
        shared->cv.notify_all();
      });
}

void HttpServer::DrainCompletions() {
  std::vector<Completion> done;
  {
    std::lock_guard<std::mutex> lock(shared_->mu);
    done.swap(shared_->completions);
  }
  for (Completion& c : done) {
    auto it = conns_.find(c.conn_id);
    if (it == conns_.end()) continue;  // client left mid-query
    Connection& conn = it->second;
    conn.executing = false;
    conn.sequence = 0;
    conn.outbuf += c.bytes;
    RecordResponse(c.http_status);
    // A pipelined request may have been waiting on this completion.
    ProcessRequests(c.conn_id, conn);
    if (!FlushWrites(c.conn_id, conn)) {
      CloseConnection(c.conn_id, conn.executing);
      continue;
    }
    if (conn.close_after_write && conn.outbuf.empty() && !conn.executing) {
      CloseConnection(c.conn_id, false);
    }
  }
}

void HttpServer::CloseConnection(uint64_t id, bool killed_query) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  if (killed_query && it->second.executing) {
    // The peer vanished mid-query: cancel the work it no longer wants
    // so its admission slot frees up for connected clients. The
    // completion for the killed query finds this id gone and is
    // dropped.
    (void)engine_->Kill(it->second.sequence);
    stats_.disconnect_kills.fetch_add(1, std::memory_order_relaxed);
  }
  close(it->second.fd);
  conns_.erase(it);
  stats_.closed.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace rox::server
