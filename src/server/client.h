// A tiny blocking HTTP/1.1 client over one persistent connection —
// just enough to talk to roxd. Shared by the roxq CLI, the server
// integration tests, and bench_server_load (whose closed-loop clients
// each hold one of these). Not a general HTTP client: Content-Length
// framing only, no redirects, no TLS.

#ifndef ROX_SERVER_CLIENT_H_
#define ROX_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace rox::server {

struct HttpResponse {
  int status = 0;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
};

class HttpClient {
 public:
  HttpClient() = default;
  ~HttpClient() { Close(); }
  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;
  HttpClient(HttpClient&& other) noexcept
      : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
    other.fd_ = -1;
  }
  HttpClient& operator=(HttpClient&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      buffer_ = std::move(other.buffer_);
      other.fd_ = -1;
    }
    return *this;
  }

  // Opens the TCP connection (idempotent; reconnects after Close).
  Status Connect(const std::string& host, uint16_t port);
  // True between a successful Connect and Close/peer hangup.
  bool connected() const { return fd_ >= 0; }
  // Sends one request and blocks for the full response. The
  // connection stays open for the next request (keep-alive) unless
  // the server said close — then it is closed and connected() turns
  // false. kInternal when the peer hung up before a full response.
  Result<HttpResponse> Request(
      std::string_view method, std::string_view target,
      const std::vector<std::pair<std::string, std::string>>& headers,
      std::string_view body);
  // Half-closes nothing; just drops the connection (how the tests
  // fake a client vanishing mid-query).
  void Close();

 private:
  int fd_ = -1;
  std::string buffer_;  // response bytes past the previous message
};

}  // namespace rox::server

#endif  // ROX_SERVER_CLIENT_H_
