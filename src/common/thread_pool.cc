#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace rox {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

size_t ThreadPool::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

namespace {

// State shared by the caller and the helper tasks of one ParallelFor.
// Owned via shared_ptr: helper tasks may outlive the call (a worker can
// pick one up after the caller already claimed every iteration).
struct ParallelForState {
  std::function<void(size_t)> fn;
  size_t n = 0;
  std::atomic<size_t> next{0};   // next unclaimed iteration
  std::mutex mu;                 // guards done/first_error
  std::condition_variable done_cv;
  size_t done = 0;               // iterations finished (fn returned or threw)
  std::exception_ptr first_error;

  // Claims and runs iterations until none are left.
  void Drain() {
    for (;;) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      std::exception_ptr err;
      try {
        fn(i);
      } catch (...) {
        err = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(mu);
      if (err != nullptr && first_error == nullptr) first_error = err;
      if (++done == n) done_cv.notify_all();
    }
  }
};

}  // namespace

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (pool == nullptr || n == 1 || pool->num_threads() == 0) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto state = std::make_shared<ParallelForState>();
  state->fn = fn;
  state->n = n;
  // One helper per iteration beyond the caller's own: each helper drains
  // the counter, so extras that find no work exit immediately.
  size_t helpers = std::min(n - 1, pool->num_threads());
  for (size_t h = 0; h < helpers; ++h) {
    pool->Submit([state] { state->Drain(); });
  }
  state->Drain();
  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(lock, [&] { return state->done == state->n; });
  if (state->first_error != nullptr) std::rethrow_exception(state->first_error);
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      // stopping_ && empty: drain is complete.
      return;
    }
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();
    task();
    lock.lock();
    --active_;
    if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
  }
}

}  // namespace rox
