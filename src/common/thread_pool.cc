#include "common/thread_pool.h"

namespace rox {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

size_t ThreadPool::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      // stopping_ && empty: drain is complete.
      return;
    }
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();
    task();
    lock.lock();
    --active_;
    if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
  }
}

}  // namespace rox
