// Deterministic fault injection for governance-relevant sites
// (DESIGN.md §13). A failpoint is a named hook compiled into the code
// path; tests arm it with an error to return, a delay to sleep, or a
// trigger countdown, making every rarely-taken error path reachable on
// demand.
//
// The hooks are compiled OUT by default: without the ROX_FAILPOINTS
// compile definition (CMake option of the same name) the macros expand
// to nothing and the hot paths carry zero cost. The registry type
// itself is always built so tests can compile either way and skip when
// the hooks are absent.
//
//   ROX_FAILPOINT(name)      returns the armed error Status from the
//                            enclosing function (after any delay);
//                            no-op when unarmed
//   ROX_FAILPOINT_HIT(name)  boolean expression: true when the armed
//                            failpoint fires (after any delay); usable
//                            where no Status can be returned, e.g. to
//                            force a budget latch
//
// Arming is process-global and thread-safe; hit accounting is exposed
// so tests can assert a site was actually reached.

#ifndef ROX_COMMON_FAILPOINT_H_
#define ROX_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/status.h"

namespace rox {

// What an armed failpoint does when its site is hit.
struct FailpointSpec {
  // Error returned by ROX_FAILPOINT sites; kOk means delay-only.
  // ROX_FAILPOINT_HIT sites fire whenever the code is non-kOk (the
  // specific code is ignored there — the site supplies its own
  // failure semantics, e.g. forcing a budget latch).
  StatusCode code = StatusCode::kOk;
  std::string message;
  // Sleep applied before returning/firing (both macro forms).
  int64_t delay_ms = 0;
  // Fire only after this many hits have passed through (0: every hit).
  uint64_t skip_hits = 0;
  // Disarm after this many fires (0: stay armed).
  uint64_t max_fires = 0;
};

class FailpointRegistry {
 public:
  static FailpointRegistry& Global();

  // Arms `name` with `spec`, replacing any previous arming.
  void Enable(const std::string& name, FailpointSpec spec);
  void Disable(const std::string& name);
  void DisableAll();

  // Site entry point (wrapped by the macros): applies the armed spec.
  // Returns the armed error (kOk when unarmed, delay-only, skipped, or
  // expired).
  Status Hit(const char* name);

  // True when the armed failpoint fired on this hit (non-Status sites).
  bool HitBool(const char* name) { return !Hit(name).ok(); }

  // Total times the named site was reached (armed or not) since the
  // last Enable/DisableAll for it. Returns 0 for unknown names.
  uint64_t HitCount(const std::string& name) const;

 private:
  struct Armed {
    FailpointSpec spec;
    uint64_t hits = 0;
    uint64_t fires = 0;
  };

  // Fast-path guard: sites skip the mutex while nothing is armed.
  std::atomic<int> armed_count_{0};
  mutable std::mutex mu_;
  std::map<std::string, Armed> armed_;
};

}  // namespace rox

#ifdef ROX_FAILPOINTS
#define ROX_FAILPOINT(name)                                         \
  do {                                                              \
    ::rox::Status rox_fp_status_ =                                  \
        ::rox::FailpointRegistry::Global().Hit(name);               \
    if (!rox_fp_status_.ok()) return rox_fp_status_;                \
  } while (false)
#define ROX_FAILPOINT_HIT(name) \
  (::rox::FailpointRegistry::Global().HitBool(name))
#else
#define ROX_FAILPOINT(name) \
  do {                      \
  } while (false)
#define ROX_FAILPOINT_HIT(name) (false)
#endif

#endif  // ROX_COMMON_FAILPOINT_H_
