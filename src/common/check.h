// Internal invariant checking. ROX_CHECK aborts on violation; it guards
// programmer errors (broken invariants), not user input — user input
// errors are reported through Status.

#ifndef ROX_COMMON_CHECK_H_
#define ROX_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace rox::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "ROX_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace rox::internal

#define ROX_CHECK(expr)                                     \
  do {                                                      \
    if (!(expr)) {                                          \
      ::rox::internal::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                       \
  } while (false)

#define ROX_CHECK_OK(expr)                                          \
  do {                                                              \
    ::rox::Status rox_check_status_ = (expr);                       \
    if (!rox_check_status_.ok()) {                                  \
      ::rox::internal::CheckFailed(__FILE__, __LINE__,              \
                                   rox_check_status_.ToString().c_str()); \
    }                                                               \
  } while (false)

#ifdef NDEBUG
#define ROX_DCHECK(expr) \
  do {                   \
  } while (false)
#else
#define ROX_DCHECK(expr) ROX_CHECK(expr)
#endif

#endif  // ROX_COMMON_CHECK_H_
