// Small string helpers (the toolchain's std::format is incomplete on
// GCC 12, so we provide the few formatting helpers the library needs).

#ifndef ROX_COMMON_STR_UTIL_H_
#define ROX_COMMON_STR_UTIL_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace rox {

// Concatenates the stream representations of all arguments.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream oss;
  (oss << ... << args);
  return oss.str();
}

// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

// Splits `s` on the single character `sep`; keeps empty fields.
std::vector<std::string> StrSplit(std::string_view s, char sep);

// True if `s` starts with / ends with the given prefix/suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// Full-string numeric parse: the double value of `s`, or NaN when `s`
// is empty or has any non-numeric prefix/suffix. Shared by the string
// pool (which caches the parse per interned string) and the query
// compiler, so "what counts as a number" cannot diverge between index
// build and predicate compilation.
double ParseNumeric(std::string_view s);

// Formats a byte count with binary units ("1.1 MB" style, as Table 3).
std::string HumanBytes(uint64_t bytes);

// Formats a count with K/M suffixes ("43.5K" style, as Figure 3).
std::string HumanCount(double count);

}  // namespace rox

#endif  // ROX_COMMON_STR_UTIL_H_
