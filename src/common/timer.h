// Wall-clock measurement utilities used by the ROX optimizer to split
// time between sampling (optimization) and execution, and by benches.

#ifndef ROX_COMMON_TIMER_H_
#define ROX_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace rox {

// Monotonic stopwatch with nanosecond resolution.
class StopWatch {
 public:
  StopWatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  // Nanoseconds elapsed since construction or the last Restart().
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  double ElapsedMicros() const { return ElapsedNanos() / 1e3; }
  double ElapsedMillis() const { return ElapsedNanos() / 1e6; }
  double ElapsedSeconds() const { return ElapsedNanos() / 1e9; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Accumulates time across multiple start/stop intervals, e.g. total
// sampling time over a whole ROX run.
class TimeAccumulator {
 public:
  // Start/Stop pairs may nest (e.g. a sampling routine called from a
  // larger sampled phase); only the outermost pair is measured.
  void Start() {
    if (depth_++ == 0) watch_.Restart();
  }
  void Stop() {
    if (--depth_ == 0) total_nanos_ += watch_.ElapsedNanos();
  }
  void Reset() {
    total_nanos_ = 0;
    depth_ = 0;
  }

  // Folds another accumulator's total in (e.g. when merging the stats
  // of independent sub-runs).
  void Merge(const TimeAccumulator& other) {
    total_nanos_ += other.total_nanos_;
  }

  int64_t TotalNanos() const { return total_nanos_; }
  double TotalMillis() const { return total_nanos_ / 1e6; }

 private:
  StopWatch watch_;
  int64_t total_nanos_ = 0;
  int depth_ = 0;
};

// A monotonic point in time a query must finish by. Built on
// steady_clock so deadline math is immune to wall-clock adjustments —
// the same rule all latency measurement in this codebase follows
// (never system_clock). Default-constructed deadlines are infinite.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  // Infinite: never expires.
  Deadline() : when_(Clock::time_point::max()) {}
  explicit Deadline(Clock::time_point when) : when_(when) {}

  static Deadline Infinite() { return Deadline(); }
  static Deadline AfterMillis(int64_t ms) {
    return Deadline(Clock::now() + std::chrono::milliseconds(ms));
  }

  bool IsInfinite() const { return when_ == Clock::time_point::max(); }
  bool Expired() const { return !IsInfinite() && Clock::now() >= when_; }

  // Time left; clamped at zero once expired, huge when infinite.
  std::chrono::nanoseconds Remaining() const {
    if (IsInfinite()) return std::chrono::nanoseconds::max();
    auto left = when_ - Clock::now();
    return left.count() < 0 ? std::chrono::nanoseconds(0)
                            : std::chrono::duration_cast<
                                  std::chrono::nanoseconds>(left);
  }
  double RemainingMillis() const {
    if (IsInfinite()) return 1e300;
    return static_cast<double>(Remaining().count()) / 1e6;
  }

  Clock::time_point when() const { return when_; }

 private:
  Clock::time_point when_;
};

// RAII guard that accumulates the lifetime of a scope into `acc`.
class ScopedTimer {
 public:
  explicit ScopedTimer(TimeAccumulator& acc) : acc_(acc) { acc_.Start(); }
  ~ScopedTimer() { acc_.Stop(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  TimeAccumulator& acc_;
};

}  // namespace rox

#endif  // ROX_COMMON_TIMER_H_
