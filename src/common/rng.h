// Deterministic pseudo-random number generation.
//
// All randomness in the library (sampling, workload generation) flows
// through caller-owned Rng instances so that experiments are exactly
// reproducible from a seed.

#ifndef ROX_COMMON_RNG_H_
#define ROX_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace rox {

// xoshiro256** by Blackman & Vigna, seeded via SplitMix64. Fast,
// high-quality, and fully deterministic across platforms (unlike
// std::mt19937 + std::uniform_int_distribution, whose distribution
// implementations differ between standard libraries).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5ca1ab1edeadbeefULL);

  // Uniform in [0, 2^64).
  uint64_t Next();

  // Uniform in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound);

  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Between(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  // Zipf-distributed rank in [0, n) with exponent s (s=0 → uniform).
  // Uses rejection-inversion; O(1) amortized per draw.
  uint64_t Zipf(uint64_t n, double s);

  // k indices sampled uniformly without replacement from [0, n),
  // returned in increasing order. If k >= n, returns all of [0, n).
  std::vector<uint64_t> SampleWithoutReplacement(uint64_t n, uint64_t k);

  // Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  // Forks a derived, independently-seeded generator. Useful for giving
  // each document / operator its own stream while keeping determinism.
  Rng Fork();

 private:
  uint64_t s_[4];
};

}  // namespace rox

#endif  // ROX_COMMON_RNG_H_
