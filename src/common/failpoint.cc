#include "common/failpoint.h"

#include <chrono>
#include <thread>

namespace rox {

FailpointRegistry& FailpointRegistry::Global() {
  static FailpointRegistry* registry = new FailpointRegistry();
  return *registry;
}

void FailpointRegistry::Enable(const std::string& name, FailpointSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = armed_.insert_or_assign(name, Armed{std::move(spec)});
  (void)it;
  if (inserted) armed_count_.fetch_add(1, std::memory_order_release);
}

void FailpointRegistry::Disable(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (armed_.erase(name) > 0) {
    armed_count_.fetch_sub(1, std::memory_order_release);
  }
}

void FailpointRegistry::DisableAll() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_count_.fetch_sub(static_cast<int>(armed_.size()),
                         std::memory_order_release);
  armed_.clear();
}

Status FailpointRegistry::Hit(const char* name) {
  if (armed_count_.load(std::memory_order_acquire) == 0) {
    return Status::Ok();
  }
  FailpointSpec fired;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = armed_.find(name);
    if (it == armed_.end()) return Status::Ok();
    Armed& a = it->second;
    ++a.hits;
    if (a.hits <= a.spec.skip_hits) return Status::Ok();
    if (a.spec.max_fires > 0 && a.fires >= a.spec.max_fires) {
      return Status::Ok();
    }
    ++a.fires;
    fired = a.spec;
  }
  // Sleep outside the lock so a delay failpoint cannot serialize
  // unrelated sites.
  if (fired.delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(fired.delay_ms));
  }
  if (fired.code == StatusCode::kOk) return Status::Ok();
  return Status(fired.code, fired.message.empty()
                                ? std::string("failpoint ") + name
                                : fired.message);
}

uint64_t FailpointRegistry::HitCount(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = armed_.find(name);
  return it == armed_.end() ? 0 : it->second.hits;
}

}  // namespace rox
