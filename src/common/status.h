// Lightweight error propagation for the ROX library.
//
// The library does not throw exceptions across public API boundaries
// (per the project style rules); fallible operations return Status or
// Result<T>.

#ifndef ROX_COMMON_STATUS_H_
#define ROX_COMMON_STATUS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <variant>

namespace rox {

// Error categories used across the library.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kParseError,
  kInternal,
  kUnimplemented,
  // Query-lifecycle governance (DESIGN.md §13): the three ways a query
  // is stopped before producing its result.
  kCancelled,          // externally killed (\kill, client disconnect)
  kDeadlineExceeded,   // per-query deadline elapsed
  kResourceExhausted,  // memory/row budget exceeded or admission shed
};

// Returns a short human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

// A success-or-error value. Cheap to copy in the success case.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// A value-or-error wrapper. Access to the value when !ok() aborts.
template <typename T>
class Result {
 public:
  // Implicit construction from a value or an error Status keeps call
  // sites readable (`return value;` / `return Status::...;`).
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : data_(std::move(status)) {
    // An OK status carries no value; treat as internal misuse.
    if (std::get<Status>(data_).ok()) {
      data_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(data_);
  }

  const T& value() const& { return std::get<T>(data_); }
  T& value() & { return std::get<T>(data_); }
  T&& value() && { return std::move(std::get<T>(data_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

// Propagates a non-OK status out of the enclosing function.
#define ROX_RETURN_IF_ERROR(expr)             \
  do {                                        \
    ::rox::Status rox_status_ = (expr);       \
    if (!rox_status_.ok()) return rox_status_; \
  } while (false)

// Evaluates a Result<T> expression; on error returns its Status,
// otherwise assigns the value to `lhs`.
#define ROX_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value()

#define ROX_ASSIGN_OR_RETURN_CAT(a, b) a##b
#define ROX_ASSIGN_OR_RETURN_CAT2(a, b) ROX_ASSIGN_OR_RETURN_CAT(a, b)
#define ROX_ASSIGN_OR_RETURN(lhs, expr)                                     \
  ROX_ASSIGN_OR_RETURN_IMPL(ROX_ASSIGN_OR_RETURN_CAT2(rox_result_, __LINE__), \
                            lhs, expr)

}  // namespace rox

#endif  // ROX_COMMON_STATUS_H_
