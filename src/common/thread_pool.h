// A fixed-size pool of worker threads draining one shared FIFO queue.
//
// Deliberately simple — no work stealing, no priorities: the engine's
// unit of work is a whole query (milliseconds to seconds), so a single
// mutex-protected queue is nowhere near contention. Tasks are type-
// erased closures; use Async() to get a std::future for a task's
// return value.

#ifndef ROX_COMMON_THREAD_POOL_H_
#define ROX_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace rox {

class ThreadPool {
 public:
  // Starts `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  // Drains remaining tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  // Enqueues a fire-and-forget task. Must not be called after the
  // destructor has begun.
  void Submit(std::function<void()> task);

  // Enqueues `fn` and returns a future for its result. Exceptions
  // thrown by `fn` are captured into the future.
  template <typename F>
  auto Async(F fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> out = task->get_future();
    Submit([task = std::move(task)]() { (*task)(); });
    return out;
  }

  // Blocks until the queue is empty and every worker is idle. Only
  // meaningful when no other thread is submitting concurrently.
  void WaitIdle();

  // Tasks currently queued (excludes running ones).
  size_t QueueDepth() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait here for tasks
  std::condition_variable idle_cv_;   // WaitIdle waits here
  std::deque<std::function<void()>> queue_;
  size_t active_ = 0;  // tasks currently executing
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

// Runs fn(0) .. fn(n-1) and blocks until all iterations finished.
// Iterations are *claimed* from a shared atomic counter: helper tasks
// enqueued on the pool and the calling thread itself all pull from it,
// so the call makes progress even when every worker is busy — and a
// task already running on `pool` may call ParallelFor on the same pool
// without deadlocking (the caller simply executes every unclaimed
// iteration itself). The first exception thrown by fn is rethrown in
// the caller once all claimed iterations have settled. A null pool (or
// n <= 1) runs everything inline.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn);

}  // namespace rox

#endif  // ROX_COMMON_THREAD_POOL_H_
