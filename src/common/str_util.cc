#include "common/str_util.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace rox {

double ParseNumeric(std::string_view s) {
  if (s.empty()) return std::nan("");
  // Full-string parse: trailing garbage disqualifies.
  std::string buf(s);
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return std::nan("");
  return v;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> StrSplit(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string HumanBytes(uint64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  char buf[32];
  if (u == 0) {
    std::snprintf(buf, sizeof(buf), "%.0f %s", v, units[u]);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", v, units[u]);
  }
  return buf;
}

std::string HumanCount(double count) {
  char buf[32];
  if (count >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.1fM", count / 1e6);
  } else if (count >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fK", count / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", count);
  }
  return buf;
}

}  // namespace rox
