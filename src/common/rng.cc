#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace rox {

namespace {

inline uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Below(uint64_t bound) {
  ROX_CHECK(bound > 0);
  // Debiased modulo via rejection (Lemire-style threshold).
  uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::Between(int64_t lo, int64_t hi) {
  ROX_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(Below(span));
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  ROX_CHECK(n > 0);
  if (n == 1) return 0;
  if (s <= 0.0) return Below(n);
  // Rejection-inversion sampling (W. Hörmann & G. Derflinger).
  const double nd = static_cast<double>(n);
  auto h = [s](double x) {
    if (s == 1.0) return std::log(x);
    return (std::pow(x, 1.0 - s) - 1.0) / (1.0 - s);
  };
  auto h_inv = [s](double u) {
    if (s == 1.0) return std::exp(u);
    return std::pow(1.0 + u * (1.0 - s), 1.0 / (1.0 - s));
  };
  const double hx0 = h(0.5) - 1.0;
  const double hn = h(nd + 0.5);
  for (;;) {
    double u = hx0 + NextDouble() * (hn - hx0);
    double x = h_inv(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n) k = n;
    double kd = static_cast<double>(k);
    if (u >= h(kd + 0.5) - std::pow(kd, -s)) return k - 1;
  }
}

std::vector<uint64_t> Rng::SampleWithoutReplacement(uint64_t n, uint64_t k) {
  std::vector<uint64_t> out;
  if (k >= n) {
    out.resize(n);
    for (uint64_t i = 0; i < n; ++i) out[i] = i;
    return out;
  }
  out.reserve(k);
  // Algorithm S (selection sampling, Knuth TAOCP 3.4.2): one pass,
  // emits indices in increasing order.
  uint64_t seen = 0, selected = 0;
  while (selected < k) {
    double u = NextDouble();
    if ((n - seen) * u < static_cast<double>(k - selected)) {
      out.push_back(seen);
      ++selected;
    }
    ++seen;
  }
  return out;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xa0761d6478bd642fULL); }

}  // namespace rox
