// Process-wide metrics registry (DESIGN.md §12): named counters,
// gauges, and fixed-bucket histograms with lock-free hot-path updates,
// plus text/JSON exposition dumps ready for a /metrics endpoint.
//
// Instruments are registered once (under a mutex) and then updated
// wait-free through stable pointers: registration returns the existing
// instrument when the name is already taken, so concurrent engines
// aggregate into the same process-wide instrument. The ad-hoc counters
// of EngineStats/RoxStats remain as per-engine snapshot views; the
// registry is the cross-engine, cross-query aggregation of the same
// events (StatsCollector mirrors every Record into it).

#ifndef ROX_OBS_METRICS_H_
#define ROX_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace rox::obs {

// Monotonically increasing count of events.
class Counter {
 public:
  void Inc(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

// A value that can go up and down (current epoch, cache size, summed
// milliseconds). fetch_add on atomic<double> is C++20.
class Gauge {
 public:
  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  void Add(double d) { v_.fetch_add(d, std::memory_order_relaxed); }
  double Value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0};
};

// Fixed-bucket histogram: `bounds` are ascending inclusive upper
// bounds, with an implicit +inf bucket at the end. Observe() is a
// branchless-ish upper_bound over the immutable bounds plus two
// relaxed atomic adds.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  // Quantile estimated by linear interpolation within the owning
  // bucket (the +inf bucket reports its lower bound).
  double Quantile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  std::vector<uint64_t> BucketCounts() const;
  void Reset();

  // Default latency buckets: 0.25 ms .. ~8 s, doubling.
  static std::vector<double> LatencyBucketsMs();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0};
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // The process-wide registry every Engine binds to by default.
  static MetricsRegistry& Global();

  // Get-or-register. Returns the existing instrument when `name` is
  // already registered with the same kind, null when it is registered
  // with a different kind (a programming error surfaced gently).
  Counter* GetCounter(const std::string& name, std::string help = "");
  Gauge* GetGauge(const std::string& name, std::string help = "");
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds, std::string help = "");

  // Prometheus-style text exposition / one JSON object keyed by name.
  std::string DumpText() const;
  std::string DumpJson() const;

  // Zeroes every registered instrument (tests; instruments stay
  // registered and pointers stay valid).
  void ResetAll();

  size_t size() const;

 private:
  struct Entry {
    std::string help;
    // Exactly one of these is set; unique_ptr keeps addresses stable
    // across map growth.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;  // registration and dumps only, never updates
  std::map<std::string, Entry> entries_;
};

}  // namespace rox::obs

#endif  // ROX_OBS_METRICS_H_
