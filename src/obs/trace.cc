#include "obs/trace.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <functional>
#include <thread>

#include "common/check.h"

namespace rox::obs {

namespace {

uint64_t ThisThreadId() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
}

// Appends a double, printing integral values without a fraction (most
// trace numbers are cardinalities and byte counts).
void AppendNum(std::string* out, double v) {
  char buf[32];
  if (v == static_cast<double>(static_cast<int64_t>(v))) {
    std::snprintf(buf, sizeof(buf), "%" PRId64, static_cast<int64_t>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  }
  out->append(buf);
}

std::string FormatDuration(int64_t ns) {
  char buf[32];
  if (ns < 0) {
    return "open";
  }
  if (ns < 1000000) {
    std::snprintf(buf, sizeof(buf), "%.1f us",
                  static_cast<double>(ns) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f ms",
                  static_cast<double>(ns) / 1e6);
  }
  return buf;
}

}  // namespace

const char* TraceLevelName(TraceLevel level) {
  switch (level) {
    case TraceLevel::kOff:
      return "off";
    case TraceLevel::kSpans:
      return "spans";
    case TraceLevel::kFull:
      return "full";
  }
  return "?";
}

bool ParseTraceLevel(std::string_view text, TraceLevel* out) {
  if (text == "off") {
    *out = TraceLevel::kOff;
  } else if (text == "spans") {
    *out = TraceLevel::kSpans;
  } else if (text == "full") {
    *out = TraceLevel::kFull;
  } else {
    return false;
  }
  return true;
}

void AppendJsonEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      case '\r':
        out->append("\\r");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

QueryTrace::QueryTrace(TraceLevel level)
    : level_(level), birth_(std::chrono::steady_clock::now()) {}

int64_t QueryTrace::Now() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - birth_)
      .count();
}

uint32_t QueryTrace::BeginSpan(const char* name, std::string detail) {
  TraceSpan s;
  s.name = name;
  s.detail = std::move(detail);
  s.parent = open_.empty() ? -1 : static_cast<int32_t>(open_.back());
  s.start_ns = Now();
  s.thread_id = ThisThreadId();
  uint32_t id = static_cast<uint32_t>(spans_.size());
  spans_.push_back(std::move(s));
  open_.push_back(id);
  return id;
}

void QueryTrace::EndSpan(uint32_t id) {
  ROX_DCHECK(!open_.empty() && open_.back() == id);
  spans_[id].duration_ns = Now() - spans_[id].start_ns;
  open_.pop_back();
}

void QueryTrace::AttrNum(uint32_t span, const char* key, double value) {
  TraceAttr a;
  a.key = key;
  a.num = value;
  spans_[span].attrs.push_back(std::move(a));
}

void QueryTrace::AttrStr(uint32_t span, const char* key, std::string value) {
  TraceAttr a;
  a.key = key;
  a.str = std::move(value);
  a.is_num = false;
  spans_[span].attrs.push_back(std::move(a));
}

void QueryTrace::Event(const char* name, std::string detail) {
  uint32_t id = BeginSpan(name, std::move(detail));
  spans_[id].duration_ns = 0;
  open_.pop_back();
}

EdgeTrace* QueryTrace::BeginEdge(int64_t edge_id, std::string label) {
  ROX_DCHECK(open_edge_ < 0);
  EdgeTrace et;
  et.span = BeginSpan("edge", label);
  et.edge_id = edge_id;
  et.label = std::move(label);
  open_edge_ = static_cast<int64_t>(edges_.size());
  edges_.push_back(std::move(et));
  return &edges_.back();
}

void QueryTrace::EndEdge() {
  ROX_DCHECK(open_edge_ >= 0);
  EdgeTrace& et = edges_[static_cast<size_t>(open_edge_)];
  EndSpan(et.span);
  open_edge_ = -1;
}

void QueryTrace::CountSampleCall(int64_t edge_id) {
  ++total_sample_calls_;
  EdgeTrace* et = open_edge();
  if (et != nullptr && et->edge_id == edge_id) ++et->sample_calls;
}

std::string QueryTrace::ToJson() const {
  std::string out;
  out.reserve(256 + spans_.size() * 128 + edges_.size() * 128);
  out.append("{\"level\":\"");
  out.append(TraceLevelName(level_));
  out.append("\",\"spans\":[");
  for (size_t i = 0; i < spans_.size(); ++i) {
    const TraceSpan& s = spans_[i];
    if (i > 0) out.push_back(',');
    out.append("{\"name\":\"");
    AppendJsonEscaped(&out, s.name);
    out.append("\"");
    if (!s.detail.empty()) {
      out.append(",\"detail\":\"");
      AppendJsonEscaped(&out, s.detail);
      out.append("\"");
    }
    out.append(",\"parent\":");
    AppendNum(&out, s.parent);
    out.append(",\"start_ns\":");
    AppendNum(&out, static_cast<double>(s.start_ns));
    out.append(",\"dur_ns\":");
    AppendNum(&out, static_cast<double>(s.duration_ns));
    out.append(",\"tid\":\"");
    char tid[24];
    std::snprintf(tid, sizeof(tid), "%" PRIx64, s.thread_id);
    out.append(tid);
    out.append("\"");
    for (const TraceAttr& a : s.attrs) {
      out.append(",\"");
      AppendJsonEscaped(&out, a.key);
      out.append("\":");
      if (a.is_num) {
        AppendNum(&out, a.num);
      } else {
        out.push_back('"');
        AppendJsonEscaped(&out, a.str);
        out.push_back('"');
      }
    }
    out.push_back('}');
  }
  out.append("],\"edges\":[");
  for (size_t i = 0; i < edges_.size(); ++i) {
    const EdgeTrace& e = edges_[i];
    if (i > 0) out.push_back(',');
    out.append("{\"edge\":");
    AppendNum(&out, static_cast<double>(e.edge_id));
    out.append(",\"span\":");
    AppendNum(&out, e.span);
    out.append(",\"label\":\"");
    AppendJsonEscaped(&out, e.label);
    out.append("\",\"kernel\":\"");
    AppendJsonEscaped(&out, e.kernel);
    out.append("\",\"est\":");
    AppendNum(&out, e.estimated);
    out.append(",\"obs\":");
    AppendNum(&out, e.observed);
    out.append(",\"card_v1\":");
    AppendNum(&out, e.card_v1);
    out.append(",\"card_v2\":");
    AppendNum(&out, e.card_v2);
    out.append(",\"fanout_lanes\":");
    AppendNum(&out, static_cast<double>(e.fanout_lanes));
    out.append(",\"lane_rows\":[");
    for (size_t l = 0; l < e.lane_rows.size(); ++l) {
      if (l > 0) out.push_back(',');
      AppendNum(&out, static_cast<double>(e.lane_rows[l]));
    }
    out.append("],\"sample_calls\":");
    AppendNum(&out, static_cast<double>(e.sample_calls));
    out.append(",\"resamples\":");
    AppendNum(&out, static_cast<double>(e.resamples));
    out.push_back('}');
  }
  out.append("],\"total_sample_calls\":");
  AppendNum(&out, static_cast<double>(total_sample_calls_));
  out.push_back('}');
  return out;
}

std::string QueryTrace::ToTree() const {
  // children[i] = span ids whose parent is i (plus the roots at -1).
  std::vector<std::vector<uint32_t>> children(spans_.size() + 1);
  for (uint32_t i = 0; i < spans_.size(); ++i) {
    size_t slot = spans_[i].parent < 0
                      ? spans_.size()
                      : static_cast<size_t>(spans_[i].parent);
    children[slot].push_back(i);
  }
  // Edge payload by span id, for the drift annotation.
  std::vector<int64_t> edge_of(spans_.size(), -1);
  for (size_t i = 0; i < edges_.size(); ++i) {
    edge_of[edges_[i].span] = static_cast<int64_t>(i);
  }

  std::string out;
  // Recursive pre-order walk with box-drawing-free ASCII connectors.
  std::function<void(uint32_t, const std::string&, bool)> walk =
      [&](uint32_t id, const std::string& prefix, bool last) {
        const TraceSpan& s = spans_[id];
        out.append(prefix);
        if (!prefix.empty() || s.parent >= 0) {
          out.append(last ? "`- " : "|- ");
        }
        out.append(s.name);
        if (!s.detail.empty()) {
          out.push_back(' ');
          out.append(s.detail);
        }
        out.append("  (");
        out.append(FormatDuration(s.duration_ns));
        out.push_back(')');
        if (edge_of[id] >= 0) {
          const EdgeTrace& e = edges_[static_cast<size_t>(edge_of[id])];
          out.append("  [kernel=");
          out.append(e.kernel);
          out.append(" est=");
          AppendNum(&out, e.estimated);
          out.append(" obs=");
          AppendNum(&out, e.observed);
          if (e.estimated > 0 && e.observed >= 0) {
            out.append(" drift=");
            AppendNum(&out, e.observed / e.estimated);
            out.push_back('x');
          }
          if (e.fanout_lanes > 0) {
            out.append(" lanes=");
            AppendNum(&out, static_cast<double>(e.fanout_lanes));
          }
          if (e.sample_calls > 0) {
            out.append(" sample_calls=");
            AppendNum(&out, static_cast<double>(e.sample_calls));
          }
          if (e.resamples > 0) {
            out.append(" resamples=");
            AppendNum(&out, static_cast<double>(e.resamples));
          }
          out.push_back(']');
        }
        for (const TraceAttr& a : s.attrs) {
          out.append("  ");
          out.append(a.key);
          out.push_back('=');
          if (a.is_num) {
            AppendNum(&out, a.num);
          } else {
            out.append(a.str);
          }
        }
        out.push_back('\n');
        std::string child_prefix = prefix;
        if (!prefix.empty() || s.parent >= 0) {
          child_prefix.append(last ? "   " : "|  ");
        }
        const std::vector<uint32_t>& kids = children[id];
        for (size_t k = 0; k < kids.size(); ++k) {
          walk(kids[k], child_prefix, k + 1 == kids.size());
        }
      };
  const std::vector<uint32_t>& roots = children[spans_.size()];
  for (size_t r = 0; r < roots.size(); ++r) {
    walk(roots[r], "", r + 1 == roots.size());
  }
  return out;
}

}  // namespace rox::obs
