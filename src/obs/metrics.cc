#include "obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "obs/trace.h"  // AppendJsonEscaped

namespace rox::obs {

namespace {

void AppendDouble(std::string* out, double v) {
  char buf[32];
  if (v == static_cast<double>(static_cast<int64_t>(v))) {
    std::snprintf(buf, sizeof(buf), "%" PRId64, static_cast<int64_t>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  }
  out->append(buf);
}

// Prometheus metric names use '_' where ours use '.' and '/'.
std::string ExpositionName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == '.' || c == '/' || c == '-') c = '_';
  }
  return out;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::Observe(double v) {
  size_t b = static_cast<size_t>(
      std::upper_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  // upper_bound finds the first bound > v, i.e. bounds are inclusive
  // upper limits; adjust exact hits down into their bucket.
  if (b > 0 && bounds_[b - 1] == v) --b;
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

double Histogram::Quantile(double q) const {
  uint64_t total = Count();
  if (total == 0) return 0;
  double target = q * static_cast<double>(total);
  uint64_t seen = 0;
  for (size_t b = 0; b <= bounds_.size(); ++b) {
    uint64_t n = buckets_[b].load(std::memory_order_relaxed);
    if (n == 0) continue;
    if (static_cast<double>(seen + n) >= target) {
      double lo = b == 0 ? 0 : bounds_[b - 1];
      if (b == bounds_.size()) return lo;  // +inf bucket: its lower bound
      double hi = bounds_[b];
      double frac = (target - static_cast<double>(seen)) /
                    static_cast<double>(n);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    seen += n;
  }
  return bounds_.empty() ? 0 : bounds_.back();
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> out(bounds_.size() + 1);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

std::vector<double> Histogram::LatencyBucketsMs() {
  std::vector<double> out;
  for (double b = 0.25; b <= 8192.0; b *= 2) out.push_back(b);
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* g = new MetricsRegistry();  // leaked: immortal
  return *g;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     std::string help) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[name];
  if (e.gauge != nullptr || e.histogram != nullptr) return nullptr;
  if (e.counter == nullptr) {
    e.counter = std::make_unique<Counter>();
    e.help = std::move(help);
  }
  return e.counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, std::string help) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[name];
  if (e.counter != nullptr || e.histogram != nullptr) return nullptr;
  if (e.gauge == nullptr) {
    e.gauge = std::make_unique<Gauge>();
    e.help = std::move(help);
  }
  return e.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds,
                                         std::string help) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[name];
  if (e.counter != nullptr || e.gauge != nullptr) return nullptr;
  if (e.histogram == nullptr) {
    e.histogram = std::make_unique<Histogram>(std::move(bounds));
    e.help = std::move(help);
  }
  return e.histogram.get();
}

std::string MetricsRegistry::DumpText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, e] : entries_) {
    std::string expo = ExpositionName(name);
    if (!e.help.empty()) {
      out.append("# HELP ").append(expo).append(" ").append(e.help).append(
          "\n");
    }
    if (e.counter != nullptr) {
      out.append("# TYPE ").append(expo).append(" counter\n");
      out.append(expo).append(" ");
      AppendDouble(&out, static_cast<double>(e.counter->Value()));
      out.append("\n");
    } else if (e.gauge != nullptr) {
      out.append("# TYPE ").append(expo).append(" gauge\n");
      out.append(expo).append(" ");
      AppendDouble(&out, e.gauge->Value());
      out.append("\n");
    } else if (e.histogram != nullptr) {
      out.append("# TYPE ").append(expo).append(" histogram\n");
      const std::vector<double>& bounds = e.histogram->bounds();
      std::vector<uint64_t> counts = e.histogram->BucketCounts();
      uint64_t cum = 0;
      for (size_t b = 0; b < counts.size(); ++b) {
        cum += counts[b];
        out.append(expo).append("_bucket{le=\"");
        if (b == bounds.size()) {
          out.append("+Inf");
        } else {
          AppendDouble(&out, bounds[b]);
        }
        out.append("\"} ");
        AppendDouble(&out, static_cast<double>(cum));
        out.append("\n");
      }
      out.append(expo).append("_sum ");
      AppendDouble(&out, e.histogram->Sum());
      out.append("\n");
      out.append(expo).append("_count ");
      AppendDouble(&out, static_cast<double>(e.histogram->Count()));
      out.append("\n");
    }
  }
  return out;
}

std::string MetricsRegistry::DumpJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{";
  bool first = true;
  for (const auto& [name, e] : entries_) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    AppendJsonEscaped(&out, name);
    out.append("\":");
    if (e.counter != nullptr) {
      AppendDouble(&out, static_cast<double>(e.counter->Value()));
    } else if (e.gauge != nullptr) {
      AppendDouble(&out, e.gauge->Value());
    } else if (e.histogram != nullptr) {
      out.append("{\"count\":");
      AppendDouble(&out, static_cast<double>(e.histogram->Count()));
      out.append(",\"sum\":");
      AppendDouble(&out, e.histogram->Sum());
      out.append(",\"p50\":");
      AppendDouble(&out, e.histogram->Quantile(0.50));
      out.append(",\"p95\":");
      AppendDouble(&out, e.histogram->Quantile(0.95));
      out.append(",\"buckets\":[");
      std::vector<uint64_t> counts = e.histogram->BucketCounts();
      for (size_t b = 0; b < counts.size(); ++b) {
        if (b > 0) out.push_back(',');
        AppendDouble(&out, static_cast<double>(counts[b]));
      }
      out.append("]}");
    } else {
      out.append("null");
    }
  }
  out.push_back('}');
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, e] : entries_) {
    if (e.counter != nullptr) e.counter->Reset();
    if (e.gauge != nullptr) e.gauge->Reset();
    if (e.histogram != nullptr) e.histogram->Reset();
  }
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace rox::obs
