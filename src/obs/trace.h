// The query flight recorder: a structured, low-overhead event tree
// captured per query (DESIGN.md §12).
//
// A QueryTrace is a tree of *spans* — named intervals with monotonic
// start/duration and the recording thread id — plus a flat list of
// per-edge payloads (EdgeTrace) recording what ROX decided at run time:
// the chosen edge, the kernel that executed it, the estimated (sampled)
// vs. observed cardinality, re-sampling and cut-off events, shard
// fan-out widths, and gather/arena byte counts. The span taxonomy is
//
//   query                     one per Engine::Execute
//     cache_lookup            plan/result cache provenance (attrs)
//     parse                   XQuery text -> AST
//     compile                 AST -> Join Graph
//     execute                 the whole RunXQuery
//       rox                   one per connected component
//         phase1              index sampling + initial edge weights
//         chain_round         (full) one ChainSample invocation
//         edge                one per full edge execution
//           resample          (full) re-weigh events, children of edge
//         assembly            Yannakakis-style final assembly
//       gather                terminal column gather (lazy runs)
//       plan_tail             project/distinct/sort/project
//
// Ownership and threading: a trace belongs to exactly one query and is
// recorded from the query's thread only — shard fan-out workers never
// touch it (their contribution is recorded as fan-out width payloads by
// the query thread). There is no lock anywhere; cost when tracing is
// off is a single null check per instrumentation site.

#ifndef ROX_OBS_TRACE_H_
#define ROX_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace rox::obs {

// EngineOptions::trace_level. kSpans records the span tree and the
// per-edge payloads; kFull additionally records per-decision events
// (chain-sampling rounds, re-sampling, cut-off counts).
enum class TraceLevel : uint8_t { kOff = 0, kSpans = 1, kFull = 2 };

const char* TraceLevelName(TraceLevel level);
// Parses "off"/"spans"/"full"; returns false on anything else.
bool ParseTraceLevel(std::string_view text, TraceLevel* out);

// One attribute of a span: numeric or string, keyed by a static name.
struct TraceAttr {
  const char* key;
  double num = 0;
  std::string str;
  bool is_num = true;
};

struct TraceSpan {
  const char* name;      // static taxonomy name (see header comment)
  std::string detail;    // dynamic label (edge label, component id, ...)
  int32_t parent = -1;   // index into spans(); -1 for the root
  int64_t start_ns = 0;  // monotonic, relative to trace creation
  int64_t duration_ns = -1;  // -1 while the span is open
  uint64_t thread_id = 0;
  std::vector<TraceAttr> attrs;
};

// The structured payload of one full edge execution, in execution
// order. `estimated` is w(e) as ROX last sampled it before deciding to
// execute; `observed` is the materialized |R_e|. Their ratio is the
// drift \profile prints per edge.
struct EdgeTrace {
  uint32_t span = 0;  // index of the edge's span in spans()
  int64_t edge_id = -1;
  std::string label;        // JoinGraph::EdgeLabel
  const char* kernel = "";  // structural/hash/merge/index-nl/theta-*/...
  double estimated = -1;    // w(e) before execution (<0: unweighted)
  double observed = -1;     // |R_e| after execution
  double card_v1 = -1;      // endpoint cards after semi-join reduction
  double card_v2 = -1;
  uint64_t fanout_lanes = 0;  // shard fan-out width (0: sequential)
  std::vector<uint64_t> lane_rows;
  // kFull only: cut-off sampled executions of this edge observed while
  // its span (or the whole run, for pre-execution sampling) was live.
  uint64_t sample_calls = 0;
  uint64_t resamples = 0;
};

class QueryTrace {
 public:
  explicit QueryTrace(TraceLevel level);

  QueryTrace(const QueryTrace&) = delete;
  QueryTrace& operator=(const QueryTrace&) = delete;

  TraceLevel level() const { return level_; }
  bool spans_enabled() const { return level_ >= TraceLevel::kSpans; }
  bool full_enabled() const { return level_ >= TraceLevel::kFull; }

  // Opens a span as a child of the innermost open span and returns its
  // id. Spans must be closed in LIFO order (RAII via ScopedSpan).
  uint32_t BeginSpan(const char* name, std::string detail = {});
  void EndSpan(uint32_t id);

  // Attaches attributes to a span (any open or closed span id).
  void AttrNum(uint32_t span, const char* key, double value);
  void AttrStr(uint32_t span, const char* key, std::string value);

  // Records a zero-duration event span under the innermost open span.
  void Event(const char* name, std::string detail = {});

  // Opens the span of one edge execution and its payload record. At
  // most one edge can be open at a time (edge executions never nest).
  EdgeTrace* BeginEdge(int64_t edge_id, std::string label);
  EdgeTrace* open_edge() {
    return open_edge_ < 0 ? nullptr : &edges_[static_cast<size_t>(open_edge_)];
  }
  void EndEdge();

  // kFull bookkeeping: a cut-off sampled execution of `edge_id` ran.
  // Counts toward the open edge's payload when that edge is live,
  // toward the per-query totals otherwise.
  void CountSampleCall(int64_t edge_id);

  const std::vector<TraceSpan>& spans() const { return spans_; }
  const std::vector<EdgeTrace>& edges() const { return edges_; }
  uint64_t total_sample_calls() const { return total_sample_calls_; }

  // Nanoseconds since the trace was created (monotonic clock).
  int64_t Now() const;

  // Serializations: a single-object JSON document (QueryResult::
  // trace_json) and the annotated tree \profile prints.
  std::string ToJson() const;
  std::string ToTree() const;

 private:
  TraceLevel level_;
  std::chrono::steady_clock::time_point birth_;
  std::vector<TraceSpan> spans_;
  std::vector<EdgeTrace> edges_;
  std::vector<uint32_t> open_;  // stack of open span ids
  int64_t open_edge_ = -1;
  uint64_t total_sample_calls_ = 0;
};

// RAII span, null-safe: a null or spans-disabled trace costs one
// branch and records nothing.
class ScopedSpan {
 public:
  ScopedSpan(QueryTrace* trace, const char* name, std::string detail = {})
      : trace_(trace != nullptr && trace->spans_enabled() ? trace : nullptr) {
    if (trace_ != nullptr) id_ = trace_->BeginSpan(name, std::move(detail));
  }
  ~ScopedSpan() {
    if (trace_ != nullptr) trace_->EndSpan(id_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool armed() const { return trace_ != nullptr; }
  uint32_t id() const { return id_; }
  void AttrNum(const char* key, double value) {
    if (trace_ != nullptr) trace_->AttrNum(id_, key, value);
  }
  void AttrStr(const char* key, std::string value) {
    if (trace_ != nullptr) trace_->AttrStr(id_, key, std::move(value));
  }

 private:
  QueryTrace* trace_;
  uint32_t id_ = 0;
};

// Minimal JSON string escaping (shared by trace and metrics dumps).
void AppendJsonEscaped(std::string* out, std::string_view s);

}  // namespace rox::obs

#endif  // ROX_OBS_TRACE_H_
