#include "engine/query_cache.h"

namespace rox::engine {

std::string QueryCache::Normalize(std::string_view query) {
  std::string out;
  out.reserve(query.size());
  char quote = 0;      // inside "..." or '...' when non-zero
  bool pending = false;  // a whitespace run is waiting to be emitted
  for (char c : query) {
    if (quote != 0) {
      out.push_back(c);
      if (c == quote) quote = 0;
      continue;
    }
    if (c == '"' || c == '\'') {
      if (pending && !out.empty()) out.push_back(' ');
      pending = false;
      out.push_back(c);
      quote = c;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      pending = true;
      continue;
    }
    if (pending && !out.empty()) out.push_back(' ');
    pending = false;
    out.push_back(c);
  }
  return out;
}

const std::string& QueryCache::EncodeKey(uint64_t epoch,
                                         const std::string& key) {
  scratch_key_.clear();
  scratch_key_ += std::to_string(epoch);
  scratch_key_.push_back('\x1f');
  scratch_key_ += key;
  return scratch_key_;
}

CacheEntry* QueryCache::Lookup(uint64_t epoch, const std::string& key,
                               bool count_hit) {
  auto it = by_key_.find(EncodeKey(epoch, key));
  if (it == by_key_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);
  CacheEntry& e = lru_.front().entry;
  if (count_hit) ++e.hits;
  return &e;
}

CacheEntry* QueryCache::Insert(uint64_t epoch, const std::string& key,
                               CacheEntry entry) {
  entry.epoch = epoch;
  const std::string& map_key = EncodeKey(epoch, key);
  auto it = by_key_.find(map_key);
  if (it != by_key_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    lru_.front().entry = std::move(entry);
    return &lru_.front().entry;
  }
  lru_.push_front(Node{epoch, map_key, std::move(entry)});
  by_key_.emplace(map_key, lru_.begin());
  if (lru_.size() > capacity_) {
    by_key_.erase(lru_.back().map_key);
    lru_.pop_back();
    ++evictions_;
  }
  return &lru_.front().entry;
}

size_t QueryCache::EvictBefore(uint64_t epoch) {
  size_t dropped = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->epoch < epoch) {
      by_key_.erase(it->map_key);
      it = lru_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  invalidations_ += dropped;
  return dropped;
}

void QueryCache::Clear() {
  lru_.clear();
  by_key_.clear();
}

std::vector<QueryCache::Listing> QueryCache::List() const {
  std::vector<Listing> out;
  out.reserve(lru_.size());
  for (const Node& n : lru_) {
    out.push_back(Listing{std::string(n.text_key()), n.epoch, n.entry.hits,
                          !n.entry.warm_edge_weights.empty(),
                          n.entry.result != nullptr});
  }
  return out;
}

}  // namespace rox::engine
