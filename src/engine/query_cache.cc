#include "engine/query_cache.h"

namespace rox::engine {

std::string QueryCache::Normalize(std::string_view query) {
  std::string out;
  out.reserve(query.size());
  char quote = 0;      // inside "..." or '...' when non-zero
  bool pending = false;  // a whitespace run is waiting to be emitted
  for (char c : query) {
    if (quote != 0) {
      out.push_back(c);
      if (c == quote) quote = 0;
      continue;
    }
    if (c == '"' || c == '\'') {
      if (pending && !out.empty()) out.push_back(' ');
      pending = false;
      out.push_back(c);
      quote = c;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      pending = true;
      continue;
    }
    if (pending && !out.empty()) out.push_back(' ');
    pending = false;
    out.push_back(c);
  }
  return out;
}

CacheEntry* QueryCache::Lookup(const std::string& key, bool count_hit) {
  auto it = by_key_.find(key);
  if (it == by_key_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);
  CacheEntry& e = lru_.front().entry;
  if (count_hit) ++e.hits;
  return &e;
}

CacheEntry* QueryCache::Insert(const std::string& key, CacheEntry entry) {
  auto it = by_key_.find(key);
  if (it != by_key_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    lru_.front().entry = std::move(entry);
    return &lru_.front().entry;
  }
  lru_.push_front(Node{key, std::move(entry)});
  by_key_.emplace(key, lru_.begin());
  if (lru_.size() > capacity_) {
    by_key_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
  }
  return &lru_.front().entry;
}

void QueryCache::Clear() {
  lru_.clear();
  by_key_.clear();
}

std::vector<QueryCache::Listing> QueryCache::List() const {
  std::vector<Listing> out;
  out.reserve(lru_.size());
  for (const Node& n : lru_) {
    out.push_back(Listing{n.key, n.entry.hits, !n.entry.warm_edge_weights.empty(),
                          n.entry.result != nullptr});
  }
  return out;
}

}  // namespace rox::engine
