// The unified public query API of the Engine (DESIGN.md §15).
//
// Every way of asking the engine a question — the shell, the benches,
// the test suites, and the network server — goes through one pair:
//
//   QueryRequest   what to run: the query text, the execution mode
//                  (execute / explain / profile), per-query limits,
//                  a trace-level override, and a client tag
//   QueryResponse  what came back: the status, the QueryResult (items,
//                  pinned snapshot, optimizer stats, trace), and — for
//                  explain mode — the rendered plan text
//
// Engine::Execute(const QueryRequest&) is the single entry point; the
// legacy Run/Submit/Explain/Profile overloads on Engine are thin shims
// over it (kept for source compatibility, documented as deprecated).
//
// QueryResponse::ToJson is the *stable wire format*: the HTTP server's
// /query handler and xq_shell's --json printer emit exactly this, and
// tests/query_api_test.cc pins it against a golden file so the format
// cannot drift silently.

#ifndef ROX_ENGINE_QUERY_API_H_
#define ROX_ENGINE_QUERY_API_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "engine/governor.h"
#include "index/corpus.h"
#include "obs/trace.h"
#include "rox/state.h"
#include "xq/compile.h"

namespace rox::engine {

// What kind of answer the request wants.
enum class QueryMode : uint8_t {
  kExecute = 0,  // run the query, return its items
  kExplain,      // compile + Phase-1 estimates only, no execution
  kProfile,      // execute with a forced full trace, replay bypassed
};

// "execute" / "explain" / "profile" (the wire spelling).
const char* QueryModeName(QueryMode mode);
// Parses the wire spelling (case-insensitive). False on anything else.
bool ParseQueryMode(std::string_view text, QueryMode* out);

// One query, fully specified. Everything beyond `text` is optional:
// the defaults reproduce Engine::Run(text) exactly.
struct QueryRequest {
  std::string text;

  QueryMode mode = QueryMode::kExecute;

  // Per-query resource caps; unset applies the engine's
  // EngineOptions::default_limits.
  std::optional<QueryLimits> limits;

  // Flight-recorder level for this query; unset applies the engine's
  // EngineOptions::trace_level. kProfile mode forces kFull regardless.
  std::optional<obs::TraceLevel> trace_level;

  // Serve a memoized result without executing when one is cached.
  // kProfile mode always executes regardless.
  bool allow_result_replay = true;

  // Free-form caller identity ("bench:load", a peer address, ...);
  // recorded on the trace root span and in the response JSON.
  std::string client_tag;
};

// Everything one query produced.
struct QueryResult {
  Status status = Status::Ok();
  // The compiled query (shared with the cache); null on compile errors.
  std::shared_ptr<const xq::CompiledQuery> compiled;
  // The result node sequence; null on any error.
  std::shared_ptr<const std::vector<Pre>> items;
  // Document of the result items (the return variable's document).
  DocId result_doc = kInvalidDocId;
  // The corpus epoch this query ran against, and the pinned snapshot
  // itself — holding the result keeps its epoch alive, so result Pre
  // ids can always be resolved against `snapshot` even after later
  // publishes (the shell serializes results through it, and the
  // differential fuzz harness rebuilds reference engines from it).
  uint64_t epoch = 0;
  std::shared_ptr<const Corpus> snapshot;
  // Optimizer statistics (zeroed for result-cache hits: nothing ran).
  RoxStats rox_stats;
  bool plan_cache_hit = false;
  bool result_cache_hit = false;
  bool warm_started = false;
  double wall_ms = 0;
  // Engine-assigned sequence number (also the query's RNG stream id,
  // and the handle Engine::Kill takes).
  uint64_t sequence = 0;
  // Bytes the query's memory budget metered (arena blocks, adopted
  // columns, eager pair-result materializations). Informational even
  // when no budget limit was set.
  uint64_t memory_bytes = 0;
  // The query's flight recorder; null when the effective trace level
  // was kOff (the default).
  std::shared_ptr<const obs::QueryTrace> trace;

  bool ok() const { return status.ok(); }
  // The trace as one JSON document ("{}" when tracing was off) — what
  // benches and the fuzz harness dump on failure.
  std::string trace_json() const { return trace ? trace->ToJson() : "{}"; }
};

// Knobs of the JSON serialization. The *shape* of the output never
// changes with these; they only bound row volume and drop fields whose
// values are nondeterministic (timings) or bulky (traces).
struct ResponseJsonOptions {
  // Serialize at most this many result rows (0 = all). `row_count` in
  // the JSON always reports the full count, and `rows_truncated` is
  // emitted (true) whenever rows were dropped.
  size_t max_rows = 0;
  // Include wall/sampling/execution timings and memory in "stats".
  // Off for golden-file comparisons — timings are nondeterministic.
  bool include_timings = true;
  // Embed the flight-recorder trace as a "trace" object (only present
  // when the query recorded one).
  bool include_trace = false;
};

// One query's answer: the unified return type of Engine::Execute.
struct QueryResponse {
  // Mirrors result.status for execute/profile; the Explain status for
  // explain mode.
  Status status = Status::Ok();
  QueryMode mode = QueryMode::kExecute;
  QueryResult result;
  // The rendered plan (explain mode only; empty otherwise).
  std::string explain_text;
  // Echo of QueryRequest::client_tag.
  std::string client_tag;

  bool ok() const { return status.ok(); }
  uint64_t epoch() const { return result.epoch; }
  uint64_t sequence() const { return result.sequence; }

  // The stable wire serialization (DESIGN.md §15):
  //   {"status": {"code": "...", "message": "..."}, "mode": "...",
  //    "sequence": N, "epoch": N, "row_count": N, "rows": [...],
  //    "rows_truncated": bool?, "explain": "..."?, "client_tag": "..."?,
  //    "stats": {...}, "trace": {...}?}
  // Rows are the results' XML subtree serializations, in document
  // order. Pinned by the golden-file test; extend only by *adding*
  // fields.
  std::string ToJson(const ResponseJsonOptions& opts = {}) const;
};

// Serializes up to `max_rows` result items (0 = all) as XML subtree
// strings through the result's pinned snapshot — the row
// serialization shared by QueryResponse::ToJson and xq_shell's
// pretty-printer. Empty when the result holds no items.
std::vector<std::string> SerializeResultRows(const QueryResult& result,
                                             size_t max_rows = 0);

}  // namespace rox::engine

#endif  // ROX_ENGINE_QUERY_API_H_
