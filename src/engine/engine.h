// The concurrent query engine: a session layer over the single-query
// ROX pipeline (parse -> compile -> run-time optimize -> plan tail).
//
// An Engine owns
//   * an immutable Corpus, shared read-only by every in-flight query —
//     immutability is what makes lock-free sharing sound: compilation
//     only *looks up* names/literals in the string pool (see
//     xq::CompileXQuery) and execution reads documents and indexes,
//   * a fixed ThreadPool executing submitted queries,
//   * an LRU QueryCache keyed by normalized query text, holding the
//     compiled Join Graph, the edge weights learned by prior runs
//     (warm-starting ROX's Phase 1, RoxOptions::use_warm_start), and
//     optionally the final result sequence,
//   * a StatsCollector aggregating latency/cache/optimizer statistics.
//
// Every in-flight query gets its own RoxState and an independently
// seeded RNG stream (base seed mixed with the query's sequence number),
// so concurrent runs never share mutable state. Result sequences are
// deterministic regardless of seed or thread interleaving: ROX's join
// order affects only performance, and the plan tail sorts in document
// order.

#ifndef ROX_ENGINE_ENGINE_H_
#define ROX_ENGINE_ENGINE_H_

#include <atomic>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "engine/engine_stats.h"
#include "engine/query_cache.h"
#include "index/corpus.h"
#include "index/sharded_corpus.h"
#include "rox/options.h"
#include "xq/compile.h"

namespace rox::engine {

struct EngineOptions {
  // Worker threads of the owned pool. RunBatch can run at any
  // concurrency up to this.
  size_t num_threads = 8;

  // LRU entries of the query cache; 0 behaves as 1.
  size_t cache_capacity = 256;

  // Master switch for the query cache (plans, weights, results).
  bool enable_cache = true;

  // Feed the edge weights learned by a prior run of the same query
  // back into ROX's Phase 1 (also gated by rox.use_warm_start).
  bool warm_start = true;

  // Replay the memoized final item sequence for a repeated query
  // without running it. Sound because the corpus is immutable.
  bool cache_results = true;

  // Corpus shards for parallel *intra*-query execution: every document's
  // node-id range is split into `num_shards` contiguous pieces with
  // their own indexes, and each full materialization step of a query
  // fans out per shard on a dedicated shard pool. 1 (the default) is
  // today's monolithic executor; results are identical for every value.
  size_t num_shards = 1;

  // Workers of the shard pool (0 = num_shards). Kept separate from the
  // query pool so a query thread waiting on its fan-out can never
  // starve the fan-out of workers.
  size_t shard_threads = 0;

  // Late materialization (DESIGN.md §8): intermediates stay selection-
  // vector views and full row gather happens once, at the plan tail.
  // Results are byte-identical either way; off runs the eager row-
  // copying path (the differential-testing / perf baseline). Both this
  // and rox.lazy_materialization must be set for a lazy run.
  bool lazy_materialization = true;

  // Which shard serves ROX Phase-1 sample draws;
  // ShardedExec::kSampleUnion (the default) draws from the full
  // indexes, keeping optimizer behavior identical to the unsharded
  // engine (see index/sharded_corpus.h).
  int sample_shard = ShardedExec::kSampleUnion;

  // Base per-query optimizer options; each query's seed is derived
  // from rox.seed and the query's sequence number.
  RoxOptions rox;
  xq::CompileOptions compile;
};

// Everything one query produced.
struct QueryResult {
  Status status = Status::Ok();
  // The compiled query (shared with the cache); null on compile errors.
  std::shared_ptr<const xq::CompiledQuery> compiled;
  // The result node sequence; null on any error.
  std::shared_ptr<const std::vector<Pre>> items;
  // Document of the result items (the return variable's document).
  DocId result_doc = kInvalidDocId;
  // Optimizer statistics (zeroed for result-cache hits: nothing ran).
  RoxStats rox_stats;
  bool plan_cache_hit = false;
  bool result_cache_hit = false;
  bool warm_started = false;
  double wall_ms = 0;
  // Engine-assigned sequence number (also the query's RNG stream id).
  uint64_t sequence = 0;

  bool ok() const { return status.ok(); }
};

class Engine {
 public:
  // Takes ownership of the corpus; it is frozen from here on.
  explicit Engine(Corpus corpus, EngineOptions options = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  const Corpus& corpus() const { return corpus_; }
  const EngineOptions& options() const { return options_; }

  // The sharded view, or null when num_shards <= 1.
  const ShardedCorpus* sharded_corpus() const { return sharded_corpus_.get(); }

  // Asynchronous execution on the owned pool.
  std::future<QueryResult> Submit(std::string query_text);

  // Synchronous execution on the calling thread (same cache/stats).
  QueryResult Run(std::string query_text);

  // Executes `queries` with at most `concurrency` in flight at a time
  // (0 = pool size; capped at the pool size) and returns results in
  // input order. Blocks until the whole batch is done.
  std::vector<QueryResult> RunBatch(const std::vector<std::string>& queries,
                                    size_t concurrency = 0);

  // Statistics snapshot / reset (reset also restarts the qps clock).
  EngineStats Stats() const {
    EngineStats out = stats_.Snapshot();
    out.num_shards = options_.num_shards > 0 ? options_.num_shards : 1;
    return out;
  }
  void ResetStats() { stats_.Reset(); }

  // Cache inspection (the shell's \cache command).
  std::vector<QueryCache::Listing> CacheContents() const;
  size_t CacheSize() const;
  uint64_t CacheEvictions() const;
  void ClearCache();

 private:
  QueryResult Execute(const std::string& text, uint64_t seq);

  Corpus corpus_;
  EngineOptions options_;
  StatsCollector stats_;

  mutable std::mutex cache_mu_;
  QueryCache cache_;

  // Sharded intra-query execution (null / unused when num_shards <= 1).
  // Declared before pool_ so in-flight queries drain first on teardown.
  std::unique_ptr<ThreadPool> shard_pool_;
  std::unique_ptr<ShardedCorpus> sharded_corpus_;
  ShardedExec sharded_exec_;

  std::atomic<uint64_t> next_sequence_{0};

  // Declared last: destroyed first, so workers drain while the corpus,
  // cache and stats above are still alive.
  ThreadPool pool_;
};

}  // namespace rox::engine

#endif  // ROX_ENGINE_ENGINE_H_
