// The concurrent query engine: a session layer over the single-query
// ROX pipeline (parse -> compile -> run-time optimize -> plan tail).
//
// An Engine owns
//   * a *live* corpus, published as a sequence of immutable epoch
//     snapshots (DESIGN.md §10): every in-flight query pins the epoch
//     it started on via a shared_ptr CorpusSnapshot, so execution
//     always sees one frozen corpus — the invariant every layer below
//     (compilation, sampling, sharded fan-out) was built on — while
//     AddDocuments/RemoveDocument copy-on-write the next epoch and
//     publish it atomically,
//   * a fixed ThreadPool executing submitted queries,
//   * an LRU QueryCache keyed by (epoch, normalized query text),
//     holding the compiled Join Graph, the edge weights learned by
//     prior runs (warm-starting ROX's Phase 1), and optionally the
//     final result sequence — all invalidated on publish,
//   * a StatsCollector aggregating latency/cache/optimizer/epoch
//     statistics,
//   * a governance layer (DESIGN.md §13): every query runs under a
//     CancellationToken + MemoryBudget pair (deadline, kill switch,
//     memory cap, result-row cap), and an optional AdmissionGate
//     bounds concurrent + queued queries, shedding the excess.
//
// Every in-flight query gets its own RoxState and an independently
// seeded RNG stream (base seed mixed with the query's sequence number),
// so concurrent runs never share mutable state. Result sequences are
// deterministic for a given epoch regardless of seed or thread
// interleaving: ROX's join order affects only performance, and the
// plan tail sorts in document order.

#ifndef ROX_ENGINE_ENGINE_H_
#define ROX_ENGINE_ENGINE_H_

#include <atomic>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "engine/engine_stats.h"
#include "engine/governor.h"
#include "engine/query_api.h"
#include "engine/query_cache.h"
#include "index/corpus.h"
#include "index/sharded_corpus.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rox/options.h"
#include "xq/compile.h"

namespace rox::engine {

struct EngineOptions {
  // Worker threads of the owned pool. RunBatch can run at any
  // concurrency up to this.
  size_t num_threads = 8;

  // LRU entries of the query cache; 0 behaves as 1.
  size_t cache_capacity = 256;

  // Master switch for the query cache (plans, weights, results).
  bool enable_cache = true;

  // Feed the edge weights learned by a prior run of the same query
  // back into ROX's Phase 1 (also gated by rox.use_warm_start).
  bool warm_start = true;

  // Replay the memoized final item sequence for a repeated query
  // without running it. Sound because entries are keyed by epoch and
  // each epoch is immutable.
  bool cache_results = true;

  // Corpus shards for parallel *intra*-query execution: every document's
  // node-id range is split into `num_shards` contiguous pieces with
  // their own indexes, and each full materialization step of a query
  // fans out per shard on a dedicated shard pool. 1 (the default) is
  // today's monolithic executor; results are identical for every value.
  // The sharded view is rebuilt incrementally on publish: only
  // added/changed documents re-index.
  size_t num_shards = 1;

  // Workers of the shard pool (0 = num_shards). Kept separate from the
  // query pool so a query thread waiting on its fan-out can never
  // starve the fan-out of workers.
  size_t shard_threads = 0;

  // Late materialization (DESIGN.md §8): intermediates stay selection-
  // vector views and full row gather happens once, at the plan tail.
  // Results are byte-identical either way; off runs the eager row-
  // copying path (the differential-testing / perf baseline). Both this
  // and rox.lazy_materialization must be set for a lazy run.
  bool lazy_materialization = true;

  // Which shard serves ROX Phase-1 sample draws;
  // ShardedExec::kSampleUnion (the default) draws from the full
  // indexes, keeping optimizer behavior identical to the unsharded
  // engine (see index/sharded_corpus.h).
  int sample_shard = ShardedExec::kSampleUnion;

  // Query flight recorder (DESIGN.md §12): kOff records nothing and
  // costs one null check per instrumentation site; kSpans captures the
  // span tree and per-edge payloads; kFull adds per-decision events
  // (chain rounds, re-sampling, cut-off counts). \profile overrides
  // this to kFull for its one query.
  obs::TraceLevel trace_level = obs::TraceLevel::kOff;

  // The metrics registry this engine's StatsCollector mirrors into;
  // null binds the process-wide obs::MetricsRegistry::Global() (tests
  // inject private registries).
  obs::MetricsRegistry* metrics = nullptr;

  // Query-lifecycle governance (DESIGN.md §13). `default_limits`
  // applies to every query that does not carry its own QueryLimits
  // (the Run/Submit overloads); all-zero (the default) runs unbounded.
  QueryLimits default_limits;

  // Admission control: at most this many queries execute concurrently
  // while at most `max_queued_queries` wait for a slot; anything beyond
  // is shed immediately with kResourceExhausted. A queued query whose
  // deadline lapses leaves with kDeadlineExceeded without running.
  // 0 (the default) disables the gate entirely.
  size_t max_concurrent_queries = 0;
  size_t max_queued_queries = 64;

  // Base per-query optimizer options; each query's seed is derived
  // from rox.seed and the query's sequence number.
  RoxOptions rox;
  xq::CompileOptions compile;
};

// One document to ingest: the XML text plus the name doc("name")
// resolves.
struct IngestDoc {
  std::string name;
  std::string xml;
};

// QueryRequest / QueryResult / QueryResponse — the unified query API —
// live in engine/query_api.h (DESIGN.md §15).

class Engine {
 public:
  // Takes ownership of the corpus as epoch `corpus.epoch()` (0 for a
  // freshly built one); it is immutable from here on — further change
  // goes through AddDocuments/RemoveDocument, which publish successor
  // epochs.
  explicit Engine(Corpus corpus, EngineOptions options = {});

  // Serves an already-pinned snapshot (shares it — e.g. the fuzz
  // harness's fresh single-epoch reference engines).
  explicit Engine(std::shared_ptr<const Corpus> corpus,
                  EngineOptions options = {});

  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // The currently published epoch's corpus. The reference stays valid
  // until the next publish; callers that outlive a publish (or race
  // one) must pin via CurrentSnapshot() instead.
  const Corpus& corpus() const { return *Published()->corpus; }
  const EngineOptions& options() const { return options_; }

  // Pins the currently published epoch.
  std::shared_ptr<const Corpus> CurrentSnapshot() const {
    return Published()->corpus;
  }
  uint64_t CurrentEpoch() const {
    return current_epoch_.load(std::memory_order_acquire);
  }

  // The current epoch's sharded view, or null when num_shards <= 1.
  // Same lifetime caveat as corpus().
  const ShardedCorpus* sharded_corpus() const {
    return Published()->sharded.get();
  }

  // --- live ingestion (DESIGN.md §10) ---------------------------------------
  //
  // Both calls copy-on-write the next epoch from the current one,
  // parse/index only the delta, and atomically publish it: queries in
  // flight keep their pinned epoch; queries arriving after the call
  // returns see the new one. Cache entries of dead epochs are purged.
  // Writers are serialized; a failed build publishes nothing.

  // Parses and adds `docs` as one new epoch. Returns the assigned
  // DocIds (in input order). An empty vector is a no-op (no publish).
  Result<std::vector<DocId>> AddDocuments(std::vector<IngestDoc> docs);

  // Tombstones the named document in a new epoch. DocIds are never
  // reused; pinned older epochs still serve the document.
  Status RemoveDocument(std::string_view name);

  // --- unified query API (DESIGN.md §15) ------------------------------------
  //
  // The single entry point every surface routes through: the request
  // carries the text, the mode (execute/explain/profile), optional
  // per-query limits and trace level, and a client tag. Synchronous;
  // runs on the calling thread against the engine's cache and stats.
  QueryResponse Execute(const QueryRequest& request);

  // Executes under a sequence number obtained earlier from
  // ReserveSequence() — the server's dispatch path: it learns the
  // handle Kill() takes *before* the query starts, so a client
  // disconnect racing query startup still has something to kill.
  QueryResponse Execute(const QueryRequest& request, uint64_t sequence);

  // Asynchronous Execute on the owned pool.
  std::future<QueryResponse> ExecuteAsync(QueryRequest request);

  // Callback-style asynchronous Execute under a pre-reserved sequence
  // number: `done` runs on the pool thread right after the query
  // finishes (the server's completion-queue hookup). `done` must not
  // block for long — it occupies a query worker.
  void ExecuteAsync(QueryRequest request, uint64_t sequence,
                    std::function<void(QueryResponse)> done);

  // Reserves the sequence number a later Execute(request, sequence)
  // will run under.
  uint64_t ReserveSequence() { return next_sequence_.fetch_add(1); }

  // --- legacy entry points (deprecated) -------------------------------------
  //
  // Thin shims over Execute(QueryRequest), kept for source
  // compatibility; tests/query_api_test.cc pins their equivalence.
  // New call sites should build a QueryRequest instead.

  // Deprecated: Execute({.text = ..., .limits = ...}) asynchronously.
  std::future<QueryResult> Submit(std::string query_text);
  std::future<QueryResult> Submit(std::string query_text,
                                  QueryLimits limits);

  // Deprecated: Execute({.text = ..., .limits = ...}).result.
  QueryResult Run(std::string query_text);
  QueryResult Run(std::string query_text, QueryLimits limits);

  // --- cooperative kill (DESIGN.md §13) -------------------------------------
  //
  // Cancels the in-flight query with this sequence number (the one
  // QueryResult::sequence reports). Returns OK when the cancel was
  // signalled and kNotFound when no such query is active — already
  // completed, shed, or never started — so callers like the server's
  // disconnect path can distinguish "killed" from "already done". The
  // cancel is cooperative: the query unwinds at its next token
  // checkpoint with kCancelled. A query queued at the admission gate
  // keeps its slot reservation until one frees, then exits immediately
  // without executing.
  Status Kill(uint64_t sequence);
  // Cancels every in-flight query; returns how many were signalled.
  size_t KillAll();

  // Deprecated: Execute({.text = ..., .mode = QueryMode::kProfile}):
  // forces a full-detail trace and bypasses the result-cache replay so
  // an execution actually happens (plan cache and warm weights still
  // apply, and are recorded in the trace as provenance). The shell's
  // \profile surface.
  QueryResult Profile(std::string query_text);

  // Deprecated: Execute({.text = ..., .mode = QueryMode::kExplain}).
  // EXPLAIN (no execution): compiles the query (sharing the plan
  // cache) and runs ROX Phase 1 sampling only, then renders the join
  // graph with estimated cardinalities/weights and each component's
  // predicted first edge. The order beyond that is decided at run time
  // — the paper's point — and the rendering says so.
  Result<std::string> Explain(const std::string& query_text);

  // Executes `queries` with at most `concurrency` in flight at a time
  // (0 = pool size; capped at the pool size) and returns results in
  // input order. Blocks until the whole batch is done. An empty batch
  // returns immediately without touching the pool.
  std::vector<QueryResult> RunBatch(const std::vector<std::string>& queries,
                                    size_t concurrency = 0);

  // Statistics snapshot / reset (reset also restarts the qps clock).
  EngineStats Stats() const {
    EngineStats out = stats_.Snapshot();
    out.num_shards = options_.num_shards > 0 ? options_.num_shards : 1;
    out.epoch = CurrentEpoch();
    out.admission_running = gate_.running();
    out.admission_queued = gate_.queued();
    out.peak_admission_queued = gate_.peak_queued();
    return out;
  }
  void ResetStats() { stats_.Reset(); }

  // The metrics registry this engine's stats mirror into (the /metrics
  // exposition surface): options().metrics, or the process-wide
  // registry when none was injected.
  obs::MetricsRegistry& metrics_registry() const {
    return options_.metrics != nullptr ? *options_.metrics
                                       : obs::MetricsRegistry::Global();
  }

  // Cache inspection (the shell's \cache command).
  std::vector<QueryCache::Listing> CacheContents() const;
  size_t CacheSize() const;
  uint64_t CacheEvictions() const;
  void ClearCache();

 private:
  // One published epoch: the corpus, its sharded view, and the fan-out
  // bundle pointing at both. Queries pin the whole struct, so nothing
  // a running query references can be freed by a publish.
  struct PublishedState {
    std::shared_ptr<const Corpus> corpus;
    std::shared_ptr<const ShardedCorpus> sharded;  // null when unsharded
    ShardedExec exec;
  };

  std::shared_ptr<const PublishedState> Published() const {
    std::lock_guard<std::mutex> lock(state_mu_);
    return state_;
  }

  // Builds the published bundle for `corpus`, sharding incrementally
  // from `prev` when possible.
  std::shared_ptr<const PublishedState> MakeState(
      std::shared_ptr<const Corpus> corpus, const ShardedCorpus* prev);

  // Swaps in the next epoch built by `builder` and purges dead cache
  // entries. Caller holds ingest_mu_ and passes the base state the
  // builder started from (still current, since writers are serial).
  void Publish(CorpusBuilder builder, const PublishedState& base);

  // The execute/profile engine underneath Execute(QueryRequest).
  // `limits` null applies options_.default_limits; `client_tag` is
  // recorded on the trace root span.
  QueryResult ExecuteQuery(const std::string& text, uint64_t seq,
                           obs::TraceLevel trace_level,
                           bool allow_result_replay = true,
                           const QueryLimits* limits = nullptr,
                           std::string_view client_tag = {});

  // The explain engine underneath Execute(QueryRequest) (and the
  // legacy Explain shim): renders Phase-1 estimates without executing.
  Result<std::string> ExplainText(const std::string& query_text);

  EngineOptions options_;
  StatsCollector stats_;

  // Admission gate (inert when max_concurrent_queries is 0; Execute
  // never calls Admit then).
  AdmissionGate gate_;

  // In-flight queries' cancellation tokens, keyed by sequence number —
  // the \kill surface. Entries live exactly as long as Execute's stack
  // frame; tokens are owned by that frame, never by this map.
  mutable std::mutex active_mu_;
  std::unordered_map<uint64_t, CancellationToken*> active_;

  mutable std::mutex cache_mu_;
  QueryCache cache_;

  // Sharded intra-query execution (null / unused when num_shards <= 1).
  // Declared before state_/pool_ so in-flight fan-outs drain first on
  // teardown.
  std::unique_ptr<ThreadPool> shard_pool_;

  // The published epoch, swapped atomically under state_mu_; writers
  // are serialized by ingest_mu_ (held across build + publish so
  // epochs are linear).
  mutable std::mutex state_mu_;
  std::shared_ptr<const PublishedState> state_;
  std::mutex ingest_mu_;
  std::atomic<uint64_t> current_epoch_{0};

  std::atomic<uint64_t> next_sequence_{0};

  // Declared last: destroyed first, so workers drain while the state,
  // cache and stats above are still alive.
  ThreadPool pool_;
};

}  // namespace rox::engine

#endif  // ROX_ENGINE_ENGINE_H_
