// Aggregated statistics of an Engine: query counts, cache efficiency,
// and a latency distribution (p50/p95) suitable for throughput
// benchmarking and the shell's \stats command.
//
// StatsCollector is the thread-safe accumulator the Engine records
// into; EngineStats is the immutable snapshot handed to callers.

#ifndef ROX_ENGINE_ENGINE_STATS_H_
#define ROX_ENGINE_ENGINE_STATS_H_

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "rox/state.h"

namespace rox::engine {

struct EngineStats {
  uint64_t completed = 0;  // queries finished successfully
  uint64_t failed = 0;     // parse/compile/run errors

  // Plan cache: hits found a compiled query under the normalized text.
  uint64_t plan_cache_hits = 0;
  uint64_t plan_cache_misses = 0;
  // Result cache: hits served the final item sequence without running.
  uint64_t result_cache_hits = 0;
  // Runs that adopted at least one cached edge weight (skipped that
  // part of Phase 1 sampling).
  uint64_t warm_started_runs = 0;
  uint64_t warm_started_weights = 0;

  // Sums over all executed (non-result-cached) runs.
  uint64_t edges_executed = 0;
  double sampling_ms = 0;
  double execution_ms = 0;

  // Late materialization: gather operations and bytes written by them
  // across all runs (zero when lazy_materialization is off), and the
  // largest single intermediate any run materialized.
  uint64_t gather_count = 0;
  uint64_t bytes_gathered = 0;
  uint64_t peak_intermediate_rows = 0;

  // Sharded execution: the engine's shard count plus the fan-out step
  // and per-shard row counters aggregated over all runs (zero/empty
  // when num_shards <= 1).
  size_t num_shards = 1;
  ShardFanoutStats sharded;

  // Corpus versioning (DESIGN.md §10). `epoch` is the currently
  // published epoch, re-read at snapshot time (like num_shards, it is
  // engine state, not a counter). The publish/doc/invalidation
  // counters accumulate since engine start or the last ResetStats.
  uint64_t epoch = 0;
  uint64_t publishes = 0;
  uint64_t docs_added = 0;
  uint64_t docs_removed = 0;
  // Cache entries of dead epochs purged by publishes.
  uint64_t cache_invalidations = 0;
  // Cache lookups that returned an entry of a different epoch than the
  // query's pinned one. Unreachable by construction (the cache key
  // includes the epoch); counted defensively and asserted zero by the
  // snapshot fuzz suite.
  uint64_t stale_cache_hits = 0;

  // Query-lifecycle governance (DESIGN.md §13). Shed queries were
  // refused at the admission gate and never ran; the other three
  // counters classify queries that started and were stopped by their
  // token. Peak memory is the largest single-query budget meter seen.
  uint64_t queries_shed = 0;
  uint64_t queries_cancelled = 0;
  uint64_t queries_deadline_exceeded = 0;
  uint64_t queries_budget_exceeded = 0;
  uint64_t peak_query_memory_bytes = 0;
  // Admission gate occupancy, re-read at snapshot time (like epoch,
  // engine state rather than a counter). All zero when no gate is
  // configured.
  size_t admission_running = 0;
  size_t admission_queued = 0;
  size_t peak_admission_queued = 0;

  // Latency distribution over all finished queries (cache hits
  // included — a hit's latency is real service latency).
  double p50_ms = 0;
  double p95_ms = 0;
  double mean_ms = 0;
  double max_ms = 0;

  // Wall-clock seconds since engine start (or ResetStats).
  double wall_seconds = 0;

  uint64_t total() const { return completed + failed; }
  double qps() const {
    return wall_seconds > 0 ? static_cast<double>(completed) / wall_seconds
                            : 0.0;
  }
  double plan_hit_rate() const {
    uint64_t lookups = plan_cache_hits + plan_cache_misses;
    return lookups > 0 ? static_cast<double>(plan_cache_hits) / lookups : 0.0;
  }
  double result_hit_rate() const {
    return completed > 0 ? static_cast<double>(result_cache_hits) / completed
                         : 0.0;
  }

  std::string ToString() const;

  // One flat JSON object (stable keys — the server's /stats endpoint;
  // see DESIGN.md §15). Monotonic counters, gate occupancy, latency
  // percentiles and qps; per-shard row vectors are summarized as
  // sharded_fanouts only.
  std::string ToJson() const;
};

// What one finished query reports back to the collector.
struct QueryRecord {
  double latency_ms = 0;
  bool failed = false;
  bool plan_cache_hit = false;
  bool plan_cache_miss = false;  // a compile happened
  bool result_cache_hit = false;
  // Governance outcome (DESIGN.md §13): shed means refused at
  // admission; the other three classify a token trip. At most one is
  // set, and any of them implies `failed`.
  bool shed = false;
  bool cancelled = false;
  bool deadline_exceeded = false;
  bool budget_exceeded = false;
  // The query's MemoryBudget meter at finish (0 when ungoverned).
  uint64_t memory_bytes = 0;
  const RoxStats* rox = nullptr;  // null for result-cache hits / failures
};

class StatsCollector {
 public:
  // `latency_capacity` bounds the latency reservoir (tests shrink it to
  // exercise the sampled path without 65k+ queries).
  explicit StatsCollector(size_t latency_capacity = kMaxLatencySamples)
      : latency_capacity_(latency_capacity > 0 ? latency_capacity : 1) {}

  // Mirrors every Record/RecordPublish into named instruments of
  // `registry` (DESIGN.md §12) in addition to the EngineStats counters
  // — the struct stays the snapshot view, the registry is the
  // process-wide exposition surface. Call once, before queries run;
  // null unbinds. Instrument names are prefixed "engine.".
  void BindMetrics(obs::MetricsRegistry* registry) {
    std::lock_guard<std::mutex> lock(mu_);
    if (registry == nullptr) {
      m_ = {};
      return;
    }
    m_.completed = registry->GetCounter("engine.queries.completed");
    m_.failed = registry->GetCounter("engine.queries.failed");
    m_.plan_hits = registry->GetCounter("engine.cache.plan_hits");
    m_.plan_misses = registry->GetCounter("engine.cache.plan_misses");
    m_.result_hits = registry->GetCounter("engine.cache.result_hits");
    m_.warm_runs = registry->GetCounter("engine.warm.runs");
    m_.warm_weights = registry->GetCounter("engine.warm.weights");
    m_.edges = registry->GetCounter("engine.rox.edges_executed");
    m_.gathers = registry->GetCounter("engine.gather.count");
    m_.gather_bytes = registry->GetCounter("engine.gather.bytes");
    m_.fanouts = registry->GetCounter("engine.sharded.fanouts");
    m_.publishes = registry->GetCounter("engine.corpus.publishes");
    m_.docs_added = registry->GetCounter("engine.corpus.docs_added");
    m_.docs_removed = registry->GetCounter("engine.corpus.docs_removed");
    m_.invalidations = registry->GetCounter("engine.cache.invalidations");
    m_.sampling_ms = registry->GetGauge("engine.rox.sampling_ms_total");
    m_.execution_ms = registry->GetGauge("engine.rox.execution_ms_total");
    m_.latency = registry->GetHistogram("engine.query.latency_ms",
                                        obs::Histogram::LatencyBucketsMs());
    m_.shed = registry->GetCounter("engine.governor.shed");
    m_.cancelled = registry->GetCounter("engine.governor.cancelled");
    m_.deadline = registry->GetCounter("engine.governor.deadline_exceeded");
    m_.budget = registry->GetCounter("engine.governor.budget_exceeded");
    m_.peak_memory =
        registry->GetGauge("engine.governor.peak_query_memory_bytes");
  }

  void Record(const QueryRecord& r) {
    std::lock_guard<std::mutex> lock(mu_);
    if (r.failed) {
      ++counters_.failed;
      if (m_.failed != nullptr) m_.failed->Inc();
    } else {
      ++counters_.completed;
      if (m_.completed != nullptr) m_.completed->Inc();
    }
    counters_.plan_cache_hits += r.plan_cache_hit ? 1 : 0;
    counters_.plan_cache_misses += r.plan_cache_miss ? 1 : 0;
    counters_.result_cache_hits += r.result_cache_hit ? 1 : 0;
    if (m_.plan_hits != nullptr) {
      if (r.plan_cache_hit) m_.plan_hits->Inc();
      if (r.plan_cache_miss) m_.plan_misses->Inc();
      if (r.result_cache_hit) m_.result_hits->Inc();
    }
    if (r.rox != nullptr) {
      counters_.edges_executed += r.rox->edges_executed;
      counters_.warm_started_weights += r.rox->warm_started_weights;
      counters_.warm_started_runs += r.rox->warm_started_weights > 0 ? 1 : 0;
      counters_.sampling_ms += r.rox->sampling_time.TotalMillis();
      counters_.execution_ms += r.rox->execution_time.TotalMillis();
      counters_.gather_count += r.rox->gather.gather_count;
      counters_.bytes_gathered += r.rox->gather.bytes_gathered;
      counters_.peak_intermediate_rows = std::max(
          counters_.peak_intermediate_rows, r.rox->peak_intermediate_rows);
      counters_.sharded.Merge(r.rox->sharded);
      if (m_.edges != nullptr) {
        m_.edges->Inc(r.rox->edges_executed);
        m_.warm_weights->Inc(r.rox->warm_started_weights);
        if (r.rox->warm_started_weights > 0) m_.warm_runs->Inc();
        m_.gathers->Inc(r.rox->gather.gather_count);
        m_.gather_bytes->Inc(r.rox->gather.bytes_gathered);
        m_.fanouts->Inc(r.rox->sharded.fanouts);
        m_.sampling_ms->Add(r.rox->sampling_time.TotalMillis());
        m_.execution_ms->Add(r.rox->execution_time.TotalMillis());
      }
    }
    counters_.queries_shed += r.shed ? 1 : 0;
    counters_.queries_cancelled += r.cancelled ? 1 : 0;
    counters_.queries_deadline_exceeded += r.deadline_exceeded ? 1 : 0;
    counters_.queries_budget_exceeded += r.budget_exceeded ? 1 : 0;
    counters_.peak_query_memory_bytes =
        std::max(counters_.peak_query_memory_bytes, r.memory_bytes);
    if (m_.shed != nullptr) {
      if (r.shed) m_.shed->Inc();
      if (r.cancelled) m_.cancelled->Inc();
      if (r.deadline_exceeded) m_.deadline->Inc();
      if (r.budget_exceeded) m_.budget->Inc();
      // Under mu_, so the read-modify-write max is race-free.
      if (static_cast<double>(r.memory_bytes) > m_.peak_memory->Value()) {
        m_.peak_memory->Set(static_cast<double>(r.memory_bytes));
      }
    }
    if (!r.failed) {
      RecordLatency(r.latency_ms);
      if (m_.latency != nullptr) m_.latency->Observe(r.latency_ms);
    }
  }

  // One epoch publish: how many documents the builder added/removed
  // and how many dead-epoch cache entries were purged.
  void RecordPublish(size_t added, size_t removed, size_t invalidated) {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.publishes;
    counters_.docs_added += added;
    counters_.docs_removed += removed;
    counters_.cache_invalidations += invalidated;
    if (m_.publishes != nullptr) {
      m_.publishes->Inc();
      m_.docs_added->Inc(added);
      m_.docs_removed->Inc(removed);
      m_.invalidations->Inc(invalidated);
    }
  }

  // Defensive: a cache lookup surfaced an entry of the wrong epoch.
  void RecordStaleCacheHit() {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.stale_cache_hits;
  }

  EngineStats Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    EngineStats out = counters_;
    out.wall_seconds = since_reset_.ElapsedSeconds();
    if (!latencies_ms_.empty()) {
      std::vector<double> sorted = latencies_ms_;
      std::sort(sorted.begin(), sorted.end());
      out.p50_ms = Quantile(sorted, 0.50);
      out.p95_ms = Quantile(sorted, 0.95);
      out.max_ms = sorted.back();
      double sum = 0;
      for (double v : sorted) sum += v;
      out.mean_ms = sum / static_cast<double>(sorted.size());
    }
    return out;
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    counters_ = {};
    latencies_ms_.clear();
    latencies_seen_ = 0;
    since_reset_.Restart();
  }

  // Linearly interpolated quantile of an ascending-sorted sample
  // (C = 1 convention: rank q*(n-1), fractional ranks interpolate
  // between the two neighbors — p50 of {10, 20} is 15, not 10 or 20).
  static double Quantile(const std::vector<double>& sorted, double q) {
    if (sorted.empty()) return 0;
    double rank = q * static_cast<double>(sorted.size() - 1);
    size_t lo = static_cast<size_t>(rank);
    size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
  }

  // Default latency-reservoir bound (see RecordLatency).
  static constexpr size_t kMaxLatencySamples = 65536;

 private:
  // Latency samples are kept in a bounded reservoir (Vitter's
  // Algorithm R): a long-running engine serves unbounded query counts,
  // so storing every latency — and copy-sorting it per Snapshot —
  // would grow without limit. Up to latency_capacity_ the percentiles
  // are exact; beyond that they are over a uniform sample.
  void RecordLatency(double ms) {
    ++latencies_seen_;
    if (latencies_ms_.size() < latency_capacity_) {
      latencies_ms_.push_back(ms);
      return;
    }
    uint64_t slot = reservoir_rng_.Below(latencies_seen_);
    if (slot < latency_capacity_) latencies_ms_[slot] = ms;
  }

  mutable std::mutex mu_;
  const size_t latency_capacity_;
  EngineStats counters_;  // latency/wall fields unused here
  std::vector<double> latencies_ms_;
  uint64_t latencies_seen_ = 0;
  Rng reservoir_rng_{0x5747ca7515ULL};  // fixed seed: stats stay reproducible
  StopWatch since_reset_;

  // Bound instrument pointers (stable for the registry's lifetime; see
  // obs/metrics.h). All null until BindMetrics.
  struct Instruments {
    obs::Counter* completed = nullptr;
    obs::Counter* failed = nullptr;
    obs::Counter* plan_hits = nullptr;
    obs::Counter* plan_misses = nullptr;
    obs::Counter* result_hits = nullptr;
    obs::Counter* warm_runs = nullptr;
    obs::Counter* warm_weights = nullptr;
    obs::Counter* edges = nullptr;
    obs::Counter* gathers = nullptr;
    obs::Counter* gather_bytes = nullptr;
    obs::Counter* fanouts = nullptr;
    obs::Counter* publishes = nullptr;
    obs::Counter* docs_added = nullptr;
    obs::Counter* docs_removed = nullptr;
    obs::Counter* invalidations = nullptr;
    obs::Gauge* sampling_ms = nullptr;
    obs::Gauge* execution_ms = nullptr;
    obs::Histogram* latency = nullptr;
    obs::Counter* shed = nullptr;
    obs::Counter* cancelled = nullptr;
    obs::Counter* deadline = nullptr;
    obs::Counter* budget = nullptr;
    obs::Gauge* peak_memory = nullptr;
  };
  Instruments m_;
};

}  // namespace rox::engine

#endif  // ROX_ENGINE_ENGINE_STATS_H_
