// LRU cache of compiled queries keyed by (corpus epoch, normalized
// query text).
//
// An entry carries (1) the immutable compiled Join Graph, shared by any
// number of concurrent executions, (2) the edge weights the last
// completed run learned — fed back as RoxOptions::warm_edge_weights so
// a repeated query skips re-sampling what a prior run already measured
// (the amortization argued for by Berkholz et al. for repeated queries
// under a fixed database), and (3) optionally the final result
// sequence, which is sound to replay verbatim because the epoch the
// entry is keyed by is immutable.
//
// Epoch keying (DESIGN.md §10): compiled plans, learned weights and
// memoized results are all only valid for the corpus epoch they were
// produced against — a later epoch may resolve the same document
// names, element names and literals differently. The epoch is part of
// the lookup key, so a query pinned to epoch E can never observe an
// entry from any other epoch, and the engine additionally calls
// EvictBefore(E+1) on publish so dead epochs free their capacity
// immediately instead of waiting for LRU pressure.
//
// The cache is NOT thread-safe: the Engine serializes access with its
// own mutex and copies what an execution needs out under that lock.

#ifndef ROX_ENGINE_QUERY_CACHE_H_
#define ROX_ENGINE_QUERY_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "xml/node.h"
#include "xq/compile.h"

namespace rox::engine {

struct CacheEntry {
  std::shared_ptr<const xq::CompiledQuery> compiled;
  // Learned per-edge weights of the last completed run (indexed by the
  // compiled graph's edge ids); empty until a run finishes.
  std::vector<double> warm_edge_weights;
  // Final item sequence of the last completed run; null until then or
  // when result caching is disabled.
  std::shared_ptr<const std::vector<Pre>> result;
  // The corpus epoch this entry was produced against. Set by Insert;
  // the engine treats any mismatch with the query's pinned epoch as a
  // stale hit (counted, never served — and unreachable by
  // construction, since the epoch is part of the key).
  uint64_t epoch = 0;
  uint64_t hits = 0;
};

class QueryCache {
 public:
  explicit QueryCache(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  // Collapses whitespace runs to single spaces and trims, so layout
  // variants of one query share a cache entry. Quoted literals are left
  // untouched (whitespace inside "..."/'...' is significant).
  static std::string Normalize(std::string_view query);

  // Returns the entry for (epoch, key) and marks it most-recently-
  // used, or nullptr. The pointer stays valid until the next
  // Insert/Clear/EvictBefore. `count_hit` is false for internal
  // bookkeeping lookups (e.g. storing learned weights back after a
  // run) that should not inflate the entry's hit counter.
  CacheEntry* Lookup(uint64_t epoch, const std::string& key,
                     bool count_hit = true);

  // Inserts (or replaces) the entry for (epoch, key), stamping
  // entry.epoch, and evicting the least-recently-used entry if over
  // capacity. Returns the stored entry.
  CacheEntry* Insert(uint64_t epoch, const std::string& key,
                     CacheEntry entry);

  // Drops every entry of an epoch older than `epoch` (the publish-time
  // invalidation). Returns how many entries were dropped; they count
  // as invalidations, not capacity evictions.
  size_t EvictBefore(uint64_t epoch);

  void Clear();

  size_t size() const { return lru_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t evictions() const { return evictions_; }
  uint64_t invalidations() const { return invalidations_; }

  // One row of the shell's \cache listing, most-recently-used first.
  struct Listing {
    std::string key;
    uint64_t epoch = 0;
    uint64_t hits = 0;
    bool has_weights = false;
    bool has_result = false;
  };
  std::vector<Listing> List() const;

 private:
  struct Node {
    uint64_t epoch;
    // The encoded "<epoch>\x1f<key>" map key, kept so eviction and
    // invalidation never re-encode; the bare text key for List() is
    // the suffix past the separator.
    std::string map_key;
    CacheEntry entry;

    std::string_view text_key() const {
      return std::string_view(map_key).substr(map_key.find('\x1f') + 1);
    }
  };

  // Renders (epoch, key) into scratch_key_ — "<epoch>\x1f<key>"; the
  // epoch prefix is all digits, so the first 0x1f always separates —
  // and returns it. Reusing one buffer keeps lookups allocation-free
  // once warm; safe because the cache is externally serialized (see
  // class comment).
  const std::string& EncodeKey(uint64_t epoch, const std::string& key);

  size_t capacity_;
  uint64_t evictions_ = 0;
  uint64_t invalidations_ = 0;
  std::string scratch_key_;
  std::list<Node> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Node>::iterator> by_key_;
};

}  // namespace rox::engine

#endif  // ROX_ENGINE_QUERY_CACHE_H_
