// LRU cache of compiled queries keyed by normalized query text.
//
// An entry carries (1) the immutable compiled Join Graph, shared by any
// number of concurrent executions, (2) the edge weights the last
// completed run learned — fed back as RoxOptions::warm_edge_weights so
// a repeated query skips re-sampling what a prior run already measured
// (the amortization argued for by Berkholz et al. for repeated queries
// under a fixed database), and (3) optionally the final result
// sequence, which is sound to replay verbatim because the engine's
// corpus is immutable.
//
// The cache is NOT thread-safe: the Engine serializes access with its
// own mutex and copies what an execution needs out under that lock.

#ifndef ROX_ENGINE_QUERY_CACHE_H_
#define ROX_ENGINE_QUERY_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "xml/node.h"
#include "xq/compile.h"

namespace rox::engine {

struct CacheEntry {
  std::shared_ptr<const xq::CompiledQuery> compiled;
  // Learned per-edge weights of the last completed run (indexed by the
  // compiled graph's edge ids); empty until a run finishes.
  std::vector<double> warm_edge_weights;
  // Final item sequence of the last completed run; null until then or
  // when result caching is disabled.
  std::shared_ptr<const std::vector<Pre>> result;
  uint64_t hits = 0;
};

class QueryCache {
 public:
  explicit QueryCache(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  // Collapses whitespace runs to single spaces and trims, so layout
  // variants of one query share a cache entry. Quoted literals are left
  // untouched (whitespace inside "..."/'...' is significant).
  static std::string Normalize(std::string_view query);

  // Returns the entry for `key` and marks it most-recently-used, or
  // nullptr. The pointer stays valid until the next Insert/Clear.
  // `count_hit` is false for internal bookkeeping lookups (e.g. storing
  // learned weights back after a run) that should not inflate the
  // entry's hit counter.
  CacheEntry* Lookup(const std::string& key, bool count_hit = true);

  // Inserts (or replaces) the entry for `key`, evicting the least-
  // recently-used entry if over capacity. Returns the stored entry.
  CacheEntry* Insert(const std::string& key, CacheEntry entry);

  void Clear();

  size_t size() const { return lru_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t evictions() const { return evictions_; }

  // One row of the shell's \cache listing, most-recently-used first.
  struct Listing {
    std::string key;
    uint64_t hits = 0;
    bool has_weights = false;
    bool has_result = false;
  };
  std::vector<Listing> List() const;

 private:
  struct Node {
    std::string key;
    CacheEntry entry;
  };

  size_t capacity_;
  uint64_t evictions_ = 0;
  std::list<Node> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Node>::iterator> by_key_;
};

}  // namespace rox::engine

#endif  // ROX_ENGINE_QUERY_CACHE_H_
