// Query lifecycle governance (DESIGN.md §13): the types that make a
// query bounded, killable, and sheddable.
//
//   QueryLimits       per-query resource caps (deadline, memory, rows)
//   MemoryBudget      allocation meter charged by ColumnArena/ResultTable
//   CancellationToken cooperative stop signal: external kill + deadline
//                     + budget trip, checked amortized (~4K rows) inside
//                     kernel emission loops and at every optimizer
//                     decision point
//   AdmissionGate     bounded concurrent+queued admission; excess load
//                     is shed immediately with kResourceExhausted
//
// The token is plumbed as a raw const pointer (like
// RoxOptions::query_trace): one token per query, shared read-mostly by
// every lane of a sharded fan-out — the first lane to observe a trip
// stops, and since all lanes poll the same token the siblings stop on
// their next check without any inter-lane signalling.

#ifndef ROX_ENGINE_GOVERNOR_H_
#define ROX_ENGINE_GOVERNOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "common/status.h"
#include "common/timer.h"

namespace rox {

// Per-query resource caps; zero means "unlimited" for every field.
struct QueryLimits {
  double deadline_ms = 0;            // <= 0: no deadline
  uint64_t memory_budget_bytes = 0;  // 0: no memory budget
  uint64_t max_result_rows = 0;      // 0: no result-row cap

  bool Any() const {
    return deadline_ms > 0 || memory_budget_bytes > 0 || max_result_rows > 0;
  }
};

// Meters per-query allocations against a cap. Charge() never fails the
// allocation that trips it — it latches the exceeded flag, and the
// query's next cooperative checkpoint converts the latch into
// kResourceExhausted. This keeps allocation sites (bump arenas,
// vector adoption) infallible while still bounding a query's footprint
// to cap + one allocation burst.
class MemoryBudget {
 public:
  MemoryBudget() = default;
  explicit MemoryBudget(uint64_t limit_bytes) : limit_(limit_bytes) {}

  // Adds `bytes` to the meter; latches Exceeded() once past the limit.
  void Charge(uint64_t bytes) {
    uint64_t used = used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    if (limit_ > 0 && used > limit_) {
      exceeded_.store(true, std::memory_order_relaxed);
    }
  }

  uint64_t used() const { return used_.load(std::memory_order_relaxed); }
  uint64_t limit() const { return limit_; }
  bool Exceeded() const {
    return exceeded_.load(std::memory_order_relaxed);
  }

 private:
  uint64_t limit_ = 0;  // 0: unlimited
  std::atomic<uint64_t> used_{0};
  std::atomic<bool> exceeded_{false};
};

// Emission loops poll the token once per this many produced/consumed
// rows: frequent enough that a tripped query unwinds in well under the
// 100 ms acceptance bound, rare enough that the clock read disappears
// in the per-row work (DESIGN.md §13 discusses the tradeoff).
inline constexpr uint64_t kCancelCheckRows = 4096;

// Cooperative stop signal for one query. Cancel() may be called from
// any thread; StopRequested()/Check() are called from the query's
// execution threads. The first observed trip reason is latched so a
// query killed *and* past deadline reports one stable code.
class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  // Arms the deadline (steady-clock; infinite by default).
  void ArmDeadline(Deadline d) { deadline_ = d; }
  // Attaches the budget whose Exceeded() latch this token observes.
  void set_budget(const MemoryBudget* b) { budget_ = b; }

  // External kill switch (\kill, client disconnect, test harness).
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  const Deadline& deadline() const { return deadline_; }

  // True once any stop condition holds. Latches the first reason seen.
  // Cheap enough for amortized polling (one relaxed load on the happy
  // path until a deadline is armed; one clock read when it is).
  bool StopRequested() const {
    if (reason_.load(std::memory_order_relaxed) !=
        static_cast<uint8_t>(StatusCode::kOk)) {
      return true;
    }
    StatusCode trip = StatusCode::kOk;
    if (cancelled_.load(std::memory_order_relaxed)) {
      trip = StatusCode::kCancelled;
    } else if (budget_ != nullptr && budget_->Exceeded()) {
      trip = StatusCode::kResourceExhausted;
    } else if (deadline_.Expired()) {
      trip = StatusCode::kDeadlineExceeded;
    }
    if (trip == StatusCode::kOk) return false;
    uint8_t expected = static_cast<uint8_t>(StatusCode::kOk);
    reason_.compare_exchange_strong(expected, static_cast<uint8_t>(trip),
                                    std::memory_order_relaxed);
    return true;
  }

  // kOk while running; the latched trip code once stopped.
  StatusCode TripReason() const {
    return static_cast<StatusCode>(reason_.load(std::memory_order_relaxed));
  }

  // OK while the query may continue; the governance error otherwise.
  Status Check() const;

 private:
  Deadline deadline_;                     // infinite until armed
  const MemoryBudget* budget_ = nullptr;  // not owned
  std::atomic<bool> cancelled_{false};
  // Latched first trip, stored as the StatusCode's underlying value.
  mutable std::atomic<uint8_t> reason_{
      static_cast<uint8_t>(StatusCode::kOk)};
};

// Shorthand for the kernels' amortized polling sites: null token never
// stops.
inline bool StopRequested(const CancellationToken* t) {
  return t != nullptr && t->StopRequested();
}

// Bounded admission: at most `max_concurrent` queries execute while at
// most `max_queued` wait; anything beyond is shed immediately with
// kResourceExhausted (never blocks the caller behind an unbounded
// backlog). Queued waiters respect their query deadline — a query
// whose deadline lapses in the queue leaves with kDeadlineExceeded
// without ever running.
class AdmissionGate {
 public:
  AdmissionGate(size_t max_concurrent, size_t max_queued)
      : max_concurrent_(max_concurrent), max_queued_(max_queued) {}

  // Move-only RAII admission slot; releases on destruction.
  class Ticket {
   public:
    Ticket() = default;
    explicit Ticket(AdmissionGate* gate) : gate_(gate) {}
    Ticket(Ticket&& other) noexcept : gate_(other.gate_) {
      other.gate_ = nullptr;
    }
    Ticket& operator=(Ticket&& other) noexcept {
      if (this != &other) {
        Release();
        gate_ = other.gate_;
        other.gate_ = nullptr;
      }
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket() { Release(); }

   private:
    void Release() {
      if (gate_ != nullptr) gate_->Leave();
      gate_ = nullptr;
    }
    AdmissionGate* gate_ = nullptr;
  };

  // Blocks (bounded by `deadline`) until a slot frees; sheds when the
  // wait queue is full.
  Result<Ticket> Admit(const Deadline& deadline);

  size_t running() const;
  size_t queued() const;
  uint64_t shed_count() const {
    return shed_.load(std::memory_order_relaxed);
  }
  // High-water mark of the wait queue since construction.
  size_t peak_queued() const;

 private:
  friend class Ticket;
  void Leave();

  const size_t max_concurrent_;
  const size_t max_queued_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  size_t running_ = 0;
  size_t queued_ = 0;
  size_t peak_queued_ = 0;
  std::atomic<uint64_t> shed_{0};
};

}  // namespace rox

#endif  // ROX_ENGINE_GOVERNOR_H_
