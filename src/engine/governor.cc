#include "engine/governor.h"

namespace rox {

Status CancellationToken::Check() const {
  if (!StopRequested()) return Status::Ok();
  switch (TripReason()) {
    case StatusCode::kCancelled:
      return Status::Cancelled("query cancelled");
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded("query deadline exceeded");
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted("query memory budget exceeded");
    default:
      return Status::Internal("cancellation token tripped without reason");
  }
}

Result<AdmissionGate::Ticket> AdmissionGate::Admit(const Deadline& deadline) {
  std::unique_lock<std::mutex> lock(mu_);
  if (running_ < max_concurrent_) {
    ++running_;
    return Ticket(this);
  }
  if (queued_ >= max_queued_) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    return Status::ResourceExhausted("admission queue full, query shed");
  }
  ++queued_;
  if (queued_ > peak_queued_) peak_queued_ = queued_;
  auto admissible = [this] { return running_ < max_concurrent_; };
  if (deadline.IsInfinite()) {
    cv_.wait(lock, admissible);
  } else if (!cv_.wait_until(lock, deadline.when(), admissible)) {
    --queued_;
    return Status::DeadlineExceeded("query deadline exceeded while queued");
  }
  --queued_;
  ++running_;
  return Ticket(this);
}

void AdmissionGate::Leave() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --running_;
  }
  cv_.notify_one();
}

size_t AdmissionGate::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

size_t AdmissionGate::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_;
}

size_t AdmissionGate::peak_queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_queued_;
}

}  // namespace rox
